// Shared helpers for the test suite: a nested-loop reference join, result
// canonicalization, and small construction shortcuts.

#ifndef PJOIN_TESTS_TEST_UTIL_H_
#define PJOIN_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <map>
#include <string>
#include <vector>

#include "join/join_base.h"
#include "ops/pipeline.h"
#include "stream/element.h"
#include "tuple/tuple.h"

namespace pjoin {
namespace testing {

/// A canonical string for one joined pair, independent of emission order.
inline std::string PairKey(const Tuple& left, const Tuple& right) {
  return left.ToString() + "|" + right.ToString();
}

/// The exact multiset of results a correct equi-join must produce for the
/// given element streams, as canonical strings (sorted).
inline std::vector<std::string> ReferenceJoin(
    const std::vector<StreamElement>& left,
    const std::vector<StreamElement>& right, size_t left_key,
    size_t right_key) {
  std::vector<std::string> out;
  for (const StreamElement& l : left) {
    if (!l.is_tuple()) continue;
    for (const StreamElement& r : right) {
      if (!r.is_tuple()) continue;
      if (l.tuple().field(left_key) == r.tuple().field(right_key)) {
        out.push_back(PairKey(l.tuple(), r.tuple()));
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Runs `join` over the two element streams (global arrival order) and
/// returns the canonical sorted result multiset. Also asserts (via the
/// returned data) nothing about punctuations; collect those separately.
struct RunResult {
  std::vector<std::string> results;         // canonical, sorted
  std::vector<Punctuation> punctuations;    // in emission order
  int64_t stalls = 0;
};

inline RunResult RunJoin(JoinOperator* join,
                         const std::vector<StreamElement>& left,
                         const std::vector<StreamElement>& right,
                         TimeMicros stall_gap = 0) {
  RunResult out;
  const size_t left_width =
      join->output_schema()->num_fields();  // placeholder to silence unused
  (void)left_width;
  join->set_result_callback([&out](const Tuple& t) {
    // Split the concatenated tuple back into its halves via ToString of the
    // whole row; the canonical key is just the row text.
    out.results.push_back(t.ToString());
  });
  join->set_punct_callback(
      [&out](const Punctuation& p) { out.punctuations.push_back(p); });
  PipelineOptions popts;
  popts.stall_gap_micros = stall_gap;
  JoinPipeline pipeline(join, nullptr, popts);
  Status st = pipeline.Run(left, right);
  PJOIN_DCHECK(st.ok());
  out.stalls = pipeline.stalls_detected();
  std::sort(out.results.begin(), out.results.end());
  return out;
}

/// Reference multiset in the same canonicalization as RunJoin (full output
/// row text).
inline std::vector<std::string> ReferenceJoinRows(
    const std::vector<StreamElement>& left,
    const std::vector<StreamElement>& right, const SchemaPtr& out_schema,
    size_t left_key, size_t right_key) {
  std::vector<std::string> out;
  for (const StreamElement& l : left) {
    if (!l.is_tuple()) continue;
    for (const StreamElement& r : right) {
      if (!r.is_tuple()) continue;
      if (l.tuple().field(left_key) == r.tuple().field(right_key)) {
        out.push_back(Tuple::Concat(l.tuple(), r.tuple(), out_schema)
                          .ToString());
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Builds a (key:int64, payload:int64) schema.
inline SchemaPtr KeyPayloadSchema(const std::string& payload_name = "p") {
  return Schema::Make(
      {{"key", ValueType::kInt64}, {payload_name, ValueType::kInt64}});
}

/// Builds one (key, payload) tuple.
inline Tuple KP(const SchemaPtr& schema, int64_t key, int64_t payload) {
  return Tuple(schema, {Value(key), Value(payload)});
}

/// Wraps tuples/punctuations into timestamped elements (1 ms apart).
class ElementsBuilder {
 public:
  explicit ElementsBuilder(TimeMicros step = 1000) : step_(step) {}

  ElementsBuilder& Tup(Tuple t) {
    Advance();
    elements_.push_back(StreamElement::MakeTuple(std::move(t), now_, seq_++));
    return *this;
  }
  ElementsBuilder& Punct(Punctuation p) {
    Advance();
    elements_.push_back(
        StreamElement::MakePunctuation(std::move(p), now_, seq_++));
    return *this;
  }
  std::vector<StreamElement> Finish() {
    Advance();
    elements_.push_back(StreamElement::MakeEndOfStream(now_, seq_++));
    return std::move(elements_);
  }

 private:
  void Advance() { now_ += step_; }

  TimeMicros step_;
  TimeMicros now_ = 0;
  int64_t seq_ = 0;
  std::vector<StreamElement> elements_;
};

/// Constant-key punctuation for a 2-field schema.
inline Punctuation KeyPunct(int64_t key, size_t num_fields = 2) {
  return Punctuation::ForAttribute(num_fields, 0,
                                   Pattern::Constant(Value(key)));
}

}  // namespace testing
}  // namespace pjoin

#endif  // PJOIN_TESTS_TEST_UTIL_H_
