#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "gen/stream_generator.h"
#include "punct/punctuation_set.h"

namespace pjoin {
namespace {

// Every punctuation in a stream must be sound: no later tuple of the same
// stream may match it.
void ExpectPunctuationsSound(const std::vector<StreamElement>& stream) {
  for (size_t i = 0; i < stream.size(); ++i) {
    if (!stream[i].is_punctuation()) continue;
    const Punctuation& p = stream[i].punctuation();
    for (size_t j = i + 1; j < stream.size(); ++j) {
      if (!stream[j].is_tuple()) continue;
      EXPECT_FALSE(p.Matches(stream[j].tuple()))
          << "tuple " << stream[j].ToString() << " violates punctuation "
          << p.ToString() << " at position " << i;
    }
  }
}

StreamSpec SmallSpec(double punct_interarrival = 10.0) {
  StreamSpec spec;
  spec.num_tuples = 500;
  spec.punct_mean_interarrival_tuples = punct_interarrival;
  return spec;
}

TEST(GeneratorTest, DeterministicForSeed) {
  DomainSpec d;
  GeneratedStreams g1 = GenerateStreams(d, SmallSpec(), SmallSpec(), 42);
  GeneratedStreams g2 = GenerateStreams(d, SmallSpec(), SmallSpec(), 42);
  ASSERT_EQ(g1.a.size(), g2.a.size());
  ASSERT_EQ(g1.b.size(), g2.b.size());
  for (size_t i = 0; i < g1.a.size(); ++i) {
    EXPECT_EQ(g1.a[i].ToString(), g2.a[i].ToString());
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  DomainSpec d;
  GeneratedStreams g1 = GenerateStreams(d, SmallSpec(), SmallSpec(), 1);
  GeneratedStreams g2 = GenerateStreams(d, SmallSpec(), SmallSpec(), 2);
  int differing = 0;
  const size_t n = std::min(g1.a.size(), g2.a.size());
  for (size_t i = 0; i < n; ++i) {
    if (g1.a[i].ToString() != g2.a[i].ToString()) ++differing;
  }
  EXPECT_GT(differing, 0);
}

TEST(GeneratorTest, ExactTupleCountsAndTerminalEos) {
  DomainSpec d;
  GeneratedStreams g = GenerateStreams(d, SmallSpec(), SmallSpec(), 7);
  EXPECT_EQ(g.NumTuples(g.a), 500);
  EXPECT_EQ(g.NumTuples(g.b), 500);
  ASSERT_FALSE(g.a.empty());
  EXPECT_TRUE(g.a.back().is_end_of_stream());
  EXPECT_TRUE(g.b.back().is_end_of_stream());
}

TEST(GeneratorTest, PunctuationCountRoughlyMatchesRate) {
  DomainSpec d;
  GeneratedStreams g = GenerateStreams(d, SmallSpec(10.0), SmallSpec(10.0), 3);
  // ~500/10 = 50 punctuations expected; allow generous Poisson slack.
  EXPECT_GT(g.NumPunctuations(g.a), 25);
  EXPECT_LT(g.NumPunctuations(g.a), 90);
}

TEST(GeneratorTest, PunctuationsAreSound) {
  DomainSpec d;
  GeneratedStreams g = GenerateStreams(d, SmallSpec(), SmallSpec(), 11);
  ExpectPunctuationsSound(g.a);
  ExpectPunctuationsSound(g.b);
}

TEST(GeneratorTest, PunctuationsAreSoundWithAsymmetricRates) {
  DomainSpec d;
  GeneratedStreams g = GenerateStreams(d, SmallSpec(10.0), SmallSpec(40.0), 13);
  ExpectPunctuationsSound(g.a);
  ExpectPunctuationsSound(g.b);
  // The slower-punctuating stream emits fewer punctuations.
  EXPECT_GT(g.NumPunctuations(g.a), g.NumPunctuations(g.b));
}

TEST(GeneratorTest, PrefixConditionHolds) {
  DomainSpec d;
  GeneratedStreams g = GenerateStreams(d, SmallSpec(), SmallSpec(), 17);
  for (const auto* stream : {&g.a, &g.b}) {
    PunctuationSet ps(0, /*validate_prefix=*/true);
    for (const StreamElement& e : *stream) {
      if (e.is_punctuation()) {
        EXPECT_TRUE(ps.Add(e.punctuation(), e.arrival()).ok());
      }
    }
  }
}

TEST(GeneratorTest, ArrivalTimesNonDecreasing) {
  DomainSpec d;
  GeneratedStreams g = GenerateStreams(d, SmallSpec(), SmallSpec(), 19);
  for (const auto* stream : {&g.a, &g.b}) {
    for (size_t i = 1; i < stream->size(); ++i) {
      EXPECT_GE((*stream)[i].arrival(), (*stream)[i - 1].arrival());
    }
  }
}

TEST(GeneratorTest, NoPunctuationsWhenDisabled) {
  DomainSpec d;
  StreamSpec no_punct = SmallSpec();
  no_punct.punct_mean_interarrival_tuples = 0;
  GeneratedStreams g = GenerateStreams(d, no_punct, SmallSpec(), 23);
  EXPECT_EQ(g.NumPunctuations(g.a), 0);
  EXPECT_GT(g.NumPunctuations(g.b), 0);
}

TEST(GeneratorTest, RangeStyleProducesRangeOrConstantPatterns) {
  DomainSpec d;
  StreamSpec spec = SmallSpec(20.0);
  spec.punct_style = PunctStyle::kRange;
  spec.punct_batch = 3;
  GeneratedStreams g = GenerateStreams(d, spec, SmallSpec(), 29);
  int ranges = 0;
  for (const StreamElement& e : g.a) {
    if (!e.is_punctuation()) continue;
    PatternKind kind = e.punctuation().pattern(0).kind();
    EXPECT_TRUE(kind == PatternKind::kRange || kind == PatternKind::kConstant);
    if (kind == PatternKind::kRange) ++ranges;
  }
  EXPECT_GT(ranges, 0);
  ExpectPunctuationsSound(g.a);
}

TEST(GeneratorTest, EnumStyleProducesEnumPatterns) {
  DomainSpec d;
  StreamSpec spec = SmallSpec(20.0);
  spec.punct_style = PunctStyle::kEnumList;
  spec.punct_batch = 4;
  GeneratedStreams g = GenerateStreams(d, spec, SmallSpec(), 31);
  int enums = 0;
  for (const StreamElement& e : g.a) {
    if (e.is_punctuation() &&
        e.punctuation().pattern(0).kind() == PatternKind::kEnumList) {
      ++enums;
    }
  }
  EXPECT_GT(enums, 0);
  ExpectPunctuationsSound(g.a);
}

TEST(GeneratorTest, FlushCoversAllKeys) {
  DomainSpec d;
  StreamSpec spec = SmallSpec(10.0);
  spec.flush_punctuations_at_end = true;
  GeneratedStreams g = GenerateStreams(d, spec, spec, 37);
  for (const auto* stream : {&g.a, &g.b}) {
    PunctuationSet ps(0);
    for (const StreamElement& e : *stream) {
      if (e.is_punctuation()) {
        ASSERT_TRUE(ps.Add(e.punctuation(), e.arrival()).ok());
      }
    }
    for (const StreamElement& e : *stream) {
      if (e.is_tuple()) {
        EXPECT_TRUE(ps.SetMatchKey(e.tuple().field(0)))
            << "unflushed key " << e.tuple().ToString();
      }
    }
  }
}

TEST(GeneratorTest, StreamsShareTheKeyDomain) {
  DomainSpec d;
  d.window_size = 10;
  GeneratedStreams g = GenerateStreams(d, SmallSpec(), SmallSpec(), 41);
  // With a shared sliding window, a good fraction of keys must appear in
  // both streams (this is what makes the join many-to-many).
  std::set<int64_t> keys_a;
  std::set<int64_t> keys_b;
  for (const StreamElement& e : g.a) {
    if (e.is_tuple()) keys_a.insert(e.tuple().field(0).AsInt64());
  }
  for (const StreamElement& e : g.b) {
    if (e.is_tuple()) keys_b.insert(e.tuple().field(0).AsInt64());
  }
  std::vector<int64_t> common;
  std::set_intersection(keys_a.begin(), keys_a.end(), keys_b.begin(),
                        keys_b.end(), std::back_inserter(common));
  EXPECT_GT(common.size(), keys_a.size() / 2);
}

TEST(GeneratorTest, ClusteredArrivalIsContiguousAndSound) {
  DomainSpec d;
  d.window_size = 10;
  StreamSpec spec = SmallSpec(15.0);
  spec.clustered = true;
  GeneratedStreams g = GenerateStreams(d, spec, spec, 47);
  ExpectPunctuationsSound(g.a);
  ExpectPunctuationsSound(g.b);
  // Keys arrive in non-decreasing runs (clusters).
  for (const auto* stream : {&g.a, &g.b}) {
    int64_t last_key = -1;
    for (const StreamElement& e : *stream) {
      if (!e.is_tuple()) continue;
      const int64_t key = e.tuple().field(0).AsInt64();
      EXPECT_GE(key, last_key);
      last_key = key;
    }
  }
  EXPECT_GT(g.NumPunctuations(g.a), 0);
}

TEST(GeneratorTest, ClusteredPunctuationFollowsClusterClosely) {
  DomainSpec d;
  StreamSpec spec = SmallSpec(15.0);
  spec.clustered = true;
  GeneratedStreams g = GenerateStreams(d, spec, spec, 53);
  // For each punctuated key, the punctuation appears within a few elements
  // of the key's last tuple (cluster-boundary semantics), not an arbitrary
  // Poisson delay later.
  const auto& stream = g.a;
  for (size_t i = 0; i < stream.size(); ++i) {
    if (!stream[i].is_punctuation()) continue;
    const Pattern& p = stream[i].punctuation().pattern(0);
    if (!p.IsConstant()) continue;
    // Find the last tuple with this key before the punctuation.
    ptrdiff_t last_tuple = -1;
    for (size_t j = 0; j < i; ++j) {
      if (stream[j].is_tuple() && stream[j].tuple().field(0) == p.constant()) {
        last_tuple = static_cast<ptrdiff_t>(j);
      }
    }
    if (last_tuple < 0) continue;  // key never sampled by this stream
    // Elements between the cluster end and its punctuation belong to at
    // most one newer cluster; allow a small constant slack.
    EXPECT_LT(static_cast<ptrdiff_t>(i) - last_tuple, 60)
        << "punctuation for " << p.ToString() << " lags its cluster";
  }
}

TEST(GeneratorTest, ZipfSkewConcentratesOnNewKeysAndStaysSound) {
  DomainSpec d;
  d.window_size = 10;
  StreamSpec spec = SmallSpec(15.0);
  spec.zipf_s = 1.5;
  GeneratedStreams skewed = GenerateStreams(d, spec, spec, 71);
  ExpectPunctuationsSound(skewed.a);
  ExpectPunctuationsSound(skewed.b);

  StreamSpec uniform_spec = SmallSpec(15.0);
  GeneratedStreams uniform = GenerateStreams(d, uniform_spec, uniform_spec,
                                             71);
  // Recency gap: distance between a tuple's key and the largest key seen so
  // far (a proxy for the offset from the window's newest edge). Zipf skew
  // towards new keys must shrink the mean gap substantially.
  auto mean_gap = [](const std::vector<StreamElement>& s) {
    int64_t running_max = 0;
    double total = 0;
    int64_t n = 0;
    for (const auto& e : s) {
      if (!e.is_tuple()) continue;
      const int64_t key = e.tuple().field(0).AsInt64();
      running_max = std::max(running_max, key);
      total += static_cast<double>(running_max - key);
      ++n;
    }
    return n == 0 ? 0.0 : total / static_cast<double>(n);
  };
  EXPECT_LT(mean_gap(skewed.a) * 1.5, mean_gap(uniform.a));
}

TEST(VectorSourceTest, IteratesAndPeeks) {
  DomainSpec d;
  StreamSpec spec;
  spec.num_tuples = 5;
  GeneratedStreams g = GenerateStreams(d, spec, spec, 43);
  VectorSource src(g.a);
  size_t count = 0;
  while (!src.exhausted()) {
    auto peek = src.PeekArrival();
    ASSERT_TRUE(peek.has_value());
    auto e = src.Next();
    ASSERT_TRUE(e.has_value());
    EXPECT_EQ(e->arrival(), *peek);
    ++count;
  }
  EXPECT_EQ(count, g.a.size());
  EXPECT_FALSE(src.Next().has_value());
}

}  // namespace
}  // namespace pjoin
