#include <gtest/gtest.h>

#include <atomic>

#include "common/mutex.h"
#include "exec/executor.h"
#include "exec/monitor.h"
#include "exec/registry.h"

namespace pjoin {
namespace {

class RecordingListener : public EventListener {
 public:
  explicit RecordingListener(std::string name) : name_(std::move(name)) {}

  std::string_view name() const override { return name_; }

  Status HandleEvent(const Event& event) override {
    events.push_back(event);
    return next_status;
  }

  std::string name_;
  std::vector<Event> events;
  Status next_status;
};

TEST(EventTest, NamesCoverAllTypes) {
  for (int i = 0; i < kNumEventTypes; ++i) {
    EXPECT_NE(EventTypeName(static_cast<EventType>(i)), "?");
  }
}

TEST(EventTest, ToStringIncludesStream) {
  Event e{EventType::kStateFull, 123, 1, {}};
  EXPECT_NE(e.ToString().find("StateFullEvent"), std::string::npos);
  EXPECT_NE(e.ToString().find("stream=1"), std::string::npos);
}

TEST(RegistryTest, DispatchInRegistrationOrder) {
  EventRegistry registry;
  RecordingListener a("a");
  RecordingListener b("b");
  std::vector<std::string> order;
  // Use conditions as probes for call order.
  registry.Register(EventType::kStateFull, &a, [&order](const Event&) {
    order.push_back("a");
    return true;
  });
  registry.Register(EventType::kStateFull, &b, [&order](const Event&) {
    order.push_back("b");
    return true;
  });
  ASSERT_TRUE(registry.Dispatch(Event{EventType::kStateFull, 0, -1, {}}).ok());
  EXPECT_EQ(order, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(a.events.size(), 1u);
  EXPECT_EQ(b.events.size(), 1u);
}

TEST(RegistryTest, ConditionSkipsListener) {
  EventRegistry registry;
  RecordingListener a("a");
  registry.Register(EventType::kStreamEmpty, &a,
                    [](const Event&) { return false; });
  ASSERT_TRUE(registry.Dispatch(Event{EventType::kStreamEmpty, 0, -1, {}}).ok());
  EXPECT_TRUE(a.events.empty());
}

TEST(RegistryTest, ErrorStopsDispatch) {
  EventRegistry registry;
  RecordingListener a("a");
  RecordingListener b("b");
  a.next_status = Status::Internal("boom");
  registry.Register(EventType::kStateFull, &a);
  registry.Register(EventType::kStateFull, &b);
  Status s = registry.Dispatch(Event{EventType::kStateFull, 0, -1, {}});
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(b.events.empty());
}

TEST(RegistryTest, UnregisterAndClear) {
  EventRegistry registry;
  RecordingListener a("a");
  registry.Register(EventType::kStateFull, &a);
  registry.Register(EventType::kStreamEmpty, &a);
  EXPECT_EQ(registry.NumListeners(EventType::kStateFull), 1u);
  registry.Unregister(EventType::kStateFull, &a);
  EXPECT_EQ(registry.NumListeners(EventType::kStateFull), 0u);
  registry.Clear(EventType::kStreamEmpty);
  EXPECT_EQ(registry.NumListeners(EventType::kStreamEmpty), 0u);
}

TEST(RegistryTest, ToStringListsEntries) {
  EventRegistry registry;
  RecordingListener purge("state-purge");
  registry.Register(EventType::kPurgeThresholdReach, &purge);
  std::string table = registry.ToString();
  EXPECT_NE(table.find("PurgeThresholdReachEvent"), std::string::npos);
  EXPECT_NE(table.find("state-purge"), std::string::npos);
}

class MonitorTest : public ::testing::Test {
 protected:
  MonitorTest() : clock_(0) {}

  void Wire(RuntimeParams params) {
    monitor_ = std::make_unique<Monitor>(params, &registry_, &clock_);
  }

  VirtualClock clock_;
  EventRegistry registry_;
  std::unique_ptr<Monitor> monitor_;
};

TEST_F(MonitorTest, PurgeThresholdEager) {
  RuntimeParams params;
  params.purge_threshold = 1;
  Wire(params);
  RecordingListener purge("purge");
  registry_.Register(EventType::kPurgeThresholdReach, &purge);
  ASSERT_TRUE(monitor_->OnPunctuationArrived(0).ok());
  EXPECT_EQ(purge.events.size(), 1u);
}

TEST_F(MonitorTest, PurgeThresholdLazyCountsBothStreams) {
  RuntimeParams params;
  params.purge_threshold = 3;
  Wire(params);
  RecordingListener purge("purge");
  registry_.Register(EventType::kPurgeThresholdReach, &purge);
  ASSERT_TRUE(monitor_->OnPunctuationArrived(0).ok());
  ASSERT_TRUE(monitor_->OnPunctuationArrived(1).ok());
  EXPECT_TRUE(purge.events.empty());
  ASSERT_TRUE(monitor_->OnPunctuationArrived(0).ok());
  EXPECT_EQ(purge.events.size(), 1u);
  // Until the purge component acknowledges, the monitor keeps firing.
  monitor_->OnPurgeRan();
  ASSERT_TRUE(monitor_->OnPunctuationArrived(1).ok());
  EXPECT_EQ(purge.events.size(), 1u);
  EXPECT_EQ(monitor_->puncts_since_purge(1), 1);
}

TEST_F(MonitorTest, StateFullFiresOncePerCrossing) {
  RuntimeParams params;
  params.memory_threshold_tuples = 10;
  Wire(params);
  RecordingListener reloc("reloc");
  registry_.Register(EventType::kStateFull, &reloc);
  ASSERT_TRUE(monitor_->OnStateSizeChanged(9).ok());
  EXPECT_TRUE(reloc.events.empty());
  ASSERT_TRUE(monitor_->OnStateSizeChanged(10).ok());
  EXPECT_EQ(reloc.events.size(), 1u);
  // Still above threshold: no re-fire until it drops below.
  ASSERT_TRUE(monitor_->OnStateSizeChanged(12).ok());
  EXPECT_EQ(reloc.events.size(), 1u);
  ASSERT_TRUE(monitor_->OnStateSizeChanged(5).ok());
  ASSERT_TRUE(monitor_->OnStateSizeChanged(11).ok());
  EXPECT_EQ(reloc.events.size(), 2u);
}

TEST_F(MonitorTest, ByteThresholdAlsoFiresStateFull) {
  RuntimeParams params;
  params.memory_threshold_bytes = 1000;
  Wire(params);
  RecordingListener reloc("reloc");
  registry_.Register(EventType::kStateFull, &reloc);
  ASSERT_TRUE(monitor_->OnStateSizeChanged(5, 999).ok());
  EXPECT_TRUE(reloc.events.empty());
  ASSERT_TRUE(monitor_->OnStateSizeChanged(6, 1000).ok());
  EXPECT_EQ(reloc.events.size(), 1u);
}

TEST_F(MonitorTest, PropagateCountThreshold) {
  RuntimeParams params;
  params.purge_threshold = 1000;  // keep purge quiet
  params.propagate_count_threshold = 2;
  Wire(params);
  RecordingListener prop("prop");
  registry_.Register(EventType::kPropagateCountReach, &prop);
  ASSERT_TRUE(monitor_->OnPunctuationArrived(0).ok());
  EXPECT_TRUE(prop.events.empty());
  ASSERT_TRUE(monitor_->OnPunctuationArrived(1).ok());
  EXPECT_EQ(prop.events.size(), 1u);
  monitor_->OnPropagationRan();
  EXPECT_EQ(monitor_->puncts_since_propagation(), 0);
}

TEST_F(MonitorTest, PropagateTimeThreshold) {
  RuntimeParams params;
  params.propagate_time_threshold = 100;
  Wire(params);
  RecordingListener prop("prop");
  registry_.Register(EventType::kPropagateTimeExpire, &prop);
  clock_.AdvanceTo(50);
  ASSERT_TRUE(monitor_->Tick().ok());
  EXPECT_TRUE(prop.events.empty());
  clock_.AdvanceTo(100);
  ASSERT_TRUE(monitor_->Tick().ok());
  EXPECT_EQ(prop.events.size(), 1u);
  monitor_->OnPropagationRan();
  clock_.AdvanceTo(150);
  ASSERT_TRUE(monitor_->Tick().ok());
  EXPECT_EQ(prop.events.size(), 1u);  // re-armed at 100, expires at 200
  clock_.AdvanceTo(200);
  ASSERT_TRUE(monitor_->Tick().ok());
  EXPECT_EQ(prop.events.size(), 2u);
}

TEST_F(MonitorTest, StreamsEmptyAndDiskActivation) {
  RuntimeParams params;
  params.disk_join_activation_threshold = 5;
  Wire(params);
  RecordingListener empty("empty");
  RecordingListener disk("disk");
  registry_.Register(EventType::kStreamEmpty, &empty);
  registry_.Register(EventType::kDiskJoinActivate, &disk);
  ASSERT_TRUE(monitor_->OnStreamsEmpty(3).ok());
  EXPECT_EQ(empty.events.size(), 1u);
  EXPECT_TRUE(disk.events.empty());
  ASSERT_TRUE(monitor_->OnStreamsEmpty(5).ok());
  EXPECT_EQ(disk.events.size(), 1u);
}

TEST_F(MonitorTest, PullModeRequest) {
  Wire(RuntimeParams{});
  RecordingListener prop("prop");
  registry_.Register(EventType::kPropagateRequest, &prop);
  ASSERT_TRUE(monitor_->RequestPropagation().ok());
  EXPECT_EQ(prop.events.size(), 1u);
}

TEST_F(MonitorTest, RuntimeParamsTunableAtRuntime) {
  RuntimeParams params;
  params.purge_threshold = 100;
  Wire(params);
  RecordingListener purge("purge");
  registry_.Register(EventType::kPurgeThresholdReach, &purge);
  ASSERT_TRUE(monitor_->OnPunctuationArrived(0).ok());
  EXPECT_TRUE(purge.events.empty());
  monitor_->params().purge_threshold = 2;  // retune live
  ASSERT_TRUE(monitor_->OnPunctuationArrived(0).ok());
  EXPECT_EQ(purge.events.size(), 1u);
}

TEST(SerialExecutorTest, RunsInline) {
  SerialExecutor exec;
  int x = 0;
  exec.Execute([&x] { x = 42; });
  EXPECT_EQ(x, 42);
  exec.Drain();
}

TEST(BackgroundExecutorTest, RunsAllTasksInOrder) {
  BackgroundExecutor exec;
  std::vector<int> order;
  Mutex mu;
  for (int i = 0; i < 50; ++i) {
    exec.Execute([&order, &mu, i] {
      MutexLock lock(mu);
      order.push_back(i);
    });
  }
  exec.Drain();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
  EXPECT_EQ(exec.tasks_executed(), 50);
}

TEST(BackgroundExecutorTest, DrainOnEmptyQueueReturns) {
  BackgroundExecutor exec;
  exec.Drain();
  EXPECT_EQ(exec.tasks_executed(), 0);
}

}  // namespace
}  // namespace pjoin
