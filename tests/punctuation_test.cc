#include <gtest/gtest.h>

#include "punct/punctuation.h"

namespace pjoin {
namespace {

SchemaPtr TwoFieldSchema() {
  return Schema::Make({{"key", ValueType::kInt64}, {"p", ValueType::kInt64}});
}

Tuple T(const SchemaPtr& s, int64_t key, int64_t payload) {
  return Tuple(s, {Value(key), Value(payload)});
}

TEST(PunctuationTest, ForAttributeSetsOnePattern) {
  Punctuation p =
      Punctuation::ForAttribute(3, 1, Pattern::Constant(Value(int64_t{5})));
  ASSERT_EQ(p.num_patterns(), 3u);
  EXPECT_TRUE(p.pattern(0).IsWildcard());
  EXPECT_TRUE(p.pattern(1).IsConstant());
  EXPECT_TRUE(p.pattern(2).IsWildcard());
}

TEST(PunctuationTest, MatchesRequiresAllPatterns) {
  SchemaPtr s = TwoFieldSchema();
  Punctuation key_only =
      Punctuation::ForAttribute(2, 0, Pattern::Constant(Value(int64_t{7})));
  EXPECT_TRUE(key_only.Matches(T(s, 7, 123)));
  EXPECT_FALSE(key_only.Matches(T(s, 8, 123)));

  Punctuation both({Pattern::Constant(Value(int64_t{7})),
                    Pattern::Range(Value(int64_t{0}), Value(int64_t{10}))});
  EXPECT_TRUE(both.Matches(T(s, 7, 10)));
  EXPECT_FALSE(both.Matches(T(s, 7, 11)));
  EXPECT_FALSE(both.Matches(T(s, 6, 5)));
}

TEST(PunctuationTest, AndIsPairwise) {
  Punctuation a({Pattern::Range(Value(int64_t{0}), Value(int64_t{10})),
                 Pattern::Wildcard()});
  Punctuation b({Pattern::Range(Value(int64_t{5}), Value(int64_t{20})),
                 Pattern::Constant(Value(int64_t{1}))});
  Punctuation c = Punctuation::And(a, b);
  EXPECT_EQ(c.pattern(0),
            Pattern::Range(Value(int64_t{5}), Value(int64_t{10})));
  EXPECT_EQ(c.pattern(1), Pattern::Constant(Value(int64_t{1})));
}

TEST(PunctuationTest, IsEmptyWhenAnyPatternEmpty) {
  Punctuation p({Pattern::Empty(), Pattern::Wildcard()});
  EXPECT_TRUE(p.IsEmpty());
  Punctuation q({Pattern::Constant(Value(int64_t{1})), Pattern::Wildcard()});
  EXPECT_FALSE(q.IsEmpty());
}

TEST(PunctuationTest, IsAllWildcard) {
  EXPECT_TRUE(Punctuation({Pattern::Wildcard(), Pattern::Wildcard()})
                  .IsAllWildcard());
  EXPECT_FALSE(
      Punctuation::ForAttribute(2, 0, Pattern::Constant(Value(int64_t{1})))
          .IsAllWildcard());
}

TEST(PunctuationTest, DisjointAndIsEmpty) {
  Punctuation a =
      Punctuation::ForAttribute(2, 0, Pattern::Constant(Value(int64_t{1})));
  Punctuation b =
      Punctuation::ForAttribute(2, 0, Pattern::Constant(Value(int64_t{2})));
  EXPECT_TRUE(Punctuation::And(a, b).IsEmpty());
}

TEST(PunctuationTest, EqualityAndToString) {
  Punctuation a =
      Punctuation::ForAttribute(2, 0, Pattern::Constant(Value(int64_t{1})));
  Punctuation b =
      Punctuation::ForAttribute(2, 0, Pattern::Constant(Value(int64_t{1})));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.ToString(), "<1, *>");
}

TEST(PunctuationTest, ByteSizeGrowsWithPatterns) {
  Punctuation small =
      Punctuation::ForAttribute(2, 0, Pattern::Constant(Value(int64_t{1})));
  Punctuation big = Punctuation::ForAttribute(
      2, 0,
      Pattern::EnumList({Value(int64_t{1}), Value(int64_t{2}),
                         Value(int64_t{3}), Value(int64_t{4})}));
  EXPECT_GT(big.ByteSize(), small.ByteSize());
}

}  // namespace
}  // namespace pjoin
