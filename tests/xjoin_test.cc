#include <gtest/gtest.h>

#include "gen/stream_generator.h"
#include "join/xjoin.h"
#include "test_util.h"

namespace pjoin {
namespace {

using testing::ElementsBuilder;
using testing::KeyPayloadSchema;
using testing::KP;
using testing::ReferenceJoinRows;
using testing::RunJoin;

JoinOptions WithMemoryThreshold(int64_t threshold) {
  JoinOptions opts;
  opts.runtime.memory_threshold_tuples = threshold;
  return opts;
}

TEST(XJoinTest, NoSpillBehavesLikeShj) {
  SchemaPtr sa = KeyPayloadSchema("a");
  SchemaPtr sb = KeyPayloadSchema("b");
  auto left = ElementsBuilder()
                  .Tup(KP(sa, 1, 1))
                  .Tup(KP(sa, 2, 2))
                  .Tup(KP(sa, 1, 3))
                  .Finish();
  auto right = ElementsBuilder()
                   .Tup(KP(sb, 1, 4))
                   .Tup(KP(sb, 2, 5))
                   .Finish();
  XJoin join(sa, sb);
  auto run = RunJoin(&join, left, right);
  EXPECT_EQ(run.results,
            ReferenceJoinRows(left, right, join.output_schema(), 0, 0));
  EXPECT_EQ(join.counters().Get("relocations"), 0);
}

TEST(XJoinTest, SpillsWhenMemoryThresholdReached) {
  SchemaPtr sa = KeyPayloadSchema("a");
  SchemaPtr sb = KeyPayloadSchema("b");
  ElementsBuilder lb;
  for (int i = 0; i < 50; ++i) lb.Tup(KP(sa, i % 5, i));
  XJoin join(sa, sb, WithMemoryThreshold(10));
  RunJoin(&join, lb.Finish(), ElementsBuilder().Finish());
  EXPECT_GT(join.counters().Get("relocations"), 0);
  EXPECT_LT(join.memory_state_tuples(), 50);
  EXPECT_EQ(join.total_state_tuples(), 50);  // spilled, not lost
}

TEST(XJoinTest, CleanupRecoversSpilledMatches) {
  SchemaPtr sa = KeyPayloadSchema("a");
  SchemaPtr sb = KeyPayloadSchema("b");
  // All left tuples arrive first and spill; right arrives after. The pairs
  // (spilled-left, right) can only come from the disk stages.
  ElementsBuilder lb;
  ElementsBuilder rb;
  for (int i = 0; i < 30; ++i) lb.Tup(KP(sa, i % 3, i));
  for (int i = 0; i < 10; ++i) rb.Tup(KP(sb, i % 3, 100 + i));
  auto left = lb.Finish();
  auto right = rb.Finish();
  XJoin join(sa, sb, WithMemoryThreshold(5));
  auto run = RunJoin(&join, left, right);
  EXPECT_EQ(run.results,
            ReferenceJoinRows(left, right, join.output_schema(), 0, 0));
  EXPECT_GT(join.counters().Get("cleanup_passes"), 0);
}

TEST(XJoinTest, ReactiveStageRunsOnStall) {
  SchemaPtr sa = KeyPayloadSchema("a");
  SchemaPtr sb = KeyPayloadSchema("b");
  // Large arrival gaps force stall detection in the pipeline.
  ElementsBuilder lb(/*step=*/50000);
  ElementsBuilder rb(/*step=*/50000);
  for (int i = 0; i < 20; ++i) lb.Tup(KP(sa, i % 2, i));
  for (int i = 0; i < 20; ++i) rb.Tup(KP(sb, i % 2, 100 + i));
  auto left = lb.Finish();
  auto right = rb.Finish();
  XJoin join(sa, sb, WithMemoryThreshold(4));
  auto run = RunJoin(&join, left, right, /*stall_gap=*/10000);
  EXPECT_GT(run.stalls, 0);
  EXPECT_GT(join.counters().Get("reactive_passes"), 0);
  // Reactive + cleanup must still produce exactly the reference results.
  EXPECT_EQ(run.results,
            ReferenceJoinRows(left, right, join.output_schema(), 0, 0));
}

TEST(XJoinTest, IgnoresPunctuations) {
  SchemaPtr sa = KeyPayloadSchema("a");
  SchemaPtr sb = KeyPayloadSchema("b");
  auto left = ElementsBuilder()
                  .Tup(KP(sa, 1, 0))
                  .Punct(testing::KeyPunct(1))
                  .Finish();
  XJoin join(sa, sb);
  RunJoin(&join, left, ElementsBuilder().Finish());
  EXPECT_EQ(join.counters().Get("puncts_ignored"), 1);
  EXPECT_EQ(join.total_state_tuples(), 1);
}

// Property sweep: correctness for every memory threshold against generated
// punctuated streams (XJoin must ignore the punctuations and still be exact).
class XJoinThresholdSweep : public ::testing::TestWithParam<int64_t> {};

TEST_P(XJoinThresholdSweep, ExactResultsUnderSpilling) {
  DomainSpec d;
  d.window_size = 8;
  StreamSpec spec;
  spec.num_tuples = 300;
  spec.punct_mean_interarrival_tuples = 15;
  GeneratedStreams g = GenerateStreams(d, spec, spec, 99);

  JoinOptions opts = WithMemoryThreshold(GetParam());
  XJoin join(g.schema_a, g.schema_b, opts);
  auto run = RunJoin(&join, g.a, g.b, /*stall_gap=*/8000);
  EXPECT_EQ(run.results,
            ReferenceJoinRows(g.a, g.b, join.output_schema(), 0, 0))
      << "memory threshold " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Thresholds, XJoinThresholdSweep,
                         ::testing::Values(2, 5, 17, 64, 1000000));

TEST(XJoinTest, ActivationThresholdGatesReactiveStage) {
  SchemaPtr sa = KeyPayloadSchema("a");
  SchemaPtr sb = KeyPayloadSchema("b");
  JoinOptions opts;
  opts.runtime.memory_threshold_tuples = 2;
  opts.runtime.disk_join_activation_threshold = 10;  // more than ever spills
  XJoin join(sa, sb, opts);
  ASSERT_TRUE(join.OnElement(0, StreamElement::MakeTuple(KP(sa, 1, 0), 1000))
                  .ok());
  ASSERT_TRUE(join.OnElement(0, StreamElement::MakeTuple(KP(sa, 1, 1), 2000))
                  .ok());
  ASSERT_GT(join.state(0).disk_tuples(), 0);
  ASSERT_LT(join.state(0).disk_tuples(), 10);
  ASSERT_TRUE(join.OnStreamsStalled().ok());
  EXPECT_EQ(join.counters().Get("reactive_passes"), 0);
}

TEST(XJoinTest, ReactiveStageEmitsMissingPairsExactlyOnce) {
  // Handcrafted sequence: left key-1 tuples spill, a right key-1 tuple
  // arrives afterwards (pairs missing), then a stall runs the reactive
  // stage. The missing pairs appear exactly once; a second stall must not
  // re-emit them (probe-time duplicate avoidance).
  SchemaPtr sa = KeyPayloadSchema("a");
  SchemaPtr sb = KeyPayloadSchema("b");
  JoinOptions opts;
  opts.runtime.memory_threshold_tuples = 2;
  XJoin join(sa, sb, opts);
  int64_t results = 0;
  join.set_result_callback([&results](const Tuple&) { ++results; });

  // Two left tuples -> threshold 2 reached -> both spill.
  ASSERT_TRUE(join.OnElement(0, StreamElement::MakeTuple(KP(sa, 1, 0), 1000))
                  .ok());
  ASSERT_TRUE(join.OnElement(0, StreamElement::MakeTuple(KP(sa, 1, 1), 2000))
                  .ok());
  ASSERT_GT(join.state(0).disk_tuples(), 0);
  // Right tuple arrives; probes empty left memory -> no results yet.
  ASSERT_TRUE(join.OnElement(1, StreamElement::MakeTuple(KP(sb, 1, 9), 3000))
                  .ok());
  EXPECT_EQ(results, 0);
  // Reactive pass finds the two disk x memory pairs.
  ASSERT_TRUE(join.OnStreamsStalled().ok());
  EXPECT_EQ(results, 2);
  // Re-running the reactive pass must not duplicate.
  ASSERT_TRUE(join.OnStreamsStalled().ok());
  EXPECT_EQ(results, 2);
  // Cleanup at end must not duplicate either.
  ASSERT_TRUE(join.OnElement(0, StreamElement::MakeEndOfStream(4000)).ok());
  ASSERT_TRUE(join.OnElement(1, StreamElement::MakeEndOfStream(4000)).ok());
  EXPECT_EQ(results, 2);
}

TEST(XJoinTest, CleanupJoinsDiskAgainstDisk) {
  // Both sides spill before ever meeting; only the cleanup stage can emit
  // the pairs.
  SchemaPtr sa = KeyPayloadSchema("a");
  SchemaPtr sb = KeyPayloadSchema("b");
  JoinOptions opts;
  opts.runtime.memory_threshold_tuples = 2;
  XJoin join(sa, sb, opts);
  int64_t results = 0;
  join.set_result_callback([&results](const Tuple&) { ++results; });

  // Same key throughout so both tuples share a partition and spill
  // together when the threshold is hit.
  ASSERT_TRUE(join.OnElement(0, StreamElement::MakeTuple(KP(sa, 1, 0), 1000))
                  .ok());
  ASSERT_TRUE(join.OnElement(0, StreamElement::MakeTuple(KP(sa, 1, 2), 2000))
                  .ok());  // spills both left tuples
  ASSERT_TRUE(join.OnElement(1, StreamElement::MakeTuple(KP(sb, 1, 1), 3000))
                  .ok());
  ASSERT_TRUE(join.OnElement(1, StreamElement::MakeTuple(KP(sb, 1, 3), 4000))
                  .ok());  // spills both right tuples
  EXPECT_EQ(results, 0);
  ASSERT_TRUE(join.OnElement(0, StreamElement::MakeEndOfStream(5000)).ok());
  ASSERT_TRUE(join.OnElement(1, StreamElement::MakeEndOfStream(5000)).ok());
  EXPECT_EQ(results, 4);  // the full 2x2 cross product, once each
}

TEST(XJoinTest, DiskComparisonCountersTracked) {
  SchemaPtr sa = KeyPayloadSchema("a");
  SchemaPtr sb = KeyPayloadSchema("b");
  ElementsBuilder lb;
  ElementsBuilder rb;
  for (int i = 0; i < 30; ++i) lb.Tup(KP(sa, 1, i));
  for (int i = 0; i < 30; ++i) rb.Tup(KP(sb, 1, 100 + i));
  XJoin join(sa, sb, WithMemoryThreshold(8));
  RunJoin(&join, lb.Finish(), rb.Finish());
  EXPECT_GT(join.counters().Get("disk_comparisons"), 0);
  EXPECT_GT(join.state(0).io_stats().pages_written +
                join.state(1).io_stats().pages_written,
            0);
}

}  // namespace
}  // namespace pjoin
