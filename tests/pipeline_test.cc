// End-to-end pipeline tests: the paper's Fig 1 query shape —
// PJoin(Open, Bid) -> GroupBy(item) -> sink.

#include <gtest/gtest.h>

#include <algorithm>

#include "gen/auction.h"
#include "join/pjoin.h"
#include "join/shj.h"
#include "ops/groupby.h"
#include "ops/pipeline.h"
#include "ops/sink.h"
#include "test_util.h"

namespace pjoin {
namespace {

using testing::ElementsBuilder;
using testing::KeyPayloadSchema;
using testing::KP;

TEST(PipelineTest, JoinOutputFlowsDownstream) {
  SchemaPtr sa = KeyPayloadSchema("a");
  SchemaPtr sb = KeyPayloadSchema("b");
  PJoin join(sa, sb);
  CollectorSink sink;
  JoinPipeline pipe(&join, &sink);
  ASSERT_TRUE(pipe.Run(ElementsBuilder().Tup(KP(sa, 1, 10)).Finish(),
                       ElementsBuilder().Tup(KP(sb, 1, 20)).Finish())
                  .ok());
  EXPECT_EQ(sink.tuples().size(), 1u);
  EXPECT_TRUE(sink.saw_end_of_stream());
  EXPECT_EQ(pipe.elements_processed(), 4);  // 2 tuples + 2 EOS
}

TEST(PipelineTest, StallDetection) {
  SchemaPtr sa = KeyPayloadSchema("a");
  SchemaPtr sb = KeyPayloadSchema("b");
  SymmetricHashJoin join(sa, sb);
  PipelineOptions opts;
  opts.stall_gap_micros = 500;
  JoinPipeline pipe(&join, nullptr, opts);
  ASSERT_TRUE(pipe.Run(ElementsBuilder(/*step=*/1000).Tup(KP(sa, 1, 0)).Finish(),
                       ElementsBuilder(/*step=*/1000).Finish())
                  .ok());
  EXPECT_GT(pipe.stalls_detected(), 0);
}

TEST(PipelineTest, ProgressCallbackCountsElements) {
  SchemaPtr sa = KeyPayloadSchema("a");
  SchemaPtr sb = KeyPayloadSchema("b");
  SymmetricHashJoin join(sa, sb);
  int64_t last = 0;
  PipelineOptions opts;
  opts.progress = [&last](int64_t n) { last = n; };
  JoinPipeline pipe(&join, nullptr, opts);
  ASSERT_TRUE(pipe.Run(ElementsBuilder().Tup(KP(sa, 1, 0)).Finish(),
                       ElementsBuilder().Finish())
                  .ok());
  EXPECT_EQ(last, 3);
}

// The full motivating query of the paper (Fig 1): join Open and Bid on
// item_id, then sum bid increases per item. Punctuations let the group-by
// emit early; the final output must equal the non-punctuated run.
TEST(PipelineTest, AuctionQueryEndToEnd) {
  AuctionSpec spec;
  spec.num_bids = 2000;
  spec.open_window = 10;
  spec.close_mean_interarrival_bids = 25;
  AuctionStreams streams = GenerateAuction(spec, 31);

  auto run = [&](bool punctuated) {
    JoinOptions jopts;
    jopts.runtime.propagate_count_threshold = punctuated ? 2 : 0;
    jopts.propagate_on_finish = punctuated;
    PJoin join(streams.open_schema, streams.bid_schema, jopts);
    // Group the join output by item_id (field 0) and sum bid increases.
    auto inc_idx = join.output_schema()->IndexOf("increase");
    PJOIN_DCHECK(inc_idx.ok());
    // Field 3 is the bid-side item_id, equal to field 0 by the equi-join.
    GroupBy gb(join.output_schema(), 0,
               {{AggKind::kSum, inc_idx.value(), "sum_increase"},
                {AggKind::kCount, 0, "num_bids"}},
               /*group_aliases=*/{3});
    CollectorSink sink;
    gb.set_downstream(&sink);
    JoinPipeline pipe(&join, &gb);
    Status st = pipe.Run(streams.open, streams.bid);
    PJOIN_DCHECK(st.ok());
    std::vector<std::string> rows;
    for (const Tuple& t : sink.tuples()) rows.push_back(t.ToString());
    std::sort(rows.begin(), rows.end());
    return std::make_pair(rows, sink.punctuations().size());
  };

  auto [punctuated_rows, punctuated_puncts] = run(true);
  auto [plain_rows, plain_puncts] = run(false);
  EXPECT_EQ(punctuated_rows, plain_rows);
  // With propagation on, the group-by received punctuations and could have
  // emitted early (it forwards them to the sink).
  EXPECT_GT(punctuated_puncts, 0u);
  EXPECT_EQ(plain_puncts, 0u);
}

TEST(PipelineTest, GroupByEmitsEarlyWithPropagation) {
  AuctionSpec spec;
  spec.num_bids = 2000;
  spec.open_window = 10;
  spec.close_mean_interarrival_bids = 25;
  AuctionStreams streams = GenerateAuction(spec, 37);

  JoinOptions jopts;
  jopts.runtime.propagate_count_threshold = 2;
  PJoin join(streams.open_schema, streams.bid_schema, jopts);
  GroupBy gb(join.output_schema(), 0, {{AggKind::kCount, 0, "n"}},
             /*group_aliases=*/{3});

  CountingSink sink;
  gb.set_downstream(&sink);
  JoinPipeline pipe(&join, &gb);
  ASSERT_TRUE(pipe.Run(streams.open, streams.bid).ok());
  // A healthy number of groups closed before the stream ended (propagated
  // punctuations reached the group-by and released state early).
  EXPECT_GT(gb.counters().Get("groups_closed_by_punct"), 10);
}

}  // namespace
}  // namespace pjoin
