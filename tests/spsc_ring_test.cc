// SpscRing: wraparound and close semantics single-threaded, then real
// producer/consumer races. The cross-thread cases are the ones the TSan CI
// job exists for — they hammer the acquire/release publication protocol and
// the eventcount park paths with far more items than the ring holds.

#include "common/spsc_ring.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <numeric>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace pjoin {
namespace {

TEST(SpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(0).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(64).capacity(), 64u);
  EXPECT_EQ(SpscRing<int>(65).capacity(), 128u);
}

TEST(SpscRingTest, ExactCapacityConstructionAdmitsPowersOfTwo) {
  // Compile-time path: static_assert-checked capacities.
  auto r1 = SpscRing<int>::WithCapacity<1>();
  EXPECT_EQ(r1.capacity(), 1u);
  auto r8 = SpscRing<int>::WithCapacity<8>();
  EXPECT_EQ(r8.capacity(), 8u);
  // The constexpr predicate is usable in callers' own static_asserts.
  static_assert(SpscRing<int>::IsValidExactCapacity(4));
  static_assert(!SpscRing<int>::IsValidExactCapacity(0));
  static_assert(!SpscRing<int>::IsValidExactCapacity(3));
  // Runtime path.
  auto r2 = SpscRing<int>::WithExactCapacity(2);
  EXPECT_EQ(r2.capacity(), 2u);
}

TEST(SpscRingDeathTest, ExactCapacityZeroDies) {
  EXPECT_DEATH(SpscRing<int>::WithExactCapacity(0), "PJOIN_DCHECK failed");
}

TEST(SpscRingDeathTest, ExactCapacityNonPowerOfTwoDies) {
  EXPECT_DEATH(SpscRing<int>::WithExactCapacity(3), "PJOIN_DCHECK failed");
  EXPECT_DEATH(SpscRing<int>::WithExactCapacity(6), "PJOIN_DCHECK failed");
}

// Capacity 1 works end-to-end: every push crosses the full boundary and
// every pop the empty one, so this is the tightest park/unpark window the
// ring supports (the model-checked twin explores ALL its interleavings in
// tests/model_check_test.cc).
TEST(SpscRingTest, ExactCapacityOneTransportsFifo) {
  auto ring = SpscRing<int>::WithCapacity<1>();
  EXPECT_EQ(ring.capacity(), 1u);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(ring.TryPush(int(i)));
    EXPECT_FALSE(ring.TryPush(int(i)));  // full at one element
    int v = -1;
    ASSERT_TRUE(ring.TryPop(&v));
    EXPECT_EQ(v, i);
    EXPECT_FALSE(ring.TryPop(&v));  // empty again
  }
}

TEST(SpscRingTest, PushPopFifoAcrossWraparound) {
  SpscRing<int> ring(4);
  // Many times the capacity, so the indices wrap repeatedly. Skipping every
  // third pop varies the occupancy; a full ring is drained by one first.
  int next_out = 0;
  for (int i = 0; i < 1000; ++i) {
    if (ring.size() == ring.capacity()) {
      int v = -1;
      ASSERT_TRUE(ring.TryPop(&v));
      EXPECT_EQ(v, next_out++);
    }
    ASSERT_TRUE(ring.TryPush(int(i)));
    if (i % 3 == 0) continue;
    int v = -1;
    ASSERT_TRUE(ring.TryPop(&v));
    EXPECT_EQ(v, next_out++);
  }
  int v = -1;
  while (ring.TryPop(&v)) EXPECT_EQ(v, next_out++);
  EXPECT_EQ(next_out, 1000);
}

TEST(SpscRingTest, TryPushFailsWhenFullAndKeepsItem) {
  SpscRing<std::string> ring(2);
  ASSERT_TRUE(ring.TryPush("a"));
  ASSERT_TRUE(ring.TryPush("b"));
  std::string c = "c";
  EXPECT_FALSE(ring.TryPush(std::move(c)));
  // A failed push must leave the argument usable for the retry.
  EXPECT_EQ(c, "c");
  EXPECT_EQ(ring.size(), 2u);
  std::string out;
  ASSERT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(out, "a");
  EXPECT_TRUE(ring.TryPush(std::move(c)));
}

TEST(SpscRingTest, TryPopFailsWhenEmpty) {
  SpscRing<int> ring(4);
  int v = 42;
  EXPECT_FALSE(ring.TryPop(&v));
  EXPECT_EQ(v, 42);
  EXPECT_EQ(ring.size(), 0u);
}

TEST(SpscRingTest, CloseMakesConsumerExhaustedAfterDrain) {
  SpscRing<int> ring(4);
  ASSERT_TRUE(ring.TryPush(1));
  ring.Close();
  EXPECT_TRUE(ring.closed());
  EXPECT_FALSE(ring.exhausted());  // still one item to drain
  int v = 0;
  EXPECT_TRUE(ring.PopBlocking(&v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(ring.exhausted());
  EXPECT_FALSE(ring.PopBlocking(&v));  // exhausted, no block
}

TEST(SpscRingTest, PopBlockingWakesOnPush) {
  SpscRing<int> ring(4);
  int got = 0;
  std::thread consumer([&] {
    int v = 0;
    ASSERT_TRUE(ring.PopBlocking(&v));
    got = v;
  });
  // Let the consumer reach (or pass) the park path, then publish.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_TRUE(ring.TryPush(7));
  consumer.join();
  EXPECT_EQ(got, 7);
}

TEST(SpscRingTest, PopBlockingWakesOnClose) {
  SpscRing<int> ring(4);
  bool exhausted = false;
  std::thread consumer([&] {
    int v = 0;
    exhausted = !ring.PopBlocking(&v);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ring.Close();
  consumer.join();
  EXPECT_TRUE(exhausted);
}

TEST(SpscRingTest, PushBlockingWakesOnPop) {
  SpscRing<int> ring(2);
  ASSERT_TRUE(ring.TryPush(0));
  ASSERT_TRUE(ring.TryPush(1));
  std::thread producer([&] { ring.PushBlocking(2); });
  // The producer is parked on the full ring; one pop must release it.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  int v = -1;
  ASSERT_TRUE(ring.TryPop(&v));
  EXPECT_EQ(v, 0);
  producer.join();
  EXPECT_EQ(ring.size(), 2u);
}

// The TSan workhorse: one producer races one consumer through a ring far
// smaller than the item count, forcing constant wraparound and both park
// paths. Values must arrive exactly once, in order.
TEST(SpscRingTest, ConcurrentStressPreservesFifo) {
  constexpr int64_t kItems = 100000;
  SpscRing<int64_t> ring(8);
  int64_t received = 0;
  int64_t sum = 0;
  bool in_order = true;
  std::thread producer([&] {
    for (int64_t i = 0; i < kItems; ++i) ring.PushBlocking(int64_t(i));
    ring.Close();
  });
  std::thread consumer([&] {
    int64_t v = 0;
    int64_t expect = 0;
    while (ring.PopBlocking(&v)) {
      if (v != expect++) in_order = false;
      ++received;
      sum += v;
    }
  });
  producer.join();
  consumer.join();
  EXPECT_TRUE(in_order);
  EXPECT_EQ(received, kItems);
  EXPECT_EQ(sum, kItems * (kItems - 1) / 2);
  EXPECT_TRUE(ring.exhausted());
}

// Close() racing the consumer's drain through a capacity-1 ring — the
// tightest park/unpark window: the close/pop race decides between "drain
// the last element" and "report exhausted" on every iteration. Elements
// pushed before Close must never be lost, whatever the interleaving. The
// model-checked twin of this test (tests/model_check_test.cc,
// SpscRingModel.CloseRacingPopDrainsCapacityOne) proves it over ALL
// interleavings at small size; this raw-build version hammers the real
// futex paths.
TEST(SpscRingTest, CloseRacingPopDrainsCapacityOne) {
  for (int round = 0; round < 200; ++round) {
    auto ring = SpscRing<int64_t>::WithCapacity<1>();
    std::atomic<int64_t> pushed{0};
    std::thread producer([&] {
      for (int64_t i = 1; i <= 64; ++i) {
        if (!ring.TryPush(int64_t{i})) break;  // consumer lags: close early
        pushed.store(i);
      }
      ring.Close();
    });
    int64_t seen = 0;
    int64_t v = 0;
    while (ring.PopBlocking(&v)) {
      ASSERT_EQ(v, seen + 1) << "lost or duplicated element in drain";
      seen = v;
    }
    producer.join();
    EXPECT_EQ(seen, pushed.load());
    EXPECT_TRUE(ring.exhausted());
  }
}

// Move-only payloads survive the transport (the pipeline ships batches of
// vectors this way).
TEST(SpscRingTest, ConcurrentStressMoveOnlyPayload) {
  constexpr int kBatches = 5000;
  SpscRing<std::vector<int>> ring(4);
  int64_t total = 0;
  std::thread producer([&] {
    for (int i = 0; i < kBatches; ++i) {
      ring.PushBlocking(std::vector<int>(3, i));
    }
    ring.Close();
  });
  std::vector<int> batch;
  while (ring.PopBlocking(&batch)) {
    ASSERT_EQ(batch.size(), 3u);
    total += batch[0];
  }
  producer.join();
  EXPECT_EQ(total, int64_t(kBatches) * (kBatches - 1) / 2);
}

TEST(SpscRingTest, ParkCountersCountSlowPathEntries) {
  {
    // Uncontended single-threaded traffic never parks.
    SpscRing<int> ring(4);
    for (int i = 0; i < 100; ++i) {
      ring.PushBlocking(int(i));
      int v = 0;
      ASSERT_TRUE(ring.TryPop(&v));
    }
    EXPECT_EQ(ring.producer_parks(), 0);
    EXPECT_EQ(ring.consumer_parks(), 0);
  }
  {
    // A consumer that outpaces a slow producer parks at least once.
    SpscRing<int> ring(4);
    std::thread producer([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      ring.PushBlocking(1);
      ring.Close();
    });
    int v = 0;
    EXPECT_TRUE(ring.PopBlocking(&v));
    producer.join();
    EXPECT_GE(ring.consumer_parks(), 1);
  }
}

}  // namespace
}  // namespace pjoin
