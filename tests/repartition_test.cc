// Tests for the runtime repartitioning layer (ops/repartition.h) and its
// integration into the parallel pipeline: shard-map unit semantics, the
// space-saving hot-key detector, recorded punctuation fan-outs on the
// release board, and the dual-view migration oracle — for skewed streams
// with forced mid-stream migrations / hot-key replication, the adaptive
// pipeline's merged output must equal the single-threaded reference with
// zero lost or duplicated results and exactly-once punctuation release,
// including when a fault plan fails the handoff mid-flight.

#include "ops/repartition.h"

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fault/fault_plan.h"
#include "gen/stream_generator.h"
#include "join/pjoin.h"
#include "ops/parallel_pipeline.h"
#include "ops/release_board.h"
#include "test_util.h"

namespace pjoin {
namespace {

using testing::ElementsBuilder;
using testing::KeyPayloadSchema;
using testing::KeyPunct;
using testing::KP;
using testing::ReferenceJoinRows;

/// Canonicalized pipeline output: sorted result rows and sorted released
/// punctuation strings (multiset comparisons across runs).
struct CanonicalOut {
  std::vector<std::string> results;
  std::vector<std::string> punctuations;
};

// ---- ShardMap ----

TEST(ShardMapTest, StaticMappingIsStableAndInRange) {
  ShardMap map(4);
  for (uint64_t h = 0; h < 1000; ++h) {
    const int shard = map.OwnerOf(h);
    EXPECT_GE(shard, 0);
    EXPECT_LT(shard, 4);
    EXPECT_EQ(shard, map.StaticShardOf(h));
    EXPECT_EQ(shard, map.OwnerOf(h)) << "must be deterministic";
  }
}

TEST(ShardMapTest, MigrationOverrideRedirectsOnlyThatKey) {
  ShardMap map(4);
  const uint64_t h = 0xdeadbeefull;
  const int before = map.OwnerOf(h);
  const int target = (before + 2) % 4;
  map.SetOwner(h, target);
  EXPECT_EQ(map.OwnerOf(h), target);
  EXPECT_EQ(map.migrated_keys(), 1);
  // Other keys keep their static placement.
  for (uint64_t other = 0; other < 100; ++other) {
    if (other == h) continue;
    EXPECT_EQ(map.OwnerOf(other), map.StaticShardOf(other));
  }
}

TEST(ShardMapTest, ReplicationSpraysRoundRobin) {
  ShardMap map(3);
  const uint64_t h = 42;
  EXPECT_FALSE(map.IsReplicated(h));
  map.MarkReplicated(h, /*spray_side=*/1);
  EXPECT_TRUE(map.IsReplicated(h));
  EXPECT_EQ(map.SpraySideOf(h), 1);
  EXPECT_EQ(map.replicated_keys(), 1);
  // The spray cursor walks every shard before repeating.
  std::vector<int> seen;
  for (int i = 0; i < 6; ++i) seen.push_back(map.NextSprayShard(h));
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 2, 0, 1, 2}));
}

// ---- HotKeyDetector ----

TEST(HotKeyDetectorTest, DominantKeySurfacesInTopK) {
  HotKeyDetector detector(/*capacity=*/4, /*num_shards=*/2);
  // One key with half the stream, 32 distinct background keys fighting
  // over the remaining sketch slots.
  for (int i = 0; i < 256; ++i) {
    detector.Observe(Value(int64_t{7}), /*key_hash=*/7, /*side=*/0);
    const int64_t bg = 100 + (i % 32);
    detector.Observe(Value(bg), static_cast<uint64_t>(bg), /*side=*/1);
  }
  const std::vector<HotKeyDetector::Entry> top = detector.TopK();
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(top[0].key_hash, 7u);
  // Space-saving bounds: estimate >= true count, estimate - error <= true.
  EXPECT_GE(top[0].count, 256);
  EXPECT_LE(top[0].count - top[0].error, 256);
  EXPECT_GT(top[0].side_count[0], top[0].side_count[1]);
}

TEST(HotKeyDetectorTest, WindowImbalanceTracksLoadsAndResets) {
  HotKeyDetector detector(4, /*num_shards=*/4);
  EXPECT_DOUBLE_EQ(detector.WindowImbalance(), 0.0);
  for (int i = 0; i < 60; ++i) detector.ObserveRouted(0);
  for (int s = 1; s < 4; ++s) {
    for (int i = 0; i < 20; ++i) detector.ObserveRouted(s);
  }
  // max=60, mean=30 -> 2.0.
  EXPECT_DOUBLE_EQ(detector.WindowImbalance(), 2.0);
  EXPECT_EQ(detector.window_tuples(), 120);
  detector.ResetWindow();
  EXPECT_EQ(detector.window_tuples(), 0);
}

// ---- Release board: recorded fan-outs ----

TEST(ReleaseBoardTest, RecordedFanoutOverridesPatternInference) {
  PunctReleaseBoard board;
  board.Configure(/*left_key_pos=*/0, /*right_key_pos=*/2, /*num_shards=*/4);
  // Output-schema punctuation with a constant join key: the static
  // inference says one shard.
  std::vector<Pattern> patterns(4, Pattern::Wildcard());
  patterns[0] = Pattern::Constant(Value(int64_t{5}));
  patterns[2] = Pattern::Constant(Value(int64_t{5}));
  const Punctuation p(std::move(patterns));
  ASSERT_EQ(board.ExpectedShards(p), 1);
  // The router replicated the key and broadcast this round to all 4 shards.
  board.NoteDispatch(p, 4);
  EXPECT_FALSE(board.Release(p));
  EXPECT_FALSE(board.Release(p));
  EXPECT_FALSE(board.Release(p));
  EXPECT_EQ(board.pending_rounds(), 1);
  EXPECT_TRUE(board.Release(p));
  EXPECT_EQ(board.pending_rounds(), 0);
  // The recorded fan-out was consumed; the next round falls back to the
  // pattern inference (one shard).
  EXPECT_TRUE(board.Release(p));
  // Recorded fan-outs of the same string are consumed in dispatch order.
  board.NoteDispatch(p, 2);
  board.NoteDispatch(p, 1);
  EXPECT_FALSE(board.Release(p));
  EXPECT_TRUE(board.Release(p));
  EXPECT_TRUE(board.Release(p));
}

// ---- Pipeline integration: the dual-view migration oracle ----

JoinOptions MemoryOnlyOptions() {
  // Keys stay memory-resident so their state is handoff-eligible (disk
  // spill / purge-buffer residue makes ExtractKeyState refuse, which is
  // its own test below via the rejected-handoff path).
  JoinOptions opts;
  opts.num_partitions = 8;
  opts.runtime.purge_threshold = 1;
  opts.runtime.propagate_count_threshold = 1;
  return opts;
}

struct ParallelRun {
  CanonicalOut out;
  std::unique_ptr<ParallelJoinPipeline> pipeline;
};

ParallelRun RunPipeline(const SchemaPtr& left_schema,
                        const SchemaPtr& right_schema,
                        const JoinOptions& jopts,
                        const std::vector<StreamElement>& left,
                        const std::vector<StreamElement>& right,
                        ParallelPipelineOptions popts) {
  ParallelRun run;
  run.pipeline = std::make_unique<ParallelJoinPipeline>(
      [&](int) {
        return std::make_unique<PJoin>(left_schema, right_schema, jopts);
      },
      popts);
  run.pipeline->set_result_callback([&run](const Tuple& t) {
    run.out.results.push_back(t.ToString());
  });
  run.pipeline->set_punct_callback([&run](const Punctuation& p) {
    run.out.punctuations.push_back(p.ToString());
  });
  const Status st = run.pipeline->Run(left, right);
  EXPECT_TRUE(st.ok()) << st.ToString();
  std::sort(run.out.results.begin(), run.out.results.end());
  std::sort(run.out.punctuations.begin(), run.out.punctuations.end());
  return run;
}

GeneratedStreams SkewedStreams(uint64_t seed, double zipf_s,
                               int64_t num_tuples) {
  DomainSpec domain;
  domain.window_size = 16;
  // Stream A is the skewed one (celebrity keys), B stays uniform — the
  // textbook skew shape, and it keeps the join fan-out bounded.
  StreamSpec spec_a;
  spec_a.num_tuples = num_tuples;
  spec_a.punct_mean_interarrival_tuples = 40.0;
  spec_a.zipf_s = zipf_s;
  spec_a.flush_punctuations_at_end = true;
  StreamSpec spec_b = spec_a;
  spec_b.zipf_s = 0.0;
  return GenerateStreams(domain, spec_a, spec_b, seed);
}

// The dual-view oracle: a skewed stream with migrations forced mid-stream
// must produce exactly the single-threaded reference result multiset, and
// the released punctuation multiset of a static run of the same pipeline
// (exactly-once: nothing lost at the old owner, nothing duplicated at the
// new one, every dispatched punctuation round released exactly once).
TEST(RepartitionOracleTest, ForcedMigrationsMatchReferenceAcrossSeeds) {
  for (const uint64_t seed : {11u, 42u, 77u, 1234u}) {
    GeneratedStreams streams = SkewedStreams(seed, /*zipf_s=*/1.2,
                                             /*num_tuples=*/2000);
    const JoinOptions jopts = MemoryOnlyOptions();
    const std::vector<std::string> reference = ReferenceJoinRows(
        streams.a, streams.b,
        PJoin(streams.schema_a, streams.schema_b, jopts).output_schema(), 0,
        0);

    ParallelPipelineOptions static_opts;
    static_opts.num_shards = 4;
    static_opts.batch_size = 64;
    ParallelRun static_run =
        RunPipeline(streams.schema_a, streams.schema_b, jopts, streams.a,
                    streams.b, static_opts);
    EXPECT_EQ(static_run.out.results, reference) << "seed=" << seed;

    ParallelPipelineOptions adaptive_opts = static_opts;
    adaptive_opts.repartition.enabled = true;
    adaptive_opts.repartition.sample_every = 1;
    adaptive_opts.repartition.check_interval = 128;
    adaptive_opts.repartition.min_tuples = 256;
    adaptive_opts.repartition.force_migration_interval = 256;
    ParallelRun adaptive =
        RunPipeline(streams.schema_a, streams.schema_b, jopts, streams.a,
                    streams.b, adaptive_opts);
    EXPECT_EQ(adaptive.out.results, reference) << "seed=" << seed;
    EXPECT_EQ(adaptive.out.punctuations, static_run.out.punctuations)
        << "seed=" << seed;
    EXPECT_GT(adaptive.pipeline->handoffs_started(), 0) << "seed=" << seed;
    EXPECT_GT(adaptive.pipeline->migrations_completed(), 0)
        << "seed=" << seed;
    EXPECT_EQ(adaptive.pipeline->shard_map().migrated_keys(),
              adaptive.pipeline->migrations_completed())
        << "seed=" << seed;
  }
}

// Hot-key replication: one celebrity key dominating the probe stream gets
// replicated (build side broadcast, probe side sprayed); the result
// multiset still equals the reference and the key's punctuation — now a
// broadcast round — is still released exactly once.
TEST(RepartitionOracleTest, HotKeyReplicationMatchesReference) {
  const SchemaPtr sa = KeyPayloadSchema("a");
  const SchemaPtr sb = KeyPayloadSchema("b");
  ElementsBuilder left, right;
  const int64_t hot = 7;
  // Left: the hot key dominates (~2/3 of tuples); right: a handful of hot
  // matches plus uniform background.
  for (int i = 0; i < 900; ++i) {
    left.Tup(KP(sa, hot, i));
    if (i % 2 == 0) left.Tup(KP(sa, 100 + (i % 40), i));
  }
  // Hot matches on the right both BEFORE the replication handoff (the
  // early batch) and AFTER it (sprinkled through the background): a late
  // build-side tuple broadcasts to every shard and must pair with the
  // owner's pre-handoff spray state exactly once — installing the spray
  // side's state anywhere else would duplicate those results.
  for (int i = 0; i < 12; ++i) right.Tup(KP(sb, hot, 1000 + i));
  for (int i = 0; i < 400; ++i) {
    right.Tup(KP(sb, 100 + (i % 40), i));
    if (i % 40 == 0) right.Tup(KP(sb, hot, 2000 + i));
  }
  left.Punct(KeyPunct(hot));
  right.Punct(KeyPunct(hot));
  for (int k = 100; k < 140; ++k) {
    left.Punct(KeyPunct(k));
    right.Punct(KeyPunct(k));
  }
  const std::vector<StreamElement> l = left.Finish();
  const std::vector<StreamElement> r = right.Finish();

  const JoinOptions jopts = MemoryOnlyOptions();
  const std::vector<std::string> reference =
      ReferenceJoinRows(l, r, PJoin(sa, sb, jopts).output_schema(), 0, 0);

  ParallelPipelineOptions static_opts;
  static_opts.num_shards = 4;
  static_opts.batch_size = 32;
  ParallelRun static_run = RunPipeline(sa, sb, jopts, l, r, static_opts);
  EXPECT_EQ(static_run.out.results, reference);

  ParallelPipelineOptions adaptive_opts = static_opts;
  adaptive_opts.repartition.enabled = true;
  adaptive_opts.repartition.sample_every = 1;
  adaptive_opts.repartition.check_interval = 128;
  adaptive_opts.repartition.min_tuples = 256;
  adaptive_opts.repartition.imbalance_trigger = 1.05;
  adaptive_opts.repartition.hot_fraction = 0.05;
  ParallelRun adaptive = RunPipeline(sa, sb, jopts, l, r, adaptive_opts);
  EXPECT_EQ(adaptive.out.results, reference);
  EXPECT_EQ(adaptive.out.punctuations, static_run.out.punctuations);
  EXPECT_GT(adaptive.pipeline->hot_keys_active(), 0);
}

// Mid-handoff failures (FaultPlan::migration): a failed install returns
// the extracted state to the source and the map never changes; a failed
// extract aborts before anything moves. Either way the run's output is
// untouched and every handoff is accounted as a rollback.
TEST(RepartitionFaultTest, FailedHandoffRollsBackCleanly) {
  for (const bool fail_install : {true, false}) {
    GeneratedStreams streams = SkewedStreams(/*seed=*/99, /*zipf_s=*/1.2,
                                             /*num_tuples=*/2000);
    const JoinOptions jopts = MemoryOnlyOptions();
    const std::vector<std::string> reference = ReferenceJoinRows(
        streams.a, streams.b,
        PJoin(streams.schema_a, streams.schema_b, jopts).output_schema(), 0,
        0);

    FaultPlan plan;
    plan.seed = 7;
    if (fail_install) {
      plan.migration.install_error_rate = 1.0;
    } else {
      plan.migration.extract_error_rate = 1.0;
    }
    ASSERT_TRUE(plan.migration.enabled());

    ParallelPipelineOptions popts;
    popts.num_shards = 4;
    popts.batch_size = 64;
    popts.repartition.enabled = true;
    popts.repartition.sample_every = 1;
    popts.repartition.check_interval = 128;
    popts.repartition.min_tuples = 256;
    popts.repartition.force_migration_interval = 256;
    popts.repartition.fault_plan = &plan;
    ParallelRun run =
        RunPipeline(streams.schema_a, streams.schema_b, jopts, streams.a,
                    streams.b, popts);
    EXPECT_EQ(run.out.results, reference) << "fail_install=" << fail_install;
    EXPECT_GT(run.pipeline->migration_rollbacks(), 0)
        << "fail_install=" << fail_install;
    EXPECT_EQ(run.pipeline->migrations_completed(), 0)
        << "fail_install=" << fail_install;
    EXPECT_EQ(run.pipeline->shard_map().migrated_keys(), 0)
        << "fail_install=" << fail_install;
  }
}

// Disabled policy is byte-for-byte the static pipeline: no handoffs, no
// map mutations, and (trivially) the reference results.
TEST(RepartitionOracleTest, DisabledPolicyNeverRepartitions) {
  GeneratedStreams streams = SkewedStreams(/*seed=*/5, /*zipf_s=*/1.6,
                                           /*num_tuples=*/1000);
  const JoinOptions jopts = MemoryOnlyOptions();
  ParallelPipelineOptions popts;
  popts.num_shards = 4;
  ParallelRun run = RunPipeline(streams.schema_a, streams.schema_b, jopts,
                                streams.a, streams.b, popts);
  EXPECT_EQ(run.pipeline->handoffs_started(), 0);
  EXPECT_EQ(run.pipeline->migrations_completed(), 0);
  EXPECT_EQ(run.pipeline->hot_keys_active(), 0);
  EXPECT_EQ(run.pipeline->shard_map().migrated_keys(), 0);
}

}  // namespace
}  // namespace pjoin
