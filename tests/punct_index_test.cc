// Direct unit tests of the punctuation-index machinery (paper Fig 2/3):
// BuildIndex, IndexEntry, OnEntryDiscarded and Propagate in isolation.

#include <gtest/gtest.h>

#include "join/punct_index.h"
#include "storage/simulated_disk.h"

namespace pjoin {
namespace {

SchemaPtr KP() {
  return Schema::Make({{"key", ValueType::kInt64}, {"p", ValueType::kInt64}});
}

TupleEntry MakeEntry(const SchemaPtr& s, int64_t key, int64_t ats) {
  TupleEntry e;
  e.tuple = Tuple(s, {Value(key), Value(key * 10)});
  e.ats = ats;
  return e;
}

Punctuation KeyPunct(int64_t key) {
  return Punctuation::ForAttribute(2, 0, Pattern::Constant(Value(key)));
}

class PunctIndexTest : public ::testing::Test {
 protected:
  PunctIndexTest()
      : schema_(KP()),
        state_("s", schema_, 0, 4, std::make_unique<SimulatedDisk>()),
        ps_(0) {}

  SchemaPtr schema_;
  HashState state_;
  PunctuationSet ps_;
  CounterSet counters_;
};

TEST_F(PunctIndexTest, BuildIndexAssignsFirstArrivedPid) {
  state_.InsertMemory(MakeEntry(schema_, 5, 1));
  state_.InsertMemory(MakeEntry(schema_, 5, 2));
  state_.InsertMemory(MakeEntry(schema_, 6, 3));
  int64_t pid5 = ps_.Add(KeyPunct(5), 0).value();
  int64_t pid_range =
      ps_.Add(Punctuation::ForAttribute(
                  2, 0, Pattern::Range(Value(int64_t{0}), Value(int64_t{9}))),
              1)
          .value();

  const int64_t assigned =
      PunctuationIndexer::BuildIndex(&ps_, &state_, &counters_);
  EXPECT_EQ(assigned, 3);
  // Key-5 entries get the earlier punctuation; key-6 the range.
  EXPECT_EQ(ps_.Find(pid5)->match_count, 2);
  EXPECT_EQ(ps_.Find(pid_range)->match_count, 1);
  EXPECT_TRUE(ps_.Find(pid5)->indexed);
  EXPECT_TRUE(ps_.Find(pid_range)->indexed);
  EXPECT_EQ(counters_.Get("index_assignments"), 3);
}

TEST_F(PunctIndexTest, BuildIndexIsIncremental) {
  state_.InsertMemory(MakeEntry(schema_, 5, 1));
  ASSERT_TRUE(ps_.Add(KeyPunct(5), 0).ok());
  EXPECT_EQ(PunctuationIndexer::BuildIndex(&ps_, &state_, &counters_), 1);
  // Second build with no new punctuations scans nothing.
  EXPECT_EQ(PunctuationIndexer::BuildIndex(&ps_, &state_, &counters_), 0);
  // A new punctuation only touches still-unindexed (pid-null) tuples.
  state_.InsertMemory(MakeEntry(schema_, 7, 2));
  ASSERT_TRUE(ps_.Add(KeyPunct(7), 1).ok());
  EXPECT_EQ(PunctuationIndexer::BuildIndex(&ps_, &state_, &counters_), 1);
  EXPECT_EQ(ps_.Find(0)->match_count, 1);
  EXPECT_EQ(ps_.Find(1)->match_count, 1);
}

TEST_F(PunctIndexTest, BuildIndexCoversPurgeBuffer) {
  TupleEntry buffered = MakeEntry(schema_, 5, 1);
  buffered.dts = 2;
  state_.AddToPurgeBuffer(state_.PartitionOf(Value(int64_t{5})),
                          std::move(buffered));
  int64_t pid = ps_.Add(KeyPunct(5), 0).value();
  EXPECT_EQ(PunctuationIndexer::BuildIndex(&ps_, &state_, &counters_), 1);
  EXPECT_EQ(ps_.Find(pid)->match_count, 1);
}

TEST_F(PunctIndexTest, IndexEntrySingleAssignment) {
  int64_t pid = ps_.Add(KeyPunct(5), 0).value();
  TupleEntry e = MakeEntry(schema_, 5, 1);
  PunctuationIndexer::IndexEntry(&ps_, &e);
  EXPECT_EQ(e.pid, pid);
  EXPECT_EQ(ps_.Find(pid)->match_count, 1);
  // Idempotent for already-indexed entries.
  PunctuationIndexer::IndexEntry(&ps_, &e);
  EXPECT_EQ(ps_.Find(pid)->match_count, 1);
  // Non-matching entries stay null.
  TupleEntry other = MakeEntry(schema_, 9, 2);
  PunctuationIndexer::IndexEntry(&ps_, &other);
  EXPECT_EQ(other.pid, kNullPid);
}

TEST_F(PunctIndexTest, DiscardDecrementsCount) {
  int64_t pid = ps_.Add(KeyPunct(5), 0).value();
  TupleEntry e = MakeEntry(schema_, 5, 1);
  PunctuationIndexer::IndexEntry(&ps_, &e);
  ASSERT_EQ(ps_.Find(pid)->match_count, 1);
  PunctuationIndexer::OnEntryDiscarded(&ps_, e);
  EXPECT_EQ(ps_.Find(pid)->match_count, 0);
  // Null-pid entries are a no-op.
  TupleEntry never_indexed = MakeEntry(schema_, 9, 2);
  PunctuationIndexer::OnEntryDiscarded(&ps_, never_indexed);
}

TEST_F(PunctIndexTest, PropagateReleasesCountZeroIndexed) {
  int64_t pid_empty = ps_.Add(KeyPunct(1), 0).value();
  int64_t pid_held = ps_.Add(KeyPunct(2), 1).value();
  state_.InsertMemory(MakeEntry(schema_, 2, 1));
  PunctuationIndexer::BuildIndex(&ps_, &state_, &counters_);

  std::vector<Punctuation> released = Propagator::Propagate(&ps_);
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(released[0].pattern(0), Pattern::Constant(Value(int64_t{1})));
  EXPECT_EQ(ps_.Find(pid_empty), nullptr);
  ASSERT_NE(ps_.Find(pid_held), nullptr);
  EXPECT_EQ(ps_.Find(pid_held)->match_count, 1);
}

TEST_F(PunctIndexTest, PropagateSkipsUnindexed) {
  ASSERT_TRUE(ps_.Add(KeyPunct(1), 0).ok());
  // Never index-built: must not propagate even though count is 0.
  EXPECT_TRUE(Propagator::Propagate(&ps_).empty());
  EXPECT_EQ(ps_.size(), 1u);
}

TEST_F(PunctIndexTest, PropagateReleasesInArrivalOrder) {
  ASSERT_TRUE(ps_.Add(KeyPunct(3), 0).ok());
  ASSERT_TRUE(ps_.Add(KeyPunct(1), 1).ok());
  ASSERT_TRUE(ps_.Add(KeyPunct(2), 2).ok());
  PunctuationIndexer::BuildIndex(&ps_, &state_, &counters_);
  std::vector<Punctuation> released = Propagator::Propagate(&ps_);
  ASSERT_EQ(released.size(), 3u);
  EXPECT_EQ(released[0].pattern(0).constant().AsInt64(), 3);
  EXPECT_EQ(released[1].pattern(0).constant().AsInt64(), 1);
  EXPECT_EQ(released[2].pattern(0).constant().AsInt64(), 2);
  EXPECT_TRUE(ps_.empty());
}

}  // namespace
}  // namespace pjoin
