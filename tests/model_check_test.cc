// Model-check suites for the lock-free spine (ISSUE 8).
//
// Three layers, each proving the one above it:
//
//   SchedulerSelfTest  — the harness itself is load-bearing: it CATCHES a
//                        planted relaxed-publication race, a planted
//                        check-then-wait lost wakeup, and the Dekker
//                        store-buffer reordering under TSO — and stays
//                        green on the corrected versions.
//   SpscRingModel      — SpscRing<_, mc::ModelPolicy>: FIFO with no lost
//                        or duplicated elements across push/pop/Close/
//                        drain, no park/unpark deadlock, occupancy never
//                        exceeds capacity — exhaustively within the
//                        preemption bound for 2 threads at small sizes,
//                        plus a TSO pass. Under -DPJOIN_MC_MUTATE (CI's
//                        inverted build) these tests MUST fail with a
//                        "data race" report — that is the mutation
//                        self-test.
//   ReleaseBoardModel  — the shard-release → merger-drain → board protocol
//                        emits every punctuation exactly once (key-routed
//                        expect 1 release, broadcast expect N) under every
//                        interleaving, using the real merger's
//                        activity-eventcount final-drain loop.
//
// Every Explore prints its "[MC] ..." summary line; the CI model-check job
// pipes test output through tools/mc_report.py, which aggregates
// schedule/state counts and enforces that the exhaustive suites really
// were exhaustive.
//
// All model state lives on the body's fiber stack so each explored
// schedule starts from a fresh protocol state.

#include "check/model_atomic.h"

#include <cstdint>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "check/scheduler.h"
#include "common/spsc_ring.h"
#include "ops/release_board.h"
#include "punct/pattern.h"
#include "punct/punctuation.h"

namespace pjoin {
namespace {

using ModelRing = SpscRing<int64_t, mc::ModelPolicy>;

mc::ExploreResult RunExplore(const mc::ExploreOptions& options,
                          const std::function<void()>& body) {
  mc::ExploreResult r = mc::Explore(options, body);
  std::cout << r.Summary() << std::endl;
  return r;
}

#define EXPECT_MC_OK(r) EXPECT_FALSE((r).failed) << (r).TraceString()
#define EXPECT_MC_EXHAUSTIVE(r) \
  EXPECT_TRUE((r).exhaustive) << "DFS truncated: " << (r).Summary()
#define EXPECT_MC_CATCHES(r, needle)                                   \
  do {                                                                 \
    EXPECT_TRUE((r).failed) << "checker missed a planted bug";         \
    EXPECT_NE((r).failure.find(needle), std::string::npos)             \
        << "unexpected failure kind: " << (r).failure;                 \
  } while (0)

// ---------------------------------------------------------------------------
// SchedulerSelfTest — prove the checker catches what it claims to catch.
// ---------------------------------------------------------------------------

TEST(SchedulerSelfTest, CatchesRelaxedPublicationRace) {
  mc::ExploreOptions opts;
  opts.label = "self_relaxed_race";
  opts.max_preemptions = 2;
  auto r = RunExplore(opts, [] {
    mc::atomic<int> flag{0};
    mc::Cell<int64_t> cell;
    cell.Store(0);  // publisher-side init
    mc::Thread reader([&] {
      if (flag.load(std::memory_order_acquire) == 1) {
        int64_t v = 0;
        cell.MoveTo(&v);  // no HB edge: the publish was relaxed
      }
    });
    cell.Store(42);
    flag.store(1, std::memory_order_relaxed);  // BUG: must be release
    reader.join();
  });
  EXPECT_MC_CATCHES(r, "data race");
}

TEST(SchedulerSelfTest, AcceptsReleasePublication) {
  mc::ExploreOptions opts;
  opts.label = "self_release_ok";
  opts.max_preemptions = -1;  // tiny body: fully exhaustive
  auto r = RunExplore(opts, [] {
    mc::atomic<int> flag{0};
    mc::Cell<int64_t> cell;
    cell.Store(0);
    mc::Thread reader([&] {
      if (flag.load(std::memory_order_acquire) == 1) {
        int64_t v = 0;
        cell.MoveTo(&v);
        mc::Check(v == 42, "published value visible");
      }
    });
    cell.Store(42);
    flag.store(1, std::memory_order_release);
    reader.join();
  });
  EXPECT_MC_OK(r);
  EXPECT_MC_EXHAUSTIVE(r);
}

// The reason SpscRing::WaitForData re-checks ring state AFTER loading the
// eventcount: check-then-load-then-wait loses the wakeup when the
// producer's bump lands entirely between the check and the wait.
TEST(SchedulerSelfTest, CatchesCheckThenWaitLostWakeup) {
  mc::ExploreOptions opts;
  opts.label = "self_lost_wakeup";
  opts.max_preemptions = 2;
  auto r = RunExplore(opts, [] {
    mc::atomic<int> ready{0};
    mc::atomic<uint32_t> seq{0};
    mc::Thread producer([&] {
      ready.store(1, std::memory_order_release);
      seq.fetch_add(1, std::memory_order_release);
      seq.notify_one();
    });
    // BUG: the ready check precedes the seq load; a producer running
    // entirely in between leaves us waiting on the already-bumped value.
    if (ready.load(std::memory_order_acquire) == 0) {
      const uint32_t s = seq.load(std::memory_order_acquire);
      seq.wait(s, std::memory_order_acquire);
    }
    producer.join();
  });
  EXPECT_MC_CATCHES(r, "deadlock");
}

TEST(SchedulerSelfTest, EventcountProtocolNeverDeadlocks) {
  mc::ExploreOptions opts;
  opts.label = "self_eventcount_ok";
  opts.max_preemptions = -1;
  auto r = RunExplore(opts, [] {
    mc::atomic<int> ready{0};
    mc::atomic<uint32_t> seq{0};
    mc::Thread producer([&] {
      ready.store(1, std::memory_order_release);
      seq.fetch_add(1, std::memory_order_release);
      seq.notify_one();
    });
    // Correct eventcount order: load the count, THEN re-check, then wait
    // on the loaded value — the bump either precedes the re-check (seen)
    // or follows the load (wait returns on the changed value).
    const uint32_t s = seq.load(std::memory_order_acquire);
    if (ready.load(std::memory_order_acquire) == 0) {
      seq.wait(s, std::memory_order_acquire);
    }
    producer.join();
  });
  EXPECT_MC_OK(r);
  EXPECT_MC_EXHAUSTIVE(r);
}

// Dekker's handshake: without store buffers one of the two loads must see
// a 1; with TSO buffering both stores can sit unflushed past both loads.
void DekkerBody() {
  mc::atomic<int> x{0};
  mc::atomic<int> y{0};
  mc::atomic<int> r0{-1};
  mc::Thread peer([&] {
    y.store(1, std::memory_order_release);
    r0.store(x.load(std::memory_order_acquire), std::memory_order_release);
  });
  x.store(1, std::memory_order_release);
  const int r1 = y.load(std::memory_order_acquire);
  peer.join();
  mc::Check(r0.load(std::memory_order_acquire) == 1 || r1 == 1,
            "dekker: both loads saw 0 (store-buffer reordering)");
}

TEST(SchedulerSelfTest, DekkerPassesWithoutStoreBuffers) {
  mc::ExploreOptions opts;
  opts.label = "self_dekker_sc";
  opts.max_preemptions = -1;
  opts.tso = false;
  auto r = RunExplore(opts, DekkerBody);
  EXPECT_MC_OK(r);
  EXPECT_MC_EXHAUSTIVE(r);
}

TEST(SchedulerSelfTest, DekkerCaughtUnderTso) {
  mc::ExploreOptions opts;
  opts.label = "self_dekker_tso";
  opts.max_preemptions = 2;
  opts.tso = true;
  auto r = RunExplore(opts, DekkerBody);
  EXPECT_MC_CATCHES(r, "dekker");
}

// ---------------------------------------------------------------------------
// SpscRingModel — the tentpole: the real ring code under the model policy.
// Under -DPJOIN_MC_MUTATE the producer's tail publish is relaxed and every
// test here MUST fail with a "data race on mc::Cell" report (CI asserts
// both directions).
// ---------------------------------------------------------------------------

// Producer pushes 1..n and closes; consumer drains with PopBlocking.
// Checks, across every explored interleaving: strict FIFO, no loss, no
// duplication, occupancy bounded by capacity as observed from both
// endpoints, and no deadlock in the park/unpark paths (a lost wakeup
// shows up as deadlock).
void RingFifoBody(size_t capacity, int64_t n) {
  ModelRing ring = ModelRing::WithExactCapacity(capacity);
  mc::Thread producer([&] {
    for (int64_t i = 1; i <= n; ++i) {
      ring.PushBlocking(int64_t{i});
      mc::Check(ring.size() <= ring.capacity(),
                "producer-side occupancy exceeds capacity");
    }
    ring.Close();
  });
  int64_t expect = 1;
  int64_t v = 0;
  while (ring.PopBlocking(&v)) {
    mc::Check(v == expect, "FIFO order broken (lost or duplicated element)");
    mc::Check(ring.size() <= ring.capacity(),
              "consumer-side occupancy exceeds capacity");
    ++expect;
  }
  mc::Check(expect == n + 1, "ring exhausted before all elements arrived");
  mc::Check(ring.exhausted(), "PopBlocking returned false before close");
  producer.join();
}

TEST(SpscRingModel, FifoExhaustiveCapacity2) {
  mc::ExploreOptions opts;
  opts.label = "ring_fifo_cap2";
  opts.max_preemptions = 2;
  auto r = RunExplore(opts, [] { RingFifoBody(2, 6); });
  EXPECT_MC_OK(r);
  EXPECT_MC_EXHAUSTIVE(r);
}

TEST(SpscRingModel, FifoExhaustiveCapacity4) {
  mc::ExploreOptions opts;
  opts.label = "ring_fifo_cap4";
  opts.max_preemptions = 2;
  auto r = RunExplore(opts, [] { RingFifoBody(4, 8); });
  EXPECT_MC_OK(r);
  EXPECT_MC_EXHAUSTIVE(r);
}

// Capacity 1 is the tightest park/unpark window: every push crosses the
// full boundary and every pop crosses the empty boundary, so both sides
// exercise the eventcount wait on nearly every operation. A deeper
// preemption bound compensates for the shorter op sequence.
TEST(SpscRingModel, FifoExhaustiveCapacity1DeepBound) {
  mc::ExploreOptions opts;
  opts.label = "ring_fifo_cap1";
  opts.max_preemptions = 3;
#ifdef NDEBUG
  // 290k schedules / 49M states: fine at -O2 (~8s), ~3min at -O0. The
  // Debug CI leg runs the smaller sweep below — still exhaustive within
  // the bound, so the mc_report gate holds in both legs; the full-depth
  // proof comes from the Release leg.
  constexpr int kOps = 4;
#else
  constexpr int kOps = 3;
#endif
  auto r = RunExplore(opts, [] { RingFifoBody(1, kOps); });
  EXPECT_MC_OK(r);
  EXPECT_MC_EXHAUSTIVE(r);
}

// Satellite: Close() racing the consumer's drain at capacity 1 — the
// consumer must see every pushed element even when Close lands between
// its TryPop and its park decision. TryPush (not PushBlocking) keeps the
// producer non-blocking so Close can land at any point of the pop path.
TEST(SpscRingModel, CloseRacingPopDrainsCapacityOne) {
  mc::ExploreOptions opts;
  opts.label = "ring_close_race_cap1";
  opts.max_preemptions = 3;
  auto r = RunExplore(opts, [] {
    ModelRing ring = ModelRing::WithExactCapacity(1);
    mc::atomic<int64_t> pushed{0};
    mc::Thread producer([&] {
      for (int64_t i = 1; i <= 3; ++i) {
        if (!ring.TryPush(int64_t{i})) break;  // full: consumer lags; stop
        pushed.store(i, std::memory_order_release);
      }
      ring.Close();
    });
    int64_t seen = 0;
    int64_t v = 0;
    while (ring.PopBlocking(&v)) {
      mc::Check(v == seen + 1, "drain skipped or duplicated an element");
      seen = v;
    }
    producer.join();
    mc::Check(seen == pushed.load(std::memory_order_acquire),
              "elements pushed before Close were lost in the drain");
  });
  EXPECT_MC_OK(r);
  EXPECT_MC_EXHAUSTIVE(r);
}

// TSO pass: the ring's acquire/release protocol must hold when relaxed and
// release stores are delayed in per-thread store buffers (x86-style). The
// flush choices multiply the schedule space, so this uses a smaller config
// plus random walks beyond the DFS bound.
TEST(SpscRingModel, FifoUnderTsoStoreBuffers) {
  mc::ExploreOptions opts;
  opts.label = "ring_fifo_tso";
  opts.max_preemptions = 2;
  opts.tso = true;
  // Flush branching makes full DFS ~1M schedules; sample a large bounded
  // prefix plus unbounded random walks to stay inside the CI budget
  // (smaller sample at -O0 — the Release leg runs the big one).
#ifdef NDEBUG
  opts.max_schedules = 150000;
  opts.random_walks = 500;
#else
  opts.max_schedules = 20000;
  opts.random_walks = 100;
#endif
  auto r = RunExplore(opts, [] { RingFifoBody(2, 4); });
  EXPECT_MC_OK(r);
}

// ---------------------------------------------------------------------------
// ReleaseBoardModel — shard releases → ring → merger drain → exactly-once
// emission, using the real merger's activity-eventcount final-drain loop.
// ---------------------------------------------------------------------------

Punctuation RoutedPunct() {
  // Constant at a configured key position → dispatched to one shard.
  return Punctuation(
      {Pattern::Constant(Value(int64_t{7})), Pattern::Wildcard()});
}

Punctuation BroadcastPunct() {
  return Punctuation({Pattern::Wildcard(), Pattern::Wildcard()});
}

// Two shards feed punctuation releases through capacity-1 rings; the
// merger (model thread 0) drains exactly as ParallelJoinPipeline's final
// drain does: load the activity count, sweep all rings, re-check
// exhaustion, park on the loaded value. Key-routed punctuations release
// from shard 0 only (the router dispatched to one shard); broadcasts
// release from both.
void BoardBody(const Punctuation& punct, int rounds,
               int64_t expected_emissions) {
  constexpr int kShards = 2;
  using PunctRing = SpscRing<Punctuation, mc::ModelPolicy>;
  PunctReleaseBoard board;
  board.Configure(/*left_key_pos=*/0, /*right_key_pos=*/1, kShards);
  const int expected = board.ExpectedShards(punct);

  PunctRing ring0 = PunctRing::WithExactCapacity(1);
  PunctRing ring1 = PunctRing::WithExactCapacity(1);
  PunctRing* rings[kShards] = {&ring0, &ring1};
  mc::atomic<uint32_t> activity{0};

  std::vector<std::unique_ptr<mc::Thread>> shards;
  for (int s = 0; s < kShards; ++s) {
    const bool releasing = expected == kShards || s == 0;
    shards.push_back(std::make_unique<mc::Thread>([&, s, releasing] {
      if (releasing) {
        for (int rd = 0; rd < rounds; ++rd) {
          rings[s]->PushBlocking(Punctuation(punct));
          // Push first, then bump: a merger that re-drained after loading
          // the count cannot miss the batch (FlushShardOut's order).
          activity.fetch_add(1, std::memory_order_release);
          activity.notify_all();
        }
      }
      rings[s]->Close();
      activity.fetch_add(1, std::memory_order_release);  // "once on exit"
      activity.notify_all();
    }));
  }

  int64_t emitted = 0;
  for (;;) {
    const uint32_t seq = activity.load(std::memory_order_acquire);
    size_t merged = 0;
    bool all_exhausted = true;
    for (PunctRing* ring : rings) {
      Punctuation p;
      while (ring->TryPop(&p)) {
        if (board.Release(p)) ++emitted;
        ++merged;
      }
      if (!ring->exhausted()) all_exhausted = false;
    }
    mc::Check(emitted <= expected_emissions,
              "punctuation emitted more than once per round");
    if (all_exhausted) break;
    if (merged == 0) activity.wait(seq, std::memory_order_acquire);
  }
  for (auto& t : shards) t->join();

  mc::Check(emitted == expected_emissions,
            "punctuation emission count != expected (lost or early release)");
  mc::Check(board.pending_rounds() == 0,
            "board left a partially released round");
}

TEST(ReleaseBoardModel, KeyRoutedFiresExactlyOnce) {
  mc::ExploreOptions opts;
  opts.label = "board_routed";
  opts.max_preemptions = 2;
  auto r = RunExplore(opts, [] {
    BoardBody(RoutedPunct(), /*rounds=*/1, /*expected_emissions=*/1);
  });
  EXPECT_MC_OK(r);
  EXPECT_MC_EXHAUSTIVE(r);
}

TEST(ReleaseBoardModel, BroadcastFiresOncePerFullRound) {
  mc::ExploreOptions opts;
  opts.label = "board_broadcast";
  opts.max_preemptions = 2;
  auto r = RunExplore(opts, [] {
    BoardBody(BroadcastPunct(), /*rounds=*/1, /*expected_emissions=*/1);
  });
  EXPECT_MC_OK(r);
  EXPECT_MC_EXHAUSTIVE(r);
}

TEST(ReleaseBoardModel, RecurringPunctuationEmitsPerRound) {
  mc::ExploreOptions opts;
  opts.label = "board_recurring";
  opts.max_preemptions = 1;
  auto r = RunExplore(opts, [] {
    BoardBody(BroadcastPunct(), /*rounds=*/2, /*expected_emissions=*/2);
  });
  EXPECT_MC_OK(r);
  EXPECT_MC_EXHAUSTIVE(r);
}

// Sequential board semantics (no threads): the expected-shards inference
// matches the router's dispatch rule, and counting (not erasing) tolerates
// a recurring punctuation string.
TEST(ReleaseBoardModel, ExpectedShardsInference) {
  PunctReleaseBoard board;
  board.Configure(0, 1, 4);
  EXPECT_EQ(board.ExpectedShards(RoutedPunct()), 1);
  EXPECT_EQ(board.ExpectedShards(BroadcastPunct()), 4);
  // Constant at the right key position only — still routed.
  Punctuation right_keyed(
      {Pattern::Wildcard(), Pattern::Constant(Value(int64_t{3}))});
  EXPECT_EQ(board.ExpectedShards(right_keyed), 1);

  EXPECT_FALSE(board.Release(BroadcastPunct()));
  EXPECT_FALSE(board.Release(BroadcastPunct()));
  EXPECT_EQ(board.pending_rounds(), 1);
  EXPECT_FALSE(board.Release(BroadcastPunct()));
  EXPECT_TRUE(board.Release(BroadcastPunct()));
  EXPECT_EQ(board.pending_rounds(), 0);
  EXPECT_TRUE(board.Release(RoutedPunct()));
  EXPECT_TRUE(board.Release(RoutedPunct()));
}

}  // namespace
}  // namespace pjoin
