// Cross-cutting runtime invariants (DESIGN.md invariants 2-5): duplicate
// freedom with tagged tuples, purge safety, propagation safety under
// spilling, and state accounting consistency.

#include <gtest/gtest.h>

#include <set>

#include "gen/stream_generator.h"
#include "join/pjoin.h"
#include "join/xjoin.h"
#include "test_util.h"

namespace pjoin {
namespace {

// Streams whose payloads are globally unique sequence numbers, so any
// emitted pair has a unique identity and duplicates are detectable exactly.
GeneratedStreams UniquePayloadStreams(int64_t n, double punct_a,
                                      double punct_b, uint64_t seed) {
  DomainSpec d;
  d.window_size = 6;
  StreamSpec a;
  a.num_tuples = n;
  a.punct_mean_interarrival_tuples = punct_a;
  StreamSpec b = a;
  b.punct_mean_interarrival_tuples = punct_b;
  GeneratedStreams g = GenerateStreams(d, a, b, seed);
  // Rewrite payloads to unique ids, preserving keys and timing.
  int64_t uid = 0;
  for (auto* stream : {&g.a, &g.b}) {
    for (auto& e : *stream) {
      if (!e.is_tuple()) continue;
      const SchemaPtr& schema = e.tuple().schema();
      Tuple unique(schema, {e.tuple().field(0), Value(uid++)});
      e = StreamElement::MakeTuple(std::move(unique), e.arrival(), e.seq());
    }
  }
  return g;
}

TEST(InvariantsTest, NoDuplicatePairsUnderHeavySpill) {
  GeneratedStreams g = UniquePayloadStreams(300, 10, 10, 42);
  JoinOptions opts;
  opts.runtime.memory_threshold_tuples = 8;
  PJoin join(g.schema_a, g.schema_b, opts);
  std::set<std::pair<int64_t, int64_t>> seen;
  bool duplicate = false;
  join.set_result_callback([&](const Tuple& t) {
    // Fields: key, a-payload(uid), key_r, b-payload(uid).
    auto pair = std::make_pair(t.field(1).AsInt64(), t.field(3).AsInt64());
    if (!seen.insert(pair).second) duplicate = true;
  });
  JoinPipeline pipe(&join, nullptr,
                    PipelineOptions{.stall_gap_micros = 7000});
  ASSERT_TRUE(pipe.Run(g.a, g.b).ok());
  EXPECT_FALSE(duplicate);
}

TEST(InvariantsTest, NoDuplicatePairsXJoinReactiveAndCleanup) {
  GeneratedStreams g = UniquePayloadStreams(300, 0, 0, 43);
  JoinOptions opts;
  opts.runtime.memory_threshold_tuples = 8;
  XJoin join(g.schema_a, g.schema_b, opts);
  std::set<std::pair<int64_t, int64_t>> seen;
  bool duplicate = false;
  join.set_result_callback([&](const Tuple& t) {
    auto pair = std::make_pair(t.field(1).AsInt64(), t.field(3).AsInt64());
    if (!seen.insert(pair).second) duplicate = true;
  });
  JoinPipeline pipe(&join, nullptr,
                    PipelineOptions{.stall_gap_micros = 7000});
  ASSERT_TRUE(pipe.Run(g.a, g.b).ok());
  EXPECT_FALSE(duplicate);
}

// Purge safety: replay the run; every result pair must also be produced by
// a purge-free join (no pair involves a tuple that was wrongly purged, and
// purging loses nothing — both directions covered by result equality, which
// equivalence_test checks; here we additionally assert that purged tuples
// could never have joined the remainder of the opposite stream).
TEST(InvariantsTest, PurgedTuplesHaveNoFuturePartners) {
  DomainSpec d;
  d.window_size = 6;
  StreamSpec spec;
  spec.num_tuples = 400;
  spec.punct_mean_interarrival_tuples = 8;
  GeneratedStreams g = GenerateStreams(d, spec, spec, 77);

  // Collect, per element index, the set of punctuation-covered keys at that
  // point; then verify no later opposite tuple carries a covered key.
  PunctuationSet covered_a(0);  // punctuations seen on stream A
  for (size_t i = 0; i < g.a.size(); ++i) {
    if (g.a[i].is_punctuation()) {
      ASSERT_TRUE(covered_a.Add(g.a[i].punctuation(), 0).ok());
      // All B tuples arriving after this A punctuation (by arrival time)
      // must not match it on the join key.
      const TimeMicros t = g.a[i].arrival();
      for (const StreamElement& e : g.b) {
        if (e.is_tuple() && e.arrival() > t) {
          // If covered now, a B tuple with this key would join state that
          // PJoin has already purged; the generator must not produce it.
          // (The *A* side can't produce it either — checked in
          // generator_test — so purge is safe.)
          if (covered_a.SetMatchKey(e.tuple().field(0))) {
            // The only acceptable case: the same key was punctuated on A
            // before B stopped sending it — impossible by SharedDomain
            // construction, so flag it.
            ADD_FAILURE() << "B tuple " << e.tuple().ToString()
                          << " arrives after A punctuation covering its key";
          }
        }
      }
      break;  // one punctuation suffices for this O(n^2) spot check…
    }
  }
}

TEST(InvariantsTest, StateAccountingConsistent) {
  DomainSpec d;
  StreamSpec spec;
  spec.num_tuples = 500;
  spec.punct_mean_interarrival_tuples = 10;
  GeneratedStreams g = GenerateStreams(d, spec, spec, 88);

  JoinOptions opts;
  opts.runtime.memory_threshold_tuples = 32;
  PJoin join(g.schema_a, g.schema_b, opts);
  JoinPipeline pipe(&join, nullptr,
                    PipelineOptions{.stall_gap_micros = 7000});
  ASSERT_TRUE(pipe.Run(g.a, g.b).ok());

  for (int side = 0; side < 2; ++side) {
    const HashState& st = join.state(side);
    int64_t mem = 0;
    int64_t disk = 0;
    int64_t buffered = 0;
    for (int p = 0; p < st.num_partitions(); ++p) {
      mem += static_cast<int64_t>(st.memory(p).size());
      disk += st.disk_tuples(p);
      buffered += static_cast<int64_t>(st.purge_buffer(p).size());
    }
    EXPECT_EQ(mem, st.memory_tuples());
    EXPECT_EQ(disk, st.disk_tuples());
    EXPECT_EQ(buffered, st.purge_buffer_tuples());
    EXPECT_EQ(st.total_tuples(), mem + disk + buffered);
    EXPECT_GE(st.memory_tuples(), 0);
  }
}

TEST(InvariantsTest, MatchCountsNeverNegativeAndConsistent) {
  DomainSpec d;
  StreamSpec spec;
  spec.num_tuples = 500;
  spec.punct_mean_interarrival_tuples = 10;
  spec.flush_punctuations_at_end = true;
  GeneratedStreams g = GenerateStreams(d, spec, spec, 99);

  JoinOptions opts;
  opts.runtime.propagate_count_threshold = 3;
  opts.eager_index_build = true;
  PJoin join(g.schema_a, g.schema_b, opts);
  JoinPipeline pipe(&join, nullptr);
  ASSERT_TRUE(pipe.Run(g.a, g.b).ok());

  for (int side = 0; side < 2; ++side) {
    const_cast<PunctuationSet&>(join.punct_set(side))
        .ForEach([](PunctEntry& e) { EXPECT_GE(e.match_count, 0); });
  }
}

TEST(InvariantsTest, ConservationOfTuples) {
  // Every arriving tuple is exactly one of: still in state, purged,
  // dropped on the fly, or cleared from a purge buffer.
  DomainSpec d;
  StreamSpec spec;
  spec.num_tuples = 500;
  spec.punct_mean_interarrival_tuples = 8;
  GeneratedStreams g = GenerateStreams(d, spec, spec, 123);

  JoinOptions opts;
  opts.runtime.memory_threshold_tuples = 48;
  PJoin join(g.schema_a, g.schema_b, opts);
  JoinPipeline pipe(&join, nullptr,
                    PipelineOptions{.stall_gap_micros = 7000});
  ASSERT_TRUE(pipe.Run(g.a, g.b).ok());

  const int64_t arrived = join.counters().Get("tuples_in");
  const int64_t retained = join.total_state_tuples();
  const int64_t purged = join.counters().Get("purged_tuples");
  const int64_t disk_purged = join.counters().Get("disk_purged_tuples");
  const int64_t otf = join.counters().Get("otf_drops");
  const int64_t buffer_cleared = join.counters().Get("purge_buffer_cleared");
  EXPECT_EQ(arrived, retained + purged + disk_purged + otf + buffer_cleared);
}

}  // namespace
}  // namespace pjoin
