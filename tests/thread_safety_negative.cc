// Compile-only probes for the Clang -Wthread-safety annotations.
//
// This TU is never linked into a test binary. CMake registers one ctest
// entry per PROBE_CASE that invokes the compiler with
//   -Wthread-safety -Werror -fsyntax-only -DPROBE_CASE=<n>
// (Clang only). Case 0 is the positive control: correctly-locked access
// must compile cleanly. Every other case commits a locking mistake that
// the analysis must reject, and its ctest entry is marked WILL_FAIL —
// so removing a GUARDED_BY/REQUIRES annotation from StreamBuffer or
// SharedCounterSet makes the corresponding probe compile, which fails
// the suite. That is the point: the annotations themselves are under
// test.
//
// (The parallel pipeline used to be probed here too; its locked output
// board is gone — the dataflow spine is lock-free SPSC rings, see
// docs/PERFORMANCE.md — so the shared-state probes moved to
// SharedCounterSet, the remaining cross-thread mutex user.)
//
// ThreadSafetyNegativeProbe is a friend of the probed classes so the
// probes can name private guarded members directly; friendship does not
// weaken the analysis.

#ifndef PROBE_CASE
#error "compile with -DPROBE_CASE=<n>"
#endif

#include "common/metrics.h"
#include "stream/stream_buffer.h"

namespace pjoin {

class ThreadSafetyNegativeProbe {
 public:
  static void ProbeBuffer(StreamBuffer& buffer);
  static void ProbeCounters(SharedCounterSet& counters);
};

void ThreadSafetyNegativeProbe::ProbeBuffer(StreamBuffer& buffer) {
#if PROBE_CASE == 0
  // Positive control: hold mu_ for every guarded access.
  MutexLock lock(buffer.mu_);
  if (buffer.closed_) buffer.queue_.clear();
  if (buffer.HasSpaceLocked()) ++buffer.backpressure_waits_;
#elif PROBE_CASE == 1
  // Reading a GUARDED_BY(mu_) member without the lock.
  if (buffer.closed_) buffer.backpressure_waits_ = 0;
#elif PROBE_CASE == 2
  // Mutating the guarded queue without the lock.
  buffer.queue_.clear();
#elif PROBE_CASE == 3
  // Calling a REQUIRES(mu_) method without holding mu_.
  if (buffer.HasSpaceLocked()) buffer.WaitForSpaceLocked();
#endif
}

void ThreadSafetyNegativeProbe::ProbeCounters(SharedCounterSet& counters) {
#if PROBE_CASE == 0
  // Positive control: the shared set is touched under mu_.
  MutexLock lock(counters.mu_);
  counters.counters_.Add("probe");
#elif PROBE_CASE == 4
  // Unguarded mutation of the guarded counter set.
  counters.counters_.Add("probe");
#elif PROBE_CASE == 5
  // Unguarded read of the guarded counter set.
  [[maybe_unused]] const int64_t v = counters.counters_.Get("probe");
#endif
}

}  // namespace pjoin
