#include <gtest/gtest.h>

#include "common/mutex.h"

#include "gen/stream_generator.h"
#include "join/pjoin.h"
#include "join/xjoin.h"
#include "ops/threaded_pipeline.h"
#include "test_util.h"

namespace pjoin {
namespace {

using testing::ReferenceJoinRows;

GeneratedStreams MakeStreams(uint64_t seed, int64_t n = 400) {
  DomainSpec d;
  d.window_size = 8;
  StreamSpec spec;
  spec.num_tuples = n;
  spec.punct_mean_interarrival_tuples = 12;
  return GenerateStreams(d, spec, spec, seed);
}

// Runs a join under the threaded pipeline and returns the sorted result
// rows. Callbacks fire on the consumer thread only, so no locking is
// needed for correctness, but we lock anyway to keep TSAN-style runs quiet.
std::vector<std::string> RunThreaded(JoinOperator* join,
                                     const GeneratedStreams& g,
                                     int64_t* stalls = nullptr) {
  std::vector<std::string> rows;
  Mutex mu;
  join->set_result_callback([&](const Tuple& t) {
    MutexLock lock(mu);
    rows.push_back(t.ToString());
  });
  ThreadedJoinPipeline pipeline(join);
  Status st = pipeline.Run(g.a, g.b);
  PJOIN_DCHECK(st.ok());
  if (stalls != nullptr) *stalls = pipeline.stalls_reported();
  std::sort(rows.begin(), rows.end());
  return rows;
}

TEST(ThreadedPipelineTest, PJoinMatchesReference) {
  GeneratedStreams g = MakeStreams(1);
  PJoin join(g.schema_a, g.schema_b);
  auto rows = RunThreaded(&join, g);
  EXPECT_EQ(rows, ReferenceJoinRows(g.a, g.b, join.output_schema(), 0, 0));
}

TEST(ThreadedPipelineTest, XJoinWithSpillMatchesReference) {
  GeneratedStreams g = MakeStreams(2);
  JoinOptions opts;
  opts.runtime.memory_threshold_tuples = 16;
  XJoin join(g.schema_a, g.schema_b, opts);
  auto rows = RunThreaded(&join, g);
  EXPECT_EQ(rows, ReferenceJoinRows(g.a, g.b, join.output_schema(), 0, 0));
}

TEST(ThreadedPipelineTest, PJoinWithSpillAndPropagationMatchesReference) {
  GeneratedStreams g = MakeStreams(3);
  JoinOptions opts;
  opts.runtime.memory_threshold_tuples = 24;
  opts.runtime.propagate_count_threshold = 4;
  PJoin join(g.schema_a, g.schema_b, opts);
  auto rows = RunThreaded(&join, g);
  EXPECT_EQ(rows, ReferenceJoinRows(g.a, g.b, join.output_schema(), 0, 0));
}

TEST(ThreadedPipelineTest, MatchesSerialPipelineExactly) {
  GeneratedStreams g = MakeStreams(4);
  PJoin serial(g.schema_a, g.schema_b);
  auto serial_run = testing::RunJoin(&serial, g.a, g.b);

  PJoin threaded(g.schema_a, g.schema_b);
  auto threaded_rows = RunThreaded(&threaded, g);
  EXPECT_EQ(serial_run.results, threaded_rows);
}

TEST(ThreadedPipelineTest, ProcessesEveryElement) {
  GeneratedStreams g = MakeStreams(5, 200);
  PJoin join(g.schema_a, g.schema_b);
  ThreadedJoinPipeline pipeline(&join);
  ASSERT_TRUE(pipeline.Run(g.a, g.b).ok());
  EXPECT_EQ(pipeline.elements_processed(),
            static_cast<int64_t>(g.a.size() + g.b.size()));
}

// Repeated runs with different thread interleavings must all agree — the
// merge loop preserves global arrival order regardless of producer timing.
class ThreadedDeterminism : public ::testing::TestWithParam<int> {};

TEST_P(ThreadedDeterminism, StableAcrossInterleavings) {
  GeneratedStreams g = MakeStreams(6);
  auto reference = ReferenceJoinRows(
      g.a, g.b, Schema::Concat(*g.schema_a, *g.schema_b), 0, 0);
  JoinOptions opts;
  opts.runtime.memory_threshold_tuples = 32;
  PJoin join(g.schema_a, g.schema_b, opts);
  auto rows = RunThreaded(&join, g);
  EXPECT_EQ(rows, reference);
}

INSTANTIATE_TEST_SUITE_P(Repeats, ThreadedDeterminism, ::testing::Range(0, 5));

// With a tiny buffer capacity the producers must repeatedly block on the
// consumer (backpressure), and the result must still be exact.
TEST(ThreadedPipelineTest, BoundedBuffersApplyBackpressure) {
  GeneratedStreams g = MakeStreams(7);
  PJoin join(g.schema_a, g.schema_b);
  std::vector<std::string> rows;
  Mutex mu;
  join.set_result_callback([&](const Tuple& t) {
    MutexLock lock(mu);
    rows.push_back(t.ToString());
  });
  ThreadedPipelineOptions popts;
  popts.buffer_capacity = 1;
  ThreadedJoinPipeline pipeline(&join, popts);
  ASSERT_TRUE(pipeline.Run(g.a, g.b).ok());
  EXPECT_GT(pipeline.backpressure_waits(), 0);
  std::sort(rows.begin(), rows.end());
  EXPECT_EQ(rows, ReferenceJoinRows(g.a, g.b, join.output_schema(), 0, 0));
}

}  // namespace
}  // namespace pjoin
