#include <gtest/gtest.h>

#include <algorithm>

#include "ops/filter.h"
#include "ops/groupby.h"
#include "ops/project.h"
#include "ops/sink.h"
#include "test_util.h"

namespace pjoin {
namespace {

using testing::KeyPayloadSchema;
using testing::KeyPunct;
using testing::KP;

TEST(GroupByTest, OutputSchemaPerAggKind) {
  SchemaPtr s = KeyPayloadSchema("v");
  GroupBy gb(s, 0,
             {{AggKind::kSum, 1, "total"},
              {AggKind::kCount, 0, "n"},
              {AggKind::kAvg, 1, "mean"},
              {AggKind::kMin, 1, "lo"},
              {AggKind::kMax, 1, "hi"}});
  EXPECT_EQ(gb.output_schema()->ToString(),
            "(key:int64, total:float64, n:int64, mean:float64, lo:int64, "
            "hi:int64)");
}

TEST(GroupByTest, AggregatesPerGroup) {
  SchemaPtr s = KeyPayloadSchema("v");
  GroupBy gb(s, 0,
             {{AggKind::kSum, 1, "total"},
              {AggKind::kCount, 0, "n"},
              {AggKind::kAvg, 1, "mean"},
              {AggKind::kMin, 1, "lo"},
              {AggKind::kMax, 1, "hi"}});
  CollectorSink sink;
  gb.set_downstream(&sink);
  ASSERT_TRUE(gb.OnTuple(KP(s, 1, 10), 0).ok());
  ASSERT_TRUE(gb.OnTuple(KP(s, 1, 30), 0).ok());
  ASSERT_TRUE(gb.OnTuple(KP(s, 2, 5), 0).ok());
  EXPECT_EQ(gb.open_groups(), 2);
  ASSERT_TRUE(gb.OnEndOfStream().ok());
  ASSERT_EQ(sink.tuples().size(), 2u);
  const Tuple& g1 = sink.tuples()[0];
  EXPECT_EQ(g1.field("key").AsInt64(), 1);
  EXPECT_DOUBLE_EQ(g1.field("total").AsFloat64(), 40.0);
  EXPECT_EQ(g1.field("n").AsInt64(), 2);
  EXPECT_DOUBLE_EQ(g1.field("mean").AsFloat64(), 20.0);
  EXPECT_EQ(g1.field("lo").AsInt64(), 10);
  EXPECT_EQ(g1.field("hi").AsInt64(), 30);
  EXPECT_TRUE(sink.saw_end_of_stream());
  EXPECT_EQ(gb.open_groups(), 0);
}

TEST(GroupByTest, PunctuationClosesGroupEarly) {
  SchemaPtr s = KeyPayloadSchema("v");
  GroupBy gb(s, 0, {{AggKind::kSum, 1, "total"}});
  CollectorSink sink;
  gb.set_downstream(&sink);
  ASSERT_TRUE(gb.OnTuple(KP(s, 1, 10), 0).ok());
  ASSERT_TRUE(gb.OnTuple(KP(s, 2, 20), 0).ok());
  ASSERT_TRUE(gb.OnPunctuation(KeyPunct(1), 100).ok());
  // Group 1 emitted immediately (the paper's partial-result motivation),
  // group 2 still open.
  ASSERT_EQ(sink.tuples().size(), 1u);
  EXPECT_EQ(sink.tuples()[0].field("key").AsInt64(), 1);
  EXPECT_EQ(gb.open_groups(), 1);
  // The punctuation is forwarded on the output schema.
  ASSERT_EQ(sink.punctuations().size(), 1u);
  EXPECT_EQ(sink.punctuations()[0].pattern(0),
            Pattern::Constant(Value(int64_t{1})));
}

TEST(GroupByTest, RangePunctuationClosesManyGroups) {
  SchemaPtr s = KeyPayloadSchema("v");
  GroupBy gb(s, 0, {{AggKind::kCount, 0, "n"}});
  CollectorSink sink;
  gb.set_downstream(&sink);
  for (int64_t k = 0; k < 10; ++k) {
    ASSERT_TRUE(gb.OnTuple(KP(s, k, k), 0).ok());
  }
  ASSERT_TRUE(gb.OnPunctuation(
                    Punctuation::ForAttribute(
                        2, 0,
                        Pattern::Range(Value(int64_t{0}), Value(int64_t{4}))),
                    0)
                  .ok());
  EXPECT_EQ(sink.tuples().size(), 5u);
  EXPECT_EQ(gb.open_groups(), 5);
}

TEST(GroupByTest, NonGroupAttributePunctuationIsUnusable) {
  SchemaPtr s = KeyPayloadSchema("v");
  GroupBy gb(s, 0, {{AggKind::kSum, 1, "total"}});
  CollectorSink sink;
  gb.set_downstream(&sink);
  ASSERT_TRUE(gb.OnTuple(KP(s, 1, 10), 0).ok());
  // Punctuation on the payload attribute cannot close key groups.
  ASSERT_TRUE(gb.OnPunctuation(
                    Punctuation::ForAttribute(
                        2, 1, Pattern::Constant(Value(int64_t{10}))),
                    0)
                  .ok());
  EXPECT_TRUE(sink.tuples().empty());
  EXPECT_EQ(gb.open_groups(), 1);
  EXPECT_EQ(gb.counters().Get("puncts_unusable"), 1);
}

TEST(GroupByTest, PunctuationForEmptyGroupEmitsNothingButForwards) {
  SchemaPtr s = KeyPayloadSchema("v");
  GroupBy gb(s, 0, {{AggKind::kSum, 1, "total"}});
  CollectorSink sink;
  gb.set_downstream(&sink);
  ASSERT_TRUE(gb.OnPunctuation(KeyPunct(77), 0).ok());
  EXPECT_TRUE(sink.tuples().empty());
  EXPECT_EQ(sink.punctuations().size(), 1u);
}

TEST(GroupByTest, PartialResultsPlusFinalEqualsFullAggregate) {
  SchemaPtr s = KeyPayloadSchema("v");
  // Run once with punctuations interleaved, once without; the union of
  // emitted groups must be identical.
  std::vector<std::pair<int64_t, int64_t>> data = {
      {1, 5}, {2, 6}, {1, 7}, {3, 8}, {2, 9}, {3, 1}, {4, 2}};
  auto run = [&](bool with_puncts) {
    GroupBy gb(s, 0, {{AggKind::kSum, 1, "total"}, {AggKind::kCount, 0, "n"}});
    CollectorSink sink;
    gb.set_downstream(&sink);
    for (size_t i = 0; i < data.size(); ++i) {
      EXPECT_TRUE(gb.OnTuple(KP(s, data[i].first, data[i].second), 0).ok());
      if (with_puncts && i == 4) {
        // Keys 1 and 2 are complete at this point.
        EXPECT_TRUE(gb.OnPunctuation(KeyPunct(1), 0).ok());
        EXPECT_TRUE(gb.OnPunctuation(KeyPunct(2), 0).ok());
      }
    }
    EXPECT_TRUE(gb.OnEndOfStream().ok());
    std::vector<std::string> rows;
    for (const Tuple& t : sink.tuples()) rows.push_back(t.ToString());
    std::sort(rows.begin(), rows.end());
    return rows;
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(GroupByTest, AliasPunctuationClosesGroup) {
  // Schema mimics a join output: (key, v, key_r) with key_r == key always.
  SchemaPtr s = Schema::Make({{"key", ValueType::kInt64},
                              {"v", ValueType::kInt64},
                              {"key_r", ValueType::kInt64}});
  GroupBy gb(s, 0, {{AggKind::kCount, 0, "n"}}, /*group_aliases=*/{2});
  CollectorSink sink;
  gb.set_downstream(&sink);
  ASSERT_TRUE(
      gb.OnTuple(Tuple(s, {Value(int64_t{1}), Value(int64_t{5}),
                           Value(int64_t{1})}),
                 0)
          .ok());
  // Punctuation constraining only the alias column.
  ASSERT_TRUE(gb.OnPunctuation(
                    Punctuation::ForAttribute(
                        3, 2, Pattern::Constant(Value(int64_t{1}))),
                    0)
                  .ok());
  ASSERT_EQ(sink.tuples().size(), 1u);
  EXPECT_EQ(sink.tuples()[0].field(0).AsInt64(), 1);
  EXPECT_EQ(gb.open_groups(), 0);
}

TEST(GroupByTest, AliasAndGroupPatternsIntersect) {
  SchemaPtr s = Schema::Make({{"key", ValueType::kInt64},
                              {"v", ValueType::kInt64},
                              {"key_r", ValueType::kInt64}});
  GroupBy gb(s, 0, {{AggKind::kCount, 0, "n"}}, /*group_aliases=*/{2});
  CollectorSink sink;
  gb.set_downstream(&sink);
  for (int64_t k = 0; k < 10; ++k) {
    ASSERT_TRUE(
        gb.OnTuple(Tuple(s, {Value(k), Value(k), Value(k)}), 0).ok());
  }
  // [0..6] on the group column AND [4..9] on the alias: effective [4..6].
  Punctuation p({Pattern::Range(Value(int64_t{0}), Value(int64_t{6})),
                 Pattern::Wildcard(),
                 Pattern::Range(Value(int64_t{4}), Value(int64_t{9}))});
  ASSERT_TRUE(gb.OnPunctuation(p, 0).ok());
  EXPECT_EQ(sink.tuples().size(), 3u);  // groups 4, 5, 6
  EXPECT_EQ(gb.open_groups(), 7);
}

TEST(GroupByTest, NonAliasConstraintStillUnusable) {
  SchemaPtr s = Schema::Make({{"key", ValueType::kInt64},
                              {"v", ValueType::kInt64},
                              {"key_r", ValueType::kInt64}});
  GroupBy gb(s, 0, {{AggKind::kCount, 0, "n"}}, /*group_aliases=*/{2});
  CollectorSink sink;
  gb.set_downstream(&sink);
  ASSERT_TRUE(
      gb.OnTuple(Tuple(s, {Value(int64_t{1}), Value(int64_t{5}),
                           Value(int64_t{1})}),
                 0)
          .ok());
  // Constrains the middle (non-alias) column: cannot close groups.
  Punctuation p({Pattern::Constant(Value(int64_t{1})),
                 Pattern::Constant(Value(int64_t{5})),
                 Pattern::Wildcard()});
  ASSERT_TRUE(gb.OnPunctuation(p, 0).ok());
  EXPECT_TRUE(sink.tuples().empty());
  EXPECT_EQ(gb.counters().Get("puncts_unusable"), 1);
}

TEST(FilterTest, PassesAndDrops) {
  SchemaPtr s = KeyPayloadSchema("v");
  Filter filter([](const Tuple& t) { return t.field(0).AsInt64() % 2 == 0; });
  CollectorSink sink;
  filter.set_downstream(&sink);
  for (int64_t k = 0; k < 6; ++k) {
    ASSERT_TRUE(filter.OnTuple(KP(s, k, 0), 0).ok());
  }
  EXPECT_EQ(filter.passed(), 3);
  EXPECT_EQ(filter.dropped(), 3);
  EXPECT_EQ(sink.tuples().size(), 3u);
}

TEST(FilterTest, PunctuationsPassThrough) {
  Filter filter([](const Tuple&) { return false; });
  CollectorSink sink;
  filter.set_downstream(&sink);
  ASSERT_TRUE(filter.OnPunctuation(KeyPunct(1), 0).ok());
  EXPECT_EQ(sink.punctuations().size(), 1u);
}

TEST(ProjectTest, SelectsAndReordersColumns) {
  SchemaPtr s = Schema::Make({{"a", ValueType::kInt64},
                              {"b", ValueType::kInt64},
                              {"c", ValueType::kInt64}});
  Project proj(s, {2, 0});
  EXPECT_EQ(proj.output_schema()->ToString(), "(c:int64, a:int64)");
  CollectorSink sink;
  proj.set_downstream(&sink);
  ASSERT_TRUE(proj.OnTuple(Tuple(s, {Value(int64_t{1}), Value(int64_t{2}),
                                     Value(int64_t{3})}),
                           0)
                  .ok());
  ASSERT_EQ(sink.tuples().size(), 1u);
  EXPECT_EQ(sink.tuples()[0].field(0).AsInt64(), 3);
  EXPECT_EQ(sink.tuples()[0].field(1).AsInt64(), 1);
}

TEST(ProjectTest, ProjectsPunctuationOnKeptColumns) {
  SchemaPtr s = Schema::Make({{"a", ValueType::kInt64},
                              {"b", ValueType::kInt64}});
  Project proj(s, {0});
  CollectorSink sink;
  proj.set_downstream(&sink);
  ASSERT_TRUE(proj.OnPunctuation(
                      Punctuation::ForAttribute(
                          2, 0, Pattern::Constant(Value(int64_t{5}))),
                      0)
                  .ok());
  ASSERT_EQ(sink.punctuations().size(), 1u);
  EXPECT_EQ(sink.punctuations()[0].num_patterns(), 1u);
  EXPECT_EQ(sink.punctuations()[0].pattern(0),
            Pattern::Constant(Value(int64_t{5})));
}

TEST(ProjectTest, DropsPunctuationConstrainingRemovedColumn) {
  SchemaPtr s = Schema::Make({{"a", ValueType::kInt64},
                              {"b", ValueType::kInt64}});
  Project proj(s, {0});
  CollectorSink sink;
  proj.set_downstream(&sink);
  // <a=5, b=3> does not imply <a=5>: must not be forwarded.
  Punctuation p({Pattern::Constant(Value(int64_t{5})),
                 Pattern::Constant(Value(int64_t{3}))});
  ASSERT_TRUE(proj.OnPunctuation(p, 0).ok());
  EXPECT_TRUE(sink.punctuations().empty());
}

TEST(ProjectTest, DropsAllWildcardProjection) {
  SchemaPtr s = Schema::Make({{"a", ValueType::kInt64},
                              {"b", ValueType::kInt64}});
  Project proj(s, {1});
  CollectorSink sink;
  proj.set_downstream(&sink);
  // Punctuation on only dropped column "a"... constrains a -> dropped.
  ASSERT_TRUE(proj.OnPunctuation(
                      Punctuation::ForAttribute(
                          2, 0, Pattern::Constant(Value(int64_t{5}))),
                      0)
                  .ok());
  EXPECT_TRUE(sink.punctuations().empty());
}

TEST(SinkTest, CountingSinkCounts) {
  SchemaPtr s = KeyPayloadSchema("v");
  CountingSink sink;
  ASSERT_TRUE(sink.OnTuple(KP(s, 1, 1), 0).ok());
  ASSERT_TRUE(sink.OnTuple(KP(s, 2, 2), 0).ok());
  ASSERT_TRUE(sink.OnPunctuation(KeyPunct(1), 0).ok());
  ASSERT_TRUE(sink.OnEndOfStream().ok());
  EXPECT_EQ(sink.tuple_count(), 2);
  EXPECT_EQ(sink.punct_count(), 1);
  EXPECT_TRUE(sink.saw_end_of_stream());
}

TEST(SinkTest, CallbackSinkInvokes) {
  SchemaPtr s = KeyPayloadSchema("v");
  int tuples = 0;
  int puncts = 0;
  CallbackSink sink([&tuples](const Tuple&, TimeMicros) { ++tuples; },
                    [&puncts](const Punctuation&, TimeMicros) { ++puncts; });
  ASSERT_TRUE(sink.OnTuple(KP(s, 1, 1), 0).ok());
  ASSERT_TRUE(sink.OnPunctuation(KeyPunct(1), 0).ok());
  EXPECT_EQ(tuples, 1);
  EXPECT_EQ(puncts, 1);
}

TEST(OperatorTest, ChainForwardsThroughMultipleStages) {
  SchemaPtr s = KeyPayloadSchema("v");
  Filter f1([](const Tuple& t) { return t.field(0).AsInt64() > 0; });
  Project p1(s, {0});
  CollectorSink sink;
  f1.set_downstream(&p1);
  p1.set_downstream(&sink);
  ASSERT_TRUE(f1.OnTuple(KP(s, 5, 50), 0).ok());
  ASSERT_TRUE(f1.OnTuple(KP(s, 0, 60), 0).ok());
  ASSERT_TRUE(f1.OnEndOfStream().ok());
  ASSERT_EQ(sink.tuples().size(), 1u);
  EXPECT_EQ(sink.tuples()[0].num_fields(), 1u);
  EXPECT_TRUE(sink.saw_end_of_stream());
}

}  // namespace
}  // namespace pjoin
