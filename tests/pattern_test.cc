#include <gtest/gtest.h>

#include "punct/pattern.h"

namespace pjoin {
namespace {

Value V(int64_t x) { return Value(x); }

TEST(PatternTest, WildcardMatchesEverything) {
  Pattern p = Pattern::Wildcard();
  EXPECT_TRUE(p.IsWildcard());
  EXPECT_TRUE(p.Matches(V(0)));
  EXPECT_TRUE(p.Matches(Value("s")));
  EXPECT_TRUE(p.Matches(Value()));
  EXPECT_EQ(p.ToString(), "*");
}

TEST(PatternTest, ConstantMatchesExactly) {
  Pattern p = Pattern::Constant(V(5));
  EXPECT_TRUE(p.IsConstant());
  EXPECT_TRUE(p.Matches(V(5)));
  EXPECT_FALSE(p.Matches(V(6)));
  EXPECT_EQ(p.constant(), V(5));
}

TEST(PatternTest, RangeIsClosedInterval) {
  Pattern p = Pattern::Range(V(2), V(5));
  EXPECT_EQ(p.kind(), PatternKind::kRange);
  EXPECT_FALSE(p.Matches(V(1)));
  EXPECT_TRUE(p.Matches(V(2)));
  EXPECT_TRUE(p.Matches(V(4)));
  EXPECT_TRUE(p.Matches(V(5)));
  EXPECT_FALSE(p.Matches(V(6)));
  EXPECT_EQ(p.ToString(), "[2, 5]");
}

TEST(PatternTest, EnumListMatchesMembers) {
  Pattern p = Pattern::EnumList({V(7), V(3), V(5)});
  EXPECT_EQ(p.kind(), PatternKind::kEnumList);
  EXPECT_TRUE(p.Matches(V(3)));
  EXPECT_TRUE(p.Matches(V(5)));
  EXPECT_TRUE(p.Matches(V(7)));
  EXPECT_FALSE(p.Matches(V(4)));
  // Members come out sorted.
  EXPECT_EQ(p.members()[0], V(3));
  EXPECT_EQ(p.members()[2], V(7));
}

TEST(PatternTest, EmptyMatchesNothing) {
  Pattern p = Pattern::Empty();
  EXPECT_TRUE(p.IsEmpty());
  EXPECT_FALSE(p.Matches(V(0)));
}

TEST(PatternTest, CanonicalizationRules) {
  // Inverted range -> empty.
  EXPECT_TRUE(Pattern::Range(V(5), V(2)).IsEmpty());
  // Degenerate range -> constant.
  EXPECT_EQ(Pattern::Range(V(3), V(3)), Pattern::Constant(V(3)));
  // Empty enum -> empty.
  EXPECT_TRUE(Pattern::EnumList({}).IsEmpty());
  // Singleton enum -> constant.
  EXPECT_EQ(Pattern::EnumList({V(4)}), Pattern::Constant(V(4)));
  // Duplicate members collapse.
  EXPECT_EQ(Pattern::EnumList({V(1), V(1)}), Pattern::Constant(V(1)));
}

TEST(PatternTest, StringPatterns) {
  Pattern c = Pattern::Constant(Value("ab"));
  EXPECT_TRUE(c.Matches(Value("ab")));
  EXPECT_FALSE(c.Matches(Value("ac")));
  Pattern r = Pattern::Range(Value("b"), Value("d"));
  EXPECT_TRUE(r.Matches(Value("c")));
  EXPECT_FALSE(r.Matches(Value("a")));
}

TEST(PatternAndTest, WildcardIsIdentity) {
  Pattern r = Pattern::Range(V(1), V(5));
  EXPECT_EQ(Pattern::And(Pattern::Wildcard(), r), r);
  EXPECT_EQ(Pattern::And(r, Pattern::Wildcard()), r);
}

TEST(PatternAndTest, EmptyAnnihilates) {
  Pattern r = Pattern::Range(V(1), V(5));
  EXPECT_TRUE(Pattern::And(Pattern::Empty(), r).IsEmpty());
  EXPECT_TRUE(Pattern::And(r, Pattern::Empty()).IsEmpty());
}

TEST(PatternAndTest, ConstantMembership) {
  Pattern c = Pattern::Constant(V(3));
  EXPECT_EQ(Pattern::And(c, Pattern::Range(V(1), V(5))), c);
  EXPECT_TRUE(Pattern::And(c, Pattern::Range(V(4), V(5))).IsEmpty());
  EXPECT_EQ(Pattern::And(c, Pattern::EnumList({V(3), V(9)})), c);
  EXPECT_TRUE(Pattern::And(c, Pattern::Constant(V(4))).IsEmpty());
  EXPECT_EQ(Pattern::And(c, Pattern::Constant(V(3))), c);
}

TEST(PatternAndTest, RangeIntersection) {
  Pattern a = Pattern::Range(V(1), V(10));
  Pattern b = Pattern::Range(V(5), V(20));
  EXPECT_EQ(Pattern::And(a, b), Pattern::Range(V(5), V(10)));
  EXPECT_TRUE(
      Pattern::And(Pattern::Range(V(1), V(2)), Pattern::Range(V(3), V(4)))
          .IsEmpty());
  // Touching ranges intersect in a single point -> constant.
  EXPECT_EQ(
      Pattern::And(Pattern::Range(V(1), V(5)), Pattern::Range(V(5), V(9))),
      Pattern::Constant(V(5)));
}

TEST(PatternAndTest, EnumFiltering) {
  Pattern e = Pattern::EnumList({V(1), V(3), V(5), V(7)});
  EXPECT_EQ(Pattern::And(e, Pattern::Range(V(2), V(6))),
            Pattern::EnumList({V(3), V(5)}));
  EXPECT_EQ(Pattern::And(e, Pattern::EnumList({V(5), V(7), V(9)})),
            Pattern::EnumList({V(5), V(7)}));
  EXPECT_TRUE(Pattern::And(e, Pattern::EnumList({V(2), V(4)})).IsEmpty());
  // Result collapsing to a single member canonicalizes to constant.
  EXPECT_EQ(Pattern::And(e, Pattern::Range(V(3), V(3))),
            Pattern::Constant(V(3)));
}

TEST(PatternAndTest, Commutative) {
  std::vector<Pattern> patterns = {
      Pattern::Wildcard(),      Pattern::Constant(V(3)),
      Pattern::Range(V(1), V(5)), Pattern::EnumList({V(2), V(4)}),
      Pattern::Empty(),
  };
  for (const Pattern& a : patterns) {
    for (const Pattern& b : patterns) {
      EXPECT_EQ(Pattern::And(a, b), Pattern::And(b, a))
          << a.ToString() << " vs " << b.ToString();
    }
  }
}

// Property: And(a, b) matches v iff a and b both match v.
class PatternAndProperty : public ::testing::TestWithParam<int> {};

TEST_P(PatternAndProperty, IntersectionSemantics) {
  const int idx = GetParam();
  std::vector<Pattern> patterns = {
      Pattern::Wildcard(),
      Pattern::Constant(V(3)),
      Pattern::Constant(V(11)),
      Pattern::Range(V(1), V(5)),
      Pattern::Range(V(4), V(9)),
      Pattern::EnumList({V(2), V(4), V(6)}),
      Pattern::EnumList({V(4), V(8)}),
      Pattern::Empty(),
  };
  const Pattern& a = patterns[static_cast<size_t>(idx) % patterns.size()];
  for (const Pattern& b : patterns) {
    Pattern both = Pattern::And(a, b);
    for (int64_t v = -1; v <= 12; ++v) {
      EXPECT_EQ(both.Matches(V(v)), a.Matches(V(v)) && b.Matches(V(v)))
          << a.ToString() << " & " << b.ToString() << " at " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllPatternKinds, PatternAndProperty,
                         ::testing::Range(0, 8));

TEST(PatternCoversTest, BasicCases) {
  EXPECT_TRUE(Pattern::Covers(Pattern::Wildcard(), Pattern::Constant(V(1))));
  EXPECT_TRUE(Pattern::Covers(Pattern::Range(V(1), V(9)),
                              Pattern::Range(V(2), V(5))));
  EXPECT_FALSE(Pattern::Covers(Pattern::Range(V(1), V(4)),
                               Pattern::Range(V(2), V(5))));
  EXPECT_TRUE(Pattern::Covers(Pattern::EnumList({V(1), V(2), V(3)}),
                              Pattern::EnumList({V(1), V(3)})));
  EXPECT_FALSE(Pattern::Covers(Pattern::Constant(V(1)),
                               Pattern::Wildcard()));
  EXPECT_TRUE(Pattern::Covers(Pattern::Empty(), Pattern::Empty()));
  EXPECT_TRUE(Pattern::Covers(Pattern::Constant(V(1)), Pattern::Empty()));
  EXPECT_FALSE(Pattern::Covers(Pattern::Empty(), Pattern::Constant(V(1))));
}

TEST(PatternCoversTest, ConsistentWithAnd) {
  // Covers(outer, inner) should imply And(outer, inner) == inner.
  std::vector<Pattern> patterns = {
      Pattern::Wildcard(),      Pattern::Constant(V(3)),
      Pattern::Range(V(1), V(5)), Pattern::EnumList({V(2), V(4)}),
      Pattern::Empty(),
  };
  for (const Pattern& outer : patterns) {
    for (const Pattern& inner : patterns) {
      if (Pattern::Covers(outer, inner)) {
        EXPECT_EQ(Pattern::And(outer, inner), inner)
            << outer.ToString() << " covers " << inner.ToString();
      }
    }
  }
}

}  // namespace
}  // namespace pjoin
