#include "common/metrics.h"

#include <gtest/gtest.h>

namespace pjoin {
namespace {

TEST(TimeSeriesTest, RecordsEverySampleWithoutThinning) {
  TimeSeries series;
  series.Record(0, 1);
  series.Record(1, 2);
  series.Record(1, 3);  // same timestamp still recorded
  EXPECT_EQ(series.samples().size(), 3u);
  EXPECT_EQ(series.LastValue(), 3);
}

TEST(TimeSeriesTest, ThinningDropsIntermediateSamples) {
  TimeSeries series(/*min_interval=*/100);
  series.Record(0, 1);
  series.Record(50, 2);   // thinned
  series.Record(120, 3);  // clears the interval
  ASSERT_EQ(series.samples().size(), 2u);
  EXPECT_EQ(series.samples()[1].time, 120);
  EXPECT_EQ(series.samples()[1].value, 3);
}

// Regression: a final sample inside min_interval_ used to be dropped
// outright, so LastValue()/Resample() reported whichever sample last
// cleared the thinning interval instead of the series' true end state.
TEST(TimeSeriesTest, FlushRecoversThinnedTail) {
  TimeSeries series(/*min_interval=*/100);
  series.Record(0, 1);
  series.Record(50, 7);  // thinned: held as pending tail
  EXPECT_EQ(series.LastValue(), 1);
  series.Flush();
  ASSERT_EQ(series.samples().size(), 2u);
  EXPECT_EQ(series.LastValue(), 7);
  EXPECT_EQ(series.samples().back().time, 50);
}

TEST(TimeSeriesTest, FlushKeepsOnlyNewestPendingSample) {
  TimeSeries series(/*min_interval=*/100);
  series.Record(0, 1);
  series.Record(10, 2);  // thinned
  series.Record(20, 3);  // thinned, replaces the previous pending
  series.Flush();
  ASSERT_EQ(series.samples().size(), 2u);
  EXPECT_EQ(series.samples().back().time, 20);
  EXPECT_EQ(series.samples().back().value, 3);
}

TEST(TimeSeriesTest, FlushIsIdempotentAndNoopWithoutPending) {
  TimeSeries series(/*min_interval=*/100);
  series.Flush();  // empty: nothing pending
  EXPECT_TRUE(series.empty());
  series.Record(0, 1);
  series.Record(10, 2);
  series.Flush();
  series.Flush();  // second flush must not duplicate the tail
  EXPECT_EQ(series.samples().size(), 2u);
}

TEST(TimeSeriesTest, SampleClearingIntervalDiscardsStalePending) {
  TimeSeries series(/*min_interval=*/100);
  series.Record(0, 1);
  series.Record(10, 2);   // thinned
  series.Record(150, 3);  // recorded; the pending {10, 2} is now stale
  series.Flush();
  ASSERT_EQ(series.samples().size(), 2u);
  EXPECT_EQ(series.samples().back().time, 150);
  EXPECT_EQ(series.samples().back().value, 3);
}

// bench_util copies the operator's series into RunStats and flushes the
// copy; the pending tail must travel with the copy.
TEST(TimeSeriesTest, CopyCarriesPendingTail) {
  TimeSeries series(/*min_interval=*/100);
  series.Record(0, 1);
  series.Record(50, 9);  // thinned
  TimeSeries copy = series;
  copy.Flush();
  EXPECT_EQ(copy.LastValue(), 9);
  // The original is untouched.
  EXPECT_EQ(series.LastValue(), 1);
}

TEST(TimeSeriesTest, ResampleReflectsFlushedTail) {
  TimeSeries series(/*min_interval=*/100);
  series.Record(0, 10);
  series.Record(90, 0);  // thinned: state dropped to zero at the end
  series.Flush();
  const std::vector<Sample> grid = series.Resample(/*horizon=*/100,
                                                   /*buckets=*/2);
  ASSERT_EQ(grid.size(), 2u);
  EXPECT_EQ(grid.back().value, 0);
}

}  // namespace
}  // namespace pjoin
