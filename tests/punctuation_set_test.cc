#include <gtest/gtest.h>

#include "punct/punctuation_set.h"

namespace pjoin {
namespace {

SchemaPtr TwoFieldSchema() {
  return Schema::Make({{"key", ValueType::kInt64}, {"p", ValueType::kInt64}});
}

Tuple T(const SchemaPtr& s, int64_t key, int64_t payload = 0) {
  return Tuple(s, {Value(key), Value(payload)});
}

Punctuation KeyPunct(int64_t key) {
  return Punctuation::ForAttribute(2, 0, Pattern::Constant(Value(key)));
}

Punctuation KeyRangePunct(int64_t lo, int64_t hi) {
  return Punctuation::ForAttribute(2, 0,
                                   Pattern::Range(Value(lo), Value(hi)));
}

TEST(PunctuationSetTest, PidsIncreaseInArrivalOrder) {
  PunctuationSet ps(0);
  EXPECT_EQ(ps.Add(KeyPunct(1), 10).value(), 0);
  EXPECT_EQ(ps.Add(KeyPunct(2), 20).value(), 1);
  EXPECT_EQ(ps.Add(KeyPunct(3), 30).value(), 2);
  EXPECT_EQ(ps.size(), 3u);
  EXPECT_EQ(ps.PidsInOrder(), (std::vector<int64_t>{0, 1, 2}));
}

TEST(PunctuationSetTest, SetMatchFullTuple) {
  SchemaPtr s = TwoFieldSchema();
  PunctuationSet ps(0);
  ASSERT_TRUE(ps.Add(KeyPunct(5), 0).ok());
  EXPECT_TRUE(ps.SetMatch(T(s, 5)));
  EXPECT_FALSE(ps.SetMatch(T(s, 6)));
}

TEST(PunctuationSetTest, SetMatchHonorsNonKeyPatterns) {
  SchemaPtr s = TwoFieldSchema();
  PunctuationSet ps(0);
  // Punctuation constraining key AND payload.
  Punctuation p({Pattern::Constant(Value(int64_t{5})),
                 Pattern::Constant(Value(int64_t{1}))});
  ASSERT_TRUE(ps.Add(p, 0).ok());
  EXPECT_TRUE(ps.SetMatch(T(s, 5, 1)));
  EXPECT_FALSE(ps.SetMatch(T(s, 5, 2)));
}

TEST(PunctuationSetTest, SetMatchKeyIgnoresNonKeyOnlyPunctuations) {
  PunctuationSet ps(0);
  Punctuation p({Pattern::Constant(Value(int64_t{5})),
                 Pattern::Constant(Value(int64_t{1}))});
  ASSERT_TRUE(ps.Add(p, 0).ok());
  // Key 5 may still arrive with other payloads, so a cross-stream purge on
  // key 5 would be unsafe.
  EXPECT_FALSE(ps.SetMatchKey(Value(int64_t{5})));
  ASSERT_TRUE(ps.Add(KeyPunct(5), 1).ok());
  EXPECT_TRUE(ps.SetMatchKey(Value(int64_t{5})));
}

TEST(PunctuationSetTest, SetMatchKeyWithRangePattern) {
  PunctuationSet ps(0);
  ASSERT_TRUE(ps.Add(KeyRangePunct(10, 20), 0).ok());
  EXPECT_TRUE(ps.SetMatchKey(Value(int64_t{15})));
  EXPECT_TRUE(ps.SetMatchKey(Value(int64_t{10})));
  EXPECT_FALSE(ps.SetMatchKey(Value(int64_t{9})));
  EXPECT_FALSE(ps.SetMatchKey(Value(int64_t{21})));
}

TEST(PunctuationSetTest, FindFirstMatchPrefersEarliestArrival) {
  SchemaPtr s = TwoFieldSchema();
  PunctuationSet ps(0);
  ASSERT_TRUE(ps.Add(KeyRangePunct(0, 100), 0).ok());   // pid 0
  ASSERT_TRUE(ps.Add(KeyPunct(5), 1).ok());             // pid 1
  PunctEntry* e = ps.FindFirstMatch(T(s, 5));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->pid, 0);
  EXPECT_EQ(ps.FindFirstMatch(T(s, 500)), nullptr);
}

TEST(PunctuationSetTest, FindFirstMatchConstantBeforeLaterRange) {
  SchemaPtr s = TwoFieldSchema();
  PunctuationSet ps(0);
  ASSERT_TRUE(ps.Add(KeyPunct(5), 0).ok());            // pid 0
  ASSERT_TRUE(ps.Add(KeyRangePunct(0, 100), 1).ok());  // pid 1
  PunctEntry* e = ps.FindFirstMatch(T(s, 5));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->pid, 0);
}

TEST(PunctuationSetTest, RemoveDropsFromIndexes) {
  SchemaPtr s = TwoFieldSchema();
  PunctuationSet ps(0);
  int64_t pid_const = ps.Add(KeyPunct(5), 0).value();
  int64_t pid_range = ps.Add(KeyRangePunct(10, 20), 1).value();
  ps.Remove(pid_const);
  EXPECT_EQ(ps.size(), 1u);
  EXPECT_FALSE(ps.SetMatch(T(s, 5)));
  EXPECT_EQ(ps.Find(pid_const), nullptr);
  ps.Remove(pid_range);
  EXPECT_TRUE(ps.empty());
  EXPECT_FALSE(ps.SetMatchKey(Value(int64_t{15})));
}

TEST(PunctuationSetTest, KeyOnlyFlagComputed) {
  PunctuationSet ps(0);
  int64_t a = ps.Add(KeyPunct(1), 0).value();
  Punctuation both({Pattern::Constant(Value(int64_t{2})),
                    Pattern::Constant(Value(int64_t{9}))});
  int64_t b = ps.Add(both, 1).value();
  EXPECT_TRUE(ps.Find(a)->key_only);
  EXPECT_FALSE(ps.Find(b)->key_only);
}

TEST(PunctuationSetTest, PrefixValidationAcceptsDisjointAndContaining) {
  PunctuationSet ps(0, /*validate_prefix=*/true);
  ASSERT_TRUE(ps.Add(KeyPunct(1), 0).ok());
  // Disjoint: fine.
  ASSERT_TRUE(ps.Add(KeyPunct(2), 1).ok());
  // Containing an earlier punctuation: fine ([0,5] contains {1} and {2}).
  ASSERT_TRUE(ps.Add(KeyRangePunct(0, 5), 2).ok());
}

TEST(PunctuationSetTest, PrefixValidationRejectsPartialOverlap) {
  PunctuationSet ps(0, /*validate_prefix=*/true);
  ASSERT_TRUE(ps.Add(KeyRangePunct(0, 10), 0).ok());
  // [5, 20] overlaps [0, 10] without containing it.
  Result<int64_t> r = ps.Add(KeyRangePunct(5, 20), 1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(PunctuationSetTest, ForEachVisitsInArrivalOrder) {
  PunctuationSet ps(0);
  ASSERT_TRUE(ps.Add(KeyPunct(3), 0).ok());
  ASSERT_TRUE(ps.Add(KeyPunct(1), 1).ok());
  ASSERT_TRUE(ps.Add(KeyPunct(2), 2).ok());
  std::vector<int64_t> pids;
  ps.ForEach([&pids](PunctEntry& e) { pids.push_back(e.pid); });
  EXPECT_EQ(pids, (std::vector<int64_t>{0, 1, 2}));
}

TEST(PunctuationSetTest, RemoveRetainingCoverageKeepsKeyMatch) {
  PunctuationSet ps(0);
  int64_t pid = ps.Add(KeyPunct(5), 0).value();
  ps.RemoveRetainingCoverage(pid);
  EXPECT_TRUE(ps.empty());
  EXPECT_EQ(ps.Find(pid), nullptr);
  // The key is still covered for purge / on-the-fly-drop purposes.
  EXPECT_TRUE(ps.SetMatchKey(Value(int64_t{5})));
  EXPECT_FALSE(ps.SetMatchKey(Value(int64_t{6})));
}

TEST(PunctuationSetTest, RemoveRetainingCoverageRangePattern) {
  PunctuationSet ps(0);
  int64_t pid = ps.Add(KeyRangePunct(10, 20), 0).value();
  ps.RemoveRetainingCoverage(pid);
  EXPECT_TRUE(ps.SetMatchKey(Value(int64_t{15})));
  EXPECT_FALSE(ps.SetMatchKey(Value(int64_t{25})));
}

TEST(PunctuationSetTest, RemoveRetainingCoverageSkipsNonKeyOnly) {
  PunctuationSet ps(0);
  Punctuation both({Pattern::Constant(Value(int64_t{5})),
                    Pattern::Constant(Value(int64_t{1}))});
  int64_t pid = ps.Add(both, 0).value();
  ps.RemoveRetainingCoverage(pid);
  // A non-key-only punctuation never grants key coverage.
  EXPECT_FALSE(ps.SetMatchKey(Value(int64_t{5})));
}

TEST(PunctuationSetTest, WorkQueuesDrainOnce) {
  PunctuationSet ps(0);
  ASSERT_TRUE(ps.Add(KeyPunct(1), 0).ok());
  ASSERT_TRUE(ps.Add(KeyPunct(2), 1).ok());
  auto purge_batch = ps.TakeUnappliedForPurge();
  EXPECT_EQ(purge_batch, (std::vector<int64_t>{0, 1}));
  EXPECT_TRUE(ps.TakeUnappliedForPurge().empty());
  EXPECT_TRUE(ps.Find(0)->purge_applied);

  auto index_batch = ps.TakeUnindexed();
  EXPECT_EQ(index_batch, (std::vector<int64_t>{0, 1}));
  EXPECT_TRUE(ps.TakeUnindexed().empty());

  // New additions re-enter both queues.
  ASSERT_TRUE(ps.Add(KeyPunct(3), 2).ok());
  EXPECT_EQ(ps.TakeUnappliedForPurge(), (std::vector<int64_t>{2}));
  EXPECT_EQ(ps.TakeUnindexed(), (std::vector<int64_t>{2}));
}

TEST(PunctuationSetTest, ByteSizeGrowsWithEntries) {
  PunctuationSet ps(0);
  size_t empty_size = ps.ByteSize();
  ASSERT_TRUE(ps.Add(KeyPunct(1), 0).ok());
  EXPECT_GT(ps.ByteSize(), empty_size);
}

}  // namespace
}  // namespace pjoin
