// SpillManager tests: victim selection, punctuation-aware early purge,
// recursive sub-partitioning, and the fault-hardened degradation ladder.
// Every join-level test is gated by a dual-view oracle — the output of the
// (possibly fault-injected) run must equal the nested-loop reference over
// the clean streams, so no spill decision may drop or duplicate a result.

#include "storage/spill_manager.h"

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "fault/faulty_spill_store.h"
#include "gen/stream_generator.h"
#include "join/hash_state.h"
#include "join/pjoin.h"
#include "ops/parallel_pipeline.h"
#include "storage/recovering_spill_store.h"
#include "storage/simulated_disk.h"
#include "test_util.h"

namespace pjoin {
namespace {

using testing::KeyPayloadSchema;
using testing::KP;
using testing::ReferenceJoinRows;
using testing::RunJoin;

// ---- Direct manager tests over raw HashStates ----

std::unique_ptr<HashState> MakeState(const char* name, const SchemaPtr& s,
                                     int num_partitions) {
  return std::make_unique<HashState>(name, s, /*key_index=*/0, num_partitions,
                                     std::make_unique<SimulatedDisk>());
}

/// First key >= `from` hashing to partition `p`.
int64_t KeyInPartition(const HashState& state, int p, int64_t from = 0) {
  for (int64_t k = from;; ++k) {
    if (state.PartitionOf(Value(k)) == p) return k;
  }
}

void InsertN(HashState* state, const SchemaPtr& s, int64_t key, int n,
             int64_t first_tick) {
  for (int i = 0; i < n; ++i) {
    TupleEntry e;
    e.tuple = KP(s, key, i);
    e.ats = first_tick + i;
    state->InsertMemory(std::move(e));
  }
}

TEST(SpillManagerTest, AdaptiveSpillsColdPartitionFirst) {
  SchemaPtr s = KeyPayloadSchema();
  auto left = MakeState("a", s, 4);
  auto right = MakeState("b", s, 4);
  const int hot = 0;
  const int cold = 1;
  // Same size, same insertion ticks — only probe recency differs.
  InsertN(left.get(), s, KeyInPartition(*left, hot), 10, 1);
  InsertN(left.get(), s, KeyInPartition(*left, cold), 10, 1);
  left->NotePartitionProbed(hot, 100);

  SpillManager manager(SpillPolicy{}, left.get(), right.get());
  int64_t tick = 200;
  ASSERT_TRUE(manager
                  .EnsureWithinBudget(/*threshold_tuples=*/15,
                                      /*threshold_bytes=*/0,
                                      /*now_tick=*/101, [&] { return tick++; })
                  .ok());
  // The cold partition went to disk; the recently-probed one stayed.
  EXPECT_EQ(left->PartitionMemoryTuples(cold), 0);
  EXPECT_EQ(left->disk_tuples(cold), 10);
  EXPECT_EQ(left->PartitionMemoryTuples(hot), 10);
  EXPECT_EQ(manager.stats().spills, 1);
  EXPECT_EQ(manager.stats().tuples_spilled, 10);
}

TEST(SpillManagerTest, GlobalModeSpillsLargestRegardlessOfHeat) {
  SchemaPtr s = KeyPayloadSchema();
  auto left = MakeState("a", s, 4);
  auto right = MakeState("b", s, 4);
  const int big = 0;
  const int small = 1;
  InsertN(left.get(), s, KeyInPartition(*left, big), 12, 1);
  InsertN(left.get(), s, KeyInPartition(*left, small), 4, 1);
  left->NotePartitionProbed(big, 100);  // hot, but global mode ignores heat

  SpillPolicy policy;
  policy.mode = SpillMode::kGlobalThreshold;
  SpillManager manager(policy, left.get(), right.get());
  int64_t tick = 200;
  ASSERT_TRUE(manager
                  .EnsureWithinBudget(/*threshold_tuples=*/8,
                                      /*threshold_bytes=*/0,
                                      /*now_tick=*/101, [&] { return tick++; })
                  .ok());
  // The paper's rule: largest memory portion flushed first.
  EXPECT_EQ(left->PartitionMemoryTuples(big), 0);
  EXPECT_EQ(left->disk_tuples(big), 12);
  EXPECT_EQ(left->PartitionMemoryTuples(small), 4);
}

TEST(SpillManagerTest, HysteresisOvershootsBelowLowWater) {
  SchemaPtr s = KeyPayloadSchema();
  auto left = MakeState("a", s, 8);
  auto right = MakeState("b", s, 8);
  for (int p = 0; p < 8; ++p) {
    InsertN(left.get(), s, KeyInPartition(*left, p), 4, 1);
  }
  SpillPolicy policy;
  policy.low_water_fraction = 0.5;
  SpillManager manager(policy, left.get(), right.get());
  int64_t tick = 100;
  ASSERT_TRUE(manager
                  .EnsureWithinBudget(/*threshold_tuples=*/30,
                                      /*threshold_bytes=*/0,
                                      /*now_tick=*/50, [&] { return tick++; })
                  .ok());
  // Not "just under 30" — under the 15-tuple low-water mark, so the
  // caller's threshold latch reliably observes below-threshold samples.
  EXPECT_LT(left->TotalMemoryTuples(), 15);
  EXPECT_GE(left->TotalMemoryTuples(), 15 - 4);
}

TEST(SpillManagerTest, FailedSpillQuarantinesThenDegrades) {
  SchemaPtr s = KeyPayloadSchema();
  const int kTarget = 0;
  IoFaultSpec spec;
  spec.target_partition = kTarget;
  spec.partition_write_error_rate = 1.0;  // every write to it fails
  auto injector = std::make_shared<FaultInjector>(7);
  auto store = std::make_unique<FaultySpillStore>(
      std::make_unique<SimulatedDisk>(), spec, injector);
  auto left = std::make_unique<HashState>("a", s, 0, 4, std::move(store));
  auto right = MakeState("b", s, 4);
  // The target partition is by far the largest → always the preferred
  // victim; its spill always fails, so the ladder must quarantine it, spill
  // the healthy partitions instead, and finally degrade.
  InsertN(left.get(), s, KeyInPartition(*left, kTarget), 24, 1);
  for (int p = 1; p < 4; ++p) {
    InsertN(left.get(), s, KeyInPartition(*left, p), 4, 1);
  }

  SpillPolicy policy;
  policy.degrade_failure_threshold = 2;
  policy.quarantine_cooldown = 1;
  SpillManager manager(policy, left.get(), right.get());
  std::vector<std::string> degraded_details;
  manager.set_event_sink([&](const Event& e) {
    if (e.type == EventType::kDegradedMode) degraded_details.push_back(e.detail);
  });
  int64_t tick = 100;
  for (int round = 0; round < 8 && !manager.degraded(); ++round) {
    ASSERT_TRUE(manager
                    .EnsureWithinBudget(/*threshold_tuples=*/8,
                                        /*threshold_bytes=*/0,
                                        /*now_tick=*/50 + round,
                                        [&] { return tick++; })
                    .ok());
  }
  EXPECT_TRUE(manager.degraded());
  EXPECT_EQ(manager.effective_mode(), SpillMode::kGlobalThreshold);
  ASSERT_EQ(degraded_details.size(), 1u);
  EXPECT_NE(degraded_details[0].find("global-threshold"), std::string::npos);
  EXPECT_GE(manager.stats().spill_failures, policy.degrade_failure_threshold);
  // The failed flushes lost nothing: the target partition kept every tuple
  // resident (durable-prefix semantics with an empty prefix).
  EXPECT_EQ(left->PartitionMemoryTuples(kTarget), 24);
  EXPECT_EQ(left->disk_tuples(kTarget), 0);
  // The healthy partitions were spilled in its place.
  EXPECT_GT(manager.stats().spills, 0);
}

// ---- Join-level dual-view oracle tests ----

GeneratedStreams SkewedStreams(uint64_t seed, int64_t num_tuples,
                               double punct_rate, double zipf_s) {
  DomainSpec d;
  StreamSpec spec;
  spec.num_tuples = num_tuples;
  spec.punct_mean_interarrival_tuples = punct_rate;
  spec.zipf_s = zipf_s;
  return GenerateStreams(d, spec, spec, seed);
}

JoinOptions TightMemoryOptions() {
  JoinOptions opts;
  opts.num_partitions = 8;
  opts.runtime.memory_threshold_tuples = 64;
  // Lazy purging: punctuation-dead tuples linger in memory, which is
  // exactly the state the manager's early-purge rung reclaims for free.
  opts.runtime.purge_threshold = 16;
  return opts;
}

// Early purge only pays when tuples are still resident once their key is
// punctuated: the cap must be large relative to a key's lifetime (window *
// punct spacing), and lazy purging must be rare enough not to beat the
// spill path to the dead state.
JoinOptions EarlyPurgeFriendlyOptions() {
  JoinOptions opts;
  opts.num_partitions = 8;
  opts.runtime.memory_threshold_tuples = 192;
  opts.runtime.purge_threshold = 256;  // never reached by this workload
  return opts;
}

TEST(SpillManagerJoinTest, AdaptiveSpillsFewerBytesThanGlobalUnderSkew) {
  GeneratedStreams g = SkewedStreams(17, 1200, 20.0, 1.2);

  JoinOptions adaptive_opts = EarlyPurgeFriendlyOptions();
  PJoin adaptive(g.schema_a, g.schema_b, adaptive_opts);
  auto adaptive_run = RunJoin(&adaptive, g.a, g.b);

  JoinOptions global_opts = EarlyPurgeFriendlyOptions();
  global_opts.spill_policy.mode = SpillMode::kGlobalThreshold;
  PJoin global(g.schema_a, g.schema_b, global_opts);
  auto global_run = RunJoin(&global, g.a, g.b);

  const auto reference =
      ReferenceJoinRows(g.a, g.b, adaptive.output_schema(), 0, 0);
  EXPECT_EQ(adaptive_run.results, reference);
  EXPECT_EQ(global_run.results, reference);

  // The acceptance bar: under skew the adaptive manager writes strictly
  // fewer bytes to disk, and some of the saving is punctuation-dead state
  // purged before ever paying the write.
  EXPECT_GT(adaptive.spill_stats().bytes_early_purged, 0);
  EXPECT_GT(adaptive.spill_stats().early_purge_runs, 0);
  EXPECT_LT(adaptive.spill_stats().bytes_spilled,
            global.spill_stats().bytes_spilled);
  EXPECT_EQ(global.spill_stats().bytes_early_purged, 0);
}

TEST(SpillManagerJoinTest, RecursiveRepartitionPreservesOracle) {
  // No punctuations: everything spilled stays on disk and the end-of-run
  // disk join must read back every sub-partition the splits produced.
  GeneratedStreams g = SkewedStreams(23, 600, 0.0, 1.5);

  JoinOptions opts;
  opts.num_partitions = 4;
  opts.runtime.memory_threshold_tuples = 48;
  opts.spill_policy.repartition_record_bound = 24;
  opts.spill_policy.repartition_fanout = 2;
  opts.spill_policy.max_repartition_depth = 4;
  PJoin join(g.schema_a, g.schema_b, opts);
  auto run = RunJoin(&join, g.a, g.b, /*stall_gap=*/8000);

  EXPECT_GT(join.spill_stats().repartitions, 0);
  EXPECT_EQ(run.results,
            ReferenceJoinRows(g.a, g.b, join.output_schema(), 0, 0));
}

// Fault-injected dual view: partition-targeted and repartition-phase IO
// faults behind RecoveringSpillStore. Whatever the manager decides — spill,
// early purge, split, quarantine — the output must equal the clean
// reference with zero records lost.
class SpillFaultOracle : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SpillFaultOracle, NoLossOrDuplicationUnderInjectedFaults) {
  const uint64_t seed = GetParam();
  GeneratedStreams g = SkewedStreams(seed, 700, 25.0, 1.0);

  IoFaultSpec spec;
  spec.target_partition = static_cast<int>(seed % 8);
  spec.partition_write_error_rate = 0.4;
  spec.partition_read_error_rate = 0.25;
  spec.repartition_error_rate = 0.3;
  spec.transient_write_error_rate = 0.1;
  auto injector = std::make_shared<FaultInjector>(seed * 31 + 1);

  std::vector<const RecoveringSpillStore*> stores;
  JoinOptions opts = TightMemoryOptions();
  opts.spill_policy.repartition_record_bound = 16;
  opts.spill_policy.repartition_fanout = 2;
  opts.spill_factory = [&]() -> std::unique_ptr<SpillStore> {
    auto faulty = std::make_unique<FaultySpillStore>(
        std::make_unique<SimulatedDisk>(), spec, injector);
    auto recovering = std::make_unique<RecoveringSpillStore>(
        std::move(faulty), RecoveryOptions{}, nullptr);
    stores.push_back(recovering.get());
    return recovering;
  };
  PJoin join(g.schema_a, g.schema_b, opts);
  auto run = RunJoin(&join, g.a, g.b, /*stall_gap=*/8000);

  EXPECT_EQ(run.results,
            ReferenceJoinRows(g.a, g.b, join.output_schema(), 0, 0))
      << "seed " << seed;
  for (const RecoveringSpillStore* store : stores) {
    EXPECT_EQ(store->recovery_stats().records_lost, 0);
  }
  // The faults actually fired (otherwise this oracle proves nothing).
  EXPECT_GT(injector->Get("io_partition_write") +
                injector->Get("io_partition_read") +
                injector->Get("io_repartition_write") +
                injector->Get("io_transient_write"),
            0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpillFaultOracle,
                         ::testing::Values(uint64_t{3}, uint64_t{11},
                                           uint64_t{29}, uint64_t{47}));

// Degraded-mode fallback run: a raw (unrecovered) store whose writes to one
// partition always fail. The ladder must quarantine, degrade to
// global-threshold mode, and still produce the exact reference result —
// the failed flushes keep their tuples resident, trading memory for
// correctness.
TEST(SpillManagerJoinTest, DegradedFallbackRunKeepsOracle) {
  GeneratedStreams g = SkewedStreams(5, 500, 0.0, 0.8);

  IoFaultSpec spec;
  spec.target_partition = 2;
  spec.partition_write_error_rate = 1.0;
  auto injector = std::make_shared<FaultInjector>(99);

  JoinOptions opts;
  opts.num_partitions = 8;
  opts.runtime.memory_threshold_tuples = 48;
  opts.spill_policy.degrade_failure_threshold = 2;
  opts.spill_policy.quarantine_cooldown = 1;
  int64_t degraded_events = 0;
  opts.spill_event_sink = [&](const Event& e) {
    if (e.type == EventType::kDegradedMode) ++degraded_events;
  };
  opts.spill_factory = [&]() -> std::unique_ptr<SpillStore> {
    return std::make_unique<FaultySpillStore>(
        std::make_unique<SimulatedDisk>(), spec, injector);
  };
  PJoin join(g.schema_a, g.schema_b, opts);
  auto run = RunJoin(&join, g.a, g.b, /*stall_gap=*/8000);

  EXPECT_TRUE(join.spill_stats().degraded);
  EXPECT_EQ(degraded_events, 1);
  EXPECT_GE(join.spill_stats().spill_failures, 2);
  EXPECT_EQ(run.results,
            ReferenceJoinRows(g.a, g.b, join.output_schema(), 0, 0));
}

// Two shards with adaptive spilling under skew: TSan coverage for the
// per-shard managers and their shared metrics-registry cells.
TEST(SpillManagerJoinTest, ParallelShardsWithAdaptiveSpillMatchReference) {
  GeneratedStreams g = SkewedStreams(13, 800, 20.0, 1.2);

  JoinOptions jopts = TightMemoryOptions();
  jopts.spill_policy.repartition_record_bound = 32;
  ParallelPipelineOptions popts;
  popts.num_shards = 2;
  ParallelJoinPipeline pipeline(
      [&](int) {
        return std::make_unique<PJoin>(g.schema_a, g.schema_b, jopts);
      },
      popts);
  std::vector<std::string> rows;
  pipeline.set_result_callback(
      [&rows](const Tuple& t) { rows.push_back(t.ToString()); });
  const Status st = pipeline.Run(g.a, g.b);
  ASSERT_TRUE(st.ok()) << st.ToString();
  std::sort(rows.begin(), rows.end());

  PJoin reference_join(g.schema_a, g.schema_b, jopts);
  EXPECT_EQ(rows, ReferenceJoinRows(g.a, g.b,
                                    reference_join.output_schema(), 0, 0));
}

}  // namespace
}  // namespace pjoin
