// Minimal JSON parser shared by tests that validate JSON produced by the
// observability layer (Chrome trace export, /healthz reports): just enough
// of the grammar to parse what our own writers emit.

#ifndef PJOIN_TESTS_JSON_TEST_UTIL_H_
#define PJOIN_TESTS_JSON_TEST_UTIL_H_

#include <cctype>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pjoin {
namespace testing {

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool Parse(JsonValue* out) {
    SkipWs();
    if (!ParseValue(out)) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseLiteral(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'u': {
            // The escapers only emit \u00XX for control characters, so a
            // one-byte decode suffices.
            if (pos_ + 4 > text_.size()) return false;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code += static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code += static_cast<unsigned>(h - 'A' + 10);
              else return false;
            }
            if (code > 0xff) return false;
            c = static_cast<char>(code);
            break;
          }
          default: return false;
        }
      }
      out->push_back(c);
    }
    return Consume('"');
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out->type = JsonValue::Type::kNumber;
    out->number = std::stod(std::string(text_.substr(start, pos_ - start)));
    return true;
  }

  bool ParseValue(JsonValue* out) {
    SkipWs();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return ParseString(&out->str);
    }
    if (c == 't') {
      out->type = JsonValue::Type::kBool;
      out->boolean = true;
      return ParseLiteral("true");
    }
    if (c == 'f') {
      out->type = JsonValue::Type::kBool;
      return ParseLiteral("false");
    }
    if (c == 'n') return ParseLiteral("null");
    return ParseNumber(out);
  }

  bool ParseObject(JsonValue* out) {
    if (!Consume('{')) return false;
    out->type = JsonValue::Type::kObject;
    SkipWs();
    if (Consume('}')) return true;
    while (true) {
      SkipWs();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWs();
      if (!Consume(':')) return false;
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (Consume('}')) return true;
      if (!Consume(',')) return false;
    }
  }

  bool ParseArray(JsonValue* out) {
    if (!Consume('[')) return false;
    out->type = JsonValue::Type::kArray;
    SkipWs();
    if (Consume(']')) return true;
    while (true) {
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->array.push_back(std::move(value));
      SkipWs();
      if (Consume(']')) return true;
      if (!Consume(',')) return false;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace testing
}  // namespace pjoin

#endif  // PJOIN_TESTS_JSON_TEST_UTIL_H_
