#include <gtest/gtest.h>

#include "join/shj.h"
#include "test_util.h"

namespace pjoin {
namespace {

using testing::ElementsBuilder;
using testing::KeyPayloadSchema;
using testing::KeyPunct;
using testing::KP;
using testing::ReferenceJoinRows;
using testing::RunJoin;

TEST(ShjTest, SimpleEquiJoin) {
  SchemaPtr sa = KeyPayloadSchema("a");
  SchemaPtr sb = KeyPayloadSchema("b");
  auto left = ElementsBuilder()
                  .Tup(KP(sa, 1, 100))
                  .Tup(KP(sa, 2, 200))
                  .Finish();
  auto right = ElementsBuilder()
                   .Tup(KP(sb, 1, 111))
                   .Tup(KP(sb, 3, 333))
                   .Tup(KP(sb, 1, 112))
                   .Finish();
  SymmetricHashJoin join(sa, sb);
  auto run = RunJoin(&join, left, right);
  EXPECT_EQ(run.results,
            ReferenceJoinRows(left, right, join.output_schema(), 0, 0));
  EXPECT_EQ(join.results_emitted(), 2);
}

TEST(ShjTest, ManyToManyCounts) {
  SchemaPtr sa = KeyPayloadSchema("a");
  SchemaPtr sb = KeyPayloadSchema("b");
  ElementsBuilder lb;
  ElementsBuilder rb;
  for (int i = 0; i < 4; ++i) lb.Tup(KP(sa, 7, i));
  for (int i = 0; i < 5; ++i) rb.Tup(KP(sb, 7, 100 + i));
  SymmetricHashJoin join(sa, sb);
  auto run = RunJoin(&join, lb.Finish(), rb.Finish());
  EXPECT_EQ(join.results_emitted(), 20);
  EXPECT_EQ(run.results.size(), 20u);
}

TEST(ShjTest, NoMatchesNoResults) {
  SchemaPtr sa = KeyPayloadSchema("a");
  SchemaPtr sb = KeyPayloadSchema("b");
  auto left = ElementsBuilder().Tup(KP(sa, 1, 0)).Finish();
  auto right = ElementsBuilder().Tup(KP(sb, 2, 0)).Finish();
  SymmetricHashJoin join(sa, sb);
  auto run = RunJoin(&join, left, right);
  EXPECT_TRUE(run.results.empty());
}

TEST(ShjTest, IgnoresPunctuationsAndNeverPurges) {
  SchemaPtr sa = KeyPayloadSchema("a");
  SchemaPtr sb = KeyPayloadSchema("b");
  auto left = ElementsBuilder()
                  .Tup(KP(sa, 1, 0))
                  .Punct(KeyPunct(1))
                  .Tup(KP(sa, 2, 0))
                  .Finish();
  auto right = ElementsBuilder().Tup(KP(sb, 1, 5)).Finish();
  SymmetricHashJoin join(sa, sb);
  auto run = RunJoin(&join, left, right);
  EXPECT_EQ(run.results.size(), 1u);
  EXPECT_EQ(join.counters().Get("puncts_ignored"), 1);
  EXPECT_EQ(join.total_state_tuples(), 3);  // nothing purged
  EXPECT_TRUE(run.punctuations.empty());
}

TEST(ShjTest, OutputSchemaConcatsInputs) {
  SchemaPtr sa = KeyPayloadSchema("a");
  SchemaPtr sb = KeyPayloadSchema("b");
  SymmetricHashJoin join(sa, sb);
  EXPECT_EQ(join.output_schema()->num_fields(), 4u);
  EXPECT_EQ(join.output_schema()->field(0).name, "key");
  EXPECT_EQ(join.output_schema()->field(2).name, "key_r");
}

TEST(ShjTest, StateGrowsWithoutBound) {
  SchemaPtr sa = KeyPayloadSchema("a");
  SchemaPtr sb = KeyPayloadSchema("b");
  ElementsBuilder lb;
  for (int i = 0; i < 100; ++i) lb.Tup(KP(sa, i, i));
  SymmetricHashJoin join(sa, sb);
  RunJoin(&join, lb.Finish(), ElementsBuilder().Finish());
  EXPECT_EQ(join.total_state_tuples(), 100);
  EXPECT_EQ(join.memory_state_tuples(), 100);  // never spills
}

TEST(ShjTest, ResultCallbackReceivesConcatenatedTuple) {
  SchemaPtr sa = KeyPayloadSchema("a");
  SchemaPtr sb = KeyPayloadSchema("b");
  SymmetricHashJoin join(sa, sb);
  std::vector<Tuple> results;
  join.set_result_callback([&](const Tuple& t) { results.push_back(t); });
  JoinPipeline pipe(&join, nullptr);
  ASSERT_TRUE(pipe.Run(ElementsBuilder().Tup(KP(sa, 3, 30)).Finish(),
                       ElementsBuilder().Tup(KP(sb, 3, 31)).Finish())
                  .ok());
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].field("a").AsInt64(), 30);
  EXPECT_EQ(results[0].field("b").AsInt64(), 31);
  EXPECT_EQ(results[0].field("key").AsInt64(), 3);
  EXPECT_EQ(results[0].field("key_r").AsInt64(), 3);
}

}  // namespace
}  // namespace pjoin
