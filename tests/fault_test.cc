// Tests of the fault-injection harness (src/fault/) and its defensive
// counterpart RecoveringSpillStore: determinism, transient-error recovery,
// short-write resume, permanent-failure fallback, and the dual-view stream
// perturbation oracle.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "fault/faulty_spill_store.h"
#include "fault/faulty_stream_source.h"
#include "storage/recovering_spill_store.h"
#include "storage/simulated_disk.h"
#include "test_util.h"

namespace pjoin {
namespace {

using testing::ElementsBuilder;
using testing::KeyPayloadSchema;
using testing::KeyPunct;
using testing::KP;

std::vector<std::string> Records(int n, const std::string& prefix = "r") {
  std::vector<std::string> out;
  for (int i = 0; i < n; ++i) out.push_back(prefix + std::to_string(i));
  return out;
}

TEST(FaultInjectorTest, DeterministicFromSeed) {
  FaultInjector a(42);
  FaultInjector b(42);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.Roll(0.3), b.Roll(0.3));
    EXPECT_EQ(a.UniformInt(0, 99), b.UniformInt(0, 99));
  }
}

TEST(FaultySpillStoreTest, CountsEveryInjectedFault) {
  auto injector = std::make_shared<FaultInjector>(7);
  IoFaultSpec spec;
  spec.transient_write_error_rate = 0.5;
  FaultySpillStore store(std::make_unique<SimulatedDisk>(), spec, injector);
  int64_t failures = 0;
  for (int i = 0; i < 100; ++i) {
    if (!store.AppendBatch(0, Records(1)).ok()) ++failures;
  }
  EXPECT_GT(failures, 0);
  EXPECT_LT(failures, 100);
  EXPECT_EQ(injector->Get("io_transient_write"), failures);
  // Only the successful appends reached the base store.
  EXPECT_EQ(store.PartitionRecordCount(0), 100 - failures);
}

TEST(FaultySpillStoreTest, ShortWritePersistsStrictPrefix) {
  auto injector = std::make_shared<FaultInjector>(3);
  IoFaultSpec spec;
  spec.short_write_rate = 1.0;
  FaultySpillStore store(std::make_unique<SimulatedDisk>(), spec, injector);
  const auto records = Records(8);
  EXPECT_FALSE(store.AppendBatch(0, records).ok());
  const int64_t persisted = store.PartitionRecordCount(0);
  EXPECT_GE(persisted, 1);
  EXPECT_LT(persisted, static_cast<int64_t>(records.size()));
  // The persisted prefix is exactly the head of the batch.
  auto read = store.ReadPartition(0);
  ASSERT_TRUE(read.ok());
  for (size_t i = 0; i < read->size(); ++i) EXPECT_EQ((*read)[i], records[i]);
  EXPECT_EQ(injector->Get("io_short_write"), 1);
}

TEST(FaultySpillStoreTest, PermanentWriteFailureTripsAfterBudget) {
  auto injector = std::make_shared<FaultInjector>(1);
  IoFaultSpec spec;
  spec.permanent_write_failure_after = 2;
  FaultySpillStore store(std::make_unique<SimulatedDisk>(), spec, injector);
  EXPECT_TRUE(store.AppendBatch(0, Records(2)).ok());
  EXPECT_TRUE(store.AppendBatch(0, Records(2)).ok());
  EXPECT_FALSE(store.AppendBatch(0, Records(2)).ok());
  EXPECT_TRUE(store.write_failed_permanently());
  // The medium went read-only: reads still serve the durable records.
  auto read = store.ReadPartition(0);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->size(), 4u);
  EXPECT_EQ(injector->Get("io_permanent_write"), 1);
}

TEST(FaultySpillStoreTest, LatencySpikesAccountedInIoStats) {
  auto injector = std::make_shared<FaultInjector>(5);
  IoFaultSpec spec;
  spec.latency_spike_rate = 1.0;
  spec.latency_spike_micros = 1234;
  FaultySpillStore store(std::make_unique<SimulatedDisk>(), spec, injector);
  ASSERT_TRUE(store.AppendBatch(0, Records(1)).ok());
  ASSERT_TRUE(store.ReadPartition(0).ok());
  // Two spikes on top of whatever latency the base store models itself.
  EXPECT_GE(store.io_stats().simulated_latency_micros, 2 * 1234);
  EXPECT_EQ(injector->Get("io_latency_spike"), 2);
}

TEST(RecoveringSpillStoreTest, TransientErrorsRecoveredWithoutDegrading) {
  auto injector = std::make_shared<FaultInjector>(11);
  IoFaultSpec spec;
  spec.transient_write_error_rate = 0.3;
  spec.transient_read_error_rate = 0.3;
  RecoveryOptions opts;
  opts.max_retries = 10;
  std::vector<Event> events;
  RecoveringSpillStore store(
      std::make_unique<FaultySpillStore>(std::make_unique<SimulatedDisk>(),
                                         spec, injector),
      opts, [&events](const Event& e) { events.push_back(e); });

  std::vector<std::string> all;
  for (int batch = 0; batch < 30; ++batch) {
    auto records = Records(4, "b" + std::to_string(batch) + "_");
    all.insert(all.end(), records.begin(), records.end());
    ASSERT_TRUE(store.AppendBatch(0, records).ok());
  }
  auto read = store.ReadPartition(0);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, all);  // every record durable exactly once, in order

  const RecoveryStats& stats = store.recovery_stats();
  EXPECT_FALSE(store.degraded());
  EXPECT_EQ(stats.fallbacks, 0);
  EXPECT_GT(stats.retries, 0);
  EXPECT_GT(stats.recovered_ops, 0);
  EXPECT_GT(stats.backoff_micros, 0);
  // Every observed I/O error is an injected fault, and each raised one
  // IoErrorEvent.
  EXPECT_EQ(stats.io_errors, injector->Get("io_transient_write") +
                                 injector->Get("io_transient_read"));
  EXPECT_EQ(static_cast<int64_t>(events.size()), stats.io_errors);
  for (const Event& e : events) EXPECT_EQ(e.type, EventType::kIoError);
}

TEST(RecoveringSpillStoreTest, ShortWriteResumeNeverDuplicatesOrLoses) {
  auto injector = std::make_shared<FaultInjector>(13);
  IoFaultSpec spec;
  spec.short_write_rate = 1.0;  // every multi-record append tears
  RecoveryOptions opts;
  opts.max_retries = 10;  // each tear persists >= 1 record, so 8 always fit
  RecoveringSpillStore store(
      std::make_unique<FaultySpillStore>(std::make_unique<SimulatedDisk>(),
                                         spec, injector),
      opts);
  const auto records = Records(8);
  ASSERT_TRUE(store.AppendBatch(0, records).ok());
  auto read = store.ReadPartition(0);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, records);
  EXPECT_FALSE(store.degraded());
  EXPECT_GT(store.recovery_stats().retries, 0);
  EXPECT_EQ(store.recovery_stats().recovered_ops, 1);
}

TEST(RecoveringSpillStoreTest, PermanentWriteFailureFallsBackWithMigration) {
  auto injector = std::make_shared<FaultInjector>(17);
  IoFaultSpec spec;
  spec.permanent_write_failure_after = 2;
  std::vector<Event> events;
  RecoveringSpillStore store(
      std::make_unique<FaultySpillStore>(std::make_unique<SimulatedDisk>(),
                                         spec, injector),
      RecoveryOptions{},
      [&events](const Event& e) { events.push_back(e); });

  // Two appends fit the write budget; the third trips the permanent failure
  // and must land in the fallback together with the migrated history.
  ASSERT_TRUE(store.AppendBatch(0, Records(3, "a")).ok());
  ASSERT_TRUE(store.AppendBatch(1, Records(2, "b")).ok());
  ASSERT_TRUE(store.AppendBatch(0, Records(2, "c")).ok());

  EXPECT_TRUE(store.degraded());
  const RecoveryStats& stats = store.recovery_stats();
  EXPECT_EQ(stats.fallbacks, 1);
  EXPECT_EQ(stats.records_migrated, 5);  // both partitions moved over
  EXPECT_EQ(stats.records_lost, 0);

  auto p0 = store.ReadPartition(0);
  ASSERT_TRUE(p0.ok());
  std::vector<std::string> want0 = {"a0", "a1", "a2", "c0", "c1"};
  EXPECT_EQ(*p0, want0);
  auto p1 = store.ReadPartition(1);
  ASSERT_TRUE(p1.ok());
  EXPECT_EQ(p1->size(), 2u);

  // Degraded mode keeps working.
  ASSERT_TRUE(store.AppendBatch(2, Records(4, "d")).ok());
  EXPECT_EQ(store.TotalRecordCount(), 11);

  int degraded_events = 0;
  for (const Event& e : events) {
    if (e.type == EventType::kDegradedMode) ++degraded_events;
  }
  EXPECT_EQ(degraded_events, 1);
}

TEST(RecoveringSpillStoreTest, UnreadableDataSurfacesAsLossNotSilence) {
  auto injector = std::make_shared<FaultInjector>(19);
  IoFaultSpec spec;
  spec.permanent_read_failure_after = 0;  // every read fails, forever
  RecoveryOptions opts;
  opts.max_retries = 2;
  RecoveringSpillStore store(
      std::make_unique<FaultySpillStore>(std::make_unique<SimulatedDisk>(),
                                         spec, injector),
      opts);
  ASSERT_TRUE(store.AppendBatch(0, Records(5)).ok());
  auto read = store.ReadPartition(0);
  EXPECT_FALSE(read.ok());  // loss is reported, never papered over
  EXPECT_TRUE(store.degraded());
  EXPECT_EQ(store.recovery_stats().records_lost, 5);
}

TEST(RecoveringSpillStoreTest, IoStatsAggregateAcrossFallback) {
  auto injector = std::make_shared<FaultInjector>(23);
  IoFaultSpec spec;
  spec.permanent_write_failure_after = 1;
  RecoveringSpillStore store(
      std::make_unique<FaultySpillStore>(std::make_unique<SimulatedDisk>(),
                                         spec, injector),
      RecoveryOptions{});
  ASSERT_TRUE(store.AppendBatch(0, Records(3)).ok());
  const int64_t before = store.io_stats().records_written;
  EXPECT_GE(before, 3);
  ASSERT_TRUE(store.AppendBatch(0, Records(3, "x")).ok());  // trips + migrates
  EXPECT_TRUE(store.degraded());
  // Retired-primary writes stay visible in the aggregate.
  EXPECT_GE(store.io_stats().records_written, before + 3);
}

// ---- Stream perturbation ----

std::vector<StreamElement> CleanStream(const SchemaPtr& schema) {
  ElementsBuilder b;
  for (int round = 0; round < 20; ++round) {
    for (int64_t key = round; key < round + 4; ++key) {
      b.Tup(KP(schema, key, round * 100 + key));
    }
    b.Punct(KeyPunct(round));  // key `round` is done after round `round`
  }
  return b.Finish();
}

StreamFaultSpec AllStreamFaults() {
  StreamFaultSpec spec;
  spec.late_tuple_rate = 0.1;
  spec.malformed_punct_rate = 0.05;
  spec.duplicate_rate = 0.1;
  spec.reorder_rate = 0.1;
  spec.stall_rate = 0.05;
  return spec;
}

TEST(PerturbStreamTest, SanitizedIsFaultyMinusViolations) {
  SchemaPtr schema = KeyPayloadSchema();
  const auto clean = CleanStream(schema);
  FaultInjector injector(31);
  PerturbedStream p = PerturbStream(clean, 0, AllStreamFaults(), &injector);

  EXPECT_GT(p.violations, 0);
  EXPECT_EQ(p.violations, p.late_tuples + p.malformed_puncts + p.duplicates);
  EXPECT_EQ(p.faulty.size(), p.sanitized.size() + p.violations);
  // The sanitized view is the clean stream plus only benign additions.
  EXPECT_EQ(p.sanitized.size(), clean.size() + p.benign_duplicates);

  // Both views stay time-ordered (monotone arrivals).
  for (auto* view : {&p.faulty, &p.sanitized}) {
    for (size_t i = 1; i < view->size(); ++i) {
      EXPECT_LE((*view)[i - 1].arrival(), (*view)[i].arrival());
    }
    ASSERT_FALSE(view->empty());
    EXPECT_TRUE(view->back().is_end_of_stream());
  }

  // The injector's counters agree with the report.
  EXPECT_EQ(injector.Get("stream_late_tuple"), p.late_tuples);
  EXPECT_EQ(injector.Get("stream_malformed_punct"), p.malformed_puncts);
  EXPECT_EQ(injector.Get("stream_duplicate_violation"), p.duplicates);
  EXPECT_EQ(injector.Get("stream_duplicate_benign"), p.benign_duplicates);
  EXPECT_EQ(injector.Get("stream_reorder"), p.reorders);
  EXPECT_EQ(injector.Get("stream_stall"), p.stalls);
}

TEST(PerturbStreamTest, DeterministicFromSeed) {
  SchemaPtr schema = KeyPayloadSchema();
  const auto clean = CleanStream(schema);
  FaultInjector ia(47), ib(47);
  PerturbedStream a = PerturbStream(clean, 0, AllStreamFaults(), &ia);
  PerturbedStream b = PerturbStream(clean, 0, AllStreamFaults(), &ib);
  ASSERT_EQ(a.faulty.size(), b.faulty.size());
  for (size_t i = 0; i < a.faulty.size(); ++i) {
    EXPECT_EQ(a.faulty[i].ToString(), b.faulty[i].ToString());
  }
}

TEST(PerturbStreamTest, ReordersPreserveTupleMultiset) {
  SchemaPtr schema = KeyPayloadSchema();
  const auto clean = CleanStream(schema);
  StreamFaultSpec spec;
  spec.reorder_rate = 0.5;
  FaultInjector injector(53);
  PerturbedStream p = PerturbStream(clean, 0, spec, &injector);
  EXPECT_GT(p.reorders, 0);
  EXPECT_EQ(p.violations, 0);
  auto canon = [](const std::vector<StreamElement>& v) {
    std::vector<std::string> out;
    for (const auto& e : v) {
      if (e.is_tuple()) out.push_back(e.tuple().ToString());
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(canon(p.faulty), canon(clean));
  EXPECT_EQ(canon(p.sanitized), canon(clean));
}

TEST(PerturbStreamTest, StallsShiftArrivalsInBothViews) {
  SchemaPtr schema = KeyPayloadSchema();
  const auto clean = CleanStream(schema);
  StreamFaultSpec spec;
  spec.stall_rate = 0.2;
  spec.stall_micros = 50000;
  FaultInjector injector(59);
  PerturbedStream p = PerturbStream(clean, 0, spec, &injector);
  ASSERT_GT(p.stalls, 0);
  const TimeMicros shift = p.stalls * spec.stall_micros;
  EXPECT_EQ(p.faulty.back().arrival(), clean.back().arrival() + shift);
  EXPECT_EQ(p.sanitized.back().arrival(), clean.back().arrival() + shift);
}

class VectorSource : public StreamSource {
 public:
  explicit VectorSource(std::vector<StreamElement> elements)
      : elements_(std::move(elements)) {}
  std::optional<StreamElement> Next() override {
    if (pos_ >= elements_.size()) return std::nullopt;
    return elements_[pos_++];
  }

 private:
  std::vector<StreamElement> elements_;
  size_t pos_ = 0;
};

TEST(FaultyStreamSourceTest, ServesTheFaultyView) {
  SchemaPtr schema = KeyPayloadSchema();
  const auto clean = CleanStream(schema);
  auto injector = std::make_shared<FaultInjector>(61);
  FaultyStreamSource source(std::make_unique<VectorSource>(clean), 0,
                            AllStreamFaults(), injector);
  std::vector<StreamElement> drained;
  while (auto e = source.Next()) drained.push_back(std::move(*e));
  ASSERT_EQ(drained.size(), source.perturbed().faulty.size());
  for (size_t i = 0; i < drained.size(); ++i) {
    EXPECT_EQ(drained[i].ToString(), source.perturbed().faulty[i].ToString());
  }
  EXPECT_GT(source.perturbed().violations, 0);
}

TEST(FaultPlanTest, ToStringAndEnabled) {
  FaultPlan plan;
  EXPECT_FALSE(plan.enabled());
  plan.io.transient_write_error_rate = 0.1;
  EXPECT_TRUE(plan.enabled());
  plan.stream[0].late_tuple_rate = 0.2;
  const std::string text = plan.ToString();
  EXPECT_NE(text.find("late=0.2"), std::string::npos);
  EXPECT_NE(text.find("w_err=0.1"), std::string::npos);
}

}  // namespace
}  // namespace pjoin
