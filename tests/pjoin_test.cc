#include <gtest/gtest.h>

#include "gen/stream_generator.h"
#include "join/pjoin.h"
#include "test_util.h"

namespace pjoin {
namespace {

using testing::ElementsBuilder;
using testing::KeyPayloadSchema;
using testing::KeyPunct;
using testing::KP;
using testing::ReferenceJoinRows;
using testing::RunJoin;

TEST(PJoinTest, JoinsLikeShjWithoutPunctuations) {
  SchemaPtr sa = KeyPayloadSchema("a");
  SchemaPtr sb = KeyPayloadSchema("b");
  auto left = ElementsBuilder()
                  .Tup(KP(sa, 1, 1))
                  .Tup(KP(sa, 2, 2))
                  .Finish();
  auto right = ElementsBuilder()
                   .Tup(KP(sb, 1, 3))
                   .Tup(KP(sb, 2, 4))
                   .Finish();
  PJoin join(sa, sb);
  auto run = RunJoin(&join, left, right);
  EXPECT_EQ(run.results,
            ReferenceJoinRows(left, right, join.output_schema(), 0, 0));
}

TEST(PJoinTest, EagerPurgeRemovesCoveredTuples) {
  SchemaPtr sa = KeyPayloadSchema("a");
  SchemaPtr sb = KeyPayloadSchema("b");
  // Left gets tuples with keys 1 and 2; a right punctuation for key 1 purges
  // the key-1 left tuples.
  auto left = ElementsBuilder()
                  .Tup(KP(sa, 1, 0))
                  .Tup(KP(sa, 1, 1))
                  .Tup(KP(sa, 2, 2))
                  .Finish();
  auto right = ElementsBuilder(/*step=*/10000)
                   .Tup(KP(sb, 1, 9))
                   .Punct(KeyPunct(1))
                   .Finish();
  PJoin join(sa, sb);  // defaults: eager purge
  auto run = RunJoin(&join, left, right);
  EXPECT_EQ(run.results,
            ReferenceJoinRows(left, right, join.output_schema(), 0, 0));
  // Both key-1 left tuples must be gone; key-2 remains. The right tuple is
  // never covered (no left punctuations) and remains too.
  EXPECT_EQ(join.state(0).total_tuples(), 1);
  EXPECT_GT(join.counters().Get("purge_runs"), 0);
  EXPECT_EQ(join.counters().Get("purged_tuples"), 2);
}

TEST(PJoinTest, LazyPurgeWaitsForThreshold) {
  SchemaPtr sa = KeyPayloadSchema("a");
  SchemaPtr sb = KeyPayloadSchema("b");
  ElementsBuilder lb;
  for (int64_t k = 0; k < 6; ++k) lb.Tup(KP(sa, k, k));
  auto left = lb.Finish();
  ElementsBuilder rb(/*step=*/10000);
  for (int64_t k = 0; k < 3; ++k) rb.Punct(KeyPunct(k));
  auto right = rb.Finish();

  JoinOptions opts;
  opts.runtime.purge_threshold = 4;  // three punctuations never reach it
  opts.propagate_on_finish = false;
  PJoin join(sa, sb, opts);
  RunJoin(&join, left, right);
  EXPECT_EQ(join.counters().Get("purge_runs"), 0);
  EXPECT_EQ(join.state(0).total_tuples(), 6);  // nothing purged

  // Same input with threshold 3: one purge run removing keys 0..2.
  PJoin join2(sa, sb, [] {
    JoinOptions o;
    o.runtime.purge_threshold = 3;
    o.propagate_on_finish = false;
    return o;
  }());
  RunJoin(&join2, left, right);
  EXPECT_EQ(join2.counters().Get("purge_runs"), 1);
  EXPECT_EQ(join2.state(0).total_tuples(), 3);
}

TEST(PJoinTest, OnTheFlyDropSkipsCoveredArrivals) {
  SchemaPtr sa = KeyPayloadSchema("a");
  SchemaPtr sb = KeyPayloadSchema("b");
  // Right punctuates key 1 early; later left arrivals with key 1 are joined
  // against existing right tuples but never stored.
  auto left = ElementsBuilder(/*step=*/10000)
                  .Tup(KP(sa, 1, 0))
                  .Finish();
  auto right = ElementsBuilder()
                   .Tup(KP(sb, 1, 5))
                   .Punct(KeyPunct(1))
                   .Finish();
  PJoin join(sa, sb);
  auto run = RunJoin(&join, left, right);
  ASSERT_EQ(run.results.size(), 1u);  // the probe still found the match
  EXPECT_EQ(join.counters().Get("otf_drops"), 1);
  EXPECT_EQ(join.state(0).total_tuples(), 0);
}

TEST(PJoinTest, OnTheFlyDropDisabled) {
  SchemaPtr sa = KeyPayloadSchema("a");
  SchemaPtr sb = KeyPayloadSchema("b");
  auto left = ElementsBuilder(/*step=*/10000).Tup(KP(sa, 1, 0)).Finish();
  auto right = ElementsBuilder()
                   .Tup(KP(sb, 1, 5))
                   .Punct(KeyPunct(1))
                   .Finish();
  JoinOptions opts;
  opts.drop_on_the_fly = false;
  opts.runtime.purge_threshold = 1000;  // no purge either
  opts.propagate_on_finish = false;
  PJoin join(sa, sb, opts);
  RunJoin(&join, left, right);
  EXPECT_EQ(join.counters().Get("otf_drops"), 0);
  EXPECT_EQ(join.state(0).total_tuples(), 1);
}

TEST(PJoinTest, PurgeBufferHoldsTuplesOwingDiskJoins) {
  SchemaPtr sa = KeyPayloadSchema("a");
  SchemaPtr sb = KeyPayloadSchema("b");
  // Fill the right state until it spills, then purge left... Construct:
  // right tuples with key 1 spill to disk; left tuple with key 1 arrives
  // (probes memory only); right punctuates key 1 -> left tuple must wait in
  // the purge buffer for the disk join, which finally emits the pairs.
  ElementsBuilder rb;
  for (int i = 0; i < 12; ++i) rb.Tup(KP(sb, 1, i));
  rb.Punct(KeyPunct(1));
  auto right = rb.Finish();
  auto left = ElementsBuilder(/*step=*/1100).Tup(KP(sa, 1, 77)).Finish();

  JoinOptions opts;
  opts.runtime.memory_threshold_tuples = 4;
  PJoin join(sa, sb, opts);
  auto run = RunJoin(&join, left, right);
  EXPECT_EQ(run.results,
            ReferenceJoinRows(left, right, join.output_schema(), 0, 0));
  EXPECT_GT(join.counters().Get("purge_buffered") +
                join.counters().Get("otf_to_purge_buffer"),
            0);
  EXPECT_EQ(join.state(0).purge_buffer_tuples(), 0);  // cleared by disk join
}

TEST(PJoinTest, StateStaysBoundedWithPunctuations) {
  DomainSpec d;
  d.window_size = 10;
  StreamSpec spec;
  spec.num_tuples = 2000;
  spec.punct_mean_interarrival_tuples = 10;
  GeneratedStreams g = GenerateStreams(d, spec, spec, 7);

  JoinOptions opts;
  opts.state_sample_interval = 1;
  PJoin join(g.schema_a, g.schema_b, opts);
  RunJoin(&join, g.a, g.b);
  // Eager purge keeps the state near the live window; far below the 4000
  // tuples an XJoin would hold.
  EXPECT_LT(join.state_series().MaxValue(), 1500);
  EXPECT_GT(join.counters().Get("purged_tuples") +
                join.counters().Get("otf_drops"),
            1000);
}

TEST(PJoinTest, RegistryTableListsComponents) {
  SchemaPtr sa = KeyPayloadSchema("a");
  SchemaPtr sb = KeyPayloadSchema("b");
  PJoin join(sa, sb);
  std::string table = join.registry().ToString();
  EXPECT_NE(table.find("PurgeThresholdReachEvent -> state-purge"),
            std::string::npos);
  EXPECT_NE(table.find("StateFullEvent -> state-relocation"),
            std::string::npos);
  EXPECT_NE(table.find("DiskJoinActivateEvent -> disk-join"),
            std::string::npos);
  // Propagation entries order disk-join, index-build before propagation.
  EXPECT_NE(table.find("PropagateCountReachEvent -> disk-join [cond], "
                       "index-build, propagation"),
            std::string::npos);
}

TEST(PJoinTest, IndexedPurgeModeMatchesScanResults) {
  DomainSpec d;
  StreamSpec spec;
  spec.num_tuples = 400;
  spec.punct_mean_interarrival_tuples = 8;
  GeneratedStreams g = GenerateStreams(d, spec, spec, 21);

  JoinOptions scan_opts;
  scan_opts.purge_mode = PurgeMode::kScan;
  PJoin scan_join(g.schema_a, g.schema_b, scan_opts);
  auto scan_run = RunJoin(&scan_join, g.a, g.b);

  JoinOptions idx_opts;
  idx_opts.purge_mode = PurgeMode::kIndexed;
  PJoin idx_join(g.schema_a, g.schema_b, idx_opts);
  auto idx_run = RunJoin(&idx_join, g.a, g.b);

  EXPECT_EQ(scan_run.results, idx_run.results);
  // The indexed mode scans far fewer entries.
  EXPECT_LT(idx_join.counters().Get("purge_scanned"),
            scan_join.counters().Get("purge_scanned"));
}

TEST(PJoinTest, ValidatePrefixRejectsBadStream) {
  SchemaPtr sa = KeyPayloadSchema("a");
  SchemaPtr sb = KeyPayloadSchema("b");
  auto left = ElementsBuilder()
                  .Punct(Punctuation::ForAttribute(
                      2, 0, Pattern::Range(Value(int64_t{0}),
                                           Value(int64_t{10}))))
                  .Punct(Punctuation::ForAttribute(
                      2, 0, Pattern::Range(Value(int64_t{5}),
                                           Value(int64_t{20}))))
                  .Finish();
  JoinOptions opts;
  opts.validate_prefix = true;
  PJoin join(sa, sb, opts);
  join.set_result_callback(nullptr);
  JoinPipeline pipe(&join, nullptr);
  Status s = pipe.Run(left, ElementsBuilder().Finish());
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

TEST(PJoinTest, ByteMemoryThresholdTriggersSpill) {
  DomainSpec d;
  StreamSpec spec;
  spec.num_tuples = 300;
  spec.punct_mean_interarrival_tuples = 0;  // nothing ever purges
  GeneratedStreams g = GenerateStreams(d, spec, spec, 61);

  JoinOptions opts;
  opts.runtime.memory_threshold_bytes = 4096;
  PJoin join(g.schema_a, g.schema_b, opts);
  auto run = RunJoin(&join, g.a, g.b, /*stall_gap=*/8000);
  EXPECT_GT(join.counters().Get("relocations"), 0);
  EXPECT_LT(join.memory_state_bytes(), 4096 + 1024);
  EXPECT_EQ(run.results,
            ReferenceJoinRows(g.a, g.b, join.output_schema(), 0, 0));
}

TEST(PJoinTest, AllWildcardPunctuationDrainsOppositeState) {
  SchemaPtr sa = KeyPayloadSchema("a");
  SchemaPtr sb = KeyPayloadSchema("b");
  ElementsBuilder lb;
  for (int64_t k = 0; k < 8; ++k) lb.Tup(KP(sa, k, k));
  auto left = lb.Finish();
  // "Stream B is finished entirely": an all-wildcard punctuation covers
  // every key, so the whole left state purges at once.
  auto right = ElementsBuilder(/*step=*/20000)
                   .Punct(Punctuation::ForAttribute(2, 0,
                                                    Pattern::Wildcard()))
                   .Finish();
  PJoin join(sa, sb);
  RunJoin(&join, left, right);
  EXPECT_EQ(join.state(0).total_tuples(), 0);
  EXPECT_EQ(join.counters().Get("purged_tuples"), 8);
}

TEST(PJoinTest, DiskJoinRunsOnStall) {
  SchemaPtr sa = KeyPayloadSchema("a");
  SchemaPtr sb = KeyPayloadSchema("b");
  ElementsBuilder lb(/*step=*/50000);
  for (int i = 0; i < 20; ++i) lb.Tup(KP(sa, i % 2, i));
  JoinOptions opts;
  opts.runtime.memory_threshold_tuples = 4;
  opts.runtime.disk_join_activation_threshold = 1;
  PJoin join(sa, sb, opts);
  auto run = RunJoin(&join, lb.Finish(), ElementsBuilder().Finish(),
                     /*stall_gap=*/10000);
  EXPECT_GT(run.stalls, 0);
  EXPECT_GT(join.counters().Get("disk_join_runs"), 0);
}

// ---- Runtime punctuation-contract validation (ViolationPolicy) ----

// Left stream where key 1 is punctuated and then (contract violation) a key-1
// tuple arrives late.
std::vector<StreamElement> LateTupleStream(const SchemaPtr& sa) {
  return ElementsBuilder()
      .Tup(KP(sa, 1, 0))
      .Tup(KP(sa, 2, 1))
      .Punct(KeyPunct(1))
      .Tup(KP(sa, 1, 2))  // violates the key-1 promise
      .Tup(KP(sa, 2, 3))
      .Finish();
}

// The same stream with the late tuple removed: what a kDrop join must
// effectively see.
std::vector<StreamElement> LateTupleStreamSanitized(const SchemaPtr& sa) {
  return ElementsBuilder()
      .Tup(KP(sa, 1, 0))
      .Tup(KP(sa, 2, 1))
      .Punct(KeyPunct(1))
      .Tup(KP(sa, 2, 3))
      .Finish();
}

TEST(PJoinViolationTest, DropExcludesLateTupleFromResult) {
  SchemaPtr sa = KeyPayloadSchema("a");
  SchemaPtr sb = KeyPayloadSchema("b");
  auto right = ElementsBuilder(/*step=*/10)
                   .Tup(KP(sb, 1, 9))
                   .Tup(KP(sb, 2, 8))
                   .Finish();
  JoinOptions opts;
  opts.violation_policy = ViolationPolicy::kDrop;
  PJoin join(sa, sb, opts);
  auto run = RunJoin(&join, LateTupleStream(sa), right);
  EXPECT_EQ(run.results, ReferenceJoinRows(LateTupleStreamSanitized(sa), right,
                                           join.output_schema(), 0, 0));
  EXPECT_EQ(join.contract_violations(), 1);
  EXPECT_EQ(join.counters().Get("violation_late_tuple"), 1);
  EXPECT_TRUE(join.quarantined_tuples(0).empty());
}

TEST(PJoinViolationTest, ViolationEventDispatchedPerViolation) {
  SchemaPtr sa = KeyPayloadSchema("a");
  SchemaPtr sb = KeyPayloadSchema("b");
  JoinOptions opts;
  opts.violation_policy = ViolationPolicy::kDrop;
  PJoin join(sa, sb, opts);
  class CountingListener : public EventListener {
   public:
    std::string_view name() const override { return "violation-counter"; }
    Status HandleEvent(const Event& e) override {
      EXPECT_EQ(e.type, EventType::kContractViolation);
      EXPECT_EQ(e.detail, "late_tuple");
      ++events;
      return Status::OK();
    }
    int64_t events = 0;
  } listener;
  join.registry().Register(EventType::kContractViolation, &listener);
  auto run = RunJoin(&join, LateTupleStream(sa), ElementsBuilder().Finish());
  EXPECT_EQ(listener.events, join.contract_violations());
  EXPECT_EQ(listener.events, 1);
}

TEST(PJoinViolationTest, QuarantineRetainsTheOffendingTuple) {
  SchemaPtr sa = KeyPayloadSchema("a");
  SchemaPtr sb = KeyPayloadSchema("b");
  JoinOptions opts;
  opts.violation_policy = ViolationPolicy::kQuarantine;
  PJoin join(sa, sb, opts);
  auto run = RunJoin(&join, LateTupleStream(sa), ElementsBuilder().Finish());
  ASSERT_EQ(join.quarantined_tuples(0).size(), 1u);
  EXPECT_EQ(join.quarantined_tuples(0)[0].field(0), Value(int64_t{1}));
  EXPECT_EQ(join.contract_violations(), 1);
}

TEST(PJoinViolationTest, MalformedPunctuationsDroppedNotApplied) {
  SchemaPtr sa = KeyPayloadSchema("a");
  SchemaPtr sb = KeyPayloadSchema("b");
  auto left = ElementsBuilder()
                  .Tup(KP(sa, 1, 0))
                  // Wrong arity for the 2-field schema.
                  .Punct(Punctuation(
                      std::vector<Pattern>(3, Pattern::Wildcard())))
                  // Contains an empty pattern.
                  .Punct(Punctuation::ForAttribute(2, 0, Pattern::Empty()))
                  .Tup(KP(sa, 1, 1))
                  .Finish();
  auto right = ElementsBuilder(/*step=*/10).Tup(KP(sb, 1, 9)).Finish();
  JoinOptions opts;
  opts.violation_policy = ViolationPolicy::kDrop;
  PJoin join(sa, sb, opts);
  auto run = RunJoin(&join, left, right);
  // Both key-1 tuples still join: the malformed punctuations never purged
  // anything.
  EXPECT_EQ(run.results.size(), 2u);
  EXPECT_EQ(join.contract_violations(), 2);
  EXPECT_EQ(join.counters().Get("violation_malformed_punctuation_arity"), 1);
  EXPECT_EQ(join.counters().Get("violation_malformed_punctuation_empty"), 1);
  EXPECT_EQ(join.punct_set(0).size(), 0u);
}

TEST(PJoinViolationTest, FailPolicyAbortsOnFirstViolation) {
  SchemaPtr sa = KeyPayloadSchema("a");
  SchemaPtr sb = KeyPayloadSchema("b");
  JoinOptions opts;
  opts.violation_policy = ViolationPolicy::kFail;
  PJoin join(sa, sb, opts);
  Status status;
  for (const StreamElement& e : LateTupleStream(sa)) {
    status = join.OnElement(0, e);
    if (!status.ok()) break;
  }
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(join.contract_violations(), 1);
}

TEST(PJoinViolationTest, NonPrefixPunctuationRoutedThroughPolicy) {
  SchemaPtr sa = KeyPayloadSchema("a");
  SchemaPtr sb = KeyPayloadSchema("b");
  auto left = ElementsBuilder()
                  .Tup(KP(sa, 1, 0))
                  .Punct(Punctuation::ForAttribute(
                      2, 0, Pattern::Range(Value(int64_t{0}),
                                           Value(int64_t{5}))))
                  // Partially overlaps [0,5]: violates the prefix condition.
                  .Punct(Punctuation::ForAttribute(
                      2, 0, Pattern::Range(Value(int64_t{3}),
                                           Value(int64_t{9}))))
                  .Tup(KP(sa, 7, 1))
                  .Finish();
  auto right = ElementsBuilder(/*step=*/10).Tup(KP(sb, 7, 9)).Finish();
  JoinOptions opts;
  opts.validate_prefix = true;
  opts.violation_policy = ViolationPolicy::kDrop;
  PJoin join(sa, sb, opts);
  auto run = RunJoin(&join, left, right);  // must not abort
  EXPECT_EQ(run.results.size(), 1u);
  EXPECT_EQ(join.counters().Get("violation_non_prefix_punctuation"), 1);
}

TEST(PJoinViolationTest, IgnorePolicyRunsNoChecks) {
  SchemaPtr sa = KeyPayloadSchema("a");
  SchemaPtr sb = KeyPayloadSchema("b");
  PJoin join(sa, sb);  // default kIgnore
  auto run = RunJoin(&join, LateTupleStream(sa), ElementsBuilder().Finish());
  EXPECT_EQ(join.contract_violations(), 0);
}

}  // namespace
}  // namespace pjoin
