#include <gtest/gtest.h>

#include "gen/stream_generator.h"
#include "join/purge_tuner.h"
#include "test_util.h"

namespace pjoin {
namespace {

using testing::ReferenceJoinRows;

GeneratedStreams DensePunctStreams(uint64_t seed, int64_t n = 6000) {
  DomainSpec d;
  d.window_size = 20;
  StreamSpec spec;
  spec.num_tuples = n;
  spec.punct_mean_interarrival_tuples = 5;  // very frequent punctuations
  return GenerateStreams(d, spec, spec, seed);
}

TEST(PurgeTunerTest, RaisesThresholdWhenPurgeDominates) {
  GeneratedStreams g = DensePunctStreams(11);
  JoinOptions opts;
  opts.runtime.purge_threshold = 1;  // start eager
  PJoin join(g.schema_a, g.schema_b, opts);
  PurgeThresholdTuner::Options topts;
  topts.interval = 500;
  PurgeThresholdTuner tuner(&join, topts);

  PipelineOptions popts;
  popts.progress = [&tuner](int64_t) { tuner.Observe(); };
  JoinPipeline pipe(&join, nullptr, popts);
  ASSERT_TRUE(pipe.Run(g.a, g.b).ok());
  // With punctuations every ~5 tuples, eager purge scans dominate; the
  // tuner must have backed off from 1.
  EXPECT_GT(tuner.current_threshold(), 1);
  EXPECT_GT(tuner.adjustments_up(), 0);
}

TEST(PurgeTunerTest, TunedRunBeatsEagerOnTotalCost) {
  GeneratedStreams g = DensePunctStreams(13);

  auto total_cost = [&](bool tuned) {
    JoinOptions opts;
    opts.runtime.purge_threshold = 1;
    PJoin join(g.schema_a, g.schema_b, opts);
    PurgeThresholdTuner::Options topts;
    topts.interval = 500;
    PurgeThresholdTuner tuner(&join, topts);
    PipelineOptions popts;
    if (tuned) {
      popts.progress = [&tuner](int64_t) { tuner.Observe(); };
    }
    JoinPipeline pipe(&join, nullptr, popts);
    Status st = pipe.Run(g.a, g.b);
    PJOIN_DCHECK(st.ok());
    return join.counters().Get("purge_scanned") +
           join.counters().Get("probe_comparisons");
  };
  EXPECT_LT(total_cost(true), total_cost(false));
}

TEST(PurgeTunerTest, ResultsUnaffectedByTuning) {
  GeneratedStreams g = DensePunctStreams(17, 2000);
  JoinOptions opts;
  opts.runtime.purge_threshold = 1;
  PJoin join(g.schema_a, g.schema_b, opts);
  PurgeThresholdTuner tuner(&join, {.interval = 200});

  std::vector<std::string> rows;
  join.set_result_callback(
      [&rows](const Tuple& t) { rows.push_back(t.ToString()); });
  PipelineOptions popts;
  popts.progress = [&tuner](int64_t) { tuner.Observe(); };
  JoinPipeline pipe(&join, nullptr, popts);
  ASSERT_TRUE(pipe.Run(g.a, g.b).ok());
  std::sort(rows.begin(), rows.end());
  EXPECT_EQ(rows, ReferenceJoinRows(g.a, g.b, join.output_schema(), 0, 0));
}

TEST(PurgeTunerTest, LowersThresholdWhenProbeDominates) {
  // No punctuations at all after the start: probe cost only. Seed the run
  // with a huge threshold; the controller must walk it down.
  DomainSpec d;
  d.window_size = 4;  // few distinct keys -> fat buckets -> heavy probing
  StreamSpec spec;
  spec.num_tuples = 6000;
  spec.punct_mean_interarrival_tuples = 50;
  GeneratedStreams g = GenerateStreams(d, spec, spec, 19);

  JoinOptions opts;
  opts.runtime.purge_threshold = 1024;
  PJoin join(g.schema_a, g.schema_b, opts);
  PurgeThresholdTuner::Options topts;
  topts.interval = 500;
  PurgeThresholdTuner tuner(&join, topts);
  PipelineOptions popts;
  popts.progress = [&tuner](int64_t) { tuner.Observe(); };
  JoinPipeline pipe(&join, nullptr, popts);
  ASSERT_TRUE(pipe.Run(g.a, g.b).ok());
  EXPECT_LT(tuner.current_threshold(), 1024);
  EXPECT_GT(tuner.adjustments_down(), 0);
}

TEST(PurgeTunerTest, RespectsBounds) {
  SchemaPtr sa = testing::KeyPayloadSchema("a");
  SchemaPtr sb = testing::KeyPayloadSchema("b");
  JoinOptions opts;
  opts.runtime.purge_threshold = 4;
  PJoin join(sa, sb, opts);
  PurgeThresholdTuner::Options topts;
  topts.min_threshold = 2;
  topts.max_threshold = 8;
  topts.interval = 1;
  PurgeThresholdTuner tuner(&join, topts);
  // With zero activity the deltas are 0: d_scan(0) > high*max(1, d_probe=0)
  // is false and d_scan < low*d_probe(0) is false -> threshold untouched.
  for (int i = 0; i < 10; ++i) tuner.Observe();
  EXPECT_EQ(tuner.current_threshold(), 4);
}

}  // namespace
}  // namespace pjoin
