#include <gtest/gtest.h>

#include "tuple/schema.h"
#include "tuple/tuple.h"
#include "tuple/value.h"

namespace pjoin {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value().is_null());
  EXPECT_EQ(Value(int64_t{5}).type(), ValueType::kInt64);
  EXPECT_EQ(Value(2.5).type(), ValueType::kFloat64);
  EXPECT_EQ(Value("abc").type(), ValueType::kString);
  EXPECT_EQ(Value(int64_t{5}).AsInt64(), 5);
  EXPECT_DOUBLE_EQ(Value(2.5).AsFloat64(), 2.5);
  EXPECT_EQ(Value("abc").AsString(), "abc");
}

TEST(ValueTest, EqualityRequiresSameType) {
  EXPECT_EQ(Value(int64_t{1}), Value(int64_t{1}));
  EXPECT_NE(Value(int64_t{1}), Value(int64_t{2}));
  EXPECT_NE(Value(int64_t{1}), Value(1.0));  // different types never equal
  EXPECT_EQ(Value(), Value());
  EXPECT_EQ(Value("x"), Value(std::string("x")));
}

TEST(ValueTest, OrderingWithinType) {
  EXPECT_LT(Value(int64_t{1}), Value(int64_t{2}));
  EXPECT_LT(Value(1.5), Value(2.5));
  EXPECT_LT(Value("a"), Value("b"));
  // Null sorts before everything.
  EXPECT_LT(Value(), Value(int64_t{-100}));
  EXPECT_FALSE(Value(int64_t{1}) < Value());
}

TEST(ValueTest, HashStableAndTypeSeeded) {
  EXPECT_EQ(Value(int64_t{42}).Hash(), Value(int64_t{42}).Hash());
  EXPECT_NE(Value(int64_t{0}).Hash(), Value(0.0).Hash());
  EXPECT_NE(Value(int64_t{1}).Hash(), Value(int64_t{2}).Hash());
  EXPECT_EQ(Value("hi").Hash(), Value("hi").Hash());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value().ToString(), "null");
  EXPECT_EQ(Value(int64_t{7}).ToString(), "7");
  EXPECT_EQ(Value("s").ToString(), "\"s\"");
}

TEST(ValueTest, ByteSizeGrowsWithString) {
  EXPECT_GT(Value(std::string(100, 'x')).ByteSize(),
            Value("short").ByteSize());
}

TEST(SchemaTest, FieldsAndLookup) {
  SchemaPtr s = Schema::Make(
      {{"id", ValueType::kInt64}, {"name", ValueType::kString}});
  EXPECT_EQ(s->num_fields(), 2u);
  EXPECT_EQ(s->field(0).name, "id");
  ASSERT_TRUE(s->IndexOf("name").ok());
  EXPECT_EQ(s->IndexOf("name").value(), 1u);
  EXPECT_FALSE(s->IndexOf("missing").ok());
  EXPECT_TRUE(s->Contains("id"));
  EXPECT_FALSE(s->Contains("nope"));
  EXPECT_EQ(s->ToString(), "(id:int64, name:string)");
}

TEST(SchemaTest, ConcatRenamesCollisions) {
  SchemaPtr a = Schema::Make({{"key", ValueType::kInt64},
                              {"v", ValueType::kInt64}});
  SchemaPtr b = Schema::Make({{"key", ValueType::kInt64},
                              {"w", ValueType::kInt64}});
  SchemaPtr c = Schema::Concat(*a, *b);
  ASSERT_EQ(c->num_fields(), 4u);
  EXPECT_EQ(c->field(0).name, "key");
  EXPECT_EQ(c->field(2).name, "key_r");
  EXPECT_EQ(c->field(3).name, "w");
}

TEST(SchemaTest, Equality) {
  SchemaPtr a = Schema::Make({{"x", ValueType::kInt64}});
  SchemaPtr b = Schema::Make({{"x", ValueType::kInt64}});
  SchemaPtr c = Schema::Make({{"x", ValueType::kFloat64}});
  EXPECT_TRUE(*a == *b);
  EXPECT_FALSE(*a == *c);
}

TEST(TupleTest, FieldAccessByIndexAndName) {
  SchemaPtr s = Schema::Make(
      {{"id", ValueType::kInt64}, {"name", ValueType::kString}});
  Tuple t(s, {Value(int64_t{3}), Value("bob")});
  EXPECT_EQ(t.num_fields(), 2u);
  EXPECT_EQ(t.field(0).AsInt64(), 3);
  EXPECT_EQ(t.field("name").AsString(), "bob");
}

TEST(TupleTest, EqualityAndOrdering) {
  SchemaPtr s = Schema::Make({{"a", ValueType::kInt64}});
  Tuple t1(s, {Value(int64_t{1})});
  Tuple t1b(s, {Value(int64_t{1})});
  Tuple t2(s, {Value(int64_t{2})});
  EXPECT_EQ(t1, t1b);
  EXPECT_NE(t1, t2);
  EXPECT_LT(t1, t2);
}

TEST(TupleTest, Concat) {
  SchemaPtr a = Schema::Make({{"x", ValueType::kInt64}});
  SchemaPtr b = Schema::Make({{"y", ValueType::kString}});
  SchemaPtr out = Schema::Concat(*a, *b);
  Tuple t = Tuple::Concat(Tuple(a, {Value(int64_t{1})}),
                          Tuple(b, {Value("z")}), out);
  EXPECT_EQ(t.num_fields(), 2u);
  EXPECT_EQ(t.field("x").AsInt64(), 1);
  EXPECT_EQ(t.field("y").AsString(), "z");
}

TEST(TupleTest, ToStringNamesFields) {
  SchemaPtr s = Schema::Make({{"k", ValueType::kInt64}});
  Tuple t(s, {Value(int64_t{9})});
  EXPECT_EQ(t.ToString(), "[k=9]");
}

TEST(TupleBuilderTest, BuildsCheckedTuple) {
  SchemaPtr s = Schema::Make(
      {{"id", ValueType::kInt64}, {"score", ValueType::kFloat64}});
  Tuple t = TupleBuilder(s).Add(Value(int64_t{1})).Add(Value(0.5)).Build();
  EXPECT_EQ(t.field(0).AsInt64(), 1);
  EXPECT_DOUBLE_EQ(t.field(1).AsFloat64(), 0.5);
}

TEST(TupleBuilderTest, AllowsNullFields) {
  SchemaPtr s = Schema::Make({{"id", ValueType::kInt64}});
  Tuple t = TupleBuilder(s).Add(Value::Null()).Build();
  EXPECT_TRUE(t.field(0).is_null());
}

}  // namespace
}  // namespace pjoin
