#include <gtest/gtest.h>

#include "stream/element.h"
#include "stream/stream_buffer.h"
#include "tuple/tuple.h"

namespace pjoin {
namespace {

SchemaPtr OneFieldSchema() {
  return Schema::Make({{"x", ValueType::kInt64}});
}

TEST(StreamElementTest, TupleElement) {
  SchemaPtr s = OneFieldSchema();
  StreamElement e = StreamElement::MakeTuple(
      Tuple(s, {Value(int64_t{1})}), 500, 3);
  EXPECT_TRUE(e.is_tuple());
  EXPECT_FALSE(e.is_punctuation());
  EXPECT_EQ(e.arrival(), 500);
  EXPECT_EQ(e.seq(), 3);
  EXPECT_EQ(e.tuple().field(0).AsInt64(), 1);
}

TEST(StreamElementTest, PunctuationElement) {
  StreamElement e = StreamElement::MakePunctuation(
      Punctuation::ForAttribute(1, 0, Pattern::Constant(Value(int64_t{5}))),
      700);
  EXPECT_TRUE(e.is_punctuation());
  EXPECT_EQ(e.punctuation().pattern(0).constant().AsInt64(), 5);
}

TEST(StreamElementTest, EndOfStreamElement) {
  StreamElement e = StreamElement::MakeEndOfStream(900);
  EXPECT_TRUE(e.is_end_of_stream());
  EXPECT_EQ(e.arrival(), 900);
  // Default-constructed element is EOS too.
  EXPECT_TRUE(StreamElement().is_end_of_stream());
}

TEST(StreamElementTest, ToStringDistinguishesKinds) {
  SchemaPtr s = OneFieldSchema();
  EXPECT_NE(StreamElement::MakeTuple(Tuple(s, {Value(int64_t{1})}), 1)
                .ToString()
                .find("t@"),
            std::string::npos);
  EXPECT_NE(StreamElement::MakeEndOfStream(1).ToString().find("eos@"),
            std::string::npos);
}

TEST(StreamBufferTest, FifoOrder) {
  SchemaPtr s = OneFieldSchema();
  StreamBuffer buf;
  buf.Push(StreamElement::MakeTuple(Tuple(s, {Value(int64_t{1})}), 10));
  buf.Push(StreamElement::MakeTuple(Tuple(s, {Value(int64_t{2})}), 20));
  EXPECT_EQ(buf.size(), 2u);
  EXPECT_EQ(buf.PeekArrival().value(), 10);
  auto a = buf.Pop();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->tuple().field(0).AsInt64(), 1);
  auto b = buf.Pop();
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->tuple().field(0).AsInt64(), 2);
  EXPECT_FALSE(buf.Pop().has_value());
}

TEST(StreamBufferTest, CloseSemantics) {
  SchemaPtr s = OneFieldSchema();
  StreamBuffer buf;
  buf.Push(StreamElement::MakeTuple(Tuple(s, {Value(int64_t{1})}), 10));
  EXPECT_FALSE(buf.closed());
  EXPECT_FALSE(buf.exhausted());
  buf.Close();
  EXPECT_TRUE(buf.closed());
  EXPECT_FALSE(buf.exhausted());  // still has the queued element
  EXPECT_TRUE(buf.Pop().has_value());
  EXPECT_TRUE(buf.exhausted());
}

TEST(StreamBufferTest, EmptyPeekIsNull) {
  StreamBuffer buf;
  EXPECT_TRUE(buf.empty());
  EXPECT_FALSE(buf.PeekArrival().has_value());
}

}  // namespace
}  // namespace pjoin
