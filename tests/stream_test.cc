#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "stream/element.h"
#include "stream/stream_buffer.h"
#include "tuple/tuple.h"

namespace pjoin {
namespace {

SchemaPtr OneFieldSchema() {
  return Schema::Make({{"x", ValueType::kInt64}});
}

TEST(StreamElementTest, TupleElement) {
  SchemaPtr s = OneFieldSchema();
  StreamElement e = StreamElement::MakeTuple(
      Tuple(s, {Value(int64_t{1})}), 500, 3);
  EXPECT_TRUE(e.is_tuple());
  EXPECT_FALSE(e.is_punctuation());
  EXPECT_EQ(e.arrival(), 500);
  EXPECT_EQ(e.seq(), 3);
  EXPECT_EQ(e.tuple().field(0).AsInt64(), 1);
}

TEST(StreamElementTest, PunctuationElement) {
  StreamElement e = StreamElement::MakePunctuation(
      Punctuation::ForAttribute(1, 0, Pattern::Constant(Value(int64_t{5}))),
      700);
  EXPECT_TRUE(e.is_punctuation());
  EXPECT_EQ(e.punctuation().pattern(0).constant().AsInt64(), 5);
}

TEST(StreamElementTest, EndOfStreamElement) {
  StreamElement e = StreamElement::MakeEndOfStream(900);
  EXPECT_TRUE(e.is_end_of_stream());
  EXPECT_EQ(e.arrival(), 900);
  // Default-constructed element is EOS too.
  EXPECT_TRUE(StreamElement().is_end_of_stream());
}

TEST(StreamElementTest, ToStringDistinguishesKinds) {
  SchemaPtr s = OneFieldSchema();
  EXPECT_NE(StreamElement::MakeTuple(Tuple(s, {Value(int64_t{1})}), 1)
                .ToString()
                .find("t@"),
            std::string::npos);
  EXPECT_NE(StreamElement::MakeEndOfStream(1).ToString().find("eos@"),
            std::string::npos);
}

TEST(StreamBufferTest, FifoOrder) {
  SchemaPtr s = OneFieldSchema();
  StreamBuffer buf;
  buf.Push(StreamElement::MakeTuple(Tuple(s, {Value(int64_t{1})}), 10));
  buf.Push(StreamElement::MakeTuple(Tuple(s, {Value(int64_t{2})}), 20));
  EXPECT_EQ(buf.size(), 2u);
  EXPECT_EQ(buf.PeekArrival().value(), 10);
  auto a = buf.Pop();
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->tuple().field(0).AsInt64(), 1);
  auto b = buf.Pop();
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(b->tuple().field(0).AsInt64(), 2);
  EXPECT_FALSE(buf.Pop().has_value());
}

TEST(StreamBufferTest, CloseSemantics) {
  SchemaPtr s = OneFieldSchema();
  StreamBuffer buf;
  buf.Push(StreamElement::MakeTuple(Tuple(s, {Value(int64_t{1})}), 10));
  EXPECT_FALSE(buf.closed());
  EXPECT_FALSE(buf.exhausted());
  buf.Close();
  EXPECT_TRUE(buf.closed());
  EXPECT_FALSE(buf.exhausted());  // still has the queued element
  EXPECT_TRUE(buf.Pop().has_value());
  EXPECT_TRUE(buf.exhausted());
}

TEST(StreamBufferTest, EmptyPeekIsNull) {
  StreamBuffer buf;
  EXPECT_TRUE(buf.empty());
  EXPECT_FALSE(buf.PeekArrival().has_value());
}

StreamElement IntElement(int64_t x, TimeMicros arrival = 0) {
  return StreamElement::MakeTuple(
      Tuple(OneFieldSchema(), {Value(x)}), arrival);
}

TEST(StreamBufferTest, TryPushOnClosedBufferFailsPrecondition) {
  StreamBuffer buf;
  buf.Close();
  Status status = buf.TryPush(IntElement(1));
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  EXPECT_TRUE(buf.exhausted());  // the rejected element was not enqueued
}

TEST(StreamBufferTest, TryPushOnFullBoundedBufferIsResourceExhausted) {
  StreamBuffer buf(/*capacity=*/2);
  EXPECT_EQ(buf.capacity(), 2u);
  ASSERT_TRUE(buf.TryPush(IntElement(1)).ok());
  ASSERT_TRUE(buf.TryPush(IntElement(2)).ok());
  Status status = buf.TryPush(IntElement(3));
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  // Popping frees a slot; the push then succeeds.
  ASSERT_TRUE(buf.Pop().has_value());
  EXPECT_TRUE(buf.TryPush(IntElement(3)).ok());
  EXPECT_EQ(buf.size(), 2u);
}

TEST(StreamBufferTest, UnboundedBufferNeverExhausts) {
  StreamBuffer buf;  // capacity 0 = unbounded
  for (int64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(buf.TryPush(IntElement(i)).ok());
  }
  EXPECT_EQ(buf.size(), 1000u);
  EXPECT_EQ(buf.backpressure_waits(), 0);
}

TEST(StreamBufferTest, PushBlockingWaitsForPopThenSucceeds) {
  StreamBuffer buf(/*capacity=*/1);
  ASSERT_TRUE(buf.PushBlocking(IntElement(1)).ok());
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    Status status = buf.PushBlocking(IntElement(2));  // blocks: buffer full
    EXPECT_TRUE(status.ok());
    pushed.store(true);
  });
  // The producer cannot finish until the consumer frees the slot.
  while (buf.backpressure_waits() == 0) std::this_thread::yield();
  EXPECT_FALSE(pushed.load());
  auto first = buf.Pop();
  ASSERT_TRUE(first.has_value());
  producer.join();
  EXPECT_TRUE(pushed.load());
  auto second = buf.Pop();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->tuple().field(0).AsInt64(), 2);
  EXPECT_EQ(buf.backpressure_waits(), 1);
}

TEST(StreamBufferTest, CloseUnblocksWaitingProducerWithError) {
  StreamBuffer buf(/*capacity=*/1);
  ASSERT_TRUE(buf.PushBlocking(IntElement(1)).ok());
  std::thread producer([&] {
    Status status = buf.PushBlocking(IntElement(2));
    EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  });
  while (buf.backpressure_waits() == 0) std::this_thread::yield();
  buf.Close();
  producer.join();
  // Only the first element made it in.
  ASSERT_TRUE(buf.Pop().has_value());
  EXPECT_TRUE(buf.exhausted());
}

TEST(StreamBufferTest, BatchRoundtripPreservesFifoOrder) {
  StreamBuffer buf(/*capacity=*/0);
  std::vector<StreamElement> batch;
  for (int64_t i = 0; i < 10; ++i) batch.push_back(IntElement(i, i * 100));
  EXPECT_EQ(buf.PushBatch(std::move(batch)), 10u);
  EXPECT_EQ(buf.size(), 10u);

  std::vector<StreamElement> first = buf.PopBatch(4);
  ASSERT_EQ(first.size(), 4u);
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(first[static_cast<size_t>(i)].tuple().field(0).AsInt64(), i);
  }
  std::vector<StreamElement> rest = buf.PopBatch(100);
  ASSERT_EQ(rest.size(), 6u);
  EXPECT_EQ(rest.front().tuple().field(0).AsInt64(), 4);
  EXPECT_EQ(rest.back().tuple().field(0).AsInt64(), 9);
  EXPECT_TRUE(buf.PopBatch(1).empty());
}

TEST(StreamBufferTest, PushBatchBlocksOnFullBufferUntilPopBatch) {
  StreamBuffer buf(/*capacity=*/3);
  std::vector<StreamElement> batch;
  for (int64_t i = 0; i < 8; ++i) batch.push_back(IntElement(i));
  std::atomic<bool> done{false};
  std::thread producer([&] {
    EXPECT_EQ(buf.PushBatch(std::move(batch)), 8u);
    done.store(true);
  });
  // The producer fills the 3-slot window and must then wait.
  while (buf.backpressure_waits() == 0) std::this_thread::yield();
  EXPECT_FALSE(done.load());
  int64_t seen = 0;
  int64_t next = 0;
  while (seen < 8) {
    for (const StreamElement& e : buf.PopBatch(2)) {
      EXPECT_EQ(e.tuple().field(0).AsInt64(), next++);
      ++seen;
    }
    std::this_thread::yield();
  }
  producer.join();
  EXPECT_TRUE(done.load());
  EXPECT_GE(buf.backpressure_waits(), 1);
}

TEST(StreamBufferTest, CloseWhileBatchedReturnsShortCount) {
  StreamBuffer buf(/*capacity=*/2);
  std::vector<StreamElement> batch;
  for (int64_t i = 0; i < 6; ++i) batch.push_back(IntElement(i));
  std::atomic<size_t> pushed{~size_t{0}};
  std::thread producer(
      [&] { pushed.store(buf.PushBatch(std::move(batch))); });
  while (buf.backpressure_waits() == 0) std::this_thread::yield();
  buf.Close();
  producer.join();
  // Only the elements that fit before Close made it in; the remainder of the
  // batch is reported as not pushed.
  EXPECT_EQ(pushed.load(), 2u);
  EXPECT_EQ(buf.PopBatch(100).size(), 2u);
  EXPECT_TRUE(buf.exhausted());
}

}  // namespace
}  // namespace pjoin
