// Tests for the stall-diagnosis layer (src/obs/progress.* + src/obs/health.*):
// frontier-lag math on synthetic clocks, /healthz classification, the
// end-to-end forced-stall pipeline (a gated shard join flips /healthz to 503
// with a root-cause chain naming the shard, then recovers to 200), flow-id
// sampling determinism with Chrome flow arrows, and a concurrent
// scrape-during-run test that runs under TSan in CI.
//
// The raw client sockets below are the test's HTTP client; the raw-socket
// lint rule is src/-only, so tests may speak to the server directly.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "exec/registry.h"
#include "gen/stream_generator.h"
#include "join/pjoin.h"
#include "json_test_util.h"
#include "obs/chrome_trace.h"
#include "obs/health.h"
#include "obs/introspection.h"
#include "obs/metrics_registry.h"
#include "obs/progress.h"
#include "obs/trace.h"
#include "ops/parallel_pipeline.h"
#include "test_util.h"

namespace pjoin {
namespace {

using pjoin::testing::ElementsBuilder;
using pjoin::testing::JsonParser;
using pjoin::testing::JsonValue;
using pjoin::testing::KeyPayloadSchema;
using pjoin::testing::KeyPunct;
using pjoin::testing::KP;

// ---- HTTP client (same idiom as http_server_test.cc) ----

std::string RawRequest(int port, const std::string& raw) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  size_t sent = 0;
  while (sent < raw.size()) {
    const ssize_t n = ::send(fd, raw.data() + sent, raw.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Get(int port, const std::string& path) {
  return RawRequest(port, "GET " + path +
                              " HTTP/1.1\r\nHost: localhost\r\n"
                              "Connection: close\r\n\r\n");
}

std::string Body(const std::string& response) {
  const size_t pos = response.find("\r\n\r\n");
  return pos == std::string::npos ? "" : response.substr(pos + 4);
}

// Every test here shares the process-global trackers; reset them all so
// leakage between tests (and from other suites in this binary) cannot flip a
// verdict.
class HealthTest : public ::testing::Test {
 protected:
  void SetUp() override { ResetAll(); }
  void TearDown() override { ResetAll(); }

  static void ResetAll() {
    obs::HealthMonitor::Global().ResetForTest();
    obs::FrontierTracker::Global().ResetForTest();
    obs::MetricsRegistry::Global().ResetForTest();
    obs::Tracer::Global().Stop();
    obs::Tracer::Global().ResetForTest();
  }
};

// ---- Frontier math (synthetic clocks, no threads) ----

TEST_F(HealthTest, LagIsZeroWhileCaughtUp) {
  obs::FrontierTracker& t = obs::FrontierTracker::Global();
  t.NoteIngress(0, "constant", 0, /*now_us=*/1000, "punct<k=1>");
  t.NoteProcessed(0, "constant", 0, /*now_us=*/1500);
  const obs::FrontierSnapshot snap = t.Snap();
  ASSERT_EQ(snap.cells.size(), 1u);
  EXPECT_EQ(snap.cells[0].ingress_count, 1);
  EXPECT_EQ(snap.cells[0].processed_count, 1);
  EXPECT_EQ(snap.cells[0].LagMicros(/*now_us=*/999999), 0);
  EXPECT_EQ(snap.cells[0].last_punct, "punct<k=1>");
}

TEST_F(HealthTest, LagGrowsFromTheFirstUnprocessedIngress) {
  obs::FrontierTracker& t = obs::FrontierTracker::Global();
  t.NoteIngress(1, "constant", 2, /*now_us=*/1000, "p1");
  t.NoteIngress(1, "constant", 2, /*now_us=*/3000, "p2");
  const obs::FrontierSnapshot snap = t.Snap();
  ASSERT_EQ(snap.cells.size(), 1u);
  const obs::FrontierCell& cell = snap.cells[0];
  EXPECT_EQ(cell.side, 1);
  EXPECT_EQ(cell.scheme, "constant");
  EXPECT_EQ(cell.shard, 2);
  // behind_since pins to the FIRST ingress that found the shard behind, not
  // the latest one: the lag measures the oldest outstanding punctuation.
  EXPECT_EQ(cell.behind_since_us, 1000);
  EXPECT_EQ(cell.LagMicros(/*now_us=*/5000), 4000);
  // Never negative, even with a stale clock sample.
  EXPECT_EQ(cell.LagMicros(/*now_us=*/500), 0);
}

TEST_F(HealthTest, CatchingUpClearsTheLag) {
  obs::FrontierTracker& t = obs::FrontierTracker::Global();
  t.NoteIngress(0, "range", 0, 1000, "p1");
  t.NoteIngress(0, "range", 0, 2000, "p2");
  t.NoteProcessed(0, "range", 0, 4000);
  // Still one behind: the lag persists.
  EXPECT_GT(t.Snap().cells[0].LagMicros(5000), 0);
  t.NoteProcessed(0, "range", 0, 6000);
  // Caught up: cleared, and a later evaluation sees zero.
  EXPECT_EQ(t.Snap().cells[0].LagMicros(999999), 0);
  // A fresh ingress re-arms from its own timestamp.
  t.NoteIngress(0, "range", 0, 10000, "p3");
  EXPECT_EQ(t.Snap().cells[0].LagMicros(11000), 1000);
}

TEST_F(HealthTest, PurgeExpectationLifecycle) {
  obs::FrontierTracker& t = obs::FrontierTracker::Global();
  t.NotePurgeExpected(3, /*resident_tuples=*/10, /*now_us=*/1000);
  t.NotePurgeExpected(3, /*resident_tuples=*/5, /*now_us=*/2000);
  obs::FrontierSnapshot snap = t.Snap();
  ASSERT_EQ(snap.purges.size(), 1u);
  EXPECT_EQ(snap.purges[0].shard, 3);
  EXPECT_EQ(snap.purges[0].pending_puncts, 2);
  EXPECT_EQ(snap.purges[0].pending_tuples, 15);
  EXPECT_EQ(snap.purges[0].oldest_since_us, 1000);  // first pending wins
  t.NotePurgeFired(3);
  snap = t.Snap();
  EXPECT_EQ(snap.purges[0].pending_puncts, 0);
  EXPECT_EQ(snap.purges[0].pending_tuples, 0);
  EXPECT_EQ(snap.purges[0].oldest_since_us, 0);
}

// ---- EvaluateNow classification ----

obs::HealthOptions TightThresholds() {
  obs::HealthOptions options;
  options.stall_threshold_us = 1000000;    // 1s
  options.degraded_threshold_us = 250000;  // 250ms
  return options;
}

TEST_F(HealthTest, ClassifiesStalledWithRootCauseChain) {
  obs::HealthMonitor& monitor = obs::HealthMonitor::Global();
  monitor.Configure(TightThresholds());
  obs::FrontierTracker::Global().NoteIngress(0, "constant", 2, 1000,
                                             "punct<k=7>");
  const obs::HealthReport report =
      monitor.EvaluateNow(/*now_us=*/1000 + 2000000);  // 2s behind
  EXPECT_EQ(report.status, obs::HealthStatus::kStalled);
  EXPECT_EQ(report.stalled_frontiers, 1);
  ASSERT_EQ(report.causes.size(), 1u);
  // The chain names the shard, the cell, the lag, and the ring occupancies.
  EXPECT_NE(report.causes[0].find("shard 2 frontier (left/constant)"),
            std::string::npos)
      << report.causes[0];
  EXPECT_NE(report.causes[0].find("stalled 2.0s behind router"),
            std::string::npos)
      << report.causes[0];
  EXPECT_NE(report.causes[0].find("last punct: punct<k=7>"),
            std::string::npos)
      << report.causes[0];
  EXPECT_NE(report.causes[0].find("ring edge=out_2"), std::string::npos)
      << report.causes[0];
}

TEST_F(HealthTest, ModerateLagIsDegradedNotStalled) {
  obs::HealthMonitor& monitor = obs::HealthMonitor::Global();
  monitor.Configure(TightThresholds());
  obs::FrontierTracker::Global().NoteIngress(1, "constant", 0, 1000, "p");
  const obs::HealthReport report =
      monitor.EvaluateNow(/*now_us=*/1000 + 500000);  // 500ms: in the band
  EXPECT_EQ(report.status, obs::HealthStatus::kDegraded);
  EXPECT_EQ(report.stalled_frontiers, 0);
  EXPECT_EQ(report.degraded_signals, 1);
}

TEST_F(HealthTest, UnfiredPurgesAloneNeverFlipTheVerdict) {
  // Lazy purge makes a pending purge set normal: informational only.
  obs::HealthMonitor& monitor = obs::HealthMonitor::Global();
  monitor.Configure(TightThresholds());
  obs::FrontierTracker::Global().NotePurgeExpected(0, 100, 1000);
  const obs::HealthReport report = monitor.EvaluateNow(/*now_us=*/99000000);
  EXPECT_EQ(report.status, obs::HealthStatus::kOk);
  EXPECT_EQ(report.unfired_purges, 1);
}

TEST_F(HealthTest, SpillDegradationIsADegradedSignal) {
  obs::HealthMonitor& monitor = obs::HealthMonitor::Global();
  monitor.Configure(TightThresholds());
  obs::MetricsRegistry::Global().GetGauge("pjoin_spill_degraded").Set(1);
  const obs::HealthReport report = monitor.EvaluateNow(/*now_us=*/1000);
  EXPECT_EQ(report.status, obs::HealthStatus::kDegraded);
  ASSERT_EQ(report.causes.size(), 1u);
  EXPECT_NE(report.causes[0].find("spill storage degraded"),
            std::string::npos);
}

TEST_F(HealthTest, ReportJsonIsParseableAndComplete) {
  obs::HealthMonitor& monitor = obs::HealthMonitor::Global();
  monitor.Configure(TightThresholds());
  obs::FrontierTracker::Global().NoteIngress(0, "constant", 1, 1000,
                                             "needs \"escaping\"\n");
  const obs::HealthReport report = monitor.EvaluateNow(/*now_us=*/5000000);
  JsonValue root;
  ASSERT_TRUE(JsonParser(report.ToJson()).Parse(&root)) << report.ToJson();
  EXPECT_EQ(root.Find("status")->str, "stalled");
  EXPECT_EQ(root.Find("stalled_frontiers")->number, 1.0);
  ASSERT_NE(root.Find("causes"), nullptr);
  EXPECT_EQ(root.Find("causes")->array.size(), 1u);
  const JsonValue* frontiers = root.Find("frontiers");
  ASSERT_NE(frontiers, nullptr);
  ASSERT_EQ(frontiers->array.size(), 1u);
  const JsonValue& cell = frontiers->array[0];
  EXPECT_EQ(cell.Find("side")->str, "left");
  EXPECT_EQ(cell.Find("scheme")->str, "constant");
  EXPECT_EQ(cell.Find("shard")->number, 1.0);
  EXPECT_EQ(cell.Find("ingress")->number, 1.0);
  EXPECT_EQ(cell.Find("processed")->number, 0.0);
  EXPECT_GT(cell.Find("lag_us")->number, 0.0);
  // The raw punctuation text round-trips through the JSON escaper.
  EXPECT_EQ(cell.Find("last_punct")->str, "needs \"escaping\"\n");
}

// ---- The forced-stall pipeline ----

/// Open/closed gate the blocked shard waits on.
class TestGate {
 public:
  void Open() {
    MutexLock lock(mu_);
    open_ = true;
    cv_.NotifyAll();
  }
  void WaitOpen() {
    MutexLock lock(mu_);
    while (!open_) cv_.Wait(mu_);
  }

 private:
  Mutex mu_;
  CondVar cv_;
  bool open_ = false;
};

/// A PJoin whose tuple path blocks on `gate` after `free_tuples` tuples —
/// the deterministic stand-in for a shard wedged behind a blocked sink: the
/// router keeps dispatching punctuations (frontier ingress) that the shard
/// can no longer process.
class GatedPJoin : public PJoin {
 public:
  GatedPJoin(SchemaPtr left, SchemaPtr right, JoinOptions options,
             TestGate* gate, int64_t free_tuples)
      : PJoin(std::move(left), std::move(right), std::move(options)),
        gate_(gate),
        free_tuples_(free_tuples) {}

 protected:
  Status OnTupleHashed(int side, const Tuple& tuple,
                       uint64_t key_hash) override {
    if (++seen_ > free_tuples_) gate_->WaitOpen();
    return PJoin::OnTupleHashed(side, tuple, key_hash);
  }

 private:
  TestGate* gate_;
  const int64_t free_tuples_;
  int64_t seen_ = 0;
};

/// Records kStallDiagnosed dispatches from the watchdog thread.
class StallListener : public EventListener {
 public:
  std::string_view name() const override { return "stall-recorder"; }
  Status HandleEvent(const Event& e) override {
    MutexLock lock(mu_);
    details_.push_back(e.detail);
    return Status::OK();
  }
  std::vector<std::string> details() const {
    MutexLock lock(mu_);
    return details_;
  }

 private:
  mutable Mutex mu_;
  std::vector<std::string> details_ GUARDED_BY(mu_);
};

TEST_F(HealthTest, HealthzFlipsTo503OnStallAndRecoversTo200) {
  const SchemaPtr schema = KeyPayloadSchema();
  // Arrival order: two free tuples (one result), then the tuple the gate
  // blocks on, then the punctuations the stalled shard can never reach.
  ElementsBuilder left, right;
  left.Tup(KP(schema, 1, 10));
  right.Tup(KP(schema, 1, 20));
  left.Tup(KP(schema, 2, 11));  // 3rd tuple: the shard blocks here
  left.Punct(KeyPunct(1));
  right.Punct(KeyPunct(1));
  right.Tup(KP(schema, 2, 21));
  left.Punct(KeyPunct(2));
  right.Punct(KeyPunct(2));
  const std::vector<StreamElement> l = left.Finish();
  const std::vector<StreamElement> r = right.Finish();

  TestGate gate;
  JoinOptions jopts;
  jopts.runtime.purge_threshold = 1;
  jopts.runtime.propagate_count_threshold = 1;
  ParallelPipelineOptions popts;
  popts.num_shards = 1;
  popts.batch_size = 1;
  popts.out_ring_batches = 2;
  ParallelJoinPipeline pipeline(
      [&](int) {
        return std::make_unique<GatedPJoin>(schema, schema, jopts, &gate,
                                            /*free_tuples=*/2);
      },
      popts);
  std::vector<std::string> results;
  Mutex results_mu;
  pipeline.set_result_callback([&](const Tuple& t) {
    MutexLock lock(results_mu);
    results.push_back(t.ToString());
  });

  // Watchdog + listener: the stall must also dispatch kStallDiagnosed.
  EventRegistry events;
  StallListener listener;
  events.Register(EventType::kStallDiagnosed, &listener);
  obs::HealthOptions hopts;
  hopts.period_us = 10000;             // 10ms
  hopts.stall_threshold_us = 100000;   // 100ms
  hopts.degraded_threshold_us = 50000;
  hopts.events = &events;
  obs::HealthMonitor::Global().Start(hopts);

  obs::IntrospectionServer server;
  ASSERT_TRUE(server.Start(0).ok());

  // Healthy before the run.
  EXPECT_EQ(Get(server.port(), "/healthz").find("HTTP/1.1 200"), 0u);

  std::thread runner([&] {
    const Status st = pipeline.Run(l, r);
    EXPECT_TRUE(st.ok()) << st.ToString();
  });

  // The gate wedges the shard behind the routed punctuations; within a few
  // watchdog periods /healthz must flip to 503 naming shard 0.
  std::string stalled_response;
  for (int i = 0; i < 1000; ++i) {
    stalled_response = Get(server.port(), "/healthz");
    if (stalled_response.find("HTTP/1.1 503") == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_EQ(stalled_response.find("HTTP/1.1 503"), 0u) << stalled_response;
  JsonValue root;
  ASSERT_TRUE(JsonParser(Body(stalled_response)).Parse(&root))
      << stalled_response;
  EXPECT_EQ(root.Find("status")->str, "stalled");
  EXPECT_GE(root.Find("stalled_frontiers")->number, 1.0);
  ASSERT_FALSE(root.Find("causes")->array.empty());
  bool named = false;
  for (const JsonValue& cause : root.Find("causes")->array) {
    if (cause.str.find("shard 0 frontier") != std::string::npos) named = true;
  }
  EXPECT_TRUE(named) << Body(stalled_response);

  // /debug/stalls sees the same verdict while it is current.
  const std::string stalls_page = Get(server.port(), "/debug/stalls");
  EXPECT_NE(stalls_page.find("current: stalled"), std::string::npos)
      << stalls_page;

  // /healthz evaluates freshly per request; history, the kStallDiagnosed
  // event and the counter are recorded by the watchdog's periodic pass.
  // Hold the gate until the watchdog has seen the stall too, so recovery
  // below cannot race it out of ever observing the stalled state.
  for (int i = 0; i < 1000; ++i) {
    if (!obs::HealthMonitor::Global().StallHistory().empty()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_FALSE(obs::HealthMonitor::Global().StallHistory().empty());

  // Release the shard: the run completes and the frontier catches up.
  gate.Open();
  runner.join();
  std::string healthy_response;
  for (int i = 0; i < 1000; ++i) {
    healthy_response = Get(server.port(), "/healthz");
    if (healthy_response.find("HTTP/1.1 200") == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(healthy_response.find("HTTP/1.1 200"), 0u) << healthy_response;
  {
    MutexLock lock(results_mu);
    EXPECT_EQ(results.size(), 2u);  // both keys matched once
  }

  obs::HealthMonitor::Global().Stop();
  server.Stop();

  // The watchdog recorded the transition: history, event, counter.
  const std::vector<obs::HealthReport> history =
      obs::HealthMonitor::Global().StallHistory();
  ASSERT_FALSE(history.empty());
  EXPECT_EQ(history[0].status, obs::HealthStatus::kStalled);
  const std::vector<std::string> details = listener.details();
  ASSERT_FALSE(details.empty());
  EXPECT_NE(details[0].find("shard 0 frontier"), std::string::npos)
      << details[0];
  EXPECT_GE(obs::MetricsRegistry::Global()
                .GetCounter("pjoin_stalls_diagnosed_total")
                .Get(),
            1);
  // The watchdog fed the per-cell lag histogram while the stall lasted.
  EXPECT_GT(obs::MetricsRegistry::Global()
                .GetHistogram("pjoin_frontier_lag_seconds",
                              "side=left,scheme=constant,shard=0",
                              /*unit_scale=*/1e-6)
                .Count(),
            0);
}

// ---- Flow-id sampling ----

#if PJOIN_TRACING

struct FlowIds {
  std::set<uint64_t> starts;
  std::set<uint64_t> steps;
  std::set<uint64_t> ends;
};

FlowIds RunSampledPipeline(const SchemaPtr& schema,
                           const std::vector<StreamElement>& l,
                           const std::vector<StreamElement>& r,
                           uint64_t period) {
  obs::Tracer::Global().ResetForTest();
  obs::Tracer::Global().Start();
  ParallelPipelineOptions popts;
  popts.num_shards = 1;
  popts.batch_size = 1;
  popts.flow_sample_period = period;
  ParallelJoinPipeline pipeline(
      [&](int) { return std::make_unique<PJoin>(schema, schema); }, popts);
  pipeline.set_result_callback([](const Tuple&) {});
  const Status st = pipeline.Run(l, r);
  EXPECT_TRUE(st.ok()) << st.ToString();
  obs::Tracer::Global().Stop();
  FlowIds ids;
  for (const obs::TraceEvent& e : obs::Tracer::Global().Drain()) {
    if (std::string_view(e.name) != "tuple_path") continue;
    if (e.phase == obs::TracePhase::kFlowStart) ids.starts.insert(e.flow_id);
    if (e.phase == obs::TracePhase::kFlowStep) ids.steps.insert(e.flow_id);
    if (e.phase == obs::TracePhase::kFlowEnd) ids.ends.insert(e.flow_id);
  }
  return ids;
}

TEST_F(HealthTest, FlowSamplingIsDeterministicForAFixedInput) {
  const SchemaPtr schema = KeyPayloadSchema();
  ElementsBuilder left, right;
  for (int64_t k = 0; k < 8; ++k) {
    left.Tup(KP(schema, k, 10 + k));
    right.Tup(KP(schema, k, 20 + k));
  }
  const std::vector<StreamElement> l = left.Finish();
  const std::vector<StreamElement> r = right.Finish();

  const FlowIds first = RunSampledPipeline(schema, l, r, /*period=*/4);
  // Flow ids are routed-tuple ordinals: with period 4 the sampled ordinals
  // are 1, 5, 9, 13 out of the 16 routed tuples.
  EXPECT_EQ(first.starts, (std::set<uint64_t>{1, 5, 9, 13}));
  // Every sampled batch was stepped by the shard; ends ride the next
  // flushed OutBatch, so they are a non-empty subset of the starts.
  EXPECT_EQ(first.steps, first.starts);
  EXPECT_FALSE(first.ends.empty());
  for (const uint64_t id : first.ends) EXPECT_EQ(first.starts.count(id), 1u);

  // Same input, fresh pipeline: the identical sample set.
  const FlowIds second = RunSampledPipeline(schema, l, r, /*period=*/4);
  EXPECT_EQ(second.starts, first.starts);
  EXPECT_EQ(second.steps, first.steps);

  // period=1 samples every routed tuple (the 1 % period == 0 edge case).
  const FlowIds all = RunSampledPipeline(schema, l, r, /*period=*/1);
  EXPECT_EQ(all.starts.size(), 16u);

  // period=0 disables sampling entirely.
  const FlowIds none = RunSampledPipeline(schema, l, r, /*period=*/0);
  EXPECT_TRUE(none.starts.empty());
}

TEST_F(HealthTest, SampledFlowsRenderAsChromeFlowArrows) {
  const SchemaPtr schema = KeyPayloadSchema();
  ElementsBuilder left, right;
  for (int64_t k = 0; k < 4; ++k) {
    left.Tup(KP(schema, k, 10 + k));
    right.Tup(KP(schema, k, 20 + k));
  }
  const std::vector<StreamElement> l = left.Finish();
  const std::vector<StreamElement> r = right.Finish();

  obs::Tracer::Global().ResetForTest();
  obs::Tracer::Global().Start();
  ParallelPipelineOptions popts;
  popts.num_shards = 1;
  popts.batch_size = 1;
  popts.flow_sample_period = 2;
  ParallelJoinPipeline pipeline(
      [&](int) { return std::make_unique<PJoin>(schema, schema); }, popts);
  pipeline.set_result_callback([](const Tuple&) {});
  ASSERT_TRUE(pipeline.Run(l, r).ok());
  obs::Tracer::Global().Stop();

  std::ostringstream os;
  obs::WriteChromeTrace(os, obs::Tracer::Global().Drain(),
                        obs::Tracer::Global().ThreadNames());
  JsonValue root;
  ASSERT_TRUE(JsonParser(os.str()).Parse(&root));

  std::set<double> start_ids, step_ids, end_ids;
  for (const JsonValue& e : root.Find("traceEvents")->array) {
    const JsonValue* cat = e.Find("cat");
    if (cat == nullptr || cat->str != "flow") continue;
    EXPECT_EQ(e.Find("name")->str, "tuple_path");
    ASSERT_NE(e.Find("id"), nullptr);
    const std::string& ph = e.Find("ph")->str;
    if (ph == "s") start_ids.insert(e.Find("id")->number);
    if (ph == "t") step_ids.insert(e.Find("id")->number);
    if (ph == "f") {
      end_ids.insert(e.Find("id")->number);
      // Perfetto binds the arrow to the enclosing slice via bp=e.
      ASSERT_NE(e.Find("bp"), nullptr);
      EXPECT_EQ(e.Find("bp")->str, "e");
    }
  }
  // 8 routed tuples, period 2: ordinals 1, 3, 5, 7.
  EXPECT_EQ(start_ids, (std::set<double>{1, 3, 5, 7}));
  EXPECT_EQ(step_ids, start_ids);
  EXPECT_FALSE(end_ids.empty());
  for (const double id : end_ids) EXPECT_EQ(start_ids.count(id), 1u);
}

#endif  // PJOIN_TRACING

// ---- Concurrent scrape (the TSan leg) ----

// A real pipeline run with repartitioning enabled, scraped concurrently by
// the watchdog thread, /healthz probes and direct EvaluateNow calls. Run
// under TSan in CI: the assertion is the absence of data races between the
// frontier/health read path and the router/shard/merger write path.
TEST_F(HealthTest, ConcurrentScrapeDuringRunIsSafe) {
  DomainSpec domain;
  domain.window_size = 16;
  StreamSpec spec;
  spec.num_tuples = 4000;
  spec.punct_mean_interarrival_tuples = 8.0;
  spec.flush_punctuations_at_end = true;
  GeneratedStreams streams = GenerateStreams(domain, spec, spec, /*seed=*/42);

  obs::HealthOptions hopts;
  hopts.period_us = 1000;  // 1ms: hammer the read path
  obs::HealthMonitor::Global().Start(hopts);
  obs::IntrospectionServer server;
  ASSERT_TRUE(server.Start(0).ok());

  ParallelPipelineOptions popts;
  popts.num_shards = 4;
  popts.batch_size = 32;
  popts.repartition.enabled = true;
  popts.repartition.min_tuples = 256;
  popts.repartition.check_interval = 256;
  ParallelJoinPipeline pipeline(
      [&](int) {
        JoinOptions jopts;
        jopts.runtime.purge_threshold = 1;
        return std::make_unique<PJoin>(streams.schema_a, streams.schema_b,
                                       jopts);
      },
      popts);
  std::atomic<int64_t> results{0};
  pipeline.set_result_callback([&](const Tuple&) { results.fetch_add(1); });

  std::thread runner([&] {
    const Status st = pipeline.Run(streams.a, streams.b);
    EXPECT_TRUE(st.ok()) << st.ToString();
  });
  // Scrape every surface the watchdog also reads until the run finishes.
  std::atomic<bool> done{false};
  std::thread scraper([&] {
    while (!done.load()) {
      const obs::HealthReport report =
          obs::HealthMonitor::Global().EvaluateNow();
      EXPECT_NE(HealthStatusName(report.status), nullptr);
      const obs::FrontierSnapshot snap = obs::FrontierTracker::Global().Snap();
      EXPECT_GE(snap.released_total, 0);
      EXPECT_FALSE(Get(server.port(), "/healthz").empty());
      EXPECT_FALSE(Get(server.port(), "/debug/stalls").empty());
    }
  });
  runner.join();
  done.store(true);
  scraper.join();
  obs::HealthMonitor::Global().Stop();
  server.Stop();
  EXPECT_GT(results.load(), 0);
}

}  // namespace
}  // namespace pjoin
