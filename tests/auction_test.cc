#include <gtest/gtest.h>

#include <set>

#include "gen/auction.h"

namespace pjoin {
namespace {

AuctionSpec SmallAuction() {
  AuctionSpec spec;
  spec.num_bids = 1000;
  spec.open_window = 10;
  spec.close_mean_interarrival_bids = 20.0;
  return spec;
}

TEST(AuctionTest, Deterministic) {
  AuctionStreams a = GenerateAuction(SmallAuction(), 5);
  AuctionStreams b = GenerateAuction(SmallAuction(), 5);
  ASSERT_EQ(a.open.size(), b.open.size());
  ASSERT_EQ(a.bid.size(), b.bid.size());
  for (size_t i = 0; i < a.bid.size(); ++i) {
    EXPECT_EQ(a.bid[i].ToString(), b.bid[i].ToString());
  }
}

TEST(AuctionTest, OpenStreamHasUniqueItems) {
  AuctionStreams s = GenerateAuction(SmallAuction(), 7);
  std::set<int64_t> items;
  for (const StreamElement& e : s.open) {
    if (!e.is_tuple()) continue;
    int64_t id = e.tuple().field(0).AsInt64();
    EXPECT_TRUE(items.insert(id).second) << "duplicate item " << id;
  }
  EXPECT_GE(static_cast<int64_t>(items.size()), SmallAuction().open_window);
}

TEST(AuctionTest, OpenPunctuationFollowsEachItem) {
  AuctionStreams s = GenerateAuction(SmallAuction(), 9);
  // With key-derived punctuations, each Open tuple is followed by a
  // punctuation for exactly its item.
  for (size_t i = 0; i + 1 < s.open.size(); ++i) {
    if (!s.open[i].is_tuple()) continue;
    ASSERT_TRUE(s.open[i + 1].is_punctuation());
    EXPECT_EQ(s.open[i + 1].punctuation().pattern(0).constant(),
              s.open[i].tuple().field(0));
  }
}

TEST(AuctionTest, BidPunctuationsAreSound) {
  AuctionStreams s = GenerateAuction(SmallAuction(), 11);
  for (size_t i = 0; i < s.bid.size(); ++i) {
    if (!s.bid[i].is_punctuation()) continue;
    const Punctuation& p = s.bid[i].punctuation();
    for (size_t j = i + 1; j < s.bid.size(); ++j) {
      if (!s.bid[j].is_tuple()) continue;
      EXPECT_FALSE(p.Matches(s.bid[j].tuple()))
          << "bid after close of item " << p.ToString();
    }
  }
}

TEST(AuctionTest, FlushClosesEveryOpenedItem) {
  AuctionStreams s = GenerateAuction(SmallAuction(), 13);
  std::set<int64_t> opened;
  for (const StreamElement& e : s.open) {
    if (e.is_tuple()) opened.insert(e.tuple().field(0).AsInt64());
  }
  std::set<int64_t> closed;
  for (const StreamElement& e : s.bid) {
    if (e.is_punctuation()) {
      closed.insert(e.punctuation().pattern(0).constant().AsInt64());
    }
  }
  EXPECT_EQ(opened, closed);
}

TEST(AuctionTest, NoFlushLeavesItemsOpen) {
  AuctionSpec spec = SmallAuction();
  spec.flush_at_end = false;
  AuctionStreams s = GenerateAuction(spec, 13);
  std::set<int64_t> opened;
  for (const StreamElement& e : s.open) {
    if (e.is_tuple()) opened.insert(e.tuple().field(0).AsInt64());
  }
  std::set<int64_t> closed;
  for (const StreamElement& e : s.bid) {
    if (e.is_punctuation()) {
      closed.insert(e.punctuation().pattern(0).constant().AsInt64());
    }
  }
  EXPECT_LT(closed.size(), opened.size());
}

TEST(AuctionTest, BidCountExact) {
  AuctionStreams s = GenerateAuction(SmallAuction(), 17);
  int64_t bids = 0;
  for (const StreamElement& e : s.bid) {
    if (e.is_tuple()) ++bids;
  }
  EXPECT_EQ(bids, SmallAuction().num_bids);
}

TEST(AuctionTest, SchemasAsDocumented) {
  AuctionStreams s = GenerateAuction(SmallAuction(), 19);
  EXPECT_EQ(s.open_schema->ToString(),
            "(item_id:int64, seller:int64, reserve:int64)");
  EXPECT_EQ(s.bid_schema->ToString(),
            "(item_id:int64, bidder:int64, increase:float64)");
}

TEST(AuctionTest, OpenStreamPunctuationsCanBeDisabled) {
  AuctionSpec spec = SmallAuction();
  spec.open_stream_punctuations = false;
  AuctionStreams s = GenerateAuction(spec, 21);
  for (const StreamElement& e : s.open) {
    EXPECT_FALSE(e.is_punctuation());
  }
}

}  // namespace
}  // namespace pjoin
