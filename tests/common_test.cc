#include <gtest/gtest.h>

#include <cmath>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"

namespace pjoin {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::IOError("disk on fire");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_EQ(s.message(), "disk on fire");
  EXPECT_EQ(s.ToString(), "IOError: disk on fire");
}

TEST(StatusTest, FactoriesProduceDistinctCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unsupported("x").code(), StatusCode::kUnsupported);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 7);
  EXPECT_EQ(*r, 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(42), 42);
}

Result<int> Doubled(int x) {
  PJOIN_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(Doubled(4).value(), 8);
  EXPECT_FALSE(Doubled(0).ok());
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextIntInClosedRange) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ExponentialMeanApproximately) {
  Rng rng(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(5.0);
  const double mean = sum / n;
  EXPECT_NEAR(mean, 5.0, 0.25);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += rng.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.03);
}

TEST(VirtualClockTest, AdvancesMonotonically) {
  VirtualClock clock(100);
  EXPECT_EQ(clock.NowMicros(), 100);
  clock.AdvanceTo(250);
  EXPECT_EQ(clock.NowMicros(), 250);
  clock.AdvanceBy(50);
  EXPECT_EQ(clock.NowMicros(), 300);
}

TEST(WallClockTest, MovesForward) {
  WallClock clock;
  TimeMicros a = clock.NowMicros();
  TimeMicros b = clock.NowMicros();
  EXPECT_GE(b, a);
}

TEST(TimeSeriesTest, RecordsAllWithoutInterval) {
  TimeSeries ts;
  ts.Record(0, 1);
  ts.Record(1, 2);
  ts.Record(1, 3);
  EXPECT_EQ(ts.samples().size(), 3u);
  EXPECT_EQ(ts.MaxValue(), 3);
  EXPECT_EQ(ts.LastValue(), 3);
  EXPECT_DOUBLE_EQ(ts.MeanValue(), 2.0);
}

TEST(TimeSeriesTest, ThinsByInterval) {
  TimeSeries ts(10);
  ts.Record(0, 1);
  ts.Record(5, 2);   // dropped: within 10 of previous
  ts.Record(10, 3);  // kept
  ts.Record(25, 4);  // kept
  EXPECT_EQ(ts.samples().size(), 3u);
}

TEST(TimeSeriesTest, ResampleCarriesLastForward) {
  TimeSeries ts;
  ts.Record(10, 5);
  ts.Record(90, 9);
  auto grid = ts.Resample(100, 4);
  ASSERT_EQ(grid.size(), 4u);
  EXPECT_EQ(grid[0].time, 25);
  EXPECT_EQ(grid[0].value, 5);
  EXPECT_EQ(grid[2].value, 5);
  EXPECT_EQ(grid[3].value, 9);
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Add(i);
  EXPECT_EQ(h.count(), 100);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 100);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  EXPECT_GT(h.Percentile(0.95), h.Percentile(0.5));
  EXPECT_FALSE(h.ToString().empty());
}

TEST(HistogramTest, EmptyIsSafe) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.Percentile(0.5), 0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(HistogramTest, PercentileInterpolatesWithinBucket) {
  // 100 values filling bucket [64, 127] uniformly would interpolate across
  // the whole range; values 1..100 put the median in bucket [32, 63] at
  // position (50 - 31)/32 of the way through, i.e. ~50 — the old
  // upper-bound answer was a full bucket off (63).
  Histogram h;
  for (int i = 1; i <= 100; ++i) h.Add(i);
  const int64_t p50 = h.Percentile(0.5);
  EXPECT_GE(p50, 45);
  EXPECT_LE(p50, 55);
  // p95 lands in bucket [64, 127], which values 1..100 only half-fill: the
  // interpolated point (~118) must clamp to the observed max.
  EXPECT_EQ(h.Percentile(0.95), 100);
}

TEST(HistogramTest, PercentileExactForSingleValue) {
  Histogram h;
  h.Add(100);
  // One sample: every quantile is that sample, not its bucket's bounds.
  EXPECT_EQ(h.Percentile(0.0), 100);
  EXPECT_EQ(h.Percentile(0.5), 100);
  EXPECT_EQ(h.Percentile(1.0), 100);
}

TEST(HistogramTest, PercentileEdgeQuantiles) {
  Histogram h;
  for (int i = 1; i <= 16; ++i) h.Add(i);
  EXPECT_EQ(h.Percentile(1.0), 16);  // q=1 is exactly the max
  EXPECT_LE(h.Percentile(0.0), h.Percentile(1.0));
  // Quantiles are monotone in q.
  int64_t prev = 0;
  for (double q = 0.1; q < 1.0; q += 0.1) {
    const int64_t v = h.Percentile(q);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(HistogramTest, PercentileNonPositiveBucket) {
  Histogram h;
  h.Add(-5);
  h.Add(0);
  h.Add(10);
  // Bucket 0 (v <= 0) has no meaningful lower bound to interpolate from.
  EXPECT_EQ(h.Percentile(0.25), 0);
  EXPECT_EQ(h.Percentile(1.0), 10);
}

TEST(CounterSetTest, AddAndGet) {
  CounterSet c;
  EXPECT_EQ(c.Get("x"), 0);
  c.Add("x");
  c.Add("x", 4);
  c.Add("y", 2);
  EXPECT_EQ(c.Get("x"), 5);
  EXPECT_EQ(c.Get("y"), 2);
  EXPECT_EQ(c.ToString(), "x=5 y=2");
  c.Reset();
  EXPECT_EQ(c.Get("x"), 0);
}

}  // namespace
}  // namespace pjoin
