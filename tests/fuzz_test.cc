// Randomized correctness fuzzing with an *adversarial* stream model that is
// deliberately different from the SharedDomain benchmark generator: each
// stream punctuates keys independently while the opposite stream may still
// be producing them. This exercises on-the-fly drops, purge buffers, and
// every disk-join path against the nested-loop reference.

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "fault/faulty_spill_store.h"
#include "fault/faulty_stream_source.h"
#include "gen/auction.h"
#include "join/pjoin.h"
#include "join/shj.h"
#include "join/xjoin.h"
#include "storage/recovering_spill_store.h"
#include "storage/simulated_disk.h"
#include "test_util.h"

namespace pjoin {
namespace {

using testing::KeyPayloadSchema;
using testing::ReferenceJoinRows;
using testing::RunJoin;

struct FuzzStreams {
  SchemaPtr schema_a;
  SchemaPtr schema_b;
  std::vector<StreamElement> a;
  std::vector<StreamElement> b;
};

// Generates one stream: tuples draw keys from this stream's not-yet-
// punctuated set; with probability `punct_prob` a random still-open key is
// punctuated (constant patterns are pairwise disjoint, so the §2.2 prefix
// condition holds trivially). Punctuation soundness holds by construction:
// a punctuated key leaves this stream's sampling set forever.
std::vector<StreamElement> FuzzStream(const SchemaPtr& schema, Rng& rng,
                                      int64_t num_keys, int64_t num_tuples,
                                      double punct_prob) {
  std::vector<int64_t> open_keys;
  for (int64_t k = 0; k < num_keys; ++k) open_keys.push_back(k);
  std::vector<StreamElement> out;
  TimeMicros now = 0;
  int64_t seq = 0;
  int64_t payload = 0;
  for (int64_t i = 0; i < num_tuples && !open_keys.empty(); ++i) {
    now += 1 + static_cast<TimeMicros>(rng.NextBounded(2000));
    const size_t pick = rng.NextBounded(open_keys.size());
    out.push_back(StreamElement::MakeTuple(
        Tuple(schema, {Value(open_keys[pick]), Value(payload++)}), now,
        seq++));
    if (rng.NextBool(punct_prob) && open_keys.size() > 1) {
      const size_t victim = rng.NextBounded(open_keys.size());
      out.push_back(StreamElement::MakePunctuation(
          Punctuation::ForAttribute(
              2, 0, Pattern::Constant(Value(open_keys[victim]))),
          now, seq++));
      open_keys.erase(open_keys.begin() + static_cast<ptrdiff_t>(victim));
    }
  }
  out.push_back(StreamElement::MakeEndOfStream(now, seq++));
  return out;
}

FuzzStreams MakeFuzz(uint64_t seed) {
  Rng rng(seed);
  FuzzStreams out;
  out.schema_a = KeyPayloadSchema("a");
  out.schema_b = KeyPayloadSchema("b");
  const int64_t keys = 3 + static_cast<int64_t>(rng.NextBounded(8));
  const int64_t tuples = 50 + static_cast<int64_t>(rng.NextBounded(200));
  const double prob = 0.02 + 0.1 * rng.NextDouble();
  out.a = FuzzStream(out.schema_a, rng, keys, tuples, prob);
  out.b = FuzzStream(out.schema_b, rng, keys, tuples, prob);
  return out;
}

class JoinFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JoinFuzz, AllJoinsAllConfigsMatchReference) {
  FuzzStreams f = MakeFuzz(GetParam());
  Rng cfg_rng(GetParam() ^ 0xC0FFEE);

  SymmetricHashJoin shj(f.schema_a, f.schema_b);
  auto reference =
      ReferenceJoinRows(f.a, f.b, shj.output_schema(), 0, 0);
  auto shj_run = RunJoin(&shj, f.a, f.b);
  ASSERT_EQ(shj_run.results, reference);

  // XJoin with a random tight memory threshold.
  {
    JoinOptions opts;
    opts.runtime.memory_threshold_tuples =
        2 + static_cast<int64_t>(cfg_rng.NextBounded(40));
    XJoin join(f.schema_a, f.schema_b, opts);
    auto run = RunJoin(&join, f.a, f.b, /*stall_gap=*/3000);
    EXPECT_EQ(run.results, reference)
        << "XJoin mem=" << opts.runtime.memory_threshold_tuples;
  }

  // PJoin with randomized knobs.
  for (int round = 0; round < 3; ++round) {
    JoinOptions opts;
    opts.runtime.purge_threshold =
        1 + static_cast<int64_t>(cfg_rng.NextBounded(20));
    opts.runtime.memory_threshold_tuples =
        cfg_rng.NextBool(0.5)
            ? 2 + static_cast<int64_t>(cfg_rng.NextBounded(40))
            : std::numeric_limits<int64_t>::max();
    opts.runtime.propagate_count_threshold =
        cfg_rng.NextBool(0.5)
            ? 1 + static_cast<int64_t>(cfg_rng.NextBounded(8))
            : 0;
    opts.eager_index_build = cfg_rng.NextBool(0.5);
    opts.eager_propagation = cfg_rng.NextBool(0.3);
    opts.drop_on_the_fly = cfg_rng.NextBool(0.8);
    opts.purge_mode =
        cfg_rng.NextBool(0.5) ? PurgeMode::kScan : PurgeMode::kIndexed;
    PJoin join(f.schema_a, f.schema_b, opts);

    // Theorem 1 checked inline: emitted punctuations must never be
    // contradicted by later results.
    std::vector<Punctuation> emitted;
    bool violated = false;
    join.set_punct_callback(
        [&emitted](const Punctuation& p) { emitted.push_back(p); });
    std::vector<std::string> rows;
    join.set_result_callback([&](const Tuple& t) {
      rows.push_back(t.ToString());
      for (const Punctuation& p : emitted) {
        if (p.Matches(t)) violated = true;
      }
    });
    PipelineOptions popts;
    popts.stall_gap_micros = 3000;
    JoinPipeline pipe(&join, nullptr, popts);
    ASSERT_TRUE(pipe.Run(f.a, f.b).ok());
    std::sort(rows.begin(), rows.end());
    EXPECT_EQ(rows, reference)
        << "PJoin purge=" << opts.runtime.purge_threshold
        << " mem=" << opts.runtime.memory_threshold_tuples
        << " prop=" << opts.runtime.propagate_count_threshold
        << " eager_idx=" << opts.eager_index_build
        << " otf=" << opts.drop_on_the_fly;
    EXPECT_FALSE(violated) << "Theorem 1 violated (seed " << GetParam()
                           << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinFuzz,
                         ::testing::Range(uint64_t{1}, uint64_t{41}));

// ---- Chaos fuzzing: random fault plans over the auction workload ----
//
// Each seed derives a random FaultPlan (stream contract violations on both
// inputs, recoverable I/O faults on the spill stores). A PJoin with
// ViolationPolicy::kDrop, a tight memory threshold, and RecoveringSpillStore-
// wrapped faulty stores must produce exactly the reference result over the
// *sanitized* views (faulty minus the injected violations), with every
// injected violation counted and surfaced as a ContractViolationEvent.

double MaybeRate(Rng& rng, double max_rate) {
  return rng.NextBool(0.7) ? max_rate * rng.NextDouble() : 0.0;
}

FaultPlan RandomPlan(uint64_t seed) {
  Rng rng(seed ^ 0xFA017);
  FaultPlan plan;
  plan.seed = seed * 2654435761 + 1;
  for (int s = 0; s < 2; ++s) {
    plan.stream[s].late_tuple_rate = MaybeRate(rng, 0.05);
    plan.stream[s].malformed_punct_rate = MaybeRate(rng, 0.03);
    plan.stream[s].duplicate_rate = MaybeRate(rng, 0.05);
    plan.stream[s].reorder_rate = MaybeRate(rng, 0.1);
    plan.stream[s].stall_rate = MaybeRate(rng, 0.02);
  }
  plan.io.transient_write_error_rate = MaybeRate(rng, 0.2);
  plan.io.transient_read_error_rate = MaybeRate(rng, 0.2);
  plan.io.short_write_rate = MaybeRate(rng, 0.2);
  plan.io.latency_spike_rate = MaybeRate(rng, 0.1);
  // Permanent write failure is recoverable (reads survive, so the fallback
  // migration preserves all data); permanent read failure is genuine data
  // loss and stays out of the correctness fuzz.
  if (rng.NextBool(0.4)) {
    plan.io.permanent_write_failure_after =
        3 + static_cast<int64_t>(rng.NextBounded(20));
  }
  // Partition-targeted and repartition-phase faults exercise the
  // SpillManager's quarantine/degrade ladder, which the global rates above
  // cannot isolate to a single partition or to the split path.
  if (rng.NextBool(0.5)) {
    plan.io.target_partition = static_cast<int>(rng.NextBounded(16));
    plan.io.partition_write_error_rate = MaybeRate(rng, 0.3);
    plan.io.partition_read_error_rate = MaybeRate(rng, 0.3);
  }
  plan.io.repartition_error_rate = MaybeRate(rng, 0.3);
  return plan;
}

class ChaosFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ChaosFuzz, DropPolicyMatchesSanitizedReference) {
  const uint64_t seed = GetParam();
  const FaultPlan plan = RandomPlan(seed);
  SCOPED_TRACE(plan.ToString());

  AuctionSpec aspec;
  aspec.num_bids = 300;
  aspec.open_window = 6;
  aspec.close_mean_interarrival_bids = 15.0;
  AuctionStreams streams = GenerateAuction(aspec, seed);

  auto injector = std::make_shared<FaultInjector>(plan.seed);
  PerturbedStream pa =
      PerturbStream(streams.open, 0, plan.stream[0], injector.get());
  PerturbedStream pb =
      PerturbStream(streams.bid, 0, plan.stream[1], injector.get());

  // Spill stores: faulty substrate wrapped in the recovering decorator; keep
  // raw pointers for post-run assertions.
  std::vector<FaultySpillStore*> faulty_stores;
  std::vector<RecoveringSpillStore*> recovering_stores;
  int64_t io_error_events = 0;
  int64_t degraded_events = 0;
  auto sink = [&](const Event& e) {
    if (e.type == EventType::kIoError) ++io_error_events;
    if (e.type == EventType::kDegradedMode) ++degraded_events;
  };

  JoinOptions opts;
  Rng cfg_rng(seed ^ 0xC4405);
  opts.violation_policy = ViolationPolicy::kDrop;
  opts.runtime.purge_threshold =
      1 + static_cast<int64_t>(cfg_rng.NextBounded(8));
  opts.runtime.memory_threshold_tuples =
      8 + static_cast<int64_t>(cfg_rng.NextBounded(32));
  opts.runtime.propagate_count_threshold =
      cfg_rng.NextBool(0.5) ? 1 + static_cast<int64_t>(cfg_rng.NextBounded(6))
                            : 0;
  opts.eager_index_build = cfg_rng.NextBool(0.5);
  // Tight split bound so recursive repartitioning triggers under the small
  // memory caps above (and meets the repartition-phase faults injected by
  // the plan).
  opts.spill_policy.repartition_record_bound =
      8 + static_cast<int64_t>(cfg_rng.NextBounded(24));
  int64_t spill_degraded_events = 0;
  opts.spill_event_sink = [&](const Event& e) {
    if (e.type == EventType::kDegradedMode) ++spill_degraded_events;
  };
  opts.spill_factory = [&]() -> std::unique_ptr<SpillStore> {
    auto faulty = std::make_unique<FaultySpillStore>(
        std::make_unique<SimulatedDisk>(), plan.io, injector);
    faulty_stores.push_back(faulty.get());
    RecoveryOptions ropts;
    ropts.max_retries = 8;
    auto recovering = std::make_unique<RecoveringSpillStore>(
        std::move(faulty), ropts, sink);
    recovering_stores.push_back(recovering.get());
    return recovering;
  };

  PJoin join(streams.open_schema, streams.bid_schema, opts);
  int64_t violation_events = 0;
  class ViolationCounter : public EventListener {
   public:
    explicit ViolationCounter(int64_t* count) : count_(count) {}
    std::string_view name() const override { return "chaos-counter"; }
    Status HandleEvent(const Event&) override {
      ++*count_;
      return Status::OK();
    }

   private:
    int64_t* count_;
  } counter(&violation_events);
  join.registry().Register(EventType::kContractViolation, &counter);

  std::vector<std::string> rows;
  join.set_result_callback(
      [&rows](const Tuple& t) { rows.push_back(t.ToString()); });
  PipelineOptions popts;
  popts.stall_gap_micros = 3000;
  JoinPipeline pipe(&join, nullptr, popts);
  ASSERT_TRUE(pipe.Run(pa.faulty, pb.faulty).ok());
  std::sort(rows.begin(), rows.end());

  // The oracle: kDrop output over the faulty streams == reference over the
  // sanitized streams.
  EXPECT_EQ(rows, ReferenceJoinRows(pa.sanitized, pb.sanitized,
                                    join.output_schema(), 0, 0));

  // Every injected violation was detected, counted, and dispatched.
  EXPECT_EQ(join.contract_violations(), pa.violations + pb.violations);
  EXPECT_EQ(violation_events, pa.violations + pb.violations);

  // I/O accounting: each observed error raised one IoErrorEvent.
  int64_t io_errors = 0;
  bool any_degraded = false;
  for (const RecoveringSpillStore* store : recovering_stores) {
    io_errors += store->recovery_stats().io_errors;
    any_degraded |= store->degraded();
    EXPECT_EQ(store->recovery_stats().records_lost, 0);
  }
  EXPECT_EQ(io_error_events, io_errors);
  // A tripped permanent write failure must have forced the fallback.
  for (size_t i = 0; i < faulty_stores.size(); ++i) {
    if (faulty_stores[i]->write_failed_permanently()) {
      EXPECT_TRUE(recovering_stores[i]->degraded());
      EXPECT_EQ(recovering_stores[i]->recovery_stats().fallbacks, 1);
    }
  }
  if (!any_degraded) {
    EXPECT_EQ(degraded_events, 0);
  }
  // The spill manager's fallback is observable iff it reported degradation.
  EXPECT_EQ(spill_degraded_events > 0, join.spill_stats().degraded);
}

INSTANTIATE_TEST_SUITE_P(Plans, ChaosFuzz,
                         ::testing::Range(uint64_t{1}, uint64_t{25}));

}  // namespace
}  // namespace pjoin
