// Randomized correctness fuzzing with an *adversarial* stream model that is
// deliberately different from the SharedDomain benchmark generator: each
// stream punctuates keys independently while the opposite stream may still
// be producing them. This exercises on-the-fly drops, purge buffers, and
// every disk-join path against the nested-loop reference.

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "join/pjoin.h"
#include "join/shj.h"
#include "join/xjoin.h"
#include "test_util.h"

namespace pjoin {
namespace {

using testing::KeyPayloadSchema;
using testing::ReferenceJoinRows;
using testing::RunJoin;

struct FuzzStreams {
  SchemaPtr schema_a;
  SchemaPtr schema_b;
  std::vector<StreamElement> a;
  std::vector<StreamElement> b;
};

// Generates one stream: tuples draw keys from this stream's not-yet-
// punctuated set; with probability `punct_prob` a random still-open key is
// punctuated (constant patterns are pairwise disjoint, so the §2.2 prefix
// condition holds trivially). Punctuation soundness holds by construction:
// a punctuated key leaves this stream's sampling set forever.
std::vector<StreamElement> FuzzStream(const SchemaPtr& schema, Rng& rng,
                                      int64_t num_keys, int64_t num_tuples,
                                      double punct_prob) {
  std::vector<int64_t> open_keys;
  for (int64_t k = 0; k < num_keys; ++k) open_keys.push_back(k);
  std::vector<StreamElement> out;
  TimeMicros now = 0;
  int64_t seq = 0;
  int64_t payload = 0;
  for (int64_t i = 0; i < num_tuples && !open_keys.empty(); ++i) {
    now += 1 + static_cast<TimeMicros>(rng.NextBounded(2000));
    const size_t pick = rng.NextBounded(open_keys.size());
    out.push_back(StreamElement::MakeTuple(
        Tuple(schema, {Value(open_keys[pick]), Value(payload++)}), now,
        seq++));
    if (rng.NextBool(punct_prob) && open_keys.size() > 1) {
      const size_t victim = rng.NextBounded(open_keys.size());
      out.push_back(StreamElement::MakePunctuation(
          Punctuation::ForAttribute(
              2, 0, Pattern::Constant(Value(open_keys[victim]))),
          now, seq++));
      open_keys.erase(open_keys.begin() + static_cast<ptrdiff_t>(victim));
    }
  }
  out.push_back(StreamElement::MakeEndOfStream(now, seq++));
  return out;
}

FuzzStreams MakeFuzz(uint64_t seed) {
  Rng rng(seed);
  FuzzStreams out;
  out.schema_a = KeyPayloadSchema("a");
  out.schema_b = KeyPayloadSchema("b");
  const int64_t keys = 3 + static_cast<int64_t>(rng.NextBounded(8));
  const int64_t tuples = 50 + static_cast<int64_t>(rng.NextBounded(200));
  const double prob = 0.02 + 0.1 * rng.NextDouble();
  out.a = FuzzStream(out.schema_a, rng, keys, tuples, prob);
  out.b = FuzzStream(out.schema_b, rng, keys, tuples, prob);
  return out;
}

class JoinFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(JoinFuzz, AllJoinsAllConfigsMatchReference) {
  FuzzStreams f = MakeFuzz(GetParam());
  Rng cfg_rng(GetParam() ^ 0xC0FFEE);

  SymmetricHashJoin shj(f.schema_a, f.schema_b);
  auto reference =
      ReferenceJoinRows(f.a, f.b, shj.output_schema(), 0, 0);
  auto shj_run = RunJoin(&shj, f.a, f.b);
  ASSERT_EQ(shj_run.results, reference);

  // XJoin with a random tight memory threshold.
  {
    JoinOptions opts;
    opts.runtime.memory_threshold_tuples =
        2 + static_cast<int64_t>(cfg_rng.NextBounded(40));
    XJoin join(f.schema_a, f.schema_b, opts);
    auto run = RunJoin(&join, f.a, f.b, /*stall_gap=*/3000);
    EXPECT_EQ(run.results, reference)
        << "XJoin mem=" << opts.runtime.memory_threshold_tuples;
  }

  // PJoin with randomized knobs.
  for (int round = 0; round < 3; ++round) {
    JoinOptions opts;
    opts.runtime.purge_threshold =
        1 + static_cast<int64_t>(cfg_rng.NextBounded(20));
    opts.runtime.memory_threshold_tuples =
        cfg_rng.NextBool(0.5)
            ? 2 + static_cast<int64_t>(cfg_rng.NextBounded(40))
            : std::numeric_limits<int64_t>::max();
    opts.runtime.propagate_count_threshold =
        cfg_rng.NextBool(0.5)
            ? 1 + static_cast<int64_t>(cfg_rng.NextBounded(8))
            : 0;
    opts.eager_index_build = cfg_rng.NextBool(0.5);
    opts.eager_propagation = cfg_rng.NextBool(0.3);
    opts.drop_on_the_fly = cfg_rng.NextBool(0.8);
    opts.purge_mode =
        cfg_rng.NextBool(0.5) ? PurgeMode::kScan : PurgeMode::kIndexed;
    PJoin join(f.schema_a, f.schema_b, opts);

    // Theorem 1 checked inline: emitted punctuations must never be
    // contradicted by later results.
    std::vector<Punctuation> emitted;
    bool violated = false;
    join.set_punct_callback(
        [&emitted](const Punctuation& p) { emitted.push_back(p); });
    std::vector<std::string> rows;
    join.set_result_callback([&](const Tuple& t) {
      rows.push_back(t.ToString());
      for (const Punctuation& p : emitted) {
        if (p.Matches(t)) violated = true;
      }
    });
    PipelineOptions popts;
    popts.stall_gap_micros = 3000;
    JoinPipeline pipe(&join, nullptr, popts);
    ASSERT_TRUE(pipe.Run(f.a, f.b).ok());
    std::sort(rows.begin(), rows.end());
    EXPECT_EQ(rows, reference)
        << "PJoin purge=" << opts.runtime.purge_threshold
        << " mem=" << opts.runtime.memory_threshold_tuples
        << " prop=" << opts.runtime.propagate_count_threshold
        << " eager_idx=" << opts.eager_index_build
        << " otf=" << opts.drop_on_the_fly;
    EXPECT_FALSE(violated) << "Theorem 1 violated (seed " << GetParam()
                           << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinFuzz,
                         ::testing::Range(uint64_t{1}, uint64_t{41}));

}  // namespace
}  // namespace pjoin
