// Tests for the introspection HTTP server (src/obs/http_server.cc) and the
// pre-wired IntrospectionServer endpoints: routing, malformed / oversize
// requests, port conflicts, clean shutdown, and scraping /metrics +
// /statusz while a ParallelJoinPipeline is running (the latter runs under
// TSan in CI — it is the "live scrape" race detector).
//
// The raw client sockets below are the test's HTTP client; the raw-socket
// lint rule is src/-only, so tests may speak to the server directly.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gen/stream_generator.h"
#include "join/pjoin.h"
#include "obs/http_server.h"
#include "obs/introspection.h"
#include "obs/metrics_registry.h"
#include "obs/promtext.h"
#include "ops/parallel_pipeline.h"

namespace pjoin {
namespace {

// Sends `raw` to 127.0.0.1:`port` and returns everything the server sends
// back until it closes the connection.
std::string RawRequest(int port, const std::string& raw) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  size_t sent = 0;
  while (sent < raw.size()) {
    const ssize_t n = ::send(fd, raw.data() + sent, raw.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  while (true) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Get(int port, const std::string& path) {
  return RawRequest(port, "GET " + path +
                              " HTTP/1.1\r\nHost: localhost\r\n"
                              "Connection: close\r\n\r\n");
}

TEST(HttpServerTest, ServesRegisteredHandlerAndParsesQuery) {
  obs::HttpServer server;
  server.AddHandler("/hello", [](const obs::HttpRequest& req) {
    obs::HttpResponse resp;
    resp.body = "hi query=[" + req.query + "]";
    return resp;
  });
  ASSERT_TRUE(server.Start(0).ok());
  ASSERT_GT(server.port(), 0);
  const std::string response = Get(server.port(), "/hello?a=1");
  EXPECT_NE(response.find("HTTP/1.1 200"), std::string::npos) << response;
  EXPECT_NE(response.find("hi query=[a=1]"), std::string::npos) << response;
  EXPECT_NE(response.find("Content-Length:"), std::string::npos);
  server.Stop();
}

TEST(HttpServerTest, UnknownPathIs404) {
  obs::HttpServer server;
  server.AddHandler("/hello", [](const obs::HttpRequest&) {
    return obs::HttpResponse{};
  });
  ASSERT_TRUE(server.Start(0).ok());
  EXPECT_NE(Get(server.port(), "/nope").find("HTTP/1.1 404"),
            std::string::npos);
  server.Stop();
}

TEST(HttpServerTest, NonGetMethodIs405) {
  obs::HttpServer server;
  server.AddHandler("/hello", [](const obs::HttpRequest&) {
    return obs::HttpResponse{};
  });
  ASSERT_TRUE(server.Start(0).ok());
  const std::string response = RawRequest(
      server.port(), "POST /hello HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 405"), std::string::npos) << response;
  EXPECT_NE(response.find("Allow: GET"), std::string::npos) << response;
  server.Stop();
}

TEST(HttpServerTest, MalformedRequestLineIs400) {
  obs::HttpServer server;
  ASSERT_TRUE(server.Start(0).ok());
  const std::string response =
      RawRequest(server.port(), "this is not http\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 400"), std::string::npos) << response;
  server.Stop();
}

TEST(HttpServerTest, OversizeRequestIs431) {
  obs::HttpServerOptions options;
  options.max_request_bytes = 256;
  obs::HttpServer server(options);
  ASSERT_TRUE(server.Start(0).ok());
  const std::string big_header(1024, 'x');
  const std::string response = RawRequest(
      server.port(),
      "GET / HTTP/1.1\r\nX-Padding: " + big_header + "\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 431"), std::string::npos) << response;
  server.Stop();
}

TEST(HttpServerTest, PortInUseFailsWithIOError) {
  obs::HttpServer first;
  ASSERT_TRUE(first.Start(0).ok());
  obs::HttpServer second;
  const Status status = second.Start(first.port());
  EXPECT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find("bind port"), std::string::npos)
      << status.ToString();
  first.Stop();
  // The port is free again after Stop(); a fresh server can claim it.
  obs::HttpServer third;
  EXPECT_TRUE(third.Start(first.port()).ok());
  third.Stop();
}

TEST(HttpServerTest, StopIsIdempotentAndStartlessStopIsSafe) {
  {
    obs::HttpServer never_started;
    never_started.Stop();
  }  // destructor after Stop() must also be clean
  obs::HttpServer server;
  ASSERT_TRUE(server.Start(0).ok());
  server.Stop();
  server.Stop();
}

TEST(HttpServerTest, ConcurrentClientsAreAllServed) {
  obs::HttpServer server;
  server.AddHandler("/hello", [](const obs::HttpRequest&) {
    obs::HttpResponse resp;
    resp.body = "ok";
    return resp;
  });
  ASSERT_TRUE(server.Start(0).ok());
  constexpr int kClients = 8;
  std::vector<std::thread> clients;
  std::vector<std::string> responses(kClients);
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&server, &responses, i] {
      responses[static_cast<size_t>(i)] = Get(server.port(), "/hello");
    });
  }
  for (std::thread& c : clients) c.join();
  for (const std::string& r : responses) {
    EXPECT_NE(r.find("HTTP/1.1 200"), std::string::npos) << r;
  }
  server.Stop();
}

// ---- IntrospectionServer against a live pipeline ----

class IntrospectionServerTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::MetricsRegistry::Global().ResetForTest(); }
  void TearDown() override { obs::MetricsRegistry::Global().ResetForTest(); }
};

TEST_F(IntrospectionServerTest, EndpointsServeAndQuitLatches) {
  obs::IntrospectionServer server;
  ASSERT_TRUE(server.Start(0).ok());
  EXPECT_NE(Get(server.port(), "/").find("/metrics"), std::string::npos);
  EXPECT_NE(Get(server.port(), "/statusz").find("uptime_seconds"),
            std::string::npos);
  EXPECT_NE(Get(server.port(), "/tracez").find("tracer:"),
            std::string::npos);
  const std::string metrics = Get(server.port(), "/metrics");
  EXPECT_NE(metrics.find("version=0.0.4"), std::string::npos) << metrics;
  EXPECT_FALSE(server.quit_requested());
  EXPECT_NE(Get(server.port(), "/quitquitquit").find("HTTP/1.1 200"),
            std::string::npos);
  EXPECT_TRUE(server.quit_requested());
  server.Stop();
}

// Scrapes /metrics and /statusz continuously while a ParallelJoinPipeline
// runs — under TSan this is the detector for races between server worker
// threads and router/shard threads publishing gauges and histograms.
TEST_F(IntrospectionServerTest, ScrapeWhilePipelineRunning) {
  obs::IntrospectionServer server;
  ASSERT_TRUE(server.Start(0).ok());

  DomainSpec domain;
  domain.window_size = 16;
  StreamSpec spec;
  spec.num_tuples = 4000;
  spec.punct_mean_interarrival_tuples = 25.0;
  spec.flush_punctuations_at_end = true;
  const GeneratedStreams streams =
      GenerateStreams(domain, spec, spec, /*seed=*/7);

  JoinOptions options;
  options.runtime.purge_threshold = 1;
  options.runtime.propagate_count_threshold = 1;

  std::atomic<bool> done{false};
  std::thread scraper([&] {
    // Hammer the endpoints until the pipeline completes; every response
    // must stay well-formed.
    while (!done.load(std::memory_order_acquire)) {
      const std::string metrics = Get(server.port(), "/metrics");
      EXPECT_NE(metrics.find("HTTP/1.1 200"), std::string::npos);
      const std::string statusz = Get(server.port(), "/statusz");
      EXPECT_NE(statusz.find("HTTP/1.1 200"), std::string::npos);
    }
  });

  ParallelPipelineOptions popts;
  popts.num_shards = 2;
  ParallelJoinPipeline pipeline(
      [&](int) {
        return std::make_unique<PJoin>(streams.schema_a, streams.schema_b,
                                       options);
      },
      popts);
  int64_t results = 0;
  pipeline.set_result_callback([&](const Tuple&) { ++results; });
  const Status status = pipeline.Run(streams.a, streams.b);
  done.store(true, std::memory_order_release);
  scraper.join();
  ASSERT_TRUE(status.ok()) << status.ToString();

  // After the run the registry holds per-shard latency histograms with
  // real observations, and the exposition endpoint serves them.
  const std::string text = obs::GlobalPrometheusText();
  EXPECT_NE(text.find("pjoin_tuple_latency_seconds_bucket"),
            std::string::npos)
      << text;
  const std::string count_line = "pjoin_tuple_latency_seconds_count";
  EXPECT_NE(text.find(count_line), std::string::npos);
  server.Stop();
}

}  // namespace
}  // namespace pjoin
