#include <gtest/gtest.h>

#include <cstdio>

#include "storage/file_spill_store.h"
#include "storage/page.h"
#include "storage/simulated_disk.h"

namespace pjoin {
namespace {

TEST(PageTest, WriteReadRoundtrip) {
  PageWriter writer(128);
  ASSERT_TRUE(writer.Append("hello"));
  ASSERT_TRUE(writer.Append(""));
  ASSERT_TRUE(writer.Append("world!"));
  EXPECT_EQ(writer.record_count(), 3u);
  std::string page = writer.Finish();
  EXPECT_EQ(page.size(), 128u);

  PageReader reader(page);
  EXPECT_EQ(reader.record_count(), 3u);
  std::string_view rec;
  ASSERT_TRUE(reader.Next(&rec));
  EXPECT_EQ(rec, "hello");
  ASSERT_TRUE(reader.Next(&rec));
  EXPECT_EQ(rec, "");
  ASSERT_TRUE(reader.Next(&rec));
  EXPECT_EQ(rec, "world!");
  EXPECT_FALSE(reader.Next(&rec));
}

TEST(PageTest, RejectsWhenFull) {
  PageWriter writer(32);
  ASSERT_TRUE(writer.Append("0123456789"));
  // 4 (header) + 4+10 = 18 used; another 4+12 = 16 would exceed 32.
  EXPECT_FALSE(writer.Append("0123456789ab"));
}

TEST(PageTest, FinishResetsForReuse) {
  PageWriter writer(64);
  ASSERT_TRUE(writer.Append("a"));
  writer.Finish();
  EXPECT_TRUE(writer.empty());
  ASSERT_TRUE(writer.Append("b"));
  std::string page = writer.Finish();
  PageReader reader(page);
  std::string_view rec;
  ASSERT_TRUE(reader.Next(&rec));
  EXPECT_EQ(rec, "b");
}

TEST(PageTest, BinaryContentSafe) {
  PageWriter writer(64);
  std::string binary("\x00\x01\xff\x00", 4);
  ASSERT_TRUE(writer.Append(binary));
  std::string page = writer.Finish();
  PageReader reader(page);
  std::string_view rec;
  ASSERT_TRUE(reader.Next(&rec));
  EXPECT_EQ(std::string(rec), binary);
}

template <typename StoreMaker>
void RunSpillStoreContractTests(StoreMaker make_store) {
  auto store = make_store();
  EXPECT_EQ(store->TotalRecordCount(), 0);
  EXPECT_TRUE(store->NonEmptyPartitions().empty());

  ASSERT_TRUE(store->AppendBatch(3, {"r1", "r2"}).ok());
  ASSERT_TRUE(store->AppendBatch(5, {"x"}).ok());
  ASSERT_TRUE(store->AppendBatch(3, {"r3"}).ok());

  EXPECT_EQ(store->PartitionRecordCount(3), 3);
  EXPECT_EQ(store->PartitionRecordCount(5), 1);
  EXPECT_EQ(store->PartitionRecordCount(99), 0);
  EXPECT_EQ(store->TotalRecordCount(), 4);
  EXPECT_EQ(store->NonEmptyPartitions(), (std::vector<int>{3, 5}));

  auto records = store->ReadPartition(3);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(*records, (std::vector<std::string>{"r1", "r2", "r3"}));

  // Reading does not consume.
  auto again = store->ReadPartition(3);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->size(), 3u);

  ASSERT_TRUE(store->ClearPartition(3).ok());
  EXPECT_EQ(store->PartitionRecordCount(3), 0);
  EXPECT_EQ(store->TotalRecordCount(), 1);

  auto empty = store->ReadPartition(3);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());

  EXPECT_GT(store->io_stats().pages_written, 0);
  EXPECT_GT(store->io_stats().pages_read, 0);
}

TEST(SimulatedDiskTest, SpillStoreContract) {
  RunSpillStoreContractTests(
      [] { return std::make_unique<SimulatedDisk>(); });
}

TEST(FileSpillStoreTest, SpillStoreContract) {
  RunSpillStoreContractTests([] {
    auto store = FileSpillStore::Open("/tmp/pjoin_spill_contract_test.bin");
    PJOIN_DCHECK(store.ok());
    return std::move(store).value();
  });
}

TEST(SimulatedDiskTest, ManyRecordsSpanPages) {
  SimulatedDiskOptions opts;
  opts.page_size = 64;
  SimulatedDisk disk(opts);
  std::vector<std::string> records;
  for (int i = 0; i < 100; ++i) records.push_back("record-" + std::to_string(i));
  ASSERT_TRUE(disk.AppendBatch(0, records).ok());
  EXPECT_GT(disk.io_stats().pages_written, 10);
  auto out = disk.ReadPartition(0);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, records);
}

TEST(SimulatedDiskTest, RecordLargerThanPageRejected) {
  SimulatedDiskOptions opts;
  opts.page_size = 32;
  SimulatedDisk disk(opts);
  Status s = disk.AppendBatch(0, {std::string(100, 'x')});
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(SimulatedDiskTest, LatencyAccounting) {
  SimulatedDiskOptions opts;
  opts.page_latency_micros = 250;
  SimulatedDisk disk(opts);
  ASSERT_TRUE(disk.AppendBatch(0, {"a"}).ok());
  EXPECT_EQ(disk.io_stats().simulated_latency_micros, 250);
  ASSERT_TRUE(disk.ReadPartition(0).ok());
  EXPECT_EQ(disk.io_stats().simulated_latency_micros, 500);
}

TEST(FileSpillStoreTest, OpenFailsForBadPath) {
  auto store = FileSpillStore::Open("/nonexistent-dir/spill.bin");
  ASSERT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kIOError);
}

TEST(FileSpillStoreTest, RemovesFileOnDestruction) {
  const char* path = "/tmp/pjoin_spill_cleanup_test.bin";
  {
    auto store = FileSpillStore::Open(path);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->AppendBatch(0, {"x"}).ok());
  }
  std::FILE* f = std::fopen(path, "rb");
  EXPECT_EQ(f, nullptr);
  if (f != nullptr) std::fclose(f);
}

// Regression: AppendBatch after Close must fail cleanly and, critically,
// must not inflate PartitionRecordCount. RecoveringSpillStore resumes a
// failed batch from PartitionRecordCount, so counting records whose page
// was never written would make the retry skip them (silent record loss).
TEST(FileSpillStoreTest, FailedAppendDoesNotInflateRecordCount) {
  auto store = FileSpillStore::Open("/tmp/pjoin_spill_atomic_test.bin");
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->AppendBatch(0, {"a", "b", "c"}).ok());
  EXPECT_EQ((*store)->PartitionRecordCount(0), 3);
  ASSERT_TRUE((*store)->Close().ok());

  const Status append = (*store)->AppendBatch(0, {"d", "e"});
  EXPECT_EQ(append.code(), StatusCode::kFailedPrecondition);
  // The failed batch contributed nothing to the watermark.
  EXPECT_EQ((*store)->PartitionRecordCount(0), 3);
  EXPECT_EQ((*store)->TotalRecordCount(), 3);
}

// Regression: ClearPartition used to leak the partition's pages — the file
// only ever grew, so a long-running join cycling spill → purge → spill
// (exactly what the SpillManager's early purge produces) ballooned the temp
// file without bound. Cleared pages must return to a free list and be
// reused before the file is extended.
TEST(FileSpillStoreTest, ClearReleasesPagesForReuse) {
  auto store = FileSpillStore::Open("/tmp/pjoin_spill_page_reuse_test.bin",
                                    /*page_size=*/128);
  ASSERT_TRUE(store.ok());
  std::vector<std::string> records;
  for (int i = 0; i < 32; ++i) records.push_back("record-" + std::to_string(i));

  ASSERT_TRUE((*store)->AppendBatch(0, records).ok());
  const int64_t high_water = (*store)->allocated_pages();
  ASSERT_GT(high_water, 1);

  for (int cycle = 0; cycle < 10; ++cycle) {
    ASSERT_TRUE((*store)->ClearPartition(0).ok());
    EXPECT_EQ((*store)->free_pages(), high_water);
    ASSERT_TRUE((*store)->AppendBatch(0, records).ok());
    // Every cycle reuses the reclaimed slots; the file never grows.
    EXPECT_EQ((*store)->allocated_pages(), high_water);
    EXPECT_EQ((*store)->free_pages(), 0);
  }
  auto out = (*store)->ReadPartition(0);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(*out, records);
}

// Regression: ReadPartition after Close used to dereference the null FILE*
// (a crash); it must return FailedPrecondition instead.
TEST(FileSpillStoreTest, ReadAfterCloseFailsCleanly) {
  auto store = FileSpillStore::Open("/tmp/pjoin_spill_read_closed_test.bin");
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->AppendBatch(2, {"r1", "r2"}).ok());
  ASSERT_TRUE((*store)->Close().ok());

  auto records = (*store)->ReadPartition(2);
  ASSERT_FALSE(records.ok());
  EXPECT_EQ(records.status().code(), StatusCode::kFailedPrecondition);
}

TEST(IoStatsTest, ToStringContainsFields) {
  IoStats stats;
  stats.pages_written = 3;
  std::string s = stats.ToString();
  EXPECT_NE(s.find("pages_written=3"), std::string::npos);
}

}  // namespace
}  // namespace pjoin
