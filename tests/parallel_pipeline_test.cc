// Equivalence tests for the partition-parallel pipeline: for every shard
// count the merged parallel output multiset must equal the single-threaded
// reference, across operators (PJoin / XJoin), seeds, punctuation densities
// and key skews.

#include "ops/parallel_pipeline.h"

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "gen/stream_generator.h"
#include "join/pjoin.h"
#include "join/xjoin.h"
#include "test_util.h"

namespace pjoin {
namespace {

using testing::ElementsBuilder;
using testing::KeyPunct;
using testing::KP;
using testing::KeyPayloadSchema;
using testing::ReferenceJoinRows;
using testing::RunJoin;
using testing::RunResult;

enum class Operator { kPJoin, kXJoin };

JoinOptions SmallStateOptions() {
  JoinOptions opts;
  opts.num_partitions = 8;
  opts.runtime.purge_threshold = 1;
  opts.runtime.memory_threshold_tuples = 64;
  opts.runtime.propagate_count_threshold = 1;
  return opts;
}

std::unique_ptr<JoinOperator> MakeJoin(Operator op, const SchemaPtr& left,
                                       const SchemaPtr& right,
                                       const JoinOptions& opts) {
  if (op == Operator::kPJoin) {
    return std::make_unique<PJoin>(left, right, opts);
  }
  return std::make_unique<XJoin>(left, right, opts);
}

/// Runs the parallel pipeline and returns the merged output in RunJoin's
/// canonicalization (sorted result rows + punctuations in emission order).
RunResult RunParallel(Operator op, const SchemaPtr& left_schema,
                      const SchemaPtr& right_schema, const JoinOptions& jopts,
                      const std::vector<StreamElement>& left,
                      const std::vector<StreamElement>& right,
                      ParallelPipelineOptions popts,
                      ParallelJoinPipeline** out_pipeline = nullptr) {
  static std::unique_ptr<ParallelJoinPipeline> last;  // keep alive for caller
  last = std::make_unique<ParallelJoinPipeline>(
      [&](int) { return MakeJoin(op, left_schema, right_schema, jopts); },
      popts);
  RunResult out;
  last->set_result_callback(
      [&out](const Tuple& t) { out.results.push_back(t.ToString()); });
  last->set_punct_callback(
      [&out](const Punctuation& p) { out.punctuations.push_back(p); });
  const Status st = last->Run(left, right);
  EXPECT_TRUE(st.ok()) << st.ToString();
  out.stalls = last->stalls_reported();
  std::sort(out.results.begin(), out.results.end());
  if (out_pipeline != nullptr) *out_pipeline = last.get();
  return out;
}

std::vector<std::string> SortedPunctStrings(const RunResult& r) {
  std::vector<std::string> out;
  out.reserve(r.punctuations.size());
  for (const Punctuation& p : r.punctuations) out.push_back(p.ToString());
  std::sort(out.begin(), out.end());
  return out;
}

struct Workload {
  std::string name;
  GeneratedStreams streams;
};

Workload MakeWorkload(const std::string& name, uint64_t seed,
                      double punct_rate, double zipf_s) {
  DomainSpec domain;
  domain.window_size = 16;
  StreamSpec spec;
  spec.num_tuples = 1200;
  spec.punct_mean_interarrival_tuples = punct_rate;
  spec.zipf_s = zipf_s;
  spec.flush_punctuations_at_end = true;
  return Workload{name, GenerateStreams(domain, spec, spec, seed)};
}

class ParallelEquivalenceTest : public ::testing::TestWithParam<Operator> {};

TEST_P(ParallelEquivalenceTest, MatchesReferenceAcrossSeedsAndShards) {
  const Operator op = GetParam();
  for (const uint64_t seed : {7u, 21u, 1234u}) {
    Workload w = MakeWorkload("uniform", seed, /*punct_rate=*/25.0,
                              /*zipf_s=*/0.0);
    const std::vector<std::string> reference = ReferenceJoinRows(
        w.streams.a, w.streams.b,
        MakeJoin(op, w.streams.schema_a, w.streams.schema_b, JoinOptions())
            ->output_schema(),
        0, 0);
    const JoinOptions jopts = SmallStateOptions();
    for (const int shards : {1, 2, 4}) {
      ParallelPipelineOptions popts;
      popts.num_shards = shards;
      popts.batch_size = 64;
      const RunResult got =
          RunParallel(op, w.streams.schema_a, w.streams.schema_b, jopts,
                      w.streams.a, w.streams.b, popts);
      EXPECT_EQ(got.results, reference)
          << "seed=" << seed << " shards=" << shards;
    }
  }
}

TEST_P(ParallelEquivalenceTest, PunctuationHeavyWorkload) {
  const Operator op = GetParam();
  Workload w = MakeWorkload("punct-heavy", /*seed=*/99,
                            /*punct_rate=*/4.0, /*zipf_s=*/0.0);
  const JoinOptions jopts = SmallStateOptions();
  // Single-threaded reference through the same operator configuration.
  auto ref_join =
      MakeJoin(op, w.streams.schema_a, w.streams.schema_b, jopts);
  const RunResult ref = RunJoin(ref_join.get(), w.streams.a, w.streams.b);
  for (const int shards : {2, 4}) {
    ParallelPipelineOptions popts;
    popts.num_shards = shards;
    const RunResult got =
        RunParallel(op, w.streams.schema_a, w.streams.schema_b, jopts,
                    w.streams.a, w.streams.b, popts);
    EXPECT_EQ(got.results, ref.results) << "shards=" << shards;
  }
}

TEST_P(ParallelEquivalenceTest, SkewedWorkload) {
  const Operator op = GetParam();
  Workload w = MakeWorkload("zipf", /*seed=*/5150, /*punct_rate=*/20.0,
                            /*zipf_s=*/1.2);
  const std::vector<std::string> reference = ReferenceJoinRows(
      w.streams.a, w.streams.b,
      MakeJoin(op, w.streams.schema_a, w.streams.schema_b, JoinOptions())
          ->output_schema(),
      0, 0);
  const JoinOptions jopts = SmallStateOptions();
  for (const int shards : {2, 4}) {
    ParallelPipelineOptions popts;
    popts.num_shards = shards;
    const RunResult got =
        RunParallel(op, w.streams.schema_a, w.streams.schema_b, jopts,
                    w.streams.a, w.streams.b, popts);
    EXPECT_EQ(got.results, reference) << "shards=" << shards;
  }
}

TEST_P(ParallelEquivalenceTest, ScanAndIndexedProbeAgree) {
  const Operator op = GetParam();
  Workload w = MakeWorkload("probe-mode", /*seed=*/31, /*punct_rate=*/30.0,
                            /*zipf_s=*/0.5);
  JoinOptions indexed = SmallStateOptions();
  JoinOptions scan = SmallStateOptions();
  scan.indexed_probe = false;
  ParallelPipelineOptions popts;
  popts.num_shards = 2;
  const RunResult with_index =
      RunParallel(op, w.streams.schema_a, w.streams.schema_b, indexed,
                  w.streams.a, w.streams.b, popts);
  const RunResult with_scan =
      RunParallel(op, w.streams.schema_a, w.streams.schema_b, scan,
                  w.streams.a, w.streams.b, popts);
  EXPECT_EQ(with_index.results, with_scan.results);
}

TEST_P(ParallelEquivalenceTest, BatchedAndElementDispatchAgree) {
  // ProcessBatch (columnar dispatch with pre-hashed keys) against the
  // per-element OnElement replay: same shards, same streams, the result
  // multiset and the released punctuations must be identical.
  const Operator op = GetParam();
  Workload w = MakeWorkload("dispatch-mode", /*seed=*/77, /*punct_rate=*/12.0,
                            /*zipf_s=*/0.8);
  const JoinOptions jopts = SmallStateOptions();
  for (const int shards : {1, 4}) {
    ParallelPipelineOptions batched;
    batched.num_shards = shards;
    batched.batched_probe = true;
    ParallelPipelineOptions element;
    element.num_shards = shards;
    element.batched_probe = false;
    const RunResult via_batch =
        RunParallel(op, w.streams.schema_a, w.streams.schema_b, jopts,
                    w.streams.a, w.streams.b, batched);
    const RunResult via_element =
        RunParallel(op, w.streams.schema_a, w.streams.schema_b, jopts,
                    w.streams.a, w.streams.b, element);
    EXPECT_EQ(via_batch.results, via_element.results) << "shards=" << shards;
    EXPECT_EQ(SortedPunctStrings(via_batch), SortedPunctStrings(via_element))
        << "shards=" << shards;
  }
}

INSTANTIATE_TEST_SUITE_P(Operators, ParallelEquivalenceTest,
                         ::testing::Values(Operator::kPJoin, Operator::kXJoin),
                         [](const ::testing::TestParamInfo<Operator>& info) {
                           return info.param == Operator::kPJoin ? "PJoin"
                                                                 : "XJoin";
                         });

// ---- PJoin-specific: punctuations and purge behavior ----

TEST(ParallelPJoinTest, PunctuationsReleasedOnceAndAfterCoveredResults) {
  const SchemaPtr schema = KeyPayloadSchema();
  ElementsBuilder left, right;
  for (int64_t k = 0; k < 6; ++k) {
    left.Tup(KP(schema, k, 10 + k)).Tup(KP(schema, k, 20 + k));
    right.Tup(KP(schema, k, 30 + k));
    left.Punct(KeyPunct(k));
    right.Punct(KeyPunct(k));
  }
  const std::vector<StreamElement> l = left.Finish();
  const std::vector<StreamElement> r = right.Finish();

  JoinOptions jopts = SmallStateOptions();
  auto ref_join = std::make_unique<PJoin>(schema, schema, jopts);
  const RunResult ref = RunJoin(ref_join.get(), l, r);

  for (const int shards : {1, 2, 4}) {
    ParallelPipelineOptions popts;
    popts.num_shards = shards;
    popts.batch_size = 4;
    ParallelJoinPipeline* pipeline = nullptr;
    const RunResult got = RunParallel(Operator::kPJoin, schema, schema, jopts,
                                      l, r, popts, &pipeline);
    EXPECT_EQ(got.results, ref.results) << "shards=" << shards;
    // The merge board must deduplicate the N shard-local emissions of each
    // output punctuation down to the single-threaded multiset.
    EXPECT_EQ(SortedPunctStrings(got), SortedPunctStrings(ref))
        << "shards=" << shards;
    // Every shard fully purged its state: all keys were punctuated on both
    // sides, so no shard may retain tuples the reference would have dropped.
    int64_t state = 0;
    for (const ShardStats& s : pipeline->shard_stats()) {
      state += s.state_tuples;
    }
    EXPECT_EQ(state, ref_join->total_state_tuples()) << "shards=" << shards;
  }
}

TEST(ParallelPJoinTest, EpochBarrierModeMatchesReference) {
  Workload w = MakeWorkload("barrier", /*seed=*/404, /*punct_rate=*/10.0,
                            /*zipf_s=*/0.0);
  const JoinOptions jopts = SmallStateOptions();
  auto ref_join =
      std::make_unique<PJoin>(w.streams.schema_a, w.streams.schema_b, jopts);
  const RunResult ref = RunJoin(ref_join.get(), w.streams.a, w.streams.b);

  ParallelPipelineOptions popts;
  popts.num_shards = 4;
  popts.punct_barrier = true;
  ParallelJoinPipeline* pipeline = nullptr;
  const RunResult got =
      RunParallel(Operator::kPJoin, w.streams.schema_a, w.streams.schema_b,
                  jopts, w.streams.a, w.streams.b, popts, &pipeline);
  EXPECT_EQ(got.results, ref.results);
  // One barrier per broadcast punctuation.
  EXPECT_EQ(pipeline->epoch_barriers(),
            w.streams.NumPunctuations(w.streams.a) +
                w.streams.NumPunctuations(w.streams.b));
}

TEST(ParallelPJoinTest, ShardStatsCoverAllRoutedElements) {
  Workload w = MakeWorkload("stats", /*seed=*/8, /*punct_rate=*/20.0,
                            /*zipf_s=*/0.0);
  const JoinOptions jopts = SmallStateOptions();
  ParallelPipelineOptions popts;
  popts.num_shards = 4;
  ParallelJoinPipeline* pipeline = nullptr;
  const RunResult got =
      RunParallel(Operator::kPJoin, w.streams.schema_a, w.streams.schema_b,
                  jopts, w.streams.a, w.streams.b, popts, &pipeline);
  (void)got;
  // Data tuples and constant-key punctuations are routed to exactly one
  // shard; non-constant punctuations and the two end-of-stream markers are
  // broadcast to every shard.
  int64_t expected_elements = 2 * popts.num_shards;  // the EOS broadcasts
  for (const auto* stream : {&w.streams.a, &w.streams.b}) {
    for (const StreamElement& e : *stream) {
      if (e.is_tuple()) {
        ++expected_elements;
      } else if (e.is_punctuation()) {
        expected_elements += e.punctuation().pattern(0).IsConstant()
                                 ? 1
                                 : popts.num_shards;
      }
    }
  }
  int64_t elements = 0;
  int64_t tuples = 0;
  int64_t results = 0;
  for (const ShardStats& s : pipeline->shard_stats()) {
    elements += s.elements;
    tuples += s.tuples;
    results += s.results;
  }
  EXPECT_EQ(elements, expected_elements);
  EXPECT_EQ(tuples, w.streams.NumTuples(w.streams.a) +
                        w.streams.NumTuples(w.streams.b));
  // The merged output saw every shard-emitted result exactly once.
  EXPECT_EQ(results, pipeline->results_emitted());
}

/// Listener whose HandleEvent always fails, for exercising dispatch-error
/// propagation in Run().
class FailingStatsListener : public EventListener {
 public:
  std::string_view name() const override { return "failing-stats"; }
  Status HandleEvent(const Event&) override {
    return Status::Internal("stats sink unavailable");
  }
};

// Regression: a failing kShardStats dispatch used to *replace* a shard's own
// join error (PJOIN_RETURN_NOT_OK on Dispatch ran after the shard scan).
// The shard error is the run's outcome; stats dispatch is bookkeeping.
TEST(ParallelPJoinTest, ShardErrorNotMaskedByFailingStatsDispatch) {
  SchemaPtr sa = KeyPayloadSchema("a");
  SchemaPtr sb = KeyPayloadSchema("b");
  JoinOptions jopts = SmallStateOptions();
  jopts.violation_policy = ViolationPolicy::kFail;
  // Key 1 arrives after its own punctuation: a contract violation that makes
  // the owning shard fail with FailedPrecondition under kFail.
  auto left = ElementsBuilder()
                  .Tup(KP(sa, 1, 0))
                  .Punct(KeyPunct(1))
                  .Tup(KP(sa, 1, 2))
                  .Finish();
  auto right = ElementsBuilder(/*step=*/10).Tup(KP(sb, 1, 9)).Finish();

  EventRegistry registry;
  FailingStatsListener listener;
  registry.Register(EventType::kShardStats, &listener);
  ParallelPipelineOptions popts;
  popts.num_shards = 2;
  popts.stats_registry = &registry;
  ParallelJoinPipeline pipeline(
      [&](int) { return std::make_unique<PJoin>(sa, sb, jopts); }, popts);
  const Status st = pipeline.Run(left, right);
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition) << st.ToString();
}

// With healthy shards, a failing stats dispatch is the only error and must
// surface (it is not swallowed either).
TEST(ParallelPJoinTest, StatsDispatchErrorSurfacesWhenShardsSucceed) {
  SchemaPtr sa = KeyPayloadSchema("a");
  SchemaPtr sb = KeyPayloadSchema("b");
  auto left = ElementsBuilder().Tup(KP(sa, 1, 0)).Finish();
  auto right = ElementsBuilder(/*step=*/10).Tup(KP(sb, 1, 9)).Finish();

  EventRegistry registry;
  FailingStatsListener listener;
  registry.Register(EventType::kShardStats, &listener);
  ParallelPipelineOptions popts;
  popts.num_shards = 2;
  popts.stats_registry = &registry;
  ParallelJoinPipeline pipeline(
      [&](int) {
        return std::make_unique<PJoin>(sa, sb, SmallStateOptions());
      },
      popts);
  const Status st = pipeline.Run(left, right);
  EXPECT_EQ(st.code(), StatusCode::kInternal) << st.ToString();
}

TEST(ParallelPJoinTest, SingleShardMatchesMergedCountersOfReference) {
  Workload w = MakeWorkload("one-shard", /*seed=*/77, /*punct_rate=*/15.0,
                            /*zipf_s=*/0.0);
  const JoinOptions jopts = SmallStateOptions();
  auto ref_join =
      std::make_unique<PJoin>(w.streams.schema_a, w.streams.schema_b, jopts);
  const RunResult ref = RunJoin(ref_join.get(), w.streams.a, w.streams.b);

  ParallelPipelineOptions popts;
  popts.num_shards = 1;
  ParallelJoinPipeline* pipeline = nullptr;
  const RunResult got =
      RunParallel(Operator::kPJoin, w.streams.schema_a, w.streams.schema_b,
                  jopts, w.streams.a, w.streams.b, popts, &pipeline);
  EXPECT_EQ(got.results, ref.results);
  // One shard sees the exact single-threaded element sequence, so the final
  // state must match the reference join's exactly.
  EXPECT_EQ(pipeline->shard_join(0)->total_state_tuples(),
            ref_join->total_state_tuples());
}

}  // namespace
}  // namespace pjoin
