#include <gtest/gtest.h>

#include "join/hash_state.h"
#include "join/tuple_entry.h"

namespace pjoin {
namespace {

SchemaPtr MixedSchema() {
  return Schema::Make({{"k", ValueType::kInt64},
                       {"s", ValueType::kString},
                       {"f", ValueType::kFloat64},
                       {"n", ValueType::kInt64}});
}

TEST(TupleEntryTest, SerializeRoundtrip) {
  SchemaPtr schema = MixedSchema();
  TupleEntry entry;
  entry.tuple = Tuple(schema, {Value(int64_t{42}), Value("hello world"),
                               Value(2.718), Value::Null()});
  entry.ats = 7;
  entry.dts = 99;
  entry.pid = 5;

  std::string record = entry.Serialize();
  auto back = TupleEntry::Deserialize(record, schema);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->ats, 7);
  EXPECT_EQ(back->dts, 99);
  EXPECT_EQ(back->pid, 5);
  EXPECT_EQ(back->tuple, entry.tuple);
  EXPECT_TRUE(back->tuple.field(3).is_null());
}

TEST(TupleEntryTest, DefaultsAreAlive) {
  TupleEntry entry;
  EXPECT_TRUE(entry.InMemory());
  EXPECT_EQ(entry.pid, kNullPid);
}

TEST(TupleEntryTest, DeserializeRejectsTruncated) {
  SchemaPtr schema = MixedSchema();
  TupleEntry entry;
  entry.tuple = Tuple(schema, {Value(int64_t{1}), Value("x"), Value(1.0),
                               Value(int64_t{2})});
  std::string record = entry.Serialize();
  auto bad = TupleEntry::Deserialize(
      std::string_view(record).substr(0, record.size() / 2), schema);
  EXPECT_FALSE(bad.ok());
  auto empty = TupleEntry::Deserialize("", schema);
  EXPECT_FALSE(empty.ok());
}

TEST(TupleEntryTest, DeserializeRejectsFieldCountMismatch) {
  SchemaPtr one = Schema::Make({{"a", ValueType::kInt64}});
  TupleEntry entry;
  entry.tuple = Tuple(one, {Value(int64_t{1})});
  std::string record = entry.Serialize();
  auto bad = TupleEntry::Deserialize(record, MixedSchema());
  EXPECT_FALSE(bad.ok());
}

TupleEntry E(int64_t ats, int64_t dts) {
  TupleEntry e;
  e.ats = ats;
  e.dts = dts;
  return e;
}

TEST(IntervalsOverlapTest, BothInMemoryAlwaysOverlap) {
  EXPECT_TRUE(IntervalsOverlap(E(1, kAliveDts), E(100, kAliveDts)));
}

TEST(IntervalsOverlapTest, DisjointIntervals) {
  // a left memory at 5, b arrived at 7: never co-resident.
  EXPECT_FALSE(IntervalsOverlap(E(1, 5), E(7, kAliveDts)));
  EXPECT_FALSE(IntervalsOverlap(E(7, kAliveDts), E(1, 5)));
}

TEST(IntervalsOverlapTest, TouchingBoundaryDoesNotOverlap) {
  // a left at exactly b's arrival tick: b probed memory without a.
  EXPECT_FALSE(IntervalsOverlap(E(1, 5), E(5, kAliveDts)));
}

TEST(IntervalsOverlapTest, ContainedInterval) {
  EXPECT_TRUE(IntervalsOverlap(E(1, 10), E(3, 5)));
}

TEST(JoinedBeforeTest, OverlapCounts) {
  std::vector<int64_t> none;
  EXPECT_TRUE(JoinedBefore(E(1, kAliveDts), none, E(2, kAliveDts), none));
}

TEST(JoinedBeforeTest, DiskProbeJoinsDiskAgainstMemory) {
  // a flushed at 5; probe of a's side at T=10; b has been in memory since 7.
  std::vector<int64_t> probes_a = {10};
  std::vector<int64_t> none;
  EXPECT_TRUE(JoinedBefore(E(1, 5), probes_a, E(7, kAliveDts), none));
  // b arrived after the probe: not joined.
  EXPECT_FALSE(JoinedBefore(E(1, 5), probes_a, E(11, kAliveDts), none));
  // a flushed only after the probe ran (and b arrived later still, so no
  // memory overlap either): not joined.
  std::vector<int64_t> early_probe = {4};
  EXPECT_FALSE(JoinedBefore(E(1, 5), early_probe, E(6, 7), none));
}

TEST(JoinedBeforeTest, ProbeRequiresOppositeInMemoryAtProbeTime) {
  // b was flushed at 8, probe at 10: b was NOT in memory then.
  std::vector<int64_t> probes_a = {10};
  std::vector<int64_t> none;
  EXPECT_FALSE(JoinedBefore(E(1, 5), probes_a, E(7, 8), none));
  // probe at 7: b in memory during [7(arrival)… wait b arrived 7, flushed 8.
  std::vector<int64_t> probes_mid = {7};
  EXPECT_TRUE(JoinedBefore(E(1, 5), probes_mid, E(7, 8), none));
}

TEST(JoinedBeforeTest, SymmetricProbeHistories) {
  // Probe of b's side disk at T=10: b on disk by 6, a in memory since 3.
  std::vector<int64_t> none;
  std::vector<int64_t> probes_b = {10};
  EXPECT_TRUE(JoinedBefore(E(3, kAliveDts), none, E(2, 6), probes_b));
}

}  // namespace
}  // namespace pjoin
