#include <gtest/gtest.h>
#include "join/pjoin.h"
#include "ops/pipeline.h"

#include "io/text_format.h"

namespace pjoin {
namespace {

TEST(SchemaSpecTest, ParseAndFormatRoundtrip) {
  auto schema = ParseSchemaSpec("key:int64, name:string ,score:float64");
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ((*schema)->num_fields(), 3u);
  EXPECT_EQ((*schema)->field(0).name, "key");
  EXPECT_EQ((*schema)->field(1).type, ValueType::kString);
  EXPECT_EQ(FormatSchemaSpec(**schema),
            "key:int64,name:string,score:float64");
}

TEST(SchemaSpecTest, Rejections) {
  EXPECT_FALSE(ParseSchemaSpec("").ok());
  EXPECT_FALSE(ParseSchemaSpec("keyint64").ok());
  EXPECT_FALSE(ParseSchemaSpec("key:int32").ok());
  EXPECT_FALSE(ParseSchemaSpec("key:int64,,x:string").ok());
}

TEST(ValueTextTest, Int64Roundtrip) {
  auto v = ParseValue("-42", ValueType::kInt64);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsInt64(), -42);
  EXPECT_EQ(FormatValue(*v), "-42");
  EXPECT_FALSE(ParseValue("4x", ValueType::kInt64).ok());
  EXPECT_FALSE(ParseValue("", ValueType::kInt64).ok());
}

TEST(ValueTextTest, Float64Roundtrip) {
  auto v = ParseValue("2.5", ValueType::kFloat64);
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->AsFloat64(), 2.5);
  auto back = ParseValue(FormatValue(*v), ValueType::kFloat64);
  ASSERT_TRUE(back.ok());
  EXPECT_DOUBLE_EQ(back->AsFloat64(), 2.5);
}

TEST(ValueTextTest, StringWithEscapesAndSeparators) {
  auto v = ParseValue("\"a,b\\\"c\"", ValueType::kString);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsString(), "a,b\"c");
  auto back = ParseValue(FormatValue(*v), ValueType::kString);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->AsString(), "a,b\"c");
  EXPECT_FALSE(ParseValue("unquoted", ValueType::kString).ok());
}

TEST(ValueTextTest, Null) {
  auto v = ParseValue("null", ValueType::kInt64);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_null());
  EXPECT_EQ(FormatValue(Value::Null()), "null");
}

TEST(PatternTextTest, AllKindsRoundtrip) {
  const char* tokens[] = {"*", "7", "[2..8]", "{1|3|5}", "()"};
  for (const char* token : tokens) {
    auto p = ParsePattern(token, ValueType::kInt64);
    ASSERT_TRUE(p.ok()) << token;
    auto back = ParsePattern(FormatPattern(*p), ValueType::kInt64);
    ASSERT_TRUE(back.ok()) << token;
    EXPECT_EQ(*p, *back) << token;
  }
  EXPECT_EQ(ParsePattern("7", ValueType::kInt64)->kind(),
            PatternKind::kConstant);
  EXPECT_EQ(ParsePattern("[2..8]", ValueType::kInt64)->kind(),
            PatternKind::kRange);
  EXPECT_EQ(ParsePattern("{1|3|5}", ValueType::kInt64)->kind(),
            PatternKind::kEnumList);
}

TEST(PatternTextTest, Rejections) {
  EXPECT_FALSE(ParsePattern("[2-8]", ValueType::kInt64).ok());
  EXPECT_FALSE(ParsePattern("{1|x}", ValueType::kInt64).ok());
}

TEST(TupleTextTest, Roundtrip) {
  auto schema = ParseSchemaSpec("key:int64,name:string,score:float64");
  ASSERT_TRUE(schema.ok());
  auto t = ParseTupleBody("5,\"bob, the builder\",0.5", *schema);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->field(0).AsInt64(), 5);
  EXPECT_EQ(t->field(1).AsString(), "bob, the builder");
  auto back = ParseTupleBody(FormatTupleBody(*t), *schema);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*t, *back);
}

TEST(TupleTextTest, FieldCountMismatch) {
  auto schema = ParseSchemaSpec("key:int64,x:int64");
  ASSERT_TRUE(schema.ok());
  EXPECT_FALSE(ParseTupleBody("1", *schema).ok());
  EXPECT_FALSE(ParseTupleBody("1,2,3", *schema).ok());
}

TEST(PunctuationTextTest, Roundtrip) {
  auto schema = ParseSchemaSpec("key:int64,x:int64");
  ASSERT_TRUE(schema.ok());
  auto p = ParsePunctuationBody("[10..20],*", **schema);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->pattern(0), Pattern::Range(Value(int64_t{10}),
                                          Value(int64_t{20})));
  EXPECT_TRUE(p->pattern(1).IsWildcard());
  auto back = ParsePunctuationBody(FormatPunctuationBody(*p), **schema);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*p, *back);
}

TEST(StreamTextTest, ParseFullStream) {
  auto schema = ParseSchemaSpec("key:int64,qty:int64");
  ASSERT_TRUE(schema.ok());
  const std::string text =
      "# demo stream\n"
      "t 1000 1,10\n"
      "\n"
      "t 2000 2,20\n"
      "p 3000 1,*\n";
  auto elements = ParseStreamText(text, *schema);
  ASSERT_TRUE(elements.ok());
  ASSERT_EQ(elements->size(), 4u);  // 2 tuples + punct + implicit EOS
  EXPECT_TRUE((*elements)[0].is_tuple());
  EXPECT_EQ((*elements)[0].arrival(), 1000);
  EXPECT_TRUE((*elements)[2].is_punctuation());
  EXPECT_TRUE((*elements)[3].is_end_of_stream());
  EXPECT_EQ((*elements)[3].arrival(), 3000);
}

TEST(StreamTextTest, FormatRoundtrip) {
  auto schema = ParseSchemaSpec("key:int64,qty:int64");
  ASSERT_TRUE(schema.ok());
  const std::string text =
      "t 1000 1,10\n"
      "p 3000 {1|2},*\n";
  auto elements = ParseStreamText(text, *schema);
  ASSERT_TRUE(elements.ok());
  EXPECT_EQ(FormatStreamText(*elements), text);
}

TEST(StreamTextTest, Rejections) {
  auto schema = ParseSchemaSpec("key:int64,qty:int64");
  ASSERT_TRUE(schema.ok());
  EXPECT_FALSE(ParseStreamText("x 1000 1,2\n", *schema).ok());
  EXPECT_FALSE(ParseStreamText("t abc 1,2\n", *schema).ok());
  EXPECT_FALSE(ParseStreamText("t 1000 1\n", *schema).ok());
}

TEST(StreamFileTest, WriteReadRoundtrip) {
  auto schema = ParseSchemaSpec("key:int64,qty:int64");
  ASSERT_TRUE(schema.ok());
  auto elements = ParseStreamText(
      "t 1000 1,10\nt 2000 2,20\np 2500 1,*\n", *schema);
  ASSERT_TRUE(elements.ok());
  const std::string path = "/tmp/pjoin_text_format_test.stream";
  ASSERT_TRUE(WriteStreamFile(path, *elements).ok());
  auto back = ReadStreamFile(path, *schema);
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back->size(), elements->size());
  for (size_t i = 0; i < back->size(); ++i) {
    EXPECT_EQ((*back)[i].ToString(), (*elements)[i].ToString());
  }
  std::remove(path.c_str());
}

TEST(StreamTextTest, EndToEndThroughPJoin) {
  // The CLI's flow as a library test: parse two textual streams, join them,
  // format the output, and check the exact text.
  auto left_schema = ParseSchemaSpec("key:int64,qty:int64");
  auto right_schema = ParseSchemaSpec("key:int64,w:int64");
  ASSERT_TRUE(left_schema.ok());
  ASSERT_TRUE(right_schema.ok());
  auto left = ParseStreamText("t 1000 1,10\np 3000 1,*\n", *left_schema);
  auto right = ParseStreamText("t 1500 1,100\np 4000 1,*\n", *right_schema);
  ASSERT_TRUE(left.ok());
  ASSERT_TRUE(right.ok());

  JoinOptions opts;
  opts.runtime.propagate_count_threshold = 1;
  PJoin join(*left_schema, *right_schema, opts);
  std::vector<StreamElement> output;
  int64_t seq = 0;
  join.set_result_callback([&](const Tuple& t) {
    output.push_back(StreamElement::MakeTuple(t, join.last_arrival(), seq++));
  });
  join.set_punct_callback([&](const Punctuation& p) {
    output.push_back(
        StreamElement::MakePunctuation(p, join.last_arrival(), seq++));
  });
  JoinPipeline pipe(&join, nullptr);
  ASSERT_TRUE(pipe.Run(*left, *right).ok());

  EXPECT_EQ(FormatStreamText(output),
            "t 1500 1,10,1,100\n"
            "p 4000 1,*,1,*\n"
            "p 4000 1,*,1,*\n");
}

TEST(StreamFileTest, MissingFileIsIOError) {
  auto schema = ParseSchemaSpec("key:int64");
  ASSERT_TRUE(schema.ok());
  auto r = ReadStreamFile("/nonexistent/nope.stream", *schema);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kIOError);
}

}  // namespace
}  // namespace pjoin
