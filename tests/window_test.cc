#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.h"
#include "test_util.h"
#include "window/window_pjoin.h"

namespace pjoin {
namespace {

using testing::KeyPayloadSchema;
using testing::KeyPunct;
using testing::KP;

StreamElement Tup(const SchemaPtr& s, int64_t key, int64_t payload,
                  TimeMicros at, int64_t seq = 0) {
  return StreamElement::MakeTuple(
      Tuple(s, {Value(key), Value(payload)}), at, seq);
}

class WindowPJoinTest : public ::testing::Test {
 protected:
  WindowPJoinTest() : sa_(KeyPayloadSchema("a")), sb_(KeyPayloadSchema("b")) {}

  WindowJoinOptions Opts(TimeMicros window) {
    WindowJoinOptions o;
    o.window_micros = window;
    return o;
  }

  SchemaPtr sa_;
  SchemaPtr sb_;
};

TEST_F(WindowPJoinTest, JoinsWithinWindowOnly) {
  WindowPJoin join(sa_, sb_, Opts(1000));
  int64_t results = 0;
  join.set_result_callback([&results](const Tuple&) { ++results; });
  ASSERT_TRUE(join.OnElement(0, Tup(sa_, 1, 10, 0)).ok());
  // Within window (Δ = 500).
  ASSERT_TRUE(join.OnElement(1, Tup(sb_, 1, 20, 500)).ok());
  EXPECT_EQ(results, 1);
  // Outside window relative to the left tuple (Δ = 2000), but within 1500
  // of the right tuple at 500: only pairs within the window count.
  ASSERT_TRUE(join.OnElement(0, Tup(sa_, 1, 11, 2000)).ok());
  EXPECT_EQ(results, 1);  // (11,20) has Δ=1500 > 1000 — expired
}

TEST_F(WindowPJoinTest, MatchesBruteForceSemantics) {
  // Random-ish deterministic scenario; compare against an O(n^2) reference
  // applying the |Δt| <= W rule.
  const TimeMicros W = 3000;
  std::vector<StreamElement> left;
  std::vector<StreamElement> right;
  int64_t seq = 0;
  for (int i = 0; i < 40; ++i) {
    left.push_back(Tup(sa_, i % 5, i, i * 700, seq++));
    right.push_back(Tup(sb_, i % 5, 100 + i, i * 700 + 350, seq++));
  }
  int64_t expected = 0;
  for (const auto& l : left) {
    for (const auto& r : right) {
      if (l.tuple().field(0) == r.tuple().field(0) &&
          std::abs(l.arrival() - r.arrival()) <= W) {
        ++expected;
      }
    }
  }
  WindowPJoin join(sa_, sb_, Opts(W));
  // Feed in global arrival order.
  size_t il = 0, ir = 0;
  while (il < left.size() || ir < right.size()) {
    if (ir >= right.size() ||
        (il < left.size() && left[il].arrival() <= right[ir].arrival())) {
      ASSERT_TRUE(join.OnElement(0, left[il++]).ok());
    } else {
      ASSERT_TRUE(join.OnElement(1, right[ir++]).ok());
    }
  }
  EXPECT_EQ(join.results_emitted(), expected);
}

TEST_F(WindowPJoinTest, WindowBoundsState) {
  WindowPJoin join(sa_, sb_, Opts(1000));
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(join.OnElement(0, Tup(sa_, i, i, i * 500)).ok());
    // Opposite arrivals drive expiry of the left state.
    ASSERT_TRUE(join.OnElement(1, Tup(sb_, i, i, i * 500 + 1)).ok());
  }
  // Window of 1000us at 500us spacing: ~3 live tuples per side.
  EXPECT_LT(join.state_tuples(), 12);
  EXPECT_GT(join.counters().Get("window_expired"), 150);
}

TEST_F(WindowPJoinTest, PunctuationPurgesBeforeExpiry) {
  WindowPJoin join(sa_, sb_, Opts(1000000));  // huge window
  ASSERT_TRUE(join.OnElement(0, Tup(sa_, 1, 0, 0)).ok());
  ASSERT_TRUE(join.OnElement(0, Tup(sa_, 2, 0, 10)).ok());
  EXPECT_EQ(join.state_tuples(0), 2);
  // A right punctuation for key 1 drops the left key-1 tuple long before
  // the window would.
  ASSERT_TRUE(join.OnElement(
                      1, StreamElement::MakePunctuation(KeyPunct(1), 20))
                  .ok());
  EXPECT_EQ(join.state_tuples(0), 1);
  EXPECT_EQ(join.counters().Get("punct_purged"), 1);
}

TEST_F(WindowPJoinTest, OnTheFlyDropWithPunctuations) {
  WindowPJoin join(sa_, sb_, Opts(1000000));
  ASSERT_TRUE(join.OnElement(
                      1, StreamElement::MakePunctuation(KeyPunct(5), 0))
                  .ok());
  ASSERT_TRUE(join.OnElement(0, Tup(sa_, 5, 0, 10)).ok());
  EXPECT_EQ(join.state_tuples(0), 0);
  EXPECT_EQ(join.counters().Get("otf_drops"), 1);
}

TEST_F(WindowPJoinTest, EarlyPropagation) {
  WindowPJoin join(sa_, sb_, Opts(1000000));
  std::vector<Punctuation> puncts;
  join.set_punct_callback(
      [&puncts](const Punctuation& p) { puncts.push_back(p); });
  // Left punct for a key with no left tuples: propagates immediately even
  // though the window is far from closing.
  ASSERT_TRUE(join.OnElement(
                      0, StreamElement::MakePunctuation(KeyPunct(9), 0))
                  .ok());
  ASSERT_EQ(puncts.size(), 1u);
  EXPECT_EQ(puncts[0].pattern(0), Pattern::Constant(Value(int64_t{9})));
}

TEST_F(WindowPJoinTest, PropagationWaitsForMatchingTuples) {
  WindowPJoin join(sa_, sb_, Opts(1000000));
  std::vector<Punctuation> puncts;
  join.set_punct_callback(
      [&puncts](const Punctuation& p) { puncts.push_back(p); });
  ASSERT_TRUE(join.OnElement(0, Tup(sa_, 9, 0, 0)).ok());
  ASSERT_TRUE(join.OnElement(
                      0, StreamElement::MakePunctuation(KeyPunct(9), 10))
                  .ok());
  EXPECT_TRUE(puncts.empty());
  // Right punctuation purges the left tuple -> left punct releases at the
  // next propagation opportunity (the purge path runs propagation for the
  // arriving punctuation's own stream; finish flushes the rest).
  ASSERT_TRUE(join.OnElement(
                      1, StreamElement::MakePunctuation(KeyPunct(9), 20))
                  .ok());
  ASSERT_TRUE(join.OnElement(0, StreamElement::MakeEndOfStream(30)).ok());
  ASSERT_TRUE(join.OnElement(1, StreamElement::MakeEndOfStream(30)).ok());
  EXPECT_GE(puncts.size(), 1u);
}

// Property sweep: window-join semantics vs brute force, with punctuations
// interleaved, across seeds and window lengths.
class WindowSemanticsSweep
    : public ::testing::TestWithParam<std::tuple<uint64_t, int64_t>> {};

TEST_P(WindowSemanticsSweep, MatchesBruteForceWithPunctuations) {
  const auto [seed, window_ms] = GetParam();
  const TimeMicros W = window_ms * kMicrosPerMilli;
  SchemaPtr sa = testing::KeyPayloadSchema("a");
  SchemaPtr sb = testing::KeyPayloadSchema("b");
  Rng rng(seed);

  // Per-stream open key sets so punctuations are sound per stream.
  std::vector<int64_t> open[2] = {{0, 1, 2, 3, 4}, {0, 1, 2, 3, 4}};
  std::vector<StreamElement> streams[2];
  TimeMicros now = 0;
  int64_t seq = 0;
  for (int i = 0; i < 150; ++i) {
    now += 1 + static_cast<TimeMicros>(rng.NextBounded(2000));
    const int side = static_cast<int>(rng.NextBounded(2));
    if (!open[side].empty() && rng.NextBool(0.9)) {
      const int64_t key = open[side][rng.NextBounded(open[side].size())];
      streams[side].push_back(StreamElement::MakeTuple(
          testing::KP(side == 0 ? sa : sb, key, i), now, seq++));
    } else if (open[side].size() > 1) {
      const size_t victim = rng.NextBounded(open[side].size());
      streams[side].push_back(StreamElement::MakePunctuation(
          testing::KeyPunct(open[side][victim]), now, seq++));
      open[side].erase(open[side].begin() +
                       static_cast<ptrdiff_t>(victim));
    }
  }
  streams[0].push_back(StreamElement::MakeEndOfStream(now, seq++));
  streams[1].push_back(StreamElement::MakeEndOfStream(now, seq++));

  // Brute-force reference: key-equal pairs within the window.
  int64_t expected = 0;
  for (const auto& l : streams[0]) {
    if (!l.is_tuple()) continue;
    for (const auto& r : streams[1]) {
      if (!r.is_tuple()) continue;
      if (l.tuple().field(0) == r.tuple().field(0) &&
          std::abs(l.arrival() - r.arrival()) <= W) {
        ++expected;
      }
    }
  }

  WindowJoinOptions opts;
  opts.window_micros = W;
  WindowPJoin join(sa, sb, opts);
  size_t idx[2] = {0, 0};
  while (idx[0] < streams[0].size() || idx[1] < streams[1].size()) {
    int side;
    if (idx[0] >= streams[0].size()) {
      side = 1;
    } else if (idx[1] >= streams[1].size()) {
      side = 0;
    } else {
      side = streams[0][idx[0]].arrival() <= streams[1][idx[1]].arrival()
                 ? 0
                 : 1;
    }
    ASSERT_TRUE(join.OnElement(side, streams[side][idx[side]++]).ok());
  }
  EXPECT_EQ(join.results_emitted(), expected)
      << "seed " << seed << " window " << window_ms << "ms";
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndWindows, WindowSemanticsSweep,
    ::testing::Combine(::testing::Values<uint64_t>(1, 2, 3, 4, 5, 6),
                       ::testing::Values<int64_t>(1, 10, 100, 100000)));

TEST_F(WindowPJoinTest, PunctuationsIgnoredWhenDisabled) {
  WindowJoinOptions opts;
  opts.window_micros = 1000000;
  opts.exploit_punctuations = false;
  WindowPJoin join(sa_, sb_, opts);
  ASSERT_TRUE(join.OnElement(0, Tup(sa_, 1, 0, 0)).ok());
  ASSERT_TRUE(join.OnElement(
                      1, StreamElement::MakePunctuation(KeyPunct(1), 10))
                  .ok());
  EXPECT_EQ(join.state_tuples(0), 1);  // nothing purged
}

}  // namespace
}  // namespace pjoin
