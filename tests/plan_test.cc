#include <gtest/gtest.h>

#include <algorithm>

#include "gen/auction.h"
#include "gen/stream_generator.h"
#include "join/nlj.h"
#include "plan/query_plan.h"
#include "test_util.h"

namespace pjoin {
namespace {

using testing::ElementsBuilder;
using testing::KeyPayloadSchema;
using testing::KP;

GeneratedStreams SmallStreams(uint64_t seed) {
  DomainSpec d;
  StreamSpec spec;
  spec.num_tuples = 300;
  spec.punct_mean_interarrival_tuples = 10;
  return GenerateStreams(d, spec, spec, seed);
}

TEST(QueryPlanTest, MinimalJoinPlan) {
  SchemaPtr sa = KeyPayloadSchema("a");
  SchemaPtr sb = KeyPayloadSchema("b");
  CollectorSink sink;
  QueryPlanBuilder builder;
  builder.Source(sa, ElementsBuilder().Tup(KP(sa, 1, 10)).Finish())
      .Source(sb, ElementsBuilder().Tup(KP(sb, 1, 20)).Finish())
      .PJoin()
      .CollectInto(&sink);
  auto plan = builder.Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_TRUE((*plan)->Run().ok());
  ASSERT_EQ(sink.tuples().size(), 1u);
  EXPECT_TRUE(sink.saw_end_of_stream());
}

TEST(QueryPlanTest, FullFig1ShapedPlan) {
  AuctionSpec spec;
  spec.num_bids = 2000;
  AuctionStreams streams = GenerateAuction(spec, 3);
  CollectorSink sink;
  QueryPlanBuilder builder;
  builder.Source(streams.open_schema, streams.open)
      .Source(streams.bid_schema, streams.bid)
      .PJoin([] {
        JoinOptions o;
        o.runtime.propagate_count_threshold = 2;
        return o;
      }());
  auto increase = builder.CurrentSchema()->IndexOf("increase");
  ASSERT_TRUE(increase.ok());
  builder.GroupBy(0, {{AggKind::kSum, increase.value(), "total"}},
                  /*group_aliases=*/{3})
      .CollectInto(&sink);
  auto plan = builder.Build();
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  std::string explain = (*plan)->Explain();
  EXPECT_NE(explain.find("pjoin"), std::string::npos);
  EXPECT_NE(explain.find("group-by"), std::string::npos);
  ASSERT_TRUE((*plan)->Run().ok());
  EXPECT_GT(sink.tuples().size(), 0u);
  EXPECT_GT(sink.punctuations().size(), 0u);
  EXPECT_GT((*plan)->join().results_emitted(), 0);
}

TEST(QueryPlanTest, FilterAndProjectCompose) {
  GeneratedStreams g = SmallStreams(5);
  CollectorSink sink;
  QueryPlanBuilder builder;
  builder.Source(g.schema_a, g.a)
      .Source(g.schema_b, g.b)
      .SymmetricHashJoin()
      .Filter([](const Tuple& t) { return t.field(0).AsInt64() % 2 == 0; })
      .Project({0, 1})
      .CollectInto(&sink);
  auto plan = builder.Build();
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE((*plan)->Run().ok());
  for (const Tuple& t : sink.tuples()) {
    EXPECT_EQ(t.num_fields(), 2u);
    EXPECT_EQ(t.field(0).AsInt64() % 2, 0);
  }
  EXPECT_GT(sink.tuples().size(), 0u);
}

TEST(QueryPlanTest, AllJoinAlgorithmsAgree) {
  GeneratedStreams g = SmallStreams(7);
  auto run = [&](auto add_join) {
    CollectorSink sink;
    QueryPlanBuilder builder;
    builder.Source(g.schema_a, g.a).Source(g.schema_b, g.b);
    add_join(builder);
    builder.StallGap(8000).CollectInto(&sink);
    auto plan = builder.Build();
    PJOIN_DCHECK(plan.ok());
    PJOIN_DCHECK((*plan)->Run().ok());
    std::vector<std::string> rows;
    for (const Tuple& t : sink.tuples()) rows.push_back(t.ToString());
    std::sort(rows.begin(), rows.end());
    return rows;
  };
  auto pjoin_rows = run([](QueryPlanBuilder& b) { b.PJoin(); });
  auto xjoin_rows = run([](QueryPlanBuilder& b) {
    JoinOptions o;
    o.runtime.memory_threshold_tuples = 32;
    b.XJoin(o);
  });
  auto shj_rows = run([](QueryPlanBuilder& b) { b.SymmetricHashJoin(); });
  EXPECT_EQ(pjoin_rows, xjoin_rows);
  EXPECT_EQ(pjoin_rows, shj_rows);
}

TEST(QueryPlanTest, BuildErrors) {
  SchemaPtr sa = KeyPayloadSchema("a");
  {
    QueryPlanBuilder builder;
    builder.Source(sa, {});
    EXPECT_FALSE(builder.Build().ok());  // one source, no join
  }
  {
    QueryPlanBuilder builder;
    builder.PJoin();  // join before sources
    EXPECT_FALSE(builder.Build().ok());
  }
  {
    QueryPlanBuilder builder;
    builder.Source(sa, {}).Source(sa, {}).PJoin().Project({99});
    auto plan = builder.Build();
    ASSERT_FALSE(plan.ok());
    EXPECT_EQ(plan.status().code(), StatusCode::kInvalidArgument);
  }
  {
    QueryPlanBuilder builder;
    builder.Source(sa, {}).Source(sa, {}).PJoin().PJoin();
    EXPECT_FALSE(builder.Build().ok());  // two joins
  }
}

TEST(NestedLoopReferenceTest, MatchesTestUtilReference) {
  GeneratedStreams g = SmallStreams(9);
  NestedLoopReferenceJoin nlj(g.schema_a, g.schema_b);
  auto run = testing::RunJoin(&nlj, g.a, g.b);
  EXPECT_EQ(run.results,
            testing::ReferenceJoinRows(g.a, g.b, nlj.output_schema(), 0, 0));
}

TEST(NestedLoopReferenceTest, EmitsOnlyAtFinish) {
  SchemaPtr sa = KeyPayloadSchema("a");
  SchemaPtr sb = KeyPayloadSchema("b");
  NestedLoopReferenceJoin nlj(sa, sb);
  int64_t results = 0;
  nlj.set_result_callback([&results](const Tuple&) { ++results; });
  ASSERT_TRUE(nlj.OnElement(0, StreamElement::MakeTuple(KP(sa, 1, 1), 1))
                  .ok());
  ASSERT_TRUE(nlj.OnElement(1, StreamElement::MakeTuple(KP(sb, 1, 2), 2))
                  .ok());
  EXPECT_EQ(results, 0);  // blocking: nothing until both EOS
  ASSERT_TRUE(nlj.OnElement(0, StreamElement::MakeEndOfStream(3)).ok());
  ASSERT_TRUE(nlj.OnElement(1, StreamElement::MakeEndOfStream(3)).ok());
  EXPECT_EQ(results, 1);
}

}  // namespace
}  // namespace pjoin
