#include <gtest/gtest.h>

#include "join/hash_state.h"
#include "storage/simulated_disk.h"

namespace pjoin {
namespace {

SchemaPtr KP() {
  return Schema::Make({{"key", ValueType::kInt64}, {"p", ValueType::kInt64}});
}

TupleEntry MakeEntry(const SchemaPtr& s, int64_t key, int64_t payload,
                     int64_t ats) {
  TupleEntry e;
  e.tuple = Tuple(s, {Value(key), Value(payload)});
  e.ats = ats;
  return e;
}

class HashStateTest : public ::testing::Test {
 protected:
  HashStateTest()
      : schema_(KP()),
        state_("test", schema_, 0, 4, std::make_unique<SimulatedDisk>()) {}

  SchemaPtr schema_;
  HashState state_;
};

TEST_F(HashStateTest, InsertAndAccounting) {
  EXPECT_EQ(state_.memory_tuples(), 0);
  state_.InsertMemory(MakeEntry(schema_, 1, 10, 1));
  state_.InsertMemory(MakeEntry(schema_, 2, 20, 2));
  EXPECT_EQ(state_.memory_tuples(), 2);
  EXPECT_EQ(state_.total_tuples(), 2);
  EXPECT_EQ(state_.disk_tuples(), 0);
}

TEST_F(HashStateTest, PartitionOfIsStableAndAligned) {
  const Value key(int64_t{7});
  EXPECT_EQ(state_.PartitionOf(key), state_.PartitionOf(key));
  EXPECT_LT(state_.PartitionOf(key), state_.num_partitions());
  EXPECT_GE(state_.PartitionOf(key), 0);
}

TEST_F(HashStateTest, InsertGoesToKeyPartition) {
  state_.InsertMemory(MakeEntry(schema_, 5, 0, 1));
  const int p = state_.PartitionOf(Value(int64_t{5}));
  ASSERT_EQ(state_.memory(p).size(), 1u);
  EXPECT_EQ(state_.KeyOf(state_.memory(p)[0].tuple).AsInt64(), 5);
}

TEST_F(HashStateTest, ExtractMemoryMatching) {
  for (int64_t i = 0; i < 10; ++i) {
    state_.InsertMemory(MakeEntry(schema_, 1, i, i));
  }
  const int p = state_.PartitionOf(Value(int64_t{1}));
  auto extracted = state_.ExtractMemoryMatching(p, [](const TupleEntry& e) {
    return e.tuple.field(1).AsInt64() % 2 == 0;
  });
  EXPECT_EQ(extracted.size(), 5u);
  EXPECT_EQ(state_.memory_tuples(), 5);
  // Kept entries preserve arrival order.
  const auto& mem = state_.memory(p);
  for (size_t i = 1; i < mem.size(); ++i) {
    EXPECT_LT(mem[i - 1].ats, mem[i].ats);
  }
}

TEST_F(HashStateTest, LargestMemoryPartition) {
  EXPECT_EQ(state_.LargestMemoryPartition(), -1);
  // Put 3 entries of one key, 1 of another.
  state_.InsertMemory(MakeEntry(schema_, 1, 0, 1));
  state_.InsertMemory(MakeEntry(schema_, 1, 1, 2));
  state_.InsertMemory(MakeEntry(schema_, 1, 2, 3));
  state_.InsertMemory(MakeEntry(schema_, 2, 0, 4));
  const int largest = state_.LargestMemoryPartition();
  EXPECT_EQ(largest, state_.PartitionOf(Value(int64_t{1})));
}

TEST_F(HashStateTest, FlushReadRoundtrip) {
  state_.InsertMemory(MakeEntry(schema_, 1, 10, 1));
  state_.InsertMemory(MakeEntry(schema_, 1, 11, 2));
  const int p = state_.PartitionOf(Value(int64_t{1}));
  ASSERT_TRUE(state_.FlushPartitionToDisk(p, 5).ok());
  EXPECT_EQ(state_.memory_tuples(), 0);
  EXPECT_EQ(state_.disk_tuples(), 2);
  EXPECT_EQ(state_.disk_tuples(p), 2);
  EXPECT_EQ(state_.total_tuples(), 2);
  EXPECT_TRUE(state_.has_unindexed_disk());  // flushed pid-null entries

  auto entries = state_.ReadDiskPartition(p);
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 2u);
  EXPECT_EQ((*entries)[0].dts, 5);
  EXPECT_EQ((*entries)[0].tuple.field(1).AsInt64(), 10);
  EXPECT_EQ((*entries)[1].tuple.field(1).AsInt64(), 11);
}

TEST_F(HashStateTest, FlushEmptyPartitionIsNoop) {
  ASSERT_TRUE(state_.FlushPartitionToDisk(0, 5).ok());
  EXPECT_EQ(state_.disk_tuples(), 0);
  EXPECT_FALSE(state_.has_unindexed_disk());
}

TEST_F(HashStateTest, FlushIndexedEntriesDoesNotMarkUnindexed) {
  TupleEntry e = MakeEntry(schema_, 1, 10, 1);
  e.pid = 3;
  const int p = state_.PartitionOf(Value(int64_t{1}));
  state_.InsertMemory(std::move(e));
  ASSERT_TRUE(state_.FlushPartitionToDisk(p, 5).ok());
  EXPECT_FALSE(state_.has_unindexed_disk());
}

TEST_F(HashStateTest, RewriteDiskPartition) {
  state_.InsertMemory(MakeEntry(schema_, 1, 10, 1));
  state_.InsertMemory(MakeEntry(schema_, 1, 11, 2));
  const int p = state_.PartitionOf(Value(int64_t{1}));
  ASSERT_TRUE(state_.FlushPartitionToDisk(p, 5).ok());
  auto entries = state_.ReadDiskPartition(p);
  ASSERT_TRUE(entries.ok());
  std::vector<TupleEntry> survivors = {std::move((*entries)[1])};
  ASSERT_TRUE(state_.RewriteDiskPartition(p, survivors).ok());
  EXPECT_EQ(state_.disk_tuples(p), 1);
  auto again = state_.ReadDiskPartition(p);
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again->size(), 1u);
  EXPECT_EQ((*again)[0].tuple.field(1).AsInt64(), 11);
  // Rewrite to empty clears.
  ASSERT_TRUE(state_.RewriteDiskPartition(p, {}).ok());
  EXPECT_EQ(state_.disk_tuples(), 0);
}

TEST_F(HashStateTest, PurgeBufferLifecycle) {
  TupleEntry e = MakeEntry(schema_, 1, 10, 1);
  e.dts = 2;
  state_.AddToPurgeBuffer(0, std::move(e));
  EXPECT_EQ(state_.purge_buffer_tuples(), 1);
  EXPECT_EQ(state_.total_tuples(), 1);
  EXPECT_EQ(state_.purge_buffer(0).size(), 1u);
  auto taken = state_.TakePurgeBuffer(0);
  EXPECT_EQ(taken.size(), 1u);
  EXPECT_EQ(state_.purge_buffer_tuples(), 0);
  EXPECT_TRUE(state_.purge_buffer(0).empty());
}

TEST_F(HashStateTest, MemoryBytesAccounting) {
  EXPECT_EQ(state_.memory_bytes(), 0);
  state_.InsertMemory(MakeEntry(schema_, 1, 10, 1));
  state_.InsertMemory(MakeEntry(schema_, 2, 20, 2));
  const int64_t two = state_.memory_bytes();
  EXPECT_GT(two, 0);
  // Flush removes the bytes of the flushed partition.
  const int p = state_.PartitionOf(Value(int64_t{1}));
  ASSERT_TRUE(state_.FlushPartitionToDisk(p, 5).ok());
  EXPECT_LT(state_.memory_bytes(), two);
  // Extraction removes the rest.
  const int p2 = state_.PartitionOf(Value(int64_t{2}));
  state_.ExtractMemoryMatching(p2, [](const TupleEntry&) { return true; });
  EXPECT_EQ(state_.memory_bytes(), 0);
}

TEST_F(HashStateTest, DescribeStateListsOccupiedPartitions) {
  state_.InsertMemory(MakeEntry(schema_, 1, 10, 1));
  TupleEntry buffered = MakeEntry(schema_, 2, 0, 2);
  buffered.dts = 3;
  state_.AddToPurgeBuffer(0, std::move(buffered));
  const std::string desc = state_.DescribeState();
  EXPECT_NE(desc.find("test state: 1 mem"), std::string::npos);
  EXPECT_NE(desc.find("partition"), std::string::npos);
  EXPECT_NE(desc.find("buffered=1"), std::string::npos);
}

TEST_F(HashStateTest, ProbeHistory) {
  EXPECT_TRUE(state_.probe_times(1).empty());
  state_.RecordProbe(1, 42);
  state_.RecordProbe(1, 50);
  EXPECT_EQ(state_.probe_times(1), (std::vector<int64_t>{42, 50}));
  EXPECT_TRUE(state_.probe_times(2).empty());
}

}  // namespace
}  // namespace pjoin
