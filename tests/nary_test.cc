#include <gtest/gtest.h>

#include "common/rng.h"
#include "nary/nary_pjoin.h"
#include "test_util.h"

namespace pjoin {
namespace {

using testing::KeyPayloadSchema;
using testing::KeyPunct;
using testing::KP;

class NaryPJoinTest : public ::testing::Test {
 protected:
  NaryPJoinTest() {
    schemas_ = {KeyPayloadSchema("a"), KeyPayloadSchema("b"),
                KeyPayloadSchema("c")};
  }

  std::unique_ptr<NaryPJoin> MakeJoin(NaryJoinOptions opts = {}) {
    if (opts.key_indexes.empty()) opts.key_indexes = {0, 0, 0};
    return std::make_unique<NaryPJoin>(schemas_, std::move(opts));
  }

  StreamElement Tup(int stream, int64_t key, int64_t payload,
                    TimeMicros at = 0) {
    return StreamElement::MakeTuple(
        KP(schemas_[static_cast<size_t>(stream)], key, payload), at, 0);
  }

  std::vector<SchemaPtr> schemas_;
};

TEST_F(NaryPJoinTest, ThreeWayJoinProducesAllCombinations) {
  auto join = MakeJoin();
  int64_t results = 0;
  join->set_result_callback([&results](const Tuple& t) {
    ++results;
    EXPECT_EQ(t.num_fields(), 6u);
    // All three key columns equal.
    EXPECT_EQ(t.field(0), t.field(2));
    EXPECT_EQ(t.field(0), t.field(4));
  });
  // 2 x 3 x 2 tuples with key 7 -> 12 results.
  ASSERT_TRUE(join->OnElement(0, Tup(0, 7, 1)).ok());
  ASSERT_TRUE(join->OnElement(0, Tup(0, 7, 2)).ok());
  ASSERT_TRUE(join->OnElement(1, Tup(1, 7, 3)).ok());
  ASSERT_TRUE(join->OnElement(1, Tup(1, 7, 4)).ok());
  ASSERT_TRUE(join->OnElement(1, Tup(1, 7, 5)).ok());
  ASSERT_TRUE(join->OnElement(2, Tup(2, 7, 6)).ok());
  ASSERT_TRUE(join->OnElement(2, Tup(2, 7, 7)).ok());
  EXPECT_EQ(results, 12);
  EXPECT_EQ(join->results_emitted(), 12);
}

TEST_F(NaryPJoinTest, NoResultWithoutAllStreams) {
  auto join = MakeJoin();
  ASSERT_TRUE(join->OnElement(0, Tup(0, 1, 0)).ok());
  ASSERT_TRUE(join->OnElement(1, Tup(1, 1, 0)).ok());
  // Stream 2 never delivers key 1.
  ASSERT_TRUE(join->OnElement(2, Tup(2, 9, 0)).ok());
  EXPECT_EQ(join->results_emitted(), 0);
}

TEST_F(NaryPJoinTest, MatchesBruteForceOnRandomInput) {
  auto join = MakeJoin();
  std::vector<std::vector<int64_t>> keys(3);
  Rng rng(55);
  for (int s = 0; s < 3; ++s) {
    for (int i = 0; i < 30; ++i) {
      keys[static_cast<size_t>(s)].push_back(
          static_cast<int64_t>(rng.NextBounded(6)));
    }
  }
  // Feed round-robin.
  for (int i = 0; i < 30; ++i) {
    for (int s = 0; s < 3; ++s) {
      ASSERT_TRUE(
          join->OnElement(s, Tup(s, keys[static_cast<size_t>(s)]
                                        [static_cast<size_t>(i)],
                                 i))
              .ok());
    }
  }
  int64_t expected = 0;
  for (int64_t ka : keys[0]) {
    for (int64_t kb : keys[1]) {
      for (int64_t kc : keys[2]) {
        if (ka == kb && kb == kc) ++expected;
      }
    }
  }
  EXPECT_EQ(join->results_emitted(), expected);
}

TEST_F(NaryPJoinTest, PurgeRequiresCoverageByAllOtherStreams) {
  auto join = MakeJoin();
  ASSERT_TRUE(join->OnElement(0, Tup(0, 1, 0)).ok());
  EXPECT_EQ(join->state_tuples(0), 1);
  // Punct from stream 1 alone cannot purge stream 0 (stream 2 may still
  // deliver key 1, requiring the stream-0 tuple).
  ASSERT_TRUE(join->OnElement(1, StreamElement::MakePunctuation(
                                     KeyPunct(1), 10))
                  .ok());
  EXPECT_EQ(join->state_tuples(0), 1);
  // Once stream 2 also punctuates key 1, the stream-0 tuple is unreachable.
  ASSERT_TRUE(join->OnElement(2, StreamElement::MakePunctuation(
                                     KeyPunct(1), 20))
                  .ok());
  EXPECT_EQ(join->state_tuples(0), 0);
  EXPECT_GT(join->counters().Get("purged_tuples"), 0);
}

TEST_F(NaryPJoinTest, OnTheFlyDropWhenCoveredByAllOthers) {
  auto join = MakeJoin();
  ASSERT_TRUE(join->OnElement(1, StreamElement::MakePunctuation(
                                     KeyPunct(5), 0))
                  .ok());
  ASSERT_TRUE(join->OnElement(2, StreamElement::MakePunctuation(
                                     KeyPunct(5), 1))
                  .ok());
  ASSERT_TRUE(join->OnElement(0, Tup(0, 5, 0, 2)).ok());
  EXPECT_EQ(join->state_tuples(0), 0);
  EXPECT_EQ(join->counters().Get("otf_drops"), 1);
}

TEST_F(NaryPJoinTest, PropagatesWhenOwnStateDrains) {
  auto join = MakeJoin();
  std::vector<Punctuation> puncts;
  join->set_punct_callback(
      [&puncts](const Punctuation& p) { puncts.push_back(p); });
  // Stream 0 punctuates a key it never sent: propagable at once.
  ASSERT_TRUE(join->OnElement(0, StreamElement::MakePunctuation(
                                     KeyPunct(3), 0))
                  .ok());
  ASSERT_EQ(puncts.size(), 1u);
  // Key pattern lands on every stream's key column of the output schema.
  EXPECT_EQ(puncts[0].pattern(0), Pattern::Constant(Value(int64_t{3})));
  EXPECT_EQ(puncts[0].pattern(2), Pattern::Constant(Value(int64_t{3})));
  EXPECT_EQ(puncts[0].pattern(4), Pattern::Constant(Value(int64_t{3})));
}

TEST_F(NaryPJoinTest, PropagationBlockedByOwnTuples) {
  auto join = MakeJoin();
  std::vector<Punctuation> puncts;
  join->set_punct_callback(
      [&puncts](const Punctuation& p) { puncts.push_back(p); });
  ASSERT_TRUE(join->OnElement(0, Tup(0, 3, 0)).ok());
  ASSERT_TRUE(join->OnElement(0, StreamElement::MakePunctuation(
                                     KeyPunct(3), 10))
                  .ok());
  EXPECT_TRUE(puncts.empty());
}

TEST_F(NaryPJoinTest, OutputSchemaDisambiguatesNames) {
  auto join = MakeJoin();
  const SchemaPtr& out = join->output_schema();
  ASSERT_EQ(out->num_fields(), 6u);
  EXPECT_EQ(out->field(0).name, "key");
  EXPECT_EQ(out->field(2).name, "key_s1");
  EXPECT_EQ(out->field(4).name, "key_s2");
}

TEST_F(NaryPJoinTest, EndOfStreamFinishPropagates) {
  auto join = MakeJoin();
  std::vector<Punctuation> puncts;
  join->set_punct_callback(
      [&puncts](const Punctuation& p) { puncts.push_back(p); });
  ASSERT_TRUE(join->OnElement(0, Tup(0, 3, 0)).ok());
  ASSERT_TRUE(join->OnElement(0, StreamElement::MakePunctuation(
                                     KeyPunct(3), 10))
                  .ok());
  // Streams 1 and 2 punctuate key 3 -> stream 0 tuple purged.
  ASSERT_TRUE(join->OnElement(1, StreamElement::MakePunctuation(
                                     KeyPunct(3), 20))
                  .ok());
  ASSERT_TRUE(join->OnElement(2, StreamElement::MakePunctuation(
                                     KeyPunct(3), 30))
                  .ok());
  for (int s = 0; s < 3; ++s) {
    ASSERT_TRUE(join->OnElement(s, StreamElement::MakeEndOfStream(40)).ok());
  }
  // All three streams' punctuations for key 3 eventually propagate.
  EXPECT_EQ(puncts.size(), 3u);
}

}  // namespace
}  // namespace pjoin
