// Tests for punctuation index building and propagation (paper §3.5),
// including the Theorem 1 safety property.

#include <gtest/gtest.h>

#include "gen/stream_generator.h"
#include "join/pjoin.h"
#include "test_util.h"

namespace pjoin {
namespace {

using testing::ElementsBuilder;
using testing::KeyPayloadSchema;
using testing::KeyPunct;
using testing::KP;
using testing::RunJoin;

JoinOptions PropagateEveryPunct() {
  JoinOptions opts;
  opts.runtime.propagate_count_threshold = 1;
  return opts;
}

TEST(PropagationTest, PunctuationForNeverSeenKeyPropagatesImmediately) {
  SchemaPtr sa = KeyPayloadSchema("a");
  SchemaPtr sb = KeyPayloadSchema("b");
  auto left = ElementsBuilder().Punct(KeyPunct(42)).Finish();
  PJoin join(sa, sb, PropagateEveryPunct());
  auto run = RunJoin(&join, left, ElementsBuilder().Finish());
  ASSERT_EQ(run.punctuations.size(), 1u);
  // Output punctuation constrains the left key and transfers it to the
  // right key column (equi-join).
  const Punctuation& p = run.punctuations[0];
  EXPECT_EQ(p.pattern(0), Pattern::Constant(Value(int64_t{42})));
  EXPECT_EQ(p.pattern(2), Pattern::Constant(Value(int64_t{42})));
  EXPECT_TRUE(p.pattern(1).IsWildcard());
  EXPECT_TRUE(p.pattern(3).IsWildcard());
}

TEST(PropagationTest, HeldBackWhileMatchingTupleInState) {
  SchemaPtr sa = KeyPayloadSchema("a");
  SchemaPtr sb = KeyPayloadSchema("b");
  // Left punct for key 1 cannot propagate while a left key-1 tuple remains
  // (it could still join future right tuples).
  auto left = ElementsBuilder()
                  .Tup(KP(sa, 1, 0))
                  .Punct(KeyPunct(1))
                  .Finish();
  JoinOptions opts = PropagateEveryPunct();
  opts.propagate_on_finish = false;
  PJoin join(sa, sb, opts);
  auto run = RunJoin(&join, left, ElementsBuilder().Finish());
  EXPECT_TRUE(run.punctuations.empty());
  EXPECT_EQ(join.punct_set(0).size(), 1u);
}

TEST(PropagationTest, ReleasedOncePurgeDrainsMatchingTuples) {
  SchemaPtr sa = KeyPayloadSchema("a");
  SchemaPtr sb = KeyPayloadSchema("b");
  // Left: tuple key 1, then punct key 1. Right: punct key 1 (purges the left
  // tuple) -> left punct becomes propagable.
  auto left = ElementsBuilder()
                  .Tup(KP(sa, 1, 0))
                  .Punct(KeyPunct(1))
                  .Finish();
  auto right = ElementsBuilder(/*step=*/10000).Punct(KeyPunct(1)).Finish();
  PJoin join(sa, sb, PropagateEveryPunct());
  auto run = RunJoin(&join, left, right);
  // Both input punctuations propagate: the left one (state drained by the
  // right punctuation's purge) and the right one (no right tuples at all).
  EXPECT_EQ(run.punctuations.size(), 2u);
  EXPECT_TRUE(join.punct_set(0).empty());
  EXPECT_TRUE(join.punct_set(1).empty());
}

TEST(PropagationTest, Theorem1NoResultAfterPropagatedPunct) {
  // Property check over a full generated run: once PJoin emits an output
  // punctuation, no later result tuple may match it.
  DomainSpec d;
  d.window_size = 8;
  StreamSpec spec;
  spec.num_tuples = 600;
  spec.punct_mean_interarrival_tuples = 10;
  spec.flush_punctuations_at_end = true;
  GeneratedStreams g = GenerateStreams(d, spec, spec, 5);

  JoinOptions opts = PropagateEveryPunct();
  PJoin join(g.schema_a, g.schema_b, opts);

  std::vector<Punctuation> emitted;
  Status violation = Status::OK();
  join.set_punct_callback(
      [&emitted](const Punctuation& p) { emitted.push_back(p); });
  join.set_result_callback([&](const Tuple& t) {
    for (const Punctuation& p : emitted) {
      if (p.Matches(t)) {
        violation = Status::Internal("result " + t.ToString() +
                                     " violates emitted punctuation " +
                                     p.ToString());
        return;
      }
    }
  });
  JoinPipeline pipe(&join, nullptr);
  ASSERT_TRUE(pipe.Run(g.a, g.b).ok());
  EXPECT_TRUE(violation.ok()) << violation.ToString();
  EXPECT_GT(emitted.size(), 20u);
}

TEST(PropagationTest, OverlapGateBlocksLaterContainingPunct) {
  SchemaPtr sa = KeyPayloadSchema("a");
  SchemaPtr sb = KeyPayloadSchema("b");
  // Left tuple key 3. Left punct {3} arrives (blocked: tuple in state).
  // Left punct [0,5] arrives later; it contains {3}. Although no tuple was
  // ever *indexed* to [0,5], it must not propagate while {3} is blocked —
  // the key-3 tuple matches it.
  auto left = ElementsBuilder()
                  .Tup(KP(sa, 3, 0))
                  .Punct(KeyPunct(3))
                  .Punct(Punctuation::ForAttribute(
                      2, 0,
                      Pattern::Range(Value(int64_t{0}), Value(int64_t{5}))))
                  .Finish();
  JoinOptions opts = PropagateEveryPunct();
  opts.propagate_on_finish = false;
  PJoin join(sa, sb, opts);
  auto run = RunJoin(&join, left, ElementsBuilder().Finish());
  EXPECT_TRUE(run.punctuations.empty());
  EXPECT_EQ(join.punct_set(0).size(), 2u);
}

TEST(PropagationTest, DisjointPunctNotBlockedByEarlierHeldPunct) {
  SchemaPtr sa = KeyPayloadSchema("a");
  SchemaPtr sb = KeyPayloadSchema("b");
  // Punct {3} is blocked by a key-3 tuple; punct {7} (no key-7 tuples) is
  // disjoint and must still propagate.
  auto left = ElementsBuilder()
                  .Tup(KP(sa, 3, 0))
                  .Punct(KeyPunct(3))
                  .Punct(KeyPunct(7))
                  .Finish();
  JoinOptions opts = PropagateEveryPunct();
  opts.propagate_on_finish = false;
  PJoin join(sa, sb, opts);
  auto run = RunJoin(&join, left, ElementsBuilder().Finish());
  ASSERT_EQ(run.punctuations.size(), 1u);
  EXPECT_EQ(run.punctuations[0].pattern(0),
            Pattern::Constant(Value(int64_t{7})));
}

TEST(PropagationTest, EagerAndLazyIndexBuildAgree) {
  DomainSpec d;
  StreamSpec spec;
  spec.num_tuples = 400;
  spec.punct_mean_interarrival_tuples = 12;
  spec.flush_punctuations_at_end = true;
  GeneratedStreams g = GenerateStreams(d, spec, spec, 23);

  auto run_with = [&](bool eager) {
    JoinOptions opts = PropagateEveryPunct();
    opts.eager_index_build = eager;
    PJoin join(g.schema_a, g.schema_b, opts);
    auto run = RunJoin(&join, g.a, g.b);
    return std::make_pair(run.results, run.punctuations.size());
  };
  auto [eager_results, eager_puncts] = run_with(true);
  auto [lazy_results, lazy_puncts] = run_with(false);
  EXPECT_EQ(eager_results, lazy_results);
  EXPECT_EQ(eager_puncts, lazy_puncts);
}

TEST(PropagationTest, EagerPropagationReleasesAtPurgeTime) {
  SchemaPtr sa = KeyPayloadSchema("a");
  SchemaPtr sb = KeyPayloadSchema("b");
  JoinOptions opts;
  opts.runtime.purge_threshold = 1;
  opts.eager_index_build = true;
  opts.eager_propagation = true;
  opts.propagate_on_finish = false;  // make eager release observable
  PJoin join(sa, sb, opts);
  std::vector<Punctuation> puncts;
  join.set_punct_callback(
      [&puncts](const Punctuation& p) { puncts.push_back(p); });

  // Left tuple + left punct for key 1: held (tuple in state).
  ASSERT_TRUE(join.OnElement(0, StreamElement::MakeTuple(KP(sa, 1, 0), 1000))
                  .ok());
  ASSERT_TRUE(join.OnElement(
                      0, StreamElement::MakePunctuation(KeyPunct(1), 2000))
                  .ok());
  EXPECT_TRUE(puncts.empty());
  // Right punct for key 1 purges the left tuple; the eager propagation
  // releases the left punctuation within the same arrival — no later push
  // or pull trigger needed.
  ASSERT_TRUE(join.OnElement(
                      1, StreamElement::MakePunctuation(KeyPunct(1), 3000))
                  .ok());
  EXPECT_EQ(puncts.size(), 2u);  // left punct + right punct (empty state)
}

TEST(PropagationTest, PullModePropagatesOnRequest) {
  SchemaPtr sa = KeyPayloadSchema("a");
  SchemaPtr sb = KeyPayloadSchema("b");
  JoinOptions opts;  // no push triggers
  opts.propagate_on_finish = false;
  PJoin join(sa, sb, opts);
  std::vector<Punctuation> puncts;
  join.set_punct_callback(
      [&puncts](const Punctuation& p) { puncts.push_back(p); });

  ASSERT_TRUE(join.OnElement(0, StreamElement::MakePunctuation(
                                    KeyPunct(9), 1000, 0))
                  .ok());
  EXPECT_TRUE(puncts.empty());  // nothing propagates without a trigger
  ASSERT_TRUE(join.RequestPropagation().ok());
  EXPECT_EQ(puncts.size(), 1u);
}

TEST(PropagationTest, TimeThresholdTriggersPropagation) {
  SchemaPtr sa = KeyPayloadSchema("a");
  SchemaPtr sb = KeyPayloadSchema("b");
  JoinOptions opts;
  opts.runtime.propagate_time_threshold = 5000;  // 5 ms of stream time
  opts.propagate_on_finish = false;
  PJoin join(sa, sb, opts);
  std::vector<Punctuation> puncts;
  join.set_punct_callback(
      [&puncts](const Punctuation& p) { puncts.push_back(p); });

  ASSERT_TRUE(join.OnElement(0, StreamElement::MakePunctuation(
                                    KeyPunct(9), 1000, 0))
                  .ok());
  EXPECT_TRUE(puncts.empty());
  // A later tuple advances stream time past the threshold.
  ASSERT_TRUE(join.OnElement(1, StreamElement::MakeTuple(
                                    KP(sb, 1, 0), 7000, 0))
                  .ok());
  EXPECT_EQ(puncts.size(), 1u);
}

TEST(PropagationTest, SpilledTuplesBlockPropagationUntilDiskJoin) {
  SchemaPtr sa = KeyPayloadSchema("a");
  SchemaPtr sb = KeyPayloadSchema("b");
  JoinOptions opts;
  opts.runtime.memory_threshold_tuples = 4;
  opts.runtime.propagate_count_threshold = 1;
  opts.propagate_on_finish = false;
  PJoin join(sa, sb, opts);
  std::vector<Punctuation> puncts;
  join.set_punct_callback(
      [&puncts](const Punctuation& p) { puncts.push_back(p); });

  // 8 left tuples with key 1: some spill to disk (pid unassigned there).
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(join.OnElement(0, StreamElement::MakeTuple(
                                      KP(sa, 1, i), 1000 * (i + 1), i))
                    .ok());
  }
  ASSERT_GT(join.state(0).disk_tuples(), 0);
  // Left punct for key 1: must NOT propagate (8 tuples in state, some on
  // disk). The propagation trigger forces a disk pass to index them.
  ASSERT_TRUE(join.OnElement(0, StreamElement::MakePunctuation(
                                    KeyPunct(1), 20000, 8))
                  .ok());
  EXPECT_TRUE(puncts.empty());
  EXPECT_FALSE(join.state(0).has_unindexed_disk());  // pass ran
  // The punctuation's count now reflects every key-1 tuple incl. disk.
  const PunctEntry* entry = join.punct_set(0).Find(0);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->match_count, 8);
}

}  // namespace
}  // namespace pjoin
