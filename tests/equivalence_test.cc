// The library's central correctness property (DESIGN.md invariant 1):
// for any generated punctuated input, SHJ, XJoin (any memory threshold) and
// PJoin (any purge / propagation configuration) produce exactly the
// reference nested-loop result multiset — no missing pairs, no duplicates.

#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.h"
#include "gen/stream_generator.h"
#include "join/pjoin.h"
#include "join/shj.h"
#include "join/xjoin.h"
#include "storage/file_spill_store.h"
#include "test_util.h"

namespace pjoin {
namespace {

using testing::ReferenceJoinRows;
using testing::RunJoin;

struct Scenario {
  int64_t num_tuples;
  double punct_a;
  double punct_b;
  int64_t window;
  PunctStyle style;
  uint64_t seed;
  bool clustered = false;
  double zipf_s = 0.0;
};

GeneratedStreams Generate(const Scenario& sc) {
  DomainSpec d;
  d.window_size = sc.window;
  StreamSpec a;
  a.num_tuples = sc.num_tuples;
  a.punct_mean_interarrival_tuples = sc.punct_a;
  a.punct_style = sc.style;
  a.punct_batch = sc.style == PunctStyle::kConstant ? 1 : 3;
  a.clustered = sc.clustered;
  a.zipf_s = sc.zipf_s;
  StreamSpec b = a;
  b.punct_mean_interarrival_tuples = sc.punct_b;
  return GenerateStreams(d, a, b, sc.seed);
}

class EquivalenceSweep
    : public ::testing::TestWithParam<std::tuple<int, int64_t, int64_t>> {};

TEST_P(EquivalenceSweep, AllJoinsMatchReference) {
  const auto [scenario_idx, purge_threshold, memory_threshold] = GetParam();
  static const Scenario kScenarios[] = {
      // symmetric, constant punctuations
      {400, 10, 10, 8, PunctStyle::kConstant, 101},
      // asymmetric rates
      {400, 10, 40, 8, PunctStyle::kConstant, 202},
      // range punctuations
      {400, 15, 15, 10, PunctStyle::kRange, 303},
      // enum punctuations, sparse
      {400, 30, 30, 6, PunctStyle::kEnumList, 404},
      // clustered (k-constraint) arrival
      {400, 12, 12, 8, PunctStyle::kConstant, 505, /*clustered=*/true},
      // Zipf-skewed keys
      {400, 12, 12, 8, PunctStyle::kConstant, 606, /*clustered=*/false,
       /*zipf_s=*/1.2},
  };
  const Scenario& sc = kScenarios[scenario_idx];
  GeneratedStreams g = Generate(sc);

  // Reference.
  SymmetricHashJoin shj(g.schema_a, g.schema_b);
  auto shj_run = RunJoin(&shj, g.a, g.b);
  auto reference =
      ReferenceJoinRows(g.a, g.b, shj.output_schema(), 0, 0);
  ASSERT_EQ(shj_run.results, reference);

  // XJoin under the same memory threshold.
  {
    JoinOptions opts;
    opts.runtime.memory_threshold_tuples = memory_threshold;
    XJoin join(g.schema_a, g.schema_b, opts);
    auto run = RunJoin(&join, g.a, g.b, /*stall_gap=*/9000);
    EXPECT_EQ(run.results, reference) << "XJoin mem=" << memory_threshold;
  }

  // PJoin across purge thresholds, memory thresholds, both index modes.
  for (bool eager_index : {false, true}) {
    JoinOptions opts;
    opts.runtime.purge_threshold = purge_threshold;
    opts.runtime.memory_threshold_tuples = memory_threshold;
    opts.runtime.propagate_count_threshold = 5;
    opts.eager_index_build = eager_index;
    PJoin join(g.schema_a, g.schema_b, opts);
    auto run = RunJoin(&join, g.a, g.b, /*stall_gap=*/9000);
    EXPECT_EQ(run.results, reference)
        << "PJoin purge=" << purge_threshold << " mem=" << memory_threshold
        << " eager_index=" << eager_index;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configurations, EquivalenceSweep,
    ::testing::Combine(::testing::Values(0, 1, 2, 3, 4, 5),  // scenario
                       ::testing::Values(1, 7, 50),       // purge threshold
                       ::testing::Values(16, 1000000)));  // memory threshold

TEST(EquivalenceTest, PJoinWithoutOtfDropMatchesReference) {
  Scenario sc{400, 10, 20, 8, PunctStyle::kConstant, 707};
  GeneratedStreams g = Generate(sc);
  JoinOptions opts;
  opts.drop_on_the_fly = false;
  opts.runtime.memory_threshold_tuples = 32;
  PJoin join(g.schema_a, g.schema_b, opts);
  auto run = RunJoin(&join, g.a, g.b);
  EXPECT_EQ(run.results,
            ReferenceJoinRows(g.a, g.b, join.output_schema(), 0, 0));
}

TEST(EquivalenceTest, PJoinIndexedPurgeMatchesReference) {
  Scenario sc{400, 8, 8, 8, PunctStyle::kConstant, 808};
  GeneratedStreams g = Generate(sc);
  JoinOptions opts;
  opts.purge_mode = PurgeMode::kIndexed;
  opts.runtime.memory_threshold_tuples = 24;
  PJoin join(g.schema_a, g.schema_b, opts);
  auto run = RunJoin(&join, g.a, g.b, /*stall_gap=*/9000);
  EXPECT_EQ(run.results,
            ReferenceJoinRows(g.a, g.b, join.output_schema(), 0, 0));
}

TEST(EquivalenceTest, PJoinWithFileSpillMatchesReference) {
  Scenario sc{300, 10, 10, 8, PunctStyle::kConstant, 909};
  GeneratedStreams g = Generate(sc);
  JoinOptions opts;
  opts.runtime.memory_threshold_tuples = 16;
  int file_counter = 0;
  opts.spill_factory = [&file_counter]() -> std::unique_ptr<SpillStore> {
    auto store = FileSpillStore::Open("/tmp/pjoin_equiv_spill_" +
                                      std::to_string(file_counter++) +
                                      ".bin");
    PJOIN_DCHECK(store.ok());
    return std::move(store).value();
  };
  PJoin join(g.schema_a, g.schema_b, opts);
  auto run = RunJoin(&join, g.a, g.b, /*stall_gap=*/9000);
  EXPECT_EQ(run.results,
            ReferenceJoinRows(g.a, g.b, join.output_schema(), 0, 0));
}

TEST(EquivalenceTest, StringKeyedJoinWithPunctuations) {
  // Keys are strings; punctuations use constant and range string patterns.
  SchemaPtr sa = Schema::Make(
      {{"key", ValueType::kString}, {"a", ValueType::kInt64}});
  SchemaPtr sb = Schema::Make(
      {{"key", ValueType::kString}, {"b", ValueType::kInt64}});
  Rng rng(31337);
  const char* keys[] = {"alpha", "bravo", "charlie", "delta", "echo"};
  auto make_stream = [&](const SchemaPtr& schema) {
    std::vector<StreamElement> out;
    TimeMicros now = 0;
    int64_t seq = 0;
    for (int i = 0; i < 120; ++i) {
      now += 1000;
      out.push_back(StreamElement::MakeTuple(
          Tuple(schema, {Value(std::string(keys[rng.NextBounded(5)])),
                         Value(static_cast<int64_t>(i))}),
          now, seq++));
    }
    // Punctuate a constant and a range of keys at the end (sound: no
    // tuples follow).
    out.push_back(StreamElement::MakePunctuation(
        Punctuation::ForAttribute(2, 0,
                                  Pattern::Constant(Value("alpha"))),
        now, seq++));
    out.push_back(StreamElement::MakePunctuation(
        Punctuation::ForAttribute(
            2, 0, Pattern::Range(Value("bravo"), Value("delta"))),
        now, seq++));
    out.push_back(StreamElement::MakeEndOfStream(now, seq++));
    return out;
  };
  auto left = make_stream(sa);
  auto right = make_stream(sb);

  JoinOptions opts;
  opts.runtime.memory_threshold_tuples = 24;
  opts.runtime.propagate_count_threshold = 1;
  PJoin join(sa, sb, opts);
  auto run = RunJoin(&join, left, right, /*stall_gap=*/5000);
  EXPECT_EQ(run.results,
            ReferenceJoinRows(left, right, join.output_schema(), 0, 0));
  // All keys except "echo" are punctuated on both sides; with the final
  // propagation, those punctuations must come out.
  EXPECT_GE(run.punctuations.size(), 2u);
  EXPECT_GT(join.counters().Get("purged_tuples") +
                join.counters().Get("disk_purged_tuples"),
            0);
}

TEST(EquivalenceTest, HeavySpillTinyMemory) {
  // Pathological: memory threshold of 2 tuples forces constant relocation.
  Scenario sc{200, 10, 10, 6, PunctStyle::kConstant, 111};
  GeneratedStreams g = Generate(sc);
  JoinOptions opts;
  opts.runtime.memory_threshold_tuples = 2;
  PJoin join(g.schema_a, g.schema_b, opts);
  auto run = RunJoin(&join, g.a, g.b, /*stall_gap=*/6000);
  EXPECT_EQ(run.results,
            ReferenceJoinRows(g.a, g.b, join.output_schema(), 0, 0));
}

}  // namespace
}  // namespace pjoin
