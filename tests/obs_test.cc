// Tests for the observability layer (src/obs/): metrics registry handle
// semantics, trace-ring overflow behavior, concurrent emit/drain (exercised
// under TSan in CI), and Chrome trace_event export validated by an in-test
// JSON parser.

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "obs/chrome_trace.h"
#include "obs/introspection.h"
#include "obs/metrics_registry.h"
#include "obs/promtext.h"
#include "obs/trace.h"

namespace pjoin {
namespace {

// ---- Minimal JSON parser: just enough to validate exporter output. ----

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool Parse(JsonValue* out) {
    SkipWs();
    if (!ParseValue(out)) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' || text_[pos_] == '\t' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseLiteral(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': c = '"'; break;
          case '\\': c = '\\'; break;
          case '/': c = '/'; break;
          case 'n': c = '\n'; break;
          case 't': c = '\t'; break;
          case 'r': c = '\r'; break;
          case 'u': {
            // The escaper only emits \u00XX for control characters, so a
            // one-byte decode suffices.
            if (pos_ + 4 > text_.size()) return false;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code += static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code += static_cast<unsigned>(h - 'A' + 10);
              else return false;
            }
            if (code > 0xff) return false;
            c = static_cast<char>(code);
            break;
          }
          default: return false;
        }
      }
      out->push_back(c);
    }
    return Consume('"');
  }

  bool ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out->type = JsonValue::Type::kNumber;
    out->number = std::stod(std::string(text_.substr(start, pos_ - start)));
    return true;
  }

  bool ParseValue(JsonValue* out) {
    SkipWs();
    if (pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->type = JsonValue::Type::kString;
      return ParseString(&out->str);
    }
    if (c == 't') {
      out->type = JsonValue::Type::kBool;
      out->boolean = true;
      return ParseLiteral("true");
    }
    if (c == 'f') {
      out->type = JsonValue::Type::kBool;
      return ParseLiteral("false");
    }
    if (c == 'n') return ParseLiteral("null");
    return ParseNumber(out);
  }

  bool ParseObject(JsonValue* out) {
    if (!Consume('{')) return false;
    out->type = JsonValue::Type::kObject;
    SkipWs();
    if (Consume('}')) return true;
    while (true) {
      SkipWs();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWs();
      if (!Consume(':')) return false;
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->object.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (Consume('}')) return true;
      if (!Consume(',')) return false;
    }
  }

  bool ParseArray(JsonValue* out) {
    if (!Consume('[')) return false;
    out->type = JsonValue::Type::kArray;
    SkipWs();
    if (Consume(']')) return true;
    while (true) {
      JsonValue value;
      if (!ParseValue(&value)) return false;
      out->array.push_back(std::move(value));
      SkipWs();
      if (Consume(']')) return true;
      if (!Consume(',')) return false;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

// ---- MetricsRegistry ----

class MetricsRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::MetricsRegistry::Global().ResetForTest(); }
  void TearDown() override { obs::MetricsRegistry::Global().ResetForTest(); }
};

TEST_F(MetricsRegistryTest, SameNameAndLabelsShareOneCell) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Counter a = registry.GetCounter("test.counter", "side=l");
  obs::Counter b = registry.GetCounter("test.counter", "side=l");
  a.Add(3);
  b.Add(4);
  EXPECT_EQ(a.Get(), 7);
  EXPECT_EQ(b.Get(), 7);
  EXPECT_EQ(registry.Snapshot().size(), 1u);
}

TEST_F(MetricsRegistryTest, DifferentLabelsAreDistinctMetrics) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Counter l = registry.GetCounter("test.counter", "side=l");
  obs::Counter r = registry.GetCounter("test.counter", "side=r");
  obs::Counter bare = registry.GetCounter("test.counter");
  l.Add(1);
  r.Add(2);
  bare.Add(4);
  EXPECT_EQ(l.Get(), 1);
  EXPECT_EQ(r.Get(), 2);
  EXPECT_EQ(bare.Get(), 4);
  EXPECT_EQ(registry.Snapshot().size(), 3u);
}

TEST_F(MetricsRegistryTest, DefaultHandlesAreInert) {
  obs::Counter counter;
  obs::Gauge gauge;
  EXPECT_FALSE(counter.bound());
  EXPECT_FALSE(gauge.bound());
  counter.Add(5);  // must not crash
  gauge.Set(5);
  gauge.Add(1);
  EXPECT_EQ(counter.Get(), 0);
  EXPECT_EQ(gauge.Get(), 0);
}

TEST_F(MetricsRegistryTest, GaugeIsLastWriteWins) {
  obs::Gauge gauge =
      obs::MetricsRegistry::Global().GetGauge("test.depth", "buf=x");
  gauge.Set(10);
  gauge.Set(3);
  gauge.Add(2);
  EXPECT_EQ(gauge.Get(), 5);
}

TEST_F(MetricsRegistryTest, SnapshotIsSortedByNameThenLabels) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("zeta");
  registry.GetCounter("alpha", "b=2");
  registry.GetCounter("alpha", "a=1");
  const std::vector<obs::MetricSample> snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].name, "alpha");
  EXPECT_EQ(snapshot[0].labels, "a=1");
  EXPECT_EQ(snapshot[1].name, "alpha");
  EXPECT_EQ(snapshot[1].labels, "b=2");
  EXPECT_EQ(snapshot[2].name, "zeta");
}

TEST_F(MetricsRegistryTest, ToJsonParsesAndCarriesValues) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("spill.pages", "store=sim").Add(42);
  registry.GetGauge("buffer.depth", "buf=input_l").Set(-7);
  JsonValue root;
  ASSERT_TRUE(JsonParser(registry.ToJson()).Parse(&root));
  const JsonValue* metrics = root.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_EQ(metrics->type, JsonValue::Type::kArray);
  ASSERT_EQ(metrics->array.size(), 2u);
  // Sorted: buffer.depth < spill.pages.
  const JsonValue& depth = metrics->array[0];
  EXPECT_EQ(depth.Find("name")->str, "buffer.depth");
  EXPECT_EQ(depth.Find("labels")->str, "buf=input_l");
  EXPECT_EQ(depth.Find("kind")->str, "gauge");
  EXPECT_EQ(depth.Find("value")->number, -7.0);
  const JsonValue& pages = metrics->array[1];
  EXPECT_EQ(pages.Find("kind")->str, "counter");
  EXPECT_EQ(pages.Find("value")->number, 42.0);
}

TEST_F(MetricsRegistryTest, ToJsonEscapesLabelValues) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  // Quote, backslash, newline and a raw control byte — every class the
  // shared escaper must handle for the output to stay parseable.
  const std::string labels = std::string("path=a\"b\\c\nd\x01e");
  registry.GetCounter("escape.test", labels).Add(1);
  JsonValue root;
  ASSERT_TRUE(JsonParser(registry.ToJson()).Parse(&root))
      << registry.ToJson();
  const JsonValue* metrics = root.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_EQ(metrics->array.size(), 1u);
  // Round-trips exactly: what went in as a label string comes back out.
  EXPECT_EQ(metrics->array[0].Find("labels")->str, labels);
}

TEST_F(MetricsRegistryTest, InvalidNamesYieldInertHandles) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  EXPECT_FALSE(registry.GetCounter("9starts.with.digit").bound());
  EXPECT_FALSE(registry.GetCounter("has space").bound());
  EXPECT_FALSE(registry.GetCounter("").bound());
  EXPECT_FALSE(registry.GetGauge("newline\nname").bound());
  EXPECT_FALSE(registry.GetHistogram("semi;colon").bound());
  // Rejected names never reach the registry.
  EXPECT_TRUE(registry.Snapshot().empty());
  // The full legal alphabet is accepted.
  EXPECT_TRUE(registry.GetCounter("_ok.name:with_ALL09.classes").bound());
}

// ---- Registry histograms ----

TEST_F(MetricsRegistryTest, HistogramObservationsLandInPowerOfTwoBuckets) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Histogram h = registry.GetHistogram("test.latency", "side=l");
  h.Observe(0);   // bucket 0 (v <= 0)
  h.Observe(1);   // bucket 1 ([1, 1])
  h.Observe(2);   // bucket 2 ([2, 3])
  h.Observe(3);   // bucket 2
  h.Observe(100);  // bucket 7 ([64, 127])
  EXPECT_EQ(h.Count(), 5);
  EXPECT_EQ(h.Sum(), 106);
  const std::vector<obs::MetricSample> snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  const obs::MetricSample& s = snapshot[0];
  EXPECT_EQ(s.kind, obs::MetricKind::kHistogram);
  EXPECT_EQ(s.value, 5);  // histogram sample value is the count
  EXPECT_EQ(s.sum, 106);
  // Buckets are trimmed after the last nonzero (bucket 7 here).
  ASSERT_EQ(s.buckets.size(), 8u);
  EXPECT_EQ(s.buckets[0], 1);
  EXPECT_EQ(s.buckets[1], 1);
  EXPECT_EQ(s.buckets[2], 2);
  EXPECT_EQ(s.buckets[7], 1);
}

TEST_F(MetricsRegistryTest, HistogramHandlesShareOneCellAndDefaultIsInert) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Histogram a = registry.GetHistogram("test.latency");
  obs::Histogram b = registry.GetHistogram("test.latency");
  a.Observe(1);
  b.Observe(2);
  EXPECT_EQ(a.Count(), 2);
  obs::Histogram inert;
  EXPECT_FALSE(inert.bound());
  inert.Observe(123);  // must not crash
  EXPECT_EQ(inert.Count(), 0);
}

TEST_F(MetricsRegistryTest, ToJsonCarriesHistogramFields) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Histogram h =
      registry.GetHistogram("test.latency", "", /*unit_scale=*/1e-6);
  h.Observe(3);
  h.Observe(4);
  JsonValue root;
  ASSERT_TRUE(JsonParser(registry.ToJson()).Parse(&root))
      << registry.ToJson();
  const JsonValue* metrics = root.Find("metrics");
  ASSERT_EQ(metrics->array.size(), 1u);
  const JsonValue& m = metrics->array[0];
  EXPECT_EQ(m.Find("kind")->str, "histogram");
  EXPECT_EQ(m.Find("count")->number, 2.0);
  EXPECT_EQ(m.Find("sum")->number, 7.0);
  EXPECT_DOUBLE_EQ(m.Find("unit_scale")->number, 1e-6);
  const JsonValue* buckets = m.Find("buckets");
  ASSERT_NE(buckets, nullptr);
  // 3 -> bucket 2, 4 -> bucket 3; trimmed to 4 entries.
  ASSERT_EQ(buckets->array.size(), 4u);
  EXPECT_EQ(buckets->array[2].number, 1.0);
  EXPECT_EQ(buckets->array[3].number, 1.0);
}

// ---- Prometheus text exposition ----

TEST(PromtextTest, GoldenExposition) {
  std::vector<obs::MetricSample> samples;
  obs::MetricSample counter;
  counter.name = "jobs.done";
  counter.labels = "q=a";
  counter.kind = obs::MetricKind::kCounter;
  counter.value = 3;
  samples.push_back(counter);
  obs::MetricSample gauge;
  gauge.name = "depth";
  gauge.kind = obs::MetricKind::kGauge;
  gauge.value = -2;
  samples.push_back(gauge);
  obs::MetricSample hist;
  hist.name = "lat";
  hist.labels = "s=0";
  hist.kind = obs::MetricKind::kHistogram;
  hist.value = 3;  // count
  hist.sum = 7;
  hist.unit_scale = 1.0;
  hist.buckets = {0, 2, 1};
  samples.push_back(hist);
  // Snapshot() order: (name, labels). WritePrometheusText re-sorts by
  // sanitized name, so feed it sorted input like the real caller does.
  std::sort(samples.begin(), samples.end(),
            [](const obs::MetricSample& a, const obs::MetricSample& b) {
              return std::tie(a.name, a.labels) < std::tie(b.name, b.labels);
            });
  EXPECT_EQ(obs::WritePrometheusText(samples),
            "# TYPE depth gauge\n"
            "depth -2\n"
            "# TYPE jobs_done counter\n"
            "jobs_done{q=\"a\"} 3\n"
            "# TYPE lat histogram\n"
            "lat_bucket{s=\"0\",le=\"0\"} 0\n"
            "lat_bucket{s=\"0\",le=\"1\"} 2\n"
            "lat_bucket{s=\"0\",le=\"3\"} 3\n"
            "lat_bucket{s=\"0\",le=\"+Inf\"} 3\n"
            "lat_sum{s=\"0\"} 7\n"
            "lat_count{s=\"0\"} 3\n");
}

TEST(PromtextTest, EscapesLabelValuesAndScalesUnits) {
  std::vector<obs::MetricSample> samples;
  obs::MetricSample counter;
  counter.name = "files.read";
  counter.labels = "path=a\"b\\c\nd";
  counter.kind = obs::MetricKind::kCounter;
  counter.value = 1;
  samples.push_back(counter);
  obs::MetricSample hist;
  hist.name = "io.seconds";
  hist.kind = obs::MetricKind::kHistogram;
  hist.value = 4;
  hist.sum = 3'000'000;  // raw microseconds
  hist.unit_scale = 1e-6;
  hist.buckets = {0, 4};
  samples.push_back(hist);
  const std::string text = obs::WritePrometheusText(samples);
  // Exposition escapes: backslash, quote and newline in label values.
  EXPECT_NE(text.find("files_read{path=\"a\\\"b\\\\c\\nd\"} 1"),
            std::string::npos)
      << text;
  // Microsecond observations exported under second-valued bounds.
  EXPECT_NE(text.find("io_seconds_bucket{le=\"1e-06\"} 4"), std::string::npos)
      << text;
  EXPECT_NE(text.find("io_seconds_sum 3\n"), std::string::npos) << text;
  EXPECT_NE(text.find("io_seconds_count 4\n"), std::string::npos) << text;
}

TEST_F(MetricsRegistryTest, GlobalPrometheusTextEndToEnd) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.GetHistogram("pjoin.test.latency.seconds", "shard=0", 1e-6)
      .Observe(5);
  registry.GetCounter("pjoin.test.results", "shard=0").Add(2);
  const std::string text = obs::GlobalPrometheusText();
  EXPECT_NE(text.find("# TYPE pjoin_test_latency_seconds histogram"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("pjoin_test_latency_seconds_count{shard=\"0\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("pjoin_test_results{shard=\"0\"} 2"),
            std::string::npos)
      << text;
}

// ---- /statusz rendering ----

TEST(IntrospectionTest, StatusSectionsAppearWhileRegistered) {
  {
    obs::ScopedStatusSection section("test section",
                                     [] { return "k=v\n"; });
    const std::string statusz = obs::RenderStatusz(/*uptime_us=*/1'500'000);
    EXPECT_NE(statusz.find("uptime_seconds: 1.5"), std::string::npos)
        << statusz;
    EXPECT_NE(statusz.find("== test section =="), std::string::npos);
    EXPECT_NE(statusz.find("k=v"), std::string::npos);
    EXPECT_NE(statusz.find("== build =="), std::string::npos);
  }
  // RAII unregistration: a finished pipeline stops appearing.
  EXPECT_EQ(obs::RenderStatusSections().find("test section"),
            std::string::npos);
}

// ---- TraceRing ----

TEST(TraceRingTest, DrainReturnsEventsOldestFirst) {
  obs::TraceRing ring(/*tid=*/5, /*capacity=*/8);
  for (int64_t i = 0; i < 4; ++i) {
    ring.Emit("cat", "name", obs::TracePhase::kCounter, /*ts=*/i * 10, i);
  }
  std::vector<obs::TraceEvent> events;
  EXPECT_EQ(ring.Drain(&events), 0);  // nothing dropped
  ASSERT_EQ(events.size(), 4u);
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[static_cast<size_t>(i)].value, i);
    EXPECT_EQ(events[static_cast<size_t>(i)].tid, 5);
  }
}

TEST(TraceRingTest, OverflowKeepsNewestEventsAndCountsDropped) {
  constexpr int64_t kCapacity = 8;
  constexpr int64_t kEmitted = 20;
  obs::TraceRing ring(/*tid=*/0, kCapacity);
  for (int64_t i = 0; i < kEmitted; ++i) {
    ring.Emit("cat", "name", obs::TracePhase::kCounter, /*ts=*/i, i);
  }
  std::vector<obs::TraceEvent> events;
  const int64_t dropped = ring.Drain(&events);
  EXPECT_EQ(dropped, kEmitted - kCapacity);
  ASSERT_EQ(events.size(), static_cast<size_t>(kCapacity));
  // The survivors are exactly the newest kCapacity events, oldest first.
  for (int64_t i = 0; i < kCapacity; ++i) {
    EXPECT_EQ(events[static_cast<size_t>(i)].value,
              kEmitted - kCapacity + i);
  }
}

// ---- Tracer ----

class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::Tracer::Global().ResetForTest(); }
  void TearDown() override {
    obs::Tracer::Global().Stop();
    obs::Tracer::Global().ResetForTest();
  }
};

#if PJOIN_TRACING

TEST_F(TracerTest, EventsWhileStoppedAreDropped) {
  TRACE_INSTANT("test", "before_start");
  {
    TRACE_SPAN("test", "span_before_start");
  }
  EXPECT_TRUE(obs::Tracer::Global().Drain().empty());
}

TEST_F(TracerTest, SpansCarryNonNegativeDuration) {
  obs::Tracer::Global().Start();
  {
    TRACE_SPAN("test", "outer");
    TRACE_INSTANT("test", "inside");
  }
  obs::Tracer::Global().Stop();
  const std::vector<obs::TraceEvent> events = obs::Tracer::Global().Drain();
  ASSERT_EQ(events.size(), 2u);
  bool saw_span = false;
  for (const obs::TraceEvent& e : events) {
    if (e.phase == obs::TracePhase::kComplete) {
      saw_span = true;
      EXPECT_STREQ(e.name, "outer");
      EXPECT_GE(e.value, 0);  // duration
    }
  }
  EXPECT_TRUE(saw_span);
}

TEST_F(TracerTest, ThreadNamesAreExported) {
  obs::Tracer::Global().SetCurrentThreadName("main-test");
  const auto names = obs::Tracer::Global().ThreadNames();
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0].second, "main-test");
}

// Writers emit through the macros while the main thread drains concurrently;
// run under TSan in CI. Drained events must never be torn (a null name or
// category would mean a half-written slot escaped the seq check).
TEST_F(TracerTest, ConcurrentEmitAndDrainIsSafe) {
  obs::Tracer::Global().Start();
  constexpr int kThreads = 4;
  constexpr int kEventsPerThread = 20000;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([] {
      for (int i = 0; i < kEventsPerThread; ++i) {
        TRACE_COUNTER("test", "spin", i);
        if (i % 64 == 0) {
          TRACE_SPAN("test", "chunk");
        }
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    for (const obs::TraceEvent& e : obs::Tracer::Global().Drain()) {
      ASSERT_NE(e.name, nullptr);
      ASSERT_NE(e.category, nullptr);
      ASSERT_GE(static_cast<int32_t>(e.phase), 0);
      ASSERT_LE(static_cast<int32_t>(e.phase), 2);
    }
  }
  for (std::thread& w : writers) w.join();
  obs::Tracer::Global().Stop();
  const std::vector<obs::TraceEvent> events = obs::Tracer::Global().Drain();
  EXPECT_FALSE(events.empty());
  EXPECT_LE(events.size(),
            static_cast<size_t>(kThreads) *
                (kEventsPerThread + kEventsPerThread / 64 + 1));
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].ts, events[i].ts);  // drain sorts by timestamp
  }
}

// ---- Chrome trace export ----

TEST_F(TracerTest, ChromeTraceExportIsValidAndComplete) {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Start();
  tracer.SetCurrentThreadName("escape \"this\" \\ name");
  {
    TRACE_SPAN("cat_span", "a_span");
  }
  TRACE_INSTANT("cat_inst", "an_instant");
  TRACE_COUNTER("cat_ctr", "a_counter", 17);
  tracer.Stop();

  std::ostringstream os;
  obs::WriteChromeTrace(os, tracer.Drain(), tracer.ThreadNames());
  const std::string json = os.str();

  JsonValue root;
  ASSERT_TRUE(JsonParser(json).Parse(&root)) << json;
  const JsonValue* trace_events = root.Find("traceEvents");
  ASSERT_NE(trace_events, nullptr);
  ASSERT_EQ(trace_events->type, JsonValue::Type::kArray);
  // 1 thread-name metadata record + 3 events.
  ASSERT_EQ(trace_events->array.size(), 4u);

  bool saw_meta = false, saw_span = false, saw_instant = false,
       saw_counter = false;
  for (const JsonValue& e : trace_events->array) {
    const JsonValue* ph = e.Find("ph");
    ASSERT_NE(ph, nullptr);
    ASSERT_NE(e.Find("pid"), nullptr);
    ASSERT_NE(e.Find("tid"), nullptr);
    if (ph->str == "M") {
      saw_meta = true;
      EXPECT_EQ(e.Find("args")->Find("name")->str, "escape \"this\" \\ name");
    } else if (ph->str == "X") {
      saw_span = true;
      EXPECT_EQ(e.Find("name")->str, "a_span");
      EXPECT_EQ(e.Find("cat")->str, "cat_span");
      ASSERT_NE(e.Find("dur"), nullptr);
      EXPECT_GE(e.Find("dur")->number, 0.0);
      ASSERT_NE(e.Find("ts"), nullptr);
    } else if (ph->str == "i") {
      saw_instant = true;
      EXPECT_EQ(e.Find("name")->str, "an_instant");
      EXPECT_EQ(e.Find("s")->str, "t");
    } else if (ph->str == "C") {
      saw_counter = true;
      EXPECT_EQ(e.Find("name")->str, "a_counter");
      EXPECT_EQ(e.Find("args")->Find("value")->number, 17.0);
    } else {
      FAIL() << "unexpected phase " << ph->str;
    }
  }
  EXPECT_TRUE(saw_meta);
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_instant);
  EXPECT_TRUE(saw_counter);
}

#endif  // PJOIN_TRACING

TEST_F(TracerTest, EmptyTraceIsStillValidJson) {
  std::ostringstream os;
  obs::WriteChromeTrace(os, {}, {});
  JsonValue root;
  ASSERT_TRUE(JsonParser(os.str()).Parse(&root));
  const JsonValue* trace_events = root.Find("traceEvents");
  ASSERT_NE(trace_events, nullptr);
  EXPECT_TRUE(trace_events->array.empty());
  EXPECT_EQ(root.Find("displayTimeUnit")->str, "ms");
}

}  // namespace
}  // namespace pjoin
