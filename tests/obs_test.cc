// Tests for the observability layer (src/obs/): metrics registry handle
// semantics, trace-ring overflow behavior, concurrent emit/drain (exercised
// under TSan in CI), and Chrome trace_event export validated by an in-test
// JSON parser.

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <sstream>
#include <string>
#include <string_view>
#include <thread>
#include <tuple>
#include <utility>
#include <vector>

#include "json_test_util.h"
#include "obs/chrome_trace.h"
#include "obs/introspection.h"
#include "obs/metrics_registry.h"
#include "obs/promtext.h"
#include "obs/trace.h"

namespace pjoin {
namespace {

using pjoin::testing::JsonParser;
using pjoin::testing::JsonValue;

// ---- MetricsRegistry ----

class MetricsRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::MetricsRegistry::Global().ResetForTest(); }
  void TearDown() override { obs::MetricsRegistry::Global().ResetForTest(); }
};

TEST_F(MetricsRegistryTest, SameNameAndLabelsShareOneCell) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Counter a = registry.GetCounter("test.counter", "side=l");
  obs::Counter b = registry.GetCounter("test.counter", "side=l");
  a.Add(3);
  b.Add(4);
  EXPECT_EQ(a.Get(), 7);
  EXPECT_EQ(b.Get(), 7);
  EXPECT_EQ(registry.Snapshot().size(), 1u);
}

TEST_F(MetricsRegistryTest, DifferentLabelsAreDistinctMetrics) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Counter l = registry.GetCounter("test.counter", "side=l");
  obs::Counter r = registry.GetCounter("test.counter", "side=r");
  obs::Counter bare = registry.GetCounter("test.counter");
  l.Add(1);
  r.Add(2);
  bare.Add(4);
  EXPECT_EQ(l.Get(), 1);
  EXPECT_EQ(r.Get(), 2);
  EXPECT_EQ(bare.Get(), 4);
  EXPECT_EQ(registry.Snapshot().size(), 3u);
}

TEST_F(MetricsRegistryTest, DefaultHandlesAreInert) {
  obs::Counter counter;
  obs::Gauge gauge;
  EXPECT_FALSE(counter.bound());
  EXPECT_FALSE(gauge.bound());
  counter.Add(5);  // must not crash
  gauge.Set(5);
  gauge.Add(1);
  EXPECT_EQ(counter.Get(), 0);
  EXPECT_EQ(gauge.Get(), 0);
}

TEST_F(MetricsRegistryTest, GaugeIsLastWriteWins) {
  obs::Gauge gauge =
      obs::MetricsRegistry::Global().GetGauge("test.depth", "buf=x");
  gauge.Set(10);
  gauge.Set(3);
  gauge.Add(2);
  EXPECT_EQ(gauge.Get(), 5);
}

TEST_F(MetricsRegistryTest, SnapshotIsSortedByNameThenLabels) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("zeta");
  registry.GetCounter("alpha", "b=2");
  registry.GetCounter("alpha", "a=1");
  const std::vector<obs::MetricSample> snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].name, "alpha");
  EXPECT_EQ(snapshot[0].labels, "a=1");
  EXPECT_EQ(snapshot[1].name, "alpha");
  EXPECT_EQ(snapshot[1].labels, "b=2");
  EXPECT_EQ(snapshot[2].name, "zeta");
}

TEST_F(MetricsRegistryTest, ToJsonParsesAndCarriesValues) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.GetCounter("spill.pages", "store=sim").Add(42);
  registry.GetGauge("buffer.depth", "buf=input_l").Set(-7);
  JsonValue root;
  ASSERT_TRUE(JsonParser(registry.ToJson()).Parse(&root));
  const JsonValue* metrics = root.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_EQ(metrics->type, JsonValue::Type::kArray);
  ASSERT_EQ(metrics->array.size(), 2u);
  // Sorted: buffer.depth < spill.pages.
  const JsonValue& depth = metrics->array[0];
  EXPECT_EQ(depth.Find("name")->str, "buffer.depth");
  EXPECT_EQ(depth.Find("labels")->str, "buf=input_l");
  EXPECT_EQ(depth.Find("kind")->str, "gauge");
  EXPECT_EQ(depth.Find("value")->number, -7.0);
  const JsonValue& pages = metrics->array[1];
  EXPECT_EQ(pages.Find("kind")->str, "counter");
  EXPECT_EQ(pages.Find("value")->number, 42.0);
}

TEST_F(MetricsRegistryTest, ToJsonEscapesLabelValues) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  // Quote, backslash, newline and a raw control byte — every class the
  // shared escaper must handle for the output to stay parseable.
  const std::string labels = std::string("path=a\"b\\c\nd\x01e");
  registry.GetCounter("escape.test", labels).Add(1);
  JsonValue root;
  ASSERT_TRUE(JsonParser(registry.ToJson()).Parse(&root))
      << registry.ToJson();
  const JsonValue* metrics = root.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_EQ(metrics->array.size(), 1u);
  // Round-trips exactly: what went in as a label string comes back out.
  EXPECT_EQ(metrics->array[0].Find("labels")->str, labels);
}

TEST_F(MetricsRegistryTest, InvalidNamesYieldInertHandles) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  EXPECT_FALSE(registry.GetCounter("9starts.with.digit").bound());
  EXPECT_FALSE(registry.GetCounter("has space").bound());
  EXPECT_FALSE(registry.GetCounter("").bound());
  EXPECT_FALSE(registry.GetGauge("newline\nname").bound());
  EXPECT_FALSE(registry.GetHistogram("semi;colon").bound());
  // Rejected names never reach the registry.
  EXPECT_TRUE(registry.Snapshot().empty());
  // The full legal alphabet is accepted.
  EXPECT_TRUE(registry.GetCounter("_ok.name:with_ALL09.classes").bound());
}

// ---- Registry histograms ----

TEST_F(MetricsRegistryTest, HistogramObservationsLandInPowerOfTwoBuckets) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Histogram h = registry.GetHistogram("test.latency", "side=l");
  h.Observe(0);   // bucket 0 (v <= 0)
  h.Observe(1);   // bucket 1 ([1, 1])
  h.Observe(2);   // bucket 2 ([2, 3])
  h.Observe(3);   // bucket 2
  h.Observe(100);  // bucket 7 ([64, 127])
  EXPECT_EQ(h.Count(), 5);
  EXPECT_EQ(h.Sum(), 106);
  const std::vector<obs::MetricSample> snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  const obs::MetricSample& s = snapshot[0];
  EXPECT_EQ(s.kind, obs::MetricKind::kHistogram);
  EXPECT_EQ(s.value, 5);  // histogram sample value is the count
  EXPECT_EQ(s.sum, 106);
  // Buckets are trimmed after the last nonzero (bucket 7 here).
  ASSERT_EQ(s.buckets.size(), 8u);
  EXPECT_EQ(s.buckets[0], 1);
  EXPECT_EQ(s.buckets[1], 1);
  EXPECT_EQ(s.buckets[2], 2);
  EXPECT_EQ(s.buckets[7], 1);
}

TEST_F(MetricsRegistryTest, HistogramHandlesShareOneCellAndDefaultIsInert) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Histogram a = registry.GetHistogram("test.latency");
  obs::Histogram b = registry.GetHistogram("test.latency");
  a.Observe(1);
  b.Observe(2);
  EXPECT_EQ(a.Count(), 2);
  obs::Histogram inert;
  EXPECT_FALSE(inert.bound());
  inert.Observe(123);  // must not crash
  EXPECT_EQ(inert.Count(), 0);
}

TEST_F(MetricsRegistryTest, ToJsonCarriesHistogramFields) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Histogram h =
      registry.GetHistogram("test.latency", "", /*unit_scale=*/1e-6);
  h.Observe(3);
  h.Observe(4);
  JsonValue root;
  ASSERT_TRUE(JsonParser(registry.ToJson()).Parse(&root))
      << registry.ToJson();
  const JsonValue* metrics = root.Find("metrics");
  ASSERT_EQ(metrics->array.size(), 1u);
  const JsonValue& m = metrics->array[0];
  EXPECT_EQ(m.Find("kind")->str, "histogram");
  EXPECT_EQ(m.Find("count")->number, 2.0);
  EXPECT_EQ(m.Find("sum")->number, 7.0);
  EXPECT_DOUBLE_EQ(m.Find("unit_scale")->number, 1e-6);
  const JsonValue* buckets = m.Find("buckets");
  ASSERT_NE(buckets, nullptr);
  // 3 -> bucket 2, 4 -> bucket 3; trimmed to 4 entries.
  ASSERT_EQ(buckets->array.size(), 4u);
  EXPECT_EQ(buckets->array[2].number, 1.0);
  EXPECT_EQ(buckets->array[3].number, 1.0);
}

// ---- Prometheus text exposition ----

TEST(PromtextTest, GoldenExposition) {
  std::vector<obs::MetricSample> samples;
  obs::MetricSample counter;
  counter.name = "jobs.done";
  counter.labels = "q=a";
  counter.kind = obs::MetricKind::kCounter;
  counter.value = 3;
  samples.push_back(counter);
  obs::MetricSample gauge;
  gauge.name = "depth";
  gauge.kind = obs::MetricKind::kGauge;
  gauge.value = -2;
  samples.push_back(gauge);
  obs::MetricSample hist;
  hist.name = "lat";
  hist.labels = "s=0";
  hist.kind = obs::MetricKind::kHistogram;
  hist.value = 3;  // count
  hist.sum = 7;
  hist.unit_scale = 1.0;
  hist.buckets = {0, 2, 1};
  samples.push_back(hist);
  // Snapshot() order: (name, labels). WritePrometheusText re-sorts by
  // sanitized name, so feed it sorted input like the real caller does.
  std::sort(samples.begin(), samples.end(),
            [](const obs::MetricSample& a, const obs::MetricSample& b) {
              return std::tie(a.name, a.labels) < std::tie(b.name, b.labels);
            });
  EXPECT_EQ(obs::WritePrometheusText(samples),
            "# TYPE depth gauge\n"
            "depth -2\n"
            "# TYPE jobs_done counter\n"
            "jobs_done{q=\"a\"} 3\n"
            "# TYPE lat histogram\n"
            "lat_bucket{s=\"0\",le=\"0\"} 0\n"
            "lat_bucket{s=\"0\",le=\"1\"} 2\n"
            "lat_bucket{s=\"0\",le=\"3\"} 3\n"
            "lat_bucket{s=\"0\",le=\"+Inf\"} 3\n"
            "lat_sum{s=\"0\"} 7\n"
            "lat_count{s=\"0\"} 3\n");
}

TEST(PromtextTest, EscapesLabelValuesAndScalesUnits) {
  std::vector<obs::MetricSample> samples;
  obs::MetricSample counter;
  counter.name = "files.read";
  counter.labels = "path=a\"b\\c\nd";
  counter.kind = obs::MetricKind::kCounter;
  counter.value = 1;
  samples.push_back(counter);
  obs::MetricSample hist;
  hist.name = "io.seconds";
  hist.kind = obs::MetricKind::kHistogram;
  hist.value = 4;
  hist.sum = 3'000'000;  // raw microseconds
  hist.unit_scale = 1e-6;
  hist.buckets = {0, 4};
  samples.push_back(hist);
  const std::string text = obs::WritePrometheusText(samples);
  // Exposition escapes: backslash, quote and newline in label values.
  EXPECT_NE(text.find("files_read{path=\"a\\\"b\\\\c\\nd\"} 1"),
            std::string::npos)
      << text;
  // Microsecond observations exported under second-valued bounds.
  EXPECT_NE(text.find("io_seconds_bucket{le=\"1e-06\"} 4"), std::string::npos)
      << text;
  EXPECT_NE(text.find("io_seconds_sum 3\n"), std::string::npos) << text;
  EXPECT_NE(text.find("io_seconds_count 4\n"), std::string::npos) << text;
}

TEST_F(MetricsRegistryTest, GlobalPrometheusTextEndToEnd) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.GetHistogram("pjoin.test.latency.seconds", "shard=0", 1e-6)
      .Observe(5);
  registry.GetCounter("pjoin.test.results", "shard=0").Add(2);
  const std::string text = obs::GlobalPrometheusText();
  EXPECT_NE(text.find("# TYPE pjoin_test_latency_seconds histogram"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("pjoin_test_latency_seconds_count{shard=\"0\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("pjoin_test_results{shard=\"0\"} 2"),
            std::string::npos)
      << text;
}

// ---- /statusz rendering ----

TEST(IntrospectionTest, StatusSectionsAppearWhileRegistered) {
  {
    obs::ScopedStatusSection section("test section",
                                     [] { return "k=v\n"; });
    const std::string statusz = obs::RenderStatusz(/*uptime_us=*/1'500'000);
    EXPECT_NE(statusz.find("uptime_seconds: 1.5"), std::string::npos)
        << statusz;
    EXPECT_NE(statusz.find("== test section =="), std::string::npos);
    EXPECT_NE(statusz.find("k=v"), std::string::npos);
    EXPECT_NE(statusz.find("== build =="), std::string::npos);
  }
  // RAII unregistration: a finished pipeline stops appearing.
  EXPECT_EQ(obs::RenderStatusSections().find("test section"),
            std::string::npos);
}

// ---- TraceRing ----

TEST(TraceRingTest, DrainReturnsEventsOldestFirst) {
  obs::TraceRing ring(/*tid=*/5, /*capacity=*/8);
  for (int64_t i = 0; i < 4; ++i) {
    ring.Emit("cat", "name", obs::TracePhase::kCounter, /*ts=*/i * 10, i);
  }
  std::vector<obs::TraceEvent> events;
  EXPECT_EQ(ring.Drain(&events), 0);  // nothing dropped
  ASSERT_EQ(events.size(), 4u);
  for (int64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[static_cast<size_t>(i)].value, i);
    EXPECT_EQ(events[static_cast<size_t>(i)].tid, 5);
  }
}

TEST(TraceRingTest, OverflowKeepsNewestEventsAndCountsDropped) {
  constexpr int64_t kCapacity = 8;
  constexpr int64_t kEmitted = 20;
  obs::TraceRing ring(/*tid=*/0, kCapacity);
  for (int64_t i = 0; i < kEmitted; ++i) {
    ring.Emit("cat", "name", obs::TracePhase::kCounter, /*ts=*/i, i);
  }
  std::vector<obs::TraceEvent> events;
  const int64_t dropped = ring.Drain(&events);
  EXPECT_EQ(dropped, kEmitted - kCapacity);
  ASSERT_EQ(events.size(), static_cast<size_t>(kCapacity));
  // The survivors are exactly the newest kCapacity events, oldest first.
  for (int64_t i = 0; i < kCapacity; ++i) {
    EXPECT_EQ(events[static_cast<size_t>(i)].value,
              kEmitted - kCapacity + i);
  }
}

// A Snapshot never consumes: repeated snapshots see the same resident
// events, while Drain advances the consumed watermark (the /tracez vs.
// Chrome-export split).
TEST(TraceRingTest, SnapshotIsNonDestructiveDrainConsumes) {
  obs::TraceRing ring(/*tid=*/0, /*capacity=*/8);
  for (int64_t i = 0; i < 4; ++i) {
    ring.Emit("cat", "name", obs::TracePhase::kCounter, /*ts=*/i, i);
  }
  std::vector<obs::TraceEvent> snap1, snap2, drained, rest;
  EXPECT_EQ(ring.Snapshot(&snap1), 0);
  EXPECT_EQ(ring.Snapshot(&snap2), 0);
  EXPECT_EQ(snap1.size(), 4u);
  EXPECT_EQ(snap2.size(), 4u);  // the first snapshot stole nothing
  EXPECT_EQ(ring.Drain(&drained), 0);
  EXPECT_EQ(drained.size(), 4u);
  // A second drain only returns what arrived since the first.
  ring.Emit("cat", "name", obs::TracePhase::kCounter, /*ts=*/10, 99);
  EXPECT_EQ(ring.Drain(&rest), 0);
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0].value, 99);
  // Snapshot still sees everything resident, drained or not.
  std::vector<obs::TraceEvent> snap3;
  EXPECT_EQ(ring.Snapshot(&snap3), 0);
  EXPECT_EQ(snap3.size(), 5u);
}

TEST(TraceRingTest, FlowIdSurvivesTheRing) {
  obs::TraceRing ring(/*tid=*/0, /*capacity=*/8);
  ring.Emit("flow", "tuple_path", obs::TracePhase::kFlowStart, /*ts=*/1,
            /*value=*/0, /*flow_id=*/0xdeadbeefULL);
  std::vector<obs::TraceEvent> events;
  ring.Snapshot(&events);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].phase, obs::TracePhase::kFlowStart);
  EXPECT_EQ(events[0].flow_id, 0xdeadbeefULL);
}

// ---- Tracer ----

class TracerTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::Tracer::Global().ResetForTest(); }
  void TearDown() override {
    obs::Tracer::Global().Stop();
    obs::Tracer::Global().ResetForTest();
  }
};

#if PJOIN_TRACING

TEST_F(TracerTest, EventsWhileStoppedAreDropped) {
  TRACE_INSTANT("test", "before_start");
  {
    TRACE_SPAN("test", "span_before_start");
  }
  EXPECT_TRUE(obs::Tracer::Global().Drain().empty());
}

TEST_F(TracerTest, SpansCarryNonNegativeDuration) {
  obs::Tracer::Global().Start();
  {
    TRACE_SPAN("test", "outer");
    TRACE_INSTANT("test", "inside");
  }
  obs::Tracer::Global().Stop();
  const std::vector<obs::TraceEvent> events = obs::Tracer::Global().Drain();
  ASSERT_EQ(events.size(), 2u);
  bool saw_span = false;
  for (const obs::TraceEvent& e : events) {
    if (e.phase == obs::TracePhase::kComplete) {
      saw_span = true;
      EXPECT_STREQ(e.name, "outer");
      EXPECT_GE(e.value, 0);  // duration
    }
  }
  EXPECT_TRUE(saw_span);
}

TEST_F(TracerTest, ThreadNamesAreExported) {
  obs::Tracer::Global().SetCurrentThreadName("main-test");
  const auto names = obs::Tracer::Global().ThreadNames();
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0].second, "main-test");
}

// Writers emit through the macros while the main thread drains concurrently;
// run under TSan in CI. Drained events must never be torn (a null name or
// category would mean a half-written slot escaped the seq check).
TEST_F(TracerTest, ConcurrentEmitAndDrainIsSafe) {
  obs::Tracer::Global().Start();
  constexpr int kThreads = 4;
  constexpr int kEventsPerThread = 20000;
  std::vector<std::thread> writers;
  writers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([] {
      for (int i = 0; i < kEventsPerThread; ++i) {
        TRACE_COUNTER("test", "spin", i);
        if (i % 64 == 0) {
          TRACE_SPAN("test", "chunk");
        }
      }
    });
  }
  // Drain consumes: each call returns only what arrived since the last
  // one, so the assertions cover the union of every drain (a slow mid-run
  // drain can legitimately leave nothing for the final one).
  size_t total = 0;
  auto check_drain = [&total](const std::vector<obs::TraceEvent>& events) {
    total += events.size();
    for (const obs::TraceEvent& e : events) {
      ASSERT_NE(e.name, nullptr);
      ASSERT_NE(e.category, nullptr);
      ASSERT_GE(static_cast<int32_t>(e.phase), 0);
      ASSERT_LE(static_cast<int32_t>(e.phase), 2);
    }
    for (size_t i = 1; i < events.size(); ++i) {
      EXPECT_LE(events[i - 1].ts, events[i].ts);  // drain sorts by timestamp
    }
  };
  for (int i = 0; i < 50; ++i) {
    check_drain(obs::Tracer::Global().Drain());
  }
  for (std::thread& w : writers) w.join();
  obs::Tracer::Global().Stop();
  check_drain(obs::Tracer::Global().Drain());
  EXPECT_GT(total, 0u);
  EXPECT_LE(total, static_cast<size_t>(kThreads) *
                       (kEventsPerThread + kEventsPerThread / 64 + 1));
}

// ---- Chrome trace export ----

TEST_F(TracerTest, ChromeTraceExportIsValidAndComplete) {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Start();
  tracer.SetCurrentThreadName("escape \"this\" \\ name");
  {
    TRACE_SPAN("cat_span", "a_span");
  }
  TRACE_INSTANT("cat_inst", "an_instant");
  TRACE_COUNTER("cat_ctr", "a_counter", 17);
  tracer.Stop();

  std::ostringstream os;
  obs::WriteChromeTrace(os, tracer.Drain(), tracer.ThreadNames());
  const std::string json = os.str();

  JsonValue root;
  ASSERT_TRUE(JsonParser(json).Parse(&root)) << json;
  const JsonValue* trace_events = root.Find("traceEvents");
  ASSERT_NE(trace_events, nullptr);
  ASSERT_EQ(trace_events->type, JsonValue::Type::kArray);
  // 1 thread-name metadata record + 3 events.
  ASSERT_EQ(trace_events->array.size(), 4u);

  bool saw_meta = false, saw_span = false, saw_instant = false,
       saw_counter = false;
  for (const JsonValue& e : trace_events->array) {
    const JsonValue* ph = e.Find("ph");
    ASSERT_NE(ph, nullptr);
    ASSERT_NE(e.Find("pid"), nullptr);
    ASSERT_NE(e.Find("tid"), nullptr);
    if (ph->str == "M") {
      saw_meta = true;
      EXPECT_EQ(e.Find("args")->Find("name")->str, "escape \"this\" \\ name");
    } else if (ph->str == "X") {
      saw_span = true;
      EXPECT_EQ(e.Find("name")->str, "a_span");
      EXPECT_EQ(e.Find("cat")->str, "cat_span");
      ASSERT_NE(e.Find("dur"), nullptr);
      EXPECT_GE(e.Find("dur")->number, 0.0);
      ASSERT_NE(e.Find("ts"), nullptr);
    } else if (ph->str == "i") {
      saw_instant = true;
      EXPECT_EQ(e.Find("name")->str, "an_instant");
      EXPECT_EQ(e.Find("s")->str, "t");
    } else if (ph->str == "C") {
      saw_counter = true;
      EXPECT_EQ(e.Find("name")->str, "a_counter");
      EXPECT_EQ(e.Find("args")->Find("value")->number, 17.0);
    } else {
      FAIL() << "unexpected phase " << ph->str;
    }
  }
  EXPECT_TRUE(saw_meta);
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_instant);
  EXPECT_TRUE(saw_counter);
}

// A /tracez scrape (Snapshot) must not steal events from the Chrome export
// (Drain), and the export records when it ran and how much it took.
TEST_F(TracerTest, ScrapeDoesNotStealFromExportAndDrainRecordsMetadata) {
  obs::Tracer& tracer = obs::Tracer::Global();
  EXPECT_EQ(tracer.last_drain_us(), 0);  // "never"
  tracer.Start();
  TRACE_INSTANT("test", "one");
  TRACE_INSTANT("test", "two");
  TRACE_INSTANT("test", "three");
  tracer.Stop();

  // Two scrapes in a row see the same events.
  EXPECT_EQ(tracer.Snapshot().size(), 3u);
  EXPECT_EQ(tracer.Snapshot().size(), 3u);
  EXPECT_EQ(tracer.last_drain_us(), 0);  // scrapes are not drains

  // The export still gets everything, and stamps the metadata.
  EXPECT_EQ(tracer.Drain().size(), 3u);
  EXPECT_GT(tracer.last_drain_us(), 0);
  EXPECT_EQ(tracer.last_drain_count(), 3);

  // A second export does not re-emit; a scrape still sees the residents.
  EXPECT_TRUE(tracer.Drain().empty());
  EXPECT_EQ(tracer.last_drain_count(), 0);
  EXPECT_EQ(tracer.Snapshot().size(), 3u);
}

// Flow events render as Chrome flow arrows: "s"/"t"/"f" records sharing an
// id, with "bp":"e" on the end so Perfetto binds the arrow to the enclosing
// slice.
TEST_F(TracerTest, ChromeTraceExportRendersFlowArrows) {
  obs::Tracer& tracer = obs::Tracer::Global();
  tracer.Start();
  TRACE_FLOW_START("flow", "tuple_path", 42);
  TRACE_FLOW_STEP("flow", "tuple_path", 42);
  TRACE_FLOW_END("flow", "tuple_path", 42);
  tracer.Stop();

  std::ostringstream os;
  obs::WriteChromeTrace(os, tracer.Drain(), tracer.ThreadNames());

  JsonValue root;
  ASSERT_TRUE(JsonParser(os.str()).Parse(&root)) << os.str();
  const JsonValue* trace_events = root.Find("traceEvents");
  ASSERT_NE(trace_events, nullptr);
  ASSERT_EQ(trace_events->array.size(), 3u);

  bool saw_start = false, saw_step = false, saw_end = false;
  for (const JsonValue& e : trace_events->array) {
    const JsonValue* ph = e.Find("ph");
    ASSERT_NE(ph, nullptr);
    EXPECT_EQ(e.Find("name")->str, "tuple_path");
    EXPECT_EQ(e.Find("cat")->str, "flow");
    ASSERT_NE(e.Find("id"), nullptr);
    EXPECT_EQ(e.Find("id")->number, 42.0);
    if (ph->str == "s") {
      saw_start = true;
    } else if (ph->str == "t") {
      saw_step = true;
    } else if (ph->str == "f") {
      saw_end = true;
      ASSERT_NE(e.Find("bp"), nullptr);
      EXPECT_EQ(e.Find("bp")->str, "e");
    } else {
      FAIL() << "unexpected phase " << ph->str;
    }
  }
  EXPECT_TRUE(saw_start);
  EXPECT_TRUE(saw_step);
  EXPECT_TRUE(saw_end);
}

#endif  // PJOIN_TRACING

TEST_F(TracerTest, EmptyTraceIsStillValidJson) {
  std::ostringstream os;
  obs::WriteChromeTrace(os, {}, {});
  JsonValue root;
  ASSERT_TRUE(JsonParser(os.str()).Parse(&root));
  const JsonValue* trace_events = root.Find("traceEvents");
  ASSERT_NE(trace_events, nullptr);
  EXPECT_TRUE(trace_events->array.empty());
  EXPECT_EQ(root.Find("displayTimeUnit")->str, "ms");
}

}  // namespace
}  // namespace pjoin
