// GroupBy: a punctuation-aware grouping aggregate.
//
// This is the blocking operator of the paper's motivating query (Fig 1):
// without punctuations it could only emit at end-of-stream; punctuations on
// the grouping attribute let it emit a group's result — and release its
// state — as soon as the group is known to be complete.

#ifndef PJOIN_OPS_GROUPBY_H_
#define PJOIN_OPS_GROUPBY_H_

#include <map>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "ops/operator.h"
#include "tuple/schema.h"

namespace pjoin {

enum class AggKind { kSum = 0, kCount, kAvg, kMin, kMax };

/// One aggregate column: `kind` applied to input field `field`, named
/// `name` in the output schema. kCount ignores `field`.
struct AggSpec {
  AggKind kind;
  size_t field;
  std::string name;
};

class GroupBy : public Operator {
 public:
  /// Groups the input by `group_field` and computes `aggs`. Output schema:
  /// (<group field>, <agg name>...); sums/avgs are float64, counts int64,
  /// min/max keep the input field type.
  ///
  /// `group_aliases` lists fields known to always equal the group field —
  /// e.g. the other key column of an upstream equi-join. Punctuation
  /// patterns on an alias then count as constraints on the group.
  GroupBy(SchemaPtr input_schema, size_t group_field,
          std::vector<AggSpec> aggs, std::vector<size_t> group_aliases = {});

  const SchemaPtr& output_schema() const { return output_schema_; }

  Status OnTuple(const Tuple& tuple, TimeMicros arrival) override;

  /// A punctuation whose group-attribute pattern is accompanied by
  /// wildcards elsewhere closes every covered group: their results are
  /// emitted, their state dropped, and the punctuation is forwarded.
  Status OnPunctuation(const Punctuation& punct, TimeMicros arrival) override;

  /// Emits all remaining groups.
  Status OnEndOfStream() override;

  /// Number of groups currently held in state.
  int64_t open_groups() const { return static_cast<int64_t>(groups_.size()); }
  int64_t results_emitted() const { return results_emitted_; }
  const CounterSet& counters() const { return counters_; }

 private:
  struct AggState {
    double sum = 0.0;
    int64_t count = 0;
    Value min;
    Value max;
  };

  /// Emits the result row of one group.
  Status EmitGroup(const Value& key, const std::vector<AggState>& states,
                   TimeMicros arrival);

  double NumericValue(const Value& v) const;

  SchemaPtr input_schema_;
  SchemaPtr output_schema_;
  size_t group_field_;
  std::vector<AggSpec> aggs_;
  std::vector<size_t> group_aliases_;
  std::map<Value, std::vector<AggState>> groups_;
  int64_t results_emitted_ = 0;
  CounterSet counters_;
};

}  // namespace pjoin

#endif  // PJOIN_OPS_GROUPBY_H_
