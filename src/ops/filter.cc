#include "ops/filter.h"

#include "common/macros.h"

namespace pjoin {

Filter::Filter(Predicate predicate) : predicate_(std::move(predicate)) {
  PJOIN_DCHECK(predicate_ != nullptr);
}

Status Filter::OnTuple(const Tuple& tuple, TimeMicros arrival) {
  if (!predicate_(tuple)) {
    ++dropped_;
    return Status::OK();
  }
  ++passed_;
  return EmitTuple(tuple, arrival);
}

}  // namespace pjoin
