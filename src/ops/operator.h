// Operator: base class for unary push-based stream operators downstream of
// a join (group-by, filter, project, sinks).

#ifndef PJOIN_OPS_OPERATOR_H_
#define PJOIN_OPS_OPERATOR_H_

#include "common/status.h"
#include "stream/element.h"

namespace pjoin {

class Operator {
 public:
  virtual ~Operator() = default;

  /// Processes one input tuple.
  virtual Status OnTuple(const Tuple& tuple, TimeMicros arrival) = 0;
  /// Processes one input punctuation. Default: forward unchanged.
  virtual Status OnPunctuation(const Punctuation& punct, TimeMicros arrival);
  /// Input exhausted. Default: forward end-of-stream.
  virtual Status OnEndOfStream();

  /// Dispatches a stream element to the handler above.
  Status OnElement(const StreamElement& element);

  /// Sets the next operator; may be null (results are dropped).
  void set_downstream(Operator* downstream) { downstream_ = downstream; }
  Operator* downstream() const { return downstream_; }

 protected:
  Status EmitTuple(const Tuple& tuple, TimeMicros arrival);
  Status EmitPunctuation(const Punctuation& punct, TimeMicros arrival);
  Status EmitEndOfStream();

 private:
  Operator* downstream_ = nullptr;
};

}  // namespace pjoin

#endif  // PJOIN_OPS_OPERATOR_H_
