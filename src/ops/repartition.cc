#include "ops/repartition.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace pjoin {

HotKeyDetector::HotKeyDetector(size_t capacity, int num_shards)
    : capacity_(capacity == 0 ? 1 : capacity),
      window_load_(static_cast<size_t>(num_shards), 0) {
  slots_.reserve(capacity_);
}

void HotKeyDetector::Observe(const Value& key, uint64_t key_hash, int side) {
  ++observed_;
  const auto it = index_.find(key_hash);
  if (it != index_.end()) {
    Entry& e = slots_[it->second];
    ++e.count;
    ++e.side_count[side];
    return;
  }
  if (slots_.size() < capacity_) {
    index_[key_hash] = slots_.size();
    Entry e;
    e.key = key;
    e.key_hash = key_hash;
    e.count = 1;
    e.side_count[side] = 1;
    slots_.push_back(std::move(e));
    return;
  }
  // Space-saving eviction: the new key takes over the minimum-count slot,
  // inheriting its count as both estimate floor and error bound. The argmin
  // scan is bounded by the (small) capacity and runs only on sampled misses.
  size_t victim = 0;
  for (size_t i = 1; i < slots_.size(); ++i) {
    if (slots_[i].count < slots_[victim].count) victim = i;
  }
  Entry& e = slots_[victim];
  index_.erase(e.key_hash);
  index_[key_hash] = victim;
  e.error = e.count;
  ++e.count;
  e.key = key;
  e.key_hash = key_hash;
  e.side_count[0] = 0;
  e.side_count[1] = 0;
  e.side_count[side] = 1;
}

int64_t HotKeyDetector::window_tuples() const {
  int64_t total = 0;
  for (const int64_t load : window_load_) total += load;
  return total;
}

double HotKeyDetector::WindowImbalance() const {
  const int64_t total = window_tuples();
  if (total == 0) return 0.0;
  int64_t max_load = 0;
  for (const int64_t load : window_load_) max_load = std::max(max_load, load);
  const double mean =
      static_cast<double>(total) / static_cast<double>(window_load_.size());
  return static_cast<double>(max_load) / mean;
}

void HotKeyDetector::ResetWindow() {
  std::fill(window_load_.begin(), window_load_.end(), 0);
  index_.clear();
  slots_.clear();
  observed_ = 0;
}

std::vector<HotKeyDetector::Entry> HotKeyDetector::TopK() const {
  std::vector<Entry> out = slots_;
  std::sort(out.begin(), out.end(),
            [](const Entry& a, const Entry& b) { return a.count > b.count; });
  return out;
}

RepartitionController::RepartitionController(const RepartitionPolicy& policy,
                                             ShardMap* map)
    : policy_(policy), map_(map), detector_(policy.topk, map->num_shards()) {
  PJOIN_DCHECK(policy_.sample_every > 0);
  PJOIN_DCHECK(policy_.check_interval > 0);
}

RepartitionDecision RepartitionController::Decide() {
  RepartitionDecision none;
  const int64_t window = since_check_;
  since_check_ = 0;
  since_forced_ += window;
  const double imbalance = detector_.WindowImbalance();
  last_imbalance_ = imbalance;
  // Capture the window's state, then reset: ResetWindow clears the loads
  // AND the sketch (windowed top-k), and everything below judges this
  // window, not the run's history.
  const std::vector<int64_t> loads = detector_.window_load();
  const std::vector<HotKeyDetector::Entry> top = detector_.TopK();
  const int64_t window_observed = detector_.observed();
  const int num_shards = map_->num_shards();
  detector_.ResetWindow();
  if (num_shards < 2) return none;

  const bool forced = policy_.force_migration_interval > 0 &&
                      since_forced_ >= policy_.force_migration_interval;
  const bool warm = detector_.total_routed() >= policy_.min_tuples;
  if (std::getenv("PJOIN_PAR_DEBUG") != nullptr) {
    const double dbg_share =
        top.empty() || window_observed == 0
            ? 0.0
            : static_cast<double>(top[0].count) /
                  static_cast<double>(window_observed);
    std::fprintf(stderr,
                 "[repart] check window=%lld imbalance=%.3f warm=%d forced=%d "
                 "observed=%lld top_share=%.3f replicated=%lld\n",
                 static_cast<long long>(window), imbalance, warm ? 1 : 0,
                 forced ? 1 : 0, static_cast<long long>(window_observed),
                 dbg_share, static_cast<long long>(map_->replicated_keys()));
  }
  const int hottest = static_cast<int>(
      std::max_element(loads.begin(), loads.end()) - loads.begin());
  const int coldest = static_cast<int>(
      std::min_element(loads.begin(), loads.end()) - loads.begin());
  // Migration persistence: the same shard must be hottest in consecutive
  // imbalanced windows. A one-window spike is sampling noise or a reign
  // boundary — moving state on it is churn. A balanced window resets the
  // streak.
  const int prev_hottest = last_hottest_;
  last_hottest_ = imbalance >= policy_.imbalance_trigger ? hottest : -1;

  if (!forced && (!warm || imbalance < policy_.imbalance_trigger)) {
    return none;
  }

  // Replication first: a single key dominating the stream cannot be fixed
  // by moving it (it saturates whichever shard owns it); spreading its
  // probe work across all shards can.
  if (!forced && window_observed > 0 &&
      map_->replicated_keys() < policy_.max_hot_keys) {
    for (const HotKeyDetector::Entry& e : top) {
      const double share = static_cast<double>(e.count) /
                           static_cast<double>(window_observed);
      if (share < policy_.hot_fraction) break;  // sorted: none hotter below
      if (map_->IsReplicated(e.key_hash)) continue;
      if (rejected_.count(e.key_hash) != 0) continue;
      RepartitionDecision d;
      d.kind = RepartitionDecision::Kind::kReplicate;
      d.key = e.key;
      d.key_hash = e.key_hash;
      d.from = map_->OwnerOf(e.key_hash);
      d.spray_side = e.side_count[1] > e.side_count[0] ? 1 : 0;
      return d;
    }
  }

  // Migration: move the hottest key owned by the most loaded shard to the
  // least loaded one. Forced mode (tests) takes the sketch's top key
  // regardless of thresholds.
  if (!forced && (imbalance < policy_.migrate_trigger ||
                  hottest != prev_hottest)) {
    return none;
  }
  if (policy_.max_migrations > 0 &&
      migrations_completed_ >= policy_.max_migrations) {
    return none;
  }
  for (const HotKeyDetector::Entry& e : top) {
    if (map_->IsReplicated(e.key_hash)) continue;
    if (rejected_.count(e.key_hash) != 0) continue;
    const int owner = map_->OwnerOf(e.key_hash);
    if (!forced && owner != hottest) continue;
    int to = forced ? (owner + 1) % num_shards : coldest;
    if (to == owner) continue;
    since_forced_ = 0;
    RepartitionDecision d;
    d.kind = RepartitionDecision::Kind::kMigrate;
    d.key = e.key;
    d.key_hash = e.key_hash;
    d.from = owner;
    d.to = to;
    return d;
  }
  return none;
}

}  // namespace pjoin
