// Sinks: terminal operators that collect or count stream output.

#ifndef PJOIN_OPS_SINK_H_
#define PJOIN_OPS_SINK_H_

#include <functional>
#include <vector>

#include "ops/operator.h"

namespace pjoin {

/// Collects every tuple and punctuation it receives.
class CollectorSink : public Operator {
 public:
  Status OnTuple(const Tuple& tuple, TimeMicros arrival) override;
  Status OnPunctuation(const Punctuation& punct, TimeMicros arrival) override;
  Status OnEndOfStream() override;

  const std::vector<Tuple>& tuples() const { return tuples_; }
  const std::vector<Punctuation>& punctuations() const { return puncts_; }
  bool saw_end_of_stream() const { return eos_; }

 private:
  std::vector<Tuple> tuples_;
  std::vector<Punctuation> puncts_;
  bool eos_ = false;
};

/// Counts tuples/punctuations without retaining them.
class CountingSink : public Operator {
 public:
  Status OnTuple(const Tuple& tuple, TimeMicros arrival) override;
  Status OnPunctuation(const Punctuation& punct, TimeMicros arrival) override;
  Status OnEndOfStream() override;

  int64_t tuple_count() const { return tuple_count_; }
  int64_t punct_count() const { return punct_count_; }
  bool saw_end_of_stream() const { return eos_; }

 private:
  int64_t tuple_count_ = 0;
  int64_t punct_count_ = 0;
  bool eos_ = false;
};

/// Invokes callbacks; useful for ad-hoc instrumentation in benches.
class CallbackSink : public Operator {
 public:
  using TupleFn = std::function<void(const Tuple&, TimeMicros)>;
  using PunctFn = std::function<void(const Punctuation&, TimeMicros)>;

  CallbackSink(TupleFn on_tuple, PunctFn on_punct = nullptr);

  Status OnTuple(const Tuple& tuple, TimeMicros arrival) override;
  Status OnPunctuation(const Punctuation& punct, TimeMicros arrival) override;

 private:
  TupleFn on_tuple_;
  PunctFn on_punct_;
};

}  // namespace pjoin

#endif  // PJOIN_OPS_SINK_H_
