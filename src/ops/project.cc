#include "ops/project.h"

#include "common/macros.h"

namespace pjoin {

Project::Project(SchemaPtr input_schema, std::vector<size_t> columns)
    : input_schema_(std::move(input_schema)), columns_(std::move(columns)) {
  PJOIN_DCHECK(input_schema_ != nullptr);
  std::vector<Field> fields;
  fields.reserve(columns_.size());
  for (size_t c : columns_) {
    PJOIN_DCHECK(c < input_schema_->num_fields());
    fields.push_back(input_schema_->field(c));
  }
  output_schema_ = Schema::Make(std::move(fields));
}

Status Project::OnTuple(const Tuple& tuple, TimeMicros arrival) {
  std::vector<Value> values;
  values.reserve(columns_.size());
  for (size_t c : columns_) values.push_back(tuple.field(c));
  return EmitTuple(Tuple(output_schema_, std::move(values)), arrival);
}

Status Project::OnPunctuation(const Punctuation& punct, TimeMicros arrival) {
  PJOIN_DCHECK(punct.num_patterns() == input_schema_->num_fields());
  // A punctuation is only projectable when every dropped column is the
  // wildcard: <key=5, payload=3> rules out (5, 3) tuples but says nothing
  // about key=5 with other payloads, so it must not become <key=5>.
  std::vector<bool> kept(input_schema_->num_fields(), false);
  for (size_t c : columns_) kept[c] = true;
  for (size_t i = 0; i < punct.num_patterns(); ++i) {
    if (!kept[i] && !punct.pattern(i).IsWildcard()) return Status::OK();
  }
  std::vector<Pattern> patterns;
  patterns.reserve(columns_.size());
  for (size_t c : columns_) patterns.push_back(punct.pattern(c));
  Punctuation projected(std::move(patterns));
  // Keep it only if it still constrains something.
  if (projected.IsAllWildcard()) return Status::OK();
  return EmitPunctuation(projected, arrival);
}

}  // namespace pjoin
