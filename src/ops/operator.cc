#include "ops/operator.h"

namespace pjoin {

Status Operator::OnPunctuation(const Punctuation& punct, TimeMicros arrival) {
  return EmitPunctuation(punct, arrival);
}

Status Operator::OnEndOfStream() { return EmitEndOfStream(); }

Status Operator::OnElement(const StreamElement& element) {
  switch (element.kind()) {
    case ElementKind::kTuple:
      return OnTuple(element.tuple(), element.arrival());
    case ElementKind::kPunctuation:
      return OnPunctuation(element.punctuation(), element.arrival());
    case ElementKind::kEndOfStream:
      return OnEndOfStream();
  }
  return Status::Internal("unknown element kind");
}

Status Operator::EmitTuple(const Tuple& tuple, TimeMicros arrival) {
  if (downstream_ == nullptr) return Status::OK();
  return downstream_->OnTuple(tuple, arrival);
}

Status Operator::EmitPunctuation(const Punctuation& punct,
                                 TimeMicros arrival) {
  if (downstream_ == nullptr) return Status::OK();
  return downstream_->OnPunctuation(punct, arrival);
}

Status Operator::EmitEndOfStream() {
  if (downstream_ == nullptr) return Status::OK();
  return downstream_->OnEndOfStream();
}

}  // namespace pjoin
