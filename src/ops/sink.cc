#include "ops/sink.h"

namespace pjoin {

Status CollectorSink::OnTuple(const Tuple& tuple, TimeMicros arrival) {
  (void)arrival;
  tuples_.push_back(tuple);
  return Status::OK();
}

Status CollectorSink::OnPunctuation(const Punctuation& punct,
                                    TimeMicros arrival) {
  (void)arrival;
  puncts_.push_back(punct);
  return Status::OK();
}

Status CollectorSink::OnEndOfStream() {
  eos_ = true;
  return Status::OK();
}

Status CountingSink::OnTuple(const Tuple& tuple, TimeMicros arrival) {
  (void)tuple;
  (void)arrival;
  ++tuple_count_;
  return Status::OK();
}

Status CountingSink::OnPunctuation(const Punctuation& punct,
                                   TimeMicros arrival) {
  (void)punct;
  (void)arrival;
  ++punct_count_;
  return Status::OK();
}

Status CountingSink::OnEndOfStream() {
  eos_ = true;
  return Status::OK();
}

CallbackSink::CallbackSink(TupleFn on_tuple, PunctFn on_punct)
    : on_tuple_(std::move(on_tuple)), on_punct_(std::move(on_punct)) {}

Status CallbackSink::OnTuple(const Tuple& tuple, TimeMicros arrival) {
  if (on_tuple_) on_tuple_(tuple, arrival);
  return Status::OK();
}

Status CallbackSink::OnPunctuation(const Punctuation& punct,
                                   TimeMicros arrival) {
  if (on_punct_) on_punct_(punct, arrival);
  return Status::OK();
}

}  // namespace pjoin
