#include "ops/release_board.h"

#include "common/macros.h"
#include "punct/pattern.h"

namespace pjoin {

void PunctReleaseBoard::Configure(size_t left_key_pos, size_t right_key_pos,
                                  int num_shards) {
  PJOIN_DCHECK(num_shards > 0);
  key_pos_[0] = left_key_pos;
  key_pos_[1] = right_key_pos;
  num_shards_ = num_shards;
}

int PunctReleaseBoard::ExpectedShards(const Punctuation& p) const {
  // Mirrors the router's dispatch rule from the release side: a punctuation
  // whose join-key pattern is a constant was routed to the key's owning
  // shard alone, so exactly one release completes it; anything else was
  // broadcast and needs a release from every shard.
  for (const size_t pos : key_pos_) {
    if (pos < p.num_patterns() && p.pattern(pos).IsConstant()) return 1;
  }
  return num_shards_;
}

void PunctReleaseBoard::NoteDispatch(const Punctuation& p,
                                     int expected_shards) {
  PJOIN_DCHECK(expected_shards > 0);
  counts_[p.ToString()].dispatched.push_back(expected_shards);
}

bool PunctReleaseBoard::Release(const Punctuation& p) {
  Entry& e = counts_[p.ToString()];
  if (e.expected == 0) {
    // A new round opens: its fan-out is whatever the router recorded at
    // dispatch time, or the static pattern inference when nothing was
    // recorded. Interleaved releases of differently-fanned rounds of the
    // same string still emit once per dispatched round — each completed
    // count consumes exactly one recorded fan-out.
    if (!e.dispatched.empty()) {
      e.expected = e.dispatched.front();
      e.dispatched.pop_front();
    } else {
      e.expected = ExpectedShards(p);
    }
  }
  const bool was_mid_round = e.count != 0;
  if (++e.count < e.expected) {
    if (!was_mid_round) ++pending_;
    return false;
  }
  e.count = 0;
  e.expected = 0;
  if (was_mid_round) --pending_;
  return true;
}

}  // namespace pjoin
