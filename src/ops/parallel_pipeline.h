// ParallelJoinPipeline: partition-parallel execution of a symmetric stream
// join (PJoin / XJoin / SHJ) over a lock-free dataflow spine.
//
// Topology (docs/PERFORMANCE.md):
//
//   producer L ─(ring)─┐           ┌─(ring)─> shard 0 ─(ring)─┐
//                      ├─> router ─┼─(ring)─> shard 1 ─(ring)─┼─> merger
//   producer R ─(ring)─┘           └─(ring)─> shard N-1 ──────┘  (caller)
//
// Every edge is a bounded SpscRing (common/spsc_ring.h) of batches; no
// mutex is taken anywhere on the data path. Two producer threads publish
// read-only spans of the caller's input vectors (zero copy — elements are
// never duplicated; shards borrow `const StreamElement*`s that outlive the
// run). The router merges the two inputs in global arrival order, hashes
// each tuple's join key once, and stages it — pointer, side, key hash — in
// a columnar RoutedBatch for the shard the mixed hash selects. Shards feed
// whole batches to JoinOperator::ProcessBatch, which reuses the router's
// key hashes for partition selection, index probe and insert, and
// amortizes the per-tuple counter bookkeeping across each batch.
//
// Because an equi-join only ever pairs tuples of equal keys, and all
// tuples of one key hash to the same shard, every shard runs the complete
// single-threaded join algorithm over a disjoint key subset: memory
// portion, disk portion, purge buffer, and purge/disk-join work all stay
// shard-local.
//
// Punctuations route like tuples when they can: a constant-key
// punctuation covers tuples of exactly one key, so only that key's owning
// shard receives it — its purge, punctuation-set and propagation work
// scales down with the shard count instead of multiplying (a broadcast
// would make every shard scan its state for a key that cannot be there).
// Punctuations with non-constant patterns (ranges, wildcards) and
// end-of-stream markers are broadcast to every shard; every shard's purge
// and contract-validation decisions match the single-threaded run
// restricted to the shard's keys, because a shard holds a tuple iff it
// owns the tuple's key, and every punctuation reaches the shards owning
// the keys it covers. Per-shard FIFO delivery preserves the relative
// order of a punctuation and the tuples it covers; optionally an epoch
// barrier additionally drains all shards before dispatch resumes, making
// every punctuation a global synchronization point. Stalls are
// detected per shard (a dry shard runs its disk join / reactive stage,
// exactly as the single-threaded consumer would, then parks until data or
// close).
//
// Output runs through per-shard result rings of OutBatches — each carries
// the shard's staged results followed by its punctuation releases — merged
// on the caller's thread, which also keeps the release board (a plain map:
// the merger is single-threaded, so no lock). A punctuation is emitted
// only once every shard it was dispatched to has released it (one shard
// for key-routed punctuations, all of them for broadcasts), and every
// shard records a release only after the results it covers, so a released
// punctuation never overtakes a result it covers (the §3.3 invariant).
//
// Blocking policy (deadlock-freedom on bounded rings): producers and
// shards may park (their consumers always drain eventually); the
// router/merger thread NEVER parks — when a shard ring is full it drains
// the output rings and yields, so the merge edge can always free the
// dispatch edge.
//
// Correctness oracle: for any input, the emitted result multiset equals the
// single-threaded reference (tests/parallel_pipeline_test.cc asserts this
// per seed, for both the batched and the element dispatch path;
// bench/par_scaling.cc re-checks it for every benchmarked configuration).

#ifndef PJOIN_OPS_PARALLEL_PIPELINE_H_
#define PJOIN_OPS_PARALLEL_PIPELINE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/spsc_ring.h"
#include "exec/registry.h"
#include "fault/fault_injector.h"
#include "join/join_base.h"
#include "obs/metrics_registry.h"
#include "ops/release_board.h"
#include "ops/repartition.h"

namespace pjoin {

struct ParallelPipelineOptions {
  /// Number of shard workers; 1 degenerates to router + one worker.
  int num_shards = 4;
  /// Capacity of each input ring in elements (rounded to whole spans of
  /// `batch_size`); producers park on a full ring. 0 = a large default.
  size_t input_buffer_capacity = 8192;
  /// Capacity of each shard's routed ring in elements (rounded to whole
  /// batches); the router backpressures — drains outputs and yields,
  /// never parks — on a full ring. 0 = a large default.
  size_t shard_queue_capacity = 8192;
  /// Elements per RoutedBatch (router dispatch granularity).
  size_t batch_size = 256;
  /// Flush a shard's staged results into its output ring after this many
  /// results (releases always flush with the batch they end).
  size_t result_flush = 256;
  /// Broadcast punctuations behind an epoch barrier: the router waits until
  /// every shard has drained its ring before dispatching anything newer.
  /// FIFO delivery already preserves per-key punctuation order; the barrier
  /// additionally makes punctuations global synchronization points.
  bool punct_barrier = false;
  /// A dry shard reports a stall to its join (disk join / reactive stage)
  /// after this many consecutive empty polls, then parks until data/close.
  int64_t stall_polls = 4;
  /// Dispatch whole batches through JoinOperator::ProcessBatch (hash reuse
  /// + amortized bookkeeping). False replays the per-element OnElement
  /// path — same results, used by the equivalence tests and the
  /// parallel_x*_scan bench baseline's cost model.
  bool batched_probe = true;
  /// Capacity of each shard→merger output ring in OutBatches; a shard
  /// parks on a full ring until the merger drains it. Small values make
  /// sink backpressure (and therefore stall diagnosis) bite sooner.
  size_t out_ring_batches = 64;
  /// Stamp every Nth routed tuple with a flow id, traced through
  /// router→shard→merger as Chrome flow arrows (TRACE_FLOW_*). 0 disables
  /// sampling.
  uint64_t flow_sample_period = 1024;
  /// Optional registry receiving one kShardStats event per shard when the
  /// run completes (event.stream = shard id).
  EventRegistry* stats_registry = nullptr;
  /// Runtime repartitioning (ops/repartition.h): hot-key replication and
  /// key migration between shards via epoch-fenced handoffs. Disabled by
  /// default — the static pipeline pays nothing.
  RepartitionPolicy repartition;
};

/// Final per-shard occupancy of one run.
struct ShardStats {
  int shard = 0;
  /// Elements delivered to the shard (routed tuples + broadcasts).
  int64_t elements = 0;
  /// Tuples routed to the shard (its key subset).
  int64_t tuples = 0;
  int64_t results = 0;
  int64_t puncts_emitted = 0;
  int64_t stalls = 0;
  /// Final retained state (memory + disk + purge buffer) of the shard.
  int64_t state_tuples = 0;

  std::string ToString() const;
};

class ParallelJoinPipeline {
 public:
  using JoinFactory = std::function<std::unique_ptr<JoinOperator>(int shard)>;
  using ResultCallback = std::function<void(const Tuple&)>;
  using PunctCallback = std::function<void(const Punctuation&)>;

  /// `factory` builds one identically-configured join per shard.
  ParallelJoinPipeline(JoinFactory factory,
                       ParallelPipelineOptions options = {});
  ~ParallelJoinPipeline();
  PJOIN_DISALLOW_COPY_AND_MOVE(ParallelJoinPipeline);

  /// Called on the Run() caller's thread for every merged result / released
  /// punctuation. Set before Run.
  void set_result_callback(ResultCallback cb) { on_result_ = std::move(cb); }
  void set_punct_callback(PunctCallback cb) { on_punct_ = std::move(cb); }

  /// Runs producers, router and shard workers until both inputs are
  /// exhausted and all shards have finished. Single-shot. The input
  /// vectors are borrowed for the whole run (zero-copy transport) — they
  /// must outlive the call, which the reference parameters guarantee.
  Status Run(const std::vector<StreamElement>& left,
             const std::vector<StreamElement>& right);

  // ---- Introspection (valid after Run) ----
  int num_shards() const { return static_cast<int>(joins_.size()); }
  JoinOperator* shard_join(int shard) { return joins_[shard].get(); }
  const std::vector<ShardStats>& shard_stats() const { return shard_stats_; }
  /// All shard counters merged into one set.
  CounterSet MergedCounters() const;
  int64_t results_emitted() const { return results_emitted_; }
  int64_t puncts_emitted() const { return puncts_emitted_; }
  int64_t stalls_reported() const { return stalls_reported_; }
  /// Times the router hit a full shard ring and fell back to
  /// drain-outputs-and-yield (also counter pjoin_router_backpressure_waits).
  int64_t router_backpressure_waits() const {
    return router_backpressure_waits_.load();
  }
  /// Times a shard worker parked after spinning on an empty routed ring
  /// (also counter pjoin_shard_spin_parks).
  int64_t shard_spin_parks() const { return shard_spin_parks_.load(); }
  /// Punctuation epoch barriers the router executed.
  int64_t epoch_barriers() const { return epoch_barriers_; }

  // ---- Repartitioning introspection (atomics: readable mid-run) ----
  /// Key migrations completed (also counter pjoin_migrations_total).
  int64_t migrations_completed() const { return migrations_completed_.load(); }
  /// Handoffs refused or failed and rolled back cleanly (also counter
  /// pjoin_migration_rollbacks_total).
  int64_t migration_rollbacks() const { return migration_rollbacks_.load(); }
  /// Epoch-fenced handoffs started (migrations + replications + rollbacks).
  int64_t handoffs_started() const { return handoffs_started_.load(); }
  /// Keys currently hot-replicated (also gauge pjoin_hot_keys_active).
  int64_t hot_keys_active() const { return shard_map_.replicated_keys(); }
  const ShardMap& shard_map() const { return shard_map_; }

 private:
  /// A contiguous read-only chunk of one caller input vector — the unit of
  /// the producer→router rings.
  struct InputSpan {
    const StreamElement* data = nullptr;
    size_t size = 0;
  };

  /// An in-band repartitioning command, delivered through a shard's routed
  /// ring so FIFO order fences it behind every element dispatched before
  /// it. kExtract asks the (fenced) source to extract or copy a key's
  /// state; kInstall delivers the payload to a destination.
  struct RepartCommand {
    enum class Kind { kExtract, kInstall };
    Kind kind = Kind::kExtract;
    Value key;
    uint64_t key_hash = 0;
    /// Extract: copy (replication — source keeps its state) instead of
    /// move (migration).
    bool copy = false;
    uint64_t handoff_id = 0;
    /// Router-decided fault injection (FaultPlan::migration): the shard
    /// fails the step without touching state.
    bool inject_failure = false;
    /// kInstall: the state to install.
    KeyStateHandoff payload;
  };

  /// A shard's answer to a RepartCommand, shipped through its output ring.
  struct HandoffOut {
    uint64_t handoff_id = 0;
    /// False: extract answer (payload on success). True: install answer —
    /// on an injected failure the payload travels back so the router can
    /// restore it at the source.
    bool install_ack = false;
    Status status;
    KeyStateHandoff payload;
  };

  /// Columnar routed batch — the unit of the router→shard rings. Parallel
  /// flat arrays (borrowed element pointers, input sides, router-computed
  /// key hashes) keep the shard's probe loop walking plain memory, and the
  /// hashes are computed exactly once per tuple for the whole pipeline.
  struct RoutedBatch {
    std::vector<const StreamElement*> elements;
    std::vector<int8_t> sides;
    /// Join-key hash per element; 0 (unused) for punctuations and EOS.
    std::vector<uint64_t> key_hashes;
    int64_t tuple_count = 0;
    /// Wall-clock (TraceNowMicros) router dispatch time of the batch; the
    /// shard hands it to the join so emits can observe end-to-end latency.
    /// Coarse (refreshed every few router iterations).
    TimeMicros ingress_us = 0;
    /// Sampled causal-trace flow id (0 = unsampled batch): stamped by the
    /// router on ~1/flow_sample_period tuples, stepped by the shard,
    /// terminated by the merger.
    uint64_t flow_id = 0;
    /// A command batch carries exactly one command and no elements.
    std::unique_ptr<RepartCommand> command;
  };

  /// The unit of the shard→merger rings: staged results followed by the
  /// punctuation releases recorded after them. The merger emits the
  /// results first, so a release never overtakes a result it covers.
  struct OutBatch {
    std::vector<Tuple> results;
    std::vector<Punctuation> releases;
    /// Flow id carried over from the newest sampled RoutedBatch this shard
    /// processed (0 = none): lets the merger close the flow arrow.
    uint64_t flow_id = 0;
    /// A handoff answer rides alone in its own batch, behind the output
    /// the shard staged before executing the command.
    std::unique_ptr<HandoffOut> handoff;
  };

  /// Router-side state of the (single) in-flight handoff. While it is
  /// active the fenced key's tuples, all punctuations, and end-of-stream
  /// markers are parked in arrival order; everything else keeps flowing.
  struct ActiveHandoff {
    uint64_t id = 0;
    Value key;
    uint64_t key_hash = 0;
    int from = 0;
    int to = 0;
    bool replicate = false;
    int spray_side = 0;
    /// Installs still outstanding (num_shards-1 for replication, 1 for
    /// migration and rollback).
    int pending_installs = 0;
    enum class Phase { kExtract, kInstall, kRollback };
    Phase phase = Phase::kExtract;
    /// Extracted state, held between the extract answer and the install
    /// dispatch (replication installs copy from it per destination).
    KeyStateHandoff payload;
  };

  // Per-shard context: the two rings, progress counters, staging buffers.
  struct Shard;

  void RouterLoop(SpscRing<InputSpan>* in_left, SpscRing<InputSpan>* in_right);
  void ShardLoop(Shard* shard);
  /// Dispatches one element (tuple / punctuation / EOS) under the current
  /// shard map and fence state; both the main router loop and the
  /// post-fence replay of parked elements go through here.
  void RouteElement(int side, const StreamElement* e);
  /// Opens the epoch fence for one decision and sends the extract command.
  void StartHandoff(const RepartitionDecision& decision);
  /// Router-thread half of the handoff state machine: sends pending
  /// install / rollback commands and, when the fence resolved, replays the
  /// parked elements under the updated map. Called only from safe points
  /// (never from inside DrainOutputs), so command pushes cannot recurse
  /// into element staging.
  void PumpRepartition();
  /// Pushes a command batch to `shard` behind its staged elements (FIFO
  /// fencing), backpressuring like FlushStaged.
  void PushCommand(int shard, RepartCommand cmd);
  /// Shard-side command execution (extract / install against the local
  /// join), answered through the shard's output ring.
  void ExecuteCommand(Shard* shard, RepartCommand& cmd);
  /// Merger-side handoff answer: advances the state machine by setting
  /// flags PumpRepartition acts on (this can run deep inside DrainOutputs).
  void HandleHandoffOut(HandoffOut out);
  /// Appends element `e` (borrowed) to `shard`'s pending batch, flushing
  /// when full.
  void Stage(int shard, int8_t side, const StreamElement* e,
             uint64_t key_hash, TimeMicros ingress_us, uint64_t flow_id = 0);
  void FlushStaged(int shard);
  /// Waits until every shard has processed everything dispatched so far
  /// (router thread; drains outputs while waiting).
  void EpochBarrier();
  /// Drains all shard output rings into the user callbacks and the release
  /// board (router/caller thread only). Returns the number of OutBatches
  /// merged, so callers waiting on output can park when a sweep comes back
  /// empty.
  size_t DrainOutputs();
  /// Spray shard for one tuple of a replicated key: least merged output,
  /// round-robin until output differentiates the shards.
  int SprayTarget(uint64_t key_hash);
  void MergeOutBatch(OutBatch out);
  /// Shard-side: pushes staged results/releases into the shard's output
  /// ring when due (`force`, a pending release, or result_flush reached).
  void FlushShardOut(Shard* shard, bool force);

  ParallelPipelineOptions options_;
  std::vector<std::unique_ptr<JoinOperator>> joins_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<RoutedBatch> staged_;  // router-local pending batches
  ResultCallback on_result_;
  PunctCallback on_punct_;

  // ---- Repartitioning (router/merger thread only, like the board) ----
  /// The single source of truth for key → shard placement: tuple routing
  /// and punctuation routing both consult this map, so they can never
  /// disagree about a key's owner.
  ShardMap shard_map_;
  bool repart_enabled_ = false;
  std::unique_ptr<RepartitionController> controller_;
  std::unique_ptr<FaultInjector> repart_injector_;
  uint64_t next_handoff_id_ = 0;
  std::unique_ptr<ActiveHandoff> active_handoff_;
  bool fence_active_ = false;
  /// Elements parked by the fence, in arrival order: the fenced key's
  /// tuples, every punctuation, and end-of-stream markers (a parked EOS
  /// keeps the router loop alive until the fence resolves).
  std::vector<std::pair<int8_t, const StreamElement*>> deferred_;
  // Merger → router signals (same thread; flags only so HandleHandoffOut
  // never stages elements from inside DrainOutputs).
  bool send_installs_ = false;
  bool send_rollback_ = false;
  bool fence_done_ = false;
  /// Per-side join-key positions and EOS-routed markers of the running
  /// RouterLoop (members so the deferred replay shares them).
  size_t key_index_[2] = {0, 0};
  bool eos_routed_[2] = {false, false};
  /// Coarse dispatch timestamp (see RouterLoop's refresh cadence).
  TimeMicros route_now_us_ = 0;
  /// Tuples routed so far — the flow-id source: tuple ordinal N gets flow
  /// id N when N falls on the sampling period (deterministic for a fixed
  /// input order).
  int64_t routed_tuples_ = 0;
  /// Results merged per shard so far (router/merger thread). Feeds
  /// SprayTarget's least-output choice for replicated keys.
  std::vector<int64_t> merged_results_;

  /// Punctuation release board — router/caller thread only (the merger is
  /// single-threaded, which is what lets the old mutex-guarded board go).
  /// Exactly-once emission logic lives in ops/release_board.h, where the
  /// model-check suite exercises it against every ring interleaving.
  PunctReleaseBoard release_board_;

  std::vector<ShardStats> shard_stats_;
  int64_t results_emitted_ = 0;
  int64_t puncts_emitted_ = 0;
  int64_t stalls_reported_ = 0;
  int64_t epoch_barriers_ = 0;
  /// Atomics (default ordering — plain counters, no publication protocol)
  /// so the live /statusz section can read them mid-run.
  std::atomic<int64_t> router_backpressure_waits_{0};
  std::atomic<int64_t> shard_spin_parks_{0};
  std::atomic<int64_t> workers_done_{0};
  /// Output-activity eventcount: shards bump it after pushing an OutBatch
  /// (and once on exit), so the merger can park between drains instead of
  /// spin-yielding — on few-core hosts a spinning merger steals exactly the
  /// cycles the shard workers need to produce the output it waits for.
  std::atomic<uint32_t> out_activity_{0};
  obs::Counter backpressure_counter_;
  std::atomic<int64_t> migrations_completed_{0};
  std::atomic<int64_t> migration_rollbacks_{0};
  std::atomic<int64_t> handoffs_started_{0};
  obs::Counter migrations_counter_;
  obs::Counter rollbacks_counter_;
  obs::Gauge hot_keys_gauge_;
  obs::Gauge imbalance_gauge_;
  /// Release rounds still open on the board (pjoin_punct_pending_rounds).
  obs::Gauge punct_pending_gauge_;
  bool ran_ = false;
};

}  // namespace pjoin

#endif  // PJOIN_OPS_PARALLEL_PIPELINE_H_
