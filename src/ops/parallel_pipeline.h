// ParallelJoinPipeline: partition-parallel execution of a symmetric stream
// join (PJoin / XJoin / SHJ).
//
// Topology (docs/PERFORMANCE.md):
//
//   producer L ─┐                 ┌─> shard 0 (own JoinOperator) ─┐
//               ├─> router thread ┼─> shard 1                     ├─> output
//   producer R ─┘                 └─> shard N-1                  ─┘   merge
//
// Two producer threads feed the input element vectors into bounded
// StreamBuffers in batches (PushBatch). The router merges the two inputs in
// global arrival order, hashes each tuple's join key, and dispatches tuple
// batches to the shard whose key subset the hash selects. Because an
// equi-join only ever pairs tuples of equal keys, and all tuples of one key
// hash to the same shard, every shard runs the complete single-threaded
// join algorithm over a disjoint key subset: memory portion, disk portion,
// purge buffer, and purge/disk-join work all stay shard-local.
//
// Punctuations and end-of-stream markers are broadcast to every shard
// (each shard's punctuation set sees the full punctuation stream, so purge
// and contract-validation decisions are identical to the single-threaded
// run restricted to the shard's keys). Per-shard FIFO delivery preserves
// the relative order of a punctuation and the tuples it covers; optionally
// an epoch barrier additionally drains all shards before dispatch resumes,
// making every punctuation a global synchronization point. Stalls are
// detected per shard (a dry shard runs its disk join / reactive stage,
// exactly as the single-threaded consumer would).
//
// Results are merged through a concurrent output queue (shard-local
// buffers, flushed in batches); an output punctuation is released only
// after *all* shards have propagated it, which preserves the invariant
// that a punctuation follows every result it covers. The user callbacks
// run on the caller's thread.
//
// Correctness oracle: for any input, the emitted result multiset equals the
// single-threaded reference (tests/parallel_pipeline_test.cc asserts this
// per seed; bench/par_scaling.cc re-checks it for every benchmarked
// configuration).

#ifndef PJOIN_OPS_PARALLEL_PIPELINE_H_
#define PJOIN_OPS_PARALLEL_PIPELINE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "exec/registry.h"
#include "join/join_base.h"
#include "stream/stream_buffer.h"

namespace pjoin {

struct ParallelPipelineOptions {
  /// Number of shard workers; 1 degenerates to router + one worker.
  int num_shards = 4;
  /// Capacity of each input StreamBuffer (elements); producers block on a
  /// full buffer. 0 = unbounded.
  size_t input_buffer_capacity = 8192;
  /// Capacity of each shard's routed queue (elements); the router blocks on
  /// a full shard queue. 0 = unbounded.
  size_t shard_queue_capacity = 8192;
  /// Batch size for producer pushes, router pops, and shard dispatch.
  size_t batch_size = 256;
  /// Flush a shard's local result buffer into the shared output queue after
  /// this many results.
  size_t result_flush = 256;
  /// Broadcast punctuations behind an epoch barrier: the router waits until
  /// every shard has drained its queue before dispatching anything newer.
  /// FIFO delivery already preserves per-key punctuation order; the barrier
  /// additionally makes punctuations global synchronization points.
  bool punct_barrier = false;
  /// A dry shard reports a stall to its join (disk join / reactive stage)
  /// after this many consecutive empty polls.
  int64_t stall_polls = 4;
  /// Optional registry receiving one kShardStats event per shard when the
  /// run completes (event.stream = shard id).
  EventRegistry* stats_registry = nullptr;
};

/// Final per-shard occupancy of one run.
struct ShardStats {
  int shard = 0;
  /// Elements delivered to the shard (routed tuples + broadcasts).
  int64_t elements = 0;
  /// Tuples routed to the shard (its key subset).
  int64_t tuples = 0;
  int64_t results = 0;
  int64_t puncts_emitted = 0;
  int64_t stalls = 0;
  /// Final retained state (memory + disk + purge buffer) of the shard.
  int64_t state_tuples = 0;

  std::string ToString() const;
};

class ParallelJoinPipeline {
 public:
  using JoinFactory = std::function<std::unique_ptr<JoinOperator>(int shard)>;
  using ResultCallback = std::function<void(const Tuple&)>;
  using PunctCallback = std::function<void(const Punctuation&)>;

  /// `factory` builds one identically-configured join per shard.
  ParallelJoinPipeline(JoinFactory factory,
                       ParallelPipelineOptions options = {});
  ~ParallelJoinPipeline();
  PJOIN_DISALLOW_COPY_AND_MOVE(ParallelJoinPipeline);

  /// Called on the Run() caller's thread for every merged result / released
  /// punctuation. Set before Run.
  void set_result_callback(ResultCallback cb) { on_result_ = std::move(cb); }
  void set_punct_callback(PunctCallback cb) { on_punct_ = std::move(cb); }

  /// Runs producers, router and shard workers until both inputs are
  /// exhausted and all shards have finished. Single-shot.
  Status Run(const std::vector<StreamElement>& left,
             const std::vector<StreamElement>& right);

  // ---- Introspection (valid after Run) ----
  int num_shards() const { return static_cast<int>(joins_.size()); }
  JoinOperator* shard_join(int shard) { return joins_[shard].get(); }
  const std::vector<ShardStats>& shard_stats() const { return shard_stats_; }
  /// All shard counters merged into one set.
  CounterSet MergedCounters() const;
  int64_t results_emitted() const { return results_emitted_; }
  int64_t puncts_emitted() const { return puncts_emitted_; }
  int64_t stalls_reported() const { return stalls_reported_; }
  /// Times the router blocked on a full shard queue.
  int64_t router_backpressure_waits() const;
  /// Punctuation epoch barriers the router executed.
  int64_t epoch_barriers() const { return epoch_barriers_; }

 private:
  // Negative-compile probe for the thread-safety CI job; see
  // tests/thread_safety_negative.cc.
  friend class ThreadSafetyNegativeProbe;

  // An element tagged with its input side, as queued to a shard.
  struct Routed {
    int8_t side;
    StreamElement element;
    /// Wall-clock (TraceNowMicros) router dispatch time; the shard worker
    /// hands it to the join so result/punctuation emits can observe
    /// end-to-end latency. Coarse (refreshed every few router iterations).
    TimeMicros ingress_us = 0;
  };

  // A bounded MPSC-ish queue of routed elements (single router producer,
  // single shard consumer) with batched push/pop and a drain signal for the
  // epoch barrier.
  class ShardQueue;

  // Per-shard context: the queue, the worker's result staging buffer, and
  // counters shared with the router.
  struct Shard;

  void RouterLoop(StreamBuffer* in_left, StreamBuffer* in_right);
  void ShardLoop(Shard* shard);
  /// Appends `e` of `side` to `shard`'s pending batch, flushing when full.
  /// Takes ownership — routed tuples move all the way into the shard queue
  /// without copying (broadcasts copy once per extra shard).
  void Stage(int shard, int8_t side, StreamElement e, TimeMicros ingress_us);
  void FlushStaged(int shard);
  /// Waits until every shard has processed everything dispatched so far.
  void EpochBarrier();
  /// Drains the shared output queue into the user callbacks (router/caller
  /// thread only).
  void DrainOutputs() EXCLUDES(output_mu_);
  /// Shard-side: flush `shard`'s local results into the output queue, then
  /// record punctuation releases on the merge board.
  void PublishShardOutputs(Shard* shard) EXCLUDES(output_mu_);
  /// Shard-side: publish `shard`'s staged results, then record its release
  /// of punctuation `p` on the board; the punctuation moves to the output
  /// queue once every shard has released it (§3.3 invariant: a punctuation
  /// only ever trails the results it covers).
  void ReleasePunct(Shard* shard, const Punctuation& p) EXCLUDES(output_mu_);
  /// Moves `shard`'s staged results into the shared output queue.
  void FlushShardResultsLocked(Shard* shard) REQUIRES(output_mu_);

  ParallelPipelineOptions options_;
  std::vector<std::unique_ptr<JoinOperator>> joins_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::vector<Routed>> staged_;  // router-local pending batches
  ResultCallback on_result_;
  PunctCallback on_punct_;

  // Output merge: results + released punctuations, drained on the caller's
  // thread. The board counts shard releases per punctuation; a punctuation
  // moves to output_puncts_ each time all shards have released it (so a
  // punctuation only ever trails the results it covers).
  struct PunctCell {
    int releases = 0;
    std::optional<Punctuation> punct;
  };
  Mutex output_mu_;
  std::deque<Tuple> output_results_ GUARDED_BY(output_mu_);
  std::deque<Punctuation> output_puncts_ GUARDED_BY(output_mu_);
  std::map<std::string, PunctCell> punct_board_ GUARDED_BY(output_mu_);

  std::vector<ShardStats> shard_stats_;
  int64_t results_emitted_ = 0;
  int64_t puncts_emitted_ = 0;
  int64_t stalls_reported_ = 0;
  int64_t epoch_barriers_ = 0;
  bool ran_ = false;
};

}  // namespace pjoin

#endif  // PJOIN_OPS_PARALLEL_PIPELINE_H_
