// Runtime repartitioning for the parallel join pipeline (PanJoin direction;
// docs/PERFORMANCE.md "Skew"): the router-side machinery that turns static
// key-hash sharding into an adaptive placement.
//
// Three pieces, all owned and driven by the single router/merger thread —
// none of this is shared state, so none of it takes a lock:
//
//  - ShardMap: the one source of truth for key → shard ownership. Base
//    mapping is the mixed key-hash modulo; migrations add per-key overrides
//    and hot keys a replication entry. Both tuple routing AND punctuation
//    routing consult this map, so the two can never disagree about a key's
//    owner (the bug class this replaces: two copies of the owner
//    computation drifting apart).
//
//  - HotKeyDetector: a space-saving top-k sketch (Metwally et al.) over the
//    routed tuples' join keys, plus per-shard load counters for the current
//    observation window. Sketch updates are sampled (policy.sample_every)
//    so the router's per-tuple routing cost stays flat on unskewed streams.
//
//  - RepartitionController: the decision policy. Every check_interval
//    routed tuples it compares the window's shard loads; when the imbalance
//    ratio crosses the trigger it either *replicates* the dominant key
//    (frequency share >= hot_fraction: build side broadcast to all shards,
//    probe side sprayed round-robin) or *migrates* the hottest key owned by
//    the most loaded shard to the least loaded one. The pipeline executes
//    the decision via an epoch-fenced handoff through the existing SPSC
//    rings (ops/parallel_pipeline.h) and reports the outcome back.
//
// Replication protocol (why it is exactly-once): for a hot key k, the
// sprayed side's tuples each go to exactly one shard, where they probe the
// build side's full local replica (every prior build tuple of k is there)
// and insert locally; the build side's tuples go to every shard, where each
// probes the local spray-state (every sprayed tuple of k lives at exactly
// one shard) and inserts into the local replica. Every (probe, build) pair
// therefore meets at exactly one shard.

#ifndef PJOIN_OPS_REPARTITION_H_
#define PJOIN_OPS_REPARTITION_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/macros.h"
#include "fault/fault_plan.h"
#include "tuple/value.h"

namespace pjoin {

/// Knobs of the runtime repartitioning layer. Disabled by default: a static
/// pipeline pays nothing (no sketch, no per-tuple checks).
struct RepartitionPolicy {
  bool enabled = false;
  /// Sketch capacity (distinct keys tracked). Space-saving guarantees any
  /// key with frequency > total/capacity is present.
  size_t topk = 64;
  /// Update the sketch once per this many routed tuples (load counters
  /// update on every tuple). Sampling keeps the unskewed routing hot path
  /// flat; frequency *fractions* are unbiased under uniform sampling.
  int64_t sample_every = 4;
  /// Routed tuples between repartition decisions (one observation window).
  int64_t check_interval = 4096;
  /// No decisions before this many routed tuples (sketch warm-up).
  int64_t min_tuples = 8192;
  /// Act only when max_window_load / mean_window_load >= this.
  double imbalance_trigger = 1.25;
  /// Migration additionally requires imbalance >= this (typically above
  /// imbalance_trigger): moving a key relocates ALL of its future work
  /// onto one other shard, which only pays off under sustained, strong
  /// imbalance — under mild skew it is pure churn. Replication has no
  /// such cliff (it spreads work instead of moving it) and acts at the
  /// base trigger.
  double migrate_trigger = 1.5;
  /// Replicate a key when its sampled frequency share within the current
  /// observation window >= this fraction.
  double hot_fraction = 0.10;
  /// Cap on concurrently replicated keys.
  int max_hot_keys = 4;
  /// Cap on completed migrations per run (0 = unlimited).
  int64_t max_migrations = 0;
  /// Test hook: force one migration attempt every N routed tuples
  /// (bypasses the imbalance/hotness thresholds; 0 = off). Targets the
  /// sketch's current top key, so forced runs still move real traffic.
  int64_t force_migration_interval = 0;
  /// Fault injection for the migration handoff (plan.migration rates,
  /// rolled deterministically from plan.seed on the router thread).
  /// Borrowed; must outlive the pipeline run. nullptr = no injection.
  const FaultPlan* fault_plan = nullptr;
};

/// The single source of truth for key → shard placement. Router/merger
/// thread only.
class ShardMap {
 public:
  explicit ShardMap(int num_shards = 1) : num_shards_(num_shards) {}

  int num_shards() const { return num_shards_; }
  void Reset(int num_shards) {
    PJOIN_DCHECK(num_shards > 0);
    num_shards_ = num_shards;
    overrides_.clear();
    replicated_.clear();
  }

  /// The shard owning `key_hash` under the current map: a migration
  /// override when one exists, otherwise the static mixed-hash mapping.
  /// (The hash is mixed before the modulo because its low bits already
  /// select the partition inside a shard's HashState.)
  int OwnerOf(uint64_t key_hash) const {
    if (!overrides_.empty()) {
      const auto it = overrides_.find(key_hash);
      if (it != overrides_.end()) return it->second;
    }
    return StaticShardOf(key_hash);
  }

  /// The static (pre-migration) mapping, also the base of OwnerOf.
  int StaticShardOf(uint64_t key_hash) const {
    const uint64_t mixed = (key_hash * 0x9e3779b97f4a7c15ull) >> 32;
    return static_cast<int>(mixed % static_cast<uint64_t>(num_shards_));
  }

  /// Installs a migration override (handoff completed).
  void SetOwner(uint64_t key_hash, int shard) {
    PJOIN_DCHECK(shard >= 0 && shard < num_shards_);
    overrides_[key_hash] = shard;
  }

  // ---- Hot-key replication ----

  bool IsReplicated(uint64_t key_hash) const {
    return !replicated_.empty() &&
           replicated_.find(key_hash) != replicated_.end();
  }
  /// Marks `key_hash` replicated: tuples of `spray_side` spray round-robin,
  /// the other side broadcasts, constant-key punctuations broadcast.
  void MarkReplicated(uint64_t key_hash, int spray_side) {
    replicated_[key_hash] = Replicated{spray_side, 0};
  }
  /// The sprayed side of a replicated key.
  int SpraySideOf(uint64_t key_hash) const {
    const auto it = replicated_.find(key_hash);
    PJOIN_DCHECK(it != replicated_.end());
    return it->second.spray_side;
  }
  /// Next round-robin spray target for a replicated key.
  int NextSprayShard(uint64_t key_hash) {
    auto it = replicated_.find(key_hash);
    PJOIN_DCHECK(it != replicated_.end());
    const int shard = it->second.cursor;
    it->second.cursor = (shard + 1) % num_shards_;
    return shard;
  }

  int64_t migrated_keys() const {
    return static_cast<int64_t>(overrides_.size());
  }
  int64_t replicated_keys() const {
    return static_cast<int64_t>(replicated_.size());
  }

 private:
  struct Replicated {
    int spray_side = 0;
    int cursor = 0;
  };

  int num_shards_;
  std::unordered_map<uint64_t, int> overrides_;
  std::unordered_map<uint64_t, Replicated> replicated_;
};

/// Space-saving top-k over the routed join keys, plus windowed per-shard
/// load counters. Router thread only.
class HotKeyDetector {
 public:
  struct Entry {
    Value key;
    uint64_t key_hash = 0;
    /// Estimated total observations (true count <= count, and
    /// count - error <= true count — the space-saving bounds).
    int64_t count = 0;
    /// Count inherited from the evicted slot (the estimate's error bound).
    int64_t error = 0;
    /// Per input side, for the replicate decision's spray-side choice.
    int64_t side_count[2] = {0, 0};
  };

  HotKeyDetector(size_t capacity, int num_shards);

  /// One sampled sketch observation.
  void Observe(const Value& key, uint64_t key_hash, int side);
  /// One routed tuple (every tuple; windowed load accounting).
  void ObserveRouted(int shard) {
    ++total_routed_;
    ++window_load_[static_cast<size_t>(shard)];
  }

  /// Sampled observations in the current window. The sketch is windowed:
  /// a key's share is judged against the window it is hot in, so a key
  /// whose reign starts mid-run is not diluted by history (skewed streams
  /// drift — "newer keys are hotter").
  int64_t observed() const { return observed_; }
  /// Routed tuples since construction (never reset; the warm-up gate).
  int64_t total_routed() const { return total_routed_; }
  int64_t window_tuples() const;
  const std::vector<int64_t>& window_load() const { return window_load_; }
  /// max/mean of the window loads (1.0 = perfectly balanced; 0 when the
  /// window is empty).
  double WindowImbalance() const;
  /// Clears the load counters AND the sketch — every window judges keys
  /// fresh. total_routed() survives.
  void ResetWindow();

  /// Sketch entries, highest estimated count first.
  std::vector<Entry> TopK() const;

 private:
  size_t capacity_;
  std::unordered_map<uint64_t, size_t> index_;  // key_hash -> slot
  std::vector<Entry> slots_;
  int64_t observed_ = 0;
  int64_t total_routed_ = 0;
  std::vector<int64_t> window_load_;
};

/// One action for the pipeline to execute via an epoch-fenced handoff.
struct RepartitionDecision {
  enum class Kind { kNone, kReplicate, kMigrate };
  Kind kind = Kind::kNone;
  Value key;
  uint64_t key_hash = 0;
  /// Current owner (handoff source).
  int from = 0;
  /// Migration destination (unused for replication).
  int to = 0;
  /// Replication: the side sprayed round-robin (the heavier side); the
  /// other side broadcasts.
  int spray_side = 0;
};

/// The decision policy: observes routing, emits at most one decision per
/// observation window. Router thread only.
class RepartitionController {
 public:
  RepartitionController(const RepartitionPolicy& policy, ShardMap* map);

  /// Called by the router for every routed tuple (cheap: two counter
  /// bumps; the sketch updates once per policy.sample_every tuples).
  void ObserveTuple(const Value& key, uint64_t key_hash, int side,
                    int shard) {
    detector_.ObserveRouted(shard);
    if (++since_sample_ >= policy_.sample_every) {
      since_sample_ = 0;
      detector_.Observe(key, key_hash, side);
    }
    ++since_check_;
  }

  /// True once a window has elapsed; the pipeline then calls Decide at a
  /// point where it is safe to start a fence.
  bool ShouldCheck() const { return since_check_ >= policy_.check_interval; }

  /// Closes the window and returns the action to take (possibly kNone).
  RepartitionDecision Decide();

  /// The pipeline reports a refused/failed handoff; the key is blocklisted
  /// so the controller stops retrying it.
  void OnHandoffRejected(uint64_t key_hash) { rejected_.insert(key_hash); }
  void OnMigrationCompleted() { ++migrations_completed_; }

  const HotKeyDetector& detector() const { return detector_; }
  /// max/mean shard load of the last closed window (for the imbalance
  /// gauge; 1.0 = balanced).
  double last_imbalance() const { return last_imbalance_; }

 private:
  RepartitionPolicy policy_;
  ShardMap* map_;
  HotKeyDetector detector_;
  int64_t since_sample_ = 0;
  int64_t since_check_ = 0;
  int64_t since_forced_ = 0;
  /// Hottest shard of the previous imbalanced window (-1 after a balanced
  /// one) — the migration persistence check.
  int last_hottest_ = -1;
  int64_t migrations_completed_ = 0;
  double last_imbalance_ = 0.0;
  std::unordered_set<uint64_t> rejected_;
};

}  // namespace pjoin

#endif  // PJOIN_OPS_REPARTITION_H_
