#include "ops/groupby.h"

#include "common/macros.h"

namespace pjoin {

GroupBy::GroupBy(SchemaPtr input_schema, size_t group_field,
                 std::vector<AggSpec> aggs, std::vector<size_t> group_aliases)
    : input_schema_(std::move(input_schema)),
      group_field_(group_field),
      aggs_(std::move(aggs)),
      group_aliases_(std::move(group_aliases)) {
  PJOIN_DCHECK(input_schema_ != nullptr);
  PJOIN_DCHECK(group_field_ < input_schema_->num_fields());
  for (size_t a : group_aliases_) {
    PJOIN_DCHECK(a < input_schema_->num_fields());
    PJOIN_DCHECK(a != group_field_);
  }
  std::vector<Field> fields;
  fields.push_back(input_schema_->field(group_field_));
  for (const AggSpec& agg : aggs_) {
    PJOIN_DCHECK(agg.kind == AggKind::kCount ||
                 agg.field < input_schema_->num_fields());
    ValueType type;
    switch (agg.kind) {
      case AggKind::kSum:
      case AggKind::kAvg:
        type = ValueType::kFloat64;
        break;
      case AggKind::kCount:
        type = ValueType::kInt64;
        break;
      case AggKind::kMin:
      case AggKind::kMax:
        type = input_schema_->field(agg.field).type;
        break;
    }
    fields.push_back(Field{agg.name, type});
  }
  output_schema_ = Schema::Make(std::move(fields));
}

double GroupBy::NumericValue(const Value& v) const {
  switch (v.type()) {
    case ValueType::kInt64:
      return static_cast<double>(v.AsInt64());
    case ValueType::kFloat64:
      return v.AsFloat64();
    default:
      return 0.0;
  }
}

Status GroupBy::OnTuple(const Tuple& tuple, TimeMicros arrival) {
  (void)arrival;
  auto [it, inserted] = groups_.try_emplace(tuple.field(group_field_));
  if (inserted) it->second.resize(aggs_.size());
  for (size_t i = 0; i < aggs_.size(); ++i) {
    AggState& st = it->second[i];
    const AggSpec& spec = aggs_[i];
    ++st.count;
    if (spec.kind == AggKind::kCount) continue;
    const Value& v = tuple.field(spec.field);
    st.sum += NumericValue(v);
    if (st.count == 1 || v < st.min) st.min = v;
    if (st.count == 1 || st.max < v) st.max = v;
  }
  counters_.Add("tuples_in");
  return Status::OK();
}

Status GroupBy::EmitGroup(const Value& key,
                          const std::vector<AggState>& states,
                          TimeMicros arrival) {
  std::vector<Value> values;
  values.reserve(1 + aggs_.size());
  values.push_back(key);
  for (size_t i = 0; i < aggs_.size(); ++i) {
    const AggState& st = states[i];
    switch (aggs_[i].kind) {
      case AggKind::kSum:
        values.emplace_back(st.sum);
        break;
      case AggKind::kCount:
        values.emplace_back(st.count);
        break;
      case AggKind::kAvg:
        values.emplace_back(st.count == 0
                                ? 0.0
                                : st.sum / static_cast<double>(st.count));
        break;
      case AggKind::kMin:
        values.push_back(st.min);
        break;
      case AggKind::kMax:
        values.push_back(st.max);
        break;
    }
  }
  ++results_emitted_;
  return EmitTuple(Tuple(output_schema_, std::move(values)), arrival);
}

Status GroupBy::OnPunctuation(const Punctuation& punct, TimeMicros arrival) {
  counters_.Add("puncts_in");
  PJOIN_DCHECK(punct.num_patterns() == input_schema_->num_fields());
  // Only a punctuation that constrains nothing but the group attribute (or
  // its declared aliases) guarantees a group is complete: a constraint on
  // any other field leaves room for future tuples of the same group.
  auto is_group_or_alias = [this](size_t i) {
    if (i == group_field_) return true;
    for (size_t a : group_aliases_) {
      if (a == i) return true;
    }
    return false;
  };
  for (size_t i = 0; i < punct.num_patterns(); ++i) {
    if (!is_group_or_alias(i) && !punct.pattern(i).IsWildcard()) {
      counters_.Add("puncts_unusable");
      return Status::OK();
    }
  }
  // Alias fields always carry the same value as the group field, so their
  // patterns compose by intersection.
  Pattern pattern = punct.pattern(group_field_);
  for (size_t a : group_aliases_) {
    pattern = Pattern::And(pattern, punct.pattern(a));
  }
  if (pattern.IsWildcard()) {
    counters_.Add("puncts_unusable");
    return Status::OK();
  }

  if (pattern.IsConstant()) {
    auto it = groups_.find(pattern.constant());
    if (it != groups_.end()) {
      PJOIN_RETURN_NOT_OK(EmitGroup(it->first, it->second, arrival));
      groups_.erase(it);
    }
  } else {
    for (auto it = groups_.begin(); it != groups_.end();) {
      if (pattern.Matches(it->first)) {
        PJOIN_RETURN_NOT_OK(EmitGroup(it->first, it->second, arrival));
        it = groups_.erase(it);
      } else {
        ++it;
      }
    }
  }
  counters_.Add("groups_closed_by_punct");
  // The punctuation also holds on the output: no further result rows for
  // the covered groups will appear.
  std::vector<Pattern> out_patterns(output_schema_->num_fields(),
                                    Pattern::Wildcard());
  out_patterns[0] = pattern;
  return EmitPunctuation(Punctuation(std::move(out_patterns)), arrival);
}

Status GroupBy::OnEndOfStream() {
  for (const auto& [key, states] : groups_) {
    PJOIN_RETURN_NOT_OK(EmitGroup(key, states, 0));
  }
  groups_.clear();
  return EmitEndOfStream();
}

}  // namespace pjoin
