#include "ops/parallel_pipeline.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "obs/introspection.h"
#include "obs/trace.h"

namespace pjoin {

namespace {

// Shard selection mixes the key hash before the modulo: the low hash bits
// already select the partition inside a shard's HashState, so taking them
// for the shard too would leave most per-shard partitions empty.
int ShardOfHash(uint64_t key_hash, int num_shards) {
  const uint64_t mixed = (key_hash * 0x9e3779b97f4a7c15ull) >> 32;
  return static_cast<int>(mixed % static_cast<uint64_t>(num_shards));
}

// Ring capacities are configured in elements but the rings carry batches;
// 0 means "effectively unbounded" (a large default).
size_t RingBatches(size_t capacity_elements, size_t batch_size) {
  if (capacity_elements == 0) capacity_elements = 65536;
  const size_t batches = capacity_elements / batch_size;
  return batches < 2 ? 2 : batches;
}

// Per-thread CPU time for the PJOIN_PAR_DEBUG breakdown: on few-core hosts
// wall-clock spans include preemption, so only the CPU clock attributes cost
// to the thread that actually spent it.
int64_t ThreadCpuMicros() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return ts.tv_sec * 1000000 + ts.tv_nsec / 1000;
}

}  // namespace

std::string ShardStats::ToString() const {
  return "shard=" + std::to_string(shard) +
         " elements=" + std::to_string(elements) +
         " tuples=" + std::to_string(tuples) +
         " results=" + std::to_string(results) +
         " puncts=" + std::to_string(puncts_emitted) +
         " stalls=" + std::to_string(stalls) +
         " state_tuples=" + std::to_string(state_tuples);
}

struct ParallelJoinPipeline::Shard {
  Shard(int id_in, size_t queue_batches, size_t out_batches)
      : id(id_in), queue(queue_batches), out(out_batches) {}

  const int id;
  JoinOperator* join = nullptr;
  /// Router → worker: routed batches (router is the sole producer, the
  /// worker the sole consumer).
  SpscRing<RoutedBatch> queue;
  /// Worker → merger: result/release batches (worker produces, the
  /// router/caller thread consumes).
  SpscRing<OutBatch> out;
  /// Elements the worker has fully processed; the router's epoch barrier
  /// compares this against its enqueued count.
  std::atomic<int64_t> processed{0};
  /// Elements the router has pushed (written by the router only; atomic so
  /// the /statusz section can read it live).
  std::atomic<int64_t> enqueued{0};
  /// Live routed-element backlog (enqueued - processed), published by the
  /// worker once per batch.
  obs::Gauge depth_gauge;
  /// Live ring occupancies in batches (pjoin_ring_occupancy).
  obs::Gauge queue_occupancy_gauge;
  obs::Gauge out_occupancy_gauge;
  /// Times the worker entered the spin-then-park slow path on an empty
  /// routed ring (pjoin_shard_spin_parks).
  obs::Counter spin_parks_counter;
  /// Worker-local staging, moved into `out` as one OutBatch. Results always
  /// precede the releases recorded after them (the §3.3 ordering).
  std::vector<Tuple> local_results;
  std::vector<Punctuation> local_releases;
  ShardStats stats;
  Status status;
};

ParallelJoinPipeline::ParallelJoinPipeline(JoinFactory factory,
                                           ParallelPipelineOptions options)
    : options_(options) {
  PJOIN_DCHECK(factory != nullptr);
  PJOIN_DCHECK(options_.num_shards > 0);
  PJOIN_DCHECK(options_.batch_size > 0);
  const size_t queue_batches =
      RingBatches(options_.shard_queue_capacity, options_.batch_size);
  joins_.reserve(static_cast<size_t>(options_.num_shards));
  shards_.reserve(static_cast<size_t>(options_.num_shards));
  staged_.resize(static_cast<size_t>(options_.num_shards));
  for (int s = 0; s < options_.num_shards; ++s) {
    joins_.push_back(factory(s));
    PJOIN_DCHECK(joins_.back() != nullptr);
    auto shard = std::make_unique<Shard>(s, queue_batches, /*out_batches=*/64);
    shard->join = joins_.back().get();
    shard->stats.shard = s;
    shards_.push_back(std::move(shard));
  }
  // Output-schema positions of the two join keys, for the merger's
  // routed-vs-broadcast release inference (PunctReleaseBoard).
  release_board_.Configure(
      joins_[0]->state(0).key_index(),
      joins_[0]->state(0).schema()->num_fields() +
          joins_[0]->state(1).key_index(),
      options_.num_shards);
}

ParallelJoinPipeline::~ParallelJoinPipeline() = default;

CounterSet ParallelJoinPipeline::MergedCounters() const {
  CounterSet merged;
  for (const auto& join : joins_) merged.Merge(join->counters());
  return merged;
}

void ParallelJoinPipeline::FlushShardOut(Shard* shard, bool force) {
  if (shard->local_results.empty() && shard->local_releases.empty()) return;
  // Releases always flush promptly (the merger's board is waiting on them);
  // bare results batch up to result_flush.
  if (!force && shard->local_releases.empty() &&
      shard->local_results.size() < options_.result_flush) {
    return;
  }
  OutBatch out;
  out.results = std::move(shard->local_results);
  out.releases = std::move(shard->local_releases);
  shard->local_results.clear();
  shard->local_releases.clear();
  // The moved-from vector restarts at zero capacity; reserving the flush
  // threshold up front spares the next batch the doubling re-allocations
  // (each of which would move every staged Tuple again).
  shard->local_results.reserve(options_.result_flush);
  // Safe to park here: the merger (router/caller thread) drains these rings
  // whenever it waits on anything.
  shard->out.PushBlocking(std::move(out));
  // Wake a merger parked on the activity eventcount (push first, then bump:
  // a merger that re-drained after loading the count cannot miss the batch).
  out_activity_.fetch_add(1);
  out_activity_.notify_all();
}

void ParallelJoinPipeline::MergeOutBatch(OutBatch out) {
  TRACE_SPAN("par", "merge_drain");
  for (Tuple& t : out.results) {
    ++results_emitted_;
    if (on_result_) on_result_(t);
  }
  for (Punctuation& p : out.releases) {
    TRACE_INSTANT("par", "punct_release");
    // The board reports completion once per full round of releases from
    // the shards the router dispatched the punctuation to (1 for routed,
    // all for broadcast) — emission happens exactly then.
    if (release_board_.Release(p)) {
      ++puncts_emitted_;
      if (on_punct_) on_punct_(p);
    }
  }
}

size_t ParallelJoinPipeline::DrainOutputs() {
  size_t merged = 0;
  for (auto& shard : shards_) {
    OutBatch out;
    while (shard->out.TryPop(&out)) {
      MergeOutBatch(std::move(out));
      ++merged;
    }
  }
  return merged;
}

void ParallelJoinPipeline::Stage(int shard, int8_t side,
                                 const StreamElement* e, uint64_t key_hash,
                                 TimeMicros ingress_us) {
  RoutedBatch& pending = staged_[static_cast<size_t>(shard)];
  if (pending.elements.empty()) pending.ingress_us = ingress_us;
  pending.elements.push_back(e);
  pending.sides.push_back(side);
  pending.key_hashes.push_back(key_hash);
  if (e->is_tuple()) ++pending.tuple_count;
  if (pending.elements.size() >= options_.batch_size) FlushStaged(shard);
}

void ParallelJoinPipeline::FlushStaged(int shard) {
  RoutedBatch& pending = staged_[static_cast<size_t>(shard)];
  if (pending.elements.empty()) return;
  Shard& s = *shards_[static_cast<size_t>(shard)];
  s.enqueued.fetch_add(static_cast<int64_t>(pending.elements.size()));
  RoutedBatch batch = std::move(pending);
  pending = RoutedBatch{};
  pending.elements.reserve(options_.batch_size);
  pending.sides.reserve(options_.batch_size);
  pending.key_hashes.reserve(options_.batch_size);
  if (s.queue.TryPush(std::move(batch))) return;
  // Full shard ring. The router must NOT park indefinitely (it is also the
  // merger): drain the output rings — which is usually exactly what
  // unblocks the slow shard — and retry. When a retry round makes no merge
  // progress either, nap briefly instead of yield-spinning: the shard owns
  // a full ring of work, so on few-core hosts giving the core away beats
  // burning it, and the nap bounds added latency to microseconds. TryPush
  // leaves `batch` intact on failure.
  router_backpressure_waits_.fetch_add(1);
  backpressure_counter_.Add(1);
  while (true) {
    const size_t merged = DrainOutputs();
    if (s.queue.TryPush(std::move(batch))) return;
    if (merged == 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    } else {
      std::this_thread::yield();
    }
  }
}

void ParallelJoinPipeline::EpochBarrier() {
  TRACE_SPAN("par", "epoch_barrier");
  ++epoch_barriers_;
  while (true) {
    bool drained = true;
    for (const auto& shard : shards_) {
      if (shard->processed.load() < shard->enqueued.load()) {
        drained = false;
        break;
      }
    }
    if (drained) return;
    DrainOutputs();
    std::this_thread::yield();
  }
}

void ParallelJoinPipeline::ShardLoop(Shard* shard) {
  TRACE_SET_THREAD_NAME("shard-" + std::to_string(shard->id));
  JoinOperator* join = shard->join;
  RoutedBatch batch;
  int64_t dry = 0;
  bool failed = false;
  int64_t busy_us = 0;
  Stopwatch batch_timer;
  const bool debug = std::getenv("PJOIN_PAR_DEBUG") != nullptr;
  while (true) {
    if (!shard->queue.TryPop(&batch)) {
      if (shard->queue.exhausted()) break;
      if (++dry < options_.stall_polls) {
        std::this_thread::yield();
        continue;
      }
      dry = 0;
      // This shard is dry: use the lull for background work (PJoin's disk
      // join, XJoin's reactive stage) on shard-local state, then park until
      // the router pushes or closes.
      if (!failed) {
        ++shard->stats.stalls;
        // Emissions out of the stall work (disk-join results, deferred
        // propagation) attribute latency to the stall start.
        join->set_element_ingress_micros(obs::TraceNowMicros());
        const Status st = join->OnStreamsStalled();
        if (!st.ok()) {
          shard->status = st;
          failed = true;
        }
        join->PublishStateGauges();
        FlushShardOut(shard, /*force=*/true);
      }
      shard->spin_parks_counter.Add(1);
      shard_spin_parks_.fetch_add(1);
      shard->queue.WaitForData();
      continue;
    }
    dry = 0;
    const size_t n = batch.elements.size();
    batch_timer.Restart();
    {
      TRACE_SPAN("par", "shard_batch");
      if (!failed) {
        shard->stats.elements += static_cast<int64_t>(n);
        shard->stats.tuples += batch.tuple_count;
        join->set_element_ingress_micros(batch.ingress_us);
        Status st;
        if (options_.batched_probe) {
          st = join->ProcessBatch(ElementBatch{batch.elements.data(),
                                              batch.sides.data(),
                                              batch.key_hashes.data(), n});
        } else {
          for (size_t i = 0; i < n && st.ok(); ++i) {
            st = join->OnElement(batch.sides[i], *batch.elements[i]);
          }
        }
        if (!st.ok()) {
          shard->status = st;
          // Keep draining (and discarding) so the router never wedges on
          // this shard's ring; the error is surfaced after the run.
          failed = true;
        }
      }
      shard->processed.fetch_add(static_cast<int64_t>(n));
    }
    busy_us += batch_timer.ElapsedMicros();
    // Once-per-batch live publication: backlog, ring occupancies, and the
    // join's state gauges (the worker owns the join, so the HashState reads
    // are safe).
    shard->depth_gauge.Set(shard->enqueued.load() - shard->processed.load());
    shard->queue_occupancy_gauge.Set(
        static_cast<int64_t>(shard->queue.size()));
    join->PublishStateGauges();
    FlushShardOut(shard, /*force=*/false);
    shard->out_occupancy_gauge.Set(static_cast<int64_t>(shard->out.size()));
  }
  shard->depth_gauge.Set(0);
  shard->queue_occupancy_gauge.Set(0);
  join->PublishStateGauges();
  FlushShardOut(shard, /*force=*/true);
  shard->out_occupancy_gauge.Set(0);
  shard->out.Close();
  workers_done_.fetch_add(1);
  out_activity_.fetch_add(1);
  out_activity_.notify_all();
  if (debug) {
    std::fprintf(stderr,
                 "[par debug] shard=%d busy=%lldms cpu=%lldms stalls=%lld\n",
                 shard->id, (long long)(busy_us / 1000),
                 (long long)(ThreadCpuMicros() / 1000),
                 (long long)shard->stats.stalls);
  }
}

void ParallelJoinPipeline::RouterLoop(SpscRing<InputSpan>* in_left,
                                      SpscRing<InputSpan>* in_right) {
  TRACE_SET_THREAD_NAME("router");
  TRACE_SPAN("par", "router");
  SpscRing<InputSpan>* in[2] = {in_left, in_right};
  InputSpan span[2];
  size_t pos[2] = {0, 0};
  bool eos_sent[2] = {false, false};
  const size_t key_index[2] = {joins_[0]->state(0).key_index(),
                               joins_[0]->state(1).key_index()};
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Gauge in_occupancy[2] = {
      registry.GetGauge("pjoin_ring_occupancy", "edge=input_l"),
      registry.GetGauge("pjoin_ring_occupancy", "edge=input_r")};
  int64_t since_drain = 0;
  // Ingress timestamps for latency attribution, refreshed every few
  // dispatches so the clock read amortizes off the routing hot path. The
  // resulting quantization (a handful of router iterations) is far below
  // the queueing delays the histograms exist to expose.
  TimeMicros now_us = obs::TraceNowMicros();
  int now_refresh = 0;

  // The head of a side is the next element of its current span, refilled
  // from the input ring when the span is drained (zero copy throughout:
  // spans point straight into the caller's vectors).
  auto head = [&](int side) -> const StreamElement* {
    if (pos[side] >= span[side].size) {
      if (!in[side]->TryPop(&span[side])) return nullptr;
      pos[side] = 0;
    }
    return span[side].data + pos[side];
  };

  while (!(eos_sent[0] && eos_sent[1])) {
    const StreamElement* h0 = eos_sent[0] ? nullptr : head(0);
    const StreamElement* h1 = eos_sent[1] ? nullptr : head(1);
    // Merge in global arrival order: only consume a side when the other has
    // a head to compare against or can never produce an earlier element.
    const bool done0 = eos_sent[0] || in[0]->exhausted();
    const bool done1 = eos_sent[1] || in[1]->exhausted();
    int side = -1;
    if (h0 != nullptr && (h1 != nullptr
                              ? h0->arrival() <= h1->arrival()
                              : done1)) {
      side = 0;
    } else if (h1 != nullptr && (h0 != nullptr
                                     ? h1->arrival() < h0->arrival()
                                     : done0)) {
      side = 1;
    }
    if (side < 0) {
      DrainOutputs();
      std::this_thread::yield();
      continue;
    }
    const StreamElement* e = span[side].data + pos[side];
    ++pos[side];
    if (now_refresh-- <= 0) {
      now_us = obs::TraceNowMicros();
      now_refresh = 63;
    }

    switch (e->kind()) {
      case ElementKind::kTuple: {
        // The single hash of this tuple's key for the whole pipeline: shard
        // selection here, partition selection / index probe / index insert
        // in the shard (via RoutedBatch::key_hashes).
        const uint64_t h = e->tuple().field(key_index[side]).Hash();
        Stage(ShardOfHash(h, num_shards()), static_cast<int8_t>(side), e, h,
              now_us);
        break;
      }
      case ElementKind::kPunctuation: {
        // A constant-key punctuation concerns exactly one shard: every
        // tuple it covers (and every future tuple it promises away)
        // carries that key, and keys route by hash — so it goes to the
        // owning shard alone, like a tuple. This is what lets purge and
        // punctuation-set work scale *down* with the shard count:
        // broadcasting would make every shard scan its state for a key
        // that cannot be there. Non-constant patterns (range flush
        // markers, wildcards) can cover keys of every shard and still
        // broadcast (shared pointer — the element is borrowed either
        // way). Staged order keeps the punctuation behind every tuple
        // dispatched before it, per shard.
        const Pattern& key_pattern =
            e->punctuation().pattern(key_index[side]);
        if (key_pattern.IsConstant()) {
          const uint64_t h = key_pattern.constant().Hash();
          Stage(ShardOfHash(h, num_shards()), static_cast<int8_t>(side), e,
                /*key_hash=*/0, now_us);
        } else {
          for (int s = 0; s < num_shards(); ++s) {
            Stage(s, static_cast<int8_t>(side), e, /*key_hash=*/0, now_us);
          }
        }
        if (options_.punct_barrier) {
          for (int s = 0; s < num_shards(); ++s) FlushStaged(s);
          EpochBarrier();
        }
        break;
      }
      case ElementKind::kEndOfStream: {
        for (int s = 0; s < num_shards(); ++s) {
          Stage(s, static_cast<int8_t>(side), e, /*key_hash=*/0, now_us);
        }
        eos_sent[side] = true;
        break;
      }
    }
    if (++since_drain >= static_cast<int64_t>(options_.batch_size)) {
      since_drain = 0;
      DrainOutputs();
      in_occupancy[0].Set(static_cast<int64_t>(in[0]->size()));
      in_occupancy[1].Set(static_cast<int64_t>(in[1]->size()));
    }
  }
  for (int s = 0; s < num_shards(); ++s) {
    FlushStaged(s);
    shards_[static_cast<size_t>(s)]->queue.Close();
  }
  in_occupancy[0].Set(0);
  in_occupancy[1].Set(0);
}

Status ParallelJoinPipeline::Run(const std::vector<StreamElement>& left,
                                 const std::vector<StreamElement>& right) {
  PJOIN_DCHECK(!ran_);
  ran_ = true;

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  backpressure_counter_ = registry.GetCounter("pjoin_router_backpressure_waits",
                                              "pipeline=parallel");
  // Wire per-shard output staging: results queue up locally; a punctuation
  // release is recorded behind them, and FlushShardOut moves both into the
  // shard's output ring with that order intact — so by the time the merger
  // counts the last shard's release, every covered result has already been
  // emitted ahead of it.
  for (auto& shard_ptr : shards_) {
    Shard* shard = shard_ptr.get();
    shard->local_results.reserve(options_.result_flush);
    shard->join->set_result_move_callback([shard](Tuple&& t) {
      shard->local_results.push_back(std::move(t));
    });
    shard->join->set_punct_callback([shard](const Punctuation& p) {
      shard->local_releases.push_back(p);
    });
    const std::string labels =
        "pipeline=parallel,shard=" + std::to_string(shard->id);
    shard->join->BindLatencyMetrics(labels);
    shard->join->BindStateGauges(labels);
    shard->depth_gauge =
        registry.GetGauge("pjoin_shard_queue_depth", labels);
    shard->queue_occupancy_gauge = registry.GetGauge(
        "pjoin_ring_occupancy", "edge=shard_" + std::to_string(shard->id));
    shard->out_occupancy_gauge = registry.GetGauge(
        "pjoin_ring_occupancy", "edge=out_" + std::to_string(shard->id));
    shard->spin_parks_counter =
        registry.GetCounter("pjoin_shard_spin_parks", labels);
  }

  // Live /statusz contribution for the duration of the run: per-shard ring
  // occupancy and router/worker progress, all read through atomics so the
  // server's handler threads can call this any time.
  obs::ScopedStatusSection statusz_section(
      "parallel pipeline", [this]() {
        std::string out;
        for (const auto& shard : shards_) {
          out.append("shard ");
          out.append(std::to_string(shard->id));
          out.append(": queue_batches=");
          out.append(std::to_string(shard->queue.size()));
          out.append(" depth=");
          out.append(std::to_string(shard->enqueued.load() -
                                    shard->processed.load()));
          out.append(" enqueued=");
          out.append(std::to_string(shard->enqueued.load()));
          out.append(" processed=");
          out.append(std::to_string(shard->processed.load()));
          out.push_back('\n');
        }
        out.append("router: backpressure_waits=");
        out.append(std::to_string(router_backpressure_waits_.load()));
        out.append(" shard_spin_parks=");
        out.append(std::to_string(shard_spin_parks_.load()));
        out.push_back('\n');
        return out;
      });

  const size_t input_batches =
      RingBatches(options_.input_buffer_capacity, options_.batch_size);
  SpscRing<InputSpan> in_left(input_batches);
  SpscRing<InputSpan> in_right(input_batches);
  // Producers publish read-only spans of the caller's vectors — the
  // elements themselves are never copied (Run borrows the vectors for the
  // whole call, so the spans stay valid).
  auto produce = [this](const std::vector<StreamElement>& src,
                        SpscRing<InputSpan>* ring,
                        [[maybe_unused]] const char* name) {
    TRACE_SET_THREAD_NAME(name);
    for (size_t i = 0; i < src.size(); i += options_.batch_size) {
      const size_t n = std::min(options_.batch_size, src.size() - i);
      ring->PushBlocking(InputSpan{src.data() + i, n});
    }
    ring->Close();
  };

  std::thread producer_l(produce, std::cref(left), &in_left, "producer-l");
  std::thread producer_r(produce, std::cref(right), &in_right, "producer-r");
  std::vector<std::thread> workers;
  workers.reserve(shards_.size());
  for (auto& shard : shards_) {
    workers.emplace_back(&ParallelJoinPipeline::ShardLoop, this, shard.get());
  }

  Stopwatch phase_timer;
  RouterLoop(&in_left, &in_right);
  const TimeMicros router_us = phase_timer.ElapsedMicros();

  // Keep merging while the workers finish their tails (a worker could
  // otherwise park forever on a full output ring) — parked on the activity
  // eventcount between drains so this thread's cycles go to the workers.
  while (true) {
    const uint32_t seq = out_activity_.load();
    const bool done = workers_done_.load() >= num_shards();
    if (DrainOutputs() == 0) {
      if (done) break;
      out_activity_.wait(seq);
    }
  }
  producer_l.join();
  producer_r.join();
  for (std::thread& w : workers) w.join();
  DrainOutputs();
  const TimeMicros total_us = phase_timer.ElapsedMicros();
  if (std::getenv("PJOIN_PAR_DEBUG") != nullptr) {
    std::fprintf(stderr,
                 "[par debug] router=%lldms drain_workers=%lldms "
                 "caller_cpu=%lldms\n",
                 (long long)(router_us / 1000),
                 (long long)((total_us - router_us) / 1000),
                 (long long)(ThreadCpuMicros() / 1000));
  }

  Status status;
  shard_stats_.clear();
  for (auto& shard : shards_) {
    shard->stats.results = shard->join->results_emitted();
    shard->stats.puncts_emitted = shard->join->puncts_emitted();
    shard->stats.state_tuples = shard->join->total_state_tuples();
    stalls_reported_ += shard->stats.stalls;
    shard_stats_.push_back(shard->stats);
    if (status.ok() && !shard->status.ok()) status = shard->status;
  }
  if (options_.stats_registry != nullptr) {
    for (const ShardStats& stats : shard_stats_) {
      // A dispatch failure must not mask an earlier shard error: the shard
      // error is the run's outcome, the stats event is bookkeeping.
      const Status dispatch_status = options_.stats_registry->Dispatch(
          Event{EventType::kShardStats, /*time=*/0, /*stream=*/stats.shard,
                stats.ToString()});
      if (status.ok() && !dispatch_status.ok()) status = dispatch_status;
    }
  }
  return status;
}

}  // namespace pjoin
