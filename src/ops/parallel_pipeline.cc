#include "ops/parallel_pipeline.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "obs/introspection.h"
#include "obs/progress.h"
#include "obs/trace.h"

namespace pjoin {

namespace {

// Ring capacities are configured in elements but the rings carry batches;
// 0 means "effectively unbounded" (a large default).
size_t RingBatches(size_t capacity_elements, size_t batch_size) {
  if (capacity_elements == 0) capacity_elements = 65536;
  const size_t batches = capacity_elements / batch_size;
  return batches < 2 ? 2 : batches;
}

// Per-thread CPU time for the PJOIN_PAR_DEBUG breakdown: on few-core hosts
// wall-clock spans include preemption, so only the CPU clock attributes cost
// to the thread that actually spent it.
int64_t ThreadCpuMicros() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return ts.tv_sec * 1000000 + ts.tv_nsec / 1000;
}

}  // namespace

std::string ShardStats::ToString() const {
  return "shard=" + std::to_string(shard) +
         " elements=" + std::to_string(elements) +
         " tuples=" + std::to_string(tuples) +
         " results=" + std::to_string(results) +
         " puncts=" + std::to_string(puncts_emitted) +
         " stalls=" + std::to_string(stalls) +
         " state_tuples=" + std::to_string(state_tuples);
}

struct ParallelJoinPipeline::Shard {
  Shard(int id_in, size_t queue_batches, size_t out_batches)
      : id(id_in), queue(queue_batches), out(out_batches) {}

  const int id;
  JoinOperator* join = nullptr;
  /// Flow id of the newest sampled RoutedBatch processed and not yet
  /// flushed (worker-local; travels out with the next OutBatch).
  uint64_t pending_flow_id = 0;
  /// Router → worker: routed batches (router is the sole producer, the
  /// worker the sole consumer).
  SpscRing<RoutedBatch> queue;
  /// Worker → merger: result/release batches (worker produces, the
  /// router/caller thread consumes).
  SpscRing<OutBatch> out;
  /// Elements the worker has fully processed; the router's epoch barrier
  /// compares this against its enqueued count.
  std::atomic<int64_t> processed{0};
  /// Elements the router has pushed (written by the router only; atomic so
  /// the /statusz section can read it live).
  std::atomic<int64_t> enqueued{0};
  /// Live routed-element backlog (enqueued - processed), published by the
  /// worker once per batch.
  obs::Gauge depth_gauge;
  /// Live ring occupancies in batches (pjoin_ring_occupancy).
  obs::Gauge queue_occupancy_gauge;
  obs::Gauge out_occupancy_gauge;
  /// Times the worker entered the spin-then-park slow path on an empty
  /// routed ring (pjoin_shard_spin_parks).
  obs::Counter spin_parks_counter;
  /// Worker-local staging, moved into `out` as one OutBatch. Results always
  /// precede the releases recorded after them (the §3.3 ordering).
  std::vector<Tuple> local_results;
  std::vector<Punctuation> local_releases;
  ShardStats stats;
  Status status;
};

ParallelJoinPipeline::ParallelJoinPipeline(JoinFactory factory,
                                           ParallelPipelineOptions options)
    : options_(options) {
  PJOIN_DCHECK(factory != nullptr);
  PJOIN_DCHECK(options_.num_shards > 0);
  PJOIN_DCHECK(options_.batch_size > 0);
  const size_t queue_batches =
      RingBatches(options_.shard_queue_capacity, options_.batch_size);
  joins_.reserve(static_cast<size_t>(options_.num_shards));
  shards_.reserve(static_cast<size_t>(options_.num_shards));
  staged_.resize(static_cast<size_t>(options_.num_shards));
  for (int s = 0; s < options_.num_shards; ++s) {
    joins_.push_back(factory(s));
    PJOIN_DCHECK(joins_.back() != nullptr);
    auto shard = std::make_unique<Shard>(
        s, queue_batches, std::max<size_t>(2, options_.out_ring_batches));
    shard->join = joins_.back().get();
    shard->stats.shard = s;
    shards_.push_back(std::move(shard));
  }
  // Output-schema positions of the two join keys, for the merger's
  // routed-vs-broadcast release inference (PunctReleaseBoard).
  release_board_.Configure(
      joins_[0]->state(0).key_index(),
      joins_[0]->state(0).schema()->num_fields() +
          joins_[0]->state(1).key_index(),
      options_.num_shards);
  // Key placement lives in one map consulted by tuple AND punctuation
  // routing; the repartition controller mutates it through handoffs.
  shard_map_.Reset(options_.num_shards);
  repart_enabled_ = options_.repartition.enabled && options_.num_shards > 1;
  if (repart_enabled_) {
    controller_ = std::make_unique<RepartitionController>(
        options_.repartition, &shard_map_);
    const FaultPlan* plan = options_.repartition.fault_plan;
    if (plan != nullptr && plan->migration.enabled()) {
      repart_injector_ = std::make_unique<FaultInjector>(plan->seed);
    }
  }
}

ParallelJoinPipeline::~ParallelJoinPipeline() = default;

CounterSet ParallelJoinPipeline::MergedCounters() const {
  CounterSet merged;
  for (const auto& join : joins_) merged.Merge(join->counters());
  return merged;
}

void ParallelJoinPipeline::FlushShardOut(Shard* shard, bool force) {
  if (shard->local_results.empty() && shard->local_releases.empty()) return;
  // Releases always flush promptly (the merger's board is waiting on them);
  // bare results batch up to result_flush.
  if (!force && shard->local_releases.empty() &&
      shard->local_results.size() < options_.result_flush) {
    return;
  }
  OutBatch out;
  out.results = std::move(shard->local_results);
  out.releases = std::move(shard->local_releases);
  out.flow_id = shard->pending_flow_id;
  shard->pending_flow_id = 0;
  shard->local_results.clear();
  shard->local_releases.clear();
  // The moved-from vector restarts at zero capacity; reserving the flush
  // threshold up front spares the next batch the doubling re-allocations
  // (each of which would move every staged Tuple again).
  shard->local_results.reserve(options_.result_flush);
  // Safe to park here: the merger (router/caller thread) drains these rings
  // whenever it waits on anything.
  shard->out.PushBlocking(std::move(out));
  // Wake a merger parked on the activity eventcount (push first, then bump:
  // a merger that re-drained after loading the count cannot miss the batch).
  out_activity_.fetch_add(1);
  out_activity_.notify_all();
}

void ParallelJoinPipeline::MergeOutBatch(OutBatch out) {
  TRACE_SPAN("par", "merge_drain");
  if (out.flow_id != 0) TRACE_FLOW_END("flow", "tuple_path", out.flow_id);
  for (Tuple& t : out.results) {
    ++results_emitted_;
    if (on_result_) on_result_(t);
  }
  bool released = false;
  for (Punctuation& p : out.releases) {
    TRACE_INSTANT("par", "punct_release");
    // The board reports completion once per full round of releases from
    // the shards the router dispatched the punctuation to (1 for routed,
    // all for broadcast) — emission happens exactly then.
    if (release_board_.Release(p)) {
      ++puncts_emitted_;
      released = true;
      obs::FrontierTracker::Global().NoteReleased();
      if (on_punct_) on_punct_(p);
    }
  }
  if (released || !out.releases.empty()) {
    punct_pending_gauge_.Set(release_board_.pending_rounds());
  }
  if (out.handoff != nullptr) HandleHandoffOut(std::move(*out.handoff));
}

size_t ParallelJoinPipeline::DrainOutputs() {
  size_t merged = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    OutBatch out;
    while (shards_[i]->out.TryPop(&out)) {
      if (repart_enabled_) {
        merged_results_[i] += static_cast<int64_t>(out.results.size());
      }
      MergeOutBatch(std::move(out));
      ++merged;
    }
  }
  return merged;
}

int ParallelJoinPipeline::SprayTarget(uint64_t key_hash) {
  // Greedy least-output spray: send the sprayed tuple to the shard that
  // has merged the least join output so far. Result production — not
  // tuple count — is the work a hot key concentrates, and a blind
  // round-robin feeds a quarter of the hot key's output to the shard
  // that is already the bottleneck. The merger runs on this thread, so
  // the counts are fresh to within one drain. Until output differentiates
  // the shards, fall back to the key's round-robin cursor.
  int best = 0;
  bool all_equal = true;
  for (int s = 1; s < num_shards(); ++s) {
    const size_t i = static_cast<size_t>(s);
    if (merged_results_[i] != merged_results_[static_cast<size_t>(best)]) {
      all_equal = false;
    }
    if (merged_results_[i] < merged_results_[static_cast<size_t>(best)]) {
      best = s;
    }
  }
  if (all_equal) return shard_map_.NextSprayShard(key_hash);
  return best;
}

void ParallelJoinPipeline::Stage(int shard, int8_t side,
                                 const StreamElement* e, uint64_t key_hash,
                                 TimeMicros ingress_us, uint64_t flow_id) {
  RoutedBatch& pending = staged_[static_cast<size_t>(shard)];
  if (pending.elements.empty()) pending.ingress_us = ingress_us;
  // Stamp before the flush check below so a sampled tuple that fills the
  // batch still travels with it.
  if (flow_id != 0) pending.flow_id = flow_id;
  pending.elements.push_back(e);
  pending.sides.push_back(side);
  pending.key_hashes.push_back(key_hash);
  if (e->is_tuple()) ++pending.tuple_count;
  if (pending.elements.size() >= options_.batch_size) FlushStaged(shard);
}

void ParallelJoinPipeline::FlushStaged(int shard) {
  RoutedBatch& pending = staged_[static_cast<size_t>(shard)];
  if (pending.elements.empty()) return;
  Shard& s = *shards_[static_cast<size_t>(shard)];
  s.enqueued.fetch_add(static_cast<int64_t>(pending.elements.size()));
  RoutedBatch batch = std::move(pending);
  pending = RoutedBatch{};
  pending.elements.reserve(options_.batch_size);
  pending.sides.reserve(options_.batch_size);
  pending.key_hashes.reserve(options_.batch_size);
  if (s.queue.TryPush(std::move(batch))) return;
  // Full shard ring. The router must NOT park indefinitely (it is also the
  // merger): drain the output rings — which is usually exactly what
  // unblocks the slow shard — and retry. When a retry round makes no merge
  // progress either, nap briefly instead of yield-spinning: the shard owns
  // a full ring of work, so on few-core hosts giving the core away beats
  // burning it, and the nap bounds added latency to microseconds. TryPush
  // leaves `batch` intact on failure.
  router_backpressure_waits_.fetch_add(1);
  backpressure_counter_.Add(1);
  while (true) {
    const size_t merged = DrainOutputs();
    if (s.queue.TryPush(std::move(batch))) return;
    if (merged == 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    } else {
      std::this_thread::yield();
    }
  }
}

void ParallelJoinPipeline::EpochBarrier() {
  TRACE_SPAN("par", "epoch_barrier");
  ++epoch_barriers_;
  while (true) {
    bool drained = true;
    for (const auto& shard : shards_) {
      if (shard->processed.load() < shard->enqueued.load()) {
        drained = false;
        break;
      }
    }
    if (drained) return;
    DrainOutputs();
    std::this_thread::yield();
  }
}

void ParallelJoinPipeline::ShardLoop(Shard* shard) {
  TRACE_SET_THREAD_NAME("shard-" + std::to_string(shard->id));
  JoinOperator* join = shard->join;
  RoutedBatch batch;
  int64_t dry = 0;
  bool failed = false;
  int64_t busy_us = 0;
  Stopwatch batch_timer;
  const bool debug = std::getenv("PJOIN_PAR_DEBUG") != nullptr;
  while (true) {
    if (!shard->queue.TryPop(&batch)) {
      if (shard->queue.exhausted()) break;
      if (++dry < options_.stall_polls) {
        std::this_thread::yield();
        continue;
      }
      dry = 0;
      // This shard is dry: use the lull for background work (PJoin's disk
      // join, XJoin's reactive stage) on shard-local state, then park until
      // the router pushes or closes.
      if (!failed) {
        ++shard->stats.stalls;
        // Emissions out of the stall work (disk-join results, deferred
        // propagation) attribute latency to the stall start.
        join->set_element_ingress_micros(obs::TraceNowMicros());
        const Status st = join->OnStreamsStalled();
        if (!st.ok()) {
          shard->status = st;
          failed = true;
        }
        join->PublishStateGauges();
        FlushShardOut(shard, /*force=*/true);
      }
      shard->spin_parks_counter.Add(1);
      shard_spin_parks_.fetch_add(1);
      shard->queue.WaitForData();
      continue;
    }
    dry = 0;
    if (batch.command != nullptr) {
      ExecuteCommand(shard, *batch.command);
      batch.command.reset();
      continue;
    }
    const size_t n = batch.elements.size();
    if (batch.flow_id != 0) {
      TRACE_FLOW_STEP("flow", "tuple_path", batch.flow_id);
      shard->pending_flow_id = batch.flow_id;
    }
    batch_timer.Restart();
    {
      TRACE_SPAN("par", "shard_batch");
      if (!failed) {
        shard->stats.elements += static_cast<int64_t>(n);
        shard->stats.tuples += batch.tuple_count;
        join->set_element_ingress_micros(batch.ingress_us);
        Status st;
        if (options_.batched_probe) {
          st = join->ProcessBatch(ElementBatch{batch.elements.data(),
                                              batch.sides.data(),
                                              batch.key_hashes.data(), n});
        } else {
          for (size_t i = 0; i < n && st.ok(); ++i) {
            st = join->OnElement(batch.sides[i], *batch.elements[i]);
          }
        }
        if (!st.ok()) {
          shard->status = st;
          // Keep draining (and discarding) so the router never wedges on
          // this shard's ring; the error is surfaced after the run.
          failed = true;
        }
      }
      shard->processed.fetch_add(static_cast<int64_t>(n));
    }
    busy_us += batch_timer.ElapsedMicros();
    // Once-per-batch live publication: backlog, ring occupancies, and the
    // join's state gauges (the worker owns the join, so the HashState reads
    // are safe).
    shard->depth_gauge.Set(shard->enqueued.load() - shard->processed.load());
    shard->queue_occupancy_gauge.Set(
        static_cast<int64_t>(shard->queue.size()));
    join->PublishStateGauges();
    FlushShardOut(shard, /*force=*/false);
    shard->out_occupancy_gauge.Set(static_cast<int64_t>(shard->out.size()));
  }
  shard->depth_gauge.Set(0);
  shard->queue_occupancy_gauge.Set(0);
  join->PublishStateGauges();
  FlushShardOut(shard, /*force=*/true);
  shard->out_occupancy_gauge.Set(0);
  shard->out.Close();
  workers_done_.fetch_add(1);
  out_activity_.fetch_add(1);
  out_activity_.notify_all();
  if (debug) {
    std::fprintf(stderr,
                 "[par debug] shard=%d busy=%lldms cpu=%lldms stalls=%lld\n",
                 shard->id, (long long)(busy_us / 1000),
                 (long long)(ThreadCpuMicros() / 1000),
                 (long long)shard->stats.stalls);
  }
}

void ParallelJoinPipeline::RouteElement(int side, const StreamElement* e) {
  switch (e->kind()) {
    case ElementKind::kTuple: {
      // The single hash of this tuple's key for the whole pipeline: shard
      // selection here, partition selection / index probe / index insert
      // in the shard (via RoutedBatch::key_hashes).
      const uint64_t h =
          e->tuple().field(key_index_[side]).Hash();
      // Causal flow sampling: every flow_sample_period-th routed tuple is
      // stamped with its ordinal as flow id and traced router→shard→merger
      // as Chrome flow arrows. Deterministic for a fixed input order.
      ++routed_tuples_;
      uint64_t fid = 0;
      if (options_.flow_sample_period != 0 &&
          static_cast<uint64_t>(routed_tuples_) %
                  options_.flow_sample_period ==
              1 % options_.flow_sample_period) {
        fid = static_cast<uint64_t>(routed_tuples_);
        TRACE_FLOW_START("flow", "tuple_path", fid);
      }
      if (!repart_enabled_) {
        Stage(shard_map_.OwnerOf(h), static_cast<int8_t>(side), e, h,
              route_now_us_, fid);
        break;
      }
      if (fence_active_ && h == active_handoff_->key_hash) {
        // The fenced key's stream pauses at the router while its state is
        // in flight; everything else keeps flowing.
        deferred_.emplace_back(static_cast<int8_t>(side), e);
        break;
      }
      if (shard_map_.IsReplicated(h)) {
        // Hot key: the sprayed side round-robins (each tuple probes the
        // build side's full local replica), the build side broadcasts
        // (each tuple probes the local spray-state and refreshes every
        // replica). Every result pair meets at exactly one shard.
        if (side == shard_map_.SpraySideOf(h)) {
          const int s = SprayTarget(h);
          Stage(s, static_cast<int8_t>(side), e, h, route_now_us_, fid);
          controller_->ObserveTuple(e->tuple().field(key_index_[side]), h,
                                    side, s);
        } else {
          for (int s = 0; s < num_shards(); ++s) {
            Stage(s, static_cast<int8_t>(side), e, h, route_now_us_, fid);
          }
          controller_->ObserveTuple(e->tuple().field(key_index_[side]), h,
                                    side, shard_map_.OwnerOf(h));
        }
        break;
      }
      const int s = shard_map_.OwnerOf(h);
      Stage(s, static_cast<int8_t>(side), e, h, route_now_us_, fid);
      controller_->ObserveTuple(e->tuple().field(key_index_[side]), h, side,
                                s);
      break;
    }
    case ElementKind::kPunctuation: {
      if (fence_active_) {
        // Any punctuation may interact with the in-flight key (a range can
        // cover it; even a constant-key one races the ownership flip), and
        // a punctuation only ever covers PAST tuples — parking it with the
        // fence delays its release without ever violating §3.3.
        deferred_.emplace_back(static_cast<int8_t>(side), e);
        break;
      }
      // A constant-key punctuation concerns exactly the shards that can
      // hold the key's state: the owning shard under the current map, or
      // every shard once the key is hot-replicated. Non-constant patterns
      // (range flush markers, wildcards) can cover keys of every shard and
      // broadcast. Either way the fan-out is recorded on the release board
      // at dispatch time — under runtime repartitioning the board's static
      // pattern inference can no longer reconstruct it. Staged order keeps
      // the punctuation behind every tuple dispatched before it, per shard.
      const Pattern& key_pattern = e->punctuation().pattern(key_index_[side]);
      // Frontier accounting (obs/progress.h): every dispatch is an ingress
      // for the (side, scheme, shard) cell; the shard's join answers with
      // NoteProcessed, and the gap is the shard's frontier lag.
      const std::string_view scheme = PatternKindName(key_pattern.kind());
      const std::string punct_desc = e->punctuation().ToString();
      obs::FrontierTracker& frontier = obs::FrontierTracker::Global();
      int fanout = num_shards();
      if (key_pattern.IsConstant()) {
        const uint64_t h = key_pattern.constant().Hash();
        if (repart_enabled_ && shard_map_.IsReplicated(h)) {
          for (int s = 0; s < num_shards(); ++s) {
            Stage(s, static_cast<int8_t>(side), e, /*key_hash=*/0,
                  route_now_us_);
            frontier.NoteIngress(side, scheme, s, route_now_us_, punct_desc);
          }
        } else {
          const int owner = shard_map_.OwnerOf(h);
          Stage(owner, static_cast<int8_t>(side), e,
                /*key_hash=*/0, route_now_us_);
          frontier.NoteIngress(side, scheme, owner, route_now_us_,
                               punct_desc);
          fanout = 1;
        }
      } else {
        for (int s = 0; s < num_shards(); ++s) {
          Stage(s, static_cast<int8_t>(side), e, /*key_hash=*/0,
                route_now_us_);
          frontier.NoteIngress(side, scheme, s, route_now_us_, punct_desc);
        }
      }
      if (repart_enabled_) {
        release_board_.NoteDispatch(
            joins_[0]->MakeOutputPunct(side, e->punctuation()), fanout);
      }
      if (options_.punct_barrier) {
        for (int s = 0; s < num_shards(); ++s) FlushStaged(s);
        EpochBarrier();
      }
      break;
    }
    case ElementKind::kEndOfStream: {
      if (fence_active_) {
        // EOS must stay behind every parked element, and parking it keeps
        // the router loop alive until the fence resolves.
        deferred_.emplace_back(static_cast<int8_t>(side), e);
        break;
      }
      for (int s = 0; s < num_shards(); ++s) {
        Stage(s, static_cast<int8_t>(side), e, /*key_hash=*/0, route_now_us_);
      }
      eos_routed_[side] = true;
      break;
    }
  }
}

void ParallelJoinPipeline::StartHandoff(const RepartitionDecision& decision) {
  PJOIN_DCHECK(!fence_active_);
  handoffs_started_.fetch_add(1);
  fence_active_ = true;
  if (std::getenv("PJOIN_PAR_DEBUG") != nullptr) {
    std::fprintf(stderr, "[repart] handoff start kind=%s from=%d to=%d\n",
                 decision.kind == RepartitionDecision::Kind::kReplicate
                     ? "replicate"
                     : "migrate",
                 decision.from, decision.to);
  }
  auto handoff = std::make_unique<ActiveHandoff>();
  handoff->id = ++next_handoff_id_;
  handoff->key = decision.key;
  handoff->key_hash = decision.key_hash;
  handoff->from = decision.from;
  handoff->to = decision.to;
  handoff->replicate =
      decision.kind == RepartitionDecision::Kind::kReplicate;
  handoff->spray_side = decision.spray_side;
  RepartCommand cmd;
  cmd.kind = RepartCommand::Kind::kExtract;
  cmd.key = decision.key;
  cmd.key_hash = decision.key_hash;
  cmd.copy = handoff->replicate;
  cmd.handoff_id = handoff->id;
  if (repart_injector_ != nullptr) {
    cmd.inject_failure = repart_injector_->Roll(
        options_.repartition.fault_plan->migration.extract_error_rate);
    if (cmd.inject_failure) repart_injector_->Count("migration_extract");
  }
  const int source = handoff->from;
  active_handoff_ = std::move(handoff);
  PushCommand(source, std::move(cmd));
}

void ParallelJoinPipeline::PushCommand(int shard, RepartCommand cmd) {
  // FIFO fencing: everything staged for this shard precedes the command,
  // so the source has processed every pre-fence element of the key before
  // it extracts, and the destination before it installs.
  FlushStaged(shard);
  RoutedBatch batch;
  batch.ingress_us = route_now_us_;
  batch.command = std::make_unique<RepartCommand>(std::move(cmd));
  Shard& s = *shards_[static_cast<size_t>(shard)];
  if (s.queue.TryPush(std::move(batch))) return;
  // Same backpressure discipline as FlushStaged: the router never parks.
  router_backpressure_waits_.fetch_add(1);
  backpressure_counter_.Add(1);
  while (true) {
    const size_t merged = DrainOutputs();
    if (s.queue.TryPush(std::move(batch))) return;
    if (merged == 0) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    } else {
      std::this_thread::yield();
    }
  }
}

void ParallelJoinPipeline::ExecuteCommand(Shard* shard, RepartCommand& cmd) {
  TRACE_SPAN("par", "repart_command");
  auto answer = std::make_unique<HandoffOut>();
  answer->handoff_id = cmd.handoff_id;
  if (cmd.kind == RepartCommand::Kind::kExtract) {
    if (cmd.inject_failure) {
      answer->status = Status::IOError("injected migration extract fault");
    } else {
      Result<KeyStateHandoff> extracted =
          shard->join->ExtractKeyState(cmd.key, cmd.copy);
      if (extracted.ok()) {
        answer->payload = std::move(extracted).value();
      } else {
        answer->status = extracted.status();
      }
    }
  } else {
    answer->install_ack = true;
    if (cmd.inject_failure) {
      answer->status = Status::IOError("injected migration install fault");
      // The state travels back so the router can restore it at the source.
      answer->payload = std::move(cmd.payload);
    } else {
      answer->status = shard->join->InstallKeyState(std::move(cmd.payload));
    }
  }
  // The router is fenced on this answer: flush anything staged first (the
  // answer must not overtake results recorded before the command), then
  // ship it in its own batch.
  FlushShardOut(shard, /*force=*/true);
  OutBatch out;
  out.handoff = std::move(answer);
  shard->out.PushBlocking(std::move(out));
  out_activity_.fetch_add(1);
  out_activity_.notify_all();
}

void ParallelJoinPipeline::HandleHandoffOut(HandoffOut out) {
  ActiveHandoff* handoff = active_handoff_.get();
  PJOIN_DCHECK(handoff != nullptr && handoff->id == out.handoff_id);
  if (handoff == nullptr || handoff->id != out.handoff_id) return;
  if (!out.install_ack) {
    // The source's extract answer.
    if (!out.status.ok()) {
      // Refused (ineligible state) or injected failure: nothing moved —
      // abandon the handoff, keep the key where it is.
      migration_rollbacks_.fetch_add(1);
      rollbacks_counter_.Add(1);
      controller_->OnHandoffRejected(handoff->key_hash);
      fence_done_ = true;
      return;
    }
    handoff->payload = std::move(out.payload);
    handoff->phase = ActiveHandoff::Phase::kInstall;
    send_installs_ = true;
    return;
  }
  if (handoff->phase == ActiveHandoff::Phase::kRollback) {
    // The source re-accepted the payload; the failed handoff is fully
    // unwound (the map never changed).
    migration_rollbacks_.fetch_add(1);
    rollbacks_counter_.Add(1);
    controller_->OnHandoffRejected(handoff->key_hash);
    fence_done_ = true;
    return;
  }
  if (!out.status.ok()) {
    // Install failed mid-handoff: the payload travelled back — restore it
    // at the source before unfencing.
    handoff->payload = std::move(out.payload);
    handoff->phase = ActiveHandoff::Phase::kRollback;
    send_rollback_ = true;
    return;
  }
  if (--handoff->pending_installs > 0) return;
  // All installs landed: flip the map, then let PumpRepartition unfence
  // and replay the parked elements under the new placement.
  if (handoff->replicate) {
    shard_map_.MarkReplicated(handoff->key_hash, handoff->spray_side);
    hot_keys_gauge_.Set(shard_map_.replicated_keys());
  } else {
    shard_map_.SetOwner(handoff->key_hash, handoff->to);
    migrations_completed_.fetch_add(1);
    migrations_counter_.Add(1);
    controller_->OnMigrationCompleted();
  }
  fence_done_ = true;
}

void ParallelJoinPipeline::PumpRepartition() {
  if (!repart_enabled_) return;
  if (send_installs_) {
    send_installs_ = false;
    ActiveHandoff* handoff = active_handoff_.get();
    if (handoff->replicate) {
      handoff->pending_installs = num_shards() - 1;
      // Exactly-once across the replica set: only the BUILD (broadcast)
      // side's state is installed at the other shards. The spray side's
      // pre-handoff tuples stay at the owner alone — a post-handoff build
      // tuple broadcasts to every shard and must find each spray tuple at
      // exactly one of them.
      handoff->payload.entries[handoff->spray_side].clear();
      for (int s = 0; s < num_shards(); ++s) {
        if (s == handoff->from) continue;
        RepartCommand cmd;
        cmd.kind = RepartCommand::Kind::kInstall;
        cmd.key = handoff->key;
        cmd.key_hash = handoff->key_hash;
        cmd.handoff_id = handoff->id;
        cmd.payload = handoff->payload;  // one copy per destination
        PushCommand(s, std::move(cmd));
      }
    } else {
      handoff->pending_installs = 1;
      RepartCommand cmd;
      cmd.kind = RepartCommand::Kind::kInstall;
      cmd.key = handoff->key;
      cmd.key_hash = handoff->key_hash;
      cmd.handoff_id = handoff->id;
      cmd.payload = std::move(handoff->payload);
      if (repart_injector_ != nullptr) {
        cmd.inject_failure = repart_injector_->Roll(
            options_.repartition.fault_plan->migration.install_error_rate);
        if (cmd.inject_failure) repart_injector_->Count("migration_install");
      }
      PushCommand(handoff->to, std::move(cmd));
    }
  }
  if (send_rollback_) {
    send_rollback_ = false;
    ActiveHandoff* handoff = active_handoff_.get();
    handoff->pending_installs = 1;
    RepartCommand cmd;
    cmd.kind = RepartCommand::Kind::kInstall;
    cmd.key = handoff->key;
    cmd.key_hash = handoff->key_hash;
    cmd.handoff_id = handoff->id;
    cmd.payload = std::move(handoff->payload);
    PushCommand(handoff->from, std::move(cmd));
  }
  if (fence_done_) {
    fence_done_ = false;
    fence_active_ = false;
    active_handoff_.reset();
    if (std::getenv("PJOIN_PAR_DEBUG") != nullptr) {
      std::fprintf(stderr, "[repart] unfence deferred=%zu\n",
                   deferred_.size());
    }
    // Replay everything the fence parked, in arrival order, under the
    // updated map. A replay cannot start a new fence (decisions are made
    // only in the router main loop), so this does not recurse.
    std::vector<std::pair<int8_t, const StreamElement*>> parked;
    parked.swap(deferred_);
    for (const auto& [side, e] : parked) RouteElement(side, e);
  }
}

void ParallelJoinPipeline::RouterLoop(SpscRing<InputSpan>* in_left,
                                      SpscRing<InputSpan>* in_right) {
  TRACE_SET_THREAD_NAME("router");
  TRACE_SPAN("par", "router");
  SpscRing<InputSpan>* in[2] = {in_left, in_right};
  InputSpan span[2];
  size_t pos[2] = {0, 0};
  // A side's EOS is consumed from the input when the router takes it off
  // the span, and routed once it is actually broadcast — the two diverge
  // while a fence holds the EOS parked.
  bool eos_consumed[2] = {false, false};
  key_index_[0] = joins_[0]->state(0).key_index();
  key_index_[1] = joins_[0]->state(1).key_index();
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  obs::Gauge in_occupancy[2] = {
      registry.GetGauge("pjoin_ring_occupancy", "edge=input_l"),
      registry.GetGauge("pjoin_ring_occupancy", "edge=input_r")};
  int64_t since_drain = 0;
  // Ingress timestamps for latency attribution, refreshed every few
  // dispatches so the clock read amortizes off the routing hot path. The
  // resulting quantization (a handful of router iterations) is far below
  // the queueing delays the histograms exist to expose.
  route_now_us_ = obs::TraceNowMicros();
  int now_refresh = 0;

  // The head of a side is the next element of its current span, refilled
  // from the input ring when the span is drained (zero copy throughout:
  // spans point straight into the caller's vectors).
  auto head = [&](int side) -> const StreamElement* {
    if (pos[side] >= span[side].size) {
      if (!in[side]->TryPop(&span[side])) return nullptr;
      pos[side] = 0;
    }
    return span[side].data + pos[side];
  };

  while (!(eos_routed_[0] && eos_routed_[1])) {
    const StreamElement* h0 = eos_consumed[0] ? nullptr : head(0);
    const StreamElement* h1 = eos_consumed[1] ? nullptr : head(1);
    // Merge in global arrival order: only consume a side when the other has
    // a head to compare against or can never produce an earlier element.
    const bool done0 = eos_consumed[0] || in[0]->exhausted();
    const bool done1 = eos_consumed[1] || in[1]->exhausted();
    int side = -1;
    if (h0 != nullptr && (h1 != nullptr
                              ? h0->arrival() <= h1->arrival()
                              : done1)) {
      side = 0;
    } else if (h1 != nullptr && (h0 != nullptr
                                     ? h1->arrival() < h0->arrival()
                                     : done0)) {
      side = 1;
    }
    if (side < 0) {
      // Nothing dispatchable: both inputs dry, or only a parked EOS left.
      // Keep the merge and the handoff state machine moving — a pending
      // fence resolves through exactly these two calls.
      DrainOutputs();
      PumpRepartition();
      std::this_thread::yield();
      continue;
    }
    const StreamElement* e = span[side].data + pos[side];
    ++pos[side];
    if (now_refresh-- <= 0) {
      route_now_us_ = obs::TraceNowMicros();
      now_refresh = 63;
    }
    if (e->kind() == ElementKind::kEndOfStream) eos_consumed[side] = true;
    RouteElement(side, e);
    if (repart_enabled_) {
      if (!fence_active_ && controller_->ShouldCheck()) {
        const RepartitionDecision decision = controller_->Decide();
        imbalance_gauge_.Set(
            static_cast<int64_t>(controller_->last_imbalance() * 1000.0));
        if (decision.kind != RepartitionDecision::Kind::kNone) {
          StartHandoff(decision);
        }
      }
      PumpRepartition();
    }
    if (++since_drain >= static_cast<int64_t>(options_.batch_size)) {
      since_drain = 0;
      DrainOutputs();
      PumpRepartition();
      in_occupancy[0].Set(static_cast<int64_t>(in[0]->size()));
      in_occupancy[1].Set(static_cast<int64_t>(in[1]->size()));
    }
  }
  PJOIN_DCHECK(!fence_active_ && deferred_.empty());
  for (int s = 0; s < num_shards(); ++s) {
    FlushStaged(s);
    shards_[static_cast<size_t>(s)]->queue.Close();
  }
  in_occupancy[0].Set(0);
  in_occupancy[1].Set(0);
}

Status ParallelJoinPipeline::Run(const std::vector<StreamElement>& left,
                                 const std::vector<StreamElement>& right) {
  PJOIN_DCHECK(!ran_);
  ran_ = true;

  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  backpressure_counter_ = registry.GetCounter("pjoin_router_backpressure_waits",
                                              "pipeline=parallel");
  migrations_counter_ =
      registry.GetCounter("pjoin_migrations_total", "pipeline=parallel");
  rollbacks_counter_ = registry.GetCounter("pjoin_migration_rollbacks_total",
                                           "pipeline=parallel");
  hot_keys_gauge_ =
      registry.GetGauge("pjoin_hot_keys_active", "pipeline=parallel");
  imbalance_gauge_ = registry.GetGauge("pjoin_shard_imbalance_permille",
                                       "pipeline=parallel");
  punct_pending_gauge_ =
      registry.GetGauge("pjoin_punct_pending_rounds", "pipeline=parallel");
  eos_routed_[0] = false;
  eos_routed_[1] = false;
  merged_results_.assign(static_cast<size_t>(num_shards()), 0);
  // Wire per-shard output staging: results queue up locally; a punctuation
  // release is recorded behind them, and FlushShardOut moves both into the
  // shard's output ring with that order intact — so by the time the merger
  // counts the last shard's release, every covered result has already been
  // emitted ahead of it.
  for (auto& shard_ptr : shards_) {
    Shard* shard = shard_ptr.get();
    shard->local_results.reserve(options_.result_flush);
    shard->join->set_result_move_callback([shard](Tuple&& t) {
      shard->local_results.push_back(std::move(t));
    });
    shard->join->set_punct_callback([shard](const Punctuation& p) {
      shard->local_releases.push_back(p);
    });
    const std::string labels =
        "pipeline=parallel,shard=" + std::to_string(shard->id);
    shard->join->BindLatencyMetrics(labels);
    shard->join->BindStateGauges(labels);
    // Frontier accounting: the shard's join reports processed punctuations
    // (and PJoin its purge expectations) to the cell the router feeds.
    shard->join->BindFrontier(shard->id);
    shard->depth_gauge =
        registry.GetGauge("pjoin_shard_queue_depth", labels);
    shard->queue_occupancy_gauge = registry.GetGauge(
        "pjoin_ring_occupancy", "edge=shard_" + std::to_string(shard->id));
    shard->out_occupancy_gauge = registry.GetGauge(
        "pjoin_ring_occupancy", "edge=out_" + std::to_string(shard->id));
    shard->spin_parks_counter =
        registry.GetCounter("pjoin_shard_spin_parks", labels);
  }

  // Live /statusz contribution for the duration of the run: per-shard ring
  // occupancy and router/worker progress, all read through atomics so the
  // server's handler threads can call this any time.
  obs::ScopedStatusSection statusz_section(
      "parallel pipeline", [this]() {
        std::string out;
        for (const auto& shard : shards_) {
          out.append("shard ");
          out.append(std::to_string(shard->id));
          out.append(": queue_batches=");
          out.append(std::to_string(shard->queue.size()));
          out.append(" depth=");
          out.append(std::to_string(shard->enqueued.load() -
                                    shard->processed.load()));
          out.append(" enqueued=");
          out.append(std::to_string(shard->enqueued.load()));
          out.append(" processed=");
          out.append(std::to_string(shard->processed.load()));
          out.push_back('\n');
        }
        out.append("router: backpressure_waits=");
        out.append(std::to_string(router_backpressure_waits_.load()));
        out.append(" shard_spin_parks=");
        out.append(std::to_string(shard_spin_parks_.load()));
        out.push_back('\n');
        return out;
      });

  const size_t input_batches =
      RingBatches(options_.input_buffer_capacity, options_.batch_size);
  SpscRing<InputSpan> in_left(input_batches);
  SpscRing<InputSpan> in_right(input_batches);
  // Producers publish read-only spans of the caller's vectors — the
  // elements themselves are never copied (Run borrows the vectors for the
  // whole call, so the spans stay valid).
  auto produce = [this](const std::vector<StreamElement>& src,
                        SpscRing<InputSpan>* ring,
                        [[maybe_unused]] const char* name) {
    TRACE_SET_THREAD_NAME(name);
    for (size_t i = 0; i < src.size(); i += options_.batch_size) {
      const size_t n = std::min(options_.batch_size, src.size() - i);
      ring->PushBlocking(InputSpan{src.data() + i, n});
    }
    ring->Close();
  };

  std::thread producer_l(produce, std::cref(left), &in_left, "producer-l");
  std::thread producer_r(produce, std::cref(right), &in_right, "producer-r");
  std::vector<std::thread> workers;
  workers.reserve(shards_.size());
  for (auto& shard : shards_) {
    workers.emplace_back(&ParallelJoinPipeline::ShardLoop, this, shard.get());
  }

  Stopwatch phase_timer;
  RouterLoop(&in_left, &in_right);
  const TimeMicros router_us = phase_timer.ElapsedMicros();

  // Keep merging while the workers finish their tails (a worker could
  // otherwise park forever on a full output ring) — parked on the activity
  // eventcount between drains so this thread's cycles go to the workers.
  while (true) {
    const uint32_t seq = out_activity_.load();
    const bool done = workers_done_.load() >= num_shards();
    if (DrainOutputs() == 0) {
      if (done) break;
      out_activity_.wait(seq);
    }
  }
  producer_l.join();
  producer_r.join();
  for (std::thread& w : workers) w.join();
  DrainOutputs();
  const TimeMicros total_us = phase_timer.ElapsedMicros();
  if (std::getenv("PJOIN_PAR_DEBUG") != nullptr) {
    std::fprintf(stderr,
                 "[par debug] router=%lldms drain_workers=%lldms "
                 "caller_cpu=%lldms\n",
                 (long long)(router_us / 1000),
                 (long long)((total_us - router_us) / 1000),
                 (long long)(ThreadCpuMicros() / 1000));
  }

  Status status;
  shard_stats_.clear();
  for (auto& shard : shards_) {
    shard->stats.results = shard->join->results_emitted();
    shard->stats.puncts_emitted = shard->join->puncts_emitted();
    shard->stats.state_tuples = shard->join->total_state_tuples();
    stalls_reported_ += shard->stats.stalls;
    shard_stats_.push_back(shard->stats);
    if (status.ok() && !shard->status.ok()) status = shard->status;
  }
  if (options_.stats_registry != nullptr) {
    for (const ShardStats& stats : shard_stats_) {
      // A dispatch failure must not mask an earlier shard error: the shard
      // error is the run's outcome, the stats event is bookkeeping.
      const Status dispatch_status = options_.stats_registry->Dispatch(
          Event{EventType::kShardStats, /*time=*/0, /*stream=*/stats.shard,
                stats.ToString()});
      if (status.ok() && !dispatch_status.ok()) status = dispatch_status;
    }
  }
  return status;
}

}  // namespace pjoin
