#include "ops/parallel_pipeline.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/introspection.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace pjoin {

namespace {

// Shard selection mixes the key hash before the modulo: the low hash bits
// already select the partition inside a shard's HashState, so taking them
// for the shard too would leave most per-shard partitions empty.
int ShardOfHash(uint64_t key_hash, int num_shards) {
  const uint64_t mixed = (key_hash * 0x9e3779b97f4a7c15ull) >> 32;
  return static_cast<int>(mixed % static_cast<uint64_t>(num_shards));
}

}  // namespace

std::string ShardStats::ToString() const {
  return "shard=" + std::to_string(shard) +
         " elements=" + std::to_string(elements) +
         " tuples=" + std::to_string(tuples) +
         " results=" + std::to_string(results) +
         " puncts=" + std::to_string(puncts_emitted) +
         " stalls=" + std::to_string(stalls) +
         " state_tuples=" + std::to_string(state_tuples);
}

// A bounded queue of routed elements between the router (sole producer) and
// one shard worker (sole consumer), with batched push/pop.
class ParallelJoinPipeline::ShardQueue {
 public:
  explicit ShardQueue(size_t capacity) : capacity_(capacity) {}

  /// Moves the whole batch in, blocking while the queue is at capacity.
  void PushBatch(std::vector<Routed>* batch) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    size_t pushed = 0;
    while (pushed < batch->size()) {
      if (!HasSpaceLocked()) WaitForSpaceLocked();
      size_t room = batch->size() - pushed;
      if (capacity_ > 0) {
        room = std::min<size_t>(room, capacity_ - queue_.size());
      }
      for (size_t i = 0; i < room; ++i) {
        queue_.push_back(std::move((*batch)[pushed++]));
      }
      data_.NotifyOne();
    }
    batch->clear();
  }

  /// Appends up to `max` elements to `out`, waiting up to `wait` for data.
  void PopBatch(size_t max, std::chrono::microseconds wait,
                std::vector<Routed>* out) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    if (queue_.empty() && !closed_) {
      const auto deadline = SteadyDeadlineAfter(wait);
      while (queue_.empty() && !closed_) {
        if (data_.WaitUntil(mu_, deadline)) break;
      }
    }
    const size_t n = std::min(max, queue_.size());
    for (size_t i = 0; i < n; ++i) {
      out->push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    if (n > 0 && capacity_ > 0) space_.NotifyAll();
  }

  void Close() EXCLUDES(mu_) {
    MutexLock lock(mu_);
    closed_ = true;
    data_.NotifyAll();
  }

  bool exhausted() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return closed_ && queue_.empty();
  }

  int64_t backpressure_waits() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return backpressure_waits_;
  }

  /// Current depth; safe from any thread (the /statusz handler reads it
  /// while the router and worker are live).
  size_t size() const EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return queue_.size();
  }

 private:
  bool HasSpaceLocked() const REQUIRES(mu_) {
    return capacity_ == 0 || queue_.size() < capacity_;
  }
  void WaitForSpaceLocked() REQUIRES(mu_) {
    ++backpressure_waits_;
    while (!HasSpaceLocked()) space_.Wait(mu_);
  }

  mutable Mutex mu_;
  CondVar data_;
  CondVar space_;
  std::deque<Routed> queue_ GUARDED_BY(mu_);
  const size_t capacity_;
  bool closed_ GUARDED_BY(mu_) = false;
  int64_t backpressure_waits_ GUARDED_BY(mu_) = 0;
};

struct ParallelJoinPipeline::Shard {
  Shard(int id_in, size_t queue_capacity) : id(id_in), queue(queue_capacity) {}

  const int id;
  JoinOperator* join = nullptr;
  ShardQueue queue;
  /// Elements the worker has fully processed; the router's epoch barrier
  /// compares this against its enqueued count.
  std::atomic<int64_t> processed{0};
  /// Elements the router has pushed (written by the router only; atomic so
  /// the /statusz section can read it live).
  std::atomic<int64_t> enqueued{0};
  /// Live queue depth, published by the worker once per batch.
  obs::Gauge depth_gauge;
  /// Worker-local result staging, flushed into the shared output queue in
  /// batches (and always before a punctuation release is recorded).
  std::vector<Tuple> local_results;
  ShardStats stats;
  Status status;
};

ParallelJoinPipeline::ParallelJoinPipeline(JoinFactory factory,
                                           ParallelPipelineOptions options)
    : options_(options) {
  PJOIN_DCHECK(factory != nullptr);
  PJOIN_DCHECK(options_.num_shards > 0);
  PJOIN_DCHECK(options_.batch_size > 0);
  joins_.reserve(static_cast<size_t>(options_.num_shards));
  shards_.reserve(static_cast<size_t>(options_.num_shards));
  staged_.resize(static_cast<size_t>(options_.num_shards));
  for (int s = 0; s < options_.num_shards; ++s) {
    joins_.push_back(factory(s));
    PJOIN_DCHECK(joins_.back() != nullptr);
    auto shard = std::make_unique<Shard>(s, options_.shard_queue_capacity);
    shard->join = joins_.back().get();
    shard->stats.shard = s;
    shards_.push_back(std::move(shard));
  }
}

ParallelJoinPipeline::~ParallelJoinPipeline() = default;

CounterSet ParallelJoinPipeline::MergedCounters() const {
  CounterSet merged;
  for (const auto& join : joins_) merged.Merge(join->counters());
  return merged;
}

int64_t ParallelJoinPipeline::router_backpressure_waits() const {
  int64_t total = 0;
  for (const auto& shard : shards_) total += shard->queue.backpressure_waits();
  return total;
}

void ParallelJoinPipeline::FlushShardResultsLocked(Shard* shard) {
  for (Tuple& t : shard->local_results) {
    output_results_.push_back(std::move(t));
  }
  shard->local_results.clear();
}

void ParallelJoinPipeline::PublishShardOutputs(Shard* shard) {
  if (shard->local_results.empty()) return;
  MutexLock lock(output_mu_);
  FlushShardResultsLocked(shard);
}

void ParallelJoinPipeline::ReleasePunct(Shard* shard, const Punctuation& p) {
  TRACE_INSTANT("par", "punct_release");
  MutexLock lock(output_mu_);
  FlushShardResultsLocked(shard);
  PunctCell& cell = punct_board_[p.ToString()];
  if (!cell.punct.has_value()) cell.punct = p;
  if (++cell.releases % num_shards() == 0) {
    output_puncts_.push_back(*cell.punct);
  }
}

void ParallelJoinPipeline::DrainOutputs() {
  std::deque<Tuple> results;
  std::deque<Punctuation> puncts;
  {
    MutexLock lock(output_mu_);
    results.swap(output_results_);
    puncts.swap(output_puncts_);
  }
  if (results.empty() && puncts.empty()) return;
  TRACE_SPAN("par", "merge_drain");
  for (const Tuple& t : results) {
    ++results_emitted_;
    if (on_result_) on_result_(t);
  }
  for (const Punctuation& p : puncts) {
    ++puncts_emitted_;
    if (on_punct_) on_punct_(p);
  }
}

void ParallelJoinPipeline::Stage(int shard, int8_t side, StreamElement e,
                                 TimeMicros ingress_us) {
  auto& pending = staged_[static_cast<size_t>(shard)];
  pending.push_back(Routed{side, std::move(e), ingress_us});
  if (pending.size() >= options_.batch_size) FlushStaged(shard);
}

void ParallelJoinPipeline::FlushStaged(int shard) {
  auto& pending = staged_[static_cast<size_t>(shard)];
  if (pending.empty()) return;
  Shard& s = *shards_[static_cast<size_t>(shard)];
  s.enqueued.fetch_add(static_cast<int64_t>(pending.size()),
                       std::memory_order_relaxed);
  s.queue.PushBatch(&pending);
}

void ParallelJoinPipeline::EpochBarrier() {
  TRACE_SPAN("par", "epoch_barrier");
  ++epoch_barriers_;
  while (true) {
    bool drained = true;
    for (const auto& shard : shards_) {
      if (shard->processed.load(std::memory_order_acquire) <
          shard->enqueued.load(std::memory_order_relaxed)) {
        drained = false;
        break;
      }
    }
    if (drained) return;
    DrainOutputs();
    std::this_thread::yield();
  }
}

void ParallelJoinPipeline::ShardLoop(Shard* shard) {
  TRACE_SET_THREAD_NAME("shard-" + std::to_string(shard->id));
  JoinOperator* join = shard->join;
  std::vector<Routed> batch;
  batch.reserve(options_.batch_size);
  int64_t dry = 0;
  bool failed = false;
  int64_t busy_us = 0;
  Stopwatch batch_timer;
  const bool debug = std::getenv("PJOIN_PAR_DEBUG") != nullptr;
  while (true) {
    batch.clear();
    shard->queue.PopBatch(options_.batch_size,
                          std::chrono::microseconds(500), &batch);
    if (batch.empty()) {
      if (shard->queue.exhausted()) break;
      // This shard is momentarily dry: use the lull for background work
      // (PJoin's disk join, XJoin's reactive stage) on shard-local state.
      if (!failed && ++dry >= options_.stall_polls) {
        dry = 0;
        ++shard->stats.stalls;
        // Emissions out of the stall work (disk-join results, deferred
        // propagation) attribute latency to the stall start.
        join->set_element_ingress_micros(obs::TraceNowMicros());
        const Status st = join->OnStreamsStalled();
        if (!st.ok()) {
          shard->status = st;
          failed = true;
        }
        join->PublishStateGauges();
        PublishShardOutputs(shard);
      }
      continue;
    }
    dry = 0;
    batch_timer.Restart();
    {
      TRACE_SPAN("par", "shard_batch");
      for (Routed& r : batch) {
        if (!failed) {
          ++shard->stats.elements;
          if (r.element.is_tuple()) ++shard->stats.tuples;
          join->set_element_ingress_micros(r.ingress_us);
          const Status st = join->OnElement(r.side, r.element);
          if (!st.ok()) {
            shard->status = st;
            // Keep draining (and discarding) so the router never blocks on
            // this shard's queue; the error is surfaced after the run.
            failed = true;
          }
        }
        shard->processed.fetch_add(1, std::memory_order_release);
      }
    }
    busy_us += batch_timer.ElapsedMicros();
    // Once-per-batch live publication: queue depth plus the join's state
    // gauges (the worker owns the join, so the HashState reads are safe).
    shard->depth_gauge.Set(static_cast<int64_t>(shard->queue.size()));
    join->PublishStateGauges();
    if (shard->local_results.size() >= options_.result_flush) {
      PublishShardOutputs(shard);
    }
  }
  shard->depth_gauge.Set(0);
  join->PublishStateGauges();
  PublishShardOutputs(shard);
  if (debug) {
    std::fprintf(stderr, "[par debug] shard=%d busy=%lldms stalls=%lld\n",
                 shard->id, (long long)(busy_us / 1000),
                 (long long)shard->stats.stalls);
  }
}

void ParallelJoinPipeline::RouterLoop(StreamBuffer* in_left,
                                      StreamBuffer* in_right) {
  TRACE_SET_THREAD_NAME("router");
  TRACE_SPAN("par", "router");
  StreamBuffer* in[2] = {in_left, in_right};
  std::deque<StreamElement> head[2];
  bool eos_sent[2] = {false, false};
  const size_t key_index[2] = {joins_[0]->state(0).key_index(),
                               joins_[0]->state(1).key_index()};
  int64_t since_drain = 0;
  // Ingress timestamps for latency attribution, refreshed every few
  // dispatches so the clock read amortizes off the routing hot path. The
  // resulting quantization (a handful of router iterations) is far below
  // the queueing delays the histograms exist to expose.
  TimeMicros now_us = obs::TraceNowMicros();
  int now_refresh = 0;

  auto refill = [&](int side) {
    if (!head[side].empty() || eos_sent[side]) return;
    for (StreamElement& e :
         in[side]->PopBatch(options_.batch_size)) {
      head[side].push_back(std::move(e));
    }
  };

  while (!(eos_sent[0] && eos_sent[1])) {
    refill(0);
    refill(1);
    const bool have0 = !head[0].empty();
    const bool have1 = !head[1].empty();
    // Merge in global arrival order: only consume a side when the other has
    // a head to compare against or can never produce an earlier element.
    const bool done1 = eos_sent[1] || in[1]->exhausted();
    const bool done0 = eos_sent[0] || in[0]->exhausted();
    int side = -1;
    if (have0 &&
        (have1 ? head[0].front().arrival() <= head[1].front().arrival()
               : done1)) {
      side = 0;
    } else if (have1 &&
               (have0 ? head[1].front().arrival() < head[0].front().arrival()
                      : done0)) {
      side = 1;
    }
    if (side < 0) {
      DrainOutputs();
      std::this_thread::yield();
      continue;
    }
    StreamElement e = std::move(head[side].front());
    head[side].pop_front();
    if (now_refresh-- <= 0) {
      now_us = obs::TraceNowMicros();
      now_refresh = 63;
    }

    switch (e.kind()) {
      case ElementKind::kTuple: {
        const uint64_t h = e.tuple().field(key_index[side]).Hash();
        Stage(ShardOfHash(h, num_shards()), static_cast<int8_t>(side),
              std::move(e), now_us);
        break;
      }
      case ElementKind::kPunctuation: {
        // Broadcast. Staged order keeps the punctuation behind every tuple
        // dispatched before it, per shard.
        for (int s = 0; s + 1 < num_shards(); ++s) {
          Stage(s, static_cast<int8_t>(side), e, now_us);
        }
        Stage(num_shards() - 1, static_cast<int8_t>(side), std::move(e),
              now_us);
        if (options_.punct_barrier) {
          for (int s = 0; s < num_shards(); ++s) FlushStaged(s);
          EpochBarrier();
        }
        break;
      }
      case ElementKind::kEndOfStream: {
        for (int s = 0; s + 1 < num_shards(); ++s) {
          Stage(s, static_cast<int8_t>(side), e, now_us);
        }
        Stage(num_shards() - 1, static_cast<int8_t>(side), std::move(e),
              now_us);
        eos_sent[side] = true;
        break;
      }
    }
    if (++since_drain >= static_cast<int64_t>(options_.batch_size)) {
      since_drain = 0;
      DrainOutputs();
    }
  }
  for (int s = 0; s < num_shards(); ++s) {
    FlushStaged(s);
    shards_[static_cast<size_t>(s)]->queue.Close();
  }
}

Status ParallelJoinPipeline::Run(const std::vector<StreamElement>& left,
                                 const std::vector<StreamElement>& right) {
  PJOIN_DCHECK(!ran_);
  ran_ = true;

  // Wire per-shard output callbacks: results stage locally; a punctuation
  // release first publishes the shard's staged results, then marks the
  // board — so by the time the last shard completes a punctuation, every
  // covered result is already in the output queue ahead of it.
  for (auto& shard_ptr : shards_) {
    Shard* shard = shard_ptr.get();
    shard->join->set_result_callback(
        [shard](const Tuple& t) { shard->local_results.push_back(t); });
    shard->join->set_punct_callback([this, shard](const Punctuation& p) {
      ReleasePunct(shard, p);
    });
    const std::string labels =
        "pipeline=parallel,shard=" + std::to_string(shard->id);
    shard->join->BindLatencyMetrics(labels);
    shard->join->BindStateGauges(labels);
    shard->depth_gauge = obs::MetricsRegistry::Global().GetGauge(
        "pjoin_shard_queue_depth", labels);
  }

  // Live /statusz contribution for the duration of the run: per-shard
  // queue depths and router/worker progress, all read through locks or
  // atomics so the server's handler threads can call this any time.
  obs::ScopedStatusSection statusz_section(
      "parallel pipeline", [this]() {
        std::string out;
        for (const auto& shard : shards_) {
          out.append("shard ");
          out.append(std::to_string(shard->id));
          out.append(": queue_depth=");
          out.append(std::to_string(shard->queue.size()));
          out.append(" enqueued=");
          out.append(std::to_string(
              shard->enqueued.load(std::memory_order_relaxed)));
          out.append(" processed=");
          out.append(std::to_string(
              shard->processed.load(std::memory_order_acquire)));
          out.append(" backpressure_waits=");
          out.append(std::to_string(shard->queue.backpressure_waits()));
          out.push_back('\n');
        }
        return out;
      });

  StreamBuffer input[2] = {StreamBuffer(options_.input_buffer_capacity),
                           StreamBuffer(options_.input_buffer_capacity)};
  input[0].BindMetrics("input_l");
  input[1].BindMetrics("input_r");
  auto produce = [this](const std::vector<StreamElement>& src,
                        StreamBuffer* buffer,
                        [[maybe_unused]] const char* name) {
    TRACE_SET_THREAD_NAME(name);
    for (size_t i = 0; i < src.size(); i += options_.batch_size) {
      const size_t end = std::min(src.size(), i + options_.batch_size);
      std::vector<StreamElement> chunk(src.begin() + static_cast<long>(i),
                                       src.begin() + static_cast<long>(end));
      if (buffer->PushBatch(std::move(chunk)) < end - i) break;
    }
    buffer->Close();
  };

  std::thread producer_l(produce, std::cref(left), &input[0], "producer-l");
  std::thread producer_r(produce, std::cref(right), &input[1], "producer-r");
  std::vector<std::thread> workers;
  workers.reserve(shards_.size());
  for (auto& shard : shards_) {
    workers.emplace_back(&ParallelJoinPipeline::ShardLoop, this, shard.get());
  }

  Stopwatch phase_timer;
  RouterLoop(&input[0], &input[1]);
  const TimeMicros router_us = phase_timer.ElapsedMicros();

  producer_l.join();
  producer_r.join();
  for (std::thread& w : workers) w.join();
  const TimeMicros total_us = phase_timer.ElapsedMicros();
  if (std::getenv("PJOIN_PAR_DEBUG") != nullptr) {
    std::fprintf(stderr, "[par debug] router=%lldms drain_workers=%lldms\n",
                 (long long)(router_us / 1000),
                 (long long)((total_us - router_us) / 1000));
  }
  DrainOutputs();

  Status status;
  shard_stats_.clear();
  for (auto& shard : shards_) {
    shard->stats.results = shard->join->results_emitted();
    shard->stats.puncts_emitted = shard->join->puncts_emitted();
    shard->stats.state_tuples = shard->join->total_state_tuples();
    stalls_reported_ += shard->stats.stalls;
    shard_stats_.push_back(shard->stats);
    if (status.ok() && !shard->status.ok()) status = shard->status;
  }
  if (options_.stats_registry != nullptr) {
    for (const ShardStats& stats : shard_stats_) {
      // A dispatch failure must not mask an earlier shard error: the shard
      // error is the run's outcome, the stats event is bookkeeping.
      const Status dispatch_status = options_.stats_registry->Dispatch(
          Event{EventType::kShardStats, /*time=*/0, /*stream=*/stats.shard,
                stats.ToString()});
      if (status.ok() && !dispatch_status.ok()) status = dispatch_status;
    }
  }
  return status;
}

}  // namespace pjoin
