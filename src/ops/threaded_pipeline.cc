#include "ops/threaded_pipeline.h"

#include <thread>

#include "obs/introspection.h"
#include "obs/trace.h"

namespace pjoin {

ThreadedJoinPipeline::ThreadedJoinPipeline(JoinOperator* join,
                                           ThreadedPipelineOptions options)
    : join_(join), options_(options) {
  PJOIN_DCHECK(join != nullptr);
  PJOIN_DCHECK(options_.producer_burst > 0);
}

Status ThreadedJoinPipeline::Run(const std::vector<StreamElement>& left,
                                 const std::vector<StreamElement>& right) {
  join_->BindLatencyMetrics("pipeline=threaded");
  join_->BindStateGauges("pipeline=threaded");
  obs::ScopedStatusSection statusz_section("threaded pipeline", [this]() {
    return "elements_processed=" +
           std::to_string(
               elements_processed_.load()) +
           "\n";
  });
  StreamBuffer buffers[2] = {StreamBuffer(options_.buffer_capacity),
                             StreamBuffer(options_.buffer_capacity)};
  auto producer = [this](const std::vector<StreamElement>& elements,
                         StreamBuffer* buffer) {
    int64_t in_burst = 0;
    for (const StreamElement& e : elements) {
      // With a bounded buffer this blocks while the consumer is behind
      // (backpressure); the buffer only rejects pushes after Close, which
      // this producer alone issues.
      const Status pushed = buffer->PushBlocking(e);
      PJOIN_DCHECK(pushed.ok());
      if (!pushed.ok()) break;
      if (++in_burst >= options_.producer_burst) {
        in_burst = 0;
        std::this_thread::yield();
      }
    }
    buffer->Close();
  };
  std::thread t0(producer, std::cref(left), &buffers[0]);
  std::thread t1(producer, std::cref(right), &buffers[1]);

  Status status;
  int64_t dry_polls = 0;
  // Ingress timestamps for latency attribution, refreshed every few
  // elements to keep the clock read off the per-element path.
  TimeMicros now_us = obs::TraceNowMicros();
  int now_refresh = 0;
  // Merge loop: consume the earlier-timestamped head. To keep global
  // arrival order we only consume from a buffer when the other side either
  // has a head to compare against or is done for good.
  while (status.ok()) {
    auto a0 = buffers[0].PeekArrival();
    auto a1 = buffers[1].PeekArrival();
    const bool done0 = buffers[0].exhausted();
    const bool done1 = buffers[1].exhausted();
    if (done0 && done1) break;

    int side = -1;
    if (a0.has_value() && (a1.has_value() ? *a0 <= *a1 : done1)) {
      side = 0;
    } else if (a1.has_value() && (a0.has_value() ? *a1 < *a0 : done0)) {
      side = 1;
    }
    if (side < 0) {
      // At least one open buffer is momentarily empty: the join may use the
      // lull for background work (reactive disk stage).
      if (++dry_polls % options_.stall_report_interval == 0) {
        ++stalls_reported_;
        join_->set_element_ingress_micros(obs::TraceNowMicros());
        status = join_->OnStreamsStalled();
        if (!status.ok()) break;
        join_->PublishStateGauges();
      }
      std::this_thread::yield();
      continue;
    }
    auto element = buffers[side].Pop();
    PJOIN_DCHECK(element.has_value());
    if (now_refresh-- <= 0) {
      now_us = obs::TraceNowMicros();
      now_refresh = 63;
      join_->PublishStateGauges();
    }
    join_->set_element_ingress_micros(now_us);
    status = join_->OnElement(side, *element);
    elements_processed_.fetch_add(1);
  }

  t0.join();
  t1.join();
  backpressure_waits_ =
      buffers[0].backpressure_waits() + buffers[1].backpressure_waits();
  return status;
}

}  // namespace pjoin
