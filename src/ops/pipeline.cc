#include "ops/pipeline.h"

#include "common/macros.h"

namespace pjoin {

JoinPipeline::JoinPipeline(JoinOperator* join, Operator* head,
                           PipelineOptions options)
    : join_(join), head_(head), options_(std::move(options)) {
  PJOIN_DCHECK(join_ != nullptr);
}

Status JoinPipeline::Run(const std::vector<StreamElement>& left,
                         const std::vector<StreamElement>& right) {
  Status pipe_status;
  if (head_ != nullptr) {
    join_->set_result_callback([this, &pipe_status](const Tuple& t) {
      Status s = head_->OnTuple(t, join_->last_arrival());
      if (!s.ok() && pipe_status.ok()) pipe_status = s;
    });
    join_->set_punct_callback([this, &pipe_status](const Punctuation& p) {
      Status s = head_->OnPunctuation(p, join_->last_arrival());
      if (!s.ok() && pipe_status.ok()) pipe_status = s;
    });
  }

  size_t il = 0;
  size_t ir = 0;
  TimeMicros last_arrival = 0;
  while (il < left.size() || ir < right.size()) {
    int side;
    if (il >= left.size()) {
      side = 1;
    } else if (ir >= right.size()) {
      side = 0;
    } else {
      side = (left[il].arrival() <= right[ir].arrival()) ? 0 : 1;
    }
    const StreamElement& e = (side == 0) ? left[il] : right[ir];
    if (options_.stall_gap_micros > 0 &&
        e.arrival() - last_arrival >= options_.stall_gap_micros) {
      ++stalls_detected_;
      PJOIN_RETURN_NOT_OK(join_->OnStreamsStalled());
    }
    last_arrival = std::max(last_arrival, e.arrival());
    PJOIN_RETURN_NOT_OK(join_->OnElement(side, e));
    PJOIN_RETURN_NOT_OK(pipe_status);
    if (side == 0) {
      ++il;
    } else {
      ++ir;
    }
    ++elements_processed_;
    if (options_.progress) options_.progress(elements_processed_);
  }

  if (head_ != nullptr) {
    PJOIN_RETURN_NOT_OK(head_->OnEndOfStream());
  }
  return pipe_status;
}

}  // namespace pjoin
