// Project: column selection/reordering. Punctuation patterns are projected
// along with the columns; dropping a constrained column widens the
// punctuation (the kept patterns still hold).

#ifndef PJOIN_OPS_PROJECT_H_
#define PJOIN_OPS_PROJECT_H_

#include <vector>

#include "ops/operator.h"
#include "tuple/schema.h"

namespace pjoin {

class Project : public Operator {
 public:
  /// Keeps input fields `columns`, in that order.
  Project(SchemaPtr input_schema, std::vector<size_t> columns);

  const SchemaPtr& output_schema() const { return output_schema_; }

  Status OnTuple(const Tuple& tuple, TimeMicros arrival) override;
  Status OnPunctuation(const Punctuation& punct, TimeMicros arrival) override;

 private:
  SchemaPtr input_schema_;
  SchemaPtr output_schema_;
  std::vector<size_t> columns_;
};

}  // namespace pjoin

#endif  // PJOIN_OPS_PROJECT_H_
