// PunctReleaseBoard: exactly-once punctuation emission over sharded
// releases — the merger-side half of the parallel pipeline's punctuation
// contract (paper §3.3; docs/PERFORMANCE.md "The lock-free spine").
//
// The router dispatches a punctuation either to one shard (constant
// join-key pattern — only the key's owning shard can hold covered state)
// or to every shard (broadcast). Each receiving shard releases it after
// the results it covers. The board counts those releases and reports
// completion exactly when the last expected shard has released, so the
// pipeline emits each punctuation exactly once: never early (a missing
// shard could still hold covered results), never twice, and tolerant of
// the same punctuation string recurring in the stream (counting, not
// erase-at-full-round).
//
// Threading: the board is deliberately plain sequential state, owned by
// the single merger thread (router/caller). The concurrency around it —
// shards pushing releases through their output rings, the merger draining
// them — lives in SpscRing; tests/model_check_test.cc model-checks the
// combined rings+board protocol (exactly-once under every interleaving,
// both routed and broadcast) by driving this same class from model
// threads over SpscRing<_, mc::ModelPolicy> edges.

#ifndef PJOIN_OPS_RELEASE_BOARD_H_
#define PJOIN_OPS_RELEASE_BOARD_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <string>

#include "punct/punctuation.h"

namespace pjoin {

class PunctReleaseBoard {
 public:
  PunctReleaseBoard() = default;

  /// `left_key_pos` / `right_key_pos`: positions of the two join keys in
  /// the join's *output* schema (the join transfers the key pattern to
  /// both, so a constant at either identifies a key-routed punctuation).
  /// `num_shards`: broadcast fan-out.
  void Configure(size_t left_key_pos, size_t right_key_pos, int num_shards);

  /// How many shard releases complete one emission of `p`: 1 for a
  /// constant-key punctuation (routed to the key's owning shard alone),
  /// num_shards for a broadcast pattern. This static inference is the
  /// fallback when the router recorded no NoteDispatch for `p`.
  int ExpectedShards(const Punctuation& p) const;

  /// Records, at dispatch time, how many shards the router actually sent
  /// the round of `p` to. Under runtime repartitioning the fan-out of a
  /// constant-key punctuation is dynamic — 1 before a key is replicated,
  /// num_shards after — so the pattern inference can no longer reconstruct
  /// it; the router (the same thread as the merger) records the truth
  /// instead. Rounds of the same punctuation string consume their recorded
  /// fan-outs in dispatch order.
  void NoteDispatch(const Punctuation& p, int expected_shards);

  /// Records one shard's release of `p`. Returns true exactly when this
  /// release completes a full round — the caller emits `p` then and only
  /// then.
  bool Release(const Punctuation& p);

  /// Punctuations currently mid-round (released by some but not yet all
  /// expected shards). 0 after a clean run. O(1) — maintained on Release,
  /// so the merger can publish it per batch (pjoin_punct_pending_rounds).
  int64_t pending_rounds() const { return pending_; }

 private:
  struct Entry {
    int count = 0;
    int expected = 0;  // resolved when a round opens; 0 between rounds
    /// Fan-outs recorded by NoteDispatch, consumed FIFO as rounds open.
    /// Empty when the router never recorded one (single-shard callers,
    /// model-check harness) — ExpectedShards infers instead.
    std::deque<int> dispatched;
  };

  size_t key_pos_[2] = {0, 0};
  int num_shards_ = 1;
  std::map<std::string, Entry> counts_;
  /// Entries with count != 0 (mid-round), kept in lockstep by Release.
  int64_t pending_ = 0;
};

}  // namespace pjoin

#endif  // PJOIN_OPS_RELEASE_BOARD_H_
