// ThreadedJoinPipeline: multi-threaded execution — one producer thread per
// input stream delivering elements into StreamBuffers (playing the role of
// the network), and the join running on the consumer thread, which merges
// the buffers in arrival order and reports stalls when both inputs are
// momentarily dry (triggering XJoin's reactive stage / PJoin's disk join,
// exactly the scheduling situation of paper §3.2).

#ifndef PJOIN_OPS_THREADED_PIPELINE_H_
#define PJOIN_OPS_THREADED_PIPELINE_H_

#include <atomic>
#include <vector>

#include "join/join_base.h"
#include "stream/stream_buffer.h"

namespace pjoin {

struct ThreadedPipelineOptions {
  /// Producers deliver this many elements per burst before yielding, which
  /// creates realistic interleavings and occasional consumer stalls.
  int64_t producer_burst = 64;
  /// Consumer reports at most one stall to the join per this many dry
  /// polls.
  int64_t stall_report_interval = 256;
  /// Per-input StreamBuffer capacity; producers block (backpressure) while
  /// their buffer holds this many elements. 0 = unbounded (no
  /// backpressure), the historical behavior.
  size_t buffer_capacity = 0;
};

class ThreadedJoinPipeline {
 public:
  explicit ThreadedJoinPipeline(JoinOperator* join,
                                ThreadedPipelineOptions options = {});

  /// Runs producers on background threads and the join on the calling
  /// thread until both inputs are exhausted.
  Status Run(const std::vector<StreamElement>& left,
             const std::vector<StreamElement>& right);

  int64_t stalls_reported() const { return stalls_reported_; }
  int64_t elements_processed() const {
    return elements_processed_.load();
  }
  /// Times a producer blocked on a full buffer (bounded buffers only).
  int64_t backpressure_waits() const { return backpressure_waits_; }

 private:
  JoinOperator* join_;
  ThreadedPipelineOptions options_;
  int64_t stalls_reported_ = 0;
  /// Atomic so the live /statusz section can read the consumer's progress.
  std::atomic<int64_t> elements_processed_{0};
  int64_t backpressure_waits_ = 0;
};

}  // namespace pjoin

#endif  // PJOIN_OPS_THREADED_PIPELINE_H_
