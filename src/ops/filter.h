// Filter: tuple selection. Punctuations pass through unchanged — whatever
// the source promised not to send, the filtered stream will not send either.

#ifndef PJOIN_OPS_FILTER_H_
#define PJOIN_OPS_FILTER_H_

#include <functional>

#include "ops/operator.h"

namespace pjoin {

class Filter : public Operator {
 public:
  using Predicate = std::function<bool(const Tuple&)>;

  explicit Filter(Predicate predicate);

  Status OnTuple(const Tuple& tuple, TimeMicros arrival) override;

  int64_t passed() const { return passed_; }
  int64_t dropped() const { return dropped_; }

 private:
  Predicate predicate_;
  int64_t passed_ = 0;
  int64_t dropped_ = 0;
};

}  // namespace pjoin

#endif  // PJOIN_OPS_FILTER_H_
