// JoinPipeline: drives a binary join from two element streams in global
// arrival order and routes the join output into a chain of downstream
// operators — the execution harness used by examples, tests and benches.

#ifndef PJOIN_OPS_PIPELINE_H_
#define PJOIN_OPS_PIPELINE_H_

#include <functional>
#include <vector>

#include "gen/stream_generator.h"
#include "join/join_base.h"
#include "ops/operator.h"

namespace pjoin {

struct PipelineOptions {
  /// When the gap between consecutive global arrivals is at least this
  /// large, the driver reports a stall to the join (which may schedule its
  /// reactive/disk work, as XJoin and PJoin do). 0 disables stall detection.
  TimeMicros stall_gap_micros = 0;
  /// Invoked after each element is processed; receives the element count so
  /// far. Benches use it to sample throughput.
  std::function<void(int64_t)> progress = nullptr;
};

class JoinPipeline {
 public:
  /// The pipeline does not take ownership of `join` or `head`. `head` (may
  /// be null) receives the join output: result tuples, propagated
  /// punctuations, and one end-of-stream after the join finishes.
  JoinPipeline(JoinOperator* join, Operator* head, PipelineOptions options = {});

  /// Feeds both element vectors to completion in arrival order (ties broken
  /// towards the left stream).
  Status Run(const std::vector<StreamElement>& left,
             const std::vector<StreamElement>& right);

  int64_t elements_processed() const { return elements_processed_; }
  int64_t stalls_detected() const { return stalls_detected_; }

 private:
  JoinOperator* join_;
  Operator* head_;
  PipelineOptions options_;
  int64_t elements_processed_ = 0;
  int64_t stalls_detected_ = 0;
};

}  // namespace pjoin

#endif  // PJOIN_OPS_PIPELINE_H_
