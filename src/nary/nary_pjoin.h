// NaryPJoin: the n-ary extension sketched in paper §6.
//
// n input streams equi-joined on one key attribute each; a result is one
// tuple from every stream, all with equal keys, emitted when its last
// component arrives. Per §6:
//  - a punctuation from stream i lets the purge component purge the states
//    of the other streams — a tuple is purgeable once its key is covered by
//    the punctuation sets of *all* other streams (it can then never gain a
//    new partner);
//  - an arriving tuple whose key is covered by all other streams'
//    punctuation sets is dropped on the fly after the memory join;
//  - a punctuation from stream i propagates once no stream-i tuple matching
//    it remains in state (every future result needs a stream-i component).
//
// The state is memory-only; the disk machinery of the binary PJoin is
// orthogonal to the n-ary generalization and omitted here.

#ifndef PJOIN_NARY_NARY_PJOIN_H_
#define PJOIN_NARY_NARY_PJOIN_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/metrics.h"
#include "punct/punctuation_set.h"
#include "stream/element.h"
#include "tuple/schema.h"

namespace pjoin {

struct NaryJoinOptions {
  /// Join-attribute index per stream; must have one entry per input schema.
  std::vector<size_t> key_indexes;
  int num_partitions = 16;
  bool drop_on_the_fly = true;
  /// Purge other states eagerly on every punctuation arrival.
  bool eager_purge = true;
};

class NaryPJoin {
 public:
  using ResultCallback = std::function<void(const Tuple&)>;
  using PunctCallback = std::function<void(const Punctuation&)>;

  NaryPJoin(std::vector<SchemaPtr> schemas, NaryJoinOptions options);
  PJOIN_DISALLOW_COPY_AND_MOVE(NaryPJoin);

  int num_streams() const { return static_cast<int>(sides_.size()); }
  const SchemaPtr& output_schema() const { return output_schema_; }
  void set_result_callback(ResultCallback cb) { on_result_ = std::move(cb); }
  void set_punct_callback(PunctCallback cb) { on_punct_ = std::move(cb); }

  Status OnElement(int stream, const StreamElement& element);

  // ---- Introspection ----
  int64_t results_emitted() const { return results_emitted_; }
  int64_t puncts_emitted() const { return puncts_emitted_; }
  int64_t state_tuples() const;
  int64_t state_tuples(int stream) const;
  const CounterSet& counters() const { return counters_; }

 private:
  struct SideState {
    SchemaPtr schema;
    size_t key_index;
    std::vector<std::vector<Tuple>> buckets;  // per partition
    std::unique_ptr<PunctuationSet> puncts;
    int64_t tuples = 0;
  };

  Status OnTuple(int stream, const Tuple& tuple, TimeMicros arrival);
  Status OnPunctuation(int stream, const Punctuation& punct,
                       TimeMicros arrival);
  Status Finish();

  /// Emits every result combining `tuple` (stream `stream`) with one
  /// key-matching tuple from each other stream.
  void EmitCombinations(int stream, const Tuple& tuple, const Value& key);

  /// True when `key` is covered by the punctuation sets of every stream
  /// except `stream`.
  bool CoveredByAllOthers(int stream, const Value& key) const;

  /// Purges every state whose tuples became purgeable.
  void PurgeAll();

  Status PropagateStream(int stream);

  int PartitionOf(const Value& key) const;

  NaryJoinOptions options_;
  SchemaPtr output_schema_;
  std::vector<SideState> sides_;
  ResultCallback on_result_;
  PunctCallback on_punct_;
  CounterSet counters_;
  int64_t results_emitted_ = 0;
  int64_t puncts_emitted_ = 0;
  std::vector<bool> eos_;
  bool finished_ = false;
};

}  // namespace pjoin

#endif  // PJOIN_NARY_NARY_PJOIN_H_
