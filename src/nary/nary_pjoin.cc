#include "nary/nary_pjoin.h"

#include <algorithm>

#include "common/macros.h"
#include "join/punct_index.h"

namespace pjoin {

NaryPJoin::NaryPJoin(std::vector<SchemaPtr> schemas, NaryJoinOptions options)
    : options_(std::move(options)) {
  PJOIN_DCHECK(schemas.size() >= 2);
  PJOIN_DCHECK(options_.key_indexes.size() == schemas.size());
  PJOIN_DCHECK(options_.num_partitions > 0);

  std::vector<Field> out_fields;
  sides_.reserve(schemas.size());
  for (size_t i = 0; i < schemas.size(); ++i) {
    SideState side;
    side.schema = schemas[i];
    side.key_index = options_.key_indexes[i];
    PJOIN_DCHECK(side.key_index < side.schema->num_fields());
    side.buckets.resize(static_cast<size_t>(options_.num_partitions));
    side.puncts = std::make_unique<PunctuationSet>(side.key_index);
    for (const Field& f : side.schema->fields()) {
      std::string name = f.name;
      // Disambiguate colliding names with the stream index.
      for (const Field& existing : out_fields) {
        if (existing.name == name) {
          name += "_s" + std::to_string(i);
          break;
        }
      }
      out_fields.push_back(Field{std::move(name), f.type});
    }
    sides_.push_back(std::move(side));
  }
  output_schema_ = Schema::Make(std::move(out_fields));
  eos_.assign(sides_.size(), false);
}

int NaryPJoin::PartitionOf(const Value& key) const {
  return static_cast<int>(key.Hash() %
                          static_cast<uint64_t>(options_.num_partitions));
}

int64_t NaryPJoin::state_tuples() const {
  int64_t total = 0;
  for (const SideState& s : sides_) total += s.tuples;
  return total;
}

int64_t NaryPJoin::state_tuples(int stream) const {
  PJOIN_DCHECK(stream >= 0 && stream < num_streams());
  return sides_[static_cast<size_t>(stream)].tuples;
}

Status NaryPJoin::OnElement(int stream, const StreamElement& element) {
  PJOIN_DCHECK(stream >= 0 && stream < num_streams());
  PJOIN_DCHECK(!finished_);
  switch (element.kind()) {
    case ElementKind::kTuple:
      return OnTuple(stream, element.tuple(), element.arrival());
    case ElementKind::kPunctuation:
      return OnPunctuation(stream, element.punctuation(), element.arrival());
    case ElementKind::kEndOfStream: {
      eos_[static_cast<size_t>(stream)] = true;
      for (bool e : eos_) {
        if (!e) return Status::OK();
      }
      finished_ = true;
      return Finish();
    }
  }
  return Status::Internal("unknown element kind");
}

void NaryPJoin::EmitCombinations(int stream, const Tuple& tuple,
                                 const Value& key) {
  const int p = PartitionOf(key);
  // Gather the key-matching tuples of every other stream; if any stream has
  // none, there is no result.
  std::vector<std::vector<const Tuple*>> partners(sides_.size());
  for (size_t s = 0; s < sides_.size(); ++s) {
    if (static_cast<int>(s) == stream) continue;
    const SideState& side = sides_[s];
    for (const Tuple& t : side.buckets[static_cast<size_t>(p)]) {
      counters_.Add("probe_comparisons");
      if (t.field(side.key_index) == key) partners[s].push_back(&t);
    }
    if (partners[s].empty()) return;
  }

  // Enumerate the cross product, assembling results in stream order.
  std::vector<const Tuple*> current(sides_.size(), nullptr);
  current[static_cast<size_t>(stream)] = &tuple;
  std::function<void(size_t)> recurse = [&](size_t s) {
    if (s == sides_.size()) {
      std::vector<Value> values;
      for (size_t i = 0; i < sides_.size(); ++i) {
        const auto& vals = current[i]->values();
        values.insert(values.end(), vals.begin(), vals.end());
      }
      ++results_emitted_;
      if (on_result_) on_result_(Tuple(output_schema_, std::move(values)));
      return;
    }
    if (static_cast<int>(s) == stream) {
      recurse(s + 1);
      return;
    }
    for (const Tuple* t : partners[s]) {
      current[s] = t;
      recurse(s + 1);
    }
  };
  recurse(0);
}

bool NaryPJoin::CoveredByAllOthers(int stream, const Value& key) const {
  for (size_t s = 0; s < sides_.size(); ++s) {
    if (static_cast<int>(s) == stream) continue;
    if (!sides_[s].puncts->SetMatchKey(key)) return false;
  }
  return true;
}

Status NaryPJoin::OnTuple(int stream, const Tuple& tuple,
                          TimeMicros arrival) {
  (void)arrival;
  SideState& own = sides_[static_cast<size_t>(stream)];
  const Value& key = tuple.field(own.key_index);
  EmitCombinations(stream, tuple, key);
  if (options_.drop_on_the_fly && CoveredByAllOthers(stream, key)) {
    counters_.Add("otf_drops");
    return Status::OK();
  }
  own.buckets[static_cast<size_t>(PartitionOf(key))].push_back(tuple);
  ++own.tuples;
  return Status::OK();
}

void NaryPJoin::PurgeAll() {
  for (size_t s = 0; s < sides_.size(); ++s) {
    SideState& side = sides_[s];
    for (auto& bucket : side.buckets) {
      auto keep_end = std::stable_partition(
          bucket.begin(), bucket.end(), [&](const Tuple& t) {
            counters_.Add("purge_scanned");
            return !CoveredByAllOthers(static_cast<int>(s),
                                       t.field(side.key_index));
          });
      const int64_t purged =
          static_cast<int64_t>(std::distance(keep_end, bucket.end()));
      bucket.erase(keep_end, bucket.end());
      side.tuples -= purged;
      counters_.Add("purged_tuples", purged);
    }
  }
}

Status NaryPJoin::OnPunctuation(int stream, const Punctuation& punct,
                                TimeMicros arrival) {
  SideState& own = sides_[static_cast<size_t>(stream)];
  PJOIN_RETURN_NOT_OK(own.puncts->Add(punct, arrival).status());
  // This operator scans rather than consumes the set's work queues; drain
  // them so they do not accumulate.
  own.puncts->TakeUnappliedForPurge();
  own.puncts->TakeUnindexed();
  if (options_.eager_purge) PurgeAll();
  return PropagateStream(stream);
}

Status NaryPJoin::PropagateStream(int stream) {
  SideState& own = sides_[static_cast<size_t>(stream)];
  own.puncts->ForEach([](PunctEntry& e) {
    e.match_count = 0;
    e.indexed = true;
  });
  for (const auto& bucket : own.buckets) {
    for (const Tuple& t : bucket) {
      PunctEntry* match = own.puncts->FindFirstMatch(t);
      if (match != nullptr) ++match->match_count;
    }
  }
  std::vector<Punctuation> released = Propagator::Propagate(own.puncts.get());
  for (const Punctuation& p : released) {
    // Lift the punctuation onto the output schema: the key pattern holds on
    // every stream's key column (equi-join), everything else is wildcard.
    std::vector<Pattern> patterns(output_schema_->num_fields(),
                                  Pattern::Wildcard());
    size_t offset = 0;
    const Pattern& key_pattern = p.pattern(own.key_index);
    for (size_t s = 0; s < sides_.size(); ++s) {
      if (static_cast<int>(s) == stream) {
        for (size_t i = 0; i < sides_[s].schema->num_fields(); ++i) {
          patterns[offset + i] = p.pattern(i);
        }
      } else {
        patterns[offset + sides_[s].key_index] = key_pattern;
      }
      offset += sides_[s].schema->num_fields();
    }
    ++puncts_emitted_;
    counters_.Add("puncts_propagated");
    if (on_punct_) on_punct_(Punctuation(std::move(patterns)));
  }
  return Status::OK();
}

Status NaryPJoin::Finish() {
  for (int s = 0; s < num_streams(); ++s) {
    PJOIN_RETURN_NOT_OK(PropagateStream(s));
  }
  return Status::OK();
}

}  // namespace pjoin
