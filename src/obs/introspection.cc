#include "obs/introspection.h"

#include <algorithm>
#include <map>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/build_info.h"
#include "obs/health.h"
#include "obs/metrics_registry.h"
#include "obs/promtext.h"
#include "obs/trace.h"

namespace pjoin {
namespace obs {

namespace {

struct SectionRegistry {
  Mutex mu;
  int64_t next_id GUARDED_BY(mu) = 1;
  // std::map: render in registration (id) order.
  std::map<int64_t, std::pair<std::string, StatusSectionFn>> sections
      GUARDED_BY(mu);
};

SectionRegistry& Sections() {
  static SectionRegistry* registry = new SectionRegistry();  // leaked
  return *registry;
}

std::string BuildFlags() {
  std::string out;
  out.append("compiler: ");
  out.append(__VERSION__);
  out.push_back('\n');
#ifdef NDEBUG
  out.append("assertions: off (NDEBUG)\n");
#else
  out.append("assertions: on\n");
#endif
#if PJOIN_TRACING
  out.append("tracing: compiled in\n");
#else
  out.append("tracing: compiled out\n");
#endif
#if defined(__SANITIZE_ADDRESS__)
  out.append("sanitizer: address\n");
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
  out.append("sanitizer: address\n");
#endif
#endif
#if defined(__SANITIZE_THREAD__)
  out.append("sanitizer: thread\n");
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
  out.append("sanitizer: thread\n");
#endif
#endif
  return out;
}

HttpResponse TextResponse(std::string body) {
  HttpResponse resp;
  resp.body = std::move(body);
  return resp;
}

}  // namespace

int64_t RegisterStatusSection(std::string title, StatusSectionFn fn) {
  SectionRegistry& reg = Sections();
  MutexLock lock(reg.mu);
  const int64_t id = reg.next_id++;
  reg.sections.emplace(id,
                       std::make_pair(std::move(title), std::move(fn)));
  return id;
}

void UnregisterStatusSection(int64_t id) {
  SectionRegistry& reg = Sections();
  MutexLock lock(reg.mu);
  reg.sections.erase(id);
}

std::string RenderStatusSections() {
  // Copy the renderers out, then call them unlocked: a section body may
  // itself take locks (pipeline state) or register metrics.
  std::vector<std::pair<std::string, StatusSectionFn>> sections;
  {
    SectionRegistry& reg = Sections();
    MutexLock lock(reg.mu);
    sections.reserve(reg.sections.size());
    for (const auto& [id, entry] : reg.sections) {
      sections.push_back(entry);
    }
  }
  std::string out;
  for (const auto& [title, fn] : sections) {
    out.append("== ");
    out.append(title);
    out.append(" ==\n");
    out.append(fn());
    if (!out.empty() && out.back() != '\n') out.push_back('\n');
    out.push_back('\n');
  }
  return out;
}

std::string RenderStatusz(TimeMicros uptime_us) {
  std::string out;
  out.append("pjoin introspection\n");
  out.append("uptime_seconds: ");
  out.append(std::to_string(uptime_us / 1000000));
  out.push_back('.');
  out.append(std::to_string((uptime_us % 1000000) / 100000));
  out.append("\n\n== build ==\n");
  out.append(BuildFlags());
  out.push_back('\n');
  out.append(RenderStatusSections());

  out.append("== gauges ==\n");
  for (const MetricSample& s : MetricsRegistry::Global().Snapshot()) {
    if (s.kind != MetricKind::kGauge) continue;
    out.append(s.name);
    if (!s.labels.empty()) {
      out.push_back('{');
      out.append(s.labels);
      out.push_back('}');
    }
    out.append(" = ");
    out.append(std::to_string(s.value));
    out.push_back('\n');
  }
  return out;
}

namespace {

std::string RenderTracez() {
  // Non-destructive Snapshot: concurrent scrapers all see the same resident
  // events, and none of them steals from the Chrome-trace export (which is
  // the one consuming Drain() caller). Show the newest events per category
  // so a scrape answers "what is each subsystem doing right now".
  constexpr size_t kPerCategory = 32;
  std::vector<TraceEvent> events = Tracer::Global().Snapshot();
  std::map<std::string, std::vector<const TraceEvent*>> by_category;
  for (const TraceEvent& e : events) {
    by_category[e.category].push_back(&e);
  }
  std::string out;
  out.append("tracer: ");
  out.append(Tracer::Global().enabled() ? "recording" : "stopped");
  out.append("\ndropped_events: ");
  out.append(std::to_string(Tracer::Global().dropped_events()));
  out.append("\nlast_drain: ");
  const TimeMicros last_drain_us = Tracer::Global().last_drain_us();
  if (last_drain_us == 0) {
    out.append("never");
  } else {
    out.append(std::to_string(last_drain_us));
    out.append("us (");
    out.append(std::to_string(Tracer::Global().last_drain_count()));
    out.append(" events)");
  }
  out.append("\n\n");
  for (auto& [category, evs] : by_category) {
    out.append("== ");
    out.append(category);
    out.append(" (");
    out.append(std::to_string(evs.size()));
    out.append(" resident) ==\n");
    const size_t begin = evs.size() > kPerCategory ? evs.size() - kPerCategory
                                                   : 0;
    for (size_t i = begin; i < evs.size(); ++i) {
      const TraceEvent& e = *evs[i];
      out.append(std::to_string(e.ts));
      out.append("us tid=");
      out.append(std::to_string(e.tid));
      out.push_back(' ');
      out.append(e.name);
      switch (e.phase) {
        case TracePhase::kComplete:
          out.append(" dur=");
          out.append(std::to_string(e.value));
          out.append("us");
          break;
        case TracePhase::kCounter:
          out.append(" value=");
          out.append(std::to_string(e.value));
          break;
        case TracePhase::kFlowStart:
        case TracePhase::kFlowStep:
        case TracePhase::kFlowEnd:
          out.append(" flow=");
          out.append(std::to_string(e.flow_id));
          break;
        case TracePhase::kInstant:
          break;
      }
      out.push_back('\n');
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace

IntrospectionServer::IntrospectionServer(HttpServerOptions options)
    : server_(std::move(options)) {
  RegisterBuildInfo();
  server_.AddHandler("/metrics", [](const HttpRequest&) {
    HttpResponse resp;
    resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
    resp.body = GlobalPrometheusText();
    return resp;
  });
  server_.AddHandler("/healthz", [](const HttpRequest&) {
    // Evaluate fresh (not the watchdog's cached verdict) so a probe sees
    // recovery the moment the frontier catches up.
    const HealthReport report = HealthMonitor::Global().EvaluateNow();
    HttpResponse resp;
    resp.status = report.status == HealthStatus::kStalled ? 503 : 200;
    resp.content_type = "application/json";
    resp.body = report.ToJson();
    resp.body.push_back('\n');
    return resp;
  });
  server_.AddHandler("/debug/stalls", [](const HttpRequest&) {
    return TextResponse(HealthMonitor::Global().RenderDebugStalls());
  });
  server_.AddHandler("/statusz", [this](const HttpRequest&) {
    return TextResponse(RenderStatusz(TraceNowMicros() - start_us_));
  });
  server_.AddHandler("/tracez", [](const HttpRequest&) {
    return TextResponse(RenderTracez());
  });
  server_.AddHandler("/quitquitquit", [this](const HttpRequest&) {
    quit_.store(true);
    return TextResponse("quitting\n");
  });
  server_.AddHandler("/", [](const HttpRequest&) {
    return TextResponse(
        "pjoin introspection endpoints:\n"
        "  /metrics       Prometheus text exposition\n"
        "  /healthz       stall classification (200 ok/degraded, 503 "
        "stalled) + JSON detail\n"
        "  /debug/stalls  current verdict, root-cause chains, stall "
        "history\n"
        "  /statusz       human-readable pipeline snapshot\n"
        "  /tracez        recent trace events per category\n"
        "  /quitquitquit  request the host process wind down\n");
  });
}

Status IntrospectionServer::Start(int port) {
  start_us_ = TraceNowMicros();
  return server_.Start(port);
}

void IntrospectionServer::Stop() { server_.Stop(); }

}  // namespace obs
}  // namespace pjoin
