// PunctuationFrontierTracker: per (stream side × punctuation scheme ×
// shard) progress accounting for punctuated joins (docs/OBSERVABILITY.md,
// "Diagnosing a stalled join").
//
// Latency histograms can say *that* punctuations are slow; the frontier
// tracker says *where* one is stuck. The router notes every punctuation it
// dispatches (ingress), the shard's join notes every punctuation it
// finishes processing, and the merger notes every released emission — so a
// cell whose processed count trails its ingress count identifies the exact
// shard whose frontier stopped advancing, and for how long. PJoin
// additionally reports the *expected-but-unfired purge set*: punctuations
// that arrived while coverable state was resident but whose purge has not
// run yet (lazy purge makes some pending work normal; a pile-up during a
// stall is the smoking gun).
//
// Threading: ingress is noted by the router thread, processing by shard
// worker threads, releases by the merger. Cells are registered under a
// mutex (punctuations are rare — hundreds per second, not millions) and
// their fields are plain atomics, so the health watchdog and /healthz
// handlers snapshot them without stopping the pipeline.

#ifndef PJOIN_OBS_PROGRESS_H_
#define PJOIN_OBS_PROGRESS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#include "common/clock.h"
#include "common/macros.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace pjoin {
namespace obs {

/// One cell's consistent-enough copy for the watchdog / debug endpoints.
struct FrontierCell {
  int side = 0;          // 0 = left, 1 = right
  std::string scheme;    // punctuation scheme: "constant", "range", ...
  int shard = 0;
  int64_t ingress_count = 0;    // punctuations the router dispatched here
  int64_t processed_count = 0;  // punctuations the shard's join finished
  TimeMicros last_ingress_us = 0;
  TimeMicros last_processed_us = 0;
  /// When the cell first fell behind (processed < ingress); 0 = caught up.
  TimeMicros behind_since_us = 0;
  /// The frontier: a short description of the latest punctuation seen.
  std::string last_punct;

  /// Time this shard's frontier has been behind the router's dispatches.
  /// 0 when caught up.
  TimeMicros LagMicros(TimeMicros now_us) const {
    if (processed_count >= ingress_count || behind_since_us == 0) return 0;
    return now_us > behind_since_us ? now_us - behind_since_us : 0;
  }
};

/// Per-shard purge expectation (PJoin): punctuations that arrived with
/// coverable resident state whose purge has not run yet.
struct PurgeExpectation {
  int shard = 0;
  int64_t pending_puncts = 0;
  /// Resident opposite-state tuples summed at expectation time (an upper
  /// bound on what the purges will release).
  int64_t pending_tuples = 0;
  TimeMicros oldest_since_us = 0;  // 0 = nothing pending
};

struct FrontierSnapshot {
  std::vector<FrontierCell> cells;
  std::vector<PurgeExpectation> purges;
  /// Output punctuations the merger emitted (all cells combined).
  int64_t released_total = 0;
  /// Punctuations delivered to joins that ignore them (XJoin).
  int64_t puncts_ignored = 0;
};

/// Process-global tracker (like Tracer / MetricsRegistry): pipelines deep
/// in the call stack contribute without threading a handle through every
/// layer, and the watchdog / introspection server read one well-known
/// place.
class FrontierTracker {
 public:
  static FrontierTracker& Global();
  PJOIN_DISALLOW_COPY_AND_MOVE(FrontierTracker);

  /// Router: a punctuation of (side, scheme) was dispatched to `shard`.
  /// `punct` is a short human-readable description kept as the frontier.
  void NoteIngress(int side, std::string_view scheme, int shard,
                   TimeMicros now_us, std::string_view punct);
  /// Shard worker: the join at `shard` finished processing one punctuation
  /// of (side, scheme).
  void NoteProcessed(int side, std::string_view scheme, int shard,
                     TimeMicros now_us);
  /// Merger: one output punctuation was released (emitted exactly once).
  void NoteReleased();
  /// A join that ignores punctuations (XJoin) consumed one anyway.
  void NotePunctIgnored();

  /// PJoin: a punctuation arrived while `resident_tuples` coverable tuples
  /// were memory-resident — a purge is now expected.
  void NotePurgeExpected(int shard, int64_t resident_tuples,
                         TimeMicros now_us);
  /// PJoin: a purge ran at `shard`, applying every pending punctuation.
  void NotePurgeFired(int shard);

  [[nodiscard]] FrontierSnapshot Snap() const EXCLUDES(mu_);

  /// Drops all cells. Test-only: callers must ensure no pipeline is
  /// running.
  void ResetForTest() EXCLUDES(mu_);

 private:
  struct Cell {
    std::atomic<int64_t> ingress{0};
    std::atomic<int64_t> processed{0};
    std::atomic<int64_t> last_ingress_us{0};
    std::atomic<int64_t> last_processed_us{0};
    std::atomic<int64_t> behind_since_us{0};
    Mutex punct_mu;
    std::string last_punct GUARDED_BY(punct_mu);
  };
  struct PurgeCell {
    std::atomic<int64_t> pending_puncts{0};
    std::atomic<int64_t> pending_tuples{0};
    std::atomic<int64_t> oldest_since_us{0};
  };

  FrontierTracker() = default;

  Cell* GetCell(int side, std::string_view scheme, int shard) EXCLUDES(mu_);
  PurgeCell* GetPurgeCell(int shard) EXCLUDES(mu_);

  mutable Mutex mu_;
  // std::map: deterministic snapshot order (side, scheme, shard).
  std::map<std::tuple<int, std::string, int>, std::unique_ptr<Cell>> cells_
      GUARDED_BY(mu_);
  std::map<int, std::unique_ptr<PurgeCell>> purge_cells_ GUARDED_BY(mu_);
  std::atomic<int64_t> released_total_{0};
  std::atomic<int64_t> puncts_ignored_{0};
};

}  // namespace obs
}  // namespace pjoin

#endif  // PJOIN_OBS_PROGRESS_H_
