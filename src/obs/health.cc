#include "obs/health.h"

#include <cinttypes>
#include <cstdio>
#include <utility>

#include "common/mutex.h"
#include "exec/registry.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace pjoin {
namespace obs {

namespace {

std::string FormatSeconds(TimeMicros us) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", static_cast<double>(us) / 1e6);
  return buf;
}

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

const char* SideName(int side) { return side == 0 ? "left" : "right"; }

std::string FrontierLabels(const FrontierCell& cell) {
  std::string labels = "side=";
  labels.append(SideName(cell.side));
  labels.append(",scheme=");
  labels.append(cell.scheme);
  labels.append(",shard=");
  labels.append(std::to_string(cell.shard));
  return labels;
}

/// One root-cause chain for a stalled frontier cell, built from signals the
/// pipeline already exports: "shard 2 frontier (left/constant) stalled 4.2s
/// behind router; ring edge=shard_2 occupancy 1; ring edge=out_2 occupancy
/// 64; 3 punct release rounds pending".
std::string StallCauseChain(const FrontierCell& cell, TimeMicros lag_us) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  std::string chain = "shard " + std::to_string(cell.shard) + " frontier (";
  chain.append(SideName(cell.side));
  chain.push_back('/');
  chain.append(cell.scheme);
  chain.append(") stalled ");
  chain.append(FormatSeconds(lag_us));
  chain.append("s behind router");
  if (!cell.last_punct.empty()) {
    chain.append(" (last punct: ");
    chain.append(cell.last_punct);
    chain.push_back(')');
  }
  const std::string shard_str = std::to_string(cell.shard);
  // GetGauge registers a zero cell when the pipeline has not — harmless,
  // and for a genuinely stalled shard the edges exist already.
  const int64_t in_occ =
      registry.GetGauge("pjoin_ring_occupancy", "edge=shard_" + shard_str)
          .Get();
  const int64_t out_occ =
      registry.GetGauge("pjoin_ring_occupancy", "edge=out_" + shard_str)
          .Get();
  chain.append("; ring edge=shard_");
  chain.append(shard_str);
  chain.append(" occupancy ");
  chain.append(std::to_string(in_occ));
  chain.append("; ring edge=out_");
  chain.append(shard_str);
  chain.append(" occupancy ");
  chain.append(std::to_string(out_occ));
  const int64_t pending =
      registry.GetGauge("pjoin_punct_pending_rounds", "pipeline=parallel")
          .Get();
  if (pending > 0) {
    chain.append("; ");
    chain.append(std::to_string(pending));
    chain.append(" punct release rounds pending at merger");
  }
  return chain;
}

}  // namespace

const char* HealthStatusName(HealthStatus status) {
  switch (status) {
    case HealthStatus::kOk:
      return "ok";
    case HealthStatus::kDegraded:
      return "degraded";
    case HealthStatus::kStalled:
      return "stalled";
  }
  return "?";
}

std::string HealthReport::ToJson() const {
  std::string out = "{\"status\": ";
  AppendJsonString(&out, HealthStatusName(status));
  out.append(", \"now_us\": ");
  out.append(std::to_string(now_us));
  out.append(", \"stalled_frontiers\": ");
  out.append(std::to_string(stalled_frontiers));
  out.append(", \"degraded_signals\": ");
  out.append(std::to_string(degraded_signals));
  out.append(", \"unfired_purges\": ");
  out.append(std::to_string(unfired_purges));
  out.append(", \"causes\": [");
  for (size_t i = 0; i < causes.size(); ++i) {
    if (i > 0) out.append(", ");
    AppendJsonString(&out, causes[i]);
  }
  out.append("], \"frontiers\": [");
  for (size_t i = 0; i < frontiers.size(); ++i) {
    const FrontierCell& cell = frontiers[i];
    if (i > 0) out.append(", ");
    out.append("{\"side\": ");
    AppendJsonString(&out, SideName(cell.side));
    out.append(", \"scheme\": ");
    AppendJsonString(&out, cell.scheme);
    out.append(", \"shard\": ");
    out.append(std::to_string(cell.shard));
    out.append(", \"ingress\": ");
    out.append(std::to_string(cell.ingress_count));
    out.append(", \"processed\": ");
    out.append(std::to_string(cell.processed_count));
    out.append(", \"lag_us\": ");
    out.append(std::to_string(cell.LagMicros(now_us)));
    out.append(", \"last_punct\": ");
    AppendJsonString(&out, cell.last_punct);
    out.append("}");
  }
  out.append("]}");
  return out;
}

HealthMonitor& HealthMonitor::Global() {
  static HealthMonitor* monitor = new HealthMonitor();  // leaked
  return *monitor;
}

HealthReport HealthMonitor::EvaluateNow(TimeMicros now_us) const {
  HealthOptions options;
  {
    MutexLock lock(mu_);
    options = options_;
  }
  if (now_us == 0) now_us = TraceNowMicros();

  HealthReport report;
  report.now_us = now_us;
  FrontierSnapshot snap = FrontierTracker::Global().Snap();
  for (const FrontierCell& cell : snap.cells) {
    const TimeMicros lag = cell.LagMicros(now_us);
    if (lag >= options.stall_threshold_us) {
      ++report.stalled_frontiers;
      report.causes.push_back(StallCauseChain(cell, lag));
    } else if (lag >= options.degraded_threshold_us) {
      ++report.degraded_signals;
      report.causes.push_back(
          "shard " + std::to_string(cell.shard) + " frontier (" +
          SideName(cell.side) + "/" + cell.scheme + ") lagging " +
          FormatSeconds(lag) + "s behind router");
    }
  }
  for (const PurgeExpectation& purge : snap.purges) {
    report.unfired_purges += purge.pending_puncts;
  }
  if (MetricsRegistry::Global().GetGauge("pjoin_spill_degraded").Get() > 0) {
    ++report.degraded_signals;
    report.causes.push_back(
        "spill storage degraded (fallback store active)");
  }
  report.status = report.stalled_frontiers > 0 ? HealthStatus::kStalled
                  : report.degraded_signals > 0 ? HealthStatus::kDegraded
                                                : HealthStatus::kOk;
  report.frontiers = std::move(snap.cells);
  return report;
}

void HealthMonitor::Configure(const HealthOptions& options) {
  MutexLock lock(mu_);
  options_ = options;
}

void HealthMonitor::Start(HealthOptions options) {
  MutexLock lock(mu_);
  options_ = options;
  if (running_) return;
  stop_requested_ = false;
  running_ = true;
  thread_ = std::thread([this, options] { WatchdogLoop(options); });
}

void HealthMonitor::Stop() {
  std::thread to_join;
  {
    MutexLock lock(mu_);
    if (!running_) return;
    stop_requested_ = true;
    running_ = false;
    cv_.NotifyAll();
    to_join = std::move(thread_);
  }
  if (to_join.joinable()) to_join.join();
}

bool HealthMonitor::running() const {
  MutexLock lock(mu_);
  return running_;
}

void HealthMonitor::RecordPass(const HealthOptions& options) {
  const HealthReport report = EvaluateNow();
  MetricsRegistry& registry = MetricsRegistry::Global();
  for (const FrontierCell& cell : report.frontiers) {
    registry
        .GetHistogram("pjoin_frontier_lag_seconds", FrontierLabels(cell),
                      /*unit_scale=*/1e-6)
        .Observe(cell.LagMicros(report.now_us));
  }
  registry.GetGauge("pjoin_frontier_unfired_purges")
      .Set(report.unfired_purges);

  bool newly_stalled = false;
  {
    MutexLock lock(history_mu_);
    newly_stalled = report.status == HealthStatus::kStalled &&
                    last_status_ != HealthStatus::kStalled;
    last_status_ = report.status;
    if (newly_stalled) {
      if (history_.size() >= kMaxStallHistory) {
        history_.erase(history_.begin());
      }
      history_.push_back(report);
    }
  }
  if (!newly_stalled) return;

  registry.GetCounter("pjoin_stalls_diagnosed_total").Add(1);
  TRACE_INSTANT("health", "stall_diagnosed");
  if (options.events != nullptr) {
    Event event;
    event.type = EventType::kStallDiagnosed;
    event.time = report.now_us;
    event.stream = -1;
    for (const std::string& cause : report.causes) {
      if (!event.detail.empty()) event.detail.append(" | ");
      event.detail.append(cause);
    }
    Status dispatched = options.events->Dispatch(event);
    if (!dispatched.ok()) {
      // Diagnostics are best-effort: a failing listener must not take the
      // watchdog down with it.
    }
  }
}

void HealthMonitor::WatchdogLoop(HealthOptions options) {
  TRACE_SET_THREAD_NAME("health-watchdog");
  for (;;) {
    {
      MutexLock lock(mu_);
      if (stop_requested_) return;
    }
    RecordPass(options);
    MutexLock lock(mu_);
    if (stop_requested_) return;
    cv_.WaitUntil(
        mu_, SteadyDeadlineAfter(std::chrono::microseconds(options.period_us)));
  }
}

std::vector<HealthReport> HealthMonitor::StallHistory() const {
  MutexLock lock(history_mu_);
  return history_;
}

std::string HealthMonitor::RenderDebugStalls() const {
  const HealthReport current = EvaluateNow();
  std::string out = "current: ";
  out.append(HealthStatusName(current.status));
  out.push_back('\n');
  for (const std::string& cause : current.causes) {
    out.append("  cause: ");
    out.append(cause);
    out.push_back('\n');
  }
  out.append("unfired_purges: ");
  out.append(std::to_string(current.unfired_purges));
  out.push_back('\n');
  const std::vector<HealthReport> history = StallHistory();
  out.append("\n== stall history (");
  out.append(std::to_string(history.size()));
  out.append(" diagnosed) ==\n");
  for (const HealthReport& report : history) {
    out.append("at ");
    out.append(std::to_string(report.now_us));
    out.append("us: ");
    out.append(std::to_string(report.stalled_frontiers));
    out.append(" stalled frontier(s)\n");
    for (const std::string& cause : report.causes) {
      out.append("  ");
      out.append(cause);
      out.push_back('\n');
    }
  }
  return out;
}

void HealthMonitor::ResetForTest() {
  Stop();
  {
    MutexLock lock(mu_);
    options_ = HealthOptions{};
    stop_requested_ = false;
  }
  MutexLock lock(history_mu_);
  history_.clear();
  last_status_ = HealthStatus::kOk;
}

}  // namespace obs
}  // namespace pjoin
