// Always-on, low-overhead operator tracing (docs/OBSERVABILITY.md).
//
// Each thread that emits events owns a fixed-size ring buffer; writers never
// take a lock and never block. The global Tracer keeps the buffers registered
// (they outlive their threads) and drains them without stopping writers: all
// event payload fields are relaxed atomics, and each slot carries the global
// write index it was filled for, so the drain detects and skips slots that a
// wrapping writer overwrote mid-read. Overflow therefore keeps the *newest*
// events and counts the dropped ones.
//
// Instrumentation goes through three macros:
//
//   TRACE_SPAN(cat, name)             RAII span: a Chrome "X" (complete)
//                                     event covering the enclosing scope.
//   TRACE_INSTANT(cat, name)          a point-in-time "i" event.
//   TRACE_COUNTER(cat, name, value)   a "C" counter sample (e.g. queue
//                                     depth over time).
//   TRACE_FLOW_START(cat, name, id)   cross-thread flow arrows ("s"/"t"/
//   TRACE_FLOW_STEP(cat, name, id)    "f" in the Chrome export): one flow
//   TRACE_FLOW_END(cat, name, id)     id links events across threads, so
//                                     Perfetto draws a sampled tuple's
//                                     route→probe→merge path as arrows.
//   TRACE_SET_THREAD_NAME(name)       labels the calling thread in trace
//                                     exports ("router", "shard-3").
//
// With the CMake option PJOIN_TRACING=OFF the macros compile to nothing (the
// acceptance bar: probe micro-benchmarks within 2% of an uninstrumented
// build). With tracing compiled in but not started (Tracer::Start), each
// macro costs one relaxed atomic load and a branch.
//
// Category and name must be string literals (the ring stores the pointers).
//
// This file and trace.cc are — together with src/common/clock.* — the only
// places in src/ allowed to call std::chrono::steady_clock::now() directly
// (tools/lint_check.py rule raw-clock): everything else reads time through
// the Clock interface so virtual-time benches stay honest.

#ifndef PJOIN_OBS_TRACE_H_
#define PJOIN_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/macros.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

#ifndef PJOIN_TRACING
#define PJOIN_TRACING 1
#endif

namespace pjoin {
namespace obs {

/// Chrome trace_event phases this tracer emits.
enum class TracePhase : int32_t {
  kComplete = 0,   // "X": a span with start + duration
  kInstant = 1,    // "i": a point event
  kCounter = 2,    // "C": a sampled counter value
  kFlowStart = 3,  // "s": a cross-thread flow begins here
  kFlowStep = 4,   // "t": the flow passes through here
  kFlowEnd = 5,    // "f": the flow terminates here
};

/// One drained event. `value` is the duration (kComplete, microseconds) or
/// the sampled value (kCounter); unused for kInstant. `flow_id` links the
/// kFlow* phases of one cross-thread flow (0 = not a flow event).
struct TraceEvent {
  const char* category = nullptr;
  const char* name = nullptr;
  TracePhase phase = TracePhase::kInstant;
  TimeMicros ts = 0;
  int64_t value = 0;
  uint64_t flow_id = 0;
  /// Dense tracer-assigned thread id (stable across the run).
  int32_t tid = 0;
};

/// The per-thread ring. Single writer (the owning thread); any thread may
/// drain concurrently. All payload fields are relaxed atomics and each slot
/// re-publishes its global write index last, so a drain can detect slots the
/// writer lapped and skip them instead of reporting torn events.
class TraceRing {
 public:
  explicit TraceRing(int32_t tid, size_t capacity);
  PJOIN_DISALLOW_COPY_AND_MOVE(TraceRing);

  void Emit(const char* category, const char* name, TracePhase phase,
            TimeMicros ts, int64_t value, uint64_t flow_id = 0);

  /// Appends every event still resident (oldest first) to `out`, without
  /// consuming anything. Returns the number of events that were overwritten
  /// before they could be read (lifetime total).
  int64_t Snapshot(std::vector<TraceEvent>* out) const;

  /// Appends every event not yet consumed by a previous Drain (oldest
  /// first) to `out` and advances the consumed watermark, so the next Drain
  /// starts where this one ended. Returns the number of events lost to ring
  /// overwrites before any reader saw them (lifetime total). Intended for
  /// the export path; concurrent Drain callers race the watermark and
  /// should coordinate.
  int64_t Drain(std::vector<TraceEvent>* out);

  int32_t tid() const { return tid_; }
  const std::string& thread_name() const { return thread_name_; }
  void set_thread_name(std::string name) { thread_name_ = std::move(name); }

 private:
  struct Slot {
    std::atomic<int64_t> seq{-1};  // global index of the resident event
    std::atomic<const char*> category{nullptr};
    std::atomic<const char*> name{nullptr};
    std::atomic<int32_t> phase{0};
    std::atomic<int64_t> ts{0};
    std::atomic<int64_t> value{0};
    std::atomic<uint64_t> flow_id{0};
  };

  int64_t Collect(std::vector<TraceEvent>* out, int64_t from,
                  int64_t end) const;

  const int32_t tid_;
  const size_t capacity_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<int64_t> next_{0};     // next global write index
  std::atomic<int64_t> drained_{0};  // Drain()-consumed watermark
  std::string thread_name_;          // set by the owning thread before events
};

/// Process-wide tracer: owns the thread rings, the recording switch, and the
/// drain. Rings are registered on a thread's first event and deliberately
/// kept after the thread exits so an end-of-run drain sees every event.
class Tracer {
 public:
  static Tracer& Global();

  /// Starts recording. Events emitted while stopped are dropped at the
  /// macro's atomic-load guard (no ring traffic at all).
  void Start();
  void Stop();
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Non-destructive view of every ring, merged and sorted by timestamp —
  /// the scrape path (/tracez): concurrent scrapers all see the same
  /// resident events and never steal from the export.
  std::vector<TraceEvent> Snapshot() const EXCLUDES(mu_);
  /// Consumes every not-yet-drained event, merged and sorted by timestamp —
  /// the export path (Chrome trace): a second export does not re-emit what
  /// the first already wrote. Records last_drain metadata.
  std::vector<TraceEvent> Drain() EXCLUDES(mu_);
  /// Total events overwritten before a reader could see them.
  int64_t dropped_events() const EXCLUDES(mu_);
  /// TraceNowMicros() timestamp of the most recent Drain (0 = never), and
  /// the number of events it consumed.
  TimeMicros last_drain_us() const { return last_drain_us_.load(); }
  int64_t last_drain_count() const { return last_drain_count_.load(); }

  /// Names the calling thread's ring in trace exports ("router",
  /// "shard-3"); call before emitting from that thread for best effect.
  void SetCurrentThreadName(std::string name) EXCLUDES(mu_);
  /// tid -> name for every ring that was given one.
  std::vector<std::pair<int32_t, std::string>> ThreadNames() const
      EXCLUDES(mu_);

  /// Drops all registered rings and re-arms fresh ones lazily. Test-only:
  /// callers must ensure no other thread is emitting.
  void ResetForTest() EXCLUDES(mu_);

  /// Ring of the calling thread (registered on first use).
  TraceRing* CurrentThreadRing() EXCLUDES(mu_);

  /// Events per thread ring; overflow overwrites the oldest.
  static constexpr size_t kRingCapacity = 1 << 16;

 private:
  Tracer() = default;

  std::atomic<bool> enabled_{false};
  std::atomic<int64_t> generation_{0};
  std::atomic<int64_t> last_drain_us_{0};
  std::atomic<int64_t> last_drain_count_{0};
  mutable Mutex mu_;
  std::vector<std::shared_ptr<TraceRing>> rings_ GUARDED_BY(mu_);
  int32_t next_tid_ GUARDED_BY(mu_) = 0;
};

/// Timestamp source for trace events: microseconds on the process-wide
/// monotonic clock (one origin for every thread, unlike per-instance
/// WallClock origins).
TimeMicros TraceNowMicros();

/// Emits one instant or counter event on the calling thread's ring.
void EmitEvent(const char* category, const char* name, TracePhase phase,
               int64_t value);

/// Emits one flow event (kFlowStart / kFlowStep / kFlowEnd) carrying
/// `flow_id` on the calling thread's ring.
void EmitFlowEvent(const char* category, const char* name, TracePhase phase,
                   uint64_t flow_id);

/// RAII span: captures the start time at construction and emits one complete
/// event at destruction. Inert when the tracer is not recording.
class ScopedSpan {
 public:
  ScopedSpan(const char* category, const char* name)
      : category_(Tracer::Global().enabled() ? category : nullptr),
        name_(name),
        start_(category_ != nullptr ? TraceNowMicros() : 0) {}
  ~ScopedSpan();
  PJOIN_DISALLOW_COPY_AND_MOVE(ScopedSpan);

 private:
  const char* category_;  // nullptr = inactive
  const char* name_;
  TimeMicros start_;
};

}  // namespace obs
}  // namespace pjoin

#if PJOIN_TRACING

#define PJOIN_TRACE_CAT2(a, b) a##b
#define PJOIN_TRACE_CAT(a, b) PJOIN_TRACE_CAT2(a, b)

#define TRACE_SPAN(category, name) \
  ::pjoin::obs::ScopedSpan PJOIN_TRACE_CAT(pjoin_span_, __LINE__)(category, \
                                                                  name)
#define TRACE_INSTANT(category, name)                                \
  do {                                                               \
    if (::pjoin::obs::Tracer::Global().enabled()) {                  \
      ::pjoin::obs::EmitEvent(category, name,                        \
                              ::pjoin::obs::TracePhase::kInstant, 0); \
    }                                                                \
  } while (0)
#define TRACE_COUNTER(category, name, value)                          \
  do {                                                                \
    if (::pjoin::obs::Tracer::Global().enabled()) {                   \
      ::pjoin::obs::EmitEvent(category, name,                         \
                              ::pjoin::obs::TracePhase::kCounter,     \
                              static_cast<int64_t>(value));           \
    }                                                                 \
  } while (0)
#define PJOIN_TRACE_FLOW(category, name, phase, id)                   \
  do {                                                                \
    if (::pjoin::obs::Tracer::Global().enabled()) {                   \
      ::pjoin::obs::EmitFlowEvent(category, name, phase,              \
                                  static_cast<uint64_t>(id));         \
    }                                                                 \
  } while (0)
#define TRACE_FLOW_START(category, name, id) \
  PJOIN_TRACE_FLOW(category, name, ::pjoin::obs::TracePhase::kFlowStart, id)
#define TRACE_FLOW_STEP(category, name, id) \
  PJOIN_TRACE_FLOW(category, name, ::pjoin::obs::TracePhase::kFlowStep, id)
#define TRACE_FLOW_END(category, name, id) \
  PJOIN_TRACE_FLOW(category, name, ::pjoin::obs::TracePhase::kFlowEnd, id)
#define TRACE_SET_THREAD_NAME(name)                                 \
  do {                                                              \
    ::pjoin::obs::Tracer::Global().SetCurrentThreadName(name);      \
  } while (0)

#else  // !PJOIN_TRACING

#define TRACE_SPAN(category, name) \
  do {                             \
  } while (0)
#define TRACE_INSTANT(category, name) \
  do {                                \
  } while (0)
#define TRACE_COUNTER(category, name, value) \
  do {                                       \
  } while (0)
#define TRACE_FLOW_START(category, name, id) \
  do {                                       \
  } while (0)
#define TRACE_FLOW_STEP(category, name, id) \
  do {                                      \
  } while (0)
#define TRACE_FLOW_END(category, name, id) \
  do {                                     \
  } while (0)
#define TRACE_SET_THREAD_NAME(name) \
  do {                              \
  } while (0)

#endif  // PJOIN_TRACING

#endif  // PJOIN_OBS_TRACE_H_
