// Live introspection endpoints (docs/OBSERVABILITY.md): an HttpServer
// pre-wired with
//
//   GET /metrics   Prometheus text exposition of MetricsRegistry::Global()
//   GET /statusz   human-readable snapshot: uptime, build flags, every
//                  registered status section (pipelines publish per-shard
//                  queue depths and join-state breakdowns here), and a dump
//                  of all registry gauges
//   GET /tracez    most recent drained trace spans, grouped by category
//   GET /quitquitquit  sets quit_requested() — lets a linger loop (bench
//                  --serve_linger_ms) be told to exit by the scraper
//
// Status sections are a process-global registry so a pipeline deep in the
// call stack can contribute to /statusz without threading a server handle
// through every layer; ScopedStatusSection unregisters on destruction so a
// finished pipeline stops appearing.

#ifndef PJOIN_OBS_INTROSPECTION_H_
#define PJOIN_OBS_INTROSPECTION_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "common/clock.h"
#include "common/macros.h"
#include "common/status.h"
#include "obs/http_server.h"

namespace pjoin {
namespace obs {

/// Renders one /statusz section body (called on a server worker thread —
/// must only read thread-safe state: registry handles, atomics, own locks).
using StatusSectionFn = std::function<std::string()>;

/// Registers a titled /statusz section; returns an id for Unregister.
int64_t RegisterStatusSection(std::string title, StatusSectionFn fn);
void UnregisterStatusSection(int64_t id);

/// All registered sections rendered in registration order (used by the
/// /statusz handler; exposed for tests).
std::string RenderStatusSections();

/// RAII section registration.
class ScopedStatusSection {
 public:
  ScopedStatusSection(std::string title, StatusSectionFn fn)
      : id_(RegisterStatusSection(std::move(title), std::move(fn))) {}
  ~ScopedStatusSection() { UnregisterStatusSection(id_); }
  PJOIN_DISALLOW_COPY_AND_MOVE(ScopedStatusSection);

 private:
  int64_t id_;
};

/// Renders the /statusz body (also used headlessly in tests).
std::string RenderStatusz(TimeMicros uptime_us);

class IntrospectionServer {
 public:
  explicit IntrospectionServer(HttpServerOptions options = {});
  PJOIN_DISALLOW_COPY_AND_MOVE(IntrospectionServer);

  /// Starts serving on loopback:`port` (0 = ephemeral; see port()).
  Status Start(int port);
  void Stop();

  [[nodiscard]] int port() const { return server_.port(); }

  /// True once a scraper has hit /quitquitquit.
  [[nodiscard]] bool quit_requested() const {
    return quit_.load();
  }

 private:
  HttpServer server_;
  std::atomic<bool> quit_{false};
  TimeMicros start_us_ = 0;
};

}  // namespace obs
}  // namespace pjoin

#endif  // PJOIN_OBS_INTROSPECTION_H_
