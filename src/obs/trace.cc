#include "obs/trace.h"

#include <algorithm>
#include <chrono>

#include "common/mutex.h"

namespace pjoin {
namespace obs {

TimeMicros TraceNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

TraceRing::TraceRing(int32_t tid, size_t capacity)
    : tid_(tid), capacity_(capacity), slots_(new Slot[capacity]) {
  PJOIN_DCHECK(capacity > 0);
}

void TraceRing::Emit(const char* category, const char* name, TracePhase phase,
                     TimeMicros ts, int64_t value, uint64_t flow_id) {
  const int64_t idx = next_.load(std::memory_order_relaxed);
  Slot& slot = slots_[static_cast<size_t>(idx) % capacity_];
  // Invalidate the slot first so a concurrent drain that catches the write
  // mid-flight sees a sequence mismatch rather than a half-new event.
  slot.seq.store(-1, std::memory_order_release);
  slot.category.store(category, std::memory_order_relaxed);
  slot.name.store(name, std::memory_order_relaxed);
  slot.phase.store(static_cast<int32_t>(phase), std::memory_order_relaxed);
  slot.ts.store(ts, std::memory_order_relaxed);
  slot.value.store(value, std::memory_order_relaxed);
  slot.flow_id.store(flow_id, std::memory_order_relaxed);
  slot.seq.store(idx, std::memory_order_release);
  next_.store(idx + 1, std::memory_order_release);
}

int64_t TraceRing::Collect(std::vector<TraceEvent>* out, int64_t from,
                           int64_t end) const {
  const int64_t cap = static_cast<int64_t>(capacity_);
  const int64_t begin = std::max(from, std::max<int64_t>(0, end - cap));
  for (int64_t i = begin; i < end; ++i) {
    const Slot& slot = slots_[static_cast<size_t>(i) % capacity_];
    TraceEvent e;
    e.tid = tid_;
    if (slot.seq.load(std::memory_order_acquire) != i) continue;  // lapped
    e.category = slot.category.load(std::memory_order_relaxed);
    e.name = slot.name.load(std::memory_order_relaxed);
    e.phase = static_cast<TracePhase>(slot.phase.load(std::memory_order_relaxed));
    e.ts = slot.ts.load(std::memory_order_relaxed);
    e.value = slot.value.load(std::memory_order_relaxed);
    e.flow_id = slot.flow_id.load(std::memory_order_relaxed);
    // Re-check: a writer that wrapped during the reads above invalidated or
    // re-published the slot for a different index.
    if (slot.seq.load(std::memory_order_acquire) != i) continue;
    out->push_back(e);
  }
  return std::max<int64_t>(0, end - cap);
}

int64_t TraceRing::Snapshot(std::vector<TraceEvent>* out) const {
  return Collect(out, 0, next_.load(std::memory_order_acquire));
}

int64_t TraceRing::Drain(std::vector<TraceEvent>* out) {
  const int64_t from = drained_.load(std::memory_order_acquire);
  // Bound the pass by the write index sampled *before* collecting: events a
  // writer appends mid-collection stay un-drained for the next pass instead
  // of being skipped but marked consumed.
  const int64_t end = next_.load(std::memory_order_acquire);
  const int64_t dropped = Collect(out, from, end);
  drained_.store(std::max(from, end), std::memory_order_release);
  return dropped;
}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();  // leaked: outlives exiting threads
  return *tracer;
}

void Tracer::Start() { enabled_.store(true, std::memory_order_relaxed); }

void Tracer::Stop() { enabled_.store(false, std::memory_order_relaxed); }

TraceRing* Tracer::CurrentThreadRing() {
  // One ring per (thread, reset generation): after ResetForTest a live
  // thread re-registers instead of writing into a dropped ring.
  struct ThreadSlot {
    std::shared_ptr<TraceRing> ring;
    int64_t generation = -1;
  };
  thread_local ThreadSlot slot;
  const int64_t gen = generation_.load(std::memory_order_acquire);
  if (slot.ring == nullptr || slot.generation != gen) {
    std::shared_ptr<TraceRing> ring;
    {
      MutexLock lock(mu_);
      ring = std::make_shared<TraceRing>(next_tid_++, kRingCapacity);
      rings_.push_back(ring);
    }
    slot.ring = std::move(ring);
    slot.generation = gen;
  }
  return slot.ring.get();
}

void Tracer::SetCurrentThreadName(std::string name) {
  TraceRing* ring = CurrentThreadRing();
  MutexLock lock(mu_);
  ring->set_thread_name(std::move(name));
}

std::vector<std::pair<int32_t, std::string>> Tracer::ThreadNames() const {
  std::vector<std::pair<int32_t, std::string>> names;
  MutexLock lock(mu_);
  for (const auto& ring : rings_) {
    if (!ring->thread_name().empty()) {
      names.emplace_back(ring->tid(), ring->thread_name());
    }
  }
  return names;
}

namespace {

void SortByTimestamp(std::vector<TraceEvent>* events) {
  std::stable_sort(events->begin(), events->end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts < b.ts;
                   });
}

}  // namespace

std::vector<TraceEvent> Tracer::Snapshot() const {
  std::vector<std::shared_ptr<TraceRing>> rings;
  {
    MutexLock lock(mu_);
    rings = rings_;
  }
  std::vector<TraceEvent> events;
  for (const auto& ring : rings) {
    ring->Snapshot(&events);
  }
  SortByTimestamp(&events);
  return events;
}

std::vector<TraceEvent> Tracer::Drain() {
  std::vector<std::shared_ptr<TraceRing>> rings;
  {
    MutexLock lock(mu_);
    rings = rings_;
  }
  std::vector<TraceEvent> events;
  for (const auto& ring : rings) {
    ring->Drain(&events);
  }
  SortByTimestamp(&events);
  last_drain_us_.store(TraceNowMicros());
  last_drain_count_.store(static_cast<int64_t>(events.size()));
  return events;
}

int64_t Tracer::dropped_events() const {
  std::vector<std::shared_ptr<TraceRing>> rings;
  {
    MutexLock lock(mu_);
    rings = rings_;
  }
  int64_t dropped = 0;
  std::vector<TraceEvent> scratch;
  for (const auto& ring : rings) {
    scratch.clear();
    dropped += ring->Snapshot(&scratch);
  }
  return dropped;
}

void Tracer::ResetForTest() {
  generation_.fetch_add(1, std::memory_order_acq_rel);
  MutexLock lock(mu_);
  rings_.clear();
  next_tid_ = 0;
  last_drain_us_.store(0);
  last_drain_count_.store(0);
}

void EmitEvent(const char* category, const char* name, TracePhase phase,
               int64_t value) {
  Tracer::Global().CurrentThreadRing()->Emit(category, name, phase,
                                             TraceNowMicros(), value);
}

void EmitFlowEvent(const char* category, const char* name, TracePhase phase,
                   uint64_t flow_id) {
  Tracer::Global().CurrentThreadRing()->Emit(category, name, phase,
                                             TraceNowMicros(), /*value=*/0,
                                             flow_id);
}

ScopedSpan::~ScopedSpan() {
  if (category_ == nullptr) return;
  const TimeMicros now = TraceNowMicros();
  Tracer::Global().CurrentThreadRing()->Emit(
      category_, name_, TracePhase::kComplete, start_, now - start_);
}

}  // namespace obs
}  // namespace pjoin
