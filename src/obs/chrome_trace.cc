#include "obs/chrome_trace.h"

#include <fstream>

namespace pjoin {
namespace obs {

namespace {

void AppendEscaped(std::ostream& os, const char* s) {
  os << '"';
  for (; s != nullptr && *s != '\0'; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

}  // namespace

void WriteChromeTrace(
    std::ostream& os, const std::vector<TraceEvent>& events,
    const std::vector<std::pair<int32_t, std::string>>& thread_names) {
  os << "{\"traceEvents\": [";
  bool first = true;
  auto sep = [&os, &first]() {
    if (!first) os << ",";
    first = false;
    os << "\n  ";
  };
  for (const auto& [tid, name] : thread_names) {
    sep();
    os << "{\"ph\": \"M\", \"name\": \"thread_name\", \"pid\": 1, \"tid\": "
       << tid << ", \"args\": {\"name\": ";
    AppendEscaped(os, name.c_str());
    os << "}}";
  }
  for (const TraceEvent& e : events) {
    sep();
    os << "{\"name\": ";
    AppendEscaped(os, e.name);
    os << ", \"cat\": ";
    AppendEscaped(os, e.category);
    os << ", \"pid\": 1, \"tid\": " << e.tid << ", \"ts\": " << e.ts;
    switch (e.phase) {
      case TracePhase::kComplete:
        os << ", \"ph\": \"X\", \"dur\": " << e.value;
        break;
      case TracePhase::kInstant:
        os << ", \"ph\": \"i\", \"s\": \"t\"";
        break;
      case TracePhase::kCounter:
        os << ", \"ph\": \"C\", \"args\": {\"value\": " << e.value << "}";
        break;
      case TracePhase::kFlowStart:
        os << ", \"ph\": \"s\", \"id\": " << e.flow_id;
        break;
      case TracePhase::kFlowStep:
        os << ", \"ph\": \"t\", \"id\": " << e.flow_id;
        break;
      case TracePhase::kFlowEnd:
        // "bp": "e" binds the arrow to the enclosing slice rather than the
        // next one, which is what Perfetto expects for terminating flows.
        os << ", \"ph\": \"f\", \"bp\": \"e\", \"id\": " << e.flow_id;
        break;
    }
    os << "}";
  }
  os << "\n], \"displayTimeUnit\": \"ms\"}\n";
}

Status WriteChromeTraceFile(const std::string& path) {
  Tracer& tracer = Tracer::Global();
  std::vector<TraceEvent> events = tracer.Drain();
  std::ofstream out(path);
  if (!out) {
    return Status::IOError("cannot open trace file '" + path + "'");
  }
  WriteChromeTrace(out, events, tracer.ThreadNames());
  out.flush();
  if (!out) {
    return Status::IOError("write to trace file '" + path + "' failed");
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace pjoin
