// Chrome trace_event JSON export (docs/OBSERVABILITY.md): serializes drained
// TraceEvents into the object-form trace format that chrome://tracing and
// Perfetto load directly. Spans become "X" (complete) events, instants "i",
// counter samples "C"; named threads are emitted as "thread_name" metadata
// records so Perfetto labels the tracks.

#ifndef PJOIN_OBS_CHROME_TRACE_H_
#define PJOIN_OBS_CHROME_TRACE_H_

#include <ostream>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/trace.h"

namespace pjoin {
namespace obs {

/// Writes `events` as Chrome trace JSON to `os`. `thread_names` labels the
/// tid tracks (pass Tracer::Global().ThreadNames()).
void WriteChromeTrace(
    std::ostream& os, const std::vector<TraceEvent>& events,
    const std::vector<std::pair<int32_t, std::string>>& thread_names);

/// Drains the global tracer and writes the trace to `path`.
[[nodiscard]] Status WriteChromeTraceFile(const std::string& path);

}  // namespace obs
}  // namespace pjoin

#endif  // PJOIN_OBS_CHROME_TRACE_H_
