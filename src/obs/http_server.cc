#include "obs/http_server.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/logging.h"
#include "common/mutex.h"

namespace pjoin {
namespace obs {

namespace {

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 431:
      return "Request Header Fields Too Large";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

void SendAll(int fd, std::string_view data) {
  size_t off = 0;
  while (off < data.size()) {
    // MSG_NOSIGNAL: a peer that hung up mid-write must not SIGPIPE the
    // pipeline process this server is embedded in.
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return;  // peer gone; nothing useful to do
    off += static_cast<size_t>(n);
  }
}

void SendResponse(int fd, const HttpResponse& resp) {
  std::string head;
  head.reserve(128);
  head.append("HTTP/1.1 ");
  head.append(std::to_string(resp.status));
  head.push_back(' ');
  head.append(ReasonPhrase(resp.status));
  head.append("\r\nContent-Type: ");
  head.append(resp.content_type);
  head.append("\r\nContent-Length: ");
  head.append(std::to_string(resp.body.size()));
  head.append("\r\nConnection: close\r\n");
  if (resp.status == 405) head.append("Allow: GET\r\n");
  head.append("\r\n");
  SendAll(fd, head);
  SendAll(fd, resp.body);
}

HttpResponse ErrorResponse(int status, std::string_view detail) {
  HttpResponse resp;
  resp.status = status;
  resp.body.append(std::to_string(status));
  resp.body.push_back(' ');
  resp.body.append(ReasonPhrase(status));
  if (!detail.empty()) {
    resp.body.append(": ");
    resp.body.append(detail);
  }
  resp.body.push_back('\n');
  return resp;
}

}  // namespace

HttpServer::HttpServer(HttpServerOptions options)
    : options_(std::move(options)) {}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::AddHandler(std::string path, Handler handler) {
  PJOIN_DCHECK(listen_fd_ == -1);  // routing table is frozen at Start()
  handlers_[std::move(path)] = std::move(handler);
}

Status HttpServer::Start(int port) {
  PJOIN_DCHECK(listen_fd_ == -1);
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  // Loopback only: this is an introspection surface, not a public API.
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError("bind port " + std::to_string(port) + ": " +
                           std::strerror(err));
  }
  if (::listen(fd, static_cast<int>(options_.max_pending)) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError(std::string("listen: ") + std::strerror(err));
  }
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError(std::string("getsockname: ") + std::strerror(err));
  }
  port_ = ntohs(bound.sin_port);
  listen_fd_ = fd;
  stopping_.store(false);

  accept_thread_ = std::thread([this] { AcceptLoop(); });
  const int num_workers = options_.num_workers > 0 ? options_.num_workers : 1;
  workers_.reserve(num_workers);
  for (int i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

void HttpServer::Stop() {
  {
    // Flipping the flag under mu_ closes the lost-wakeup window against a
    // worker that has checked its predicate but not yet blocked.
    MutexLock lock(mu_);
    if (stopping_.load() && listen_fd_ == -1) {
      return;  // never started, or already stopped
    }
    stopping_.store(true);
  }
  queue_cv_.NotifyAll();
  if (accept_thread_.joinable()) accept_thread_.join();
  queue_cv_.NotifyAll();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
  workers_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpServer::AcceptLoop() {
  while (!stopping_.load()) {
    pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    // Short poll timeout bounds shutdown latency without relying on the
    // platform-flaky "close() unblocks accept()" behavior.
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0 || (pfd.revents & POLLIN) == 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;

    timeval tv;
    tv.tv_sec = options_.io_timeout_ms / 1000;
    tv.tv_usec = (options_.io_timeout_ms % 1000) * 1000;
    ::setsockopt(conn, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(conn, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

    bool enqueued = false;
    {
      MutexLock lock(mu_);
      if (pending_.size() < options_.max_pending &&
          !stopping_.load()) {
        pending_.push_back(conn);
        enqueued = true;
      }
    }
    if (enqueued) {
      queue_cv_.NotifyOne();
    } else {
      SendResponse(conn, ErrorResponse(503, "handler pool saturated"));
      ::close(conn);
    }
  }
}

void HttpServer::WorkerLoop() {
  for (;;) {
    int fd = -1;
    {
      MutexLock lock(mu_);
      while (pending_.empty() &&
             !stopping_.load()) {
        queue_cv_.Wait(mu_);
      }
      if (pending_.empty()) return;  // stopping, queue drained
      fd = pending_.front();
      pending_.pop_front();
    }
    ServeConnection(fd);
  }
}

void HttpServer::ServeConnection(int fd) {
  std::string buf;
  bool complete = false;
  bool oversize = false;
  char chunk[1024];
  while (!complete && !oversize) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) break;  // peer closed or timed out mid-request
    buf.append(chunk, static_cast<size_t>(n));
    if (buf.find("\r\n\r\n") != std::string::npos ||
        buf.find("\n\n") != std::string::npos) {
      complete = true;
    } else if (buf.size() > options_.max_request_bytes) {
      oversize = true;
    }
  }
  if (oversize) {
    SendResponse(fd, ErrorResponse(431, ""));
    ::close(fd);
    return;
  }
  if (!complete) {
    if (!buf.empty()) SendResponse(fd, ErrorResponse(400, "truncated request"));
    ::close(fd);
    return;
  }

  // Request line: METHOD SP TARGET SP HTTP/x.y
  const size_t eol = buf.find_first_of("\r\n");
  const std::string line = buf.substr(0, eol);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                              : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos ||
      line.compare(sp2 + 1, 5, "HTTP/") != 0) {
    SendResponse(fd, ErrorResponse(400, "malformed request line"));
    ::close(fd);
    return;
  }
  const std::string method = line.substr(0, sp1);
  const std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (method != "GET") {
    SendResponse(fd, ErrorResponse(405, method));
    ::close(fd);
    return;
  }

  HttpRequest req;
  const size_t qmark = target.find('?');
  req.path = target.substr(0, qmark);
  if (qmark != std::string::npos) req.query = target.substr(qmark + 1);

  const auto it = handlers_.find(req.path);
  if (it == handlers_.end()) {
    SendResponse(fd, ErrorResponse(404, req.path));
    ::close(fd);
    return;
  }
  SendResponse(fd, it->second(req));
  ::close(fd);
}

}  // namespace obs
}  // namespace pjoin
