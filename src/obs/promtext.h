// Prometheus text exposition (version 0.0.4) for MetricsRegistry snapshots:
// the wire format behind the introspection server's GET /metrics
// (docs/OBSERVABILITY.md). Counters and gauges become single samples;
// histograms become cumulative `_bucket{le=...}` series plus `_sum` and
// `_count`, with power-of-two bucket upper bounds scaled by the metric's
// unit_scale (so microsecond observations under a `_seconds` name export
// second-valued `le` bounds).

#ifndef PJOIN_OBS_PROMTEXT_H_
#define PJOIN_OBS_PROMTEXT_H_

#include <string>
#include <vector>

#include "obs/metrics_registry.h"

namespace pjoin {
namespace obs {

/// Renders `samples` (as produced by MetricsRegistry::Snapshot()) in
/// Prometheus text exposition format. Metric names are sanitized for the
/// format (dots become underscores); each distinct output name gets one
/// `# TYPE` header. Deterministic for a given snapshot.
std::string WritePrometheusText(const std::vector<MetricSample>& samples);

/// Snapshot of MetricsRegistry::Global(), rendered.
std::string GlobalPrometheusText();

}  // namespace obs
}  // namespace pjoin

#endif  // PJOIN_OBS_PROMTEXT_H_
