// HealthMonitor: the stall-diagnosis layer over the punctuation frontier
// tracker (docs/OBSERVABILITY.md, "Diagnosing a stalled join").
//
// A watchdog thread samples the FrontierTracker, ring occupancies
// (pjoin_ring_occupancy), release-board depth and spill quarantines on a
// configurable period and classifies the pipeline:
//
//   OK        every frontier within degraded_threshold of the router
//   DEGRADED  a frontier moderately behind, or spill storage degraded
//   STALLED   a frontier stalled_threshold or more behind ingress
//
// A STALLED verdict carries a root-cause chain built from the signals the
// engine already exports — "shard 2 frontier (left/constant) stalled 4.2s
// behind router; ring edge=out_2 occupancy 64; 3 release rounds pending" —
// and is edge-triggered into the stall history, a kStallDiagnosed event
// (when an EventRegistry is attached), and pjoin_stalls_diagnosed_total.
// The watchdog also feeds pjoin_frontier_lag_seconds (per side × scheme ×
// shard) and pjoin_frontier_unfired_purges.
//
// /healthz does NOT read a cached verdict: it calls EvaluateNow(), so a
// probe observes recovery the moment the frontier catches up instead of one
// watchdog period later.

#ifndef PJOIN_OBS_HEALTH_H_
#define PJOIN_OBS_HEALTH_H_

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/macros.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/progress.h"

namespace pjoin {
class EventRegistry;
namespace obs {

enum class HealthStatus {
  kOk = 0,
  kDegraded = 1,
  kStalled = 2,
};

const char* HealthStatusName(HealthStatus status);

/// One classification pass over the frontier tracker and the registry
/// signals. `causes` is the root-cause chain, most specific first.
struct HealthReport {
  HealthStatus status = HealthStatus::kOk;
  TimeMicros now_us = 0;
  /// Frontier cells at or past the stall threshold.
  int64_t stalled_frontiers = 0;
  /// Moderate-lag frontiers plus degraded-mode signals (spill fallback).
  int64_t degraded_signals = 0;
  /// Punctuations whose purge has not fired yet (informational: lazy purge
  /// makes a small pending set normal).
  int64_t unfired_purges = 0;
  std::vector<std::string> causes;
  /// The frontier cells behind the evaluation (for /healthz JSON detail).
  std::vector<FrontierCell> frontiers;

  /// {"status": "ok"|"degraded"|"stalled", "now_us": N,
  ///  "stalled_frontiers": N, "degraded_signals": N, "unfired_purges": N,
  ///  "causes": [...], "frontiers": [{...}, ...]}
  std::string ToJson() const;
};

struct HealthOptions {
  /// Watchdog sampling period.
  TimeMicros period_us = 100 * kMicrosPerMilli;
  /// Frontier lag at which the pipeline is STALLED.
  TimeMicros stall_threshold_us = kMicrosPerSecond;
  /// Frontier lag at which the pipeline is DEGRADED.
  TimeMicros degraded_threshold_us = 250 * kMicrosPerMilli;
  /// When set, STALLED transitions dispatch a kStallDiagnosed event here.
  /// The registry must outlive the watchdog and tolerate dispatch from the
  /// watchdog thread.
  EventRegistry* events = nullptr;
};

/// Process-global monitor, like Tracer / MetricsRegistry: the watchdog,
/// /healthz and /debug/stalls all read one well-known instance.
class HealthMonitor {
 public:
  static HealthMonitor& Global();
  PJOIN_DISALLOW_COPY_AND_MOVE(HealthMonitor);

  /// One synchronous classification pass with no side effects on history,
  /// metrics or events, using the thresholds last passed to Configure /
  /// Start (defaults otherwise). `now_us` = 0 means "now" (TraceNowMicros);
  /// tests pass synthetic times. This is what /healthz serves.
  [[nodiscard]] HealthReport EvaluateNow(TimeMicros now_us = 0) const
      EXCLUDES(mu_);

  /// Sets the thresholds EvaluateNow and the watchdog use, without
  /// starting the watchdog.
  void Configure(const HealthOptions& options) EXCLUDES(mu_);

  /// Starts the watchdog thread with `options`. No-op when already
  /// running.
  void Start(HealthOptions options = {}) EXCLUDES(mu_);
  /// Stops and joins the watchdog. Safe when not running.
  void Stop() EXCLUDES(mu_);
  [[nodiscard]] bool running() const EXCLUDES(mu_);

  /// Reports recorded at OK/DEGRADED -> STALLED transitions (newest last,
  /// bounded at kMaxStallHistory).
  [[nodiscard]] std::vector<HealthReport> StallHistory() const
      EXCLUDES(history_mu_);

  /// Human-readable /debug/stalls body: current verdict + stall history.
  [[nodiscard]] std::string RenderDebugStalls() const;

  /// Stops the watchdog and clears history. Test-only.
  void ResetForTest();

  static constexpr size_t kMaxStallHistory = 32;

 private:
  HealthMonitor() = default;

  /// A watchdog pass: EvaluateNow + histogram/gauge exports + the
  /// edge-triggered stall recording.
  void RecordPass(const HealthOptions& options);
  void WatchdogLoop(HealthOptions options);

  mutable Mutex mu_;
  CondVar cv_;
  HealthOptions options_ GUARDED_BY(mu_);
  bool stop_requested_ GUARDED_BY(mu_) = false;
  bool running_ GUARDED_BY(mu_) = false;
  std::thread thread_ GUARDED_BY(mu_);

  mutable Mutex history_mu_;
  std::vector<HealthReport> history_ GUARDED_BY(history_mu_);
  HealthStatus last_status_ GUARDED_BY(history_mu_) = HealthStatus::kOk;
};

}  // namespace obs
}  // namespace pjoin

#endif  // PJOIN_OBS_HEALTH_H_
