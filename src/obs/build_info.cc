#include "obs/build_info.h"

#include "obs/metrics_registry.h"
#include "obs/trace.h"  // PJOIN_TRACING default

namespace pjoin {
namespace obs {

#ifndef PJOIN_GIT_SHA
#define PJOIN_GIT_SHA "unknown"
#endif

std::string BuildInfoLabels() {
  std::string flags;
  auto add_flag = [&flags](const char* token) {
    if (!flags.empty()) flags.push_back('+');
    flags.append(token);
  };
#if PJOIN_TRACING
  add_flag("tracing");
#endif
#ifdef NDEBUG
  add_flag("ndebug");
#endif
#if defined(__SANITIZE_ADDRESS__)
  add_flag("asan");
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
  add_flag("asan");
#endif
#endif
#if defined(__SANITIZE_THREAD__)
  add_flag("tsan");
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
  add_flag("tsan");
#endif
#endif
  if (flags.empty()) flags = "none";
  std::string labels = "version=";
  labels.append(kPjoinVersion);
  labels.append(",git_sha=");
  labels.append(PJOIN_GIT_SHA);
  labels.append(",flags=");
  labels.append(flags);
  return labels;
}

void RegisterBuildInfo() {
  MetricsRegistry::Global()
      .GetGauge("pjoin_build_info", BuildInfoLabels())
      .Set(1);
}

}  // namespace obs
}  // namespace pjoin
