// Shared string-body escaping for the machine-readable exporters
// (docs/OBSERVABILITY.md): MetricsRegistry::ToJson() and the Prometheus text
// exposition writer (obs/promtext.h) both quote metric names and label
// values with this one escaper, so a label value containing quotes,
// backslashes or newlines can never produce invalid output in either format.

#ifndef PJOIN_OBS_TEXT_ESCAPE_H_
#define PJOIN_OBS_TEXT_ESCAPE_H_

#include <string>
#include <string_view>

namespace pjoin {
namespace obs {

/// Appends the body of a double-quoted string (no surrounding quotes) with
/// `"` / `\` / control characters escaped. The output is simultaneously a
/// valid JSON string body and a valid Prometheus label value body: both
/// formats share the `\"`, `\\`, `\n`, `\t`, `\r` escapes, and the
/// remaining control characters (which no sane label contains) are emitted
/// as JSON-style `\u00XX`.
void AppendEscapedStringBody(std::string* out, std::string_view s);

/// Convenience: `"` + escaped body + `"`.
std::string QuoteEscaped(std::string_view s);

/// True when `name` is acceptable as a registry metric name: nonempty,
/// starts with a letter or '_', continues with letters, digits or one of
/// `_ . :` (dots are transliterated to underscores by the Prometheus
/// exposition writer). Registration rejects anything else.
bool IsValidMetricName(std::string_view name);

}  // namespace obs
}  // namespace pjoin

#endif  // PJOIN_OBS_TEXT_ESCAPE_H_
