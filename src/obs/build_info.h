// pjoin_build_info: a constant gauge (value 1) whose labels identify the
// binary behind a scrape — version, git sha, compiled-in feature flags — so
// metrics collected across the bench trajectory stay attributable to the
// build that produced them (docs/OBSERVABILITY.md).

#ifndef PJOIN_OBS_BUILD_INFO_H_
#define PJOIN_OBS_BUILD_INFO_H_

#include <string>

namespace pjoin {
namespace obs {

/// The library version exposed in pjoin_build_info.
inline constexpr const char* kPjoinVersion = "0.10.0";

/// The labels pjoin_build_info carries: "version=...,git_sha=...,flags=...".
/// Flag tokens are '+'-joined (tracing/ndebug/asan/tsan) so the label value
/// never contains ',' or '='.
std::string BuildInfoLabels();

/// Registers the pjoin_build_info gauge (value 1) in the global
/// MetricsRegistry. Idempotent; call at process or server startup.
void RegisterBuildInfo();

}  // namespace obs
}  // namespace pjoin

#endif  // PJOIN_OBS_BUILD_INFO_H_
