// MetricsRegistry: one process-wide, lock-sharded home for counters and
// gauges (docs/OBSERVABILITY.md).
//
// The pre-existing per-operator CounterSets stay where they are (they are
// part of each operator's introspection API); the registry is the layer
// *above* them: subsystems that previously kept ad-hoc tallies (stream
// buffers, spill stores, the parallel pipeline) register named, labeled
// handles here, and one ToJson() call snapshots everything a run touched in
// a stable machine-readable form.
//
// Design for the hot path: a handle resolves (name, labels) -> metric once,
// under one shard mutex; after that every Add/Set is a single relaxed
// atomic RMW/store on the metric cell — no lock, no map lookup. Handles are
// trivially copyable values; a default-constructed handle is inert (all
// operations no-op), so instrumentation can be optional without null checks
// at every call site.
//
// Registration is lock-sharded: (name, labels) hashes to one of kShards
// independent {Mutex, map} pairs, so concurrent registration from shard
// workers does not serialize on a single registry lock.

#ifndef PJOIN_OBS_METRICS_REGISTRY_H_
#define PJOIN_OBS_METRICS_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/macros.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace pjoin {
namespace obs {

enum class MetricKind : int8_t {
  /// Monotone sum (Add only).
  kCounter,
  /// Last-write-wins level (Set / Add).
  kGauge,
  /// Power-of-two bucketed distribution (Observe only).
  kHistogram,
};

/// Atomic power-of-two bucket array backing a registry histogram: the
/// thread-safe sibling of common/metrics.h::Histogram (same BucketFor law,
/// relaxed atomics instead of plain ints). Bucket 0 holds v <= 0; bucket
/// b >= 1 holds values in [2^(b-1), 2^b - 1].
struct HistogramData {
  static constexpr int kNumBuckets = 64;

  std::atomic<int64_t> buckets[kNumBuckets] = {};
  std::atomic<int64_t> sum{0};
  std::atomic<int64_t> count{0};

  static int BucketFor(int64_t v) {
    if (v <= 0) return 0;
    int b = 0;
    while (v > 0) {
      v >>= 1;
      ++b;
    }
    return b < kNumBuckets ? b : kNumBuckets - 1;
  }
};

/// One registered metric cell. Owned by the registry; handles point at it.
struct MetricCell {
  std::string name;
  std::string labels;
  MetricKind kind = MetricKind::kCounter;
  std::atomic<int64_t> value{0};
  /// Histogram-only. Observations are recorded as raw int64 values (e.g.
  /// microseconds); exporters multiply bucket bounds and sums by
  /// `unit_scale` (e.g. 1e-6 for a `_seconds` exposition).
  double unit_scale = 1.0;
  std::unique_ptr<HistogramData> hist;
};

/// Cumulative counter handle. Copyable; inert when default-constructed.
class Counter {
 public:
  Counter() = default;

  void Add(int64_t delta = 1) {
    if (cell_ != nullptr) {
      cell_->value.fetch_add(delta);
    }
  }
  [[nodiscard]] int64_t Get() const {
    return cell_ == nullptr ? 0 : cell_->value.load();
  }
  [[nodiscard]] bool bound() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Counter(MetricCell* cell) : cell_(cell) {}
  MetricCell* cell_ = nullptr;
};

/// Point-in-time level handle (queue depth, state size). Copyable; inert
/// when default-constructed.
class Gauge {
 public:
  Gauge() = default;

  void Set(int64_t value) {
    if (cell_ != nullptr) {
      cell_->value.store(value);
    }
  }
  void Add(int64_t delta) {
    if (cell_ != nullptr) {
      cell_->value.fetch_add(delta);
    }
  }
  [[nodiscard]] int64_t Get() const {
    return cell_ == nullptr ? 0 : cell_->value.load();
  }
  [[nodiscard]] bool bound() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(MetricCell* cell) : cell_(cell) {}
  MetricCell* cell_ = nullptr;
};

/// Distribution handle (latencies, sizes). Copyable; inert when
/// default-constructed. Observe() is two relaxed atomic RMWs plus a
/// branch-free bucket computation — safe on the shard-worker hot path.
class Histogram {
 public:
  Histogram() = default;

  void Observe(int64_t value) {
    if (cell_ == nullptr) return;
    HistogramData& h = *cell_->hist;
    h.buckets[HistogramData::BucketFor(value)].fetch_add(
        1);
    h.sum.fetch_add(value);
    h.count.fetch_add(1);
  }
  [[nodiscard]] int64_t Count() const {
    return cell_ == nullptr
               ? 0
               : cell_->hist->count.load();
  }
  [[nodiscard]] int64_t Sum() const {
    return cell_ == nullptr
               ? 0
               : cell_->hist->sum.load();
  }
  [[nodiscard]] bool bound() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Histogram(MetricCell* cell) : cell_(cell) {}
  MetricCell* cell_ = nullptr;
};

/// A consistent-enough copy of one metric for snapshots/export.
struct MetricSample {
  std::string name;
  std::string labels;
  MetricKind kind;
  /// Counter/gauge value; for histograms, the observation count.
  int64_t value;
  /// Histogram-only: raw-unit sum and per-bucket counts (empty otherwise).
  int64_t sum = 0;
  double unit_scale = 1.0;
  std::vector<int64_t> buckets;
};

class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  PJOIN_DISALLOW_COPY_AND_MOVE(MetricsRegistry);

  /// Returns the handle for (name, labels), registering the metric on first
  /// use. The same (name, labels) pair always resolves to the same cell —
  /// two call sites asking for "stream_buffer.depth"/"buf=input_l" share
  /// one value, while a different labels string is a distinct metric.
  /// Asking for an existing metric with a different kind is a checked
  /// programming error. A name rejected by obs::IsValidMetricName() logs
  /// once and returns an inert handle (bound() == false) instead of
  /// registering junk an exporter could not emit.
  Counter GetCounter(std::string_view name, std::string_view labels = "");
  Gauge GetGauge(std::string_view name, std::string_view labels = "");

  /// `unit_scale` converts raw observations to exposition units (1e-6 when
  /// observing microseconds under a `_seconds` name). Fixed at first
  /// registration.
  Histogram GetHistogram(std::string_view name, std::string_view labels = "",
                         double unit_scale = 1.0);

  /// All registered metrics, sorted by (name, labels).
  [[nodiscard]] std::vector<MetricSample> Snapshot() const;

  /// Stable machine-readable snapshot:
  ///   {"metrics": [{"name": ..., "labels": ..., "kind": "counter"|"gauge",
  ///                 "value": N}, ...]}
  /// Histogram entries carry "count", "sum", "unit_scale" and "buckets"
  /// instead of "value". Sorted by (name, labels) so diffs and goldens are
  /// deterministic.
  [[nodiscard]] std::string ToJson() const;

  /// Drops every registered metric. Test-only: outstanding handles dangle.
  void ResetForTest();

 private:
  static constexpr int kShards = 8;

  struct Shard {
    mutable Mutex mu;
    // std::map: stable element addresses, deterministic iteration.
    std::map<std::string, std::unique_ptr<MetricCell>> cells GUARDED_BY(mu);
  };

  MetricCell* GetCell(std::string_view name, std::string_view labels,
                      MetricKind kind, double unit_scale = 1.0);

  Shard shards_[kShards];
};

}  // namespace obs
}  // namespace pjoin

#endif  // PJOIN_OBS_METRICS_REGISTRY_H_
