#include "obs/progress.h"

#include "common/mutex.h"

namespace pjoin {
namespace obs {

FrontierTracker& FrontierTracker::Global() {
  static FrontierTracker* tracker = new FrontierTracker();  // leaked
  return *tracker;
}

FrontierTracker::Cell* FrontierTracker::GetCell(int side,
                                                std::string_view scheme,
                                                int shard) {
  const std::tuple<int, std::string, int> key(side, std::string(scheme),
                                              shard);
  MutexLock lock(mu_);
  auto it = cells_.find(key);
  if (it == cells_.end()) {
    it = cells_.emplace(key, std::make_unique<Cell>()).first;
  }
  return it->second.get();
}

FrontierTracker::PurgeCell* FrontierTracker::GetPurgeCell(int shard) {
  MutexLock lock(mu_);
  auto it = purge_cells_.find(shard);
  if (it == purge_cells_.end()) {
    it = purge_cells_.emplace(shard, std::make_unique<PurgeCell>()).first;
  }
  return it->second.get();
}

void FrontierTracker::NoteIngress(int side, std::string_view scheme,
                                  int shard, TimeMicros now_us,
                                  std::string_view punct) {
  Cell* cell = GetCell(side, scheme, shard);
  const int64_t ingress = cell->ingress.fetch_add(1) + 1;
  cell->last_ingress_us.store(now_us);
  // Falling behind starts now if the shard has not already caught up. The
  // read below can race the shard's NoteProcessed — the worst case is a
  // behind_since a few microseconds off, which the second-scale stall
  // thresholds never notice.
  if (cell->processed.load() < ingress &&
      cell->behind_since_us.load() == 0) {
    cell->behind_since_us.store(now_us);
  }
  MutexLock lock(cell->punct_mu);
  cell->last_punct.assign(punct.data(), punct.size());
}

void FrontierTracker::NoteProcessed(int side, std::string_view scheme,
                                    int shard, TimeMicros now_us) {
  Cell* cell = GetCell(side, scheme, shard);
  const int64_t processed = cell->processed.fetch_add(1) + 1;
  cell->last_processed_us.store(now_us);
  if (processed >= cell->ingress.load()) {
    cell->behind_since_us.store(0);
  }
}

void FrontierTracker::NoteReleased() { released_total_.fetch_add(1); }

void FrontierTracker::NotePunctIgnored() { puncts_ignored_.fetch_add(1); }

void FrontierTracker::NotePurgeExpected(int shard, int64_t resident_tuples,
                                        TimeMicros now_us) {
  PurgeCell* cell = GetPurgeCell(shard);
  if (cell->pending_puncts.fetch_add(1) == 0) {
    cell->oldest_since_us.store(now_us);
  }
  cell->pending_tuples.fetch_add(resident_tuples);
}

void FrontierTracker::NotePurgeFired(int shard) {
  PurgeCell* cell = GetPurgeCell(shard);
  cell->pending_puncts.store(0);
  cell->pending_tuples.store(0);
  cell->oldest_since_us.store(0);
}

FrontierSnapshot FrontierTracker::Snap() const {
  FrontierSnapshot snap;
  MutexLock lock(mu_);
  snap.cells.reserve(cells_.size());
  for (const auto& [key, cell] : cells_) {
    FrontierCell out;
    out.side = std::get<0>(key);
    out.scheme = std::get<1>(key);
    out.shard = std::get<2>(key);
    out.ingress_count = cell->ingress.load();
    out.processed_count = cell->processed.load();
    out.last_ingress_us = cell->last_ingress_us.load();
    out.last_processed_us = cell->last_processed_us.load();
    out.behind_since_us = cell->behind_since_us.load();
    {
      MutexLock punct_lock(cell->punct_mu);
      out.last_punct = cell->last_punct;
    }
    snap.cells.push_back(std::move(out));
  }
  snap.purges.reserve(purge_cells_.size());
  for (const auto& [shard, cell] : purge_cells_) {
    PurgeExpectation out;
    out.shard = shard;
    out.pending_puncts = cell->pending_puncts.load();
    out.pending_tuples = cell->pending_tuples.load();
    out.oldest_since_us = cell->oldest_since_us.load();
    snap.purges.push_back(out);
  }
  snap.released_total = released_total_.load();
  snap.puncts_ignored = puncts_ignored_.load();
  return snap;
}

void FrontierTracker::ResetForTest() {
  MutexLock lock(mu_);
  cells_.clear();
  purge_cells_.clear();
  released_total_.store(0);
  puncts_ignored_.store(0);
}

}  // namespace obs
}  // namespace pjoin
