// Minimal POSIX-socket HTTP/1.1 server for live introspection
// (docs/OBSERVABILITY.md): one accept thread plus a bounded handler pool,
// GET-only, exact-path routing, Connection: close per request. Standard
// library + sockets only — this is a debug surface, not a web framework.
//
// Raw socket(2)/bind(2)/accept(2) calls live exclusively in
// http_server.cc; tools/lint_check.py rejects them anywhere else in src/
// (mirroring the raw-clock rule) so every listening endpoint in the
// process goes through this audited, cleanly-stoppable server.

#ifndef PJOIN_OBS_HTTP_SERVER_H_
#define PJOIN_OBS_HTTP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"

namespace pjoin {
namespace obs {

/// A parsed GET request: "/statusz?verbose=1" splits into path and query.
struct HttpRequest {
  std::string path;
  std::string query;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

struct HttpServerOptions {
  /// Handler pool size; each worker serves one connection at a time.
  int num_workers = 2;
  /// Requests larger than this (request line + headers) get 431.
  size_t max_request_bytes = 8192;
  /// Accepted connections queued for a free worker beyond this are closed.
  size_t max_pending = 16;
  /// Per-connection socket read/write timeout.
  int io_timeout_ms = 2000;
};

/// Lifecycle: construct -> AddHandler()* -> Start() -> Stop(). Stop() is
/// idempotent and joins every thread, so destruction after Stop() (or
/// without Start()) is race-free; the destructor calls Stop() as a
/// backstop.
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  explicit HttpServer(HttpServerOptions options = {});
  ~HttpServer();
  PJOIN_DISALLOW_COPY_AND_MOVE(HttpServer);

  /// Registers an exact-match handler for `path`. Must precede Start().
  void AddHandler(std::string path, Handler handler);

  /// Binds the loopback interface on `port` (0 picks an ephemeral port,
  /// readable via port()) and starts the accept + worker threads. Fails
  /// with IOError when the port is taken.
  Status Start(int port);

  /// The bound port; 0 before a successful Start().
  [[nodiscard]] int port() const { return port_; }

  /// Stops accepting, drains queued connections, joins all threads.
  void Stop();

 private:
  void AcceptLoop();
  void WorkerLoop();
  void ServeConnection(int fd);

  const HttpServerOptions options_;
  std::map<std::string, Handler> handlers_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  Mutex mu_;
  CondVar queue_cv_;
  std::deque<int> pending_ GUARDED_BY(mu_);
};

}  // namespace obs
}  // namespace pjoin

#endif  // PJOIN_OBS_HTTP_SERVER_H_
