#include "obs/metrics_registry.h"

#include <algorithm>
#include <sstream>

#include "common/mutex.h"

namespace pjoin {
namespace obs {

namespace {

// FNV-1a over name + '\0' + labels; the separator keeps ("ab","c") and
// ("a","bc") on independent shards.
uint64_t KeyHash(std::string_view name, std::string_view labels) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (char c : name) h = (h ^ static_cast<uint8_t>(c)) * 0x100000001b3ull;
  h = (h ^ 0) * 0x100000001b3ull;
  for (char c : labels) h = (h ^ static_cast<uint8_t>(c)) * 0x100000001b3ull;
  return h;
}

std::string MakeKey(std::string_view name, std::string_view labels) {
  std::string key;
  key.reserve(name.size() + 1 + labels.size());
  key.append(name);
  key.push_back('\0');
  key.append(labels);
  return key;
}

void AppendJsonString(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        os << c;
    }
  }
  os << '"';
}

}  // namespace

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // leaked
  return *registry;
}

MetricCell* MetricsRegistry::GetCell(std::string_view name,
                                     std::string_view labels,
                                     MetricKind kind) {
  Shard& shard = shards_[KeyHash(name, labels) % kShards];
  MutexLock lock(shard.mu);
  auto [it, inserted] = shard.cells.try_emplace(MakeKey(name, labels));
  if (inserted) {
    it->second = std::make_unique<MetricCell>();
    it->second->name = std::string(name);
    it->second->labels = std::string(labels);
    it->second->kind = kind;
  }
  // Re-registering under another kind would silently alias a counter and a
  // gauge onto one cell; make it a programming error instead.
  PJOIN_DCHECK(it->second->kind == kind);
  return it->second.get();
}

Counter MetricsRegistry::GetCounter(std::string_view name,
                                    std::string_view labels) {
  return Counter(GetCell(name, labels, MetricKind::kCounter));
}

Gauge MetricsRegistry::GetGauge(std::string_view name,
                                std::string_view labels) {
  return Gauge(GetCell(name, labels, MetricKind::kGauge));
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  std::vector<MetricSample> samples;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    for (const auto& [key, cell] : shard.cells) {
      samples.push_back(MetricSample{
          cell->name, cell->labels, cell->kind,
          cell->value.load(std::memory_order_relaxed)});
    }
  }
  std::sort(samples.begin(), samples.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name != b.name ? a.name < b.name : a.labels < b.labels;
            });
  return samples;
}

std::string MetricsRegistry::ToJson() const {
  const std::vector<MetricSample> samples = Snapshot();
  std::ostringstream os;
  os << "{\"metrics\": [";
  for (size_t i = 0; i < samples.size(); ++i) {
    const MetricSample& s = samples[i];
    if (i > 0) os << ", ";
    os << "\n  {\"name\": ";
    AppendJsonString(os, s.name);
    os << ", \"labels\": ";
    AppendJsonString(os, s.labels);
    os << ", \"kind\": "
       << (s.kind == MetricKind::kCounter ? "\"counter\"" : "\"gauge\"")
       << ", \"value\": " << s.value << "}";
  }
  os << "\n]}\n";
  return os.str();
}

void MetricsRegistry::ResetForTest() {
  for (Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    shard.cells.clear();
  }
}

}  // namespace obs
}  // namespace pjoin
