#include "obs/metrics_registry.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"
#include "common/mutex.h"
#include "obs/text_escape.h"

namespace pjoin {
namespace obs {

namespace {

// FNV-1a over name + '\0' + labels; the separator keeps ("ab","c") and
// ("a","bc") on independent shards.
uint64_t KeyHash(std::string_view name, std::string_view labels) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (char c : name) h = (h ^ static_cast<uint8_t>(c)) * 0x100000001b3ull;
  h = (h ^ 0) * 0x100000001b3ull;
  for (char c : labels) h = (h ^ static_cast<uint8_t>(c)) * 0x100000001b3ull;
  return h;
}

std::string MakeKey(std::string_view name, std::string_view labels) {
  std::string key;
  key.reserve(name.size() + 1 + labels.size());
  key.append(name);
  key.push_back('\0');
  key.append(labels);
  return key;
}

void AppendJsonString(std::ostringstream& os, const std::string& s) {
  std::string escaped;
  AppendEscapedStringBody(&escaped, s);
  os << '"' << escaped << '"';
}

const char* KindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "unknown";
}

}  // namespace

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // leaked
  return *registry;
}

MetricCell* MetricsRegistry::GetCell(std::string_view name,
                                     std::string_view labels, MetricKind kind,
                                     double unit_scale) {
  if (!IsValidMetricName(name)) {
    // An unregistrable name is a programming error, but aborting inside
    // instrumentation would be worse than losing the metric: log and hand
    // back an inert handle.
    PJOIN_LOG(kError) << "rejecting invalid metric name "
                      << QuoteEscaped(name);
    return nullptr;
  }
  Shard& shard = shards_[KeyHash(name, labels) % kShards];
  MutexLock lock(shard.mu);
  auto [it, inserted] = shard.cells.try_emplace(MakeKey(name, labels));
  if (inserted) {
    it->second = std::make_unique<MetricCell>();
    it->second->name = std::string(name);
    it->second->labels = std::string(labels);
    it->second->kind = kind;
    it->second->unit_scale = unit_scale;
    if (kind == MetricKind::kHistogram) {
      it->second->hist = std::make_unique<HistogramData>();
    }
  }
  // Re-registering under another kind would silently alias a counter and a
  // gauge onto one cell; make it a programming error instead.
  PJOIN_DCHECK(it->second->kind == kind);
  return it->second.get();
}

Counter MetricsRegistry::GetCounter(std::string_view name,
                                    std::string_view labels) {
  return Counter(GetCell(name, labels, MetricKind::kCounter));
}

Gauge MetricsRegistry::GetGauge(std::string_view name,
                                std::string_view labels) {
  return Gauge(GetCell(name, labels, MetricKind::kGauge));
}

Histogram MetricsRegistry::GetHistogram(std::string_view name,
                                        std::string_view labels,
                                        double unit_scale) {
  return Histogram(GetCell(name, labels, MetricKind::kHistogram, unit_scale));
}

std::vector<MetricSample> MetricsRegistry::Snapshot() const {
  std::vector<MetricSample> samples;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    for (const auto& [key, cell] : shard.cells) {
      MetricSample s;
      s.name = cell->name;
      s.labels = cell->labels;
      s.kind = cell->kind;
      s.unit_scale = cell->unit_scale;
      if (cell->kind == MetricKind::kHistogram) {
        const HistogramData& h = *cell->hist;
        s.value = h.count.load();
        s.sum = h.sum.load();
        int last = HistogramData::kNumBuckets - 1;
        while (last >= 0 &&
               h.buckets[last].load() == 0) {
          --last;
        }
        s.buckets.reserve(last + 1);
        for (int b = 0; b <= last; ++b) {
          s.buckets.push_back(h.buckets[b].load());
        }
      } else {
        s.value = cell->value.load();
      }
      samples.push_back(std::move(s));
    }
  }
  std::sort(samples.begin(), samples.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name != b.name ? a.name < b.name : a.labels < b.labels;
            });
  return samples;
}

std::string MetricsRegistry::ToJson() const {
  const std::vector<MetricSample> samples = Snapshot();
  std::ostringstream os;
  os << "{\"metrics\": [";
  for (size_t i = 0; i < samples.size(); ++i) {
    const MetricSample& s = samples[i];
    if (i > 0) os << ", ";
    os << "\n  {\"name\": ";
    AppendJsonString(os, s.name);
    os << ", \"labels\": ";
    AppendJsonString(os, s.labels);
    os << ", \"kind\": \"" << KindName(s.kind) << "\"";
    if (s.kind == MetricKind::kHistogram) {
      os << ", \"count\": " << s.value << ", \"sum\": " << s.sum
         << ", \"unit_scale\": " << s.unit_scale << ", \"buckets\": [";
      for (size_t b = 0; b < s.buckets.size(); ++b) {
        if (b > 0) os << ", ";
        os << s.buckets[b];
      }
      os << "]";
    } else {
      os << ", \"value\": " << s.value;
    }
    os << "}";
  }
  os << "\n]}\n";
  return os.str();
}

void MetricsRegistry::ResetForTest() {
  for (Shard& shard : shards_) {
    MutexLock lock(shard.mu);
    shard.cells.clear();
  }
}

}  // namespace obs
}  // namespace pjoin
