#include "obs/text_escape.h"

#include <cstdio>

namespace pjoin {
namespace obs {

void AppendEscapedStringBody(std::string* out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      case '\r':
        out->append("\\r");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

std::string QuoteEscaped(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  AppendEscapedStringBody(&out, s);
  out.push_back('"');
  return out;
}

bool IsValidMetricName(std::string_view name) {
  if (name.empty()) return false;
  const auto is_alpha = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
  };
  if (!is_alpha(name[0])) return false;
  for (const char c : name.substr(1)) {
    if (!is_alpha(c) && !(c >= '0' && c <= '9') && c != '.' && c != ':') {
      return false;
    }
  }
  return true;
}

}  // namespace obs
}  // namespace pjoin
