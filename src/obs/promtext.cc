#include "obs/promtext.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string_view>

#include "obs/text_escape.h"

namespace pjoin {
namespace obs {

namespace {

// Prometheus metric names admit [a-zA-Z0-9_:]; registry names additionally
// allow dots (the repo's native "stream_buffer.depth" style), which
// transliterate to underscores.
std::string SanitizeName(std::string_view name) {
  std::string out(name);
  for (char& c : out) {
    if (c == '.') c = '_';
  }
  return out;
}

void AppendDouble(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out->append(buf);
}

// Renders the repo's "k=v,k2=v2" label string as {k="v",k2="v2"}. `extra`
// (already rendered as `k="v"`) is appended last — used for histogram `le`.
void AppendLabels(std::string* out, std::string_view labels,
                  std::string_view extra = "") {
  if (labels.empty() && extra.empty()) return;
  out->push_back('{');
  bool first = true;
  size_t pos = 0;
  while (pos < labels.size()) {
    size_t comma = labels.find(',', pos);
    if (comma == std::string_view::npos) comma = labels.size();
    const std::string_view pair = labels.substr(pos, comma - pos);
    pos = comma + 1;
    if (pair.empty()) continue;
    const size_t eq = pair.find('=');
    const std::string_view key = pair.substr(0, eq);
    const std::string_view value =
        eq == std::string_view::npos ? std::string_view() : pair.substr(eq + 1);
    if (!first) out->push_back(',');
    first = false;
    out->append(key);
    out->append("=\"");
    AppendEscapedStringBody(out, value);
    out->push_back('"');
  }
  if (!extra.empty()) {
    if (!first) out->push_back(',');
    out->append(extra);
  }
  out->push_back('}');
}

const char* TypeName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:
      return "counter";
    case MetricKind::kGauge:
      return "gauge";
    case MetricKind::kHistogram:
      return "histogram";
  }
  return "untyped";
}

void AppendHistogram(std::string* out, const std::string& name,
                     const MetricSample& s) {
  int64_t cumulative = 0;
  for (size_t b = 0; b < s.buckets.size(); ++b) {
    cumulative += s.buckets[b];
    // Bucket 0 holds v <= 0; bucket b >= 1 holds [2^(b-1), 2^b - 1].
    // ldexp keeps bucket 63 (the BucketFor overflow bucket) from shifting
    // past the int64 range.
    const double le =
        b == 0 ? 0.0
               : (std::ldexp(1.0, static_cast<int>(b)) - 1.0) * s.unit_scale;
    std::string le_label = "le=\"";
    AppendDouble(&le_label, le);
    le_label.push_back('"');
    out->append(name);
    out->append("_bucket");
    AppendLabels(out, s.labels, le_label);
    out->push_back(' ');
    out->append(std::to_string(cumulative));
    out->push_back('\n');
  }
  out->append(name);
  out->append("_bucket");
  AppendLabels(out, s.labels, "le=\"+Inf\"");
  out->push_back(' ');
  out->append(std::to_string(s.value));
  out->push_back('\n');

  out->append(name);
  out->append("_sum");
  AppendLabels(out, s.labels);
  out->push_back(' ');
  AppendDouble(out, static_cast<double>(s.sum) * s.unit_scale);
  out->push_back('\n');

  out->append(name);
  out->append("_count");
  AppendLabels(out, s.labels);
  out->push_back(' ');
  out->append(std::to_string(s.value));
  out->push_back('\n');
}

}  // namespace

std::string WritePrometheusText(const std::vector<MetricSample>& samples) {
  // Re-sort by sanitized name so each output name forms one contiguous
  // group under a single # TYPE header even if sanitization reorders
  // ("a.b" vs "a_a") or merges names.
  std::vector<std::pair<std::string, const MetricSample*>> rows;
  rows.reserve(samples.size());
  for (const MetricSample& s : samples) {
    rows.emplace_back(SanitizeName(s.name), &s);
  }
  std::stable_sort(rows.begin(), rows.end(),
                   [](const auto& a, const auto& b) {
                     if (a.first != b.first) return a.first < b.first;
                     return a.second->labels < b.second->labels;
                   });

  std::string out;
  const std::string* open_name = nullptr;
  MetricKind open_kind = MetricKind::kCounter;
  for (const auto& [name, s] : rows) {
    if (open_name == nullptr || *open_name != name) {
      out.append("# TYPE ");
      out.append(name);
      out.push_back(' ');
      out.append(TypeName(s->kind));
      out.push_back('\n');
      open_name = &name;
      open_kind = s->kind;
    } else if (s->kind != open_kind) {
      // Two registry names merged by sanitization with conflicting kinds;
      // emitting both under one TYPE would be invalid exposition. Drop the
      // later kind — the registry itself forbids same-name conflicts, so
      // this only triggers for pathological dot/underscore collisions.
      continue;
    }
    if (s->kind == MetricKind::kHistogram) {
      AppendHistogram(&out, name, *s);
    } else {
      out.append(name);
      AppendLabels(&out, s->labels);
      out.push_back(' ');
      out.append(std::to_string(s->value));
      out.push_back('\n');
    }
  }
  return out;
}

std::string GlobalPrometheusText() {
  return WritePrometheusText(MetricsRegistry::Global().Snapshot());
}

}  // namespace obs
}  // namespace pjoin
