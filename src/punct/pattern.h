// Pattern: the per-attribute building block of a punctuation (paper §2.2).
//
// Five kinds: wildcard (*), constant, range, enumeration list, and the empty
// pattern. The "and" (intersection) of any two patterns is again a pattern.

#ifndef PJOIN_PUNCT_PATTERN_H_
#define PJOIN_PUNCT_PATTERN_H_

#include <string>
#include <vector>

#include "tuple/value.h"

namespace pjoin {

enum class PatternKind { kWildcard = 0, kConstant, kRange, kEnumList, kEmpty };

std::string_view PatternKindName(PatternKind kind);

/// An attribute pattern. Immutable and canonicalized at construction:
///  - an enumeration list is sorted and de-duplicated,
///  - an empty enumeration list becomes the empty pattern,
///  - a single-element enumeration list becomes a constant,
///  - a range with lo > hi becomes the empty pattern,
///  - a range with lo == hi becomes a constant.
/// With this canonical form, structural equality coincides with semantic
/// equality for all patterns the library constructs (ranges are treated as
/// continuous intervals, so a range is never equal to an enumeration list).
class Pattern {
 public:
  /// Matches every value.
  static Pattern Wildcard();
  /// Matches exactly `v`.
  static Pattern Constant(Value v);
  /// Matches all values in the closed interval [lo, hi]. lo and hi must have
  /// the same type.
  static Pattern Range(Value lo, Value hi);
  /// Matches any of the given values (all the same type).
  static Pattern EnumList(std::vector<Value> values);
  /// Matches nothing.
  static Pattern Empty();

  /// Default-constructed pattern is the wildcard.
  Pattern() : kind_(PatternKind::kWildcard) {}

  PatternKind kind() const { return kind_; }
  bool IsEmpty() const { return kind_ == PatternKind::kEmpty; }
  bool IsWildcard() const { return kind_ == PatternKind::kWildcard; }
  bool IsConstant() const { return kind_ == PatternKind::kConstant; }

  /// The constant value; kind() must be kConstant.
  const Value& constant() const;
  /// Range bounds; kind() must be kRange.
  const Value& lo() const;
  const Value& hi() const;
  /// Enumeration members (sorted); kind() must be kEnumList.
  const std::vector<Value>& members() const;

  /// True if `v` satisfies this pattern.
  bool Matches(const Value& v) const;

  /// Intersection of two patterns (the paper's "and"); always canonical.
  static Pattern And(const Pattern& a, const Pattern& b);

  /// True if every value matching `inner` also matches `outer`.
  static bool Covers(const Pattern& outer, const Pattern& inner);

  /// Approximate in-memory footprint in bytes.
  size_t ByteSize() const;

  std::string ToString() const;

  friend bool operator==(const Pattern& a, const Pattern& b) {
    return a.kind_ == b.kind_ && a.values_ == b.values_;
  }
  friend bool operator!=(const Pattern& a, const Pattern& b) {
    return !(a == b);
  }

 private:
  Pattern(PatternKind kind, std::vector<Value> values)
      : kind_(kind), values_(std::move(values)) {}

  PatternKind kind_;
  // kConstant: [v]; kRange: [lo, hi]; kEnumList: sorted members; else empty.
  std::vector<Value> values_;
};

}  // namespace pjoin

#endif  // PJOIN_PUNCT_PATTERN_H_
