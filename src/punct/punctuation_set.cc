#include "punct/punctuation_set.h"

#include <algorithm>

#include "common/macros.h"

namespace pjoin {

PunctuationSet::PunctuationSet(size_t attr_index, bool validate_prefix)
    : attr_index_(attr_index), validate_prefix_(validate_prefix) {}

bool PunctuationSet::PrefixOk(const Punctuation& punct) const {
  const Pattern& incoming = punct.pattern(attr_index_);
  for (const auto& [pid, entry] : entries_) {
    const Pattern& prior = entry.punct.pattern(attr_index_);
    const Pattern conj = Pattern::And(prior, incoming);
    if (!conj.IsEmpty() && conj != prior) return false;
  }
  return true;
}

Result<int64_t> PunctuationSet::Add(Punctuation punct, TimeMicros arrival) {
  PJOIN_DCHECK(attr_index_ < punct.num_patterns());
  if (validate_prefix_ && !PrefixOk(punct)) {
    return Status::FailedPrecondition(
        "punctuation violates the prefix condition: " + punct.ToString());
  }
  const int64_t pid = next_pid_++;
  const Pattern& attr_pattern = punct.pattern(attr_index_);
  if (attr_pattern.IsConstant()) {
    constant_index_[attr_pattern.constant()].push_back(pid);
  } else {
    nonconstant_pids_.push_back(pid);
  }
  PunctEntry entry;
  entry.pid = pid;
  entry.arrival = arrival;
  entry.key_only = true;
  for (size_t i = 0; i < punct.num_patterns(); ++i) {
    if (i != attr_index_ && !punct.pattern(i).IsWildcard()) {
      entry.key_only = false;
      break;
    }
  }
  entry.punct = std::move(punct);
  entries_.emplace(pid, std::move(entry));
  unapplied_purge_pids_.push_back(pid);
  unindexed_pids_.push_back(pid);
  return pid;
}

std::vector<int64_t> PunctuationSet::TakeUnappliedForPurge() {
  std::vector<int64_t> pids = std::move(unapplied_purge_pids_);
  unapplied_purge_pids_.clear();
  for (int64_t pid : pids) {
    PunctEntry* entry = Find(pid);
    if (entry != nullptr) entry->purge_applied = true;
  }
  return pids;
}

std::vector<int64_t> PunctuationSet::TakeUnindexed() {
  std::vector<int64_t> pids = std::move(unindexed_pids_);
  unindexed_pids_.clear();
  return pids;
}

bool PunctuationSet::SetMatch(const Tuple& t) const {
  auto it = constant_index_.find(t.field(attr_index_));
  if (it != constant_index_.end()) {
    for (int64_t pid : it->second) {
      const PunctEntry* entry = Find(pid);
      PJOIN_DCHECK(entry != nullptr);
      if (entry->punct.Matches(t)) return true;
    }
  }
  for (int64_t pid : nonconstant_pids_) {
    const PunctEntry* entry = Find(pid);
    PJOIN_DCHECK(entry != nullptr);
    if (entry->punct.Matches(t)) return true;
  }
  return false;
}

bool PunctuationSet::SetMatchKey(const Value& join_value) const {
  if (retained_constants_.count(join_value) > 0) return true;
  for (const Pattern& p : retained_patterns_) {
    if (p.Matches(join_value)) return true;
  }
  auto it = constant_index_.find(join_value);
  if (it != constant_index_.end()) {
    for (int64_t pid : it->second) {
      const PunctEntry* entry = Find(pid);
      PJOIN_DCHECK(entry != nullptr);
      if (entry->key_only) return true;
    }
  }
  for (int64_t pid : nonconstant_pids_) {
    const PunctEntry* entry = Find(pid);
    PJOIN_DCHECK(entry != nullptr);
    if (entry->key_only &&
        entry->punct.pattern(attr_index_).Matches(join_value)) {
      return true;
    }
  }
  return false;
}

PunctEntry* PunctuationSet::FindFirstMatch(const Tuple& t) {
  int64_t best = kNullPid;
  auto it = constant_index_.find(t.field(attr_index_));
  if (it != constant_index_.end()) {
    for (int64_t pid : it->second) {
      PunctEntry* entry = Find(pid);
      PJOIN_DCHECK(entry != nullptr);
      if (entry->punct.Matches(t) && (best == kNullPid || pid < best)) {
        best = pid;
      }
    }
  }
  for (int64_t pid : nonconstant_pids_) {
    PunctEntry* entry = Find(pid);
    PJOIN_DCHECK(entry != nullptr);
    if (entry->punct.Matches(t) && (best == kNullPid || pid < best)) {
      best = pid;
    }
  }
  return best == kNullPid ? nullptr : Find(best);
}

PunctEntry* PunctuationSet::Find(int64_t pid) {
  auto it = entries_.find(pid);
  return it == entries_.end() ? nullptr : &it->second;
}

const PunctEntry* PunctuationSet::Find(int64_t pid) const {
  auto it = entries_.find(pid);
  return it == entries_.end() ? nullptr : &it->second;
}

void PunctuationSet::Remove(int64_t pid) {
  auto it = entries_.find(pid);
  if (it == entries_.end()) return;
  const Pattern& attr_pattern = it->second.punct.pattern(attr_index_);
  if (attr_pattern.IsConstant()) {
    auto ci = constant_index_.find(attr_pattern.constant());
    if (ci != constant_index_.end()) {
      auto& pids = ci->second;
      pids.erase(std::remove(pids.begin(), pids.end(), pid), pids.end());
      if (pids.empty()) constant_index_.erase(ci);
    }
  } else {
    nonconstant_pids_.erase(
        std::remove(nonconstant_pids_.begin(), nonconstant_pids_.end(), pid),
        nonconstant_pids_.end());
  }
  entries_.erase(it);
}

void PunctuationSet::RemoveRetainingCoverage(int64_t pid) {
  auto it = entries_.find(pid);
  if (it == entries_.end()) return;
  if (it->second.key_only) {
    const Pattern& attr_pattern = it->second.punct.pattern(attr_index_);
    if (attr_pattern.IsConstant()) {
      retained_constants_.insert(attr_pattern.constant());
    } else if (!attr_pattern.IsEmpty()) {
      retained_patterns_.push_back(attr_pattern);
    }
  }
  Remove(pid);
}

std::vector<int64_t> PunctuationSet::PidsInOrder() const {
  std::vector<int64_t> pids;
  pids.reserve(entries_.size());
  for (const auto& [pid, entry] : entries_) pids.push_back(pid);
  return pids;
}

size_t PunctuationSet::ByteSize() const {
  size_t total = sizeof(PunctuationSet);
  for (const auto& [pid, entry] : entries_) {
    total += sizeof(PunctEntry) + entry.punct.ByteSize();
  }
  for (const auto& v : retained_constants_) total += v.ByteSize();
  for (const auto& p : retained_patterns_) total += p.ByteSize();
  return total;
}

}  // namespace pjoin
