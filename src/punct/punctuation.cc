#include "punct/punctuation.h"

#include <sstream>

#include "common/macros.h"

namespace pjoin {

Punctuation::Punctuation(std::vector<Pattern> patterns)
    : patterns_(std::move(patterns)) {}

Punctuation Punctuation::ForAttribute(size_t num_fields, size_t attr,
                                      Pattern pattern) {
  PJOIN_DCHECK(attr < num_fields);
  std::vector<Pattern> patterns(num_fields, Pattern::Wildcard());
  patterns[attr] = std::move(pattern);
  return Punctuation(std::move(patterns));
}

Punctuation Punctuation::And(const Punctuation& a, const Punctuation& b) {
  PJOIN_DCHECK(a.num_patterns() == b.num_patterns());
  std::vector<Pattern> patterns;
  patterns.reserve(a.num_patterns());
  for (size_t i = 0; i < a.num_patterns(); ++i) {
    patterns.push_back(Pattern::And(a.patterns_[i], b.patterns_[i]));
  }
  return Punctuation(std::move(patterns));
}

const Pattern& Punctuation::pattern(size_t i) const {
  PJOIN_DCHECK(i < patterns_.size());
  return patterns_[i];
}

bool Punctuation::Matches(const Tuple& t) const {
  PJOIN_DCHECK(t.num_fields() == patterns_.size());
  for (size_t i = 0; i < patterns_.size(); ++i) {
    if (!patterns_[i].Matches(t.field(i))) return false;
  }
  return true;
}

bool Punctuation::IsEmpty() const {
  for (const auto& p : patterns_) {
    if (p.IsEmpty()) return true;
  }
  return false;
}

bool Punctuation::IsAllWildcard() const {
  for (const auto& p : patterns_) {
    if (!p.IsWildcard()) return false;
  }
  return true;
}

size_t Punctuation::ByteSize() const {
  size_t total = sizeof(Punctuation);
  for (const auto& p : patterns_) total += p.ByteSize();
  return total;
}

std::string Punctuation::ToString() const {
  std::ostringstream os;
  os << "<";
  for (size_t i = 0; i < patterns_.size(); ++i) {
    if (i > 0) os << ", ";
    os << patterns_[i].ToString();
  }
  os << ">";
  return os.str();
}

}  // namespace pjoin
