// PunctuationSet: the punctuations of one input stream that have arrived but
// not yet been propagated (paper §3.1, Fig 2a).
//
// The set supports the two operations the join needs on its hot path:
//   - setMatch(t, PS): does any punctuation in the set match tuple t?
//   - first-match lookup for the propagation index (assigning pids).
// Constant patterns on the join attribute (by far the common case) are
// indexed in a hash map; other pattern kinds are scanned linearly.

#ifndef PJOIN_PUNCT_PUNCTUATION_SET_H_
#define PJOIN_PUNCT_PUNCTUATION_SET_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "punct/punctuation.h"

namespace pjoin {

/// Sentinel pid for "tuple not covered by any punctuation" (paper Fig 2b).
constexpr int64_t kNullPid = -1;

/// One punctuation plus the propagation-index bookkeeping of paper Fig 2a:
/// `match_count` counts tuples in the same state that carry this pid, and
/// `indexed` records whether index building has processed this punctuation.
struct PunctEntry {
  int64_t pid = kNullPid;
  Punctuation punct;
  TimeMicros arrival = 0;
  int64_t match_count = 0;
  bool indexed = false;
  /// True when every pattern other than the join attribute is the wildcard.
  /// Only such punctuations may purge the *opposite* state: they alone
  /// guarantee that no future tuple of this stream carries a covered key.
  bool key_only = false;
  /// True once the state purge has applied this punctuation (used by the
  /// indexed purge mode).
  bool purge_applied = false;
};

class PunctuationSet {
 public:
  /// `attr_index` is the join attribute the hash index keys on.
  /// `validate_prefix` enforces the paper's §2.2 assumption: for punctuations
  /// p_i before p_j, Ptn_i ∧ Ptn_j ∈ {∅, Ptn_i} (on the join attribute).
  explicit PunctuationSet(size_t attr_index, bool validate_prefix = false);

  /// Adds a punctuation; returns its pid (pids increase in arrival order).
  /// Fails with FailedPrecondition if prefix validation is on and violated.
  Result<int64_t> Add(Punctuation punct, TimeMicros arrival);

  /// setMatch(t, PS): true if some punctuation in the set matches `t`.
  [[nodiscard]] bool SetMatch(const Tuple& t) const;

  /// Cross-stream setMatch on the join attribute (paper §2.2: "we only focus
  /// on exploiting punctuations over the join attribute"): true if some
  /// *key-only* punctuation's join-attribute pattern covers `join_value`.
  /// This is the test used to purge the opposite state and to drop arriving
  /// opposite-stream tuples on the fly.
  [[nodiscard]] bool SetMatchKey(const Value& join_value) const;

  /// The earliest-arrived punctuation matching `t`, or nullptr. Used to
  /// assign pids when building the propagation index.
  PunctEntry* FindFirstMatch(const Tuple& t);

  /// Entry by pid, or nullptr if absent (e.g. already propagated).
  PunctEntry* Find(int64_t pid);
  const PunctEntry* Find(int64_t pid) const;

  /// Removes a punctuation (after propagation).
  void Remove(int64_t pid);

  /// Removes a punctuation but retains its key coverage: SetMatchKey keeps
  /// reporting its join-attribute pattern as covered. Used when a
  /// punctuation is propagated — the guarantee "no more tuples with these
  /// keys" holds forever, and the purge / on-the-fly-drop checks of the
  /// *opposite* stream (or, in the n-ary join, of all other streams) still
  /// rely on it.
  void RemoveRetainingCoverage(int64_t pid);

  /// Pids in arrival order.
  std::vector<int64_t> PidsInOrder() const;

  /// Drains the queue of punctuations added since the last call, in arrival
  /// order (pids of already-removed punctuations are skipped by callers via
  /// Find). Used by the state purge to touch each punctuation once instead
  /// of rescanning the whole set, and marks them purge_applied.
  std::vector<int64_t> TakeUnappliedForPurge();

  /// Drains the queue of punctuations that index building has not yet
  /// processed, in arrival order. BuildIndex marks them indexed.
  std::vector<int64_t> TakeUnindexed();

  /// Visits entries in arrival order; `fn` may mutate the entry but must not
  /// add or remove entries.
  template <typename Fn>
  void ForEach(Fn fn) {
    for (auto& [pid, entry] : entries_) fn(entry);
  }

  [[nodiscard]] size_t size() const { return entries_.size(); }
  [[nodiscard]] bool empty() const { return entries_.empty(); }

  /// Approximate in-memory footprint in bytes.
  size_t ByteSize() const;

 private:
  bool PrefixOk(const Punctuation& punct) const;

  size_t attr_index_;
  bool validate_prefix_;
  int64_t next_pid_ = 0;
  // Ordered by pid == arrival order.
  std::map<int64_t, PunctEntry> entries_;
  // Constant join-attribute patterns: value -> pids carrying it.
  std::unordered_map<Value, std::vector<int64_t>, ValueHash> constant_index_;
  // Pids whose join-attribute pattern is not a constant.
  std::vector<int64_t> nonconstant_pids_;
  // Key coverage retained from propagated key-only punctuations.
  std::unordered_set<Value, ValueHash> retained_constants_;
  std::vector<Pattern> retained_patterns_;
  // Work queues consumed by the purge and index-build components.
  std::vector<int64_t> unapplied_purge_pids_;
  std::vector<int64_t> unindexed_pids_;
};

}  // namespace pjoin

#endif  // PJOIN_PUNCT_PUNCTUATION_SET_H_
