#include "punct/pattern.h"

#include <algorithm>
#include <sstream>

#include "common/macros.h"

namespace pjoin {

std::string_view PatternKindName(PatternKind kind) {
  switch (kind) {
    case PatternKind::kWildcard:
      return "wildcard";
    case PatternKind::kConstant:
      return "constant";
    case PatternKind::kRange:
      return "range";
    case PatternKind::kEnumList:
      return "enum";
    case PatternKind::kEmpty:
      return "empty";
  }
  return "?";
}

Pattern Pattern::Wildcard() { return Pattern(PatternKind::kWildcard, {}); }

Pattern Pattern::Constant(Value v) {
  return Pattern(PatternKind::kConstant, {std::move(v)});
}

Pattern Pattern::Range(Value lo, Value hi) {
  PJOIN_DCHECK(lo.type() == hi.type());
  if (hi < lo) return Empty();
  if (lo == hi) return Constant(std::move(lo));
  return Pattern(PatternKind::kRange, {std::move(lo), std::move(hi)});
}

Pattern Pattern::EnumList(std::vector<Value> values) {
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  if (values.empty()) return Empty();
  if (values.size() == 1) return Constant(std::move(values[0]));
  return Pattern(PatternKind::kEnumList, std::move(values));
}

Pattern Pattern::Empty() { return Pattern(PatternKind::kEmpty, {}); }

const Value& Pattern::constant() const {
  PJOIN_DCHECK(kind_ == PatternKind::kConstant);
  return values_[0];
}

const Value& Pattern::lo() const {
  PJOIN_DCHECK(kind_ == PatternKind::kRange);
  return values_[0];
}

const Value& Pattern::hi() const {
  PJOIN_DCHECK(kind_ == PatternKind::kRange);
  return values_[1];
}

const std::vector<Value>& Pattern::members() const {
  PJOIN_DCHECK(kind_ == PatternKind::kEnumList);
  return values_;
}

bool Pattern::Matches(const Value& v) const {
  switch (kind_) {
    case PatternKind::kWildcard:
      return true;
    case PatternKind::kConstant:
      return v == values_[0];
    case PatternKind::kRange:
      return values_[0] <= v && v <= values_[1];
    case PatternKind::kEnumList:
      return std::binary_search(values_.begin(), values_.end(), v);
    case PatternKind::kEmpty:
      return false;
  }
  return false;
}

Pattern Pattern::And(const Pattern& a, const Pattern& b) {
  if (a.IsEmpty() || b.IsEmpty()) return Empty();
  if (a.IsWildcard()) return b;
  if (b.IsWildcard()) return a;

  // A constant intersects with anything via a membership test.
  if (a.kind_ == PatternKind::kConstant) {
    return b.Matches(a.values_[0]) ? a : Empty();
  }
  if (b.kind_ == PatternKind::kConstant) {
    return a.Matches(b.values_[0]) ? b : Empty();
  }

  if (a.kind_ == PatternKind::kRange && b.kind_ == PatternKind::kRange) {
    const Value& lo = std::max(a.values_[0], b.values_[0]);
    const Value& hi = std::min(a.values_[1], b.values_[1]);
    return Range(lo, hi);
  }

  // Enumeration list against range or enumeration list: filter members.
  const Pattern& en = (a.kind_ == PatternKind::kEnumList) ? a : b;
  const Pattern& other = (a.kind_ == PatternKind::kEnumList) ? b : a;
  std::vector<Value> kept;
  for (const Value& v : en.values_) {
    if (other.Matches(v)) kept.push_back(v);
  }
  return EnumList(std::move(kept));
}

bool Pattern::Covers(const Pattern& outer, const Pattern& inner) {
  if (inner.IsEmpty() || outer.IsWildcard()) return true;
  if (outer.IsEmpty()) return false;
  switch (inner.kind_) {
    case PatternKind::kWildcard:
      return false;  // outer is not a wildcard here
    case PatternKind::kConstant:
      return outer.Matches(inner.values_[0]);
    case PatternKind::kRange:
      // Ranges are continuous; only another range (or wildcard) can cover one.
      return outer.kind_ == PatternKind::kRange &&
             outer.values_[0] <= inner.values_[0] &&
             inner.values_[1] <= outer.values_[1];
    case PatternKind::kEnumList:
      return std::all_of(
          inner.values_.begin(), inner.values_.end(),
          [&outer](const Value& v) { return outer.Matches(v); });
    case PatternKind::kEmpty:
      return true;
  }
  return false;
}

size_t Pattern::ByteSize() const {
  size_t total = sizeof(Pattern);
  for (const auto& v : values_) total += v.ByteSize();
  return total;
}

std::string Pattern::ToString() const {
  switch (kind_) {
    case PatternKind::kWildcard:
      return "*";
    case PatternKind::kConstant:
      return values_[0].ToString();
    case PatternKind::kRange: {
      std::string out = "[";
      out += values_[0].ToString();
      out += ", ";
      out += values_[1].ToString();
      out += "]";
      return out;
    }
    case PatternKind::kEnumList: {
      std::ostringstream os;
      os << "{";
      for (size_t i = 0; i < values_.size(); ++i) {
        if (i > 0) os << ", ";
        os << values_[i].ToString();
      }
      os << "}";
      return os.str();
    }
    case PatternKind::kEmpty:
      return "()";
  }
  return "?";
}

}  // namespace pjoin
