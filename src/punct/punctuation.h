// Punctuation: an ordered set of patterns, one per attribute (paper §2.2).
//
// A punctuation asserts that no tuple arriving after it will match all of its
// patterns. A tuple t "matches" punctuation p — match(t, p) — when every
// field of t satisfies the corresponding pattern.

#ifndef PJOIN_PUNCT_PUNCTUATION_H_
#define PJOIN_PUNCT_PUNCTUATION_H_

#include <string>
#include <vector>

#include "punct/pattern.h"
#include "tuple/tuple.h"

namespace pjoin {

class Punctuation {
 public:
  Punctuation() = default;
  /// One pattern per attribute of the stream's schema.
  explicit Punctuation(std::vector<Pattern> patterns);

  /// A punctuation that constrains only attribute `attr` (all other
  /// attributes wildcard) of a `num_fields`-wide schema.
  static Punctuation ForAttribute(size_t num_fields, size_t attr,
                                  Pattern pattern);

  /// Pairwise "and"; both punctuations must have the same width.
  static Punctuation And(const Punctuation& a, const Punctuation& b);

  size_t num_patterns() const { return patterns_.size(); }
  const Pattern& pattern(size_t i) const;
  const std::vector<Pattern>& patterns() const { return patterns_; }

  /// match(t, p): every field of `t` satisfies the corresponding pattern.
  bool Matches(const Tuple& t) const;

  /// True if some pattern is empty, so no tuple can ever match.
  bool IsEmpty() const;
  /// True if every pattern is the wildcard (the punctuation says nothing).
  bool IsAllWildcard() const;

  /// Approximate in-memory footprint in bytes.
  size_t ByteSize() const;

  std::string ToString() const;

  friend bool operator==(const Punctuation& a, const Punctuation& b) {
    return a.patterns_ == b.patterns_;
  }
  friend bool operator!=(const Punctuation& a, const Punctuation& b) {
    return !(a == b);
  }

 private:
  std::vector<Pattern> patterns_;
};

}  // namespace pjoin

#endif  // PJOIN_PUNCT_PUNCTUATION_H_
