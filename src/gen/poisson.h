// PoissonProcess: arrival-time generator with exponential inter-arrivals.

#ifndef PJOIN_GEN_POISSON_H_
#define PJOIN_GEN_POISSON_H_

#include "common/clock.h"
#include "common/rng.h"

namespace pjoin {

/// Generates the arrival times of a Poisson process with a configurable mean
/// inter-arrival time (the paper uses a mean of 2 ms for tuples).
class PoissonProcess {
 public:
  /// `mean_interarrival_micros` must be > 0.
  PoissonProcess(double mean_interarrival_micros, uint64_t seed);

  /// The arrival time of the next event (monotone increasing).
  TimeMicros NextArrival();

  /// The last arrival returned (0 before the first call).
  TimeMicros last_arrival() const { return now_; }

 private:
  double mean_;
  Rng rng_;
  TimeMicros now_ = 0;
};

}  // namespace pjoin

#endif  // PJOIN_GEN_POISSON_H_
