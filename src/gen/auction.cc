#include "gen/auction.h"

#include "common/macros.h"
#include "common/rng.h"
#include "gen/domain.h"
#include "gen/poisson.h"
#include "tuple/tuple.h"

namespace pjoin {
namespace {

Punctuation ItemPunct(size_t num_fields, int64_t item_id) {
  return Punctuation::ForAttribute(num_fields, 0,
                                   Pattern::Constant(Value(item_id)));
}

}  // namespace

AuctionStreams GenerateAuction(const AuctionSpec& spec, uint64_t seed) {
  PJOIN_DCHECK(spec.open_window > 0);
  PJOIN_DCHECK(spec.num_bids >= 0);

  AuctionStreams out;
  out.open_schema = Schema::Make({{"item_id", ValueType::kInt64},
                                  {"seller", ValueType::kInt64},
                                  {"reserve", ValueType::kInt64}});
  out.bid_schema = Schema::Make({{"item_id", ValueType::kInt64},
                                 {"bidder", ValueType::kInt64},
                                 {"increase", ValueType::kFloat64}});

  Rng rng(seed);
  SharedDomain domain(spec.open_window);
  PoissonProcess bids(spec.bid_mean_interarrival_micros, seed ^ 0xB1D5ULL);

  int64_t open_seq = 0;
  int64_t bid_seq = 0;
  int64_t items_opened = 0;

  auto open_item = [&](TimeMicros when) {
    const int64_t item_id = items_opened++;
    Tuple t(out.open_schema,
            {Value(item_id),
             Value(static_cast<int64_t>(rng.NextBounded(
                 static_cast<uint64_t>(std::max<int64_t>(1,
                                                          spec.num_sellers))))),
             Value(static_cast<int64_t>(rng.NextBounded(1000)) + 1)});
    out.open.push_back(StreamElement::MakeTuple(std::move(t), when, open_seq++));
    if (spec.open_stream_punctuations) {
      out.open.push_back(StreamElement::MakePunctuation(
          ItemPunct(out.open_schema->num_fields(), item_id), when, open_seq++));
    }
  };

  auto close_item = [&](TimeMicros when) {
    const int64_t item_id = domain.CloseOldest();
    out.bid.push_back(StreamElement::MakePunctuation(
        ItemPunct(out.bid_schema->num_fields(), item_id), when, bid_seq++));
    open_item(when);  // a new item takes the slot
  };

  // The initial window of items opens at time 0.
  for (int64_t i = 0; i < spec.open_window; ++i) open_item(0);

  double close_countdown =
      spec.close_mean_interarrival_bids > 0
          ? rng.NextExponential(spec.close_mean_interarrival_bids)
          : -1.0;

  for (int64_t n = 0; n < spec.num_bids; ++n) {
    const TimeMicros when = bids.NextArrival();
    Tuple t(out.bid_schema,
            {Value(domain.SampleOpenKey(rng)),
             Value(static_cast<int64_t>(rng.NextBounded(
                 static_cast<uint64_t>(std::max<int64_t>(1,
                                                          spec.num_bidders))))),
             Value(1.0 + 9.0 * rng.NextDouble())});
    out.bid.push_back(StreamElement::MakeTuple(std::move(t), when, bid_seq++));
    if (spec.close_mean_interarrival_bids > 0) {
      close_countdown -= 1.0;
      while (close_countdown <= 0.0) {
        close_item(when);
        close_countdown +=
            rng.NextExponential(spec.close_mean_interarrival_bids);
      }
    }
  }

  const TimeMicros end_time = bids.last_arrival();
  if (spec.flush_at_end) {
    // Close every remaining open item so downstream state fully drains.
    const int64_t still_open = items_opened - domain.closed_frontier();
    for (int64_t i = 0; i < still_open; ++i) {
      const int64_t item_id = domain.CloseOldest();
      if (item_id >= items_opened) break;
      out.bid.push_back(StreamElement::MakePunctuation(
          ItemPunct(out.bid_schema->num_fields(), item_id), end_time,
          bid_seq++));
    }
  }

  out.open.push_back(StreamElement::MakeEndOfStream(end_time, open_seq++));
  out.bid.push_back(StreamElement::MakeEndOfStream(end_time, bid_seq++));
  return out;
}

}  // namespace pjoin
