// SharedDomain: the universe of join-key values shared by the two streams of
// an experiment, modelled on the paper's online-auction example.
//
// Keys are integer ids 0, 1, 2, ... A fixed-size window of `window_size` keys
// is "open" (items up for auction) at any moment. Both streams sample tuple
// keys uniformly from the open window, so the join is many-to-many with
// stable selectivity. Closing always retires the *oldest* open key and opens
// the next id, which is what makes constant-pattern punctuations valid: once
// a key is closed, no generator will ever sample it again.

#ifndef PJOIN_GEN_DOMAIN_H_
#define PJOIN_GEN_DOMAIN_H_

#include <cstdint>

#include "common/macros.h"
#include "common/rng.h"

namespace pjoin {

class SharedDomain {
 public:
  /// Opens keys [0, window_size).
  explicit SharedDomain(int64_t window_size) : window_size_(window_size) {
    PJOIN_DCHECK(window_size > 0);
  }

  /// Uniformly samples one currently open key.
  int64_t SampleOpenKey(Rng& rng) const {
    return closed_frontier_ +
           static_cast<int64_t>(rng.NextBounded(
               static_cast<uint64_t>(window_size_)));
  }

  /// Closes the oldest open key (and opens the next id); returns the closed
  /// key.
  int64_t CloseOldest() { return closed_frontier_++; }

  /// Keys below this are closed and will never be sampled again.
  int64_t closed_frontier() const { return closed_frontier_; }
  /// One past the largest key that has ever been open.
  int64_t open_end() const { return closed_frontier_ + window_size_; }
  int64_t window_size() const { return window_size_; }

  bool IsClosed(int64_t key) const { return key < closed_frontier_; }

 private:
  int64_t window_size_;
  int64_t closed_frontier_ = 0;
};

}  // namespace pjoin

#endif  // PJOIN_GEN_DOMAIN_H_
