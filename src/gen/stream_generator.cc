#include "gen/stream_generator.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "common/rng.h"
#include "gen/poisson.h"
#include "tuple/tuple.h"

namespace pjoin {

int64_t GeneratedStreams::NumTuples(
    const std::vector<StreamElement>& s) const {
  return std::count_if(s.begin(), s.end(),
                       [](const StreamElement& e) { return e.is_tuple(); });
}

int64_t GeneratedStreams::NumPunctuations(
    const std::vector<StreamElement>& s) const {
  return std::count_if(
      s.begin(), s.end(),
      [](const StreamElement& e) { return e.is_punctuation(); });
}

namespace {

// Mutable generation state of one stream.
struct StreamState {
  const StreamSpec* spec;
  SchemaPtr schema;
  PoissonProcess arrivals;
  PunctuationEmitter emitter;
  std::vector<StreamElement>* out;
  TimeMicros next_tuple_time = 0;
  int64_t tuples_emitted = 0;
  int64_t seq = 0;
  // Continuous countdown (in tuples) until the next punctuation; only
  // meaningful when punctuations are enabled.
  double punct_countdown = 0.0;

  bool punctuated() const { return spec->punct_mean_interarrival_tuples > 0; }
  bool done() const { return tuples_emitted >= spec->num_tuples; }
};

// Draws an offset in [0, n) with P(i) proportional to 1/(i+1)^s via
// inverse-CDF sampling over the (small) open window.
int64_t SampleZipfOffset(Rng& rng, int64_t n, double s) {
  double total = 0.0;
  for (int64_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
  }
  double target = rng.NextDouble() * total;
  for (int64_t i = 0; i < n; ++i) {
    target -= 1.0 / std::pow(static_cast<double>(i + 1), s);
    if (target <= 0.0) return i;
  }
  return n - 1;
}

void EmitTuple(StreamState& s, SharedDomain& domain, Rng& rng) {
  int64_t key;
  if (s.spec->clustered) {
    key = domain.closed_frontier();
  } else if (s.spec->zipf_s > 0.0) {
    // Offset 0 = the newest open key (hottest).
    const int64_t offset =
        SampleZipfOffset(rng, domain.window_size(), s.spec->zipf_s);
    key = domain.open_end() - 1 - offset;
  } else {
    key = domain.SampleOpenKey(rng);
  }
  const int64_t payload =
      static_cast<int64_t>(rng.NextBounded(
          static_cast<uint64_t>(std::max<int64_t>(1, s.spec->payload_domain))));
  Tuple t(s.schema, {Value(key), Value(payload)});
  s.out->push_back(
      StreamElement::MakeTuple(std::move(t), s.next_tuple_time, s.seq++));
  ++s.tuples_emitted;
}

void MaybeEmitPunctuations(StreamState& s, SharedDomain& domain, Rng& rng) {
  if (!s.punctuated()) return;
  s.punct_countdown -= 1.0;
  if (s.spec->clustered) {
    // Cluster-boundary punctuation (k-constraint semantics): the countdown
    // paces cluster lengths; when it fires, the current cluster's key
    // closes, and the stream immediately punctuates every key the closure
    // frontier has passed.
    while (s.punct_countdown <= 0.0) {
      domain.CloseOldest();
      s.punct_countdown +=
          rng.NextExponential(s.spec->punct_mean_interarrival_tuples);
    }
    while (s.emitter.next_to_punctuate() < domain.closed_frontier()) {
      Punctuation p = s.emitter.Emit(domain);
      s.out->push_back(StreamElement::MakePunctuation(
          std::move(p), s.arrivals.last_arrival(), s.seq++));
    }
    return;
  }
  while (s.punct_countdown <= 0.0) {
    Punctuation p = s.emitter.Emit(domain);
    s.out->push_back(StreamElement::MakePunctuation(
        std::move(p), s.arrivals.last_arrival(), s.seq++));
    s.punct_countdown +=
        rng.NextExponential(s.spec->punct_mean_interarrival_tuples);
  }
}

void Finish(StreamState& s, SharedDomain& domain) {
  const TimeMicros end_time = s.arrivals.last_arrival();
  if (s.spec->flush_punctuations_at_end && s.punctuated()) {
    auto flush = s.emitter.EmitFlush(domain, domain.open_end());
    if (flush.has_value()) {
      s.out->push_back(StreamElement::MakePunctuation(std::move(*flush),
                                                      end_time, s.seq++));
    }
  }
  s.out->push_back(StreamElement::MakeEndOfStream(end_time, s.seq++));
}

}  // namespace

GeneratedStreams GenerateStreams(const DomainSpec& domain_spec,
                                 const StreamSpec& spec_a,
                                 const StreamSpec& spec_b, uint64_t seed) {
  GeneratedStreams result;
  result.schema_a = Schema::Make({{"key", ValueType::kInt64},
                                  {spec_a.payload_name, ValueType::kInt64}});
  result.schema_b = Schema::Make({{"key", ValueType::kInt64},
                                  {spec_b.payload_name, ValueType::kInt64}});

  SharedDomain domain(domain_spec.window_size);
  Rng rng(seed);

  StreamState a{&spec_a,
                result.schema_a,
                PoissonProcess(spec_a.tuple_mean_interarrival_micros,
                               seed ^ 0xA11CEULL),
                PunctuationEmitter(spec_a.punct_style, 2, 0,
                                   spec_a.punct_batch),
                &result.a};
  StreamState b{&spec_b,
                result.schema_b,
                PoissonProcess(spec_b.tuple_mean_interarrival_micros,
                               seed ^ 0xB0B00ULL),
                PunctuationEmitter(spec_b.punct_style, 2, 0,
                                   spec_b.punct_batch),
                &result.b};

  // Prime the punctuation countdowns and first tuple arrivals.
  for (StreamState* s : {&a, &b}) {
    if (s->punctuated()) {
      s->punct_countdown =
          rng.NextExponential(s->spec->punct_mean_interarrival_tuples);
    }
    if (!s->done()) s->next_tuple_time = s->arrivals.NextArrival();
  }

  // Merged-time simulation: always advance the stream whose next tuple
  // arrives first, so SharedDomain mutations happen in global time order.
  while (!a.done() || !b.done()) {
    StreamState* s;
    if (a.done()) {
      s = &b;
    } else if (b.done()) {
      s = &a;
    } else {
      s = (a.next_tuple_time <= b.next_tuple_time) ? &a : &b;
    }
    EmitTuple(*s, domain, rng);
    MaybeEmitPunctuations(*s, domain, rng);
    if (!s->done()) s->next_tuple_time = s->arrivals.NextArrival();
  }

  Finish(a, domain);
  Finish(b, domain);
  return result;
}

}  // namespace pjoin
