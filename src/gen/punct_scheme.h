// PunctuationEmitter: per-stream punctuation scheme over a SharedDomain.
//
// Each stream announces closed keys at its own pace (the experiment's
// "punctuation inter-arrival"). A punctuation event covers the oldest keys
// this stream has not punctuated yet — as a constant pattern (one key per
// event, the paper's default), or as a range / enumeration-list pattern
// covering a batch of keys.

#ifndef PJOIN_GEN_PUNCT_SCHEME_H_
#define PJOIN_GEN_PUNCT_SCHEME_H_

#include <optional>

#include "gen/domain.h"
#include "punct/punctuation.h"

namespace pjoin {

/// Which pattern kind a stream's punctuations use on the join attribute.
enum class PunctStyle { kConstant = 0, kRange, kEnumList };

class PunctuationEmitter {
 public:
  /// `num_fields`/`attr` describe where the join key lives in the stream's
  /// schema. `batch` is the number of keys covered per punctuation for the
  /// range / enum styles (must be 1 for the constant style).
  PunctuationEmitter(PunctStyle style, size_t num_fields, size_t attr,
                     int64_t batch = 1);

  /// Produces the next punctuation for this stream, closing keys in `domain`
  /// if this stream is the first to announce them. Never returns an invalid
  /// punctuation: every covered key is closed before the call returns.
  Punctuation Emit(SharedDomain& domain);

  /// Punctuations covering every key below `end` that this stream has not
  /// punctuated yet (used to flush at end of stream). Keys in [frontier, end)
  /// are closed as a side effect.
  std::optional<Punctuation> EmitFlush(SharedDomain& domain, int64_t end);

  /// The smallest key this stream has not yet punctuated.
  int64_t next_to_punctuate() const { return next_; }

 private:
  /// Closes keys in `domain` until `key` is closed.
  static void EnsureClosed(SharedDomain& domain, int64_t key);

  Punctuation MakePunct(int64_t lo, int64_t hi) const;

  PunctStyle style_;
  size_t num_fields_;
  size_t attr_;
  int64_t batch_;
  int64_t next_ = 0;
};

}  // namespace pjoin

#endif  // PJOIN_GEN_PUNCT_SCHEME_H_
