#include "gen/poisson.h"

#include <cmath>

#include "common/macros.h"

namespace pjoin {

PoissonProcess::PoissonProcess(double mean_interarrival_micros, uint64_t seed)
    : mean_(mean_interarrival_micros), rng_(seed) {
  PJOIN_DCHECK(mean_ > 0.0);
}

TimeMicros PoissonProcess::NextArrival() {
  const double gap = rng_.NextExponential(mean_);
  // Round up so arrivals strictly advance even for tiny gaps.
  now_ += std::max<TimeMicros>(1, static_cast<TimeMicros>(std::llround(gap)));
  return now_;
}

}  // namespace pjoin
