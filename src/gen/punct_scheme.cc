#include "gen/punct_scheme.h"

#include "common/macros.h"

namespace pjoin {

PunctuationEmitter::PunctuationEmitter(PunctStyle style, size_t num_fields,
                                       size_t attr, int64_t batch)
    : style_(style), num_fields_(num_fields), attr_(attr), batch_(batch) {
  PJOIN_DCHECK(attr < num_fields);
  PJOIN_DCHECK(batch >= 1);
  PJOIN_DCHECK(style != PunctStyle::kConstant || batch == 1);
}

void PunctuationEmitter::EnsureClosed(SharedDomain& domain, int64_t key) {
  while (!domain.IsClosed(key)) domain.CloseOldest();
}

Punctuation PunctuationEmitter::MakePunct(int64_t lo, int64_t hi) const {
  Pattern pattern;
  switch (style_) {
    case PunctStyle::kConstant:
      PJOIN_DCHECK(lo == hi);
      pattern = Pattern::Constant(Value(lo));
      break;
    case PunctStyle::kRange:
      pattern = Pattern::Range(Value(lo), Value(hi));
      break;
    case PunctStyle::kEnumList: {
      std::vector<Value> members;
      members.reserve(static_cast<size_t>(hi - lo + 1));
      for (int64_t k = lo; k <= hi; ++k) members.emplace_back(k);
      pattern = Pattern::EnumList(std::move(members));
      break;
    }
  }
  return Punctuation::ForAttribute(num_fields_, attr_, std::move(pattern));
}

Punctuation PunctuationEmitter::Emit(SharedDomain& domain) {
  const int64_t lo = next_;
  const int64_t hi = next_ + batch_ - 1;
  EnsureClosed(domain, hi);
  next_ = hi + 1;
  return MakePunct(lo, hi);
}

std::optional<Punctuation> PunctuationEmitter::EmitFlush(SharedDomain& domain,
                                                         int64_t end) {
  if (next_ >= end) return std::nullopt;
  const int64_t lo = next_;
  const int64_t hi = end - 1;
  EnsureClosed(domain, hi);
  next_ = end;
  if (lo == hi) {
    return Punctuation::ForAttribute(num_fields_, attr_,
                                     Pattern::Constant(Value(lo)));
  }
  return Punctuation::ForAttribute(num_fields_, attr_,
                                   Pattern::Range(Value(lo), Value(hi)));
}

}  // namespace pjoin
