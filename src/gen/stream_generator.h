// Synthetic punctuated-stream generation (paper §4: "We have created a
// benchmark system to generate synthetic data streams by controlling the
// arrival patterns and rates of the data and punctuations.")
//
// Two streams are generated against one SharedDomain in a merged virtual-time
// simulation, so the interleaving of tuples, punctuations and key closures is
// globally consistent and fully deterministic for a given seed.

#ifndef PJOIN_GEN_STREAM_GENERATOR_H_
#define PJOIN_GEN_STREAM_GENERATOR_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "gen/domain.h"
#include "gen/punct_scheme.h"
#include "stream/element.h"
#include "stream/stream_buffer.h"
#include "tuple/schema.h"

namespace pjoin {

/// Domain shared by the two streams of an experiment.
struct DomainSpec {
  /// Number of keys open (sampleable) at any moment.
  int64_t window_size = 20;
};

/// Per-stream generation parameters.
struct StreamSpec {
  /// Number of data tuples to generate.
  int64_t num_tuples = 10000;
  /// Mean tuple inter-arrival time (Poisson); the paper uses 2 ms.
  double tuple_mean_interarrival_micros = 2000.0;
  /// Mean number of tuples between two punctuations (Poisson). <= 0 disables
  /// punctuations on this stream.
  double punct_mean_interarrival_tuples = 40.0;
  /// Pattern style of this stream's punctuations.
  PunctStyle punct_style = PunctStyle::kConstant;
  /// Keys per punctuation for range / enum styles.
  int64_t punct_batch = 1;
  /// Payload values are uniform in [0, payload_domain).
  int64_t payload_domain = 1000;
  /// Clustered arrival (the k-constraint pattern of paper §5, representable
  /// by punctuations): instead of sampling uniformly from the open window,
  /// the stream always emits the *oldest* open key, so all tuples of a key
  /// arrive contiguously and the key's punctuation follows its cluster.
  bool clustered = false;
  /// Key skew: > 0 draws the offset within the open window from a Zipf-like
  /// distribution with this exponent (0 = uniform). Newer keys are hotter,
  /// so partition loads are imbalanced — a stress for relocation policies.
  double zipf_s = 0.0;
  /// Emit one final range punctuation covering all still-unpunctuated keys
  /// before end-of-stream (useful for drain/propagation experiments).
  bool flush_punctuations_at_end = false;
  /// Field name of the non-key payload attribute.
  std::string payload_name = "payload";
};

/// The result of one generation run.
struct GeneratedStreams {
  SchemaPtr schema_a;
  SchemaPtr schema_b;
  std::vector<StreamElement> a;
  std::vector<StreamElement> b;

  int64_t NumTuples(const std::vector<StreamElement>& s) const;
  int64_t NumPunctuations(const std::vector<StreamElement>& s) const;
};

/// Generates both streams. Schemas are (key:int64, <payload_name>:int64) and
/// the join attribute is field 0. Each returned vector ends with an
/// end-of-stream element.
GeneratedStreams GenerateStreams(const DomainSpec& domain_spec,
                                 const StreamSpec& spec_a,
                                 const StreamSpec& spec_b, uint64_t seed);

/// Adapts a pre-generated element vector to the pull-style StreamSource.
class VectorSource : public StreamSource {
 public:
  explicit VectorSource(std::vector<StreamElement> elements)
      : elements_(std::move(elements)) {}

  std::optional<StreamElement> Next() override {
    if (pos_ >= elements_.size()) return std::nullopt;
    return elements_[pos_++];
  }

  /// Arrival time of the next element without consuming it.
  std::optional<TimeMicros> PeekArrival() const {
    if (pos_ >= elements_.size()) return std::nullopt;
    return elements_[pos_].arrival();
  }

  bool exhausted() const { return pos_ >= elements_.size(); }

 private:
  std::vector<StreamElement> elements_;
  size_t pos_ = 0;
};

}  // namespace pjoin

#endif  // PJOIN_GEN_STREAM_GENERATOR_H_
