// The paper's running example (§1.1, §2.1): an online auction with an Open
// stream (items for sale) and a Bid stream (bids).
//
// Each item is open for bids during a bounded period. The Open stream carries
// one tuple per item and — because item_id is unique — a derived constant
// punctuation right after each tuple. The Bid stream carries a punctuation
// for an item as soon as its auction closes.

#ifndef PJOIN_GEN_AUCTION_H_
#define PJOIN_GEN_AUCTION_H_

#include <cstdint>
#include <vector>

#include "stream/element.h"
#include "tuple/schema.h"

namespace pjoin {

struct AuctionSpec {
  /// Total number of bid tuples to generate.
  int64_t num_bids = 10000;
  /// Number of items concurrently open for bidding.
  int64_t open_window = 20;
  /// Mean bid inter-arrival time (Poisson).
  double bid_mean_interarrival_micros = 2000.0;
  /// Mean number of bids between two auction closings (Poisson).
  double close_mean_interarrival_bids = 40.0;
  /// Id domains for the non-key attributes.
  int64_t num_bidders = 100;
  int64_t num_sellers = 50;
  /// Emit the derived key-uniqueness punctuations on the Open stream.
  bool open_stream_punctuations = true;
  /// Close and punctuate all still-open items before end-of-stream.
  bool flush_at_end = true;
};

struct AuctionStreams {
  /// (item_id:int64, seller:int64, reserve:int64)
  SchemaPtr open_schema;
  /// (item_id:int64, bidder:int64, increase:float64)
  SchemaPtr bid_schema;
  std::vector<StreamElement> open;
  std::vector<StreamElement> bid;
};

/// Generates the Open and Bid streams of one auction run. Deterministic for
/// a given spec and seed. Both element vectors end with end-of-stream.
AuctionStreams GenerateAuction(const AuctionSpec& spec, uint64_t seed);

}  // namespace pjoin

#endif  // PJOIN_GEN_AUCTION_H_
