// FaultInjector: the deterministic randomness and bookkeeping shared by all
// fault decorators of one chaos run.
//
// All decorators built from one FaultPlan share one injector, so the
// injected-fault counters aggregate across stores and streams and the whole
// run replays bit-identically from the plan's seed. Thread-safe: the
// decorated stores and sources may live on different pipeline threads —
// the random stream is GUARDED_BY its mutex, the counters live in a
// SharedCounterSet.

#ifndef PJOIN_FAULT_FAULT_INJECTOR_H_
#define PJOIN_FAULT_FAULT_INJECTOR_H_

#include <cstdint>
#include <string>

#include "common/metrics.h"
#include "common/mutex.h"
#include "common/rng.h"
#include "common/thread_annotations.h"

namespace pjoin {

class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed) : rng_(seed) {}

  /// Deterministic Bernoulli trial; rates <= 0 never fire.
  [[nodiscard]] bool Roll(double probability) EXCLUDES(mu_) {
    if (probability <= 0.0) return false;
    MutexLock lock(mu_);
    return rng_.NextBool(probability);
  }

  /// Uniform integer in [lo, hi] from the shared deterministic stream.
  [[nodiscard]] int64_t UniformInt(int64_t lo, int64_t hi) EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return rng_.NextInt(lo, hi);
  }

  /// Records one injected fault under `name` (e.g. "io_transient_write").
  void Count(const std::string& name, int64_t delta = 1) {
    counters_.Add(name, delta);
  }

  [[nodiscard]] int64_t Get(const std::string& name) const {
    return counters_.Get(name);
  }

  /// Snapshot of every injected-fault counter.
  [[nodiscard]] CounterSet SnapshotCounters() const {
    return counters_.Snapshot();
  }

 private:
  mutable Mutex mu_;
  Rng rng_ GUARDED_BY(mu_);
  SharedCounterSet counters_;
};

}  // namespace pjoin

#endif  // PJOIN_FAULT_FAULT_INJECTOR_H_
