// FaultInjector: the deterministic randomness and bookkeeping shared by all
// fault decorators of one chaos run.
//
// All decorators built from one FaultPlan share one injector, so the
// injected-fault counters aggregate across stores and streams and the whole
// run replays bit-identically from the plan's seed. Thread-safe: the
// decorated stores and sources may live on different pipeline threads.

#ifndef PJOIN_FAULT_FAULT_INJECTOR_H_
#define PJOIN_FAULT_FAULT_INJECTOR_H_

#include <cstdint>
#include <mutex>
#include <string>

#include "common/metrics.h"
#include "common/rng.h"

namespace pjoin {

class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed) : rng_(seed) {}

  /// Deterministic Bernoulli trial; rates <= 0 never fire.
  bool Roll(double probability) {
    if (probability <= 0.0) return false;
    std::lock_guard<std::mutex> lock(mu_);
    return rng_.NextBool(probability);
  }

  /// Uniform integer in [lo, hi] from the shared deterministic stream.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    std::lock_guard<std::mutex> lock(mu_);
    return rng_.NextInt(lo, hi);
  }

  /// Records one injected fault under `name` (e.g. "io_transient_write").
  void Count(const std::string& name, int64_t delta = 1) {
    std::lock_guard<std::mutex> lock(mu_);
    counters_.Add(name, delta);
  }

  int64_t Get(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mu_);
    return counters_.Get(name);
  }

  /// Snapshot of every injected-fault counter.
  CounterSet SnapshotCounters() const {
    std::lock_guard<std::mutex> lock(mu_);
    return counters_;
  }

 private:
  mutable std::mutex mu_;
  Rng rng_;
  CounterSet counters_;
};

}  // namespace pjoin

#endif  // PJOIN_FAULT_FAULT_INJECTOR_H_
