#include "fault/fault_plan.h"

#include <sstream>

namespace pjoin {

std::string IoFaultSpec::ToString() const {
  std::ostringstream os;
  os << "io{w_err=" << transient_write_error_rate
     << " r_err=" << transient_read_error_rate
     << " short_w=" << short_write_rate << " spike=" << latency_spike_rate
     << "x" << latency_spike_micros
     << "us perm_w@" << permanent_write_failure_after
     << " perm_r@" << permanent_read_failure_after;
  if (target_partition >= 0) {
    os << " part" << target_partition << "{w=" << partition_write_error_rate
       << " r=" << partition_read_error_rate << "}";
  }
  os << " repart_err=" << repartition_error_rate << "}";
  return os.str();
}

std::string StreamFaultSpec::ToString() const {
  std::ostringstream os;
  os << "stream{late=" << late_tuple_rate
     << " malformed=" << malformed_punct_rate << " dup=" << duplicate_rate
     << " reorder=" << reorder_rate << " stall=" << stall_rate << "x"
     << stall_micros << "us}";
  return os.str();
}

std::string MigrationFaultSpec::ToString() const {
  std::ostringstream os;
  os << "migration{extract_err=" << extract_error_rate
     << " install_err=" << install_error_rate << "}";
  return os.str();
}

std::string FaultPlan::ToString() const {
  std::ostringstream os;
  os << "FaultPlan{seed=" << seed << " a=" << stream[0].ToString()
     << " b=" << stream[1].ToString() << " " << io.ToString() << " "
     << migration.ToString() << "}";
  return os.str();
}

}  // namespace pjoin
