// FaultySpillStore: a SpillStore decorator injecting the I/O faults of an
// IoFaultSpec into any underlying store (paired in tests and chaos runs with
// storage/recovering_spill_store.h, the defensive counterpart).

#ifndef PJOIN_FAULT_FAULTY_SPILL_STORE_H_
#define PJOIN_FAULT_FAULTY_SPILL_STORE_H_

#include <memory>
#include <string>
#include <vector>

#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "storage/spill_store.h"

namespace pjoin {

/// Injected-fault counter names (on the shared FaultInjector):
///   io_transient_write, io_transient_read, io_short_write,
///   io_latency_spike, io_permanent_write, io_permanent_read.
class FaultySpillStore : public SpillStore {
 public:
  FaultySpillStore(std::unique_ptr<SpillStore> base, IoFaultSpec spec,
                   std::shared_ptr<FaultInjector> injector);

  Status AppendBatch(int partition,
                     const std::vector<std::string>& records) override;
  Result<std::vector<std::string>> ReadPartition(int partition) override;
  Status ClearPartition(int partition) override;
  int64_t PartitionRecordCount(int partition) const override;
  int64_t TotalRecordCount() const override;
  std::vector<int> NonEmptyPartitions() const override;
  const IoStats& io_stats() const override;

  /// True once the permanent write (read) failure tripped.
  bool write_failed_permanently() const { return writes_done_ < 0; }
  bool read_failed_permanently() const { return reads_done_ < 0; }

 private:
  /// Charges a latency spike when the dice say so.
  void MaybeSpike();

  std::unique_ptr<SpillStore> base_;
  IoFaultSpec spec_;
  std::shared_ptr<FaultInjector> injector_;
  /// Successful operations so far; -1 once permanently failed.
  int64_t writes_done_ = 0;
  int64_t reads_done_ = 0;
  int64_t injected_latency_micros_ = 0;
  mutable IoStats stats_;
};

}  // namespace pjoin

#endif  // PJOIN_FAULT_FAULTY_SPILL_STORE_H_
