#include "fault/faulty_spill_store.h"

#include "common/macros.h"
#include "storage/spill_manager.h"

namespace pjoin {

FaultySpillStore::FaultySpillStore(std::unique_ptr<SpillStore> base,
                                   IoFaultSpec spec,
                                   std::shared_ptr<FaultInjector> injector)
    : base_(std::move(base)), spec_(spec), injector_(std::move(injector)) {
  PJOIN_DCHECK(base_ != nullptr);
  PJOIN_DCHECK(injector_ != nullptr);
}

void FaultySpillStore::MaybeSpike() {
  if (injector_->Roll(spec_.latency_spike_rate)) {
    injected_latency_micros_ += spec_.latency_spike_micros;
    injector_->Count("io_latency_spike");
  }
}

Status FaultySpillStore::AppendBatch(int partition,
                                     const std::vector<std::string>& records) {
  if (records.empty()) return base_->AppendBatch(partition, records);
  MaybeSpike();
  if (writes_done_ < 0 || (spec_.permanent_write_failure_after >= 0 &&
                           writes_done_ >= spec_.permanent_write_failure_after)) {
    if (writes_done_ >= 0) injector_->Count("io_permanent_write");
    writes_done_ = -1;
    return Status::IOError("injected permanent write failure");
  }
  if (injector_->Roll(spec_.short_write_rate) && records.size() > 1) {
    // Persist a strict prefix, then fail: the classic torn batch. A naive
    // retry of the whole batch would duplicate the prefix.
    const auto kept = static_cast<size_t>(
        injector_->UniformInt(1, static_cast<int64_t>(records.size()) - 1));
    std::vector<std::string> prefix(records.begin(),
                                    records.begin() + static_cast<ptrdiff_t>(kept));
    PJOIN_RETURN_NOT_OK(base_->AppendBatch(partition, prefix));
    injector_->Count("io_short_write");
    return Status::IOError("injected short write (" + std::to_string(kept) +
                           "/" + std::to_string(records.size()) +
                           " records persisted)");
  }
  if (partition == spec_.target_partition &&
      injector_->Roll(spec_.partition_write_error_rate)) {
    injector_->Count("io_partition_write");
    return Status::IOError("injected write failure on partition " +
                           std::to_string(partition));
  }
  if (CurrentSpillPhase() == SpillPhase::kRepartition &&
      injector_->Roll(spec_.repartition_error_rate)) {
    injector_->Count("io_repartition_write");
    return Status::IOError("injected write failure during repartitioning");
  }
  if (injector_->Roll(spec_.transient_write_error_rate)) {
    injector_->Count("io_transient_write");
    return Status::IOError("injected transient write error");
  }
  ++writes_done_;
  return base_->AppendBatch(partition, records);
}

Result<std::vector<std::string>> FaultySpillStore::ReadPartition(
    int partition) {
  MaybeSpike();
  if (reads_done_ < 0 || (spec_.permanent_read_failure_after >= 0 &&
                          reads_done_ >= spec_.permanent_read_failure_after)) {
    if (reads_done_ >= 0) injector_->Count("io_permanent_read");
    reads_done_ = -1;
    return Status::IOError("injected permanent read failure");
  }
  if (partition == spec_.target_partition &&
      injector_->Roll(spec_.partition_read_error_rate)) {
    injector_->Count("io_partition_read");
    return Status::IOError("injected read failure on partition " +
                           std::to_string(partition));
  }
  if (CurrentSpillPhase() == SpillPhase::kRepartition &&
      injector_->Roll(spec_.repartition_error_rate)) {
    injector_->Count("io_repartition_read");
    return Status::IOError("injected read failure during repartitioning");
  }
  if (injector_->Roll(spec_.transient_read_error_rate)) {
    injector_->Count("io_transient_read");
    return Status::IOError("injected transient read error");
  }
  ++reads_done_;
  return base_->ReadPartition(partition);
}

Status FaultySpillStore::ClearPartition(int partition) {
  return base_->ClearPartition(partition);
}

int64_t FaultySpillStore::PartitionRecordCount(int partition) const {
  return base_->PartitionRecordCount(partition);
}

int64_t FaultySpillStore::TotalRecordCount() const {
  return base_->TotalRecordCount();
}

std::vector<int> FaultySpillStore::NonEmptyPartitions() const {
  return base_->NonEmptyPartitions();
}

const IoStats& FaultySpillStore::io_stats() const {
  stats_ = base_->io_stats();
  stats_.simulated_latency_micros += injected_latency_micros_;
  return stats_;
}

}  // namespace pjoin
