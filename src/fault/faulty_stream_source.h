// FaultyStreamSource / PerturbStream: inject punctuation-contract violations
// into an element stream.
//
// PerturbStream produces two consistent views of the same perturbed run:
//   - `faulty`: the stream a join under test actually consumes, and
//   - `sanitized`: the same stream with every *detectable* violation (late
//     tuples, covered duplicates, malformed punctuations) removed.
// A join with ViolationPolicy::kDrop must produce, on `faulty`, exactly the
// result a reference join produces on `sanitized` — the oracle used by the
// chaos fuzzer and the acceptance bench.
//
// Benign perturbations (tuple-tuple reordering, uncovered duplicates,
// producer stalls) stay in both views: they are workload anomalies, not
// contract violations, and a correct join must absorb them.

#ifndef PJOIN_FAULT_FAULTY_STREAM_SOURCE_H_
#define PJOIN_FAULT_FAULTY_STREAM_SOURCE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "stream/stream_buffer.h"

namespace pjoin {

/// The outcome of perturbing one stream.
struct PerturbedStream {
  /// What the join under test consumes.
  std::vector<StreamElement> faulty;
  /// `faulty` minus the injected detectable violations; feed this to a
  /// trusted reference join to obtain the expected kDrop output.
  std::vector<StreamElement> sanitized;
  /// Detectable contract violations injected (late + covered duplicates +
  /// malformed punctuations) — what a validating join must flag.
  int64_t violations = 0;
  // Per-kind injection counts.
  int64_t late_tuples = 0;
  int64_t malformed_puncts = 0;
  int64_t duplicates = 0;          // covered duplicates only (violations)
  int64_t benign_duplicates = 0;   // uncovered duplicates (kept in sanitized)
  int64_t reorders = 0;
  int64_t stalls = 0;
};

/// Applies `spec` to `clean` (which must be time-ordered and end with
/// end-of-stream). `key_index` is the join attribute used to recognize
/// key-only punctuations and covered keys. Deterministic given the
/// injector's state. Arrival times of both views stay monotone.
PerturbedStream PerturbStream(const std::vector<StreamElement>& clean,
                              size_t key_index, const StreamFaultSpec& spec,
                              FaultInjector* injector);

/// Pull-style adapter: drains `base` eagerly, perturbs it, and serves the
/// faulty view element by element — a drop-in StreamSource for pipelines.
class FaultyStreamSource : public StreamSource {
 public:
  FaultyStreamSource(std::unique_ptr<StreamSource> base, size_t key_index,
                     StreamFaultSpec spec,
                     std::shared_ptr<FaultInjector> injector);

  std::optional<StreamElement> Next() override;

  /// Full injection report for assertions.
  const PerturbedStream& perturbed() const { return perturbed_; }

 private:
  PerturbedStream perturbed_;
  size_t pos_ = 0;
};

}  // namespace pjoin

#endif  // PJOIN_FAULT_FAULTY_STREAM_SOURCE_H_
