#include "fault/faulty_stream_source.h"

#include <unordered_map>
#include <unordered_set>

#include "common/macros.h"

namespace pjoin {

namespace {

/// True when `punct` constrains only the join attribute (the kind whose
/// coverage the join's purge and late-tuple checks key on).
bool IsKeyOnly(const Punctuation& punct, size_t key_index) {
  if (key_index >= punct.num_patterns()) return false;
  for (size_t i = 0; i < punct.num_patterns(); ++i) {
    if (i == key_index) continue;
    if (!punct.pattern(i).IsWildcard()) return false;
  }
  return !punct.pattern(key_index).IsWildcard();
}

/// Tracks which join-key values this stream has promised never to send
/// again, mirroring PunctuationSet::SetMatchKey.
class Coverage {
 public:
  explicit Coverage(size_t key_index) : key_index_(key_index) {}

  void Observe(const Punctuation& punct) {
    if (!IsKeyOnly(punct, key_index_)) return;
    const Pattern& p = punct.pattern(key_index_);
    if (p.IsConstant()) {
      constants_.insert(p.constant());
    } else {
      patterns_.push_back(p);
    }
  }

  bool Covers(const Value& key) const {
    if (constants_.count(key) > 0) return true;
    for (const Pattern& p : patterns_) {
      if (p.Matches(key)) return true;
    }
    return false;
  }

 private:
  size_t key_index_;
  std::unordered_set<Value, ValueHash> constants_;
  std::vector<Pattern> patterns_;
};

}  // namespace

PerturbedStream PerturbStream(const std::vector<StreamElement>& clean,
                              size_t key_index, const StreamFaultSpec& spec,
                              FaultInjector* injector) {
  PJOIN_DCHECK(injector != nullptr);
  PerturbedStream out;

  // Pass 1 — benign reordering: swap adjacent tuple-tuple pairs, keeping
  // the original arrival/seq stamps in place so the stream stays
  // time-ordered. A tuple never crosses a punctuation, so the §2.2
  // contract (and the result multiset) is untouched.
  std::vector<StreamElement> elems = clean;
  for (size_t i = 0; i + 1 < elems.size(); ++i) {
    if (!elems[i].is_tuple() || !elems[i + 1].is_tuple()) continue;
    if (!injector->Roll(spec.reorder_rate)) continue;
    Tuple a = elems[i].tuple();
    Tuple b = elems[i + 1].tuple();
    StreamElement swapped_first = StreamElement::MakeTuple(
        std::move(b), elems[i].arrival(), elems[i].seq());
    StreamElement swapped_second = StreamElement::MakeTuple(
        std::move(a), elems[i + 1].arrival(), elems[i + 1].seq());
    elems[i] = std::move(swapped_first);
    elems[i + 1] = std::move(swapped_second);
    ++out.reorders;
    injector->Count("stream_reorder");
    ++i;  // never re-swap the same pair
  }

  // Pass 2 — injections relative to the (possibly reordered) stream.
  Coverage coverage(key_index);
  // Tuples whose key this stream has since punctuated: the raw material for
  // late-tuple injection.
  std::vector<Tuple> covered_exemplars;
  std::unordered_map<Value, Tuple, ValueHash> last_by_key;
  TimeMicros time_shift = 0;
  size_t tuple_width = 0;

  auto push_both = [&out](StreamElement e) {
    out.sanitized.push_back(e);
    out.faulty.push_back(std::move(e));
  };

  for (const StreamElement& orig : elems) {
    StreamElement e = orig;
    const TimeMicros now = orig.arrival() + time_shift;
    switch (orig.kind()) {
      case ElementKind::kTuple:
        e = StreamElement::MakeTuple(orig.tuple(), now, orig.seq());
        break;
      case ElementKind::kPunctuation:
        e = StreamElement::MakePunctuation(orig.punctuation(), now,
                                           orig.seq());
        break;
      case ElementKind::kEndOfStream:
        e = StreamElement::MakeEndOfStream(now, orig.seq());
        break;
    }

    if (e.is_tuple()) {
      tuple_width = e.tuple().num_fields();
      const Value& key = e.tuple().field(key_index);
      if (!coverage.Covers(key)) {
        last_by_key.insert_or_assign(key, e.tuple());
      }
    } else if (e.is_punctuation()) {
      coverage.Observe(e.punctuation());
      if (IsKeyOnly(e.punctuation(), key_index)) {
        // Keys that just became covered graduate to exemplars.
        for (auto it = last_by_key.begin(); it != last_by_key.end();) {
          if (coverage.Covers(it->first)) {
            covered_exemplars.push_back(std::move(it->second));
            it = last_by_key.erase(it);
          } else {
            ++it;
          }
        }
      }
    }

    const bool is_tuple = e.is_tuple();
    push_both(std::move(e));
    const Tuple* current = is_tuple ? &out.faulty.back().tuple() : nullptr;

    if (orig.is_end_of_stream()) break;

    // Producer stall: every later arrival shifts by stall_micros.
    if (injector->Roll(spec.stall_rate)) {
      time_shift += spec.stall_micros;
      ++out.stalls;
      injector->Count("stream_stall");
    }

    // Duplicate the current tuple. Covered key -> detectable violation.
    if (is_tuple && injector->Roll(spec.duplicate_rate)) {
      StreamElement dup = StreamElement::MakeTuple(*current, now, 0);
      if (coverage.Covers(current->field(key_index))) {
        out.faulty.push_back(std::move(dup));
        ++out.duplicates;
        ++out.violations;
        injector->Count("stream_duplicate_violation");
      } else {
        out.sanitized.push_back(dup);
        out.faulty.push_back(std::move(dup));
        ++out.benign_duplicates;
        injector->Count("stream_duplicate_benign");
      }
    }

    // Late tuple: re-emit a tuple whose key was already punctuated.
    if (!covered_exemplars.empty() && injector->Roll(spec.late_tuple_rate)) {
      const size_t pick = static_cast<size_t>(injector->UniformInt(
          0, static_cast<int64_t>(covered_exemplars.size()) - 1));
      out.faulty.push_back(
          StreamElement::MakeTuple(covered_exemplars[pick], now, 0));
      ++out.late_tuples;
      ++out.violations;
      injector->Count("stream_late_tuple");
    }

    // Malformed punctuation: wrong arity or an empty pattern.
    if (tuple_width > 0 && injector->Roll(spec.malformed_punct_rate)) {
      Punctuation bad;
      if (injector->Roll(0.5)) {
        bad = Punctuation(
            std::vector<Pattern>(tuple_width + 1, Pattern::Wildcard()));
      } else {
        bad = Punctuation::ForAttribute(tuple_width, key_index,
                                        Pattern::Empty());
      }
      out.faulty.push_back(
          StreamElement::MakePunctuation(std::move(bad), now, 0));
      ++out.malformed_puncts;
      ++out.violations;
      injector->Count("stream_malformed_punct");
    }
  }

  // Resequence both views so seq stays a consistent per-stream counter.
  auto resequence = [](std::vector<StreamElement>* elements) {
    int64_t seq = 0;
    for (StreamElement& e : *elements) {
      switch (e.kind()) {
        case ElementKind::kTuple:
          e = StreamElement::MakeTuple(e.tuple(), e.arrival(), seq++);
          break;
        case ElementKind::kPunctuation:
          e = StreamElement::MakePunctuation(e.punctuation(), e.arrival(),
                                             seq++);
          break;
        case ElementKind::kEndOfStream:
          e = StreamElement::MakeEndOfStream(e.arrival(), seq++);
          break;
      }
    }
  };
  resequence(&out.faulty);
  resequence(&out.sanitized);
  return out;
}

FaultyStreamSource::FaultyStreamSource(std::unique_ptr<StreamSource> base,
                                       size_t key_index, StreamFaultSpec spec,
                                       std::shared_ptr<FaultInjector> injector) {
  PJOIN_DCHECK(base != nullptr);
  std::vector<StreamElement> clean;
  while (auto e = base->Next()) {
    clean.push_back(std::move(*e));
  }
  perturbed_ = PerturbStream(clean, key_index, spec, injector.get());
}

std::optional<StreamElement> FaultyStreamSource::Next() {
  if (pos_ >= perturbed_.faulty.size()) return std::nullopt;
  return perturbed_.faulty[pos_++];
}

}  // namespace pjoin
