// FaultPlan: a declarative description of the faults to inject into one run.
//
// The plan is pure data — it says *what* can go wrong and how often; the
// seeded FaultInjector decides *when*, deterministically, so every chaos run
// is exactly reproducible from (plan, seed). Two fault families:
//
//  - I/O faults (IoFaultSpec), applied by FaultySpillStore to any SpillStore:
//    transient errors, a permanent failure after a write/read budget, short
//    writes that persist only a prefix of a batch, and latency spikes.
//
//  - Stream contract violations (StreamFaultSpec), applied by
//    FaultyStreamSource / PerturbStream to an element stream: late tuples
//    that match an already-emitted punctuation, malformed punctuations,
//    duplicates, (order-preserving-multiset) reordering, and producer
//    stalls.
//
// See docs/ROBUSTNESS.md for the full fault model and the degradation
// ladder that answers each fault.

#ifndef PJOIN_FAULT_FAULT_PLAN_H_
#define PJOIN_FAULT_FAULT_PLAN_H_

#include <cstdint>
#include <string>

#include "common/clock.h"

namespace pjoin {

/// Faults injected into SpillStore operations.
struct IoFaultSpec {
  /// Probability that a write (AppendBatch) fails with a transient IOError.
  double transient_write_error_rate = 0.0;
  /// Probability that a read (ReadPartition) fails with a transient IOError.
  double transient_read_error_rate = 0.0;
  /// Probability that an AppendBatch persists only a strict prefix of its
  /// records before failing (a short write). The surviving prefix stays in
  /// the store, so naive retries would duplicate records.
  double short_write_rate = 0.0;
  /// Probability that an operation is charged a latency spike.
  double latency_spike_rate = 0.0;
  /// Size of one latency spike (added to simulated_latency_micros).
  int64_t latency_spike_micros = 10000;
  /// After this many successful writes every further write fails
  /// permanently (reads keep working — the medium went read-only, the
  /// common disk-full / write-protect failure). -1 disables.
  int64_t permanent_write_failure_after = -1;
  /// After this many successful reads every further read fails permanently.
  /// -1 disables. Note: permanent read failure means data behind it is
  /// unrecoverable; RecoveringSpillStore will surface the loss.
  int64_t permanent_read_failure_after = -1;
  /// Partition targeted by the partition_* rates below (-1 targets none):
  /// per-partition faults exercise the SpillManager's quarantine/degrade
  /// ladder, which global rates cannot isolate.
  int target_partition = -1;
  /// Probability that a write touching `target_partition` fails.
  double partition_write_error_rate = 0.0;
  /// Probability that a read of `target_partition` fails.
  double partition_read_error_rate = 0.0;
  /// Probability that an operation issued while a spilled partition is
  /// being split (SpillPhase::kRepartition, any partition) fails —
  /// exercises SplitSpilledPartition's all-or-nothing recovery.
  double repartition_error_rate = 0.0;

  bool enabled() const {
    return transient_write_error_rate > 0 || transient_read_error_rate > 0 ||
           short_write_rate > 0 || latency_spike_rate > 0 ||
           permanent_write_failure_after >= 0 ||
           permanent_read_failure_after >= 0 ||
           (target_partition >= 0 && (partition_write_error_rate > 0 ||
                                      partition_read_error_rate > 0)) ||
           repartition_error_rate > 0;
  }

  std::string ToString() const;
};

/// Contract violations injected into one element stream.
struct StreamFaultSpec {
  /// Probability (per passing element) of injecting a *late tuple*: a
  /// re-emission of a tuple whose key was already covered by one of this
  /// stream's own punctuations — the canonical violation of the §2.2
  /// promise.
  double late_tuple_rate = 0.0;
  /// Probability of injecting a malformed punctuation: wrong arity for the
  /// schema, or one containing an empty pattern.
  double malformed_punct_rate = 0.0;
  /// Probability of immediately re-emitting the current tuple. When the
  /// duplicate's key is already punctuated it is a detectable violation
  /// (counted as one); otherwise it is an undetectable workload anomaly
  /// that legitimately changes the join output.
  double duplicate_rate = 0.0;
  /// Probability of swapping the current tuple with the next element when
  /// that is also a tuple. Arrival stamps are swapped too, so the stream
  /// stays time-ordered and the result multiset is unchanged (tuple-tuple
  /// swaps never cross a punctuation).
  double reorder_rate = 0.0;
  /// Probability of a producer stall: all subsequent arrivals shift later
  /// by stall_micros, opening a lull the consumer sees as a stalled input.
  double stall_rate = 0.0;
  TimeMicros stall_micros = 50000;

  bool enabled() const {
    return late_tuple_rate > 0 || malformed_punct_rate > 0 ||
           duplicate_rate > 0 || reorder_rate > 0 || stall_rate > 0;
  }

  std::string ToString() const;
};

/// Faults injected into the parallel pipeline's key-migration handoff
/// (ops/repartition.h). Rolled on the router thread from the plan's seed,
/// so a chaos run replays bit-identically; the pipeline answers every
/// injected failure with a clean rollback (source keeps / regains the
/// key's state, the shard map stays unchanged).
struct MigrationFaultSpec {
  /// Probability that a handoff's source-side state extraction fails.
  double extract_error_rate = 0.0;
  /// Probability that a migration's destination-side install fails; the
  /// payload travels back and is re-installed at the source.
  double install_error_rate = 0.0;

  bool enabled() const {
    return extract_error_rate > 0 || install_error_rate > 0;
  }

  std::string ToString() const;
};

/// One complete chaos configuration: a seed plus per-side stream faults and
/// the I/O faults of the spill stores.
struct FaultPlan {
  uint64_t seed = 1;
  StreamFaultSpec stream[2];
  IoFaultSpec io;
  MigrationFaultSpec migration;

  bool enabled() const {
    return stream[0].enabled() || stream[1].enabled() || io.enabled() ||
           migration.enabled();
  }

  std::string ToString() const;
};

}  // namespace pjoin

#endif  // PJOIN_FAULT_FAULT_PLAN_H_
