#include "check/scheduler.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace pjoin {
namespace mc {

namespace {

// All model threads are fibers on ONE OS thread, so a plain global is safe.
Execution* g_current = nullptr;

constexpr size_t kFiberStackSize = 256 * 1024;
// TSO store buffers are kept tiny: each buffered store is a scheduler
// branching point, and two in-flight stores per thread already expose every
// reordering the spine's protocols are sensitive to.
constexpr size_t kStoreBufferCap = 2;

}  // namespace

// ---------------------------------------------------------------------------
// ExploreResult
// ---------------------------------------------------------------------------

std::string ExploreResult::Summary() const {
  std::ostringstream os;
  os << "[MC] label=" << label << " schedules=" << schedules
     << " states=" << points << " exhaustive=" << (exhaustive ? 1 : 0)
     << " bound=" << bound << " tso=" << (tso ? 1 : 0)
     << " failed=" << (failed ? 1 : 0);
  return os.str();
}

std::string ExploreResult::TraceString() const {
  std::ostringstream os;
  os << failure << "\nfailing schedule (" << trace.size() << " points):\n";
  for (const std::string& line : trace) os << "  " << line << "\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

Execution* Execution::Current() { return g_current; }

Execution::Execution(const ExploreOptions& options, Run mode,
                     const std::vector<int>* prefix, uint64_t walk_seed)
    : options_(options), mode_(mode), prefix_(prefix), rng_(walk_seed) {
  // Fibers park their ucontext inside ThreadState; reserving up front
  // guarantees the vector never relocates live contexts.
  threads_.reserve(kMaxModelThreads);
}

int Execution::CreateThread(std::function<void()> fn) {
  if (static_cast<int>(threads_.size()) >= kMaxModelThreads) {
    Fail("too many model threads (kMaxModelThreads)");
  }
  const int tid = static_cast<int>(threads_.size());
  threads_.emplace_back();
  ThreadState& t = threads_.back();
  t.fn = std::move(fn);
  t.state = State::kReady;
  t.stack = std::make_unique<char[]>(kFiberStackSize);
  if (tid > 0) {
    // Thread creation is a happens-before edge: the child starts with the
    // parent's clock; the parent then advances so post-fork parent events
    // are not ordered before the child's view.
    t.clock.Join(threads_[current_].clock);
    ++threads_[current_].clock.c[current_];
  }
  return tid;
}

void Execution::JoinThread(int tid) {
  SchedulePoint(&threads_[tid], "join");
  while (threads_[tid].state != State::kFinished) {
    ThreadState& self = threads_[current_];
    self.state = State::kBlockedJoin;
    self.join_target = tid;
    ScheduleOut(/*self_enabled=*/false);
  }
  // join() synchronizes-with thread exit.
  threads_[current_].clock.Join(threads_[tid].clock);
}

int Execution::SchedulePoint(const void* loc, const char* op) {
  if (abort_) throw AbortExecution{};
  if (++steps_ > options_.max_steps) {
    Fail("livelock: schedule exceeded max_steps (unbounded spin?)");
  }
  RecordTrace(current_, op, loc);
  ScheduleOut(/*self_enabled=*/true);
  return current_;
}

void Execution::BlockOnAddress(const void* loc) {
  ThreadState& self = threads_[current_];
  self.state = State::kBlocked;
  self.blocked_addr = loc;
  RecordTrace(current_, "block", loc);
  ScheduleOut(/*self_enabled=*/false);
}

void Execution::Notify(const void* loc, bool all) {
  // A waker's pending stores must be visible to the woken thread; real
  // futex wake paths sit behind at least one barrier, so drain first.
  if (options_.tso) FlushCurrentThread();
  RecordTrace(current_, all ? "notify_all" : "notify_one", loc);
  for (size_t i = 0; i < threads_.size(); ++i) {
    ThreadState& t = threads_[i];
    if (t.state == State::kBlocked && t.blocked_addr == loc) {
      t.state = State::kReady;
      t.blocked_addr = nullptr;
      if (!all) break;  // lowest-tid waiter wins; deterministic
    }
  }
}

void Execution::Fail(std::string what) {
  FailNoThrow(std::move(what));
  throw AbortExecution{};
}

void Execution::FailNoThrow(std::string what) {
  if (!failed_) {
    failed_ = true;
    failure_ = std::move(what);
  }
  abort_ = true;
}

VectorClock& Execution::thread_clock(int tid) { return threads_[tid].clock; }

uint64_t Execution::TickClock() {
  return ++threads_[current_].clock.c[current_];
}

void Execution::BufferStore(AtomicBase* loc, uint64_t bits, bool release) {
  ThreadState& self = threads_[current_];
  if (self.buffer.size() >= kStoreBufferCap) DoFlushOldest(current_);
  self.buffer.push_back(BufferedStore{loc, bits, release, self.clock});
}

bool Execution::PeekBuffered(const AtomicBase* loc, uint64_t* bits) const {
  const ThreadState& self = threads_[current_];
  for (auto it = self.buffer.rbegin(); it != self.buffer.rend(); ++it) {
    if (it->loc == loc) {
      *bits = it->bits;
      return true;
    }
  }
  return false;
}

void Execution::FlushCurrentThread() {
  while (!threads_[current_].buffer.empty()) DoFlushOldest(current_);
}

void Execution::DoFlushOldest(int tid) {
  ThreadState& t = threads_[tid];
  BufferedStore s = t.buffer.front();
  t.buffer.erase(t.buffer.begin());
  RecordTrace(tid, "flush", s.loc);
  s.loc->CommitStoreBits(s.bits, s.release, s.clock);
}

bool Execution::IsReady(int tid) const {
  const ThreadState& t = threads_[tid];
  switch (t.state) {
    case State::kReady:
      return true;
    case State::kBlockedJoin:
      return threads_[t.join_target].state == State::kFinished;
    default:
      return false;
  }
}

bool Execution::AllFinished() const {
  for (const ThreadState& t : threads_) {
    if (t.state != State::kFinished) return false;
  }
  return true;
}

std::vector<Execution::Action> Execution::ComputeEnabled(
    bool self_enabled) const {
  std::vector<Action> out;
  // Once the preemption budget is spent, the running thread keeps the CPU
  // until it blocks or finishes (CHESS-style bounding). Only the DFS pass
  // is bounded; random walks sample the full schedule space.
  const bool restrict_to_self =
      self_enabled && mode_ == Run::kDfs && options_.max_preemptions >= 0 &&
      preemptions_ >= options_.max_preemptions;
  // Canonical order (current first, then ready tids ascending, then flush
  // tids ascending) keeps choice indices stable across replays.
  if (self_enabled) out.push_back(Action{Action::kRunThread, current_});
  if (!restrict_to_self) {
    for (int i = 0; i < static_cast<int>(threads_.size()); ++i) {
      if (i == current_) continue;
      if (IsReady(i)) out.push_back(Action{Action::kRunThread, i});
    }
  }
  if (options_.tso) {
    for (int i = 0; i < static_cast<int>(threads_.size()); ++i) {
      if (!threads_[i].buffer.empty()) out.push_back(Action{Action::kFlush, i});
    }
  }
  return out;
}

int Execution::ChooseIndex(int n) {
  int choice = 0;
  if (n > 1) {
    if (mode_ == Run::kRandom) {
      choice = static_cast<int>(rng_() % static_cast<uint64_t>(n));
    } else if (decision_index_ < (prefix_ ? prefix_->size() : 0)) {
      choice = (*prefix_)[decision_index_];
      if (choice >= n) choice = n - 1;  // defensive; replay is deterministic
    }
  }
  decisions_.push_back(Decision{choice, n});
  ++decision_index_;
  return choice;
}

void Execution::ScheduleOut(bool self_enabled) {
  const int self = current_;
  for (;;) {
    std::vector<Action> enabled = ComputeEnabled(self_enabled);
    if (enabled.empty()) {
      Fail(DeadlockMessage());  // throws into the blocking fiber
    }
    const int choice = ChooseIndex(static_cast<int>(enabled.size()));
    const Action a = enabled[choice];
    if (a.kind == Action::kFlush) {
      DoFlushOldest(a.tid);
      continue;  // a flush is a sub-step; keep deciding
    }
    if (a.tid == self && self_enabled) return;  // fast path: no fiber swap
    if (self_enabled) {
      threads_[self].state = State::kReady;
      ++preemptions_;  // another thread chosen while self was runnable
    }
    SwitchFrom(self, a.tid);
    // Resumed: some other fiber chose to run us again.
    if (abort_) throw AbortExecution{};
    return;
  }
}

void Execution::PrepareStart(int tid) {
  ThreadState& t = threads_[tid];
  t.started = true;
  starting_tid_ = tid;
  getcontext(&t.start_ctx);
  t.start_ctx.uc_stack.ss_sp = t.stack.get();
  t.start_ctx.uc_stack.ss_size = kFiberStackSize;
  t.start_ctx.uc_link = nullptr;  // fibers exit via TransferAfterFinish
  makecontext(&t.start_ctx, reinterpret_cast<void (*)()>(&TrampolineEntry), 0);
}

void Execution::SwitchFrom(int from, int to) {
  ThreadState& t = threads_[to];
  t.state = State::kRunning;
  current_ = to;
  if (!t.started) {
    PrepareStart(to);
    swapcontext(&threads_[from].ctx, &t.start_ctx);
  } else {
    swapcontext(&threads_[from].ctx, &t.ctx);
  }
}

void Execution::JumpTo(int to) {
  ThreadState& t = threads_[to];
  t.state = State::kRunning;
  current_ = to;
  if (!t.started) {
    PrepareStart(to);
    setcontext(&t.start_ctx);
  } else {
    setcontext(&t.ctx);
  }
  std::abort();  // setcontext does not return
}

void Execution::TrampolineEntry() {
  Execution* e = g_current;
  const int tid = e->starting_tid_;
  try {
    if (e->abort_) throw AbortExecution{};
    e->threads_[tid].fn();
  } catch (const AbortExecution&) {
    // Stack unwound; destructors ran. Failure already recorded.
  } catch (const std::exception& ex) {
    e->FailNoThrow(std::string("uncaught exception in model thread: ") +
                   ex.what());
  } catch (...) {
    e->FailNoThrow("uncaught non-standard exception in model thread");
  }
  e->TransferAfterFinish(tid);
}

void Execution::TransferAfterFinish(int tid) {
  ThreadState& self = threads_[tid];
  self.state = State::kFinished;
  if (!abort_) {
    // Thread exit drains its store buffer: the stores become visible, and
    // join() later publishes the exit clock.
    while (!self.buffer.empty()) DoFlushOldest(tid);
  } else {
    self.buffer.clear();
  }
  for (;;) {
    if (abort_) {
      // Abort chain: resume each started-but-unfinished fiber so it throws
      // at its park point and unwinds (destructors run, no leaks).
      int next = -1;
      for (int i = 0; i < static_cast<int>(threads_.size()); ++i) {
        if (threads_[i].state == State::kFinished) continue;
        if (!threads_[i].started) {
          threads_[i].state = State::kFinished;  // never ran; nothing to unwind
          threads_[i].buffer.clear();
          continue;
        }
        next = i;
        break;
      }
      if (next < 0) setcontext(&main_ctx_);
      JumpTo(next);
    }
    std::vector<Action> enabled = ComputeEnabled(/*self_enabled=*/false);
    if (enabled.empty()) {
      if (AllFinished()) setcontext(&main_ctx_);
      FailNoThrow(DeadlockMessage());
      continue;  // falls into the abort chain above
    }
    const int choice = ChooseIndex(static_cast<int>(enabled.size()));
    const Action a = enabled[choice];
    if (a.kind == Action::kFlush) {
      DoFlushOldest(a.tid);
      continue;
    }
    JumpTo(a.tid);
  }
}

void Execution::RunSchedule(const std::function<void()>& body) {
  g_current = this;
  CreateThread(body);  // tid 0 = the test body
  ThreadState& t0 = threads_[0];
  t0.state = State::kRunning;
  current_ = 0;
  PrepareStart(0);
  swapcontext(&main_ctx_, &t0.start_ctx);
  // Back here only when every fiber has finished (TransferAfterFinish).
  g_current = nullptr;
}

std::string Execution::DeadlockMessage() const {
  std::ostringstream os;
  os << "deadlock: no runnable thread or pending flush;";
  for (int i = 0; i < static_cast<int>(threads_.size()); ++i) {
    const ThreadState& t = threads_[i];
    if (t.state == State::kFinished) continue;
    os << " T" << i
       << (t.state == State::kBlocked
               ? "=blocked(futex)"
               : t.state == State::kBlockedJoin ? "=blocked(join)" : "=live");
  }
  return os.str();
}

void Execution::RecordTrace(int tid, const char* op, const void* loc) {
  trace_.push_back(TraceEntry{static_cast<int8_t>(tid), op,
                              static_cast<int16_t>(LocId(loc))});
}

int Execution::LocId(const void* loc) {
  if (loc == nullptr) return -1;
  for (size_t i = 0; i < locs_.size(); ++i) {
    if (locs_[i] == loc) return static_cast<int>(i);
  }
  locs_.push_back(loc);
  return static_cast<int>(locs_.size()) - 1;
}

std::vector<std::string> Execution::TraceLines() const {
  std::vector<std::string> out;
  out.reserve(trace_.size());
  for (const TraceEntry& e : trace_) {
    std::ostringstream os;
    os << "T" << static_cast<int>(e.tid) << " " << e.op;
    if (e.loc_id >= 0) os << " @" << static_cast<char>('a' + e.loc_id % 26)
                          << (e.loc_id / 26 ? std::to_string(e.loc_id / 26) : "");
    out.push_back(os.str());
  }
  return out;
}

// ---------------------------------------------------------------------------
// Explore
// ---------------------------------------------------------------------------

ExploreResult Explore(const ExploreOptions& options,
                      const std::function<void()>& body) {
  ExploreResult res;
  res.label = options.label;
  res.bound = options.max_preemptions;
  res.tso = options.tso;
  // Local lambdas inside this friend function retain private access.
  auto fill_failure = [&res](Execution& exec) {
    res.failed = true;
    res.failure = exec.failure_;
    res.trace = exec.TraceLines();
  };

  // Depth-first over decision sequences: re-run with a replay prefix, then
  // backtrack the deepest non-saturated choice.
  std::vector<int> prefix;
  for (;;) {
    if (res.schedules >= options.max_schedules) break;  // truncated
    Execution exec(options, Execution::Run::kDfs, &prefix, /*walk_seed=*/0);
    exec.RunSchedule(body);
    ++res.schedules;
    res.points += exec.steps_;
    if (exec.failed_) {
      fill_failure(exec);
      return res;
    }
    std::vector<Execution::Decision>& d = exec.decisions_;
    while (!d.empty() && d.back().chosen + 1 >= d.back().n_enabled) {
      d.pop_back();
    }
    if (d.empty()) {
      res.exhaustive = true;  // every schedule within the bound was run
      break;
    }
    ++d.back().chosen;
    prefix.clear();
    prefix.reserve(d.size());
    for (const Execution::Decision& dec : d) prefix.push_back(dec.chosen);
  }

  for (int64_t i = 0; i < options.random_walks; ++i) {
    Execution exec(options, Execution::Run::kRandom, nullptr,
                   options.seed + static_cast<uint64_t>(i));
    exec.RunSchedule(body);
    ++res.schedules;
    res.points += exec.steps_;
    if (exec.failed_) {
      fill_failure(exec);
      return res;
    }
  }
  return res;
}

// ---------------------------------------------------------------------------
// Thread / Check / SchedYield
// ---------------------------------------------------------------------------

Thread::Thread(std::function<void()> fn) {
  Execution* e = Execution::Current();
  if (e == nullptr) {
    std::fprintf(stderr, "mc::Thread used outside mc::Explore\n");
    std::abort();
  }
  tid_ = e->CreateThread(std::move(fn));
}

Thread::~Thread() {
  if (joined_) return;
  Execution* e = Execution::Current();
  // During abort-unwind the scheduler reaps the un-joined fiber itself;
  // outside of that, destroying an un-joined thread is a test bug.
  if (e != nullptr && !e->aborting()) {
    e->FailNoThrow("mc::Thread destroyed without join()");
  }
}

void Thread::join() {
  Execution::Current()->JoinThread(tid_);
  joined_ = true;
}

void Check(bool ok, const char* what) {
  if (ok) return;
  Execution* e = Execution::Current();
  if (e == nullptr) {
    std::fprintf(stderr, "mc::Check failed outside mc::Explore: %s\n", what);
    std::abort();
  }
  e->Fail(std::string("check failed: ") + what);
}

void SchedYield() { Execution::Current()->SchedulePoint(nullptr, "yield"); }

}  // namespace mc
}  // namespace pjoin
