// Instrumented drop-in atomics for model checking (relacy-style).
//
// mc::atomic<T> mirrors the std::atomic<T> surface the spine uses
// (load/store/fetch_add/exchange/CAS plus C++20 wait/notify) but routes
// every operation through the virtual scheduler in check/scheduler.h:
//
//   - every op is a scheduling point (the explorer may switch threads
//     before the op takes effect),
//   - acquire loads join the location's published vector clock; release
//     stores publish the storing thread's clock — the happens-before
//     edges mc::Cell uses for race detection,
//   - a *relaxed* store breaks the release chain (later acquire loads get
//     no edge), which is exactly how a wrongly-relaxed publish surfaces
//     as a data race on the payload,
//   - under ExploreOptions::tso, relaxed/release stores sit in a per-thread
//     store buffer until a scheduler-chosen flush; RMWs and seq_cst stores
//     drain the buffer first (x86 LOCK semantics); own loads forward from
//     the own buffer,
//   - wait() is futex-faithful: re-check and park are atomic with respect
//     to notify (no scheduling point in between), there are NO spurious
//     wakeups, and notify_one wakes the lowest-tid waiter — so a protocol
//     that relies on a re-check loop deadlocks in the model exactly when
//     it can deadlock for real.
//
// seq_cst is modeled as acq_rel (no total order across locations). That is
// an over-approximation — it can produce false races, never missed ones —
// and is sufficient for this codebase, which relies on acq/rel only.
//
// mc::Cell<T> wraps a NON-atomic payload slot (ring storage) and flags any
// cross-thread access without a happens-before edge as a data race.
//
// PRODUCTION CODE MUST NOT INCLUDE THIS HEADER — mc types are orders of
// magnitude slower and single-OS-thread only. tools/lint_check.py enforces
// that only tests and src/check/ may include it; production templates take
// these types via an atomics-policy parameter instead (mc::ModelPolicy vs
// pjoin::RawAtomicsPolicy in src/common/spsc_ring.h).

#ifndef PJOIN_CHECK_MODEL_ATOMIC_H_
#define PJOIN_CHECK_MODEL_ATOMIC_H_

#include <atomic>  // std::memory_order only; no std::atomic instances here
#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <utility>

#include "check/scheduler.h"

namespace pjoin {
namespace mc {

namespace detail {

inline bool IsAcquire(std::memory_order o) {
  return o == std::memory_order_acquire || o == std::memory_order_consume ||
         o == std::memory_order_acq_rel || o == std::memory_order_seq_cst;
}

inline bool IsRelease(std::memory_order o) {
  return o == std::memory_order_release || o == std::memory_order_acq_rel ||
         o == std::memory_order_seq_cst;
}

}  // namespace detail

template <typename T>
class atomic : public AtomicBase {
  static_assert(sizeof(T) <= 8, "mc::atomic models <= 8-byte scalars");
  static_assert(std::is_trivially_copyable_v<T>,
                "mc::atomic requires a trivially copyable T");

 public:
  atomic() : atomic(T{}) {}
  // NOLINTNEXTLINE(google-explicit-constructor): mirrors std::atomic init.
  atomic(T v) : committed_(v) {}

  T load(std::memory_order order) const {
    Execution* e = Execution::Current();
    const int tid = e->SchedulePoint(this, "load");
    uint64_t bits = 0;
    if (e->tso() && e->PeekBuffered(this, &bits)) {
      return FromBits(bits);  // store-to-load forwarding; no sync edge
    }
    if (detail::IsAcquire(order) && released_) {
      e->thread_clock(tid).Join(sync_clock_);
    }
    return committed_;
  }

  void store(T v, std::memory_order order) {
    Execution* e = Execution::Current();
    const int tid = e->SchedulePoint(this, "store");
    const bool release = detail::IsRelease(order);
    if (e->tso()) {
      if (order != std::memory_order_seq_cst) {
        e->BufferStore(this, ToBits(v), release);
        return;
      }
      e->FlushCurrentThread();  // seq_cst store drains the buffer (MFENCE)
    }
    CommitStoreBits(ToBits(v), release, e->thread_clock(tid));
  }

  T fetch_add(T delta, std::memory_order order) {
    return Rmw(order, "fetch_add",
               [delta](T old) { return static_cast<T>(old + delta); });
  }

  T fetch_sub(T delta, std::memory_order order) {
    return Rmw(order, "fetch_sub",
               [delta](T old) { return static_cast<T>(old - delta); });
  }

  T exchange(T v, std::memory_order order) {
    return Rmw(order, "exchange", [v](T) { return v; });
  }

  bool compare_exchange_strong(T& expected, T desired,
                               std::memory_order order) {
    Execution* e = Execution::Current();
    const int tid = e->SchedulePoint(this, "cas");
    if (e->tso()) e->FlushCurrentThread();  // LOCK'd op
    const T old = committed_;
    if (detail::IsAcquire(order) && released_) {
      e->thread_clock(tid).Join(sync_clock_);
    }
    if (!(old == expected)) {
      expected = old;
      return false;
    }
    CommitRmw(ToBits(desired), detail::IsRelease(order), e, tid);
    return true;
  }

  /// C++20 std::atomic::wait with futex fidelity: the value re-check and
  /// the park are one indivisible step relative to notifiers, and there
  /// are no spurious wakeups — a lost-wakeup protocol bug blocks forever
  /// here and is reported as a deadlock.
  void wait(T old, std::memory_order order) const {
    Execution* e = Execution::Current();
    for (;;) {
      const int tid = e->SchedulePoint(this, "wait");
      uint64_t bits = 0;
      if (e->tso() && e->PeekBuffered(this, &bits)) {
        if (!(FromBits(bits) == old)) return;  // own store; no sync edge
      } else if (!(committed_ == old)) {
        if (detail::IsAcquire(order) && released_) {
          e->thread_clock(tid).Join(sync_clock_);
        }
        return;
      }
      e->BlockOnAddress(this);  // woken only by notify on this address
    }
  }

  void notify_one() {
    Execution* e = Execution::Current();
    e->SchedulePoint(this, "notify_one");
    e->Notify(this, /*all=*/false);
  }

  void notify_all() {
    Execution* e = Execution::Current();
    e->SchedulePoint(this, "notify_all");
    e->Notify(this, /*all=*/true);
  }

  /// Scheduler hook: make a (possibly TSO-delayed) store visible.
  void CommitStoreBits(uint64_t bits, bool release,
                       const VectorClock& clock) override {
    committed_ = FromBits(bits);
    if (release) {
      released_ = true;
      sync_clock_ = clock;
    } else {
      // A relaxed store heads a NEW (empty) release sequence: later
      // acquire loads that read it synchronize with nothing.
      released_ = false;
    }
  }

 private:
  template <typename Fn>
  T Rmw(std::memory_order order, const char* op, Fn fn) {
    Execution* e = Execution::Current();
    const int tid = e->SchedulePoint(this, op);
    if (e->tso()) e->FlushCurrentThread();  // LOCK'd op drains the buffer
    const T old = committed_;
    if (detail::IsAcquire(order) && released_) {
      e->thread_clock(tid).Join(sync_clock_);
    }
    CommitRmw(ToBits(fn(old)), detail::IsRelease(order), e, tid);
    return old;
  }

  void CommitRmw(uint64_t bits, bool release, Execution* e, int tid) {
    committed_ = FromBits(bits);
    if (release) {
      // A release RMW both continues any existing release sequence and
      // publishes this thread's clock.
      sync_clock_.Join(e->thread_clock(tid));
      released_ = true;
    }
    // Relaxed RMW: release sequence continues — keep released_/sync_clock_.
  }

  static uint64_t ToBits(T v) {
    uint64_t b = 0;
    std::memcpy(&b, &v, sizeof(T));
    return b;
  }
  static T FromBits(uint64_t b) {
    T v{};
    std::memcpy(&v, &b, sizeof(T));
    return v;
  }

  T committed_;
  bool released_ = false;      // last committed store carried release
  VectorClock sync_clock_{};   // clock published by the release (sequence)
};

/// Race-checked non-atomic payload slot. Every access (Store and the
/// mutating MoveTo) is treated as a write; two accesses from different
/// threads without a happens-before edge between them are reported as a
/// data race with the failing interleaving.
template <typename T>
class Cell {
 public:
  Cell() = default;

  void Store(T&& v) {
    AccessCheck("Store");
    value_ = std::move(v);
  }

  void MoveTo(T* out) {
    AccessCheck("MoveTo");
    *out = std::move(value_);
  }

 private:
  void AccessCheck(const char* op) {
    Execution* e = Execution::Current();
    const int tid = e->SchedulePoint(this, "cell");
    if (last_tid_ >= 0 && last_tid_ != tid &&
        e->thread_clock(tid).c[last_tid_] < last_time_) {
      e->Fail(std::string("data race on mc::Cell (") + op + "): T" +
              std::to_string(tid) + " accesses a slot last touched by T" +
              std::to_string(last_tid_) + " with no happens-before edge");
    }
    last_tid_ = tid;
    last_time_ = e->TickClock();
  }

  T value_{};
  int last_tid_ = -1;     // last accessor
  uint64_t last_time_ = 0;  // accessor's own-clock stamp at that access
};

/// Atomics policy that instantiates the checked variants; the production
/// counterpart is pjoin::RawAtomicsPolicy (src/common/spsc_ring.h). Spin
/// budgets are tiny so spin loops stay cheap under exhaustive exploration
/// (every Yield is a scheduling point).
struct ModelPolicy {
  template <typename U>
  using Atomic = mc::atomic<U>;
  template <typename U>
  using Cell = mc::Cell<U>;
  static void Yield() { SchedYield(); }
  static constexpr int kSpinIters = 2;
  static constexpr int kBusySpins = 1;
};

}  // namespace mc
}  // namespace pjoin

#endif  // PJOIN_CHECK_MODEL_ATOMIC_H_
