// Deterministic model-checking scheduler for the lock-free spine
// (docs/STATIC_ANALYSIS.md "Model checking").
//
// TSan can only observe the interleavings the OS scheduler happens to
// produce; this explorer *enumerates* them. A test body runs under a
// cooperative virtual scheduler: every instrumented shared-memory operation
// (check/model_atomic.h) is a scheduling point, model threads are ucontext
// fibers multiplexed on the calling thread, and the explorer re-runs the
// body under systematically varied schedules:
//
//   - Depth-first enumeration of every schedule up to a preemption bound
//     (CHESS-style: unbounded = full exhaustive, bound k explores every
//     interleaving reachable with at most k involuntary context switches —
//     empirically the bound that finds almost all protocol bugs at k<=3).
//   - Seeded random walks beyond the DFS budget for larger configurations.
//
// What the harness detects, over *all* explored schedules:
//
//   - mc::Check assertion failures in the test body (lost/duplicated
//     elements, broken invariants),
//   - data races on mc::Cell payloads via vector-clock happens-before
//     tracking of the acquire/release edges the mc::atomic ops declare
//     (a misplaced memory_order_relaxed surfaces as a race even though
//     the interleaving "worked" by luck),
//   - deadlock: every thread parked in a futex-style wait with no wake
//     possible (the lost-wakeup failure mode of eventcount protocols),
//   - livelock: a schedule exceeding the per-run step budget.
//
// On failure, exploration stops and the failing schedule's full operation
// trace (thread, operation, location) is captured for replay/printing —
// the schedule prefix is deterministic, so re-running the same choices
// reproduces the bug exactly.
//
// The fibers share one OS thread, so model "threads" never run in
// parallel: all model state is mutated race-free by construction, and a
// run's decision sequence fully determines its behavior.

#ifndef PJOIN_CHECK_SCHEDULER_H_
#define PJOIN_CHECK_SCHEDULER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <random>
#include <string>
#include <ucontext.h>
#include <vector>

#include "common/macros.h"

namespace pjoin {
namespace mc {

/// Fibers are cheap; the spine's protocols need 2-4. Raising this only
/// costs vector-clock width.
inline constexpr int kMaxModelThreads = 8;

/// Vector clock over model threads, for happens-before race detection.
struct VectorClock {
  uint64_t c[kMaxModelThreads] = {};
  void Join(const VectorClock& o) {
    for (int i = 0; i < kMaxModelThreads; ++i) {
      if (o.c[i] > c[i]) c[i] = o.c[i];
    }
  }
};

/// Type-erased hook the scheduler uses to commit TSO-buffered stores back
/// into an mc::atomic<T> without knowing T.
class AtomicBase {
 public:
  virtual ~AtomicBase() = default;
  virtual void CommitStoreBits(uint64_t bits, bool release,
                               const VectorClock& clock) = 0;
};

struct ExploreOptions {
  /// Shown in the [MC] summary line (tools/mc_report.py).
  std::string label = "mc";
  /// Involuntary-context-switch budget per schedule; < 0 removes the bound
  /// (full exhaustive — feasible only for very small bodies).
  int max_preemptions = 2;
  /// DFS budget; when exceeded the result is marked non-exhaustive.
  int64_t max_schedules = 1 << 20;
  /// Extra seeded random-walk schedules (unbounded preemptions) appended
  /// after the DFS pass — coverage beyond the preemption bound.
  int64_t random_walks = 0;
  uint64_t seed = 1;
  /// Simulate TSO store buffers: relaxed/release stores become visible to
  /// other threads only at a (scheduler-chosen) later flush point; RMWs and
  /// seq_cst stores drain the buffer first, like x86 LOCK ops.
  bool tso = false;
  /// Per-schedule livelock guard.
  int64_t max_steps = 200000;
};

struct ExploreResult {
  int64_t schedules = 0;
  /// Scheduling points visited across all schedules ("states explored").
  int64_t points = 0;
  /// True when the DFS enumerated every schedule within the preemption
  /// bound (the "exhaustive" claim is always relative to the bound).
  bool exhaustive = false;
  bool failed = false;
  std::string failure;
  /// Operation trace of the failing schedule (empty when !failed).
  std::vector<std::string> trace;

  // Echoed configuration, for the summary line.
  std::string label;
  int bound = 0;
  bool tso = false;

  /// One-line machine-parseable summary ("[MC] label=... schedules=...");
  /// tests print it, tools/mc_report.py aggregates it in CI.
  std::string Summary() const;
  std::string TraceString() const;
};

/// Thrown by the scheduler to unwind fibers when a run aborts (failure or
/// teardown). Deliberately not a std::exception so model code that catches
/// std::exception cannot swallow it.
struct AbortExecution {};

class Execution;

/// Runs `body` under every schedule (see ExploreOptions). The body runs as
/// model thread 0; it spawns peers with mc::Thread. All instrumented state
/// (mc::atomic, mc::Cell, the structures built around them) must be
/// constructed inside the body so each schedule starts fresh.
ExploreResult Explore(const ExploreOptions& options,
                      const std::function<void()>& body);

/// Model-thread handle, valid only inside an Explore body. Must be joined
/// before the body returns.
class Thread {
 public:
  explicit Thread(std::function<void()> fn);
  ~Thread();
  PJOIN_DISALLOW_COPY_AND_MOVE(Thread);
  void join();

 private:
  int tid_;
  bool joined_ = false;
};

/// Model assertion: failing records the schedule and aborts the run.
void Check(bool ok, const char* what);

/// Pure scheduling point (the model's std::this_thread::yield()).
void SchedYield();

// ---------------------------------------------------------------------------
// Execution: per-schedule state. Model code reaches it through
// Execution::Current(); tests only ever use Explore/Thread/Check.
// ---------------------------------------------------------------------------

class Execution {
 public:
  static Execution* Current();

  /// One scheduling point: records the trace entry, lets the explorer pick
  /// who runs next (possibly switching fibers), returns the current thread
  /// id once this thread is (re)granted.
  int SchedulePoint(const void* loc, const char* op);

  /// Parks the current thread on `loc` until Notify wakes it (futex
  /// semantics: value re-checks are the caller's loop).
  void BlockOnAddress(const void* loc);
  /// Wakes the lowest-tid waiter (or all) parked on `loc`.
  void Notify(const void* loc, bool all);

  [[noreturn]] void Fail(std::string what);
  /// Failure that must not throw (e.g. from a destructor during unwind).
  void FailNoThrow(std::string what);

  VectorClock& thread_clock(int tid);
  int current_tid() const { return current_; }
  /// Bumps and returns the current thread's own clock component (stamps
  /// mc::Cell accesses).
  uint64_t TickClock();

  bool tso() const { return options_.tso; }
  bool aborting() const { return abort_; }
  /// TSO: queue a store in the current thread's buffer (flushing the
  /// oldest entry first when the buffer is full).
  void BufferStore(AtomicBase* loc, uint64_t bits, bool release);
  /// TSO: newest buffered value for `loc` in the current thread's buffer.
  bool PeekBuffered(const AtomicBase* loc, uint64_t* bits) const;
  /// TSO: drain the current thread's buffer (RMW / seq_cst-store / wakeup
  /// barrier semantics).
  void FlushCurrentThread();

  // Used by mc::Thread.
  int CreateThread(std::function<void()> fn);
  void JoinThread(int tid);

 private:
  friend ExploreResult Explore(const ExploreOptions&,
                               const std::function<void()>&);

  enum class Run { kDfs, kRandom };
  enum class State : uint8_t {
    kReady,        // runnable, parked at a scheduling point (or unstarted)
    kRunning,      // the single live fiber
    kBlocked,      // futex-parked on blocked_addr
    kBlockedJoin,  // waiting for join_target to finish
    kFinished,
  };

  struct BufferedStore {
    AtomicBase* loc;
    uint64_t bits;
    bool release;
    VectorClock clock;
  };

  struct ThreadState {
    ucontext_t ctx{};        // saved at every park point
    ucontext_t start_ctx{};  // entry context (makecontext)
    std::unique_ptr<char[]> stack;
    std::function<void()> fn;
    State state = State::kFinished;
    bool started = false;
    const void* blocked_addr = nullptr;
    int join_target = -1;
    VectorClock clock;
    std::vector<BufferedStore> buffer;  // TSO store buffer (FIFO)
  };

  struct Action {
    enum Kind : uint8_t { kRunThread, kFlush, kDeadlock } kind;
    int tid;
  };

  struct Decision {
    int chosen;
    int n_enabled;
  };

  struct TraceEntry {
    int8_t tid;
    const char* op;
    int16_t loc_id;
  };

  Execution(const ExploreOptions& options, Run mode,
            const std::vector<int>* prefix, uint64_t walk_seed);

  void RunSchedule(const std::function<void()>& body);  // called by Explore
  static void TrampolineEntry();
  /// Picks and applies actions until a run-action lands; when the current
  /// thread is re-granted it returns (possibly after parking across a fiber
  /// switch). `self_enabled` is false when the caller just blocked.
  void ScheduleOut(bool self_enabled);
  std::vector<Action> ComputeEnabled(bool self_enabled) const;
  bool IsReady(int tid) const;
  int ChooseIndex(int n);
  /// Saves the current fiber into threads_[from].ctx and resumes `to`
  /// (starting its fiber lazily); returns when `from` is next granted.
  void SwitchFrom(int from, int to);
  /// Resumes `to` from a fiber that will never run again (finished).
  [[noreturn]] void JumpTo(int to);
  [[noreturn]] void TransferAfterFinish(int tid);
  void PrepareStart(int tid);
  bool AllFinished() const;
  std::string DeadlockMessage() const;
  void DoFlushOldest(int tid);
  void RecordTrace(int tid, const char* op, const void* loc);
  int LocId(const void* loc);
  std::vector<std::string> TraceLines() const;

  ExploreOptions options_;
  Run mode_;
  const std::vector<int>* prefix_;  // DFS replay prefix (may be null)
  std::mt19937_64 rng_;

  std::vector<ThreadState> threads_;
  int current_ = 0;
  int starting_tid_ = 0;  // arg hand-off into TrampolineEntry
  int preemptions_ = 0;
  int64_t steps_ = 0;
  bool abort_ = false;
  bool failed_ = false;
  std::string failure_;

  std::vector<Decision> decisions_;
  size_t decision_index_ = 0;
  std::vector<TraceEntry> trace_;
  std::vector<const void*> locs_;  // loc-id assignment, first-touch order

  ucontext_t main_ctx_{};
};

}  // namespace mc
}  // namespace pjoin

#endif  // PJOIN_CHECK_SCHEDULER_H_
