// Tuple: a row of Values conforming to a Schema.

#ifndef PJOIN_TUPLE_TUPLE_H_
#define PJOIN_TUPLE_TUPLE_H_

#include <string>
#include <vector>

#include "tuple/schema.h"
#include "tuple/value.h"

namespace pjoin {

/// A row of field values. Value-semantic: copies are deep (strings copy).
/// The schema is shared and never owned uniquely by a tuple.
class Tuple {
 public:
  Tuple() = default;
  Tuple(SchemaPtr schema, std::vector<Value> values);

  const SchemaPtr& schema() const { return schema_; }
  size_t num_fields() const { return values_.size(); }

  const Value& field(size_t i) const;
  /// Field by name; the name must exist (checked).
  const Value& field(const std::string& name) const;
  const std::vector<Value>& values() const { return values_; }

  /// Approximate in-memory footprint of the payload in bytes.
  size_t ByteSize() const;

  /// Concatenation of this tuple and `right` under a pre-computed schema.
  static Tuple Concat(const Tuple& left, const Tuple& right,
                      SchemaPtr out_schema);

  std::string ToString() const;

  friend bool operator==(const Tuple& a, const Tuple& b) {
    return a.values_ == b.values_;
  }
  friend bool operator!=(const Tuple& a, const Tuple& b) { return !(a == b); }
  /// Lexicographic order over values; used to canonicalize result multisets
  /// in tests.
  friend bool operator<(const Tuple& a, const Tuple& b);

 private:
  SchemaPtr schema_;
  std::vector<Value> values_;
};

/// Fluent construction of tuples against a schema, with type checking.
class TupleBuilder {
 public:
  explicit TupleBuilder(SchemaPtr schema);

  /// Appends the next field value; its type must match the schema (or be
  /// null).
  TupleBuilder& Add(Value v);

  /// Finishes the tuple; all fields must have been added.
  Tuple Build();

 private:
  SchemaPtr schema_;
  std::vector<Value> values_;
};

}  // namespace pjoin

#endif  // PJOIN_TUPLE_TUPLE_H_
