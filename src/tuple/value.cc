#include "tuple/value.h"

#include <cstdio>
#include <cstring>

#include "common/macros.h"

namespace pjoin {

std::string_view ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt64:
      return "int64";
    case ValueType::kFloat64:
      return "float64";
    case ValueType::kString:
      return "string";
  }
  return "?";
}

ValueType Value::type() const {
  switch (payload_.index()) {
    case 0:
      return ValueType::kNull;
    case 1:
      return ValueType::kInt64;
    case 2:
      return ValueType::kFloat64;
    default:
      return ValueType::kString;
  }
}

int64_t Value::AsInt64() const {
  PJOIN_DCHECK(type() == ValueType::kInt64);
  return std::get<int64_t>(payload_);
}

double Value::AsFloat64() const {
  PJOIN_DCHECK(type() == ValueType::kFloat64);
  return std::get<double>(payload_);
}

const std::string& Value::AsString() const {
  PJOIN_DCHECK(type() == ValueType::kString);
  return std::get<std::string>(payload_);
}

namespace {

// 64-bit FNV-1a over raw bytes, with a per-type seed so that e.g. int64(0)
// and float64(0.0) do not collide structurally.
uint64_t FnvHash(const void* data, size_t len, uint64_t seed) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ULL ^ seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

uint64_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9ae16a3b2f90404fULL;
    case ValueType::kInt64: {
      int64_t v = std::get<int64_t>(payload_);
      return FnvHash(&v, sizeof(v), 1);
    }
    case ValueType::kFloat64: {
      double d = std::get<double>(payload_);
      if (d == 0.0) d = 0.0;  // normalize -0.0
      return FnvHash(&d, sizeof(d), 2);
    }
    case ValueType::kString: {
      const std::string& s = std::get<std::string>(payload_);
      return FnvHash(s.data(), s.size(), 3);
    }
  }
  return 0;
}

size_t Value::ByteSize() const {
  size_t base = sizeof(Value);
  if (type() == ValueType::kString) base += std::get<std::string>(payload_).size();
  return base;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt64:
      return std::to_string(std::get<int64_t>(payload_));
    case ValueType::kFloat64: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%g", std::get<double>(payload_));
      return buf;
    }
    case ValueType::kString:
      return "\"" + std::get<std::string>(payload_) + "\"";
  }
  return "?";
}

bool operator==(const Value& a, const Value& b) {
  if (a.type() != b.type()) return false;
  return a.payload_ == b.payload_;
}

bool operator<(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return a.is_null() && !b.is_null();
  PJOIN_DCHECK(a.type() == b.type());
  switch (a.type()) {
    case ValueType::kInt64:
      return std::get<int64_t>(a.payload_) < std::get<int64_t>(b.payload_);
    case ValueType::kFloat64:
      return std::get<double>(a.payload_) < std::get<double>(b.payload_);
    case ValueType::kString:
      return std::get<std::string>(a.payload_) <
             std::get<std::string>(b.payload_);
    default:
      return false;
  }
}

}  // namespace pjoin
