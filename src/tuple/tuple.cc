#include "tuple/tuple.h"

#include <sstream>

#include "common/macros.h"

namespace pjoin {

Tuple::Tuple(SchemaPtr schema, std::vector<Value> values)
    : schema_(std::move(schema)), values_(std::move(values)) {
  PJOIN_DCHECK(schema_ != nullptr);
  PJOIN_DCHECK(schema_->num_fields() == values_.size());
}

const Value& Tuple::field(size_t i) const {
  PJOIN_DCHECK(i < values_.size());
  return values_[i];
}

const Value& Tuple::field(const std::string& name) const {
  auto idx = schema_->IndexOf(name);
  PJOIN_DCHECK(idx.ok());
  return values_[idx.value()];
}

size_t Tuple::ByteSize() const {
  size_t total = sizeof(Tuple);
  for (const auto& v : values_) total += v.ByteSize();
  return total;
}

Tuple Tuple::Concat(const Tuple& left, const Tuple& right,
                    SchemaPtr out_schema) {
  std::vector<Value> values;
  values.reserve(left.values_.size() + right.values_.size());
  values.insert(values.end(), left.values_.begin(), left.values_.end());
  values.insert(values.end(), right.values_.begin(), right.values_.end());
  return Tuple(std::move(out_schema), std::move(values));
}

std::string Tuple::ToString() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) os << ", ";
    if (schema_ != nullptr) os << schema_->field(i).name << "=";
    os << values_[i].ToString();
  }
  os << "]";
  return os.str();
}

bool operator<(const Tuple& a, const Tuple& b) {
  const size_t n = std::min(a.values_.size(), b.values_.size());
  for (size_t i = 0; i < n; ++i) {
    if (a.values_[i] < b.values_[i]) return true;
    if (b.values_[i] < a.values_[i]) return false;
  }
  return a.values_.size() < b.values_.size();
}

TupleBuilder::TupleBuilder(SchemaPtr schema) : schema_(std::move(schema)) {
  PJOIN_DCHECK(schema_ != nullptr);
  values_.reserve(schema_->num_fields());
}

TupleBuilder& TupleBuilder::Add(Value v) {
  PJOIN_DCHECK(values_.size() < schema_->num_fields());
  const Field& f = schema_->field(values_.size());
  PJOIN_DCHECK(v.is_null() || v.type() == f.type);
  values_.push_back(std::move(v));
  return *this;
}

Tuple TupleBuilder::Build() {
  PJOIN_DCHECK(values_.size() == schema_->num_fields());
  return Tuple(schema_, std::move(values_));
}

}  // namespace pjoin
