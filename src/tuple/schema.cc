#include "tuple/schema.h"

#include <sstream>
#include <unordered_set>

#include "common/macros.h"

namespace pjoin {

Schema::Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

SchemaPtr Schema::Make(std::vector<Field> fields) {
  return std::make_shared<const Schema>(std::move(fields));
}

const Field& Schema::field(size_t i) const {
  PJOIN_DCHECK(i < fields_.size());
  return fields_[i];
}

Result<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  return Status::NotFound("no field named '" + name + "'");
}

bool Schema::Contains(const std::string& name) const {
  return IndexOf(name).ok();
}

SchemaPtr Schema::Concat(const Schema& left, const Schema& right,
                         const std::string& suffix) {
  std::vector<Field> fields = left.fields_;
  std::unordered_set<std::string> taken;
  for (const auto& f : fields) taken.insert(f.name);
  for (const auto& f : right.fields_) {
    std::string name = f.name;
    while (taken.count(name) > 0) name += suffix;
    taken.insert(name);
    fields.push_back(Field{name, f.type});
  }
  return Make(std::move(fields));
}

std::string Schema::ToString() const {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) os << ", ";
    os << fields_[i].name << ":" << ValueTypeName(fields_[i].type);
  }
  os << ")";
  return os.str();
}

}  // namespace pjoin
