// Schema: an ordered list of named, typed fields.

#ifndef PJOIN_TUPLE_SCHEMA_H_
#define PJOIN_TUPLE_SCHEMA_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "tuple/value.h"

namespace pjoin {

/// One field of a schema.
struct Field {
  std::string name;
  ValueType type;

  friend bool operator==(const Field& a, const Field& b) {
    return a.name == b.name && a.type == b.type;
  }
};

class Schema;
using SchemaPtr = std::shared_ptr<const Schema>;

/// Immutable tuple layout. Shared between all tuples of one stream.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields);

  /// Convenience factory returning a shared immutable schema.
  static SchemaPtr Make(std::vector<Field> fields);

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const;
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the field named `name`, or NotFound.
  Result<size_t> IndexOf(const std::string& name) const;

  /// True if a field named `name` exists.
  bool Contains(const std::string& name) const;

  /// Schema of the concatenation of a left and a right tuple, as produced by
  /// a join. Right-side names that collide get a `suffix` appended.
  static SchemaPtr Concat(const Schema& left, const Schema& right,
                          const std::string& suffix = "_r");

  std::string ToString() const;

  friend bool operator==(const Schema& a, const Schema& b) {
    return a.fields_ == b.fields_;
  }

 private:
  std::vector<Field> fields_;
};

}  // namespace pjoin

#endif  // PJOIN_TUPLE_SCHEMA_H_
