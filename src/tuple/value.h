// Value: a dynamically typed field value (null / int64 / float64 / string).

#ifndef PJOIN_TUPLE_VALUE_H_
#define PJOIN_TUPLE_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

namespace pjoin {

/// Runtime type of a Value / schema field.
enum class ValueType { kNull = 0, kInt64, kFloat64, kString };

std::string_view ValueTypeName(ValueType type);

/// A single dynamically typed field value. Small, value-semantic, ordered.
///
/// Ordering and equality are only meaningful between values of the same type
/// (enforced with PJOIN_DCHECK); nulls compare equal to each other and less
/// than everything else.
class Value {
 public:
  /// Null value.
  Value() : payload_(std::monostate{}) {}
  /// Integer value.
  Value(int64_t v) : payload_(v) {}  // NOLINT(runtime/explicit)
  /// Floating-point value.
  Value(double v) : payload_(v) {}  // NOLINT(runtime/explicit)
  /// String value.
  Value(std::string v)  // NOLINT(runtime/explicit)
      : payload_(std::move(v)) {}
  /// String value from a literal.
  Value(const char* v) : payload_(std::string(v)) {}  // NOLINT

  static Value Null() { return Value(); }

  ValueType type() const;
  bool is_null() const { return type() == ValueType::kNull; }

  /// Typed accessors; the value must hold the requested type.
  int64_t AsInt64() const;
  double AsFloat64() const;
  const std::string& AsString() const;

  /// Stable 64-bit hash (used by the join hash tables).
  uint64_t Hash() const;

  /// Approximate in-memory footprint in bytes (for state accounting).
  size_t ByteSize() const;

  std::string ToString() const;

  /// Three-way comparison; both values must have the same type unless one
  /// is null (null sorts first).
  friend bool operator==(const Value& a, const Value& b);
  friend bool operator<(const Value& a, const Value& b);

 private:
  std::variant<std::monostate, int64_t, double, std::string> payload_;
};

inline bool operator!=(const Value& a, const Value& b) { return !(a == b); }
inline bool operator>(const Value& a, const Value& b) { return b < a; }
inline bool operator<=(const Value& a, const Value& b) { return !(b < a); }
inline bool operator>=(const Value& a, const Value& b) { return !(a < b); }

/// Hash functor for use with unordered containers.
struct ValueHash {
  size_t operator()(const Value& v) const {
    return static_cast<size_t>(v.Hash());
  }
};

}  // namespace pjoin

#endif  // PJOIN_TUPLE_VALUE_H_
