#include "join/tuple_entry.h"

#include <cstring>

#include "common/macros.h"

namespace pjoin {
namespace {

void PutRaw(std::string* out, const void* data, size_t len) {
  out->append(static_cast<const char*>(data), len);
}

template <typename T>
void PutPod(std::string* out, T v) {
  PutRaw(out, &v, sizeof(T));
}

template <typename T>
bool GetPod(std::string_view in, size_t* pos, T* v) {
  if (*pos + sizeof(T) > in.size()) return false;
  std::memcpy(v, in.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return true;
}

void PutValue(std::string* out, const Value& v) {
  PutPod<uint8_t>(out, static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt64:
      PutPod<int64_t>(out, v.AsInt64());
      break;
    case ValueType::kFloat64:
      PutPod<double>(out, v.AsFloat64());
      break;
    case ValueType::kString: {
      const std::string& s = v.AsString();
      PutPod<uint32_t>(out, static_cast<uint32_t>(s.size()));
      PutRaw(out, s.data(), s.size());
      break;
    }
  }
}

bool GetValue(std::string_view in, size_t* pos, Value* v) {
  uint8_t tag;
  if (!GetPod(in, pos, &tag)) return false;
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      *v = Value::Null();
      return true;
    case ValueType::kInt64: {
      int64_t x;
      if (!GetPod(in, pos, &x)) return false;
      *v = Value(x);
      return true;
    }
    case ValueType::kFloat64: {
      double x;
      if (!GetPod(in, pos, &x)) return false;
      *v = Value(x);
      return true;
    }
    case ValueType::kString: {
      uint32_t len;
      if (!GetPod(in, pos, &len)) return false;
      if (*pos + len > in.size()) return false;
      *v = Value(std::string(in.substr(*pos, len)));
      *pos += len;
      return true;
    }
  }
  return false;
}

}  // namespace

std::string TupleEntry::Serialize() const {
  std::string out;
  out.reserve(32 + tuple.ByteSize());
  PutPod<int64_t>(&out, ats);
  PutPod<int64_t>(&out, dts);
  PutPod<int64_t>(&out, pid);
  PutPod<uint32_t>(&out, static_cast<uint32_t>(tuple.num_fields()));
  for (const Value& v : tuple.values()) PutValue(&out, v);
  return out;
}

Result<TupleEntry> TupleEntry::Deserialize(std::string_view record,
                                           SchemaPtr schema) {
  TupleEntry entry;
  size_t pos = 0;
  uint32_t nfields = 0;
  if (!GetPod(record, &pos, &entry.ats) || !GetPod(record, &pos, &entry.dts) ||
      !GetPod(record, &pos, &entry.pid) || !GetPod(record, &pos, &nfields)) {
    return Status::Internal("truncated tuple entry header");
  }
  if (schema != nullptr && nfields != schema->num_fields()) {
    return Status::Internal("tuple entry field count mismatch");
  }
  std::vector<Value> values;
  values.reserve(nfields);
  for (uint32_t i = 0; i < nfields; ++i) {
    Value v;
    if (!GetValue(record, &pos, &v)) {
      return Status::Internal("truncated tuple entry value");
    }
    values.push_back(std::move(v));
  }
  entry.tuple = Tuple(std::move(schema), std::move(values));
  return entry;
}

}  // namespace pjoin
