#include "join/pjoin.h"

#include <algorithm>

#include "obs/progress.h"
#include "obs/trace.h"

namespace pjoin {

// Maps the monitor's notion of "now" to the virtual time of the most
// recently processed stream element.
class PJoin::ArrivalClock : public Clock {
 public:
  explicit ArrivalClock(const JoinOperator* op) : op_(op) {}
  TimeMicros NowMicros() const override { return op_->last_arrival(); }

 private:
  const JoinOperator* op_;
};

// An event listener that forwards to a PJoin member function.
class PJoin::Component : public EventListener {
 public:
  using Handler = Status (PJoin::*)();

  Component(PJoin* join, std::string name, Handler handler)
      : join_(join), name_(std::move(name)), handler_(handler) {}

  std::string_view name() const override { return name_; }

  Status HandleEvent(const Event& event) override {
    (void)event;
    return (join_->*handler_)();
  }

 private:
  PJoin* join_;
  std::string name_;
  Handler handler_;
};

PJoin::PJoin(SchemaPtr left_schema, SchemaPtr right_schema,
             JoinOptions options)
    : JoinOperator(std::move(left_schema), std::move(right_schema),
                   std::move(options)) {
  punct_sets_[0] = std::make_unique<PunctuationSet>(
      this->options().left_key, this->options().validate_prefix);
  punct_sets_[1] = std::make_unique<PunctuationSet>(
      this->options().right_key, this->options().validate_prefix);
  clock_ = std::make_unique<ArrivalClock>(this);
  monitor_ =
      std::make_unique<Monitor>(this->options().runtime, &registry_,
                                clock_.get());
  disk_pass_tick_.assign(
      static_cast<size_t>(this->options().num_partitions), -1);

  purge_component_ =
      std::make_unique<Component>(this, "state-purge", &PJoin::RunPurge);
  relocation_component_ = std::make_unique<Component>(
      this, "state-relocation", &PJoin::RelocateUntilBelowThreshold);
  disk_join_component_ =
      std::make_unique<Component>(this, "disk-join", &PJoin::RunDiskJoin);
  index_build_component_ = std::make_unique<Component>(
      this, "index-build", &PJoin::RunIndexBuildBoth);
  propagation_component_ = std::make_unique<Component>(
      this, "propagation", &PJoin::RunPropagation);

  // The event-listener registry (paper Table 1). Listeners run in
  // registration order: before propagating we first finish left-over joins
  // (disk join, only when some disk-resident tuple may be unindexed) and
  // build the punctuation index.
  registry_.Register(EventType::kPurgeThresholdReach, purge_component_.get());
  registry_.Register(EventType::kStateFull, relocation_component_.get());
  registry_.Register(EventType::kDiskJoinActivate, disk_join_component_.get());
  for (EventType type :
       {EventType::kPropagateCountReach, EventType::kPropagateTimeExpire,
        EventType::kPropagateRequest}) {
    registry_.Register(type, disk_join_component_.get(),
                       [this](const Event&) {
                         return state(0).has_unindexed_disk() ||
                                state(1).has_unindexed_disk();
                       });
    registry_.Register(type, index_build_component_.get());
    registry_.Register(type, propagation_component_.get());
  }

  // Under memory pressure, let the SpillManager purge punctuation-dead
  // tuples of the victim partition in place before paying the disk write
  // (PJoin's edge over any plain hybrid-hash spiller).
  spill_manager().set_early_purger([this](int side, int p) {
    return EarlyPurgePartition(side, p);
  });
}

PJoin::~PJoin() = default;

const PunctuationSet& PJoin::punct_set(int side) const {
  PJOIN_DCHECK(side == 0 || side == 1);
  return *punct_sets_[side];
}

const std::vector<Tuple>& PJoin::quarantined_tuples(int side) const {
  PJOIN_DCHECK(side == 0 || side == 1);
  return quarantined_tuples_[side];
}

const std::vector<Punctuation>& PJoin::quarantined_puncts(int side) const {
  PJOIN_DCHECK(side == 0 || side == 1);
  return quarantined_puncts_[side];
}

Status PJoin::OnContractViolation(int side, std::string_view kind,
                                  const Tuple* tuple,
                                  const Punctuation* punct) {
  counters().Add("contract_violations");
  counters().Add("violation_" + std::string(kind));
  PJOIN_RETURN_NOT_OK(registry_.Dispatch(Event{EventType::kContractViolation,
                                               last_arrival(), side,
                                               std::string(kind)}));
  switch (options().violation_policy) {
    case ViolationPolicy::kQuarantine:
      if (tuple != nullptr) quarantined_tuples_[side].push_back(*tuple);
      if (punct != nullptr) quarantined_puncts_[side].push_back(*punct);
      return Status::OK();
    case ViolationPolicy::kFail:
      return Status::FailedPrecondition(
          "punctuation-contract violation on stream " +
          std::to_string(side) + ": " + std::string(kind));
    case ViolationPolicy::kIgnore:  // unreachable: checks are off
    case ViolationPolicy::kDrop:
      return Status::OK();
  }
  return Status::OK();
}

Status PJoin::OnTuple(int side, const Tuple& tuple) {
  return OnTupleHashed(side, tuple, state(side).KeyOf(tuple).Hash());
}

Status PJoin::OnTupleHashed(int side, const Tuple& tuple,
                            uint64_t key_hash) {
  // Contract check: this stream promised — via one of its own earlier
  // punctuations — never to send a tuple with this key again. Processing a
  // late tuple would corrupt purge decisions (its matches may already be
  // purged from the opposite state), so it is dropped/quarantined before it
  // can probe or be stored.
  if (options().violation_policy != ViolationPolicy::kIgnore &&
      punct_sets_[side]->SetMatchKey(state(side).KeyOf(tuple))) {
    return OnContractViolation(side, "late_tuple", &tuple, nullptr);
  }
  const int64_t tick = NextTick();
  HashState& own = mutable_state(side);
  HashState& opp = mutable_state(1 - side);
  ProbeOppositeMemory(side, tuple, key_hash);

  // On-the-fly drop (§4.3): a tuple already covered by the opposite
  // stream's punctuations can never join future opposite tuples; it only
  // still owes joins against the opposite disk portion, if any.
  if (options().drop_on_the_fly &&
      punct_sets_[1 - side]->SetMatchKey(own.KeyOf(tuple))) {
    const int p = own.PartitionOfHash(key_hash);
    if (opp.disk_tuples(p) > 0) {
      TupleEntry entry;
      entry.tuple = tuple;
      entry.ats = tick;
      entry.dts = tick + 1;  // present only during its own arrival tick
      entry.key_hash = key_hash;
      own.AddToPurgeBuffer(p, std::move(entry));
      counters().Add("otf_to_purge_buffer");
    } else {
      counters().Add("otf_drops");
    }
  } else {
    InsertTuple(side, tuple, tick, key_hash);
  }

  PJOIN_RETURN_NOT_OK(monitor_->OnStateSizeChanged(memory_state_tuples(),
                                                   memory_state_bytes()));
  return monitor_->Tick();
}

Status PJoin::OnPunctuation(int side, const Punctuation& punct) {
  // Contract checks: a malformed punctuation (wrong arity for the schema,
  // or containing an empty pattern) must never reach the punctuation set —
  // its patterns would be evaluated against the wrong attributes and could
  // purge state that still owes joins.
  if (options().violation_policy != ViolationPolicy::kIgnore) {
    if (punct.num_patterns() != state(side).schema()->num_fields()) {
      return OnContractViolation(side, "malformed_punctuation_arity", nullptr,
                                 &punct);
    }
    if (punct.IsEmpty()) {
      return OnContractViolation(side, "malformed_punctuation_empty", nullptr,
                                 &punct);
    }
  }
  TRACE_INSTANT("pjoin", "punct_arrival");
  NextTick();
  HashState& own = mutable_state(side);
  Result<int64_t> pid = punct_sets_[side]->Add(punct, last_arrival());
  if (!pid.ok()) {
    // With prefix validation on, a non-prefix punctuation is routed through
    // the violation policy instead of aborting the join outright.
    if (options().violation_policy != ViolationPolicy::kIgnore &&
        pid.status().code() == StatusCode::kFailedPrecondition) {
      return OnContractViolation(side, "non_prefix_punctuation", nullptr,
                                 &punct);
    }
    return pid.status();
  }

  // Disk-resident tuples of this stream have not been evaluated against the
  // new punctuation; propagation must run a disk pass first.
  if (own.disk_tuples() > 0) own.set_has_unindexed_disk(true);

  // Frontier accounting: a punctuation on this side should purge the
  // opposite side's resident state once the (lazy) purge runs. Record the
  // expectation so the health layer can surface purges that pile up
  // without firing.
  if (frontier_shard() >= 0 && state(1 - side).memory_tuples() > 0) {
    obs::FrontierTracker::Global().NotePurgeExpected(
        frontier_shard(), state(1 - side).memory_tuples(),
        obs::TraceNowMicros());
  }

  if (options().eager_index_build) {
    PJOIN_RETURN_NOT_OK(RunIndexBuild(side));
  }
  PJOIN_RETURN_NOT_OK(monitor_->OnPunctuationArrived(side));
  return monitor_->Tick();
}

Status PJoin::OnStreamsStalled() {
  return monitor_->OnStreamsEmpty(state(0).disk_tuples() +
                                  state(1).disk_tuples());
}

Status PJoin::RequestPropagation() { return monitor_->RequestPropagation(); }

Status PJoin::RunPurge() {
  TRACE_SPAN("pjoin", "purge");
  counters().Add("purge_runs");
  PJOIN_RETURN_NOT_OK(PurgeState(0));
  PJOIN_RETURN_NOT_OK(PurgeState(1));
  // Every pending punctuation was applied by the two passes above.
  if (frontier_shard() >= 0) {
    obs::FrontierTracker::Global().NotePurgeFired(frontier_shard());
  }
  monitor_->OnPurgeRan();
  PJOIN_RETURN_NOT_OK(monitor_->OnStateSizeChanged(memory_state_tuples(),
                                                   memory_state_bytes()));
  if (options().eager_propagation) {
    PJOIN_RETURN_NOT_OK(RunPropagation());
  }
  return Status::OK();
}

Status PJoin::PurgeState(int side) {
  HashState& own = mutable_state(side);
  HashState& opp = mutable_state(1 - side);
  PunctuationSet& opp_ps = *punct_sets_[1 - side];
  if (opp_ps.empty()) return Status::OK();
  const int64_t purge_tick = NextTick();

  auto dispose = [&](int p, std::vector<TupleEntry> extracted) {
    for (TupleEntry& e : extracted) {
      e.dts = purge_tick;
      if (opp.disk_tuples(p) > 0) {
        // The tuple may still join opposite disk-resident tuples: park it in
        // the purge buffer until the disk join clears it (paper §3.1).
        own.AddToPurgeBuffer(p, std::move(e));
        counters().Add("purge_buffered");
      } else {
        DiscardEntry(side, e);
        counters().Add("purged_tuples");
      }
    }
  };

  if (options().purge_mode == PurgeMode::kScan) {
    // The paper's algorithm: scan the memory state applying setMatch. The
    // scan cost, proportional to the state size, is what makes eager purge
    // expensive (Fig 9).
    opp_ps.TakeUnappliedForPurge();  // mark them applied
    for (int p = 0; p < own.num_partitions(); ++p) {
      counters().Add("purge_scanned",
                     static_cast<int64_t>(own.memory(p).size()));
      dispose(p, own.ExtractMemoryMatching(p, [&](const TupleEntry& e) {
        return opp_ps.SetMatchKey(own.KeyOf(e.tuple));
      }));
    }
  } else {
    // Indexed purge (extension): jump straight to the partitions named by
    // the not-yet-applied punctuations. (Pair with drop_on_the_fly: covered
    // tuples arriving after a punctuation was applied are handled there.)
    for (int64_t pid : opp_ps.TakeUnappliedForPurge()) {
      const PunctEntry* pe = opp_ps.Find(pid);
      if (pe == nullptr || !pe->key_only) continue;
      const Pattern& pattern = pe->punct.pattern(opp.key_index());
      if (pattern.IsConstant()) {
        const int p = own.PartitionOf(pattern.constant());
        counters().Add("purge_scanned",
                       static_cast<int64_t>(own.memory(p).size()));
        dispose(p, own.ExtractMemoryMatching(p, [&](const TupleEntry& e) {
          return own.KeyOf(e.tuple) == pattern.constant();
        }));
      } else {
        for (int p = 0; p < own.num_partitions(); ++p) {
          counters().Add("purge_scanned",
                         static_cast<int64_t>(own.memory(p).size()));
          dispose(p, own.ExtractMemoryMatching(p, [&](const TupleEntry& e) {
            return pattern.Matches(own.KeyOf(e.tuple));
          }));
        }
      }
    }
  }
  return Status::OK();
}

EarlyPurgeOutcome PJoin::EarlyPurgePartition(int side, int p) {
  EarlyPurgeOutcome out;
  HashState& own = mutable_state(side);
  HashState& opp = mutable_state(1 - side);
  PunctuationSet& opp_ps = *punct_sets_[1 - side];
  if (opp_ps.empty()) return out;
  const int64_t purge_tick = NextTick();
  std::vector<TupleEntry> extracted =
      own.ExtractMemoryMatching(p, [&](const TupleEntry& e) {
        return opp_ps.SetMatchKey(own.KeyOf(e.tuple));
      });
  // Same disposal rule as PurgeState: covered tuples that may still join
  // the opposite disk portion park in the purge buffer, the rest leave the
  // join entirely (their punctuations' match counts drop).
  for (TupleEntry& e : extracted) {
    ++out.tuples;
    out.bytes += static_cast<int64_t>(e.tuple.ByteSize());
    e.dts = purge_tick;
    if (opp.disk_tuples(p) > 0) {
      own.AddToPurgeBuffer(p, std::move(e));
      counters().Add("purge_buffered");
    } else {
      DiscardEntry(side, e);
      counters().Add("purged_tuples");
    }
  }
  if (out.tuples > 0) counters().Add("early_purge_passes");
  return out;
}

Status PJoin::RunDiskJoin() {
  TRACE_SPAN("pjoin", "disk_join");
  counters().Add("disk_join_runs");
  for (int p = 0; p < state(0).num_partitions(); ++p) {
    PJOIN_RETURN_NOT_OK(DiskJoinPartition(p));
  }
  mutable_state(0).set_has_unindexed_disk(false);
  mutable_state(1).set_has_unindexed_disk(false);
  return Status::OK();
}

Status PJoin::DiskJoinPartition(int p) {
  HashState& left = mutable_state(0);
  HashState& right = mutable_state(1);
  const bool any_disk = left.disk_tuples(p) > 0 || right.disk_tuples(p) > 0;
  const bool any_buffered =
      !left.purge_buffer(p).empty() || !right.purge_buffer(p).empty();
  if (!any_disk && !any_buffered) return Status::OK();

  const int64_t pass_tick = NextTick();
  PJOIN_ASSIGN_OR_RETURN(std::vector<TupleEntry> disk_l,
                         left.ReadDiskPartition(p));
  PJOIN_ASSIGN_OR_RETURN(std::vector<TupleEntry> disk_r,
                         right.ReadDiskPartition(p));
  // Snapshot the probe histories before recording this pass.
  const std::vector<int64_t> probes_l = left.probe_times(p);
  const std::vector<int64_t> probes_r = right.probe_times(p);
  static const std::vector<int64_t> kNoProbes;
  int64_t compared = 0;

  // The cached key hashes filter out most non-matching pairs before the
  // (potentially string) key comparison.
  auto keys_equal = [&](const TupleEntry& l, const TupleEntry& r) {
    ++compared;
    return l.key_hash == r.key_hash &&
           left.KeyOf(l.tuple) == right.KeyOf(r.tuple);
  };

  // 1) disk x opposite memory (XJoin's stages 2/3 combined); the memory
  // side is probed through its hash index.
  for (const TupleEntry& l : disk_l) {
    compared += right.ForEachMemoryMatch(
        p, left.KeyOf(l.tuple), l.key_hash, [&](const TupleEntry& r) {
          if (!JoinedBefore(l, probes_l, r, probes_r)) {
            EmitResult(l.tuple, r.tuple);
          }
        });
  }
  for (const TupleEntry& r : disk_r) {
    compared += left.ForEachMemoryMatch(
        p, right.KeyOf(r.tuple), r.key_hash, [&](const TupleEntry& l) {
          if (!JoinedBefore(l, probes_l, r, probes_r)) {
            EmitResult(l.tuple, r.tuple);
          }
        });
  }

  // 2) disk x disk; pairs that were both on disk by the previous pass over
  // this partition were already joined then.
  const int64_t last_pass = disk_pass_tick_[static_cast<size_t>(p)];
  for (const TupleEntry& l : disk_l) {
    for (const TupleEntry& r : disk_r) {
      if (last_pass >= 0 && l.dts <= last_pass && r.dts <= last_pass) {
        continue;
      }
      if (keys_equal(l, r) && !JoinedBefore(l, probes_l, r, probes_r)) {
        EmitResult(l.tuple, r.tuple);
      }
    }
  }

  // 3) purge buffers x opposite disk, then discard the buffers: their
  // entries owe nothing else (no future opposite tuple can match a purged
  // tuple's key, by punctuation semantics).
  std::vector<TupleEntry> buf_l = left.TakePurgeBuffer(p);
  std::vector<TupleEntry> buf_r = right.TakePurgeBuffer(p);
  for (const TupleEntry& l : buf_l) {
    for (const TupleEntry& r : disk_r) {
      if (keys_equal(l, r) && !JoinedBefore(l, kNoProbes, r, probes_r)) {
        EmitResult(l.tuple, r.tuple);
      }
    }
  }
  for (const TupleEntry& r : buf_r) {
    for (const TupleEntry& l : disk_l) {
      if (keys_equal(l, r) && !JoinedBefore(l, probes_l, r, kNoProbes)) {
        EmitResult(l.tuple, r.tuple);
      }
    }
  }
  for (const TupleEntry& e : buf_l) DiscardEntry(0, e);
  for (const TupleEntry& e : buf_r) DiscardEntry(1, e);
  counters().Add("purge_buffer_cleared",
                 static_cast<int64_t>(buf_l.size() + buf_r.size()));

  // 4) purge and re-index the disk portions. A disk tuple covered by the
  // opposite punctuations has now completed every owed join and can go;
  // survivors that were flushed before they could be indexed get their pid
  // assigned here.
  auto compact = [&](int side, std::vector<TupleEntry>& entries) -> Status {
    HashState& own = mutable_state(side);
    PunctuationSet& own_ps = *punct_sets_[side];
    PunctuationSet& opp_ps = *punct_sets_[1 - side];
    std::vector<TupleEntry> survivors;
    survivors.reserve(entries.size());
    bool reindexed = false;
    int64_t purged = 0;
    for (TupleEntry& e : entries) {
      if (opp_ps.SetMatchKey(own.KeyOf(e.tuple))) {
        DiscardEntry(side, e);
        ++purged;
        continue;
      }
      if (e.pid == kNullPid) {
        PunctuationIndexer::IndexEntry(&own_ps, &e);
        if (e.pid != kNullPid) reindexed = true;
      }
      survivors.push_back(std::move(e));
    }
    if (purged > 0 || reindexed) {
      PJOIN_RETURN_NOT_OK(own.RewriteDiskPartition(p, survivors));
      counters().Add("disk_purged_tuples", purged);
    }
    return Status::OK();
  };
  if (left.disk_tuples(p) > 0) PJOIN_RETURN_NOT_OK(compact(0, disk_l));
  if (right.disk_tuples(p) > 0) PJOIN_RETURN_NOT_OK(compact(1, disk_r));

  counters().Add("disk_comparisons", compared);
  left.RecordProbe(p, pass_tick);
  right.RecordProbe(p, pass_tick);
  disk_pass_tick_[static_cast<size_t>(p)] = pass_tick;
  return Status::OK();
}

Status PJoin::RunIndexBuild(int side) {
  TRACE_SPAN("pjoin", "index_build");
  PunctuationIndexer::BuildIndex(punct_sets_[side].get(),
                                 &mutable_state(side), &counters());
  return Status::OK();
}

Status PJoin::RunIndexBuildBoth() {
  PJOIN_RETURN_NOT_OK(RunIndexBuild(0));
  return RunIndexBuild(1);
}

Status PJoin::RunPropagation() {
  TRACE_SPAN("pjoin", "propagation");
  // Defensive re-checks: the registry normally schedules the disk join and
  // index build ahead of propagation, but pull-mode callers may reach this
  // directly.
  if (state(0).has_unindexed_disk() || state(1).has_unindexed_disk()) {
    PJOIN_RETURN_NOT_OK(RunDiskJoin());
  }
  for (int side = 0; side < 2; ++side) {
    PJOIN_RETURN_NOT_OK(RunIndexBuild(side));
    std::vector<Punctuation> released =
        Propagator::Propagate(punct_sets_[side].get());
    for (const Punctuation& punct : released) {
      EmitPunctuation(MakeOutputPunct(side, punct));
    }
  }
  monitor_->OnPropagationRan();
  counters().Add("propagation_runs");
  return Status::OK();
}

Result<KeyStateHandoff> PJoin::ExtractKeyState(const Value& key, bool copy) {
  // A punctuation covering the key on either side means its entries are
  // woven into the propagation machinery: the covered side's entries are
  // (or will be) pinned by match counts, and the covering punctuation's
  // release depends on them draining HERE. Such a key is closed or closing
  // anyway — refuse and let the router keep it where it is.
  for (int side = 0; side < 2; ++side) {
    if (punct_sets_[side]->SetMatchKey(key)) {
      return Status::FailedPrecondition(
          "key covered by a punctuation; handoff refused");
    }
  }
  Result<KeyStateHandoff> result = JoinOperator::ExtractKeyState(key, copy);
  if (!result.ok()) return result;
  KeyStateHandoff handoff = std::move(result).value();
  // The key-level check cannot see payload-constrained punctuations (a
  // constant key plus constant payload pattern indexes specific tuples
  // without covering the key). If any extracted entry carries a pid, put
  // everything back — pids intact, so the match counts stay exact — and
  // refuse.
  bool pinned = false;
  for (int side = 0; side < 2 && !pinned; ++side) {
    for (const TupleEntry& e : handoff.entries[side]) {
      if (e.pid != kNullPid) {
        pinned = true;
        break;
      }
    }
  }
  if (pinned) {
    if (!copy) {
      for (int side = 0; side < 2; ++side) {
        for (TupleEntry& e : handoff.entries[side]) {
          mutable_state(side).InsertMemory(std::move(e));
        }
      }
    }
    return Status::FailedPrecondition(
        "key state pinned by an indexed punctuation; handoff refused");
  }
  return handoff;
}

void PJoin::DiscardEntry(int side, const TupleEntry& entry) {
  PunctuationIndexer::OnEntryDiscarded(punct_sets_[side].get(), entry);
}

Status PJoin::Finish() {
  // Complete all left-over joins (cleanup), then give punctuations a final
  // chance to propagate.
  PJOIN_RETURN_NOT_OK(RunDiskJoin());
  if (options().propagate_on_finish) {
    PJOIN_RETURN_NOT_OK(RunPropagation());
  }
  return Status::OK();
}

void PJoin::PublishExtraGauges() {
  if (!extra_gauges_bound_) {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    static constexpr std::string_view kSide[2] = {"side=left", "side=right"};
    for (int side = 0; side < 2; ++side) {
      punct_set_gauge_[side] = registry.GetGauge(
          "pjoin_punct_set_size",
          JoinLabels(state_gauge_labels(), kSide[side]));
    }
    extra_gauges_bound_ = true;
  }
  for (int side = 0; side < 2; ++side) {
    punct_set_gauge_[side].Set(
        static_cast<int64_t>(punct_sets_[side]->size()));
  }
}

}  // namespace pjoin
