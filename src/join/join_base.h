// JoinOperator: the common interface and machinery of the stream equi-joins
// in this library (SHJ, XJoin, PJoin): two HashStates, the per-tuple memory
// join, state relocation, output callbacks and metrics.

#ifndef PJOIN_JOIN_JOIN_BASE_H_
#define PJOIN_JOIN_JOIN_BASE_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/metrics.h"
#include "common/result.h"
#include "exec/monitor.h"
#include "join/hash_state.h"
#include "obs/metrics_registry.h"
#include "stream/element.h"
#include "storage/spill_manager.h"
#include "storage/spill_store.h"

namespace pjoin {

/// How PJoin's state purge locates purgeable tuples.
enum class PurgeMode {
  /// Scan the memory state applying setMatch (the paper's algorithm; cost
  /// proportional to state size — this is what makes eager purge expensive).
  kScan,
  /// Use the punctuation set's constant-pattern hash index to jump straight
  /// to purgeable buckets (an extension beyond the paper; see ablation A2).
  kIndexed,
};

/// How PJoin reacts to runtime punctuation-contract violations (late tuples
/// matching an already-seen punctuation, malformed or non-prefix
/// punctuations). See docs/ROBUSTNESS.md.
enum class ViolationPolicy {
  /// No contract checking (the paper's trusting behavior; default).
  kIgnore,
  /// Count the violation, raise ContractViolationEvent, drop the element.
  /// Purge decisions stay sound: output equals the clean-input result with
  /// the violating elements removed.
  kDrop,
  /// Like kDrop, but violating elements are retained for inspection
  /// (PJoin::quarantined_tuples / quarantined_puncts).
  kQuarantine,
  /// Fail the join with FailedPrecondition on the first violation.
  kFail,
};

/// Configuration shared by all join operators; PJoin-only fields are ignored
/// by SHJ / XJoin.
struct JoinOptions {
  /// Join attribute index in each input schema.
  size_t left_key = 0;
  size_t right_key = 0;
  /// Number of hash partitions per state.
  int num_partitions = 16;
  /// Thresholds (purge / memory / propagation / disk-join activation).
  RuntimeParams runtime;
  /// PJoin: drop arriving tuples already covered by the opposite stream's
  /// punctuations (§4.3).
  bool drop_on_the_fly = true;
  /// PJoin: build the punctuation index on every punctuation arrival (eager)
  /// instead of just before propagation (lazy, the Table 1 default).
  bool eager_index_build = false;
  /// PJoin: also run propagation right after every state purge, releasing
  /// punctuations the moment their match count reaches zero instead of
  /// waiting for the next push/pull trigger (the paper's §3.5 observation
  /// that eager maintenance lets punctuations "be detected to be propagable
  /// much earlier than the next invocation of propagation"). Requires
  /// eager_index_build to be useful.
  bool eager_propagation = false;
  /// PJoin: run a final propagation when both inputs finish.
  bool propagate_on_finish = true;
  /// Validate the §2.2 prefix condition on incoming punctuations.
  bool validate_prefix = false;
  /// PJoin: runtime reaction to punctuation-contract violations. With
  /// kIgnore no checks run (inputs are trusted, as the paper assumes); any
  /// other policy validates every arriving element. With validate_prefix
  /// also on, prefix-condition failures are routed through this policy
  /// instead of aborting the join.
  ViolationPolicy violation_policy = ViolationPolicy::kIgnore;
  /// PJoin purge strategy implementation.
  PurgeMode purge_mode = PurgeMode::kScan;
  /// Probe the memory portions through the per-partition hash index
  /// (default). False restores the paper's linear bucket scan — used by the
  /// figure benches, whose cost-model shape checks assume scan probing, and
  /// as the baseline the probe micro/scaling benches compare against.
  bool indexed_probe = true;
  /// Spill-store factory, one call per input state. Defaults to
  /// SimulatedDisk.
  std::function<std::unique_ptr<SpillStore>()> spill_factory;
  /// Per-partition spill decisions under memory pressure (victim selection,
  /// early purge, sub-partitioning, degradation ladder); see
  /// storage/spill_manager.h and docs/ROBUSTNESS.md. SpillMode::
  /// kGlobalThreshold restores the paper's flush-the-largest behavior.
  SpillPolicy spill_policy;
  /// Observer for SpillManager events (currently kDegradedMode when the
  /// manager falls back to global-threshold mode).
  std::function<void(const Event&)> spill_event_sink;
  /// Record the join-state size every this many microseconds of stream
  /// (virtual) time; 0 disables recording.
  TimeMicros state_sample_interval = 0;
};

/// A router-prepared batch of stream elements as parallel arrays: borrowed
/// element pointers (the elements outlive the batch), their input sides,
/// and — for tuples — the join-key hash, computed once upstream and reused
/// by the shard's partition selection, index probe and insert instead of
/// rehashing (ops/parallel_pipeline.h builds these).
struct ElementBatch {
  const StreamElement* const* elements = nullptr;
  const int8_t* sides = nullptr;
  /// Key hash per element; meaningful only where the element is a tuple.
  const uint64_t* key_hashes = nullptr;
  size_t size = 0;
};

/// One key's in-memory join state, extracted from (or copied out of) an
/// operator — the payload of the parallel pipeline's migration /
/// replication handoff (ops/repartition.h). Ticks and punctuation links
/// are source-relative and deliberately not carried: only memory-resident,
/// punctuation-free state is eligible (ExtractKeyState refuses anything
/// else), and such entries re-insert cleanly under the destination's tick
/// stream.
struct KeyStateHandoff {
  Value key;
  uint64_t key_hash = 0;
  /// Memory entries per input side.
  std::vector<TupleEntry> entries[2];

  int64_t tuple_count() const {
    return static_cast<int64_t>(entries[0].size() + entries[1].size());
  }
};

class JoinOperator {
 public:
  using ResultCallback = std::function<void(const Tuple&)>;
  using ResultMoveCallback = std::function<void(Tuple&&)>;
  using PunctCallback = std::function<void(const Punctuation&)>;

  JoinOperator(SchemaPtr left_schema, SchemaPtr right_schema,
               JoinOptions options);
  virtual ~JoinOperator() = default;
  PJOIN_DISALLOW_COPY_AND_MOVE(JoinOperator);

  /// Schema of result tuples (left fields then right fields).
  const SchemaPtr& output_schema() const { return output_schema_; }

  void set_result_callback(ResultCallback cb) { on_result_ = std::move(cb); }
  /// Move-aware result sink: receives the freshly concatenated result tuple
  /// by rvalue, so a consumer that stores results (the parallel pipeline's
  /// shard staging) takes ownership without a deep copy. Takes precedence
  /// over set_result_callback when both are set.
  void set_result_move_callback(ResultMoveCallback cb) {
    on_result_move_ = std::move(cb);
  }
  void set_punct_callback(PunctCallback cb) { on_punct_ = std::move(cb); }

  /// Feeds one element of input `side` (0 = left, 1 = right). When both
  /// sides have delivered end-of-stream, Finish() runs automatically.
  Status OnElement(int side, const StreamElement& element);

  /// Feeds a whole routed batch, equivalent to OnElement over each entry in
  /// order but with the per-element costs amortized: tuple runs dispatch
  /// through OnTupleHashed (reusing the batch's precomputed key hashes, so
  /// the key hashes exactly once end to end) and the hot counters flush
  /// once per run instead of once per tuple. Falls back to the element path
  /// when per-element state sampling is on.
  Status ProcessBatch(const ElementBatch& batch);

  /// Hook for the driver when both inputs are stalled (network lull): XJoin
  /// runs its reactive stage, PJoin its disk join. Default: no-op.
  virtual Status OnStreamsStalled();

  /// Lifts an input-side punctuation onto the output schema: the side's
  /// patterns carry over, everything else is a wildcard, and the equi-join
  /// predicate transfers the key pattern to the other side's key position.
  /// Deterministic, so the parallel pipeline's router can predict the exact
  /// output punctuation a shard will release (release-board dispatch
  /// accounting under dynamic ownership).
  Punctuation MakeOutputPunct(int side, const Punctuation& punct) const;

  // ---- Key-state handoff (runtime repartitioning) ----

  /// Removes (copy = false, migration) or copies (copy = true, hot-key
  /// replication) every in-memory tuple of `key` from both sides' states.
  /// Refuses with FailedPrecondition — leaving the operator untouched —
  /// when the key's state is not cleanly movable: a partition holding it
  /// has disk-resident or purge-buffered tuples, the disk portion is
  /// unindexed, or (PJoin) a punctuation already covers the key, so moving
  /// its entries would desynchronize match counts and could release a
  /// punctuation while covered state lives elsewhere. The caller answers a
  /// refusal by keeping the key where it is.
  virtual Result<KeyStateHandoff> ExtractKeyState(const Value& key,
                                                  bool copy);
  /// Installs a handoff's entries into this operator's states under fresh
  /// ticks. Install never probes: every result pair among the entries was
  /// already emitted at the source, and pairs with future tuples arise from
  /// future probes.
  virtual Status InstallKeyState(KeyStateHandoff handoff);

  // ---- Introspection ----
  CounterSet& counters() { return counters_; }
  const CounterSet& counters() const { return counters_; }
  int64_t results_emitted() const { return results_emitted_; }
  int64_t puncts_emitted() const { return puncts_emitted_; }

  const HashState& state(int side) const;
  /// Spill-decision counters of this operator's SpillManager (spills,
  /// bytes spilled / early-purged, repartitions, failures, degradation).
  const SpillDecisionStats& spill_stats() const {
    return spill_manager_->stats();
  }
  /// Tuples retained across both states (memory + disk + purge buffers).
  int64_t total_state_tuples() const;
  /// In-memory tuples across both states.
  int64_t memory_state_tuples() const;
  /// Approximate in-memory payload bytes across both states.
  int64_t memory_state_bytes() const;

  /// State size over virtual time (when state_sample_interval > 0).
  const TimeSeries& state_series() const { return state_series_; }
  /// Virtual arrival time of the most recently processed element.
  TimeMicros last_arrival() const { return last_arrival_; }

  // ---- Live introspection (docs/OBSERVABILITY.md) ----
  //
  // All of this is opt-in: an unbound operator (the default, and every
  // single-threaded bench baseline) pays nothing — inert handles, no clock
  // reads.

  /// Registers the end-to-end latency histograms under `labels` (e.g.
  /// "pipeline=parallel,shard=3"): pjoin_tuple_latency_seconds observes
  /// ingress→result-emit and pjoin_punct_propagation_seconds observes
  /// ingress→punct-emit (the live analogue of the paper's fig 14), both in
  /// microseconds with a 1e-6 exposition scale.
  void BindLatencyMetrics(std::string_view labels);

  /// Wall-clock (TraceNowMicros) arrival time of the element currently
  /// being processed; the driver sets it right before OnElement so emits
  /// can attribute latency. 0 = unknown (nothing is recorded).
  void set_element_ingress_micros(TimeMicros us) { ingress_us_ = us; }

  /// Registers per-side state-size gauges (memory/disk/purge-buffer tuples,
  /// memory bytes) under `labels`; subclasses may add their own via
  /// PublishExtraGauges.
  void BindStateGauges(std::string_view labels);
  /// Publishes the current state sizes to the bound gauges. Call from the
  /// thread that owns this operator (gauge writes are atomic; HashState
  /// reads are not locked).
  void PublishStateGauges();

  /// Binds this operator to shard `shard` of the global FrontierTracker
  /// (obs/progress.h): every punctuation it finishes processing advances
  /// the (side, scheme, shard) frontier the router's ingress notes opened.
  /// Unbound (the default) operators report nothing.
  void BindFrontier(int shard) { frontier_shard_ = shard; }

 protected:
  /// Shard this operator reports frontier progress as (-1 = unbound).
  int frontier_shard() const { return frontier_shard_; }

  // ---- Subclass interface ----
  virtual Status OnTuple(int side, const Tuple& tuple) = 0;
  /// Tuple arrival with the join-key hash already computed (the batch
  /// path). Default ignores the hash and calls OnTuple; operators with a
  /// hash-threaded hot path (PJoin) override this and implement OnTuple as
  /// a hash-then-delegate wrapper, so both paths share one body.
  virtual Status OnTupleHashed(int side, const Tuple& tuple,
                               uint64_t key_hash);
  virtual Status OnPunctuation(int side, const Punctuation& punct) = 0;
  /// Runs once after both inputs reached end-of-stream.
  virtual Status Finish() = 0;

  // ---- Shared machinery for subclasses ----

  HashState& mutable_state(int side);

  const JoinOptions& options() const { return options_; }

  /// Monotone event ticks; every arrival / relocation / purge / disk probe
  /// consumes one, giving a total order for duplicate avoidance.
  int64_t NextTick() { return ++tick_; }
  int64_t current_tick() const { return tick_; }

  /// Probes the memory portion of the state opposite to `side` with `tuple`
  /// and emits all matches. Returns the number of results emitted.
  int64_t ProbeOppositeMemory(int side, const Tuple& tuple);
  /// Same, with the tuple's join-key hash already computed. Probe
  /// comparisons accumulate locally and flush to the "probe_comparisons"
  /// counter at the next element/batch boundary (FlushBatchCounters).
  int64_t ProbeOppositeMemory(int side, const Tuple& tuple,
                              uint64_t key_hash);

  /// Inserts `tuple` into side's state with ats = `tick`.
  void InsertTuple(int side, const Tuple& tuple, int64_t tick);
  /// Same, seeding the entry's cached key hash so the state skips the
  /// rehash at insert.
  void InsertTuple(int side, const Tuple& tuple, int64_t tick,
                   uint64_t key_hash);

  /// Flushes the locally accumulated hot-path tallies into counters().
  /// Called automatically at the end of OnElement and of each ProcessBatch
  /// tuple run.
  void FlushBatchCounters();

  /// Brings the in-memory total below the memory threshold via the
  /// SpillManager (adaptive per-partition decisions by default; the paper's
  /// flush-the-largest relocation of §3.3 in global-threshold mode).
  Status RelocateUntilBelowThreshold();

  /// The operator's spill manager (subclasses wire hooks: PJoin installs
  /// the punctuation-aware early purger).
  SpillManager& spill_manager() { return *spill_manager_; }

  /// Emits one join result (left must be a left-stream tuple).
  void EmitResult(const Tuple& left, const Tuple& right);
  /// Emits a punctuation on the output schema.
  void EmitPunctuation(Punctuation punct);

  /// Records a state-size sample at the current virtual time.
  void SampleState();

  /// Subclass hook run by PublishStateGauges (PJoin publishes punctuation
  /// set sizes — the live purge watermarks).
  virtual void PublishExtraGauges() {}
  /// Labels BindStateGauges was called with ("" when unbound).
  const std::string& state_gauge_labels() const {
    return state_gauge_labels_;
  }

 private:
  JoinOptions options_;
  SchemaPtr output_schema_;
  std::unique_ptr<HashState> states_[2];
  std::unique_ptr<SpillManager> spill_manager_;
  ResultCallback on_result_;
  ResultMoveCallback on_result_move_;
  PunctCallback on_punct_;
  CounterSet counters_;
  TimeSeries state_series_;
  int64_t tick_ = 0;
  int frontier_shard_ = -1;
  /// Probe comparisons since the last FlushBatchCounters (hot-path tally;
  /// the CounterSet map lookup happens once per element/batch, not per
  /// probe).
  int64_t pending_probe_comparisons_ = 0;
  int64_t results_emitted_ = 0;
  int64_t puncts_emitted_ = 0;
  TimeMicros last_arrival_ = 0;
  bool eos_[2] = {false, false};
  bool finished_ = false;

  // Live-introspection state; all handles inert until the Bind* calls.
  obs::Histogram tuple_latency_hist_;
  obs::Histogram punct_lag_hist_;
  TimeMicros ingress_us_ = 0;
  std::string state_gauge_labels_;
  bool state_gauges_bound_ = false;
  obs::Gauge mem_tuples_gauge_[2];
  obs::Gauge disk_tuples_gauge_[2];
  obs::Gauge purge_buffer_gauge_[2];
  obs::Gauge mem_bytes_gauge_[2];
};

/// "base,extra" — joins two "k=v,..." label strings, eliding empties.
std::string JoinLabels(std::string_view base, std::string_view extra);

}  // namespace pjoin

#endif  // PJOIN_JOIN_JOIN_BASE_H_
