#include "join/shj.h"

namespace pjoin {

SymmetricHashJoin::SymmetricHashJoin(SchemaPtr left_schema,
                                     SchemaPtr right_schema,
                                     JoinOptions options)
    : JoinOperator(std::move(left_schema), std::move(right_schema),
                   std::move(options)) {}

Status SymmetricHashJoin::OnTuple(int side, const Tuple& tuple) {
  const int64_t tick = NextTick();
  ProbeOppositeMemory(side, tuple);
  InsertTuple(side, tuple, tick);
  return Status::OK();
}

Status SymmetricHashJoin::OnPunctuation(int side, const Punctuation& punct) {
  (void)side;
  (void)punct;
  counters().Add("puncts_ignored");
  return Status::OK();
}

Status SymmetricHashJoin::Finish() { return Status::OK(); }

}  // namespace pjoin
