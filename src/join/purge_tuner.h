// PurgeThresholdTuner: closed-loop tuning of PJoin's purge threshold.
//
// Paper §3.4: "finding an appropriate purge threshold becomes an important
// task" — and §3.6 makes every threshold runtime-tunable precisely so a
// controller can adjust them. This tuner balances the two costs Figure 9
// trades off:
//   - purge cost: tuples scanned by the state purge (falls with a larger
//     threshold, because scans are batched);
//   - probe cost: comparisons in the memory join (rises with a larger
//     threshold, because the state grows between purges).
// Every `interval` observations it compares the two costs accrued since the
// last adjustment and moves the threshold geometrically towards balance.

#ifndef PJOIN_JOIN_PURGE_TUNER_H_
#define PJOIN_JOIN_PURGE_TUNER_H_

#include "join/pjoin.h"

namespace pjoin {

class PurgeThresholdTuner {
 public:
  struct Options {
    int64_t min_threshold = 1;
    int64_t max_threshold = 1024;
    /// Purge cost above `high_water` x probe cost raises the threshold;
    /// below `low_water` x probe cost lowers it.
    double high_water = 1.0;
    double low_water = 0.125;
    /// Observations (calls to Observe) between adjustments.
    int64_t interval = 1000;
  };

  /// The tuner adjusts `join`'s monitor parameters in place; it does not
  /// own the join.
  explicit PurgeThresholdTuner(PJoin* join);
  PurgeThresholdTuner(PJoin* join, Options options);

  /// Call once per processed element (cheap); every `interval` calls the
  /// controller compares cost deltas and adjusts the purge threshold.
  void Observe();

  int64_t current_threshold() const;
  int64_t adjustments_up() const { return ups_; }
  int64_t adjustments_down() const { return downs_; }

 private:
  PJoin* join_;
  Options options_;
  int64_t calls_ = 0;
  int64_t last_purge_scanned_ = 0;
  int64_t last_probe_comparisons_ = 0;
  int64_t ups_ = 0;
  int64_t downs_ = 0;
};

}  // namespace pjoin

#endif  // PJOIN_JOIN_PURGE_TUNER_H_
