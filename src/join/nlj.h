// NestedLoopReferenceJoin: the O(n*m) oracle. Buffers both inputs entirely
// and emits every key-equal pair at Finish. Useless as a stream operator,
// invaluable for verifying the streaming joins (it is what the test suite's
// equivalence property compares against, available here as a library
// citizen so downstream users can self-check their own configurations).

#ifndef PJOIN_JOIN_NLJ_H_
#define PJOIN_JOIN_NLJ_H_

#include <vector>

#include "join/join_base.h"

namespace pjoin {

class NestedLoopReferenceJoin : public JoinOperator {
 public:
  NestedLoopReferenceJoin(SchemaPtr left_schema, SchemaPtr right_schema,
                          JoinOptions options = {});

 protected:
  Status OnTuple(int side, const Tuple& tuple) override;
  Status OnPunctuation(int side, const Punctuation& punct) override;
  Status Finish() override;

 private:
  std::vector<Tuple> buffered_[2];
};

}  // namespace pjoin

#endif  // PJOIN_JOIN_NLJ_H_
