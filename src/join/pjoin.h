// PJoin: the paper's punctuation-exploiting stream join (§3).
//
// Six components, wired through the event-driven framework of §3.6:
//   memory join        — per-tuple probing, with on-the-fly dropping of
//                        tuples already covered by opposite punctuations;
//   state relocation   — flush memory partitions to disk on StateFullEvent;
//   disk join          — finish left-over joins (disk x memory, disk x disk,
//                        purge-buffer x disk) with duplicate avoidance, purge
//                        disk-resident tuples, re-index fetched tuples;
//   state purge        — eager/lazy (purge threshold) removal of tuples
//                        covered by the opposite stream's punctuations;
//   index build        — paper Fig 3, eager (per punctuation) or lazy (at
//                        propagation time);
//   propagation        — push mode (count / time thresholds) and pull mode
//                        (RequestPropagation), releasing punctuations whose
//                        match count reached zero.

#ifndef PJOIN_JOIN_PJOIN_H_
#define PJOIN_JOIN_PJOIN_H_

#include <memory>
#include <vector>

#include "exec/monitor.h"
#include "exec/registry.h"
#include "join/join_base.h"
#include "join/punct_index.h"
#include "punct/punctuation_set.h"

namespace pjoin {

class PJoin : public JoinOperator {
 public:
  PJoin(SchemaPtr left_schema, SchemaPtr right_schema,
        JoinOptions options = {});
  ~PJoin() override;

  /// Runs the disk join when the inputs stall and the activation threshold
  /// is met (the paper's scheduling policy for the disk join, §3.2).
  Status OnStreamsStalled() override;

  /// Pull-mode propagation: a downstream operator asks PJoin to propagate
  /// punctuations now (§3.5).
  Status RequestPropagation();

  /// Key-state handoff with punctuation-aware eligibility: additionally
  /// refuses when either punctuation set covers `key` (a covered key's
  /// entries are pinned by match counts — moving them could propagate a
  /// punctuation while covered state lives at another shard) or when an
  /// extracted entry is pinned by a payload-constrained punctuation the
  /// key-level check cannot see (the state is restored before refusing).
  Result<KeyStateHandoff> ExtractKeyState(const Value& key,
                                          bool copy) override;

  // ---- Introspection ----
  const PunctuationSet& punct_set(int side) const;
  const EventRegistry& registry() const { return registry_; }
  EventRegistry& registry() { return registry_; }
  Monitor& monitor() { return *monitor_; }

  /// Elements set aside under ViolationPolicy::kQuarantine.
  const std::vector<Tuple>& quarantined_tuples(int side) const;
  const std::vector<Punctuation>& quarantined_puncts(int side) const;
  /// Total contract violations detected (also counter
  /// "contract_violations", split by kind as "violation_<kind>").
  int64_t contract_violations() const {
    return counters().Get("contract_violations");
  }

 protected:
  /// Hash-then-delegate wrapper around OnTupleHashed.
  Status OnTuple(int side, const Tuple& tuple) override;
  /// The memory-join hot path (§3.6): contract check, probe, on-the-fly
  /// drop, insert — all reusing the caller-provided key hash, so a batched
  /// caller (ElementBatch) hashes each key exactly once end to end.
  Status OnTupleHashed(int side, const Tuple& tuple,
                       uint64_t key_hash) override;
  Status OnPunctuation(int side, const Punctuation& punct) override;
  Status Finish() override;
  /// Publishes the punctuation-set sizes (the live purge watermarks) next
  /// to the base-class state gauges.
  void PublishExtraGauges() override;

 private:
  // A component of §3.6: an event listener delegating to a PJoin method.
  class Component;

  /// State purge (§3.4): applies the purge rules to both states.
  Status RunPurge();
  Status PurgeState(int side);

  /// SpillManager early-purge hook: removes tuples of `side`'s partition
  /// `p` covered by the opposite punctuation set, in place, before the
  /// partition is spilled (PurgeState's disposal rule, one partition, no
  /// disk IO). Returns what was freed.
  EarlyPurgeOutcome EarlyPurgePartition(int side, int p);

  /// Disk join (§3.2): one full pass over all partitions with disk-resident
  /// or purge-buffered data.
  Status RunDiskJoin();
  Status DiskJoinPartition(int p);

  /// Index build (Fig 3) over one stream's state.
  Status RunIndexBuild(int side);
  Status RunIndexBuildBoth();

  /// Propagation (Fig 3 + safety gate); ensures left-over joins and index
  /// building are complete first.
  Status RunPropagation();

  /// Final disposal of a state entry; maintains punctuation match counts.
  void DiscardEntry(int side, const TupleEntry& entry);

  /// Records one contract violation per the configured policy. `tuple` /
  /// `punct` (either may be null) is the offending element, quarantined
  /// under kQuarantine. Returns an error only under kFail.
  Status OnContractViolation(int side, std::string_view kind,
                             const Tuple* tuple, const Punctuation* punct);

  /// Clock mapping "now" to the last stream arrival time (virtual time).
  class ArrivalClock;

  std::unique_ptr<PunctuationSet> punct_sets_[2];
  EventRegistry registry_;
  std::unique_ptr<ArrivalClock> clock_;
  std::unique_ptr<Monitor> monitor_;
  /// Per partition: tick of the last disk-x-disk pass (both-disk pairs with
  /// dts at or before it are already joined).
  std::vector<int64_t> disk_pass_tick_;
  std::vector<Tuple> quarantined_tuples_[2];
  std::vector<Punctuation> quarantined_puncts_[2];
  bool extra_gauges_bound_ = false;
  obs::Gauge punct_set_gauge_[2];
  std::unique_ptr<Component> purge_component_;
  std::unique_ptr<Component> relocation_component_;
  std::unique_ptr<Component> disk_join_component_;
  std::unique_ptr<Component> index_build_component_;
  std::unique_ptr<Component> propagation_component_;
};

}  // namespace pjoin

#endif  // PJOIN_JOIN_PJOIN_H_
