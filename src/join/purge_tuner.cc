#include "join/purge_tuner.h"

#include <algorithm>

namespace pjoin {

PurgeThresholdTuner::PurgeThresholdTuner(PJoin* join)
    : PurgeThresholdTuner(join, Options()) {}

PurgeThresholdTuner::PurgeThresholdTuner(PJoin* join, Options options)
    : join_(join), options_(options) {
  PJOIN_DCHECK(join != nullptr);
  PJOIN_DCHECK(options_.min_threshold >= 1);
  PJOIN_DCHECK(options_.max_threshold >= options_.min_threshold);
  PJOIN_DCHECK(options_.interval > 0);
}

int64_t PurgeThresholdTuner::current_threshold() const {
  return join_->monitor().params().purge_threshold;
}

void PurgeThresholdTuner::Observe() {
  if (++calls_ % options_.interval != 0) return;

  const int64_t scanned = join_->counters().Get("purge_scanned");
  const int64_t probed = join_->counters().Get("probe_comparisons");
  const double d_scan = static_cast<double>(scanned - last_purge_scanned_);
  const double d_probe =
      static_cast<double>(probed - last_probe_comparisons_);
  last_purge_scanned_ = scanned;
  last_probe_comparisons_ = probed;

  int64_t& threshold = join_->monitor().params().purge_threshold;
  if (d_scan > options_.high_water * std::max(1.0, d_probe)) {
    // Purging dominates: batch more punctuations per purge.
    const int64_t next = std::min(options_.max_threshold, threshold * 2);
    if (next != threshold) {
      threshold = next;
      ++ups_;
    }
  } else if (d_scan < options_.low_water * d_probe) {
    // Probing dominates (the state has grown too fat): purge more often.
    const int64_t next = std::max(options_.min_threshold, threshold / 2);
    if (next != threshold) {
      threshold = next;
      ++downs_;
    }
  }
}

}  // namespace pjoin
