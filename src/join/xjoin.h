// XJoin (Urhan & Franklin): symmetric hash join with memory-overflow
// resolution, reimplemented as the paper's constraint-oblivious baseline.
//
// Three stages:
//  1. memory-to-memory — per-tuple probe of the opposite in-memory bucket;
//  2. reactive disk-to-memory — when both inputs stall, the disk portion of
//     one partition is fetched and probed against the opposite in-memory
//     portion;
//  3. cleanup disk-to-disk — at end of stream, all remaining combinations.
// Stages 2 and 3 use the timestamp (ats/dts + probe history) scheme to
// avoid emitting any pair twice. Punctuations are ignored.

#ifndef PJOIN_JOIN_XJOIN_H_
#define PJOIN_JOIN_XJOIN_H_

#include "join/join_base.h"

namespace pjoin {

class XJoin : public JoinOperator {
 public:
  XJoin(SchemaPtr left_schema, SchemaPtr right_schema,
        JoinOptions options = {});

  /// Runs one reactive (stage 2) pass if any partition has disk-resident
  /// data beyond the activation threshold.
  Status OnStreamsStalled() override;

 protected:
  Status OnTuple(int side, const Tuple& tuple) override;
  Status OnPunctuation(int side, const Punctuation& punct) override;
  Status Finish() override;

 private:
  /// Stage 2 on one (side, partition): fetch side's disk portion, probe the
  /// opposite memory portion.
  Status ReactivePass(int side, int partition);

  /// Picks the (side, partition) with the largest disk portion; false if no
  /// disk-resident data exists.
  bool PickReactiveVictim(int* side, int* partition) const;

  /// Stage 3: every not-yet-joined combination involving disk data.
  Status CleanupPass();
};

}  // namespace pjoin

#endif  // PJOIN_JOIN_XJOIN_H_
