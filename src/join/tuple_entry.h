// TupleEntry: a tuple as stored in a join state, carrying the bookkeeping
// both XJoin and PJoin need:
//  - ats/dts: arrival / memory-departure ticks, used by XJoin's timestamp
//    based duplicate avoidance across memory, reactive and cleanup stages;
//  - pid: the punctuation index field of paper Fig 2(b).

#ifndef PJOIN_JOIN_TUPLE_ENTRY_H_
#define PJOIN_JOIN_TUPLE_ENTRY_H_

#include <cstdint>
#include <limits>
#include <string>

#include "common/result.h"
#include "punct/punctuation_set.h"
#include "tuple/tuple.h"

namespace pjoin {

/// dts of an entry that has not left memory.
constexpr int64_t kAliveDts = std::numeric_limits<int64_t>::max();

struct TupleEntry {
  Tuple tuple;
  /// Join tick at which the tuple arrived.
  int64_t ats = 0;
  /// Join tick at which the tuple left the memory portion (flushed to disk
  /// or moved to the purge buffer); kAliveDts while in memory.
  int64_t dts = kAliveDts;
  /// pid of the first-arrived punctuation matching this tuple, or kNullPid.
  int64_t pid = kNullPid;
  /// Cached Value::Hash() of the join-key field, so string keys hash once
  /// per residence in a state. Set by HashState at insert and recomputed
  /// after Deserialize (it is not serialized); 0 doubles as "not yet
  /// computed" — recomputing is always safe since the hash is a pure
  /// function of the key.
  uint64_t key_hash = 0;

  /// True while the entry resides in the in-memory portion.
  bool InMemory() const { return dts == kAliveDts; }

  /// Refreshes `key_hash` from the tuple's `key_index` field (used after
  /// Deserialize, which does not persist the hash).
  void RecomputeKeyHash(size_t key_index) {
    key_hash = tuple.field(key_index).Hash();
  }

  /// Binary serialization for the spill store.
  std::string Serialize() const;
  /// Inverse of Serialize. `schema` becomes the tuple's schema.
  static Result<TupleEntry> Deserialize(std::string_view record,
                                        SchemaPtr schema);
};

/// True if the ats/dts presence intervals of `a` and `b` overlap, i.e. one
/// tuple was in the memory state when the other arrived — which is exactly
/// when the memory-join stage already produced this pair.
inline bool IntervalsOverlap(const TupleEntry& a, const TupleEntry& b) {
  return std::max(a.ats, b.ats) < std::min(a.dts, b.dts);
}

}  // namespace pjoin

#endif  // PJOIN_JOIN_TUPLE_ENTRY_H_
