// HashState: the join state of one input stream (paper §3.1).
//
// A fixed array of partitions; each partition has an in-memory portion (a
// bucket of tuple entries probed by scanning, as in the paper), an on-disk
// portion (via a SpillStore), and a purge buffer holding tuples that are
// logically purged but still owe joins against the opposite stream's disk
// portion. Probe history per partition supports XJoin-style timestamp
// duplicate avoidance.

#ifndef PJOIN_JOIN_HASH_STATE_H_
#define PJOIN_JOIN_HASH_STATE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "join/tuple_entry.h"
#include "storage/spill_store.h"

namespace pjoin {

class HashState {
 public:
  /// `key_index` is the join attribute within `schema`. The state takes
  /// ownership of its spill store.
  HashState(std::string name, SchemaPtr schema, size_t key_index,
            int num_partitions, std::unique_ptr<SpillStore> spill);

  const std::string& name() const { return name_; }
  const SchemaPtr& schema() const { return schema_; }
  size_t key_index() const { return key_index_; }
  int num_partitions() const { return static_cast<int>(partitions_.size()); }

  /// The join-key value of a tuple of this stream.
  const Value& KeyOf(const Tuple& t) const { return t.field(key_index_); }
  /// The partition a key hashes to.
  int PartitionOf(const Value& key) const;

  // ---- Memory portion ----

  /// Appends an entry to the memory portion of its partition.
  void InsertMemory(TupleEntry entry);

  /// The in-memory bucket of partition `p` (probing scans this vector).
  const std::vector<TupleEntry>& memory(int p) const;
  std::vector<TupleEntry>& memory(int p);

  /// Removes and returns all memory entries of partition `p` for which
  /// `pred` holds, preserving order of the kept entries.
  std::vector<TupleEntry> ExtractMemoryMatching(
      int p, const std::function<bool(const TupleEntry&)>& pred);

  int64_t memory_tuples() const { return memory_tuples_; }
  /// Approximate bytes held by the memory portion (tuple payloads).
  int64_t memory_bytes() const { return memory_bytes_; }

  /// Partition with the largest memory portion, or -1 if all are empty.
  int LargestMemoryPartition() const;

  // ---- Disk portion ----

  /// Moves the entire memory portion of partition `p` to disk, stamping the
  /// entries' dts with `dts_tick` (state relocation, §3.3).
  Status FlushPartitionToDisk(int p, int64_t dts_tick);

  /// Reads back (deserializes) the disk portion of partition `p`.
  Result<std::vector<TupleEntry>> ReadDiskPartition(int p);

  /// Replaces the disk portion of partition `p` with `survivors` (used by
  /// the disk join after purging disk-resident tuples).
  Status RewriteDiskPartition(int p, const std::vector<TupleEntry>& survivors);

  int64_t disk_tuples() const { return disk_tuples_; }
  int64_t disk_tuples(int p) const;

  // ---- Purge buffer ----

  /// Moves an entry into the purge buffer of partition `p`.
  void AddToPurgeBuffer(int p, TupleEntry entry);

  const std::vector<TupleEntry>& purge_buffer(int p) const;
  std::vector<TupleEntry>& purge_buffer(int p);

  /// Discards the purge buffer of partition `p`, returning its entries.
  std::vector<TupleEntry> TakePurgeBuffer(int p);

  int64_t purge_buffer_tuples() const { return purge_buffer_tuples_; }

  // ---- Duplicate-avoidance probe history ----

  /// Records that the disk portion of partition `p` of *this* state was
  /// probed against the opposite memory portion at `tick`.
  void RecordProbe(int p, int64_t tick);
  const std::vector<int64_t>& probe_times(int p) const;

  // ---- Aggregates ----

  /// All tuples retained anywhere in the state (memory + disk + purge
  /// buffer): the paper's "number of tuples in the join state".
  int64_t total_tuples() const {
    return memory_tuples_ + disk_tuples_ + purge_buffer_tuples_;
  }

  /// True while some disk-resident entry may have pid == kNullPid, which
  /// blocks punctuation propagation until a disk-join pass re-indexes it.
  bool has_unindexed_disk() const { return has_unindexed_disk_; }
  void set_has_unindexed_disk(bool v) { has_unindexed_disk_ = v; }

  const IoStats& io_stats() const { return spill_->io_stats(); }
  SpillStore* spill() { return spill_.get(); }

  /// Multi-line occupancy report (memory/disk/purge-buffer tuples per
  /// non-empty partition) for debugging.
  std::string DescribeState() const;

 private:
  struct Partition {
    std::vector<TupleEntry> memory;
    std::vector<TupleEntry> purge_buffer;
    std::vector<int64_t> probe_times;
    int64_t disk_count = 0;
  };

  const Partition& partition(int p) const;
  Partition& partition(int p);

  std::string name_;
  SchemaPtr schema_;
  size_t key_index_;
  std::unique_ptr<SpillStore> spill_;
  std::vector<Partition> partitions_;
  int64_t memory_tuples_ = 0;
  int64_t memory_bytes_ = 0;
  int64_t disk_tuples_ = 0;
  int64_t purge_buffer_tuples_ = 0;
  bool has_unindexed_disk_ = false;
};

/// True when the pair (a, b) — a from the state whose disk-probe history is
/// `probes_a`, b from the opposite state with history `probes_b`, both of
/// the same partition — has already been emitted by the memory stage or an
/// earlier disk probe. The disk stages must skip such pairs.
bool JoinedBefore(const TupleEntry& a, const std::vector<int64_t>& probes_a,
                  const TupleEntry& b, const std::vector<int64_t>& probes_b);

}  // namespace pjoin

#endif  // PJOIN_JOIN_HASH_STATE_H_
