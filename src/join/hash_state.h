// HashState: the join state of one input stream (paper §3.1).
//
// A fixed array of partitions; each partition has an in-memory portion (a
// bucket of tuple entries), an on-disk portion (via a SpillStore), and a
// purge buffer holding tuples that are logically purged but still owe joins
// against the opposite stream's disk portion. Probe history per partition
// supports XJoin-style timestamp duplicate avoidance.
//
// The memory portion keeps the paper's append-ordered vector (purge and
// index-build passes still scan it), but probing no longer does: each
// partition maintains a hash index over the vector — bucket heads plus a
// per-entry chain link, keyed by the entry's cached 64-bit join-key hash —
// so a probe touches only the entries of its own chain instead of the whole
// bucket. The index is maintained on insert, rebuilt after extraction, and
// dropped when a partition is flushed to disk.

#ifndef PJOIN_JOIN_HASH_STATE_H_
#define PJOIN_JOIN_HASH_STATE_H_

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/metrics.h"
#include "join/tuple_entry.h"
#include "storage/spill_manager.h"
#include "storage/spill_store.h"

namespace pjoin {

class HashState : public SpillableState {
 public:
  /// `key_index` is the join attribute within `schema`. The state takes
  /// ownership of its spill store. With `indexed` false the memory portion
  /// is probed by linear scan (the paper's layout; kept for the figure
  /// benches and as an ablation baseline).
  HashState(std::string name, SchemaPtr schema, size_t key_index,
            int num_partitions, std::unique_ptr<SpillStore> spill,
            bool indexed = true);

  const std::string& name() const { return name_; }
  const SchemaPtr& schema() const { return schema_; }
  size_t key_index() const { return key_index_; }
  int num_partitions() const { return static_cast<int>(partitions_.size()); }
  bool indexed() const { return indexed_; }

  /// The join-key value of a tuple of this stream.
  [[nodiscard]] const Value& KeyOf(const Tuple& t) const {
    return t.field(key_index_);
  }
  /// The partition a key hashes to.
  [[nodiscard]] int PartitionOf(const Value& key) const;
  /// The partition a precomputed key hash maps to (same mapping as
  /// PartitionOf(key) for key_hash == key.Hash()).
  [[nodiscard]] int PartitionOfHash(uint64_t key_hash) const {
    return static_cast<int>(key_hash % partitions_.size());
  }

  // ---- Memory portion ----

  /// Appends an entry to the memory portion of its partition, caching the
  /// join-key hash in the entry and linking it into the partition's index.
  void InsertMemory(TupleEntry entry);

  /// The in-memory bucket of partition `p` in insertion order (purge and
  /// index-build passes scan this vector; probing should use
  /// ForEachMemoryMatch). Mutating entry keys through the non-const
  /// accessor would desynchronize the index; pid/timestamp updates are fine.
  const std::vector<TupleEntry>& memory(int p) const;
  std::vector<TupleEntry>& memory(int p);

  /// Invokes `fn(entry)` for every memory entry of partition `p` whose
  /// join key equals `key` (whose hash the caller supplies, so it is
  /// computed once per probe). Returns the number of entries examined —
  /// chain length when indexed, bucket size when scanning. `fn` must not
  /// mutate this state.
  template <typename Fn>
  int64_t ForEachMemoryMatch(int p, const Value& key, uint64_t key_hash,
                             Fn&& fn) const {
    const Partition& part = partition(p);
    int64_t examined = 0;
    if (!indexed_) {
      for (const TupleEntry& e : part.memory) {
        ++examined;
        if (KeyOf(e.tuple) == key) fn(e);
      }
      return examined;
    }
    if (part.index_heads.empty()) return 0;
    uint32_t i = part.index_heads[IndexBucket(key_hash, part.index_shift)];
    while (i != kIndexNil) {
      const TupleEntry& e = part.memory[i];
      ++examined;
      if (e.key_hash == key_hash && KeyOf(e.tuple) == key) fn(e);
      i = part.index_next[i];
    }
    return examined;
  }

  /// Removes and returns all memory entries of partition `p` for which
  /// `pred` holds, preserving order of the kept entries. The partition's
  /// index is rebuilt when anything was extracted.
  template <typename Pred>
  std::vector<TupleEntry> ExtractMemoryMatching(int p, Pred&& pred) {
    Partition& part = partition(p);
    auto& mem = part.memory;
    std::vector<TupleEntry> extracted;
    auto keep_end = std::stable_partition(
        mem.begin(), mem.end(),
        [&pred](const TupleEntry& e) { return !pred(e); });
    for (auto it = keep_end; it != mem.end(); ++it) {
      const int64_t bytes = static_cast<int64_t>(it->tuple.ByteSize());
      memory_bytes_ -= bytes;
      part.memory_bytes -= bytes;
      extracted.push_back(std::move(*it));
    }
    mem.erase(keep_end, mem.end());
    memory_tuples_ -= static_cast<int64_t>(extracted.size());
    PJOIN_DCHECK(memory_tuples_ >= 0);
    PJOIN_DCHECK(memory_bytes_ >= 0);
    if (!extracted.empty()) RebuildIndex(&part);
    return extracted;
  }

  int64_t memory_tuples() const { return memory_tuples_; }
  /// Approximate bytes held by the memory portion (tuple payloads).
  int64_t memory_bytes() const { return memory_bytes_; }

  /// Partition with the largest memory portion, or -1 if all are empty.
  int LargestMemoryPartition() const;

  /// Records a probe of partition `p`'s memory portion at `tick` (insert
  /// recency is tracked automatically); feeds the SpillManager's coldness
  /// scoring.
  void NotePartitionProbed(int p, int64_t tick);

  // ---- SpillableState (per-partition view for the SpillManager) ----

  int num_spill_partitions() const override { return num_partitions(); }
  int64_t TotalMemoryTuples() const override { return memory_tuples_; }
  int64_t TotalMemoryBytes() const override { return memory_bytes_; }
  int64_t PartitionMemoryTuples(int p) const override;
  int64_t PartitionMemoryBytes(int p) const override;
  int64_t PartitionLastAccessTick(int p) const override;
  [[nodiscard]] Status SpillPartition(int p, int64_t dts_tick) override {
    return FlushPartitionToDisk(p, dts_tick);
  }
  int64_t LargestSpillUnitRecords(int p) const override;
  /// Splits the largest on-disk unit of `p` into up to `fanout`
  /// sub-partitions keyed by further hash bits (hybrid-hash recursive
  /// partitioning). New units are written to fresh spill-store ids before
  /// the old unit is released, so a failure at any point leaves the mapping
  /// either fully old or fully new — never both (no loss, no duplicates).
  [[nodiscard]] Status SplitSpilledPartition(int p, int fanout,
                                             int max_depth) override;

  // ---- Disk portion ----

  /// Moves the entire memory portion of partition `p` to disk, stamping the
  /// entries' dts with `dts_tick` (state relocation, §3.3). On failure the
  /// durable prefix of the batch (if any) is moved to the disk-portion
  /// accounting and only the unpersisted suffix stays resident and alive,
  /// so neither a retry nor an abort can lose or duplicate entries.
  Status FlushPartitionToDisk(int p, int64_t dts_tick);

  /// Reads back (deserializes) the disk portion of partition `p` — its base
  /// unit plus any split sub-units — with key hashes recomputed.
  [[nodiscard]] Result<std::vector<TupleEntry>> ReadDiskPartition(int p);

  /// Replaces the disk portion of partition `p` with `survivors` (used by
  /// the disk join after purging disk-resident tuples).
  Status RewriteDiskPartition(int p, const std::vector<TupleEntry>& survivors);

  int64_t disk_tuples() const { return disk_tuples_; }
  int64_t disk_tuples(int p) const;

  // ---- Purge buffer ----

  /// Moves an entry into the purge buffer of partition `p`.
  void AddToPurgeBuffer(int p, TupleEntry entry);

  const std::vector<TupleEntry>& purge_buffer(int p) const;
  std::vector<TupleEntry>& purge_buffer(int p);

  /// Discards the purge buffer of partition `p`, returning its entries.
  std::vector<TupleEntry> TakePurgeBuffer(int p);

  int64_t purge_buffer_tuples() const { return purge_buffer_tuples_; }

  // ---- Duplicate-avoidance probe history ----

  /// Records that the disk portion of partition `p` of *this* state was
  /// probed against the opposite memory portion at `tick`.
  void RecordProbe(int p, int64_t tick);
  const std::vector<int64_t>& probe_times(int p) const;

  // ---- Aggregates ----

  /// All tuples retained anywhere in the state (memory + disk + purge
  /// buffer): the paper's "number of tuples in the join state".
  [[nodiscard]] int64_t total_tuples() const {
    return memory_tuples_ + disk_tuples_ + purge_buffer_tuples_;
  }

  /// True while some disk-resident entry may have pid == kNullPid, which
  /// blocks punctuation propagation until a disk-join pass re-indexes it.
  bool has_unindexed_disk() const { return has_unindexed_disk_; }
  void set_has_unindexed_disk(bool v) { has_unindexed_disk_ = v; }

  const IoStats& io_stats() const { return spill_->io_stats(); }
  SpillStore* spill() { return spill_.get(); }

  /// Multi-line occupancy report (memory/disk/purge-buffer tuples per
  /// non-empty partition) for debugging.
  std::string DescribeState() const;

 private:
  /// End-of-chain marker in the per-partition index.
  static constexpr uint32_t kIndexNil = 0xffffffffu;

  struct Partition {
    std::vector<TupleEntry> memory;
    /// Hash index over `memory`: `index_heads` (power-of-two sized) holds
    /// the newest entry index per bucket, `index_next` chains to the
    /// previous same-bucket entry. Empty while the partition is empty or
    /// the state is unindexed.
    std::vector<uint32_t> index_heads;
    std::vector<uint32_t> index_next;
    /// 64 - log2(index_heads.size()), for the multiplicative bucket map.
    int index_shift = 0;
    std::vector<TupleEntry> purge_buffer;
    std::vector<int64_t> probe_times;
    int64_t disk_count = 0;
    /// Payload bytes of `memory` (the per-partition slice of memory_bytes_).
    int64_t memory_bytes = 0;
    /// Tick of the most recent insert into / probe of the memory portion.
    int64_t last_access_tick = 0;
    /// Sub-partitions created by SplitSpilledPartition. The base unit (spill
    /// id == the partition number, depth 0) always exists implicitly and
    /// receives all new flushes; a unit at depth d groups records by bit
    /// slice [d-1] of the post-partition hash.
    struct SpillUnit {
      int id = 0;
      int depth = 0;
    };
    std::vector<SpillUnit> spill_units;
  };

  /// Fibonacci (multiplicative) bucket map. The low bits of the key hash
  /// select the partition, so buckets must come from the mixed high bits or
  /// all entries of a partition would share a handful of buckets.
  static size_t IndexBucket(uint64_t key_hash, int shift) {
    return static_cast<size_t>((key_hash * 0x9e3779b97f4a7c15ull) >> shift);
  }

  /// Rebuilds the partition's index from scratch (after extraction or
  /// growth); clears it when the partition is empty.
  void RebuildIndex(Partition* part);

  const Partition& partition(int p) const;
  Partition& partition(int p);

  std::string name_;
  SchemaPtr schema_;
  size_t key_index_;
  std::unique_ptr<SpillStore> spill_;
  std::vector<Partition> partitions_;
  bool indexed_;
  /// Next fresh spill-store id for split sub-units (ids below
  /// num_partitions are the base units).
  int next_spill_unit_id_;
  int64_t memory_tuples_ = 0;
  int64_t memory_bytes_ = 0;
  int64_t disk_tuples_ = 0;
  int64_t purge_buffer_tuples_ = 0;
  bool has_unindexed_disk_ = false;
};

/// True when the pair (a, b) — a from the state whose disk-probe history is
/// `probes_a`, b from the opposite state with history `probes_b`, both of
/// the same partition — has already been emitted by the memory stage or an
/// earlier disk probe. The disk stages must skip such pairs.
bool JoinedBefore(const TupleEntry& a, const std::vector<int64_t>& probes_a,
                  const TupleEntry& b, const std::vector<int64_t>& probes_b);

}  // namespace pjoin

#endif  // PJOIN_JOIN_HASH_STATE_H_
