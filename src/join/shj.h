// SymmetricHashJoin: the classic pipelined equi-join of Wilschut & Apers —
// the common ancestor of XJoin and PJoin. Keeps everything in memory, never
// purges, ignores punctuations.

#ifndef PJOIN_JOIN_SHJ_H_
#define PJOIN_JOIN_SHJ_H_

#include "join/join_base.h"

namespace pjoin {

class SymmetricHashJoin : public JoinOperator {
 public:
  SymmetricHashJoin(SchemaPtr left_schema, SchemaPtr right_schema,
                    JoinOptions options = {});

 protected:
  Status OnTuple(int side, const Tuple& tuple) override;
  Status OnPunctuation(int side, const Punctuation& punct) override;
  Status Finish() override;
};

}  // namespace pjoin

#endif  // PJOIN_JOIN_SHJ_H_
