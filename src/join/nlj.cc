#include "join/nlj.h"

namespace pjoin {

NestedLoopReferenceJoin::NestedLoopReferenceJoin(SchemaPtr left_schema,
                                                 SchemaPtr right_schema,
                                                 JoinOptions options)
    : JoinOperator(std::move(left_schema), std::move(right_schema),
                   std::move(options)) {}

Status NestedLoopReferenceJoin::OnTuple(int side, const Tuple& tuple) {
  buffered_[side].push_back(tuple);
  return Status::OK();
}

Status NestedLoopReferenceJoin::OnPunctuation(int side,
                                              const Punctuation& punct) {
  (void)side;
  (void)punct;
  counters().Add("puncts_ignored");
  return Status::OK();
}

Status NestedLoopReferenceJoin::Finish() {
  const size_t lk = options().left_key;
  const size_t rk = options().right_key;
  for (const Tuple& l : buffered_[0]) {
    for (const Tuple& r : buffered_[1]) {
      if (l.field(lk) == r.field(rk)) EmitResult(l, r);
    }
  }
  return Status::OK();
}

}  // namespace pjoin
