#include "join/join_base.h"

#include "obs/progress.h"
#include "obs/trace.h"
#include "storage/simulated_disk.h"

namespace pjoin {

JoinOperator::JoinOperator(SchemaPtr left_schema, SchemaPtr right_schema,
                           JoinOptions options)
    : options_(std::move(options)),
      state_series_(options_.state_sample_interval) {
  if (!options_.spill_factory) {
    options_.spill_factory = [] { return std::make_unique<SimulatedDisk>(); };
  }
  output_schema_ = Schema::Concat(*left_schema, *right_schema);
  states_[0] = std::make_unique<HashState>(
      "left", std::move(left_schema), options_.left_key,
      options_.num_partitions, options_.spill_factory(),
      options_.indexed_probe);
  states_[1] = std::make_unique<HashState>(
      "right", std::move(right_schema), options_.right_key,
      options_.num_partitions, options_.spill_factory(),
      options_.indexed_probe);
  spill_manager_ = std::make_unique<SpillManager>(
      options_.spill_policy, states_[0].get(), states_[1].get());
  spill_manager_->set_event_sink([this](const Event& event) {
    counters_.Add("spill_degraded_events");
    if (options_.spill_event_sink) options_.spill_event_sink(event);
  });
}

const HashState& JoinOperator::state(int side) const {
  PJOIN_DCHECK(side == 0 || side == 1);
  return *states_[side];
}

HashState& JoinOperator::mutable_state(int side) {
  PJOIN_DCHECK(side == 0 || side == 1);
  return *states_[side];
}

int64_t JoinOperator::total_state_tuples() const {
  return states_[0]->total_tuples() + states_[1]->total_tuples();
}

int64_t JoinOperator::memory_state_tuples() const {
  return states_[0]->memory_tuples() + states_[1]->memory_tuples();
}

int64_t JoinOperator::memory_state_bytes() const {
  return states_[0]->memory_bytes() + states_[1]->memory_bytes();
}

Status JoinOperator::OnElement(int side, const StreamElement& element) {
  PJOIN_DCHECK(side == 0 || side == 1);
  PJOIN_DCHECK(!finished_);
  last_arrival_ = std::max(last_arrival_, element.arrival());
  switch (element.kind()) {
    case ElementKind::kTuple: {
      counters_.Add("tuples_in");
      PJOIN_RETURN_NOT_OK(OnTuple(side, element.tuple()));
      break;
    }
    case ElementKind::kPunctuation: {
      counters_.Add("puncts_in");
      PJOIN_RETURN_NOT_OK(OnPunctuation(side, element.punctuation()));
      if (frontier_shard_ >= 0) {
        // Frontier advance: this shard finished one punctuation of the
        // (side, scheme) the router noted at dispatch.
        const size_t key =
            side == 0 ? options_.left_key : options_.right_key;
        obs::FrontierTracker::Global().NoteProcessed(
            side, PatternKindName(element.punctuation().pattern(key).kind()),
            frontier_shard_, obs::TraceNowMicros());
      }
      break;
    }
    case ElementKind::kEndOfStream: {
      eos_[side] = true;
      if (eos_[0] && eos_[1]) {
        finished_ = true;
        PJOIN_RETURN_NOT_OK(Finish());
      }
      break;
    }
  }
  FlushBatchCounters();
  SampleState();
  return Status::OK();
}

Status JoinOperator::ProcessBatch(const ElementBatch& batch) {
  // Per-element state sampling needs a sample after every element; only the
  // element path provides that granularity.
  if (options_.state_sample_interval > 0) {
    for (size_t i = 0; i < batch.size; ++i) {
      PJOIN_RETURN_NOT_OK(OnElement(batch.sides[i], *batch.elements[i]));
    }
    return Status::OK();
  }
  size_t i = 0;
  while (i < batch.size) {
    if (batch.elements[i]->kind() != ElementKind::kTuple) {
      // Punctuations and end-of-stream are rare; the element path handles
      // their bookkeeping (eos/Finish, counters) unchanged.
      PJOIN_RETURN_NOT_OK(OnElement(batch.sides[i], *batch.elements[i]));
      ++i;
      continue;
    }
    // A run of consecutive tuples: one "tuples_in" add and one tally flush
    // per run instead of per tuple.
    PJOIN_DCHECK(!finished_);
    const size_t run_start = i;
    do {
      const StreamElement& e = *batch.elements[i];
      last_arrival_ = std::max(last_arrival_, e.arrival());
      PJOIN_RETURN_NOT_OK(
          OnTupleHashed(batch.sides[i], e.tuple(), batch.key_hashes[i]));
      ++i;
    } while (i < batch.size &&
             batch.elements[i]->kind() == ElementKind::kTuple);
    counters_.Add("tuples_in", static_cast<int64_t>(i - run_start));
    FlushBatchCounters();
  }
  return Status::OK();
}

Status JoinOperator::OnStreamsStalled() { return Status::OK(); }

Punctuation JoinOperator::MakeOutputPunct(int side,
                                          const Punctuation& punct) const {
  const size_t left_width = states_[0]->schema()->num_fields();
  const size_t right_width = states_[1]->schema()->num_fields();
  std::vector<Pattern> patterns(left_width + right_width,
                                Pattern::Wildcard());
  if (side == 0) {
    for (size_t i = 0; i < left_width; ++i) patterns[i] = punct.pattern(i);
    // The equi-join predicate transfers the key pattern to the other side.
    patterns[left_width + options_.right_key] =
        punct.pattern(options_.left_key);
  } else {
    for (size_t i = 0; i < right_width; ++i) {
      patterns[left_width + i] = punct.pattern(i);
    }
    patterns[options_.left_key] = punct.pattern(options_.right_key);
  }
  return Punctuation(std::move(patterns));
}

Result<KeyStateHandoff> JoinOperator::ExtractKeyState(const Value& key,
                                                      bool copy) {
  KeyStateHandoff handoff;
  handoff.key = key;
  handoff.key_hash = key.Hash();
  // Eligibility first, mutation second (all-or-nothing): the key's
  // partitions must be fully memory-resident on BOTH sides — a
  // disk-resident or purge-buffered slice cannot be carved out of its
  // duplicate-avoidance history, and an unindexed disk portion may hide
  // more tuples of the key.
  for (int side = 0; side < 2; ++side) {
    const HashState& st = *states_[side];
    const int p = st.PartitionOfHash(handoff.key_hash);
    if (st.disk_tuples(p) > 0 || !st.purge_buffer(p).empty() ||
        st.has_unindexed_disk()) {
      return Status::FailedPrecondition(
          "key state not memory-resident; handoff refused: " +
          st.name());
    }
  }
  for (int side = 0; side < 2; ++side) {
    HashState& st = *states_[side];
    const int p = st.PartitionOfHash(handoff.key_hash);
    if (copy) {
      st.ForEachMemoryMatch(p, key, handoff.key_hash,
                            [&](const TupleEntry& e) {
                              handoff.entries[side].push_back(e);
                            });
    } else {
      handoff.entries[side] = st.ExtractMemoryMatching(
          p, [&](const TupleEntry& e) { return st.KeyOf(e.tuple) == key; });
    }
  }
  return handoff;
}

Status JoinOperator::InstallKeyState(KeyStateHandoff handoff) {
  for (int side = 0; side < 2; ++side) {
    for (TupleEntry& e : handoff.entries[side]) {
      e.ats = NextTick();
      e.dts = kAliveDts;
      e.pid = kNullPid;
      e.key_hash = handoff.key_hash;
      states_[side]->InsertMemory(std::move(e));
    }
  }
  return Status::OK();
}

Status JoinOperator::OnTupleHashed(int side, const Tuple& tuple,
                                   uint64_t key_hash) {
  (void)key_hash;
  return OnTuple(side, tuple);
}

int64_t JoinOperator::ProbeOppositeMemory(int side, const Tuple& tuple) {
  return ProbeOppositeMemory(side, tuple,
                             states_[side]->KeyOf(tuple).Hash());
}

int64_t JoinOperator::ProbeOppositeMemory(int side, const Tuple& tuple,
                                          uint64_t key_hash) {
  TRACE_SPAN("join", "probe");
  HashState& own = *states_[side];
  HashState& opp = *states_[1 - side];
  const Value& key = own.KeyOf(tuple);
  const int p = opp.PartitionOfHash(key_hash);
  opp.NotePartitionProbed(p, current_tick());
  int64_t emitted = 0;
  pending_probe_comparisons_ +=
      opp.ForEachMemoryMatch(p, key, key_hash, [&](const TupleEntry& entry) {
        if (side == 0) {
          EmitResult(tuple, entry.tuple);
        } else {
          EmitResult(entry.tuple, tuple);
        }
        ++emitted;
      });
  return emitted;
}

void JoinOperator::FlushBatchCounters() {
  if (pending_probe_comparisons_ != 0) {
    counters_.Add("probe_comparisons", pending_probe_comparisons_);
    pending_probe_comparisons_ = 0;
  }
}

void JoinOperator::InsertTuple(int side, const Tuple& tuple, int64_t tick) {
  TupleEntry entry;
  entry.tuple = tuple;
  entry.ats = tick;
  states_[side]->InsertMemory(std::move(entry));
}

void JoinOperator::InsertTuple(int side, const Tuple& tuple, int64_t tick,
                               uint64_t key_hash) {
  TupleEntry entry;
  entry.tuple = tuple;
  entry.ats = tick;
  entry.key_hash = key_hash;
  states_[side]->InsertMemory(std::move(entry));
}

Status JoinOperator::RelocateUntilBelowThreshold() {
  TRACE_SPAN("join", "relocate");
  const SpillDecisionStats before = spill_manager_->stats();
  PJOIN_RETURN_NOT_OK(spill_manager_->EnsureWithinBudget(
      options_.runtime.memory_threshold_tuples,
      options_.runtime.memory_threshold_bytes, current_tick(),
      [this] { return NextTick(); }));
  const SpillDecisionStats& after = spill_manager_->stats();
  // Guarded adds keep counter dumps free of zero-valued entries on runs
  // that never hit memory pressure.
  if (after.spills > before.spills) {
    counters_.Add("relocations", after.spills - before.spills);
    counters_.Add("flushed_tuples",
                  after.tuples_spilled - before.tuples_spilled);
  }
  if (after.tuples_early_purged > before.tuples_early_purged) {
    counters_.Add("early_purged_tuples",
                  after.tuples_early_purged - before.tuples_early_purged);
  }
  if (after.repartitions > before.repartitions) {
    counters_.Add("spill_repartitions",
                  after.repartitions - before.repartitions);
  }
  return Status::OK();
}

void JoinOperator::EmitResult(const Tuple& left, const Tuple& right) {
  ++results_emitted_;
  if (tuple_latency_hist_.bound() && ingress_us_ > 0) {
    tuple_latency_hist_.Observe(obs::TraceNowMicros() - ingress_us_);
  }
  if (on_result_move_) {
    on_result_move_(Tuple::Concat(left, right, output_schema_));
  } else if (on_result_) {
    on_result_(Tuple::Concat(left, right, output_schema_));
  }
}

void JoinOperator::EmitPunctuation(Punctuation punct) {
  TRACE_INSTANT("join", "punct_out");
  ++puncts_emitted_;
  counters_.Add("puncts_propagated");
  if (punct_lag_hist_.bound() && ingress_us_ > 0) {
    // Lag from the *current* element's ingress: when propagation runs
    // inline with the triggering arrival this is exactly punct-in →
    // punct-out; for deferred propagation (disk join, finish) it measures
    // trigger → release, the part the operator controls.
    punct_lag_hist_.Observe(obs::TraceNowMicros() - ingress_us_);
  }
  if (on_punct_) on_punct_(punct);
}

void JoinOperator::BindLatencyMetrics(std::string_view labels) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  tuple_latency_hist_ = registry.GetHistogram("pjoin_tuple_latency_seconds",
                                              labels, /*unit_scale=*/1e-6);
  punct_lag_hist_ = registry.GetHistogram("pjoin_punct_propagation_seconds",
                                          labels, /*unit_scale=*/1e-6);
}

void JoinOperator::BindStateGauges(std::string_view labels) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  state_gauge_labels_ = std::string(labels);
  static constexpr std::string_view kSide[2] = {"side=left", "side=right"};
  for (int side = 0; side < 2; ++side) {
    const std::string side_labels = JoinLabels(labels, kSide[side]);
    mem_tuples_gauge_[side] =
        registry.GetGauge("pjoin_state_memory_tuples", side_labels);
    disk_tuples_gauge_[side] =
        registry.GetGauge("pjoin_state_disk_tuples", side_labels);
    purge_buffer_gauge_[side] =
        registry.GetGauge("pjoin_state_purge_buffer_tuples", side_labels);
    mem_bytes_gauge_[side] =
        registry.GetGauge("pjoin_state_memory_bytes", side_labels);
  }
  state_gauges_bound_ = true;
}

void JoinOperator::PublishStateGauges() {
  if (!state_gauges_bound_) return;
  for (int side = 0; side < 2; ++side) {
    const HashState& state = *states_[side];
    mem_tuples_gauge_[side].Set(state.memory_tuples());
    disk_tuples_gauge_[side].Set(state.disk_tuples());
    purge_buffer_gauge_[side].Set(state.purge_buffer_tuples());
    mem_bytes_gauge_[side].Set(state.memory_bytes());
  }
  PublishExtraGauges();
}

std::string JoinLabels(std::string_view base, std::string_view extra) {
  if (base.empty()) return std::string(extra);
  if (extra.empty()) return std::string(base);
  std::string out;
  out.reserve(base.size() + 1 + extra.size());
  out.append(base);
  out.push_back(',');
  out.append(extra);
  return out;
}

void JoinOperator::SampleState() {
  if (options_.state_sample_interval <= 0) return;
  state_series_.Record(last_arrival_, total_state_tuples());
}

}  // namespace pjoin
