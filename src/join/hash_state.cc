#include "join/hash_state.h"

#include <bit>

namespace pjoin {
namespace {

// Index sizing: power-of-two bucket counts, load factor <= 1.
size_t IndexSizeFor(size_t entries) {
  return std::bit_ceil(std::max<size_t>(entries, 8));
}

}  // namespace

HashState::HashState(std::string name, SchemaPtr schema, size_t key_index,
                     int num_partitions, std::unique_ptr<SpillStore> spill,
                     bool indexed)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      key_index_(key_index),
      spill_(std::move(spill)),
      partitions_(static_cast<size_t>(num_partitions)),
      indexed_(indexed) {
  PJOIN_DCHECK(num_partitions > 0);
  PJOIN_DCHECK(schema_ != nullptr);
  PJOIN_DCHECK(key_index_ < schema_->num_fields());
  PJOIN_DCHECK(spill_ != nullptr);
}

int HashState::PartitionOf(const Value& key) const {
  return PartitionOfHash(key.Hash());
}

const HashState::Partition& HashState::partition(int p) const {
  PJOIN_DCHECK(p >= 0 && p < num_partitions());
  return partitions_[static_cast<size_t>(p)];
}

HashState::Partition& HashState::partition(int p) {
  PJOIN_DCHECK(p >= 0 && p < num_partitions());
  return partitions_[static_cast<size_t>(p)];
}

void HashState::RebuildIndex(Partition* part) {
  if (!indexed_) return;
  if (part->memory.empty()) {
    part->index_heads.clear();
    part->index_next.clear();
    part->index_shift = 0;
    return;
  }
  const size_t buckets = IndexSizeFor(part->memory.size());
  part->index_shift = 64 - std::countr_zero(buckets);
  part->index_heads.assign(buckets, kIndexNil);
  part->index_next.assign(part->memory.size(), kIndexNil);
  for (uint32_t i = 0; i < part->memory.size(); ++i) {
    const size_t b =
        IndexBucket(part->memory[i].key_hash, part->index_shift);
    part->index_next[i] = part->index_heads[b];
    part->index_heads[b] = i;
  }
}

void HashState::InsertMemory(TupleEntry entry) {
  PJOIN_DCHECK(entry.InMemory());
  entry.RecomputeKeyHash(key_index_);
  const int p = PartitionOfHash(entry.key_hash);
  memory_bytes_ += static_cast<int64_t>(entry.tuple.ByteSize());
  Partition& part = partition(p);
  part.memory.push_back(std::move(entry));
  ++memory_tuples_;
  if (!indexed_) return;
  if (part.memory.size() > part.index_heads.size()) {
    RebuildIndex(&part);  // grow (doubles the bucket count) and relink
  } else {
    const uint32_t i = static_cast<uint32_t>(part.memory.size() - 1);
    const size_t b =
        IndexBucket(part.memory[i].key_hash, part.index_shift);
    part.index_next.push_back(part.index_heads[b]);
    part.index_heads[b] = i;
  }
}

const std::vector<TupleEntry>& HashState::memory(int p) const {
  return partition(p).memory;
}

std::vector<TupleEntry>& HashState::memory(int p) {
  return partition(p).memory;
}

int HashState::LargestMemoryPartition() const {
  int best = -1;
  size_t best_size = 0;
  for (int p = 0; p < num_partitions(); ++p) {
    const size_t size = partitions_[static_cast<size_t>(p)].memory.size();
    if (size > best_size) {
      best_size = size;
      best = p;
    }
  }
  return best;
}

Status HashState::FlushPartitionToDisk(int p, int64_t dts_tick) {
  Partition& part = partition(p);
  if (part.memory.empty()) return Status::OK();
  std::vector<std::string> records;
  records.reserve(part.memory.size());
  bool unindexed = false;
  for (auto& entry : part.memory) {
    entry.dts = dts_tick;
    if (entry.pid == kNullPid) unindexed = true;
    memory_bytes_ -= static_cast<int64_t>(entry.tuple.ByteSize());
    records.push_back(entry.Serialize());
  }
  PJOIN_RETURN_NOT_OK(spill_->AppendBatch(p, records));
  const int64_t flushed = static_cast<int64_t>(part.memory.size());
  part.memory.clear();
  part.index_heads.clear();
  part.index_next.clear();
  part.index_shift = 0;
  part.disk_count += flushed;
  memory_tuples_ -= flushed;
  disk_tuples_ += flushed;
  if (unindexed) has_unindexed_disk_ = true;
  return Status::OK();
}

Result<std::vector<TupleEntry>> HashState::ReadDiskPartition(int p) {
  PJOIN_ASSIGN_OR_RETURN(std::vector<std::string> records,
                         spill_->ReadPartition(p));
  std::vector<TupleEntry> entries;
  entries.reserve(records.size());
  for (const auto& record : records) {
    PJOIN_ASSIGN_OR_RETURN(TupleEntry entry,
                           TupleEntry::Deserialize(record, schema_));
    entry.RecomputeKeyHash(key_index_);
    entries.push_back(std::move(entry));
  }
  return entries;
}

Status HashState::RewriteDiskPartition(
    int p, const std::vector<TupleEntry>& survivors) {
  Partition& part = partition(p);
  PJOIN_RETURN_NOT_OK(spill_->ClearPartition(p));
  disk_tuples_ -= part.disk_count;
  part.disk_count = 0;
  if (!survivors.empty()) {
    std::vector<std::string> records;
    records.reserve(survivors.size());
    for (const auto& entry : survivors) records.push_back(entry.Serialize());
    PJOIN_RETURN_NOT_OK(spill_->AppendBatch(p, records));
    part.disk_count = static_cast<int64_t>(survivors.size());
    disk_tuples_ += part.disk_count;
  }
  PJOIN_DCHECK(disk_tuples_ >= 0);
  return Status::OK();
}

int64_t HashState::disk_tuples(int p) const { return partition(p).disk_count; }

void HashState::AddToPurgeBuffer(int p, TupleEntry entry) {
  PJOIN_DCHECK(!entry.InMemory());
  if (entry.key_hash == 0) entry.RecomputeKeyHash(key_index_);
  partition(p).purge_buffer.push_back(std::move(entry));
  ++purge_buffer_tuples_;
}

const std::vector<TupleEntry>& HashState::purge_buffer(int p) const {
  return partition(p).purge_buffer;
}

std::vector<TupleEntry>& HashState::purge_buffer(int p) {
  return partition(p).purge_buffer;
}

std::vector<TupleEntry> HashState::TakePurgeBuffer(int p) {
  auto& buf = partition(p).purge_buffer;
  std::vector<TupleEntry> taken = std::move(buf);
  buf.clear();
  purge_buffer_tuples_ -= static_cast<int64_t>(taken.size());
  PJOIN_DCHECK(purge_buffer_tuples_ >= 0);
  return taken;
}

void HashState::RecordProbe(int p, int64_t tick) {
  partition(p).probe_times.push_back(tick);
}

const std::vector<int64_t>& HashState::probe_times(int p) const {
  return partition(p).probe_times;
}

std::string HashState::DescribeState() const {
  std::string out = name_ + " state: " + std::to_string(memory_tuples_) +
                    " mem (" + std::to_string(memory_bytes_) + " B), " +
                    std::to_string(disk_tuples_) + " disk, " +
                    std::to_string(purge_buffer_tuples_) + " buffered\n";
  for (int p = 0; p < num_partitions(); ++p) {
    const Partition& part = partitions_[static_cast<size_t>(p)];
    if (part.memory.empty() && part.disk_count == 0 &&
        part.purge_buffer.empty()) {
      continue;
    }
    out += "  partition " + std::to_string(p) + ": mem=" +
           std::to_string(part.memory.size()) + " disk=" +
           std::to_string(part.disk_count) + " buffered=" +
           std::to_string(part.purge_buffer.size()) + " probes=" +
           std::to_string(part.probe_times.size()) + "\n";
  }
  return out;
}

bool JoinedBefore(const TupleEntry& a, const std::vector<int64_t>& probes_a,
                  const TupleEntry& b, const std::vector<int64_t>& probes_b) {
  if (IntervalsOverlap(a, b)) return true;
  // A disk probe of a's side at tick T joined (a, b) when a was on disk by T
  // and b was memory-resident at T.
  for (int64_t t : probes_a) {
    if (a.dts <= t && b.ats <= t && t < b.dts) return true;
  }
  for (int64_t t : probes_b) {
    if (b.dts <= t && a.ats <= t && t < a.dts) return true;
  }
  return false;
}

}  // namespace pjoin
