#include "join/hash_state.h"

#include <bit>

namespace pjoin {
namespace {

// Index sizing: power-of-two bucket counts, load factor <= 1.
size_t IndexSizeFor(size_t entries) {
  return std::bit_ceil(std::max<size_t>(entries, 8));
}

}  // namespace

HashState::HashState(std::string name, SchemaPtr schema, size_t key_index,
                     int num_partitions, std::unique_ptr<SpillStore> spill,
                     bool indexed)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      key_index_(key_index),
      spill_(std::move(spill)),
      partitions_(static_cast<size_t>(num_partitions)),
      indexed_(indexed),
      next_spill_unit_id_(num_partitions) {
  PJOIN_DCHECK(num_partitions > 0);
  PJOIN_DCHECK(schema_ != nullptr);
  PJOIN_DCHECK(key_index_ < schema_->num_fields());
  PJOIN_DCHECK(spill_ != nullptr);
}

int HashState::PartitionOf(const Value& key) const {
  return PartitionOfHash(key.Hash());
}

const HashState::Partition& HashState::partition(int p) const {
  PJOIN_DCHECK(p >= 0 && p < num_partitions());
  return partitions_[static_cast<size_t>(p)];
}

HashState::Partition& HashState::partition(int p) {
  PJOIN_DCHECK(p >= 0 && p < num_partitions());
  return partitions_[static_cast<size_t>(p)];
}

void HashState::RebuildIndex(Partition* part) {
  if (!indexed_) return;
  if (part->memory.empty()) {
    part->index_heads.clear();
    part->index_next.clear();
    part->index_shift = 0;
    return;
  }
  const size_t buckets = IndexSizeFor(part->memory.size());
  part->index_shift = 64 - std::countr_zero(buckets);
  part->index_heads.assign(buckets, kIndexNil);
  part->index_next.assign(part->memory.size(), kIndexNil);
  for (uint32_t i = 0; i < part->memory.size(); ++i) {
    const size_t b =
        IndexBucket(part->memory[i].key_hash, part->index_shift);
    part->index_next[i] = part->index_heads[b];
    part->index_heads[b] = i;
  }
}

void HashState::InsertMemory(TupleEntry entry) {
  PJOIN_DCHECK(entry.InMemory());
  // A caller that already knows the key hash (the batched probe path, disk
  // read-back) seeds entry.key_hash; 0 means "not computed" (tuple_entry.h)
  // and recomputing is always safe, so a zero-hash key just loses caching.
  if (entry.key_hash == 0) entry.RecomputeKeyHash(key_index_);
  const int p = PartitionOfHash(entry.key_hash);
  const int64_t bytes = static_cast<int64_t>(entry.tuple.ByteSize());
  memory_bytes_ += bytes;
  Partition& part = partition(p);
  part.memory_bytes += bytes;
  part.last_access_tick = std::max(part.last_access_tick, entry.ats);
  part.memory.push_back(std::move(entry));
  ++memory_tuples_;
  if (!indexed_) return;
  if (part.memory.size() > part.index_heads.size()) {
    RebuildIndex(&part);  // grow (doubles the bucket count) and relink
  } else {
    const uint32_t i = static_cast<uint32_t>(part.memory.size() - 1);
    const size_t b =
        IndexBucket(part.memory[i].key_hash, part.index_shift);
    part.index_next.push_back(part.index_heads[b]);
    part.index_heads[b] = i;
  }
}

const std::vector<TupleEntry>& HashState::memory(int p) const {
  return partition(p).memory;
}

std::vector<TupleEntry>& HashState::memory(int p) {
  return partition(p).memory;
}

void HashState::NotePartitionProbed(int p, int64_t tick) {
  Partition& part = partition(p);
  part.last_access_tick = std::max(part.last_access_tick, tick);
}

int64_t HashState::PartitionMemoryTuples(int p) const {
  return static_cast<int64_t>(partition(p).memory.size());
}

int64_t HashState::PartitionMemoryBytes(int p) const {
  return partition(p).memory_bytes;
}

int64_t HashState::PartitionLastAccessTick(int p) const {
  return partition(p).last_access_tick;
}

int HashState::LargestMemoryPartition() const {
  int best = -1;
  size_t best_size = 0;
  for (int p = 0; p < num_partitions(); ++p) {
    const size_t size = partitions_[static_cast<size_t>(p)].memory.size();
    if (size > best_size) {
      best_size = size;
      best = p;
    }
  }
  return best;
}

Status HashState::FlushPartitionToDisk(int p, int64_t dts_tick) {
  Partition& part = partition(p);
  if (part.memory.empty()) return Status::OK();
  std::vector<std::string> records;
  records.reserve(part.memory.size());
  for (auto& entry : part.memory) {
    entry.dts = dts_tick;
    records.push_back(entry.Serialize());
  }
  const int64_t before = spill_->PartitionRecordCount(p);
  const Status append = spill_->AppendBatch(p, records);
  if (!append.ok()) {
    // The store may still have persisted a durable prefix of the batch
    // (short write, mid-batch error): AppendBatch commits its record count
    // only per durable page, and serialization follows memory order, so
    // exactly the first `persisted` entries are on disk. Account those as
    // disk-resident (a later retry must not write them again) and keep the
    // rest in memory, alive (they must not be lost).
    const int64_t persisted = spill_->PartitionRecordCount(p) - before;
    PJOIN_DCHECK(persisted >= 0 &&
                 persisted <= static_cast<int64_t>(part.memory.size()));
    if (persisted > 0) {
      bool unindexed = false;
      for (int64_t i = 0; i < persisted; ++i) {
        const TupleEntry& entry = part.memory[static_cast<size_t>(i)];
        if (entry.pid == kNullPid) unindexed = true;
        const int64_t bytes = static_cast<int64_t>(entry.tuple.ByteSize());
        memory_bytes_ -= bytes;
        part.memory_bytes -= bytes;
      }
      part.memory.erase(part.memory.begin(), part.memory.begin() + persisted);
      memory_tuples_ -= persisted;
      part.disk_count += persisted;
      disk_tuples_ += persisted;
      if (unindexed) has_unindexed_disk_ = true;
      RebuildIndex(&part);
    }
    for (auto& entry : part.memory) entry.dts = kAliveDts;
    return append;
  }
  const int64_t flushed = static_cast<int64_t>(part.memory.size());
  bool unindexed = false;
  for (const auto& entry : part.memory) {
    if (entry.pid == kNullPid) unindexed = true;
  }
  memory_bytes_ -= part.memory_bytes;
  part.memory_bytes = 0;
  part.memory.clear();
  part.index_heads.clear();
  part.index_next.clear();
  part.index_shift = 0;
  part.disk_count += flushed;
  memory_tuples_ -= flushed;
  disk_tuples_ += flushed;
  if (unindexed) has_unindexed_disk_ = true;
  return Status::OK();
}

namespace {

// Sub-partition group of a record within a unit at `depth`: a further
// `fanout`-way slice of the hash bits above the partition selector. Records
// in a depth-d unit already agree on the slices below d.
int SpillUnitGroup(uint64_t key_hash, int num_partitions, int depth,
                   int fanout) {
  uint64_t h = key_hash / static_cast<uint64_t>(num_partitions);
  for (int d = 0; d < depth; ++d) h /= static_cast<uint64_t>(fanout);
  return static_cast<int>(h % static_cast<uint64_t>(fanout));
}

}  // namespace

int64_t HashState::LargestSpillUnitRecords(int p) const {
  const Partition& part = partition(p);
  int64_t largest = spill_->PartitionRecordCount(p);
  for (const Partition::SpillUnit& unit : part.spill_units) {
    largest = std::max(largest, spill_->PartitionRecordCount(unit.id));
  }
  return largest;
}

Status HashState::SplitSpilledPartition(int p, int fanout, int max_depth) {
  PJOIN_DCHECK(fanout > 1);
  Partition& part = partition(p);
  // The victim unit: the largest of base + sub-units.
  int unit_id = p;
  int unit_depth = 0;
  int unit_index = -1;  // index in spill_units; -1 = base
  int64_t unit_records = spill_->PartitionRecordCount(p);
  for (size_t i = 0; i < part.spill_units.size(); ++i) {
    const int64_t count =
        spill_->PartitionRecordCount(part.spill_units[i].id);
    if (count > unit_records) {
      unit_records = count;
      unit_id = part.spill_units[i].id;
      unit_depth = part.spill_units[i].depth;
      unit_index = static_cast<int>(i);
    }
  }
  if (unit_records == 0) {
    return Status::FailedPrecondition("nothing spilled to split");
  }
  if (unit_depth >= max_depth) {
    return Status::FailedPrecondition("split depth exhausted");
  }
  // All IO below runs in the repartition phase so fault plans can target it.
  SpillPhaseScope phase(SpillPhase::kRepartition);
  PJOIN_ASSIGN_OR_RETURN(std::vector<std::string> records,
                         spill_->ReadPartition(unit_id));
  PJOIN_DCHECK(static_cast<int64_t>(records.size()) == unit_records);
  std::vector<std::vector<std::string>> groups(static_cast<size_t>(fanout));
  for (const std::string& record : records) {
    PJOIN_ASSIGN_OR_RETURN(TupleEntry entry,
                           TupleEntry::Deserialize(record, schema_));
    entry.RecomputeKeyHash(key_index_);
    const int g = SpillUnitGroup(entry.key_hash, num_partitions(),
                                 unit_depth, fanout);
    groups[static_cast<size_t>(g)].push_back(record);
  }
  int nonempty = 0;
  for (const auto& group : groups) {
    if (!group.empty()) ++nonempty;
  }
  if (nonempty <= 1) {
    // Deeper hash bits cannot separate these records (one hot key): no
    // progress is possible at this or any greater depth.
    return Status::FailedPrecondition("split makes no progress");
  }
  // Write all new units to fresh ids before touching the old one: a failure
  // here leaves the mapping on the intact old unit (new ids become
  // unreferenced orphans — wasted pages, never wrong results).
  std::vector<Partition::SpillUnit> fresh;
  Status write_status;
  for (auto& group : groups) {
    if (group.empty()) continue;
    const int id = next_spill_unit_id_++;
    write_status = spill_->AppendBatch(id, group);
    if (!write_status.ok()) break;
    fresh.push_back(Partition::SpillUnit{id, unit_depth + 1});
  }
  if (!write_status.ok()) {
    for (const Partition::SpillUnit& unit : fresh) {
      // Best-effort space reclamation; the ids are orphaned either way.
      const Status cleared = spill_->ClearPartition(unit.id);
      if (!cleared.ok()) break;
    }
    return write_status;
  }
  if (unit_index < 0) {
    // Splitting the base unit: it stays the flush target, so it must really
    // be emptied before the new units join the mapping, or a re-read would
    // see every record twice. On failure, undo by orphaning the new units.
    const Status cleared = spill_->ClearPartition(unit_id);
    if (!cleared.ok()) {
      for (const Partition::SpillUnit& unit : fresh) {
        const Status undo = spill_->ClearPartition(unit.id);
        if (!undo.ok()) break;
      }
      return cleared;
    }
  } else {
    // A sub-unit is dropped from the mapping first; clearing its id after
    // that is pure space reclamation (an orphan on failure, never re-read).
    part.spill_units.erase(part.spill_units.begin() + unit_index);
    if (const Status cleared = spill_->ClearPartition(unit_id);
        !cleared.ok()) {
      // The id is orphaned: wasted pages until Close, but never re-read.
    }
  }
  part.spill_units.insert(part.spill_units.end(), fresh.begin(), fresh.end());
  return Status::OK();
}

Result<std::vector<TupleEntry>> HashState::ReadDiskPartition(int p) {
  const Partition& part = partition(p);
  std::vector<int> unit_ids;
  unit_ids.reserve(1 + part.spill_units.size());
  unit_ids.push_back(p);
  for (const Partition::SpillUnit& unit : part.spill_units) {
    unit_ids.push_back(unit.id);
  }
  std::vector<TupleEntry> entries;
  for (int id : unit_ids) {
    PJOIN_ASSIGN_OR_RETURN(std::vector<std::string> records,
                           spill_->ReadPartition(id));
    entries.reserve(entries.size() + records.size());
    for (const auto& record : records) {
      PJOIN_ASSIGN_OR_RETURN(TupleEntry entry,
                             TupleEntry::Deserialize(record, schema_));
      entry.RecomputeKeyHash(key_index_);
      entries.push_back(std::move(entry));
    }
  }
  return entries;
}

Status HashState::RewriteDiskPartition(
    int p, const std::vector<TupleEntry>& survivors) {
  Partition& part = partition(p);
  PJOIN_RETURN_NOT_OK(spill_->ClearPartition(p));
  for (const Partition::SpillUnit& unit : part.spill_units) {
    PJOIN_RETURN_NOT_OK(spill_->ClearPartition(unit.id));
  }
  part.spill_units.clear();
  disk_tuples_ -= part.disk_count;
  part.disk_count = 0;
  if (!survivors.empty()) {
    std::vector<std::string> records;
    records.reserve(survivors.size());
    for (const auto& entry : survivors) records.push_back(entry.Serialize());
    PJOIN_RETURN_NOT_OK(spill_->AppendBatch(p, records));
    part.disk_count = static_cast<int64_t>(survivors.size());
    disk_tuples_ += part.disk_count;
  }
  PJOIN_DCHECK(disk_tuples_ >= 0);
  return Status::OK();
}

int64_t HashState::disk_tuples(int p) const { return partition(p).disk_count; }

void HashState::AddToPurgeBuffer(int p, TupleEntry entry) {
  PJOIN_DCHECK(!entry.InMemory());
  if (entry.key_hash == 0) entry.RecomputeKeyHash(key_index_);
  partition(p).purge_buffer.push_back(std::move(entry));
  ++purge_buffer_tuples_;
}

const std::vector<TupleEntry>& HashState::purge_buffer(int p) const {
  return partition(p).purge_buffer;
}

std::vector<TupleEntry>& HashState::purge_buffer(int p) {
  return partition(p).purge_buffer;
}

std::vector<TupleEntry> HashState::TakePurgeBuffer(int p) {
  auto& buf = partition(p).purge_buffer;
  std::vector<TupleEntry> taken = std::move(buf);
  buf.clear();
  purge_buffer_tuples_ -= static_cast<int64_t>(taken.size());
  PJOIN_DCHECK(purge_buffer_tuples_ >= 0);
  return taken;
}

void HashState::RecordProbe(int p, int64_t tick) {
  partition(p).probe_times.push_back(tick);
}

const std::vector<int64_t>& HashState::probe_times(int p) const {
  return partition(p).probe_times;
}

std::string HashState::DescribeState() const {
  std::string out = name_ + " state: " + std::to_string(memory_tuples_) +
                    " mem (" + std::to_string(memory_bytes_) + " B), " +
                    std::to_string(disk_tuples_) + " disk, " +
                    std::to_string(purge_buffer_tuples_) + " buffered\n";
  for (int p = 0; p < num_partitions(); ++p) {
    const Partition& part = partitions_[static_cast<size_t>(p)];
    if (part.memory.empty() && part.disk_count == 0 &&
        part.purge_buffer.empty()) {
      continue;
    }
    out += "  partition " + std::to_string(p) + ": mem=" +
           std::to_string(part.memory.size()) + " disk=" +
           std::to_string(part.disk_count) + " buffered=" +
           std::to_string(part.purge_buffer.size()) + " probes=" +
           std::to_string(part.probe_times.size()) + "\n";
  }
  return out;
}

bool JoinedBefore(const TupleEntry& a, const std::vector<int64_t>& probes_a,
                  const TupleEntry& b, const std::vector<int64_t>& probes_b) {
  if (IntervalsOverlap(a, b)) return true;
  // A disk probe of a's side at tick T joined (a, b) when a was on disk by T
  // and b was memory-resident at T.
  for (int64_t t : probes_a) {
    if (a.dts <= t && b.ats <= t && t < b.dts) return true;
  }
  for (int64_t t : probes_b) {
    if (b.dts <= t && a.ats <= t && t < a.dts) return true;
  }
  return false;
}

}  // namespace pjoin
