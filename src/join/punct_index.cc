#include "join/punct_index.h"

#include "common/macros.h"

namespace pjoin {

int64_t PunctuationIndexer::BuildIndex(PunctuationSet* ps, HashState* state,
                                       CounterSet* counters) {
  // Select the punctuations not yet used for indexing (Fig 3, lines 3-6);
  // the set keeps them queued so this does not rescan all punctuations.
  std::vector<PunctEntry*> index_set;
  for (int64_t pid : ps->TakeUnindexed()) {
    PunctEntry* entry = ps->Find(pid);
    if (entry != nullptr && !entry->indexed) index_set.push_back(entry);
  }
  if (counters != nullptr) counters->Add("index_scans");
  if (index_set.empty()) return 0;

  int64_t assignments = 0;
  int64_t scanned = 0;
  auto index_entries = [&](std::vector<TupleEntry>& entries) {
    for (TupleEntry& t : entries) {
      ++scanned;
      if (t.pid != kNullPid) continue;
      for (PunctEntry* p : index_set) {
        if (p->punct.Matches(t.tuple)) {
          t.pid = p->pid;
          ++p->match_count;
          ++assignments;
          break;
        }
      }
    }
  };

  for (int p = 0; p < state->num_partitions(); ++p) {
    index_entries(state->memory(p));
    // The purge buffer is still part of the state (its tuples can produce
    // further results against the opposite disk portion), so it must hold
    // propagation back as well.
    index_entries(state->purge_buffer(p));
  }

  for (PunctEntry* p : index_set) p->indexed = true;
  if (counters != nullptr) {
    counters->Add("index_scanned_tuples", scanned);
    counters->Add("index_assignments", assignments);
  }
  return assignments;
}

void PunctuationIndexer::IndexEntry(PunctuationSet* ps, TupleEntry* entry) {
  if (entry->pid != kNullPid) return;
  PunctEntry* match = ps->FindFirstMatch(entry->tuple);
  if (match != nullptr) {
    entry->pid = match->pid;
    ++match->match_count;
  }
}

void PunctuationIndexer::OnEntryDiscarded(PunctuationSet* ps,
                                          const TupleEntry& entry) {
  if (entry.pid == kNullPid) return;
  PunctEntry* p = ps->Find(entry.pid);
  // The punctuation must still be present: it cannot have been propagated
  // while this entry contributed to its count.
  PJOIN_DCHECK(p != nullptr);
  --p->match_count;
  PJOIN_DCHECK(p->match_count >= 0);
}

std::vector<Punctuation> Propagator::Propagate(PunctuationSet* ps) {
  std::vector<Punctuation> released;
  std::vector<const Punctuation*> blocked;
  std::vector<int64_t> released_pids;
  ps->ForEach([&](PunctEntry& entry) {
    bool overlap_blocked = false;
    for (const Punctuation* b : blocked) {
      if (!Punctuation::And(*b, entry.punct).IsEmpty()) {
        overlap_blocked = true;
        break;
      }
    }
    if (entry.indexed && entry.match_count == 0 && !overlap_blocked) {
      released.push_back(entry.punct);
      released_pids.push_back(entry.pid);
    } else {
      blocked.push_back(&entry.punct);
    }
  });
  for (int64_t pid : released_pids) ps->RemoveRetainingCoverage(pid);
  return released;
}

}  // namespace pjoin
