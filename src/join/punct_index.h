// The punctuation index of paper §3.5 (Fig 2, Fig 3): incremental assignment
// of pids to state tuples, per-punctuation match counts, and the propagation
// step that releases punctuations whose count reached zero.

#ifndef PJOIN_JOIN_PUNCT_INDEX_H_
#define PJOIN_JOIN_PUNCT_INDEX_H_

#include <vector>

#include "common/metrics.h"
#include "join/hash_state.h"
#include "punct/punctuation_set.h"

namespace pjoin {

class PunctuationIndexer {
 public:
  /// The paper's Index-Build (Fig 3, lines 1-14) extended to also cover the
  /// purge buffers: every state entry with pid == kNullPid is evaluated
  /// against the not-yet-indexed punctuations of `ps`, in arrival order, and
  /// gets the pid of the first match; that punctuation's count is
  /// incremented. All scanned punctuations are then marked indexed.
  /// Returns the number of pid assignments. Counters updated:
  /// index_scans, index_scanned_tuples, index_assignments.
  static int64_t BuildIndex(PunctuationSet* ps, HashState* state,
                            CounterSet* counters);

  /// Indexes a single entry (used by the disk join for fetched disk-resident
  /// entries that were flushed before they could be indexed). Matches
  /// against the whole set, earliest arrival first.
  static void IndexEntry(PunctuationSet* ps, TupleEntry* entry);

  /// Bookkeeping when an entry is discarded for good (purged from memory
  /// with no disk partner, dropped from a purge buffer after its disk joins
  /// completed, or purged from disk): decrements its punctuation's count.
  static void OnEntryDiscarded(PunctuationSet* ps, const TupleEntry& entry);
};

class Propagator {
 public:
  /// The paper's Propagate (Fig 3, lines 16-21) with a safety gate for
  /// overlapping punctuations: a punctuation is released only when it is
  /// indexed, its count is zero, and no earlier still-held punctuation
  /// overlaps it (a tuple matching both punctuations carries the pid of the
  /// earlier one — paper Fig 2(b) — so the earlier count guards both).
  /// Released punctuations are removed from the set and returned in arrival
  /// order.
  static std::vector<Punctuation> Propagate(PunctuationSet* ps);
};

}  // namespace pjoin

#endif  // PJOIN_JOIN_PUNCT_INDEX_H_
