#include "join/xjoin.h"

#include "obs/progress.h"
#include "obs/trace.h"

namespace pjoin {

XJoin::XJoin(SchemaPtr left_schema, SchemaPtr right_schema,
             JoinOptions options)
    : JoinOperator(std::move(left_schema), std::move(right_schema),
                   std::move(options)) {}

Status XJoin::OnTuple(int side, const Tuple& tuple) {
  const int64_t tick = NextTick();
  ProbeOppositeMemory(side, tuple);
  InsertTuple(side, tuple, tick);
  // Memory pressure is resolved by the shared SpillManager (coldness-scored
  // victims, recursive sub-partitioning); XJoin has no punctuations, so the
  // manager's early-purge rung is a no-op here (no purger is wired).
  return RelocateUntilBelowThreshold();
}

Status XJoin::OnPunctuation(int side, const Punctuation& punct) {
  (void)side;
  (void)punct;
  counters().Add("puncts_ignored");
  // The frontier still advances (join_base notes the processing); flag the
  // drop so a health probe can tell "consumed but ignored" from "stuck".
  if (frontier_shard() >= 0) {
    obs::FrontierTracker::Global().NotePunctIgnored();
  }
  return Status::OK();
}

bool XJoin::PickReactiveVictim(int* side, int* partition) const {
  int64_t best = 0;
  bool found = false;
  for (int s = 0; s < 2; ++s) {
    for (int p = 0; p < state(s).num_partitions(); ++p) {
      const int64_t n = state(s).disk_tuples(p);
      if (n > best) {
        best = n;
        *side = s;
        *partition = p;
        found = true;
      }
    }
  }
  return found && best >= options().runtime.disk_join_activation_threshold;
}

Status XJoin::OnStreamsStalled() {
  int side = 0;
  int partition = 0;
  if (!PickReactiveVictim(&side, &partition)) return Status::OK();
  return ReactivePass(side, partition);
}

Status XJoin::ReactivePass(int side, int partition) {
  TRACE_SPAN("xjoin", "reactive_pass");
  HashState& own = mutable_state(side);
  HashState& opp = mutable_state(1 - side);
  const int64_t pass_tick = NextTick();

  PJOIN_ASSIGN_OR_RETURN(std::vector<TupleEntry> disk,
                         own.ReadDiskPartition(partition));
  const auto& probes_own = own.probe_times(partition);
  const auto& probes_opp = opp.probe_times(partition);
  int64_t compared = 0;
  for (const TupleEntry& d : disk) {
    compared += opp.ForEachMemoryMatch(
        partition, own.KeyOf(d.tuple), d.key_hash, [&](const TupleEntry& m) {
          if (JoinedBefore(d, probes_own, m, probes_opp)) return;
          if (side == 0) {
            EmitResult(d.tuple, m.tuple);
          } else {
            EmitResult(m.tuple, d.tuple);
          }
        });
  }
  counters().Add("disk_comparisons", compared);
  counters().Add("reactive_passes");
  // Everything on this side's disk portion has now met the opposite memory
  // portion as of pass_tick.
  own.RecordProbe(partition, pass_tick);
  return Status::OK();
}

Status XJoin::CleanupPass() {
  TRACE_SPAN("xjoin", "cleanup_pass");
  counters().Add("cleanup_passes");
  const int64_t pass_tick = NextTick();
  HashState& left = mutable_state(0);
  HashState& right = mutable_state(1);
  for (int p = 0; p < left.num_partitions(); ++p) {
    if (left.disk_tuples(p) == 0 && right.disk_tuples(p) == 0) continue;
    PJOIN_ASSIGN_OR_RETURN(std::vector<TupleEntry> disk_l,
                           left.ReadDiskPartition(p));
    PJOIN_ASSIGN_OR_RETURN(std::vector<TupleEntry> disk_r,
                           right.ReadDiskPartition(p));
    const auto& probes_l = left.probe_times(p);
    const auto& probes_r = right.probe_times(p);
    int64_t compared = 0;

    auto try_emit = [&](const TupleEntry& l, const TupleEntry& r) {
      ++compared;
      // Cached hashes filter non-matches before the key comparison.
      if (l.key_hash != r.key_hash ||
          left.KeyOf(l.tuple) != right.KeyOf(r.tuple)) {
        return;
      }
      if (JoinedBefore(l, probes_l, r, probes_r)) return;
      EmitResult(l.tuple, r.tuple);
    };

    // disk(left) x memory(right), probed through the memory index
    for (const TupleEntry& l : disk_l) {
      compared += right.ForEachMemoryMatch(
          p, left.KeyOf(l.tuple), l.key_hash, [&](const TupleEntry& r) {
            if (JoinedBefore(l, probes_l, r, probes_r)) return;
            EmitResult(l.tuple, r.tuple);
          });
    }
    // memory(left) x disk(right)
    for (const TupleEntry& r : disk_r) {
      compared += left.ForEachMemoryMatch(
          p, right.KeyOf(r.tuple), r.key_hash, [&](const TupleEntry& l) {
            if (JoinedBefore(l, probes_l, r, probes_r)) return;
            EmitResult(l.tuple, r.tuple);
          });
    }
    // disk(left) x disk(right)
    for (const TupleEntry& l : disk_l) {
      for (const TupleEntry& r : disk_r) try_emit(l, r);
    }
    counters().Add("disk_comparisons", compared);
    left.RecordProbe(p, pass_tick);
    right.RecordProbe(p, pass_tick);
  }
  return Status::OK();
}

Status XJoin::Finish() { return CleanupPass(); }

}  // namespace pjoin
