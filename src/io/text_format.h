// Text serialization of schemas, tuples, punctuations and whole punctuated
// streams — the interchange format used by the CLI tool and by users who
// want to replay captured streams.
//
// Schema spec:     "key:int64,qty:int64,name:string"
// Stream file, one element per line:
//   t <arrival_micros> <v1>,<v2>,...        data tuple
//   p <arrival_micros> <ptn1>,<ptn2>,...    punctuation
//   # ...                                   comment (ignored), blank ok
// Values:   123   4.5   "text" (quotes required for strings)   null
// Patterns: *   <value>   [<lo>..<hi>]   {v1|v2|v3}   ()
// End-of-stream is implicit at end of file.

#ifndef PJOIN_IO_TEXT_FORMAT_H_
#define PJOIN_IO_TEXT_FORMAT_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "stream/element.h"
#include "tuple/schema.h"

namespace pjoin {

/// Parses "name:type,..." into a schema. Types: int64, float64, string.
Result<SchemaPtr> ParseSchemaSpec(const std::string& spec);
/// Inverse of ParseSchemaSpec.
std::string FormatSchemaSpec(const Schema& schema);

/// Parses a single value token ("123", "4.5", "\"text\"", "null") as the
/// given type.
Result<Value> ParseValue(const std::string& token, ValueType type);
/// Formats a value as a token ParseValue accepts.
std::string FormatValue(const Value& value);

/// Parses one pattern token ("*", "[2..8]", "{1|3|5}", "()", or a value).
Result<Pattern> ParsePattern(const std::string& token, ValueType type);
std::string FormatPattern(const Pattern& pattern);

/// Parses one comma-separated tuple line body against the schema.
Result<Tuple> ParseTupleBody(const std::string& body, const SchemaPtr& schema);
std::string FormatTupleBody(const Tuple& tuple);

/// Parses one comma-separated punctuation line body against the schema.
Result<Punctuation> ParsePunctuationBody(const std::string& body,
                                         const Schema& schema);
std::string FormatPunctuationBody(const Punctuation& punct);

/// Parses a whole stream file body (see header comment). Appends an
/// end-of-stream element stamped with the last arrival time.
Result<std::vector<StreamElement>> ParseStreamText(const std::string& text,
                                                   const SchemaPtr& schema);

/// Formats elements back into the stream file format (end-of-stream
/// elements are omitted — they are implicit).
std::string FormatStreamText(const std::vector<StreamElement>& elements);

/// Reads and parses a stream file from disk.
Result<std::vector<StreamElement>> ReadStreamFile(const std::string& path,
                                                  const SchemaPtr& schema);
/// Writes elements to a stream file.
Status WriteStreamFile(const std::string& path,
                       const std::vector<StreamElement>& elements);

}  // namespace pjoin

#endif  // PJOIN_IO_TEXT_FORMAT_H_
