#include "io/text_format.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "common/macros.h"

namespace pjoin {
namespace {

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

// Splits on `sep` at depth zero w.r.t. the bracket pairs used by patterns
// ("[..]", "{..}", "(..)") and quoted strings, so enum members and string
// values may contain the separator.
std::vector<std::string> SplitTopLevel(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::string current;
  int depth = 0;
  bool quoted = false;
  for (size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (quoted) {
      current += c;
      if (c == '\\' && i + 1 < s.size()) {
        current += s[++i];
      } else if (c == '"') {
        quoted = false;
      }
      continue;
    }
    switch (c) {
      case '"':
        quoted = true;
        current += c;
        continue;
      case '[':
      case '{':
      case '(':
        ++depth;
        break;
      case ']':
      case '}':
      case ')':
        --depth;
        break;
      default:
        break;
    }
    if (c == sep && depth == 0) {
      parts.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  parts.push_back(current);
  return parts;
}

Result<ValueType> ParseTypeName(const std::string& name) {
  if (name == "int64") return ValueType::kInt64;
  if (name == "float64") return ValueType::kFloat64;
  if (name == "string") return ValueType::kString;
  return Status::InvalidArgument("unknown type '" + name + "'");
}

std::string EscapeString(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

Result<std::string> UnescapeString(const std::string& token) {
  if (token.size() < 2 || token.front() != '"' || token.back() != '"') {
    return Status::InvalidArgument("malformed string token: " + token);
  }
  std::string out;
  for (size_t i = 1; i + 1 < token.size(); ++i) {
    if (token[i] == '\\' && i + 2 < token.size()) ++i;
    out += token[i];
  }
  return out;
}

}  // namespace

Result<SchemaPtr> ParseSchemaSpec(const std::string& spec) {
  std::vector<Field> fields;
  for (const std::string& part : SplitTopLevel(spec, ',')) {
    const std::string field_spec = Trim(part);
    if (field_spec.empty()) {
      return Status::InvalidArgument("empty field in schema spec");
    }
    const size_t colon = field_spec.rfind(':');
    if (colon == std::string::npos || colon == 0) {
      return Status::InvalidArgument("field spec needs name:type, got '" +
                                     field_spec + "'");
    }
    PJOIN_ASSIGN_OR_RETURN(ValueType type,
                           ParseTypeName(Trim(field_spec.substr(colon + 1))));
    fields.push_back(Field{Trim(field_spec.substr(0, colon)), type});
  }
  if (fields.empty()) {
    return Status::InvalidArgument("schema spec has no fields");
  }
  return Schema::Make(std::move(fields));
}

std::string FormatSchemaSpec(const Schema& schema) {
  std::ostringstream os;
  for (size_t i = 0; i < schema.num_fields(); ++i) {
    if (i > 0) os << ",";
    os << schema.field(i).name << ":"
       << ValueTypeName(schema.field(i).type);
  }
  return os.str();
}

Result<Value> ParseValue(const std::string& raw, ValueType type) {
  const std::string token = Trim(raw);
  if (token == "null") return Value::Null();
  switch (type) {
    case ValueType::kInt64: {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(token.c_str(), &end, 10);
      if (errno != 0 || end == token.c_str() || *end != '\0') {
        return Status::InvalidArgument("bad int64: '" + token + "'");
      }
      return Value(static_cast<int64_t>(v));
    }
    case ValueType::kFloat64: {
      errno = 0;
      char* end = nullptr;
      const double v = std::strtod(token.c_str(), &end);
      if (errno != 0 || end == token.c_str() || *end != '\0') {
        return Status::InvalidArgument("bad float64: '" + token + "'");
      }
      return Value(v);
    }
    case ValueType::kString: {
      PJOIN_ASSIGN_OR_RETURN(std::string s, UnescapeString(token));
      return Value(std::move(s));
    }
    case ValueType::kNull:
      break;
  }
  return Status::InvalidArgument("cannot parse value of null type");
}

std::string FormatValue(const Value& value) {
  switch (value.type()) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInt64:
      return std::to_string(value.AsInt64());
    case ValueType::kFloat64: {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", value.AsFloat64());
      return buf;
    }
    case ValueType::kString:
      return EscapeString(value.AsString());
  }
  return "null";
}

Result<Pattern> ParsePattern(const std::string& raw, ValueType type) {
  const std::string token = Trim(raw);
  if (token == "*") return Pattern::Wildcard();
  if (token == "()") return Pattern::Empty();
  if (token.size() >= 2 && token.front() == '[' && token.back() == ']') {
    const std::string body = token.substr(1, token.size() - 2);
    const size_t dots = body.find("..");
    if (dots == std::string::npos) {
      return Status::InvalidArgument("range needs 'lo..hi': " + token);
    }
    PJOIN_ASSIGN_OR_RETURN(Value lo, ParseValue(body.substr(0, dots), type));
    PJOIN_ASSIGN_OR_RETURN(Value hi, ParseValue(body.substr(dots + 2), type));
    return Pattern::Range(std::move(lo), std::move(hi));
  }
  if (token.size() >= 2 && token.front() == '{' && token.back() == '}') {
    std::vector<Value> members;
    for (const std::string& part :
         SplitTopLevel(token.substr(1, token.size() - 2), '|')) {
      PJOIN_ASSIGN_OR_RETURN(Value v, ParseValue(part, type));
      members.push_back(std::move(v));
    }
    return Pattern::EnumList(std::move(members));
  }
  PJOIN_ASSIGN_OR_RETURN(Value v, ParseValue(token, type));
  return Pattern::Constant(std::move(v));
}

std::string FormatPattern(const Pattern& pattern) {
  switch (pattern.kind()) {
    case PatternKind::kWildcard:
      return "*";
    case PatternKind::kEmpty:
      return "()";
    case PatternKind::kConstant:
      return FormatValue(pattern.constant());
    case PatternKind::kRange:
      return "[" + FormatValue(pattern.lo()) + ".." +
             FormatValue(pattern.hi()) + "]";
    case PatternKind::kEnumList: {
      std::string out = "{";
      for (size_t i = 0; i < pattern.members().size(); ++i) {
        if (i > 0) out += "|";
        out += FormatValue(pattern.members()[i]);
      }
      return out + "}";
    }
  }
  return "*";
}

Result<Tuple> ParseTupleBody(const std::string& body,
                             const SchemaPtr& schema) {
  std::vector<std::string> parts = SplitTopLevel(body, ',');
  if (parts.size() != schema->num_fields()) {
    return Status::InvalidArgument(
        "tuple has " + std::to_string(parts.size()) + " values, schema has " +
        std::to_string(schema->num_fields()));
  }
  std::vector<Value> values;
  values.reserve(parts.size());
  for (size_t i = 0; i < parts.size(); ++i) {
    PJOIN_ASSIGN_OR_RETURN(Value v,
                           ParseValue(parts[i], schema->field(i).type));
    values.push_back(std::move(v));
  }
  return Tuple(schema, std::move(values));
}

std::string FormatTupleBody(const Tuple& tuple) {
  std::string out;
  for (size_t i = 0; i < tuple.num_fields(); ++i) {
    if (i > 0) out += ",";
    out += FormatValue(tuple.field(i));
  }
  return out;
}

Result<Punctuation> ParsePunctuationBody(const std::string& body,
                                         const Schema& schema) {
  std::vector<std::string> parts = SplitTopLevel(body, ',');
  if (parts.size() != schema.num_fields()) {
    return Status::InvalidArgument(
        "punctuation has " + std::to_string(parts.size()) +
        " patterns, schema has " + std::to_string(schema.num_fields()));
  }
  std::vector<Pattern> patterns;
  patterns.reserve(parts.size());
  for (size_t i = 0; i < parts.size(); ++i) {
    PJOIN_ASSIGN_OR_RETURN(Pattern p,
                           ParsePattern(parts[i], schema.field(i).type));
    patterns.push_back(std::move(p));
  }
  return Punctuation(std::move(patterns));
}

std::string FormatPunctuationBody(const Punctuation& punct) {
  std::string out;
  for (size_t i = 0; i < punct.num_patterns(); ++i) {
    if (i > 0) out += ",";
    out += FormatPattern(punct.pattern(i));
  }
  return out;
}

Result<std::vector<StreamElement>> ParseStreamText(const std::string& text,
                                                   const SchemaPtr& schema) {
  std::vector<StreamElement> elements;
  std::istringstream in(text);
  std::string line;
  int64_t seq = 0;
  int lineno = 0;
  TimeMicros last_arrival = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    std::istringstream ls(trimmed);
    std::string kind;
    long long arrival = 0;
    if (!(ls >> kind >> arrival)) {
      return Status::InvalidArgument("line " + std::to_string(lineno) +
                                     ": expected '<t|p> <arrival> <body>'");
    }
    std::string body;
    std::getline(ls, body);
    body = Trim(body);
    last_arrival = std::max<TimeMicros>(last_arrival, arrival);
    if (kind == "t") {
      PJOIN_ASSIGN_OR_RETURN(Tuple t, ParseTupleBody(body, schema));
      elements.push_back(StreamElement::MakeTuple(std::move(t), arrival,
                                                  seq++));
    } else if (kind == "p") {
      PJOIN_ASSIGN_OR_RETURN(Punctuation p,
                             ParsePunctuationBody(body, *schema));
      elements.push_back(
          StreamElement::MakePunctuation(std::move(p), arrival, seq++));
    } else {
      return Status::InvalidArgument("line " + std::to_string(lineno) +
                                     ": unknown element kind '" + kind + "'");
    }
  }
  elements.push_back(StreamElement::MakeEndOfStream(last_arrival, seq++));
  return elements;
}

std::string FormatStreamText(const std::vector<StreamElement>& elements) {
  std::ostringstream os;
  for (const StreamElement& e : elements) {
    switch (e.kind()) {
      case ElementKind::kTuple:
        os << "t " << e.arrival() << " " << FormatTupleBody(e.tuple())
           << "\n";
        break;
      case ElementKind::kPunctuation:
        os << "p " << e.arrival() << " "
           << FormatPunctuationBody(e.punctuation()) << "\n";
        break;
      case ElementKind::kEndOfStream:
        break;  // implicit
    }
  }
  return os.str();
}

Result<std::vector<StreamElement>> ReadStreamFile(const std::string& path,
                                                  const SchemaPtr& schema) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IOError("cannot open '" + path +
                           "': " + std::strerror(errno));
  }
  std::string text;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) text.append(buf, n);
  std::fclose(f);
  return ParseStreamText(text, schema);
}

Status WriteStreamFile(const std::string& path,
                       const std::vector<StreamElement>& elements) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("cannot open '" + path +
                           "': " + std::strerror(errno));
  }
  const std::string text = FormatStreamText(elements);
  const size_t written = std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  if (written != text.size()) return Status::IOError("short write");
  return Status::OK();
}

}  // namespace pjoin
