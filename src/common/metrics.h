// Lightweight metrics: named counters, time-series recording, and a fixed
// bucket histogram. These back both the test assertions ("purge ran N times")
// and the figure-reproduction benches (state size over time).

#ifndef PJOIN_COMMON_METRICS_H_
#define PJOIN_COMMON_METRICS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace pjoin {

/// A (time, value) sample of a gauge such as join-state size.
struct Sample {
  TimeMicros time;
  int64_t value;
};

/// Records samples of one gauge over (virtual or wall) time, optionally
/// thinned to at most one sample per `min_interval` of time.
class TimeSeries {
 public:
  /// `min_interval` == 0 records every sample.
  explicit TimeSeries(TimeMicros min_interval = 0)
      : min_interval_(min_interval) {}

  /// Appends a sample unless it falls inside the thinning interval, in which
  /// case it is held as the pending tail (replacing any previous one) until
  /// a sample clears the interval or Flush() is called.
  void Record(TimeMicros time, int64_t value);

  /// Appends the pending thinned sample, if any. Call when the stream ends:
  /// without it the series' final value is whatever sample last cleared the
  /// thinning interval, and LastValue()/Resample() misreport the end state.
  void Flush();

  const std::vector<Sample>& samples() const { return samples_; }
  bool empty() const { return samples_.empty(); }

  int64_t MaxValue() const;
  double MeanValue() const;
  int64_t LastValue() const;

  /// Re-buckets the series onto a uniform grid of `buckets` intervals over
  /// [0, horizon], carrying the last value forward; useful for printing
  /// figure rows of equal length.
  std::vector<Sample> Resample(TimeMicros horizon, int buckets) const;

 private:
  TimeMicros min_interval_;
  std::vector<Sample> samples_;
  Sample pending_{0, 0};  // newest thinned sample, valid iff has_pending_
  bool has_pending_ = false;
};

/// A histogram over int64 values with power-of-two bucket bounds.
class Histogram {
 public:
  Histogram();

  void Add(int64_t value);

  int64_t count() const { return count_; }
  int64_t min() const { return min_; }
  int64_t max() const { return max_; }
  double mean() const;
  /// Approximate quantile (q in [0,1]) from bucket interpolation.
  int64_t Percentile(double q) const;

  std::string ToString() const;

 private:
  static constexpr int kNumBuckets = 64;
  static int BucketFor(int64_t value);

  int64_t buckets_[kNumBuckets];
  int64_t count_;
  int64_t sum_;
  int64_t min_;
  int64_t max_;
};

/// A named bag of counters; operators expose one of these for inspection.
class CounterSet {
 public:
  /// Adds `delta` to counter `name`, creating it at zero if absent.
  void Add(const std::string& name, int64_t delta = 1);
  /// Value of counter `name`; 0 if never touched.
  int64_t Get(const std::string& name) const;
  /// Adds every counter of `other` into this set.
  void Merge(const CounterSet& other);
  void Reset();

  const std::map<std::string, int64_t>& counters() const { return counters_; }
  std::string ToString() const;

 private:
  std::map<std::string, int64_t> counters_;
};

/// A CounterSet shared across pipeline threads (fault decorators, shard
/// workers): every operation takes the internal mutex, and reads hand out
/// snapshots by value, never references into guarded state.
class SharedCounterSet {
 public:
  /// Adds `delta` to counter `name`, creating it at zero if absent.
  void Add(const std::string& name, int64_t delta = 1) EXCLUDES(mu_);
  /// Value of counter `name`; 0 if never touched.
  [[nodiscard]] int64_t Get(const std::string& name) const EXCLUDES(mu_);
  /// Adds every counter of `other` into this set.
  void Merge(const CounterSet& other) EXCLUDES(mu_);
  /// Consistent copy of the full set.
  [[nodiscard]] CounterSet Snapshot() const EXCLUDES(mu_);

 private:
  // tests/thread_safety_negative.cc probes the GUARDED_BY annotations.
  friend class ThreadSafetyNegativeProbe;

  mutable Mutex mu_;
  CounterSet counters_ GUARDED_BY(mu_);
};

}  // namespace pjoin

#endif  // PJOIN_COMMON_METRICS_H_
