#include "common/status.h"

namespace pjoin {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

}  // namespace pjoin
