// Result<T>: a value or a Status, in the style of arrow::Result.

#ifndef PJOIN_COMMON_RESULT_H_
#define PJOIN_COMMON_RESULT_H_

#include <utility>
#include <variant>

#include "common/macros.h"
#include "common/status.h"

namespace pjoin {

/// Holds either a successfully produced T or the Status explaining why the
/// value could not be produced. Accessing the value of a failed Result aborts.
///
/// [[nodiscard]]: discarding a Result drops both the value and the error.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value: `return MakeThing();`.
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from error status: `return Status::IOError(...);`.
  Result(Status status)  // NOLINT(runtime/explicit)
      : payload_(std::move(status)) {
    PJOIN_DCHECK(!std::get<Status>(payload_).ok());
  }

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(payload_); }

  /// The error status; OK when the Result holds a value.
  [[nodiscard]] Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(payload_);
  }

  const T& value() const& {
    PJOIN_DCHECK(ok());
    return std::get<T>(payload_);
  }
  T& value() & {
    PJOIN_DCHECK(ok());
    return std::get<T>(payload_);
  }
  T&& value() && {
    PJOIN_DCHECK(ok());
    return std::get<T>(std::move(payload_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this Result holds an error.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(payload_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> payload_;
};

/// Propagates the error of a Result-producing expression, otherwise assigns
/// the contained value to `lhs`.
#define PJOIN_RESULT_CONCAT_INNER_(a, b) a##b
#define PJOIN_RESULT_CONCAT_(a, b) PJOIN_RESULT_CONCAT_INNER_(a, b)
#define PJOIN_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto&& tmp = (expr);                               \
  if (!tmp.ok()) {                                   \
    return tmp.status();                             \
  }                                                  \
  lhs = std::move(tmp).value()
#define PJOIN_ASSIGN_OR_RETURN(lhs, expr) \
  PJOIN_ASSIGN_OR_RETURN_IMPL_(           \
      PJOIN_RESULT_CONCAT_(_pjoin_res_, __LINE__), lhs, expr)

}  // namespace pjoin

#endif  // PJOIN_COMMON_RESULT_H_
