// Clang thread-safety analysis annotations (docs/STATIC_ANALYSIS.md).
//
// These macros attach compile-time lock-discipline contracts to mutexes,
// the data they guard, and the functions that acquire them. Under Clang
// with -Wthread-safety the compiler rejects any access to a GUARDED_BY
// member without its mutex held and any call to a REQUIRES function
// outside the declared critical section; under every other compiler the
// macros expand to nothing.
//
// The project convention (enforced by tools/lint_check.py):
//   - every mutex-protected member carries GUARDED_BY(mu_);
//   - helpers that assume the lock are suffixed ...Locked() and carry
//     REQUIRES(mu_);
//   - public entry points that take the lock themselves carry
//     EXCLUDES(mu_) so the analysis rejects re-entrant acquisition;
//   - locks are only ever held through RAII (MutexLock, common/mutex.h).

#ifndef PJOIN_COMMON_THREAD_ANNOTATIONS_H_
#define PJOIN_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && !defined(SWIG)
#define PJOIN_THREAD_ANNOTATION_ATTRIBUTE_(x) __attribute__((x))
#else
#define PJOIN_THREAD_ANNOTATION_ATTRIBUTE_(x)  // no-op
#endif

/// Declares a class to be a lockable capability ("mutex").
#define CAPABILITY(x) PJOIN_THREAD_ANNOTATION_ATTRIBUTE_(capability(x))

/// Declares an RAII class whose lifetime equals a critical section.
#define SCOPED_CAPABILITY PJOIN_THREAD_ANNOTATION_ATTRIBUTE_(scoped_lockable)

/// Data member readable/writable only with the given mutex held.
#define GUARDED_BY(x) PJOIN_THREAD_ANNOTATION_ATTRIBUTE_(guarded_by(x))

/// Pointer member whose *pointee* is guarded by the given mutex.
#define PT_GUARDED_BY(x) PJOIN_THREAD_ANNOTATION_ATTRIBUTE_(pt_guarded_by(x))

/// Function that must be called with the given mutex(es) held exclusively.
#define REQUIRES(...) \
  PJOIN_THREAD_ANNOTATION_ATTRIBUTE_(requires_capability(__VA_ARGS__))

/// Function that must be called with the given mutex(es) held shared.
#define REQUIRES_SHARED(...) \
  PJOIN_THREAD_ANNOTATION_ATTRIBUTE_(requires_shared_capability(__VA_ARGS__))

/// Function that acquires the given mutex(es) and returns holding them.
#define ACQUIRE(...) \
  PJOIN_THREAD_ANNOTATION_ATTRIBUTE_(acquire_capability(__VA_ARGS__))

/// Function that releases the given mutex(es).
#define RELEASE(...) \
  PJOIN_THREAD_ANNOTATION_ATTRIBUTE_(release_capability(__VA_ARGS__))

/// Function that acquires the mutex only when it returns `ret`.
#define TRY_ACQUIRE(ret, ...) \
  PJOIN_THREAD_ANNOTATION_ATTRIBUTE_(try_acquire_capability(ret, __VA_ARGS__))

/// Function that must be called with the given mutex(es) NOT held (the
/// caller-side deadlock guard for functions that lock internally).
#define EXCLUDES(...) \
  PJOIN_THREAD_ANNOTATION_ATTRIBUTE_(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the calling thread holds the mutex.
#define ASSERT_CAPABILITY(x) \
  PJOIN_THREAD_ANNOTATION_ATTRIBUTE_(assert_capability(x))

/// Function returning a reference to the given mutex.
#define RETURN_CAPABILITY(x) PJOIN_THREAD_ANNOTATION_ATTRIBUTE_(lock_returned(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment justifying why the discipline cannot be expressed.
#define NO_THREAD_SAFETY_ANALYSIS \
  PJOIN_THREAD_ANNOTATION_ATTRIBUTE_(no_thread_safety_analysis)

#endif  // PJOIN_COMMON_THREAD_ANNOTATIONS_H_
