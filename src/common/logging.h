// Minimal leveled logger. Not a general-purpose logging framework: just
// enough to trace operator decisions in examples and debug runs.

#ifndef PJOIN_COMMON_LOGGING_H_
#define PJOIN_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace pjoin {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log-level threshold; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Streams a single log record and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define PJOIN_LOG(level)                                              \
  if (::pjoin::LogLevel::level < ::pjoin::GetLogLevel()) {            \
  } else                                                              \
    ::pjoin::internal::LogMessage(::pjoin::LogLevel::level, __FILE__, \
                                  __LINE__)

}  // namespace pjoin

#endif  // PJOIN_COMMON_LOGGING_H_
