// Deterministic pseudo-random number generation (xoshiro256**).
//
// Every generator in the benchmark system takes an explicit seed so that all
// experiments are exactly reproducible run to run.

#ifndef PJOIN_COMMON_RNG_H_
#define PJOIN_COMMON_RNG_H_

#include <cmath>
#include <cstdint>

#include "common/macros.h"

namespace pjoin {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference
/// implementation), seeded through splitmix64.
class Rng {
 public:
  /// Seeds the generator; the same seed always yields the same sequence.
  explicit Rng(uint64_t seed) {
    uint64_t x = seed;
    for (auto& word : state_) {
      // splitmix64 step.
      x += 0x9E3779B97f4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) {
    PJOIN_DCHECK(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const uint64_t threshold = (~bound + 1) % bound;  // == 2^64 mod bound
    for (;;) {
      const uint64_t r = NextU64();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in the closed interval [lo, hi].
  int64_t NextInt(int64_t lo, int64_t hi) {
    PJOIN_DCHECK(lo <= hi);
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(span == 0 ? NextU64() : NextBounded(span));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Exponentially distributed value with the given mean (inter-arrival
  /// times of a Poisson process).
  double NextExponential(double mean) {
    PJOIN_DCHECK(mean > 0.0);
    double u = NextDouble();
    // Guard against log(0).
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
  }

  /// Bernoulli trial with success probability p.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace pjoin

#endif  // PJOIN_COMMON_RNG_H_
