#include "common/logging.h"

#include <atomic>
#include <cstdio>

#include "common/mutex.h"

namespace pjoin {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

// Serializes writes so concurrent components do not interleave records.
Mutex& LogMutex() {
  static Mutex* m = new Mutex();
  return *m;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelTag(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  MutexLock lock(LogMutex());
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

}  // namespace internal
}  // namespace pjoin
