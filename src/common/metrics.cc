#include "common/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "common/macros.h"
#include "common/mutex.h"

namespace pjoin {

void TimeSeries::Record(TimeMicros time, int64_t value) {
  if (min_interval_ > 0 && !samples_.empty() &&
      time - samples_.back().time < min_interval_) {
    pending_ = Sample{time, value};
    has_pending_ = true;
    return;
  }
  samples_.push_back(Sample{time, value});
  has_pending_ = false;
}

void TimeSeries::Flush() {
  if (!has_pending_) return;
  samples_.push_back(pending_);
  has_pending_ = false;
}

int64_t TimeSeries::MaxValue() const {
  int64_t best = std::numeric_limits<int64_t>::min();
  for (const auto& s : samples_) best = std::max(best, s.value);
  return samples_.empty() ? 0 : best;
}

double TimeSeries::MeanValue() const {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& s : samples_) sum += static_cast<double>(s.value);
  return sum / static_cast<double>(samples_.size());
}

int64_t TimeSeries::LastValue() const {
  return samples_.empty() ? 0 : samples_.back().value;
}

std::vector<Sample> TimeSeries::Resample(TimeMicros horizon,
                                         int buckets) const {
  PJOIN_DCHECK(buckets > 0);
  PJOIN_DCHECK(horizon > 0);
  std::vector<Sample> out;
  out.reserve(static_cast<size_t>(buckets));
  size_t idx = 0;
  int64_t last = 0;
  for (int b = 1; b <= buckets; ++b) {
    const TimeMicros t = horizon * b / buckets;
    while (idx < samples_.size() && samples_[idx].time <= t) {
      last = samples_[idx].value;
      ++idx;
    }
    out.push_back(Sample{t, last});
  }
  return out;
}

Histogram::Histogram()
    : buckets_{},
      count_(0),
      sum_(0),
      min_(std::numeric_limits<int64_t>::max()),
      max_(std::numeric_limits<int64_t>::min()) {}

int Histogram::BucketFor(int64_t value) {
  if (value <= 0) return 0;
  int b = 1;
  uint64_t v = static_cast<uint64_t>(value);
  while (v >>= 1) ++b;
  return std::min(b, kNumBuckets - 1);
}

void Histogram::Add(int64_t value) {
  ++buckets_[BucketFor(value)];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

double Histogram::mean() const {
  return count_ == 0 ? 0.0
                     : static_cast<double>(sum_) / static_cast<double>(count_);
}

int64_t Histogram::Percentile(double q) const {
  if (count_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  if (q >= 1.0) return max_;
  const double target = q * static_cast<double>(count_);
  int64_t seen = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    const int64_t n = buckets_[b];
    if (n == 0) continue;
    if (static_cast<double>(seen) + static_cast<double>(n) > target) {
      if (b == 0) return 0;  // bucket 0 holds values <= 0
      // Interpolate within bucket b's range [2^(b-1), 2^b - 1] by the
      // quantile's position among the bucket's n values, then clamp to the
      // observed [min_, max_] so sparse tail buckets cannot report a value
      // the histogram never saw.
      const double lo = std::ldexp(1.0, b - 1);
      const double hi = std::ldexp(1.0, b) - 1.0;
      const double frac = (target - static_cast<double>(seen)) /
                          static_cast<double>(n);
      double value = lo + frac * (hi - lo);
      value = std::min(value, static_cast<double>(max_));
      value = std::max(value, static_cast<double>(min_));
      return static_cast<int64_t>(std::llround(value));
    }
    seen += n;
  }
  return max_;
}

std::string Histogram::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "count=%lld mean=%.1f min=%lld p50=%lld p95=%lld max=%lld",
                static_cast<long long>(count_), mean(),
                static_cast<long long>(count_ == 0 ? 0 : min_),
                static_cast<long long>(Percentile(0.5)),
                static_cast<long long>(Percentile(0.95)),
                static_cast<long long>(count_ == 0 ? 0 : max_));
  return std::string(buf);
}

void CounterSet::Add(const std::string& name, int64_t delta) {
  counters_[name] += delta;
}

int64_t CounterSet::Get(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void CounterSet::Merge(const CounterSet& other) {
  for (const auto& [name, value] : other.counters_) counters_[name] += value;
}

void CounterSet::Reset() { counters_.clear(); }

std::string CounterSet::ToString() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& [name, value] : counters_) {
    if (!first) os << " ";
    first = false;
    os << name << "=" << value;
  }
  return os.str();
}

void SharedCounterSet::Add(const std::string& name, int64_t delta) {
  MutexLock lock(mu_);
  counters_.Add(name, delta);
}

int64_t SharedCounterSet::Get(const std::string& name) const {
  MutexLock lock(mu_);
  return counters_.Get(name);
}

void SharedCounterSet::Merge(const CounterSet& other) {
  MutexLock lock(mu_);
  counters_.Merge(other);
}

CounterSet SharedCounterSet::Snapshot() const {
  MutexLock lock(mu_);
  return counters_;
}

}  // namespace pjoin
