// Status: exception-free error signalling, in the style of RocksDB / Arrow.

#ifndef PJOIN_COMMON_STATUS_H_
#define PJOIN_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace pjoin {

/// Coarse error classification for a failed operation.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kResourceExhausted,
  kFailedPrecondition,
  kIOError,
  kUnsupported,
  kInternal,
};

/// Human-readable name of a status code ("OK", "InvalidArgument", ...).
std::string_view StatusCodeName(StatusCode code);

/// Result of a fallible operation. Cheap to copy in the OK case (no
/// allocation); carries a message otherwise.
///
/// [[nodiscard]]: a dropped Status is a swallowed error. Call sites that
/// genuinely cannot act must check ok() and log or DCHECK — `(void)` casts
/// are rejected by tools/lint_check.py.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

bool operator==(const Status& a, const Status& b);

}  // namespace pjoin

#endif  // PJOIN_COMMON_STATUS_H_
