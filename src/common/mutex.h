// Annotated mutex primitives (docs/STATIC_ANALYSIS.md).
//
// libstdc++'s std::mutex / std::lock_guard carry no thread-safety
// attributes, so Clang's -Wthread-safety analysis cannot see through them.
// These thin wrappers add the capability annotations while delegating all
// actual locking to the standard library:
//
//   Mutex      — a std::mutex declared as a CAPABILITY; GUARDED_BY(mu_)
//                members and REQUIRES(mu_) methods reference it.
//   MutexLock  — the only sanctioned way to hold a Mutex (RAII,
//                SCOPED_CAPABILITY). Manual Lock()/Unlock() calls are
//                rejected by tools/lint_check.py.
//   CondVar    — condition variable usable under a held MutexLock; Wait
//                and WaitUntil declare REQUIRES(mu) so a wait outside the
//                critical section is a compile error under Clang.
//
// All operations are no-overhead relative to the raw std types (the
// attributes vanish at codegen; CondVar adopts/releases the already-held
// native handle without touching the lock word).

#ifndef PJOIN_COMMON_MUTEX_H_
#define PJOIN_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/macros.h"
#include "common/thread_annotations.h"

namespace pjoin {

class CondVar;

/// A std::mutex the thread-safety analysis can reason about.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  PJOIN_DISALLOW_COPY_AND_MOVE(Mutex);

  /// Prefer MutexLock; direct Lock/Unlock exists for the RAII guard and
  /// the rare adopt/release dance only (lint-enforced).
  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII critical section over a Mutex; the lifetime *is* the lock scope.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }
  PJOIN_DISALLOW_COPY_AND_MOVE(MutexLock);

 private:
  Mutex& mu_;
};

/// Condition variable bound to a Mutex held through MutexLock. Waits must
/// sit in a predicate loop, as with std::condition_variable:
///
///   MutexLock lock(mu_);
///   while (!PredicateLocked()) cv_.Wait(mu_);
class CondVar {
 public:
  CondVar() = default;
  PJOIN_DISALLOW_COPY_AND_MOVE(CondVar);

  /// Atomically releases `mu`, blocks, and re-acquires before returning.
  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();  // the caller's MutexLock still owns the mutex
  }

  /// Timed Wait; returns true when `deadline` passed without a notify.
  bool WaitUntil(Mutex& mu, std::chrono::steady_clock::time_point deadline)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(native, deadline);
    native.release();
    return status == std::cv_status::timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace pjoin

#endif  // PJOIN_COMMON_MUTEX_H_
