// SpscRing: a bounded lock-free single-producer/single-consumer ring of
// batches — the transport of the parallel pipeline's dataflow spine
// (producer→router, router→shard, shard→merger edges; see
// docs/PERFORMANCE.md "The lock-free spine").
//
// The fast path is the relaxed-atomics idiom proven by obs::TraceRing: the
// producer owns `tail_`, the consumer owns `head_`, both are monotone
// uint64 counters, and each side caches the other's counter so the common
// case is one plain load, one slot move, and one release store — no lock,
// no RMW on the critical indices, no cache-line ping-pong until the ring is
// actually full/empty.
//
// The slow path is spin-then-park: a bounded spin, then a futex-style wait
// on an eventcount (`std::atomic::wait`/`notify_one`, C++20). Eventcounts
// make the sleep race-free without Dekker fences in the fast path: the
// waiter loads the sequence word, re-checks the ring state, and only then
// waits on the loaded value; the other side publishes its ring update
// *before* bumping the sequence word, so either the re-check sees the
// update or the wait returns immediately on the bumped value. notify_one on
// an uncontended word is a plain load in libstdc++ (it checks the proxy
// waiter count first), so the per-push cost with no sleeper is one
// fetch_add + one load.
//
// The ring is templated on an atomics policy so the same protocol code can
// be model-checked: production uses RawAtomicsPolicy (below), which
// compiles to plain std::atomic with zero overhead; tests/model_check_test
// instantiates SpscRing<T, mc::ModelPolicy> (src/check/model_atomic.h),
// which routes every atomic op through a virtual scheduler and explores
// all interleavings up to a preemption bound (docs/STATIC_ANALYSIS.md
// "Model checking"). Protocol fixes belong here, once — both variants are
// the same code.
//
// This header is the sanctioned home (with obs/trace.*) for explicit
// std::memory_order arguments; everywhere else the lint rule
// `raw-atomic-ordering` (tools/lint_check.py) keeps atomics on the
// sequentially-consistent defaults.

#ifndef PJOIN_COMMON_SPSC_RING_H_
#define PJOIN_COMMON_SPSC_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

#include "common/macros.h"

// Mutation self-test hook (ISSUE 8): -DPJOIN_MC_MUTATE weakens the
// producer's tail publish to relaxed, severing the happens-before edge
// that covers the slot write. The model checker MUST report the resulting
// data race (tests/model_check_test.cc SpscRingModel suite); CI builds this
// configuration and fails if the checker stays green. Never define it in a
// production build.
#ifdef PJOIN_MC_MUTATE
#define PJOIN_SPSC_PUBLISH_ORDER std::memory_order_relaxed
#else
#define PJOIN_SPSC_PUBLISH_ORDER std::memory_order_release
#endif

namespace pjoin {

/// Production atomics policy: plain std::atomic, plain slots, real yields.
/// SpscRing<T> == SpscRing<T, RawAtomicsPolicy> compiles to exactly the
/// pre-policy code (the Cell wrapper is a transparent struct-of-one).
struct RawAtomicsPolicy {
  template <typename U>
  using Atomic = std::atomic<U>;

  /// Non-atomic payload slot. The model policy's counterpart race-checks
  /// these accesses; here they are a move assignment and a move-out.
  template <typename U>
  struct Cell {
    U value{};
    void Store(U&& v) { value = std::move(v); }
    void MoveTo(U* out) { *out = std::move(value); }
  };

  static void Yield() { std::this_thread::yield(); }

  // Bounded spin before parking: a handful of hot re-checks, then a few
  // yields. Parking quickly matters more than spinning long — the
  // throughput case never reaches this path, and on few-core hosts a
  // spinning thread is stealing the cycles its peer needs to make progress.
  static constexpr int kBusySpins = 32;
  static constexpr int kSpinIters = 48;
};

template <typename T, typename Policy = RawAtomicsPolicy>
class SpscRing {
 public:
  /// Capacity is rounded up to the next power of two, minimum 2.
  explicit SpscRing(size_t min_capacity) {
    size_t cap = 2;
    while (cap < min_capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }
  PJOIN_DISALLOW_COPY_AND_MOVE(SpscRing);

  /// True iff `n` is usable as an exact capacity: a power of two >= 1.
  /// constexpr so callers can static_assert their configured sizes.
  static constexpr bool IsValidExactCapacity(size_t n) {
    return n >= 1 && (n & (n - 1)) == 0;
  }

  /// Exact-capacity construction, compile-time checked. Unlike the rounding
  /// constructor this admits capacity 1 (the tightest park/unpark window —
  /// every push/pop pair crosses the full/empty boundary).
  template <size_t N>
  static SpscRing WithCapacity() {
    static_assert(IsValidExactCapacity(N),
                  "SpscRing capacity must be a power of two >= 1");
    return SpscRing(ExactTag{}, N);
  }

  /// Runtime exact-capacity construction; dies on 0 or non-power-of-two
  /// instead of silently rounding.
  static SpscRing WithExactCapacity(size_t n) {
    PJOIN_DCHECK(IsValidExactCapacity(n));
    return SpscRing(ExactTag{}, n);
  }

  size_t capacity() const { return slots_.size(); }

  /// Producer only. Moves `item` in and returns true, or returns false
  /// (item untouched) when the ring is full.
  bool TryPush(T&& item) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail - cached_head_ >= slots_.size()) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail - cached_head_ >= slots_.size()) return false;
    }
    slots_[tail & mask_].Store(std::move(item));
    tail_.store(tail + 1, PJOIN_SPSC_PUBLISH_ORDER);
    // Publish-then-bump: a consumer that re-checked emptiness after loading
    // data_seq_ either sees the new tail or sees the bump and skips the
    // sleep. notify_one is cheap when nobody waits.
    data_seq_.fetch_add(1, std::memory_order_release);
    data_seq_.notify_one();
    return true;
  }

  /// Producer only. Blocks (bounded spin, then park) until the push
  /// succeeds. Must not be called after Close().
  void PushBlocking(T&& item) {
    if (TryPush(std::move(item))) return;
    for (int spin = 0; spin < Policy::kSpinIters; ++spin) {
      if (spin >= Policy::kBusySpins) Policy::Yield();
      if (TryPush(std::move(item))) return;
    }
    while (true) {
      const uint32_t seq = space_seq_.load(std::memory_order_acquire);
      if (TryPush(std::move(item))) return;
      producer_parks_.fetch_add(1, std::memory_order_relaxed);
      space_seq_.wait(seq, std::memory_order_acquire);
    }
  }

  /// Consumer only. Moves the oldest item into `*out` and returns true, or
  /// returns false when the ring is empty.
  bool TryPop(T* out) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    if (head == cached_tail_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head == cached_tail_) return false;
    }
    slots_[head & mask_].MoveTo(out);
    head_.store(head + 1, std::memory_order_release);
    space_seq_.fetch_add(1, std::memory_order_release);
    space_seq_.notify_one();
    return true;
  }

  /// Consumer only. Returns once the ring is (probably) non-empty or
  /// closed: bounded spin, then park until the producer pushes or closes.
  /// The caller still pops via TryPop — a wake is a hint, not a handoff.
  void WaitForData() {
    for (int spin = 0; spin < Policy::kSpinIters; ++spin) {
      if (!Empty() || closed_.load(std::memory_order_acquire)) return;
      if (spin >= Policy::kBusySpins) Policy::Yield();
    }
    const uint32_t seq = data_seq_.load(std::memory_order_acquire);
    if (!Empty() || closed_.load(std::memory_order_acquire)) return;
    consumer_parks_.fetch_add(1, std::memory_order_relaxed);
    data_seq_.wait(seq, std::memory_order_acquire);
  }

  /// Consumer only. Blocking pop: false only when the ring is exhausted
  /// (closed and drained).
  bool PopBlocking(T* out) {
    while (true) {
      if (TryPop(out)) return true;
      if (exhausted()) return false;
      WaitForData();
    }
  }

  /// Producer only (or the producer's owner, after the producer is done).
  /// Marks the end of the stream and wakes both sides.
  void Close() {
    closed_.store(true, std::memory_order_release);
    data_seq_.fetch_add(1, std::memory_order_release);
    space_seq_.fetch_add(1, std::memory_order_release);
    data_seq_.notify_all();
    space_seq_.notify_all();
  }

  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// Consumer only: closed and fully drained. (The acquire load on
  /// `closed_` orders after the producer's final tail store, so a true
  /// result means no more items can appear.)
  bool exhausted() const {
    return closed_.load(std::memory_order_acquire) && Empty();
  }

  /// Approximate occupancy, safe from any thread (the two loads are not a
  /// consistent snapshot; the result may briefly overshoot).
  size_t size() const {
    const uint64_t head = head_.load(std::memory_order_acquire);
    const uint64_t tail = tail_.load(std::memory_order_acquire);
    return tail >= head ? static_cast<size_t>(tail - head) : 0;
  }

  /// Times the producer parked on a full ring / the consumer parked on an
  /// empty one (slow-path entries, not wall time).
  int64_t producer_parks() const {
    return producer_parks_.load(std::memory_order_relaxed);
  }
  int64_t consumer_parks() const {
    return consumer_parks_.load(std::memory_order_relaxed);
  }

 private:
  struct ExactTag {};
  SpscRing(ExactTag, size_t cap) {
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  template <typename U>
  using Atomic = typename Policy::template Atomic<U>;
  using Slot = typename Policy::template Cell<T>;

  bool Empty() const {
    return head_.load(std::memory_order_relaxed) ==
           tail_.load(std::memory_order_acquire);
  }

  std::vector<Slot> slots_;
  size_t mask_ = 0;

  // Consumer-owned index + its cache of the producer's index. Plain (not
  // atomic) cache: only the consumer touches it. The alignas keeps the two
  // sides' counters off each other's cache line.
  alignas(64) Atomic<uint64_t> head_{0};
  uint64_t cached_tail_ = 0;
  // Producer-owned index + its cache of the consumer's index.
  alignas(64) Atomic<uint64_t> tail_{0};
  uint64_t cached_head_ = 0;

  // Eventcounts for the park paths: bumped on every push (data_seq_) / pop
  // (space_seq_) and on Close.
  Atomic<uint32_t> data_seq_{0};
  Atomic<uint32_t> space_seq_{0};

  Atomic<bool> closed_{false};
  Atomic<int64_t> producer_parks_{0};
  Atomic<int64_t> consumer_parks_{0};
};

}  // namespace pjoin

#endif  // PJOIN_COMMON_SPSC_RING_H_
