// Small utility macros shared across the library.

#ifndef PJOIN_COMMON_MACROS_H_
#define PJOIN_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

/// Marks a class as non-copyable and non-movable.
#define PJOIN_DISALLOW_COPY_AND_MOVE(ClassName)        \
  ClassName(const ClassName&) = delete;                \
  ClassName& operator=(const ClassName&) = delete;     \
  ClassName(ClassName&&) = delete;                     \
  ClassName& operator=(ClassName&&) = delete

/// Internal invariant check. Always on: the library is not hot enough for the
/// checks to matter and silent corruption in a join state is far worse.
#define PJOIN_DCHECK(cond)                                                   \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "PJOIN_DCHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

/// Propagates a non-ok Status out of the current function.
#define PJOIN_RETURN_NOT_OK(expr)              \
  do {                                         \
    ::pjoin::Status _st = (expr);              \
    if (!_st.ok()) return _st;                 \
  } while (0)

#endif  // PJOIN_COMMON_MACROS_H_
