#include "common/clock.h"

#include <chrono>

namespace pjoin {

void VirtualClock::AdvanceTo(TimeMicros t) {
  PJOIN_DCHECK(t >= now_);
  now_ = t;
}

void VirtualClock::AdvanceBy(TimeMicros delta) {
  PJOIN_DCHECK(delta >= 0);
  now_ += delta;
}

namespace {
TimeMicros SteadyNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

WallClock::WallClock() : origin_(SteadyNowMicros()) {}

TimeMicros WallClock::NowMicros() const { return SteadyNowMicros() - origin_; }

void Stopwatch::Restart() { start_ = clock_.NowMicros(); }

TimeMicros Stopwatch::ElapsedMicros() const {
  return clock_.NowMicros() - start_;
}

std::chrono::steady_clock::time_point SteadyDeadlineAfter(
    std::chrono::microseconds wait) {
  return std::chrono::steady_clock::now() + wait;
}

}  // namespace pjoin
