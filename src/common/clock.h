// Time sources. The benchmark generators stamp stream elements with virtual
// arrival times; operators and experiment drivers read time through the Clock
// interface so tests can run on a deterministic clock.

#ifndef PJOIN_COMMON_CLOCK_H_
#define PJOIN_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>

#include "common/macros.h"

namespace pjoin {

/// Microseconds. All timestamps in the library use this unit.
using TimeMicros = int64_t;

constexpr TimeMicros kMicrosPerMilli = 1000;
constexpr TimeMicros kMicrosPerSecond = 1000 * 1000;

/// Abstract time source.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time in microseconds. Monotone non-decreasing.
  virtual TimeMicros NowMicros() const = 0;
};

/// Deterministic, manually advanced clock. Drivers advance it to each
/// element's arrival timestamp before feeding the element to an operator.
class VirtualClock : public Clock {
 public:
  explicit VirtualClock(TimeMicros start = 0) : now_(start) {}

  TimeMicros NowMicros() const override { return now_; }

  /// Moves the clock forward to `t`; never moves backwards.
  void AdvanceTo(TimeMicros t);

  /// Moves the clock forward by `delta` (>= 0).
  void AdvanceBy(TimeMicros delta);

 private:
  TimeMicros now_;
};

/// Monotonic wall clock (std::chrono::steady_clock).
class WallClock : public Clock {
 public:
  WallClock();
  TimeMicros NowMicros() const override;

 private:
  TimeMicros origin_;
};

/// A simple wall-clock stopwatch for measuring processing cost in benches.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }
  void Restart();
  /// Elapsed time since construction or the last Restart().
  TimeMicros ElapsedMicros() const;

 private:
  TimeMicros start_;
  WallClock clock_;
};

/// A steady-clock deadline `wait` from now, for CondVar::WaitUntil. Lives
/// here because clock.cc is one of the two sanctioned raw-steady-clock call
/// sites (tools/lint_check.py rule raw-clock).
std::chrono::steady_clock::time_point SteadyDeadlineAfter(
    std::chrono::microseconds wait);

}  // namespace pjoin

#endif  // PJOIN_COMMON_CLOCK_H_
