#include "stream/element.h"

#include "common/macros.h"

namespace pjoin {

StreamElement StreamElement::MakeTuple(Tuple t, TimeMicros arrival,
                                       int64_t seq) {
  StreamElement e;
  e.kind_ = ElementKind::kTuple;
  e.payload_ = std::move(t);
  e.arrival_ = arrival;
  e.seq_ = seq;
  return e;
}

StreamElement StreamElement::MakePunctuation(Punctuation p, TimeMicros arrival,
                                             int64_t seq) {
  StreamElement e;
  e.kind_ = ElementKind::kPunctuation;
  e.payload_ = std::move(p);
  e.arrival_ = arrival;
  e.seq_ = seq;
  return e;
}

StreamElement StreamElement::MakeEndOfStream(TimeMicros arrival, int64_t seq) {
  StreamElement e;
  e.kind_ = ElementKind::kEndOfStream;
  e.arrival_ = arrival;
  e.seq_ = seq;
  return e;
}

const Tuple& StreamElement::tuple() const {
  PJOIN_DCHECK(is_tuple());
  return std::get<Tuple>(payload_);
}

const Punctuation& StreamElement::punctuation() const {
  PJOIN_DCHECK(is_punctuation());
  return std::get<Punctuation>(payload_);
}

std::string StreamElement::ToString() const {
  switch (kind_) {
    case ElementKind::kTuple:
      return "t@" + std::to_string(arrival_) + " " + tuple().ToString();
    case ElementKind::kPunctuation:
      return "p@" + std::to_string(arrival_) + " " + punctuation().ToString();
    case ElementKind::kEndOfStream:
      return "eos@" + std::to_string(arrival_);
  }
  return "?";
}

}  // namespace pjoin
