#include "stream/stream_buffer.h"

namespace pjoin {

void StreamBuffer::Push(StreamElement element) {
  std::lock_guard<std::mutex> lock(mu_);
  PJOIN_DCHECK(!closed_);
  queue_.push_back(std::move(element));
}

void StreamBuffer::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
}

std::optional<StreamElement> StreamBuffer::Pop() {
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_.empty()) return std::nullopt;
  std::optional<StreamElement> e(std::in_place, std::move(queue_.front()));
  queue_.pop_front();
  return e;
}

std::optional<TimeMicros> StreamBuffer::PeekArrival() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_.empty()) return std::nullopt;
  return queue_.front().arrival();
}

bool StreamBuffer::empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.empty();
}

size_t StreamBuffer::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

bool StreamBuffer::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

bool StreamBuffer::exhausted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_ && queue_.empty();
}

}  // namespace pjoin
