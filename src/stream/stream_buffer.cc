#include "stream/stream_buffer.h"

#include <algorithm>
#include <string>

#include "common/mutex.h"
#include "obs/trace.h"

namespace pjoin {

void StreamBuffer::BindMetrics(std::string_view name) {
  const std::string labels = "buf=" + std::string(name);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  MutexLock lock(mu_);
  depth_metric_ = registry.GetGauge("stream_buffer.depth", labels);
  pushed_metric_ = registry.GetCounter("stream_buffer.pushed", labels);
  popped_metric_ = registry.GetCounter("stream_buffer.popped", labels);
  backpressure_metric_ =
      registry.GetCounter("stream_buffer.backpressure_waits", labels);
  depth_metric_.Set(static_cast<int64_t>(queue_.size()));
}

void StreamBuffer::RecordDepthLocked(int64_t pushed, int64_t popped) {
  if (!depth_metric_.bound()) return;
  depth_metric_.Set(static_cast<int64_t>(queue_.size()));
  if (pushed > 0) pushed_metric_.Add(pushed);
  if (popped > 0) popped_metric_.Add(popped);
  TRACE_COUNTER("stream", "buffer_depth",
                static_cast<int64_t>(queue_.size()));
}

Status StreamBuffer::TryPush(StreamElement element) {
  MutexLock lock(mu_);
  if (closed_) {
    return Status::FailedPrecondition("push to closed stream buffer");
  }
  if (!HasSpaceLocked()) {
    return Status::ResourceExhausted("stream buffer full");
  }
  queue_.push_back(std::move(element));
  RecordDepthLocked(1, 0);
  return Status::OK();
}

void StreamBuffer::WaitForSpaceLocked() {
  ++backpressure_waits_;
  backpressure_metric_.Add();
  while (!closed_ && !HasSpaceLocked()) {
    space_available_.Wait(mu_);
  }
}

Status StreamBuffer::PushBlocking(StreamElement element) {
  MutexLock lock(mu_);
  if (!closed_ && !HasSpaceLocked()) WaitForSpaceLocked();
  if (closed_) {
    return Status::FailedPrecondition("push to closed stream buffer");
  }
  queue_.push_back(std::move(element));
  RecordDepthLocked(1, 0);
  return Status::OK();
}

void StreamBuffer::Push(StreamElement element) {
  const Status status = PushBlocking(std::move(element));
  PJOIN_DCHECK(status.ok());
}

size_t StreamBuffer::PushBatch(std::vector<StreamElement> batch) {
  size_t pushed = 0;
  MutexLock lock(mu_);
  while (pushed < batch.size()) {
    if (!closed_ && !HasSpaceLocked()) WaitForSpaceLocked();
    if (closed_) break;  // remaining elements are dropped with the buffer
    // Fill the available window (the whole remainder when unbounded).
    size_t room = batch.size() - pushed;
    if (capacity_ > 0) {
      room = std::min<size_t>(room, capacity_ - queue_.size());
    }
    for (size_t i = 0; i < room; ++i) {
      queue_.push_back(std::move(batch[pushed++]));
    }
  }
  RecordDepthLocked(static_cast<int64_t>(pushed), 0);
  return pushed;
}

std::vector<StreamElement> StreamBuffer::PopBatch(size_t max_elements) {
  std::vector<StreamElement> out;
  MutexLock lock(mu_);
  const size_t n = std::min(max_elements, queue_.size());
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  if (n > 0) RecordDepthLocked(0, static_cast<int64_t>(n));
  if (n > 0 && capacity_ > 0) space_available_.NotifyAll();
  return out;
}

void StreamBuffer::Close() {
  MutexLock lock(mu_);
  closed_ = true;
  space_available_.NotifyAll();
}

std::optional<StreamElement> StreamBuffer::Pop() {
  MutexLock lock(mu_);
  if (queue_.empty()) return std::nullopt;
  std::optional<StreamElement> e(std::in_place, std::move(queue_.front()));
  queue_.pop_front();
  RecordDepthLocked(0, 1);
  if (capacity_ > 0) space_available_.NotifyOne();
  return e;
}

std::optional<TimeMicros> StreamBuffer::PeekArrival() const {
  MutexLock lock(mu_);
  if (queue_.empty()) return std::nullopt;
  return queue_.front().arrival();
}

bool StreamBuffer::empty() const {
  MutexLock lock(mu_);
  return queue_.empty();
}

size_t StreamBuffer::size() const {
  MutexLock lock(mu_);
  return queue_.size();
}

bool StreamBuffer::closed() const {
  MutexLock lock(mu_);
  return closed_;
}

bool StreamBuffer::exhausted() const {
  MutexLock lock(mu_);
  return closed_ && queue_.empty();
}

int64_t StreamBuffer::backpressure_waits() const {
  MutexLock lock(mu_);
  return backpressure_waits_;
}

}  // namespace pjoin
