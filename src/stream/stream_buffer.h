// StreamBuffer: a FIFO of stream elements between a producer (generator or
// upstream operator) and a consumer (operator or driver).
//
// The buffer distinguishes "temporarily empty" (producer still open — the
// consumer may block or switch to background work, cf. XJoin's reactive
// stage) from "closed" (end of stream).

#ifndef PJOIN_STREAM_STREAM_BUFFER_H_
#define PJOIN_STREAM_STREAM_BUFFER_H_

#include <deque>
#include <mutex>
#include <optional>

#include "common/macros.h"
#include "stream/element.h"

namespace pjoin {

class StreamBuffer {
 public:
  StreamBuffer() = default;
  PJOIN_DISALLOW_COPY_AND_MOVE(StreamBuffer);

  /// Appends an element. Pushing to a closed buffer is an error.
  void Push(StreamElement element);

  /// Marks the producer side finished; Pop drains the remainder then reports
  /// closure via std::nullopt with closed() == true.
  void Close();

  /// Removes and returns the oldest element, or nullopt if none available.
  std::optional<StreamElement> Pop();

  /// Peeks at the arrival time of the oldest element without removing it.
  std::optional<TimeMicros> PeekArrival() const;

  bool empty() const;
  size_t size() const;
  /// True once Close() was called (elements may still be queued).
  bool closed() const;
  /// True when closed and fully drained.
  bool exhausted() const;

 private:
  mutable std::mutex mu_;
  std::deque<StreamElement> queue_;
  bool closed_ = false;
};

/// Pull-style element source (generators implement this).
class StreamSource {
 public:
  virtual ~StreamSource() = default;
  /// Produces the next element, or nullopt when the stream ends.
  virtual std::optional<StreamElement> Next() = 0;
};

}  // namespace pjoin

#endif  // PJOIN_STREAM_STREAM_BUFFER_H_
